// Multi-receiver cluster end-to-end test: one campaign broadcast over real
// UDP to an unpartitioned receiver process and to three -partition k/3
// receiver processes, then analysed both ways — the single database versus
// the merged three-member set. The partitioned deployment must be
// indistinguishable in the report output and ingest exactly once in total.
package siren_test

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"siren/internal/campaign"
	"siren/internal/wire"
)

// rcvProc is one running siren-receiver process with its stdout captured.
type rcvProc struct {
	cmd   *exec.Cmd
	addr  string
	mu    sync.Mutex
	lines []string
	eof   chan struct{}
}

func startReceiver(t *testing.T, bin string, args ...string) *rcvProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &rcvProc{cmd: cmd, eof: make(chan struct{})}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		p.mu.Lock()
		p.lines = append(p.lines, line)
		p.mu.Unlock()
		if _, rest, ok := strings.Cut(line, "listening on "); ok {
			p.addr = strings.Fields(rest)[0]
			break
		}
	}
	if p.addr == "" {
		t.Fatalf("receiver %v never announced its address: %v", args, sc.Err())
	}
	go func() {
		defer close(p.eof)
		for sc.Scan() {
			p.mu.Lock()
			p.lines = append(p.lines, sc.Text())
			p.mu.Unlock()
		}
	}()
	return p
}

// stop SIGTERMs the receiver, waits for a clean exit, and returns its full
// stdout (the last line is the final stats report).
func (p *rcvProc) stop(t *testing.T) []string {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p.eof:
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		t.Fatal("receiver did not exit on SIGTERM")
	}
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("receiver exited with error: %v", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.lines...)
}

var statsRe = regexp.MustCompile(`received=(\d+) inserted=(\d+) malformed=(\d+) dropped=(\d+) rejected=(\d+) insert_errors=(\d+) insert_lost=(\d+) accepted_failover=(\d+) queue=(\d+) insert_p99_ns=(\d+) rows=(\d+)`)

type rcvStats struct {
	received, inserted, malformed, dropped, rejected, insertErrors, insertLost, acceptedFailover, queue, insertP99NS, rows int
}

func finalStats(t *testing.T, lines []string) rcvStats {
	t.Helper()
	for i := len(lines) - 1; i >= 0; i-- {
		if m := statsRe.FindStringSubmatch(lines[i]); m != nil {
			f := make([]int, 11)
			for j := range f {
				f[j], _ = strconv.Atoi(m[j+1])
			}
			return rcvStats{f[0], f[1], f[2], f[3], f[4], f[5], f[6], f[7], f[8], f[9], f[10]}
		}
	}
	t.Fatalf("no stats line in receiver output:\n%s", strings.Join(lines, "\n"))
	return rcvStats{}
}

// fanoutTransport broadcasts every datagram to all member transports — the
// sender side of a partitioned deployment where collectors spray across all
// receiver ports and rely on admission to deduplicate.
type fanoutTransport struct {
	members []wire.Transport
	sent    int
	mu      sync.Mutex
}

func (f *fanoutTransport) Send(d []byte) error {
	f.mu.Lock()
	f.sent++
	f.mu.Unlock()
	for _, m := range f.members {
		if err := m.Send(d); err != nil {
			return err
		}
	}
	return nil
}

func (f *fanoutTransport) Close() error {
	var first error
	for _, m := range f.members {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func TestMultiReceiverClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	repo, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	bin := t.TempDir()
	for _, tool := range []string{"siren-receiver", "siren-analyze"} {
		runCmd(t, repo, "go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
	}
	receiverBin := filepath.Join(bin, "siren-receiver")
	analyzeBin := filepath.Join(bin, "siren-analyze")

	work := t.TempDir()
	const parts = 3
	common := []string{"-stats-interval", "0", "-rcvbuf", "8388608", "-addr", "127.0.0.1:0"}

	singleWAL := filepath.Join(work, "single.wal")
	single := startReceiver(t, receiverBin, append([]string{"-db", singleWAL}, common...)...)
	members := make([]*rcvProc, parts)
	memberWALs := make([]string, parts)
	for k := 0; k < parts; k++ {
		memberWALs[k] = filepath.Join(work, fmt.Sprintf("member-%d.wal", k))
		members[k] = startReceiver(t, receiverBin, append([]string{
			"-db", memberWALs[k],
			"-partition", fmt.Sprintf("%d/%d", k, parts),
		}, common...)...)
	}

	// One campaign, every datagram broadcast to all four receivers: the
	// single receiver admits everything, each member admits its slice.
	fan := &fanoutTransport{}
	for _, p := range append([]*rcvProc{single}, members...) {
		tr, err := wire.DialUDP(p.addr)
		if err != nil {
			t.Fatal(err)
		}
		fan.members = append(fan.members, tr)
	}
	if _, err := campaign.Run(campaign.Config{Scale: 0.002, Seed: 9, Transport: fan}); err != nil {
		t.Fatal(err)
	}
	if err := fan.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the last loopback datagrams land

	singleStats := finalStats(t, single.stop(t))
	memberStats := make([]rcvStats, parts)
	for k, p := range members {
		memberStats[k] = finalStats(t, p.stop(t))
	}

	// The equality assertions below presuppose lossless delivery; loopback
	// with an 8 MiB socket buffer and drain-on-close provides it, and this
	// check tells a kernel-drop flake apart from a partitioning bug.
	for i, st := range append([]rcvStats{singleStats}, memberStats...) {
		if st.received != fan.sent {
			t.Fatalf("receiver %d saw %d of %d datagrams (kernel loss?); cannot assert partition equalities", i, st.received, fan.sent)
		}
		if st.malformed != 0 || st.dropped != 0 || st.insertErrors != 0 || st.insertLost != 0 {
			t.Fatalf("receiver %d reported losses: %+v", i, st)
		}
	}

	// Admission contract: the single receiver ingested the whole campaign;
	// the members ingested disjoint slices that union to it exactly — zero
	// double-ingest — and every non-owned datagram is visible as rejected.
	if singleStats.inserted != fan.sent || singleStats.rejected != 0 {
		t.Errorf("single receiver: %+v, want inserted=%d rejected=0", singleStats, fan.sent)
	}
	sumRows := 0
	for k, st := range memberStats {
		if st.inserted == 0 {
			t.Errorf("member %d ingested nothing; partition admission over-rejected", k)
		}
		if st.rejected != fan.sent-st.inserted {
			t.Errorf("member %d: rejected=%d, want received-inserted=%d", k, st.rejected, fan.sent-st.inserted)
		}
		if st.rejected == 0 {
			t.Errorf("member %d rejected nothing; admission is not filtering", k)
		}
		sumRows += st.rows
	}
	if sumRows != singleStats.rows {
		t.Errorf("member rows sum to %d, single receiver stored %d: double- or under-ingest across the partition set", sumRows, singleStats.rows)
	}

	// Analysis equivalence: the merged member set must reproduce the single
	// receiver's report byte for byte.
	outSingle := runCmd(t, work, analyzeBin, "-db", singleWAL)
	if !strings.Contains(outSingle, "Table 2: users, jobs, and processes") {
		t.Fatalf("single-receiver analysis produced no tables:\n%s", truncate(outSingle))
	}
	outMerged := runCmd(t, work, analyzeBin, "-db", strings.Join(memberWALs, ","))
	if outMerged != outSingle {
		t.Errorf("merged analysis diverges from single-receiver analysis:\n--- single ---\n%s\n--- merged ---\n%s",
			truncate(outSingle), truncate(outMerged))
	}

	// Same merge addressed by glob over the members' on-disk segment files.
	outGlob := runCmd(t, work, analyzeBin, "-db", filepath.Join(work, "member-*.wal.0"))
	if outGlob != outSingle {
		t.Error("glob-addressed merged analysis diverges from single-receiver analysis")
	}

	// And one table as CSV, for a stable machine-readable comparison.
	csvSingle := runCmd(t, work, analyzeBin, "-db", singleWAL, "-csv", "table5")
	csvMerged := runCmd(t, work, analyzeBin, "-db", strings.Join(memberWALs, ","), "-csv", "table5")
	if csvSingle != csvMerged {
		t.Errorf("table5 CSV diverges:\n--- single ---\n%s\n--- merged ---\n%s", csvSingle, csvMerged)
	}
}
