module siren

go 1.24
