// Extension benches: the design-choice ablations added on top of the
// paper's evaluation — digest caching in the collector, and the
// similarity-clustering threshold sweep behind `siren-analyze -clusters`.
package siren_test

import (
	"fmt"
	"testing"

	"siren/internal/analysis"
	"siren/internal/collector"
	"siren/internal/ldso"
	"siren/internal/procfs"
	"siren/internal/slurm"
	"siren/internal/ssdeep"
	"siren/internal/toolchain"
	"siren/internal/wire"
)

// BenchmarkAblationDigestCache measures collection cost for a repeatedly
// launched user binary with and without the (path,inode,size,mtime)-keyed
// digest cache. The real siren.so always rehashes; the cache is this
// implementation's opt-in optimisation (results are bit-identical — see
// collector.TestDigestCacheEquivalence).
func BenchmarkAblationDigestCache(b *testing.B) {
	setup := func(b *testing.B, cache bool) (*slurm.Runtime, map[string]string) {
		fs := procfs.NewFS()
		lc := ldso.NewCache()
		lc.Register(ldso.Library{Soname: "libc.so.6", Path: "/lib64/libc.so.6"})
		lc.Register(ldso.Library{Soname: "siren.so", Path: "/opt/siren/lib/siren.so"})
		fs.Install("/lib64/libc.so.6", []byte("so"), procfs.FileMeta{})
		fs.Install("/opt/siren/lib/siren.so", []byte("so"), procfs.FileMeta{})
		art, err := toolchain.Compile(
			toolchain.Source{Name: "bench", Version: "1", Functions: []string{"main"}, CodeKB: 64},
			toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE}})
		if err != nil {
			b.Fatal(err)
		}
		fs.Install("/users/u/bench", art.Binary, procfs.FileMeta{})
		tr := wire.NewChanTransport(1 << 20)
		go func() {
			for range tr.C() {
			}
		}()
		col := collector.New(tr)
		if cache {
			col.EnableDigestCache()
		}
		rt := slurm.NewRuntime(fs, procfs.NewTable(0), lc, slurm.NewClock(1733900000))
		rt.Hook = col
		env := map[string]string{
			"LD_PRELOAD": "/opt/siren/lib/siren.so", "SLURM_PROCID": "0",
			"SLURM_JOB_ID": "1", "HOSTNAME": "n",
		}
		return rt, env
	}
	for _, cached := range []bool{false, true} {
		b.Run(fmt.Sprintf("cache=%v", cached), func(b *testing.B) {
			rt, env := setup(b, cached)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.Run("/users/u/bench", slurm.ExecOptions{PPID: 1, Env: env}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationClusterThresholds sweeps the similarity threshold of the
// repeated-execution clustering and reports cluster count and label purity:
// too low merges unrelated software, 100 degenerates to exact identity.
func BenchmarkAblationClusterThresholds(b *testing.B) {
	f := fixture(b)
	for _, threshold := range []int{30, 55, 80, 100} {
		b.Run(fmt.Sprintf("t=%d", threshold), func(b *testing.B) {
			var purity float64
			var n int
			for i := 0; i < b.N; i++ {
				clusters := f.data.SimilarityClusters(threshold, ssdeep.BackendWeighted)
				purity, n = clusterStats(clusters)
			}
			b.ReportMetric(purity*100, "%purity")
			b.ReportMetric(float64(n), "clusters")
		})
	}
}

func clusterStats(clusters []analysis.Cluster) (float64, int) {
	return firstOf(analysis.ClusterPurity(clusters)), len(clusters)
}

func firstOf(p float64, _ int) float64 { return p }
