// Package siren is a complete Go implementation of SIREN — Software
// Identification and Recognition in HPC Systems (Jakobsche et al., SC 2025).
//
// SIREN collects process-level metadata, environment information, and SSDeep
// fuzzy hashes of executables via an LD_PRELOAD-injected library, ships them
// as chunked UDP messages to a receiver backed by an embedded database, and
// analyses the consolidated records to identify software usage, recognise
// repeated executions, and match unknown executables to known ones by
// similarity.
//
// The public entry point is internal/core.Pipeline; the cmd/ directory holds
// runnable tools (siren-campaign regenerates every table and figure of the
// paper's evaluation), and examples/ contains self-contained scenarios. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison.
package siren

// Version identifies this reproduction build.
const Version = "1.0.0"
