// End-to-end integration tests at the repository root: the full campaign →
// transport → receiver → database → consolidation → evaluation path,
// exercised exactly the way cmd/siren-campaign drives it.
package siren_test

import (
	"strings"
	"testing"

	"siren/internal/analysis"
	"siren/internal/campaign"
	"siren/internal/core"
	"siren/internal/postprocess"
	"siren/internal/pysec"
	"siren/internal/report"
	"siren/internal/ssdeep"
)

// evaluationFixture shares one end-to-end run across the root tests.
func evaluationFixture(t *testing.T) (*analysis.Dataset, postprocess.Stats) {
	t.Helper()
	p, err := core.NewPipeline(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if _, err := p.RunCampaign(campaign.Config{Scale: 0.01, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	data, stats, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return data, stats
}

func TestEvaluationReportRenders(t *testing.T) {
	data, stats := evaluationFixture(t)
	var sb strings.Builder
	report.WriteEvaluation(&sb, data, stats)
	out := sb.String()
	for _, want := range []string{
		"Table 2: users, jobs, and processes",
		"Table 3: top 10 system-directory executables",
		"Table 4: deviating shared objects of /usr/bin/bash",
		"Table 5: derived labels for user applications",
		"Table 6: compiler information of user applications",
		"Table 7: similarity search for /scratch/project_465000831/run/a.out",
		"Table 8: Python interpreters",
		"Figure 2: derived+filtered shared objects",
		"Figure 3: imported Python packages",
		"Figure 4: compiler identification by software label",
		"Figure 5: loaded shared-object usage by software label",
		"user_1", "icon", "/usr/bin/srun", "python3.6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("evaluation output missing %q", want)
		}
	}
}

func TestClusteringIdentifiesUnknownOnCampaignData(t *testing.T) {
	data, _ := evaluationFixture(t)
	clusters := data.SimilarityClusters(55, ssdeep.BackendWeighted)
	if len(clusters) == 0 {
		t.Fatal("no clusters")
	}
	// The a.out must cluster with icon binaries (the recognition claim).
	var unknownCluster *analysis.Cluster
	for i := range clusters {
		for _, m := range clusters[i].Members {
			if analysis.DeriveLabel(m.Exe) == analysis.UnknownLabel {
				unknownCluster = &clusters[i]
			}
		}
	}
	if unknownCluster == nil {
		t.Fatal("unknown binary not present in any cluster")
	}
	if unknownCluster.DominantLabel() != "icon" {
		t.Errorf("unknown clustered with %q, want icon (labels %v)",
			unknownCluster.DominantLabel(), unknownCluster.Labels)
	}
	purity, _ := analysis.ClusterPurity(clusters)
	if purity < 0.9 {
		t.Errorf("cluster purity = %.2f, want >= 0.9", purity)
	}
}

func TestSecurityAuditOnCampaignData(t *testing.T) {
	data, _ := evaluationFixture(t)
	db := pysec.NewDB()
	users := data.PythonPackageUsers()
	var obs []pysec.ImportObservation
	for _, p := range data.PythonPackages() {
		obs = append(obs, pysec.ImportObservation{
			Package: p.Package, Users: users[p.Package], Jobs: p.Jobs, Processes: p.Processes,
		})
	}
	findings := db.Audit(obs)
	// The campaign imports numpy, which carries an info-grade advisory; no
	// critical findings should appear in clean workloads.
	sawNumpy := false
	for _, f := range findings {
		if f.Package == "numpy" {
			sawNumpy = true
		}
		if f.Severity == pysec.SeverityCritical {
			t.Errorf("clean campaign produced critical finding: %+v", f)
		}
	}
	if !sawNumpy {
		t.Error("numpy advisory not matched")
	}
}

func TestVersionConstant(t *testing.T) {
	// Trivial, but pins the root package as buildable and importable.
	if len("siren") == 0 {
		t.Fatal("unreachable")
	}
}
