// Quickstart: the smallest useful SIREN pipeline.
//
// It compiles two synthetic builds of the same application with different
// toolchains, scans them the way siren.so does, and shows that the
// cryptographic identity changes completely while the fuzzy-hash similarity
// stays high — the core observation the framework is built on. It then runs
// both binaries through the full collection pipeline and identifies one
// from the other via the database.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"siren/internal/analysis"
	"siren/internal/collector"
	"siren/internal/core"
	"siren/internal/ldso"
	"siren/internal/procfs"
	"siren/internal/slurm"
	"siren/internal/ssdeep"
	"siren/internal/toolchain"
	"siren/internal/xalt"
)

func main() {
	// 1. Two builds of the same source: GCC vs Cray clang.
	src := toolchain.Source{
		Name: "wavesolver", Version: "1.4.2",
		Functions: []string{"ws_init", "ws_step", "ws_output"},
		Strings:   []string{"wavesolver: explicit FDTD kernel"},
		CodeKB:    64,
	}
	gccBuild, err := toolchain.Compile(src, toolchain.BuildOptions{
		Compilers: []toolchain.Compiler{toolchain.GCCSUSE}, Libraries: []string{"libm.so.6", "libc.so.6"}})
	if err != nil {
		log.Fatal(err)
	}
	clangBuild, err := toolchain.Compile(src, toolchain.BuildOptions{
		Compilers: []toolchain.Compiler{toolchain.ClangCray}, Libraries: []string{"libm.so.6", "libc.so.6"}})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Static scan (what the injected constructor computes).
	repA, err := core.ScanBinary(gccBuild.Binary)
	if err != nil {
		log.Fatal(err)
	}
	repB, err := core.ScanBinary(clangBuild.Binary)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gcc build  compilers:", repA.Compilers)
	fmt.Println("clang build compilers:", repB.Compilers)
	fmt.Println("sha1 equal:           ", xalt.Sha1Hex(gccBuild.Binary) == xalt.Sha1Hex(clangBuild.Binary))
	fi, _ := ssdeep.Compare(repA.FileH, repB.FileH)
	sy, _ := ssdeep.Compare(repA.SymbolsH, repB.SymbolsH)
	fmt.Printf("fuzzy FILE_H score:    %d\n", fi)
	fmt.Printf("fuzzy SYMBOLS_H score: %d\n", sy)

	// 3. Full pipeline: run both binaries as hooked processes, then identify
	// the clang build from the database using only its fuzzy hash.
	pipeline, err := core.NewPipeline(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer pipeline.Close()

	fs := procfs.NewFS()
	cache := ldso.NewCache()
	for _, lib := range []ldso.Library{
		{Soname: "libc.so.6", Path: "/lib64/libc.so.6"},
		{Soname: "libm.so.6", Path: "/lib64/libm.so.6"},
		{Soname: "siren.so", Path: "/opt/siren/lib/siren.so"},
	} {
		cache.Register(lib)
		fs.Install(lib.Path, []byte("so"), procfs.FileMeta{})
	}
	fs.Install("/users/alice/wavesolver/bin/ws", gccBuild.Binary, procfs.FileMeta{})
	fs.Install("/scratch/proj/run/a.out", clangBuild.Binary, procfs.FileMeta{})

	col := collector.New(pipeline.Transport())
	rt := slurm.NewRuntime(fs, procfs.NewTable(0), cache, slurm.NewClock(1733900000))
	rt.Hook = col
	env := map[string]string{
		"LD_PRELOAD": "/opt/siren/lib/siren.so", "SLURM_JOB_ID": "1",
		"SLURM_PROCID": "0", "HOSTNAME": "nid000001",
	}
	for _, exe := range []string{"/users/alice/wavesolver/bin/ws", "/scratch/proj/run/a.out"} {
		if _, err := rt.Run(exe, slurm.ExecOptions{PPID: 1, UID: 1000, Env: env}, nil); err != nil {
			log.Fatal(err)
		}
	}

	data, stats, err := pipeline.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipeline: %d messages -> %d process records\n", stats.Messages, stats.Processes)
	matches := data.IdentifyByHash(repB.FileH, 3, ssdeep.BackendWeighted)
	for _, m := range matches {
		fmt.Printf("identify a.out: %-40s score=%d (label %s)\n", m.Exe, m.FileS, m.Label)
	}
	_ = analysis.UnknownLabel
}
