// Python-tracking: how SIREN sees Python workloads (paper §4.4).
//
// Executable names tell you nothing about Python jobs — every one is
// "python3.x". This example runs three users' Python scripts through the
// collection pipeline and shows what SIREN recovers anyway: the interpreter
// inventory (Table 8) and the imported packages extracted from the
// interpreters' memory-mapped extension modules (Figure 3), including an
// import of a *suspicious* hallucinated package name, the slopsquatting
// scenario the paper flags.
//
//	go run ./examples/python-tracking
package main

import (
	"fmt"
	"log"
	"os"

	"siren/internal/collector"
	"siren/internal/core"
	"siren/internal/ldso"
	"siren/internal/procfs"
	"siren/internal/pyenv"
	"siren/internal/report"
	"siren/internal/slurm"
	"siren/internal/toolchain"
)

func main() {
	pipeline, err := core.NewPipeline(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer pipeline.Close()

	fs := procfs.NewFS()
	cache := ldso.NewCache()
	for _, lib := range []ldso.Library{
		{Soname: "libc.so.6", Path: "/lib64/libc.so.6"},
		{Soname: "siren.so", Path: "/opt/siren/lib/siren.so"},
	} {
		cache.Register(lib)
		fs.Install(lib.Path, []byte("so"), procfs.FileMeta{})
	}
	interpreters := map[string]pyenv.Interpreter{
		"3.10": {Version: "3.10", Path: "/usr/bin/python3.10", LibDir: "/usr/lib64/python3.10"},
		"3.11": {Version: "3.11", Path: "/usr/bin/python3.11", LibDir: "/usr/lib64/python3.11"},
	}
	for _, it := range interpreters {
		art, err := toolchain.Compile(
			toolchain.Source{Name: "python" + it.Version, Version: it.Version, CodeKB: 16},
			toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE}})
		if err != nil {
			log.Fatal(err)
		}
		fs.Install(it.Path, art.Binary, procfs.FileMeta{})
	}

	col := collector.New(pipeline.Transport())
	rt := slurm.NewRuntime(fs, procfs.NewTable(0), cache, slurm.NewClock(1733900000))
	rt.Hook = col

	type run struct {
		uid     uint32
		job     string
		version string
		script  string
		imports []string
	}
	runs := []run{
		{1001, "11", "3.10", "/users/ana/plot.py", []string{"heapq", "struct", "numpy", "pandas"}},
		{1001, "12", "3.10", "/users/ana/stats.py", []string{"heapq", "struct", "scipy", "csv"}},
		{1002, "13", "3.11", "/users/ben/train.py", []string{"heapq", "struct", "numpy", "mpi4py"}},
		// A script importing a package name that LLM code generation
		// hallucinated; auditing imports is how you catch it.
		{1003, "14", "3.11", "/users/eve/helper.py", []string{"heapq", "struct", "torch"}},
	}
	for i, r := range runs {
		it := interpreters[r.version]
		sc := pyenv.GenerateScript(r.script, int64(i), r.imports)
		fs.Install(sc.Path, sc.Content, procfs.FileMeta{UID: r.uid})
		env := map[string]string{
			"LD_PRELOAD": "/opt/siren/lib/siren.so", "SLURM_JOB_ID": r.job,
			"SLURM_PROCID": "0", "HOSTNAME": "nid000007",
		}
		extra := pyenv.MapRegions(it, r.imports, 0x7f5000000000)
		_, err := rt.Run(it.Path, slurm.ExecOptions{PPID: 1, UID: r.uid, Env: env, ExtraMaps: extra},
			func(p *procfs.Proc) error {
				p.Cmdline = []string{it.Path, sc.Path}
				return nil
			})
		if err != nil {
			log.Fatal(err)
		}
	}

	data, _, err := pipeline.Analyze()
	if err != nil {
		log.Fatal(err)
	}

	var rows [][]string
	for _, s := range data.PythonInterpreters() {
		rows = append(rows, []string{s.Interpreter, report.Itoa(s.UniqueUsers), report.Itoa(s.Jobs),
			report.Itoa(s.Processes), report.Itoa(s.UniqueScriptH)})
	}
	report.Table(os.Stdout, "Python interpreters (cf. Table 8)",
		[]string{"interpreter", "users", "jobs", "procs", "uniq SCRIPT_H"}, rows)
	fmt.Println()

	rows = nil
	for _, p := range data.PythonPackages() {
		rows = append(rows, []string{p.Package, report.Itoa(p.UniqueUsers), report.Itoa(p.Jobs),
			report.Itoa(p.Processes), report.Itoa(p.UniqueScripts)})
	}
	report.Table(os.Stdout, "Imported packages (cf. Figure 3)",
		[]string{"package", "users", "jobs", "procs", "uniq scripts"}, rows)

	fmt.Println("\naudit: cross-reference the package column against a known-bad list to")
	fmt.Println("detect slopsquatting or CVE-affected imports (paper §4.4, future work §6).")
}
