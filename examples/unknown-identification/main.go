// Unknown-identification: the Table 7 scenario end to end.
//
// A user runs icon rebuilds under proper names, plus the same software as a
// nondescript /scratch/.../a.out. The example runs the simulated campaign,
// takes the UNKNOWN instance as baseline, and ranks all known executables by
// average fuzzy-hash similarity across the six characteristics — recovering
// the icon identity with a perfect top match.
//
//	go run ./examples/unknown-identification
package main

import (
	"fmt"
	"log"
	"os"

	"siren/internal/campaign"
	"siren/internal/core"
	"siren/internal/report"
	"siren/internal/ssdeep"
)

func main() {
	pipeline, err := core.NewPipeline(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer pipeline.Close()

	// A modest scale is enough: the icon build farm and the a.out both run.
	if _, err := pipeline.RunCampaign(campaign.Config{Scale: 0.05, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	data, _, err := pipeline.Analyze()
	if err != nil {
		log.Fatal(err)
	}

	unknown, ok := data.FindUnknown()
	if !ok {
		log.Fatal("no UNKNOWN executable observed")
	}
	fmt.Printf("baseline: %s (job %s, FILE_H %s)\n\n", unknown.Exe, unknown.JobID, unknown.FileH)

	rows := data.SimilaritySearch(unknown, 10, ssdeep.BackendWeighted)
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{r.Label, report.F1(r.Avg), report.Itoa(r.ModulesS),
			report.Itoa(r.CompilersS), report.Itoa(r.ObjectsS), report.Itoa(r.FileS),
			report.Itoa(r.StringsS), report.Itoa(r.SymbolsS)})
	}
	report.Table(os.Stdout, "Similarity search (cf. paper Table 7)",
		[]string{"label", "avg", "MO_H", "CO_H", "OB_H", "FI_H", "ST_H", "SY_H"}, table)

	if len(rows) > 0 && rows[0].Avg == 100 {
		fmt.Println("\nverdict: the unknown a.out is an icon build (perfect match found)")
	} else if len(rows) > 0 {
		fmt.Printf("\nverdict: closest known software is %s (avg %.1f)\n", rows[0].Label, rows[0].Avg)
	}
}
