// Deviating-libraries: the Table 4 troubleshooting scenario.
//
// The same /usr/bin/bash behaves differently for three users because their
// environments resolve libtinfo from different places (and one drags in
// libm). SIREN's per-process loaded-objects records make the deviation
// visible: support staff can diff a misbehaving user's library set against
// the common baseline.
//
//	go run ./examples/deviating-libraries
package main

import (
	"fmt"
	"log"
	"os"

	"siren/internal/collector"
	"siren/internal/core"
	"siren/internal/ldso"
	"siren/internal/procfs"
	"siren/internal/report"
	"siren/internal/slurm"
	"siren/internal/toolchain"
)

func main() {
	pipeline, err := core.NewPipeline(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer pipeline.Close()

	fs := procfs.NewFS()
	cache := ldso.NewCache()
	libs := []ldso.Library{
		{Soname: "libc.so.6", Path: "/lib64/libc.so.6"},
		{Soname: "libm.so.6", Path: "/lib64/libm.so.6"},
		{Soname: "libtinfo.so.6", Path: "/lib64/libtinfo.so.6"},
		{Soname: "libtinfo.so.6", Path: "/appl/spack/env/lib/libtinfo.so.6"},
		{Soname: "libtinfo.so.6", Path: "/pfs/SW/env/lib/libtinfo.so.6", Needed: []string{"libm.so.6"}},
		{Soname: "siren.so", Path: "/opt/siren/lib/siren.so"},
	}
	for _, lib := range libs {
		cache.Register(lib)
		fs.Install(lib.Path, []byte("so"), procfs.FileMeta{})
	}
	art, err := toolchain.Compile(
		toolchain.Source{Name: "bash", Version: "5.2", Functions: []string{"main"}, CodeKB: 8},
		toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE},
			Libraries: []string{"libtinfo.so.6", "libc.so.6"}})
	if err != nil {
		log.Fatal(err)
	}
	fs.Install("/usr/bin/bash", art.Binary, procfs.FileMeta{})

	col := collector.New(pipeline.Transport())
	rt := slurm.NewRuntime(fs, procfs.NewTable(0), cache, slurm.NewClock(1733900000))
	rt.Hook = col

	// Three user environments: default, spack stack, and a site SW tree.
	envs := []struct {
		uid   uint32
		runs  int
		extra string
	}{
		{1001, 12, ""},
		{1002, 3, "/appl/spack/env/lib"},
		{1003, 1, "/pfs/SW/env/lib"},
	}
	for _, e := range envs {
		env := map[string]string{
			"LD_PRELOAD": "/opt/siren/lib/siren.so", "SLURM_JOB_ID": fmt.Sprintf("%d", e.uid),
			"SLURM_PROCID": "0", "HOSTNAME": "nid000002",
		}
		if e.extra != "" {
			env["LD_LIBRARY_PATH"] = e.extra
		}
		for i := 0; i < e.runs; i++ {
			if _, err := rt.Run("/usr/bin/bash", slurm.ExecOptions{PPID: 1, UID: e.uid, Env: env}, nil); err != nil {
				log.Fatal(err)
			}
		}
	}

	data, _, err := pipeline.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	var rows [][]string
	for _, s := range data.DeviatingLibraries("/usr/bin/bash") {
		rows = append(rows, []string{report.Itoa(s.Processes), s.LibraryVariant("libtinfo"), s.LibraryVariant("libm")})
	}
	report.Table(os.Stdout, "Distinct shared-object sets of /usr/bin/bash (cf. Table 4)",
		[]string{"procs", "libtinfo path", "libm path"}, rows)
	fmt.Println("\nthe /pfs/SW variant additionally loads libm — the kind of deviation that")
	fmt.Println("explains 'standard tool behaves oddly' support tickets (paper §4.2).")
}
