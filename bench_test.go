// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§4), plus the ablation benches called out in DESIGN.md §7.
// Each table/figure bench renders its output once (into the benchmark log),
// so `go test -bench=. -benchmem` regenerates the full evaluation alongside
// the timing numbers.
package siren_test

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"testing"

	"siren/internal/analysis"
	"siren/internal/campaign"
	"siren/internal/collector"
	"siren/internal/core"
	"siren/internal/postprocess"
	"siren/internal/report"
	"siren/internal/ssdeep"
	"siren/internal/wire"
	"siren/internal/xalt"
)

// benchFixture is the shared campaign dataset (scale 0.02, ≈18k processes).
type benchFixture struct {
	data  *analysis.Dataset
	stats postprocess.Stats
}

var (
	fixOnce sync.Once
	fix     *benchFixture
	fixErr  error
)

func fixture(b *testing.B) *benchFixture {
	b.Helper()
	fixOnce.Do(func() {
		p, err := core.NewPipeline(core.Options{})
		if err != nil {
			fixErr = err
			return
		}
		defer p.Close()
		if _, err := p.RunCampaign(campaign.Config{Scale: 0.02, Seed: 1}); err != nil {
			fixErr = err
			return
		}
		data, stats, err := p.Analyze()
		if err != nil {
			fixErr = err
			return
		}
		fix = &benchFixture{data: data, stats: stats}
	})
	if fixErr != nil {
		b.Fatalf("campaign fixture: %v", fixErr)
	}
	return fix
}

var printedMu sync.Mutex
var printed = map[string]bool{}

// printOnce renders a table into the benchmark output exactly once.
func printOnce(b *testing.B, key string, f func(w io.Writer)) {
	printedMu.Lock()
	defer printedMu.Unlock()
	if printed[key] {
		return
	}
	printed[key] = true
	fmt.Fprintf(os.Stdout, "\n--- %s ---\n", key)
	f(os.Stdout)
}

// --------------------------------------------------------------------------
// Tables

func BenchmarkTable1ScopePolicy(b *testing.B) {
	printOnce(b, "Table 1: collection scope by category", func(w io.Writer) {
		rows := [][]string{}
		for _, cat := range []collector.Category{collector.CategorySystem, collector.CategoryUser, collector.CategoryPython} {
			s := collector.ScopeFor(cat)
			rows = append(rows, []string{cat.String(), tick(s.FileMetadata), tick(s.Libraries),
				tick(s.Modules), tick(s.Compilers), tick(s.MemoryMap), tick(s.FileH), tick(s.StringsH), tick(s.SymbolsH)})
		}
		ss := collector.ScriptScope()
		rows = append(rows, []string{"python-script", tick(ss.FileMetadata), tick(ss.Libraries),
			tick(ss.Modules), tick(ss.Compilers), tick(ss.MemoryMap), tick(ss.FileH), tick(ss.StringsH), tick(ss.SymbolsH)})
		report.Table(w, "", []string{"category", "meta", "libs", "mods", "comp", "maps", "FILE_H", "STR_H", "SYM_H"}, rows)
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, path := range []string{"/usr/bin/bash", "/users/u/app", "/usr/bin/python3.10"} {
			_ = collector.ScopeFor(collector.Categorize(path))
		}
	}
}

func BenchmarkTable2UserStats(b *testing.B) {
	f := fixture(b)
	printOnce(b, "Table 2: users, jobs, processes", func(w io.Writer) {
		var rows [][]string
		for _, s := range f.data.UserStats() {
			rows = append(rows, []string{s.User, report.Itoa(s.Jobs), report.Itoa(s.SystemProcs),
				report.Itoa(s.UserProcs), report.Itoa(s.PythonProcs)})
		}
		report.Table(w, "", []string{"user", "jobs", "system", "user", "python"}, rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(f.data.UserStats()) != 12 {
			b.Fatal("user count drifted")
		}
	}
}

func BenchmarkTable3TopSystemExecutables(b *testing.B) {
	f := fixture(b)
	printOnce(b, "Table 3: top system executables", func(w io.Writer) {
		var rows [][]string
		for _, e := range f.data.TopSystemExecutables(10) {
			rows = append(rows, []string{e.Path, report.Itoa(e.UniqueUsers), report.Itoa(e.Jobs),
				report.Itoa(e.Processes), report.Itoa(e.UniqueObjectsH)})
		}
		report.Table(w, "", []string{"executable", "users", "jobs", "procs", "uniq OBJECTS_H"}, rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.data.TopSystemExecutables(10)
	}
}

func BenchmarkTable4DeviatingLibraries(b *testing.B) {
	f := fixture(b)
	printOnce(b, "Table 4: deviating shared objects of bash", func(w io.Writer) {
		var rows [][]string
		for _, s := range f.data.DeviatingLibraries("/usr/bin/bash") {
			rows = append(rows, []string{report.Itoa(s.Processes), s.LibraryVariant("libtinfo"), s.LibraryVariant("libm")})
		}
		report.Table(w, "", []string{"procs", "libtinfo", "libm"}, rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(f.data.DeviatingLibraries("/usr/bin/bash")) != 3 {
			b.Fatal("variant count drifted")
		}
	}
}

func BenchmarkTable5DerivedLabels(b *testing.B) {
	f := fixture(b)
	printOnce(b, "Table 5: derived labels", func(w io.Writer) {
		var rows [][]string
		for _, l := range f.data.DeriveLabels() {
			rows = append(rows, []string{l.Label, report.Itoa(l.UniqueUsers), report.Itoa(l.Jobs),
				report.Itoa(l.Processes), report.Itoa(l.UniqueFileH)})
		}
		report.Table(w, "", []string{"label", "users", "jobs", "procs", "uniq FILE_H"}, rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.data.DeriveLabels()
	}
}

func BenchmarkTable6CompilerInfo(b *testing.B) {
	f := fixture(b)
	printOnce(b, "Table 6: compiler combinations", func(w io.Writer) {
		var rows [][]string
		for _, c := range f.data.CompilerTable() {
			rows = append(rows, []string{c.Compilers, report.Itoa(c.UniqueUsers), report.Itoa(c.Jobs),
				report.Itoa(c.Processes), report.Itoa(c.UniqueFileH)})
		}
		report.Table(w, "", []string{"compilers", "users", "jobs", "procs", "uniq FILE_H"}, rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.data.CompilerTable()
	}
}

func BenchmarkTable7SimilaritySearch(b *testing.B) {
	f := fixture(b)
	unknown, ok := f.data.FindUnknown()
	if !ok {
		b.Fatal("no UNKNOWN baseline")
	}
	printOnce(b, "Table 7: similarity search for the unknown a.out", func(w io.Writer) {
		var rows [][]string
		for _, r := range f.data.SimilaritySearch(unknown, 10, ssdeep.BackendWeighted) {
			rows = append(rows, []string{r.Label, report.F1(r.Avg), report.Itoa(r.ModulesS),
				report.Itoa(r.CompilersS), report.Itoa(r.ObjectsS), report.Itoa(r.FileS),
				report.Itoa(r.StringsS), report.Itoa(r.SymbolsS)})
		}
		report.Table(w, "", []string{"label", "avg", "MO_H", "CO_H", "OB_H", "FI_H", "ST_H", "SY_H"}, rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := f.data.SimilaritySearch(unknown, 10, ssdeep.BackendWeighted)
		if len(rows) == 0 || rows[0].Label != "icon" {
			b.Fatal("identification failed")
		}
	}
}

func BenchmarkTable8PythonInterpreters(b *testing.B) {
	f := fixture(b)
	printOnce(b, "Table 8: Python interpreters", func(w io.Writer) {
		var rows [][]string
		for _, s := range f.data.PythonInterpreters() {
			rows = append(rows, []string{s.Interpreter, report.Itoa(s.UniqueUsers), report.Itoa(s.Jobs),
				report.Itoa(s.Processes), report.Itoa(s.UniqueScriptH)})
		}
		report.Table(w, "", []string{"interpreter", "users", "jobs", "procs", "uniq SCRIPT_H"}, rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.data.PythonInterpreters()
	}
}

// --------------------------------------------------------------------------
// Figures

// BenchmarkFig1PipelineEndToEnd exercises every arrow of the architecture
// diagram per iteration: preload hook → collection → chunked transport →
// receiver → database → consolidation.
func BenchmarkFig1PipelineEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := core.NewPipeline(core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.RunCampaign(campaign.Config{Scale: 0.0005, Seed: int64(i), Workers: 2}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := p.Analyze(); err != nil {
			b.Fatal(err)
		}
		p.Close()
	}
}

func BenchmarkFig2DerivedLibraries(b *testing.B) {
	f := fixture(b)
	printOnce(b, "Figure 2: derived+filtered shared objects", func(w io.Writer) {
		var rows [][]string
		for _, s := range f.data.DerivedLibraries() {
			rows = append(rows, []string{s.Tag, report.Itoa(s.UniqueUsers), report.Itoa(s.Jobs),
				report.Itoa(s.Processes), report.Itoa(s.UniqueExecutables)})
		}
		report.Table(w, "", []string{"tag", "users", "jobs", "procs", "uniq exes"}, rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.data.DerivedLibraries()
	}
}

func BenchmarkFig3PythonPackages(b *testing.B) {
	f := fixture(b)
	printOnce(b, "Figure 3: imported Python packages", func(w io.Writer) {
		var rows [][]string
		for _, p := range f.data.PythonPackages() {
			rows = append(rows, []string{p.Package, report.Itoa(p.UniqueUsers), report.Itoa(p.Jobs),
				report.Itoa(p.Processes), report.Itoa(p.UniqueScripts)})
		}
		report.Table(w, "", []string{"package", "users", "jobs", "procs", "uniq scripts"}, rows)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.data.PythonPackages()
	}
}

func BenchmarkFig4CompilerMatrix(b *testing.B) {
	f := fixture(b)
	printOnce(b, "Figure 4: compiler identification by label", func(w io.Writer) {
		report.Matrix(w, "", f.data.CompilerMatrix())
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.data.CompilerMatrix()
	}
}

func BenchmarkFig5LibraryMatrix(b *testing.B) {
	f := fixture(b)
	printOnce(b, "Figure 5: library usage by label", func(w io.Writer) {
		report.Matrix(w, "", f.data.LibraryMatrix())
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.data.LibraryMatrix()
	}
}

// --------------------------------------------------------------------------
// Reported numbers beyond tables

// BenchmarkUDPPipelineLoss reproduces the "~0.02% of jobs with missing
// fields" observation: a campaign over a lossy transport, reporting the
// affected-jobs fraction as a metric.
func BenchmarkUDPPipelineLoss(b *testing.B) {
	b.ReportAllocs()
	var lastFrac float64
	for i := 0; i < b.N; i++ {
		p, err := core.NewPipeline(core.Options{LossRate: 0.0001, LossSeed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.RunCampaign(campaign.Config{Scale: 0.005, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
		_, stats, err := p.Analyze()
		if err != nil {
			b.Fatal(err)
		}
		p.Close()
		lastFrac = float64(stats.JobsWithMissing) / float64(max(1, stats.Jobs))
	}
	b.ReportMetric(lastFrac*100, "%jobs-missing-fields")
}

// --------------------------------------------------------------------------
// Ablations

func BenchmarkAblationScoringBackends(b *testing.B) {
	f := fixture(b)
	unknown, ok := f.data.FindUnknown()
	if !ok {
		b.Fatal("no baseline")
	}
	for _, backend := range []ssdeep.Backend{ssdeep.BackendWeighted, ssdeep.BackendDamerau, ssdeep.BackendLevenshtein} {
		b.Run(backend.String(), func(b *testing.B) {
			b.ReportAllocs()
			var top float64
			for i := 0; i < b.N; i++ {
				rows := f.data.SimilaritySearch(unknown, 10, backend)
				if len(rows) == 0 || rows[0].Label != "icon" {
					b.Fatal("identification failed under backend " + backend.String())
				}
				top = rows[0].Avg
			}
			b.ReportMetric(top, "top-avg-score")
		})
	}
}

// BenchmarkAblationHashInputs measures identification accuracy using a
// single hash column versus the paper's averaged multi-hash design:
// for every distinct icon binary, is its best non-self match another icon?
func BenchmarkAblationHashInputs(b *testing.B) {
	f := fixture(b)
	type probe struct {
		name string
		get  func(r *postprocess.ProcessRecord) string
	}
	probes := []probe{
		{"FILE_H", func(r *postprocess.ProcessRecord) string { return r.FileH }},
		{"STRINGS_H", func(r *postprocess.ProcessRecord) string { return r.StringsH }},
		{"SYMBOLS_H", func(r *postprocess.ProcessRecord) string { return r.SymbolsH }},
	}
	// Distinct user binaries by FILE_H.
	var bins []*postprocess.ProcessRecord
	seen := map[string]bool{}
	for _, r := range f.data.Records {
		if r.Category == "user" && r.FileH != "" && !seen[r.FileH] {
			seen[r.FileH] = true
			bins = append(bins, r)
		}
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].Exe < bins[j].Exe })
	for _, p := range probes {
		b.Run(p.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				correct, total := 0, 0
				for _, q := range bins {
					if analysis.DeriveLabel(q.Exe) != "icon" {
						continue
					}
					total++
					bestScore, bestLabel := -1, ""
					for _, c := range bins {
						if c.FileH == q.FileH {
							continue
						}
						s, err := ssdeep.Compare(p.get(q), p.get(c))
						if err != nil {
							continue
						}
						if s > bestScore {
							bestScore, bestLabel = s, analysis.DeriveLabel(c.Exe)
						}
					}
					// UNKNOWN is icon in disguise: both count as correct.
					if bestLabel == "icon" || bestLabel == analysis.UnknownLabel {
						correct++
					}
				}
				if total > 0 {
					acc = float64(correct) / float64(total)
				}
			}
			b.ReportMetric(acc*100, "%top1-accuracy")
		})
	}
}

// BenchmarkAblationExactVsFuzzy contrasts XALT-style sha1 recognition with
// fuzzy matching across the icon rebuild family: exact hashing recognises
// only byte-identical binaries; fuzzy hashing recognises the family.
func BenchmarkAblationExactVsFuzzy(b *testing.B) {
	f := fixture(b)
	var iconRecs []*postprocess.ProcessRecord
	seen := map[string]bool{}
	for _, r := range f.data.Records {
		if r.Category == "user" && analysis.DeriveLabel(r.Exe) == "icon" && r.FileH != "" && !seen[r.FileH] {
			seen[r.FileH] = true
			iconRecs = append(iconRecs, r)
		}
	}
	if len(iconRecs) < 3 {
		b.Skip("not enough icon variants at this scale")
	}
	b.Run("sha1-exact", func(b *testing.B) {
		var recall float64
		for i := 0; i < b.N; i++ {
			// Index the first variant; try to recognise the others.
			idx := xalt.NewIndex([]xalt.Record{{Exe: iconRecs[0].Exe, SHA1: "h0"}})
			hits := 0
			for _, r := range iconRecs[1:] {
				// Distinct binaries → distinct sha1 (r.FileH distinct implies
				// content differs), so exact lookup misses by construction.
				if idx.Recognize("h-"+r.FileH) != nil {
					hits++
				}
			}
			recall = float64(hits) / float64(len(iconRecs)-1)
		}
		b.ReportMetric(recall*100, "%recall")
	})
	b.Run("ssdeep-fuzzy", func(b *testing.B) {
		var recall float64
		for i := 0; i < b.N; i++ {
			hits := 0
			for _, r := range iconRecs[1:] {
				s, err := ssdeep.Compare(iconRecs[0].FileH, r.FileH)
				if err == nil && s > 0 {
					hits++
				}
			}
			recall = float64(hits) / float64(len(iconRecs)-1)
		}
		b.ReportMetric(recall*100, "%recall")
	})
}

func BenchmarkAblationTransports(b *testing.B) {
	msg := wire.Message{Header: wire.Header{JobID: "1", StepID: "0", PID: 1, Hash: "ab",
		Host: "n", Time: 1, Layer: wire.LayerSelf, Type: wire.TypeObjects, Total: 1},
		Content: []byte("/lib64/libc.so.6\n/lib64/libm.so.6\n")}
	datagram := wire.Encode(msg)

	b.Run("channel", func(b *testing.B) {
		tr := wire.NewChanTransport(1 << 16)
		go func() {
			for range tr.C() {
			}
		}()
		b.SetBytes(int64(len(datagram)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := tr.Send(datagram); err != nil {
				b.Fatal(err)
			}
		}
		tr.Close()
	})
	b.Run("udp-loopback", func(b *testing.B) {
		pc, err := listenUDP()
		if err != nil {
			b.Fatal(err)
		}
		defer pc.close()
		tr, err := wire.DialUDP(pc.addr)
		if err != nil {
			b.Fatal(err)
		}
		defer tr.Close()
		b.SetBytes(int64(len(datagram)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = tr.Send(datagram) // fire and forget
		}
	})
}

func BenchmarkAblationChunkSizes(b *testing.B) {
	h := wire.Header{JobID: "1", StepID: "0", PID: 1, Hash: "ab", Host: "n",
		Time: 1, Layer: wire.LayerSelf, Type: wire.TypeMaps}
	content := make([]byte, 64<<10)
	for i := range content {
		content[i] = byte('a' + i%26)
	}
	for _, size := range []int{512, 1400, 4096, 16384} {
		b.Run(fmt.Sprintf("max=%d", size), func(b *testing.B) {
			b.SetBytes(int64(len(content)))
			b.ReportAllocs()
			var chunks int
			for i := 0; i < b.N; i++ {
				msgs := wire.Chunk(h, content, size)
				chunks = len(msgs)
				recs := wire.Reassemble(msgs)
				if len(recs) != 1 || !recs[0].Complete {
					b.Fatal("reassembly failed")
				}
			}
			b.ReportMetric(float64(chunks), "chunks")
		})
	}
}

// --------------------------------------------------------------------------
// helpers

func tick(v bool) string {
	if v {
		return "yes"
	}
	return "-"
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
