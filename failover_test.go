// Kill-one-of-N failover end-to-end test (DESIGN.md §11): one campaign sent
// simultaneously to a never-killed baseline receiver and, through a
// membership-routed FailoverTransport, to three member receivers — one of
// which is SIGKILLed mid-stream. The sender must confirm the death, report
// it to the survivors, re-route, and replay the victim's journal; the
// survivors must admit the reassigned keys; and analysing the three member
// WALs — including the victim's partial, crash-recovered one — must produce
// a report byte-identical to the baseline's, with the merged row count equal
// to the baseline row count (the overlap window deduplicates to nothing).
package siren_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"siren/internal/campaign"
	"siren/internal/membership"
	"siren/internal/sirendb"
	"siren/internal/wire"
)

// freeAddr reserves a loopback port by binding, recording, and releasing it.
// Membership rosters name every member's address up front, so member ports
// must exist before the processes start; the tiny release-to-bind window is
// a non-issue on loopback.
func freeAddr(t *testing.T, network string) string {
	t.Helper()
	switch network {
	case "udp":
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := pc.LocalAddr().String()
		pc.Close()
		return addr
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	t.Fatalf("freeAddr: unknown network %q", network)
	return ""
}

// teeTransport duplicates the campaign stream to the baseline receiver and
// the failover dispatch, and fires kill() inline once killAt datagrams have
// been sent — guaranteeing the death lands mid-stream, with journaled
// traffic behind it and live traffic ahead of it.
type teeTransport struct {
	baseline wire.Transport
	failover wire.Transport
	killAt   int
	kill     func()

	mu   sync.Mutex
	sent int
}

func (tt *teeTransport) Send(d []byte) error {
	tt.mu.Lock()
	tt.sent++
	n := tt.sent
	tt.mu.Unlock()
	if n == tt.killAt {
		tt.kill()
	}
	if err := tt.baseline.Send(d); err != nil {
		return err
	}
	return tt.failover.Send(d)
}

func (tt *teeTransport) Close() error {
	err := tt.baseline.Close()
	if cerr := tt.failover.Close(); err == nil {
		err = cerr
	}
	return err
}

func TestKillOneOfNFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	repo, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	bin := t.TempDir()
	for _, tool := range []string{"siren-receiver", "siren-analyze"} {
		runCmd(t, repo, "go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
	}
	receiverBin := filepath.Join(bin, "siren-receiver")
	analyzeBin := filepath.Join(bin, "siren-analyze")

	work := t.TempDir()
	const members = 3
	const victim = 1

	// Roster: every member's UDP and health port reserved up front.
	udpAddrs := make([]string, members)
	healthAddrs := make([]string, members)
	entries := make([]string, members)
	for k := 0; k < members; k++ {
		udpAddrs[k] = freeAddr(t, "udp")
		healthAddrs[k] = freeAddr(t, "tcp")
		entries[k] = fmt.Sprintf("r%d=%s@%s", k, udpAddrs[k], healthAddrs[k])
	}
	roster := strings.Join(entries, ",")

	baselineWAL := filepath.Join(work, "baseline.wal")
	baseline := startReceiver(t, receiverBin,
		"-db", baselineWAL, "-stats-interval", "0", "-rcvbuf", "8388608", "-addr", "127.0.0.1:0")

	memberWALs := make([]string, members)
	procs := make([]*rcvProc, members)
	for k := 0; k < members; k++ {
		memberWALs[k] = filepath.Join(work, fmt.Sprintf("member-%d.wal", k))
		// -addr and -expvar-addr default from the roster entry. The
		// background prober is off: survivors must learn of the death from
		// the sender's confirm-probed /membership/down report alone.
		procs[k] = startReceiver(t, receiverBin,
			"-db", memberWALs[k], "-member-id", fmt.Sprintf("r%d", k), "-roster", roster,
			"-stats-interval", "0", "-rcvbuf", "8388608", "-probe-interval", "0s")
		if procs[k].addr != udpAddrs[k] {
			t.Fatalf("member %d bound %s, want its roster address %s", k, procs[k].addr, udpAddrs[k])
		}
	}

	table, err := membership.ParseRoster(roster)
	if err != nil {
		t.Fatal(err)
	}
	obsView, err := membership.NewView(table, "")
	if err != nil {
		t.Fatal(err)
	}
	ft, err := campaign.NewFailoverTransport(obsView, campaign.FailoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	baseTr, err := wire.DialUDP(baseline.addr)
	if err != nil {
		t.Fatal(err)
	}

	// ~11.9k datagrams at this scale/seed; SIGKILL the victim a third of the
	// way in, while its journal already holds real traffic.
	tee := &teeTransport{
		baseline: baseTr,
		failover: ft,
		killAt:   4000,
		kill: func() {
			if err := procs[victim].cmd.Process.Kill(); err != nil {
				t.Errorf("SIGKILL victim: %v", err)
			}
		},
	}
	if _, err := campaign.Run(campaign.Config{Scale: 0.002, Seed: 9, Transport: tee}); err != nil {
		t.Fatal(err)
	}

	// The sender resolved exactly one death, lost nothing, and replayed the
	// victim's journal.
	ds := ft.Stats()
	if ds.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1 (dispatch stats %+v)", ds.Failovers, ds)
	}
	if ds.SendErrors != 0 {
		t.Fatalf("SendErrors = %d, want 0 (dispatch stats %+v)", ds.SendErrors, ds)
	}
	if ds.Replayed == 0 {
		t.Fatalf("Replayed = 0: the victim's journal never re-sent (dispatch stats %+v)", ds)
	}
	if !obsView.Down(victim) {
		t.Fatal("victim not marked down in the sender's view")
	}

	// The survivors' own views converged on the death (via the sender's
	// /membership/down report; their probers were off).
	for k := 0; k < members; k++ {
		if k == victim {
			continue
		}
		resp, err := http.Get("http://" + healthAddrs[k] + "/membership")
		if err != nil {
			t.Fatalf("GET /membership on survivor %d: %v", k, err)
		}
		var status []membership.MemberStatus
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, ms := range status {
			if want := ms.ID == fmt.Sprintf("r%d", victim); ms.Down != want {
				t.Errorf("survivor %d sees %s down=%v, want %v", k, ms.ID, ms.Down, want)
			}
		}
	}

	if err := tee.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the last loopback datagrams land

	// Reap the SIGKILLed victim; its WAL is the crash-recovery input below.
	select {
	case <-procs[victim].eof:
	case <-time.After(10 * time.Second):
		t.Fatal("victim stdout never closed after SIGKILL")
	}
	procs[victim].cmd.Wait()

	baseStats := finalStats(t, baseline.stop(t))
	if baseStats.received != tee.sent {
		t.Fatalf("baseline saw %d of %d datagrams (kernel loss?); cannot assert byte identity", baseStats.received, tee.sent)
	}
	if baseStats.inserted != tee.sent || baseStats.rejected != 0 {
		t.Fatalf("baseline stats %+v, want inserted=%d rejected=0", baseStats, tee.sent)
	}

	// Survivors: nothing lost, nothing rejected (the report-before-reroute
	// ordering means no datagram ever reached a survivor whose view still
	// routed it to the victim), and the reassigned keys visibly admitted.
	failoverAccepted := 0
	for k := 0; k < members; k++ {
		if k == victim {
			continue
		}
		st := finalStats(t, procs[k].stop(t))
		if st.malformed != 0 || st.dropped != 0 || st.insertErrors != 0 || st.insertLost != 0 {
			t.Fatalf("survivor %d reported losses: %+v", k, st)
		}
		if st.rejected != 0 {
			t.Errorf("survivor %d rejected %d datagrams: admission raced the failover report", k, st.rejected)
		}
		if st.inserted != st.received {
			t.Errorf("survivor %d inserted %d of %d received", k, st.inserted, st.received)
		}
		failoverAccepted += st.acceptedFailover
	}
	if failoverAccepted == 0 {
		t.Error("no survivor counted accepted_failover: reassigned keys were never admitted as such")
	}

	// Merge-back in process: the victim's recovered WAL plus the survivors'
	// WALs dedup to exactly the baseline's row count — the overlap window
	// (rows the victim ingested before SIGKILL, replayed in full to the new
	// owners) double-ingests nothing.
	set, err := sirendb.OpenSet(memberWALs, sirendb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := set.Snapshot()
	preDedup := snap.Count()
	dst := snap.DedupOverlaps()
	if dst.OverlappingKeys == 0 || dst.SuppressedRows == 0 {
		t.Errorf("no overlap deduplicated (%+v): the victim's WAL recovered no pre-kill rows", dst)
	}
	if dst.Conflicts != 0 {
		t.Errorf("failover overlap produced %d conflicting runs, want 0 (%+v)", dst.Conflicts, dst)
	}
	if snap.Count() != baseStats.rows {
		t.Errorf("merged rows = %d after dedup (%d before), baseline stored %d: failover %s",
			snap.Count(), preDedup, baseStats.rows,
			map[bool]string{true: "double-ingested", false: "lost rows"}[snap.Count() > baseStats.rows])
	}
	if err := set.Close(); err != nil { // release the WAL locks for siren-analyze
		t.Fatal(err)
	}

	// The proof: the merged member set reproduces the never-killed
	// baseline's report byte for byte.
	outBaseline := runCmd(t, work, analyzeBin, "-db", baselineWAL)
	if !strings.Contains(outBaseline, "Table 2: users, jobs, and processes") {
		t.Fatalf("baseline analysis produced no tables:\n%s", truncate(outBaseline))
	}
	outMerged := runCmd(t, work, analyzeBin, "-db", strings.Join(memberWALs, ","))
	if outMerged != outBaseline {
		t.Errorf("post-failover merged analysis diverges from the baseline:\n--- baseline ---\n%s\n--- merged ---\n%s",
			truncate(outBaseline), truncate(outMerged))
	}
}
