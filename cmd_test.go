// CLI smoke tests: build and exercise the command surface end to end —
// siren-campaign writing a WAL, siren-analyze reading it back (including the
// CSV, audit, and clustering modes), and siren-hash hashing/comparing files.
package siren_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"siren/internal/wire"
)

func runCmd(t *testing.T, dir string, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCommandLineSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	repo, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	bin := t.TempDir()
	for _, tool := range []string{"siren-campaign", "siren-analyze", "siren-hash", "siren-scan"} {
		runCmd(t, repo, "go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
	}

	work := t.TempDir()
	wal := filepath.Join(work, "siren.wal")

	// Campaign → WAL.
	out := runCmd(t, work, filepath.Join(bin, "siren-campaign"), "-scale", "0.002", "-seed", "9", "-db", wal)
	if !strings.Contains(out, "Table 5: derived labels") {
		t.Errorf("campaign output missing tables:\n%s", truncate(out))
	}
	// The store splits the WAL into per-shard segment files "<path>.<n>".
	if _, err := os.Stat(wal + ".0"); err != nil {
		t.Fatalf("WAL segment not written: %v", err)
	}

	// Analyze the stored WAL.
	out = runCmd(t, work, filepath.Join(bin, "siren-analyze"), "-db", wal)
	if !strings.Contains(out, "Table 2: users, jobs, and processes") {
		t.Errorf("analyze output missing tables:\n%s", truncate(out))
	}
	out = runCmd(t, work, filepath.Join(bin, "siren-analyze"), "-db", wal, "-csv", "table5")
	if !strings.HasPrefix(out, "label,users,jobs,procs,file_h") {
		t.Errorf("csv output wrong:\n%s", truncate(out))
	}
	out = runCmd(t, work, filepath.Join(bin, "siren-analyze"), "-db", wal, "-clusters", "55")
	if !strings.Contains(out, "similarity clusters at threshold 55") {
		t.Errorf("clusters output wrong:\n%s", truncate(out))
	}
	runCmd(t, work, filepath.Join(bin, "siren-analyze"), "-db", wal, "-audit")

	// siren-hash: hash two related files and compare. Content must be
	// varied (perfectly periodic data degenerates any CTPH digest).
	f1 := filepath.Join(work, "a.bin")
	f2 := filepath.Join(work, "b.bin")
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "log line %04d: solver residual %d.%03d at step %d node nid%06d\n",
			i, i%7, (i*37)%1000, i*3, 1000+i%64)
	}
	base := sb.String()
	if err := os.WriteFile(f1, []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f2, []byte(base[:4000]+"INSERTED EDIT\n"+base[4000:]), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runCmd(t, work, filepath.Join(bin, "siren-hash"), f1, f2)
	if strings.Count(out, ":") < 4 {
		t.Errorf("hash output wrong: %s", out)
	}
	out = runCmd(t, work, filepath.Join(bin, "siren-hash"), "-compare", f1, f2)
	score := strings.TrimSpace(out)
	if score == "0" || score == "" {
		t.Errorf("compare score = %q, want > 0 for near-identical files", score)
	}
	out = runCmd(t, work, filepath.Join(bin, "siren-hash"), "-backend", "damerau", "-compare", f1, f1)
	if strings.TrimSpace(out) != "100" {
		t.Errorf("self-compare = %q, want 100", out)
	}

	// siren-scan against this test binary's own Go toolchain output: any
	// real ELF on disk will do; use the built siren-hash binary itself.
	out = runCmd(t, work, filepath.Join(bin, "siren-scan"), filepath.Join(bin, "siren-hash"))
	if !strings.Contains(out, "FILE_H") {
		t.Errorf("scan output wrong:\n%s", truncate(out))
	}
}

// TestReceiverExpvar runs siren-receiver with -expvar-addr and -partition,
// feeds it real datagrams over UDP — half owned by its partition, half not
// — and checks the /debug/vars endpoint serves the receiver and store
// counters, including the rejected-datagram count (the backpressure- and
// partition-telemetry satellites).
func TestReceiverExpvar(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	repo, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "siren-receiver")
	runCmd(t, repo, "go", "build", "-o", bin, "./cmd/siren-receiver")

	// The receiver runs as partition k/2 where k owns (JOBID=7, HOST=n1);
	// datagrams for (JOBID=7, HOST=reject-me) are crafted to hash to the
	// other partition so exactly those must surface as Rejected.
	owned := wire.PartitionIndex([]byte("7"), []byte("n1"), 2)
	rejectHost := ""
	for _, h := range []string{"n2", "n3", "n4", "n5", "n6", "n7"} {
		if wire.PartitionIndex([]byte("7"), []byte(h), 2) != owned {
			rejectHost = h
			break
		}
	}
	if rejectHost == "" {
		t.Fatal("no candidate host hashes to the foreign partition")
	}

	work := t.TempDir()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-db", filepath.Join(work, "siren.wal"),
		"-partition", fmt.Sprintf("%d/2", owned),
		"-expvar-addr", "127.0.0.1:0",
		"-stats-interval", "0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			t.Error("receiver did not exit on SIGTERM")
		}
	}()

	// The first two stdout lines announce the bound UDP and expvar
	// addresses.
	var udpAddr, expvarURL string
	sc := bufio.NewScanner(stdout)
	for (udpAddr == "" || expvarURL == "") && sc.Scan() {
		line := sc.Text()
		if _, rest, ok := strings.Cut(line, "listening on "); ok {
			udpAddr = strings.Fields(rest)[0]
			udpAddr = strings.TrimSuffix(udpAddr, ",")
		}
		if _, rest, ok := strings.Cut(line, "expvar on "); ok {
			expvarURL = strings.TrimSpace(rest)
		}
	}
	if udpAddr == "" || expvarURL == "" {
		t.Fatalf("startup lines missing (udp=%q expvar=%q): %v", udpAddr, expvarURL, sc.Err())
	}

	// Feed real datagrams so the counters move: 5 owned by this partition,
	// 3 owned by the (absent) sibling receiver.
	conn, err := net.Dial("udp", udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		datagram := fmt.Sprintf(
			"SIREN1|JOBID=7|STEPID=0|PID=%d|HASH=abcd|HOST=n1|TIME=1733900000|LAYER=SELF|TYPE=METADATA|SEQ=0|TOT=1|CONTENT=EXE=/bin/x", i)
		if _, err := conn.Write([]byte(datagram)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		datagram := fmt.Sprintf(
			"SIREN1|JOBID=7|STEPID=0|PID=%d|HASH=abcd|HOST=%s|TIME=1733900000|LAYER=SELF|TYPE=METADATA|SEQ=0|TOT=1|CONTENT=EXE=/bin/x", i, rejectHost)
		if _, err := conn.Write([]byte(datagram)); err != nil {
			t.Fatal(err)
		}
	}

	// Poll /debug/vars until the datagrams surface in the counters.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var vars struct {
			Receiver struct {
				Received int64
				Inserted int64
				Rejected int64
			} `json:"siren_receiver"`
			Store struct {
				Rows   int
				Shards int
			} `json:"siren_store"`
		}
		resp, err := http.Get(expvarURL)
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&vars)
			resp.Body.Close()
		}
		if err == nil && vars.Receiver.Received >= 8 && vars.Store.Rows >= 5 {
			if vars.Store.Shards < 1 {
				t.Errorf("store stats missing shard count: %+v", vars.Store)
			}
			if vars.Receiver.Rejected != 3 {
				t.Errorf("expvar Rejected = %d, want 3", vars.Receiver.Rejected)
			}
			if vars.Store.Rows != 5 {
				t.Errorf("store rows = %d, want only the 5 owned datagrams", vars.Store.Rows)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("expvar counters never reached 8 datagrams: last err=%v vars=%+v", err, vars)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func truncate(s string) string {
	if len(s) > 800 {
		return s[:800] + "…"
	}
	return s
}
