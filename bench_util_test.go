package siren_test

import "net"

// udpSink is a loopback UDP listener that discards datagrams, for transport
// benchmarks.
type udpSink struct {
	pc   net.PacketConn
	addr string
	done chan struct{}
}

func listenUDP() (*udpSink, error) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &udpSink{pc: pc, addr: pc.LocalAddr().String(), done: make(chan struct{})}
	go func() {
		buf := make([]byte, 65536)
		for {
			if _, _, err := pc.ReadFrom(buf); err != nil {
				close(s.done)
				return
			}
		}
	}()
	return s, nil
}

func (s *udpSink) close() {
	s.pc.Close()
	<-s.done
}
