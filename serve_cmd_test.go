// Serving-tier CLI tests: siren-serve over a finished campaign (report
// parity with siren-analyze -json, graceful shutdown) and siren-receiver
// -serve-addr answering identify queries over a live ingesting store fed by
// real UDP datagrams.
package siren_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"siren/internal/ssdeep"
	"siren/internal/wire"
)

// startCmd launches a binary and scans its stdout for the given startup
// markers ("marker text" → captured rest-of-line first field), returning
// the captures and a stopper that SIGTERMs and waits.
func startCmd(t *testing.T, bin string, args []string, markers []string) (map[string]string, func() string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var tail bytes.Buffer
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	found := make(map[string]string)
	sc := bufio.NewScanner(stdout)
	for len(found) < len(markers) && sc.Scan() {
		line := sc.Text()
		for _, m := range markers {
			if _, rest, ok := strings.Cut(line, m); ok {
				found[m] = strings.TrimSuffix(strings.Fields(rest)[0], ",")
			}
		}
	}
	if len(found) < len(markers) {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("startup markers missing: got %v want %v (scan err %v)", found, markers, sc.Err())
	}
	drained := make(chan struct{})
	go func() { // keep the pipe drained; EOF on process exit
		io.Copy(&tail, stdout)
		close(drained)
	}()
	stop := func() string {
		cmd.Process.Signal(syscall.SIGTERM)
		// Drain to EOF before Wait: Wait closes the pipe and would race the
		// copier out of the last lines ("drained") the exit path prints.
		select {
		case <-drained:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			t.Errorf("%s did not exit on SIGTERM", filepath.Base(bin))
			<-drained
		}
		if err := cmd.Wait(); err != nil {
			t.Errorf("%s exited with %v\n%s", filepath.Base(bin), err, tail.String())
		}
		return tail.String()
	}
	return found, stop
}

func TestServeCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	repo, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	bin := t.TempDir()
	for _, tool := range []string{"siren-campaign", "siren-analyze", "siren-serve"} {
		runCmd(t, repo, "go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
	}
	work := t.TempDir()
	wal := filepath.Join(work, "siren.wal")
	runCmd(t, work, filepath.Join(bin, "siren-campaign"), "-scale", "0.002", "-seed", "9", "-db", wal)

	// The offline JSON report, before siren-serve takes the member lock.
	offline := runCmd(t, work, filepath.Join(bin, "siren-analyze"), "-db", wal, "-json")

	found, stop := startCmd(t, filepath.Join(bin, "siren-serve"),
		[]string{"-db", wal, "-addr", "127.0.0.1:0"},
		[]string{"serving on "})
	base := found["serving on "]

	var health struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || health.Status != "ok" || health.Generation != 1 {
		t.Fatalf("healthz = %+v (err %v)", health, err)
	}

	// /api/v1/report must carry exactly the structure siren-analyze -json
	// emitted — one serialisation, two transports.
	resp, err = http.Get(base + "/api/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	var served struct {
		Report json.RawMessage `json:"report"`
	}
	err = json.NewDecoder(resp.Body).Decode(&served)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var servedRep, offlineRep any
	if err := json.Unmarshal(served.Report, &servedRep); err != nil {
		t.Fatalf("served report not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(offline), &offlineRep); err != nil {
		t.Fatalf("siren-analyze -json output not JSON: %v\n%s", err, truncate(offline))
	}
	sb, _ := json.Marshal(servedRep)
	ob, _ := json.Marshal(offlineRep)
	if !bytes.Equal(sb, ob) {
		t.Errorf("served report != siren-analyze -json:\n served  %s\n offline %s", truncate(string(sb)), truncate(string(ob)))
	}

	// Identify with a syntactically valid digest nothing matches: 200, empty.
	resp, err = http.Post(base+"/api/v1/identify", "application/json",
		strings.NewReader(`{"file_h":"3:aabbccdd:eeff"}`))
	if err != nil {
		t.Fatal(err)
	}
	var ident struct {
		Rows []json.RawMessage `json:"rows"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ident)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("identify: status %d err %v", resp.StatusCode, err)
	}

	// GET /metrics: the standalone server serves the shared registry — its
	// per-endpoint latency histograms plus the catalog's one boot refresh.
	text := scrape(t, base+"/metrics")
	if !strings.Contains(text, "# TYPE siren_http_request_ns histogram") {
		t.Errorf("/metrics missing the endpoint latency histogram:\n%s", text)
	}
	if got := sampleValue(text, "siren_catalog_refresh_ns_count"); got != 1 {
		t.Errorf("siren_catalog_refresh_ns_count = %d, want 1 (the boot refresh)", got)
	}

	out := stop()
	if !strings.Contains(out, "drained") {
		t.Errorf("shutdown did not drain cleanly:\n%s", out)
	}
}

func TestReceiverServeLiveIdentify(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	repo, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "siren-receiver")
	runCmd(t, repo, "go", "build", "-o", bin, "./cmd/siren-receiver")

	work := t.TempDir()
	found, stop := startCmd(t, bin,
		[]string{
			"-addr", "127.0.0.1:0",
			"-db", filepath.Join(work, "siren.wal"),
			"-serve-addr", "127.0.0.1:0",
			"-refresh-interval", "50ms",
			"-stats-interval", "0",
		},
		[]string{"listening on ", "serving recognition API on "})
	defer stop()
	udpAddr, base := found["listening on "], found["serving recognition API on "]

	// Feed a labelled build over real UDP, then identify a near-identical
	// digest through the live API. Content must be varied — perfectly
	// periodic data degenerates any CTPH digest.
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "lammps pair_style eam/alloy step %04d: residual %d.%03d neighbor nid%06d\n",
			i, i%7, (i*37)%1000, 1000+i%64)
	}
	content := sb.String()
	stored, err := ssdeep.HashString(content)
	if err != nil {
		t.Fatal(err)
	}
	query, err := ssdeep.HashString(content[:4000] + "PATCHED BUILD\n" + content[4000:])
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hdr := wire.Header{
		JobID: "42", StepID: "0", PID: 7, Hash: "feed", Host: "nid0001",
		Time: 1733900000, Layer: wire.LayerSelf, Seq: 0, Total: 1,
	}
	for typ, body := range map[string]string{
		wire.TypeMetadata: "EXE=/appl/lammps/bin/lmp\nCATEGORY=user\nUID=1000",
		wire.TypeFileH:    stored,
	} {
		h := hdr
		h.Type = typ
		if _, err := conn.Write(wire.Encode(wire.Message{Header: h, Content: []byte(body)})); err != nil {
			t.Fatal(err)
		}
	}

	// Poll until a catalog refresh has picked the rows up and the ranking
	// lands on LAMMPS.
	reqBody := fmt.Sprintf(`{"file_h":%q}`, query)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(base+"/api/v1/identify", "application/json", strings.NewReader(reqBody))
		var out struct {
			Generation uint64 `json:"generation"`
			Rows       []struct {
				Label string  `json:"label"`
				Exe   string  `json:"exe"`
				Avg   float64 `json:"avg"`
			} `json:"rows"`
		}
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
		}
		if err == nil && len(out.Rows) > 0 {
			if out.Rows[0].Label != "LAMMPS" || out.Rows[0].Exe != "/appl/lammps/bin/lmp" || out.Rows[0].Avg <= 0 {
				t.Fatalf("live identify ranked wrong: %+v", out.Rows)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("live identify never matched: last err=%v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
