// Command siren-analyze loads one or more receiver databases (WAL files),
// consolidates the UDP messages into per-process records, and regenerates
// the paper's tables and figures — the post-processing + statistics stage of
// the architecture (Figure 1), which the paper implements in Python.
//
// Usage:
//
//	siren-analyze -db siren.wal [-csv table5] [-json] [-workers N]
//	siren-analyze -db 'siren-0.wal,siren-1.wal,siren-2.wal'   # multi-receiver
//	siren-analyze -db 'campaign/siren-*.wal*'                 # glob over members
//
// -db takes a comma-separated list of WAL base paths, each element optionally
// a glob. Glob matches may name the member databases' on-disk artifacts
// directly (segment files "base.N", "base.lock"); they are folded back to
// their base paths and deduplicated. Multiple members — the databases of an
// N-receiver partitioned deployment — are analysed through one merged
// snapshot, producing exactly the report a single receiver ingesting the
// whole campaign would. Overlapping (JOBID, HOST) runs left by a receiver
// failover (the dead member's recovered WAL vs. the replayed copy its keys'
// new owners hold) are deduplicated before consolidation, so merging a
// crashed member back in never double-counts its overlap window.
//
// -json emits the full report as machine-readable JSON in exactly the shape
// the serving tier's /api/v1/report endpoint returns (report.JSONReport —
// one source of truth). -workers bounds the streaming-consolidation workers
// (0 = one per store shard), the knob behind the multi-core read-curve
// measurements.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"siren/internal/analysis"
	"siren/internal/postprocess"
	"siren/internal/pysec"
	"siren/internal/report"
	"siren/internal/sirendb"
	"siren/internal/ssdeep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "siren-analyze:", err)
		os.Exit(1)
	}
}

// run owns the process lifecycle so the deferred set close — which releases
// every member's advisory lock — fires on error paths too. The old main
// called os.Exit from a fatal() helper, which skipped deferred closes.
func run() (err error) {
	dbSpec := flag.String("db", "siren.wal", "WAL file(s) to analyse: comma-separated base paths, each optionally a glob")
	csvTable := flag.String("csv", "", "emit one table as CSV instead of the full report (table2|table3|table5|table8)")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON (the /api/v1/report shape)")
	workers := flag.Int("workers", 0, "streaming-consolidation workers (0 = one per store shard)")
	audit := flag.Bool("audit", false, "cross-reference Python imports against the insecure-package database (paper §6 future work)")
	clusters := flag.Int("clusters", 0, "report similarity clusters of user executables at this threshold (0 = off)")
	flag.Parse()

	paths, err := sirendb.ResolveSetPaths(*dbSpec)
	if err != nil {
		return err
	}
	set, err := sirendb.OpenSet(paths, sirendb.Options{})
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, set.Close()) }()
	// Streaming, shard-parallel consolidation over the merged snapshot
	// cursor: member databases (one per receiver partition) and their WAL
	// shards are grouped per job without ever materialising the whole
	// message set. A single -db path is the one-member degenerate case.
	snap := set.Snapshot()
	if len(paths) > 1 {
		// Failover merge-back (DESIGN.md §11): a receiver that died and
		// recovered contributes a WAL whose runs are sub-multisets of the
		// copies its keys' new owners hold. Suppress those before
		// consolidating so overlap windows never double-count; disjoint
		// static partitions dedup to nothing, so this is safe to always run.
		snap.DedupOverlaps()
	}
	data, stats := analysis.ConsolidateDataset(snap, postprocess.StreamOptions{Workers: *workers})

	if *audit {
		runAudit(data)
		return nil
	}
	if *clusters > 0 {
		runClusters(data, *clusters)
		return nil
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report.BuildJSON(data, stats))
	}
	if *csvTable == "" {
		report.WriteEvaluation(os.Stdout, data, stats)
		return nil
	}
	switch *csvTable {
	case "table2":
		var rows [][]string
		for _, s := range data.UserStats() {
			rows = append(rows, []string{s.User, report.Itoa(s.Jobs), report.Itoa(s.SystemProcs),
				report.Itoa(s.UserProcs), report.Itoa(s.PythonProcs)})
		}
		report.CSV(os.Stdout, []string{"user", "jobs", "system", "user", "python"}, rows)
	case "table3":
		var rows [][]string
		for _, e := range data.TopSystemExecutables(0) {
			rows = append(rows, []string{e.Path, report.Itoa(e.UniqueUsers), report.Itoa(e.Jobs),
				report.Itoa(e.Processes), report.Itoa(e.UniqueObjectsH)})
		}
		report.CSV(os.Stdout, []string{"executable", "users", "jobs", "procs", "objects_h"}, rows)
	case "table5":
		var rows [][]string
		for _, l := range data.DeriveLabels() {
			rows = append(rows, []string{l.Label, report.Itoa(l.UniqueUsers), report.Itoa(l.Jobs),
				report.Itoa(l.Processes), report.Itoa(l.UniqueFileH)})
		}
		report.CSV(os.Stdout, []string{"label", "users", "jobs", "procs", "file_h"}, rows)
	case "table8":
		var rows [][]string
		for _, s := range data.PythonInterpreters() {
			rows = append(rows, []string{s.Interpreter, report.Itoa(s.UniqueUsers), report.Itoa(s.Jobs),
				report.Itoa(s.Processes), report.Itoa(s.UniqueScriptH)})
		}
		report.CSV(os.Stdout, []string{"interpreter", "users", "jobs", "procs", "script_h"}, rows)
	default:
		return fmt.Errorf("unknown table %q", *csvTable)
	}
	return nil
}

// runAudit matches observed Python imports against the curated advisory DB.
func runAudit(data *analysis.Dataset) {
	db := pysec.NewDB()
	userMap := data.PythonPackageUsers()
	var obs []pysec.ImportObservation
	for _, p := range data.PythonPackages() {
		obs = append(obs, pysec.ImportObservation{
			Package: p.Package, Users: userMap[p.Package], Jobs: p.Jobs, Processes: p.Processes,
		})
	}
	findings := db.Audit(obs)
	if len(findings) == 0 {
		fmt.Println("audit: no flagged Python imports")
		return
	}
	var rows [][]string
	for _, f := range findings {
		rows = append(rows, []string{f.Severity.String(), f.Package, strings.Join(f.Users, " "),
			report.Itoa(f.Jobs), report.Itoa(f.Processes), f.Reason})
	}
	report.Table(os.Stdout, "Python import audit (insecure/suspicious packages)",
		[]string{"severity", "package", "users", "jobs", "procs", "reason"}, rows)
}

// runClusters prints similarity clusters of user executables.
func runClusters(data *analysis.Dataset, threshold int) {
	cs := data.SimilarityClusters(threshold, ssdeep.BackendWeighted)
	purity, n := analysis.ClusterPurity(cs)
	fmt.Printf("similarity clusters at threshold %d: %d clusters, label purity %.2f\n\n", threshold, n, purity)
	var rows [][]string
	for i, c := range cs {
		rows = append(rows, []string{report.Itoa(i), c.DominantLabel(),
			report.Itoa(len(c.Members)), report.Itoa(c.Processes), strings.Join(c.Labels, " ")})
	}
	report.Table(os.Stdout, "", []string{"#", "dominant", "binaries", "procs", "labels"}, rows)
}
