// Command siren-analyze loads a receiver database (WAL file), consolidates
// the UDP messages into per-process records, and regenerates the paper's
// tables and figures — the post-processing + statistics stage of the
// architecture (Figure 1), which the paper implements in Python.
//
// Usage:
//
//	siren-analyze -db siren.wal [-csv table5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"siren/internal/analysis"
	"siren/internal/pysec"
	"siren/internal/report"
	"siren/internal/sirendb"
	"siren/internal/ssdeep"
)

func main() {
	dbPath := flag.String("db", "siren.wal", "WAL file to analyse")
	csvTable := flag.String("csv", "", "emit one table as CSV instead of the full report (table2|table3|table5|table8)")
	audit := flag.Bool("audit", false, "cross-reference Python imports against the insecure-package database (paper §6 future work)")
	clusters := flag.Int("clusters", 0, "report similarity clusters of user executables at this threshold (0 = off)")
	flag.Parse()

	db, err := sirendb.Open(*dbPath)
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	// Streaming, shard-parallel consolidation over a snapshot cursor: the
	// WAL-replayed store is grouped per job without ever materialising the
	// whole message set.
	data, stats := analysis.ConsolidateDataset(db.Snapshot())

	if *audit {
		runAudit(data)
		return
	}
	if *clusters > 0 {
		runClusters(data, *clusters)
		return
	}
	if *csvTable == "" {
		report.WriteEvaluation(os.Stdout, data, stats)
		return
	}
	switch *csvTable {
	case "table2":
		var rows [][]string
		for _, s := range data.UserStats() {
			rows = append(rows, []string{s.User, report.Itoa(s.Jobs), report.Itoa(s.SystemProcs),
				report.Itoa(s.UserProcs), report.Itoa(s.PythonProcs)})
		}
		report.CSV(os.Stdout, []string{"user", "jobs", "system", "user", "python"}, rows)
	case "table3":
		var rows [][]string
		for _, e := range data.TopSystemExecutables(0) {
			rows = append(rows, []string{e.Path, report.Itoa(e.UniqueUsers), report.Itoa(e.Jobs),
				report.Itoa(e.Processes), report.Itoa(e.UniqueObjectsH)})
		}
		report.CSV(os.Stdout, []string{"executable", "users", "jobs", "procs", "objects_h"}, rows)
	case "table5":
		var rows [][]string
		for _, l := range data.DeriveLabels() {
			rows = append(rows, []string{l.Label, report.Itoa(l.UniqueUsers), report.Itoa(l.Jobs),
				report.Itoa(l.Processes), report.Itoa(l.UniqueFileH)})
		}
		report.CSV(os.Stdout, []string{"label", "users", "jobs", "procs", "file_h"}, rows)
	case "table8":
		var rows [][]string
		for _, s := range data.PythonInterpreters() {
			rows = append(rows, []string{s.Interpreter, report.Itoa(s.UniqueUsers), report.Itoa(s.Jobs),
				report.Itoa(s.Processes), report.Itoa(s.UniqueScriptH)})
		}
		report.CSV(os.Stdout, []string{"interpreter", "users", "jobs", "procs", "script_h"}, rows)
	default:
		fatal(fmt.Errorf("unknown table %q", *csvTable))
	}
}

// runAudit matches observed Python imports against the curated advisory DB.
func runAudit(data *analysis.Dataset) {
	db := pysec.NewDB()
	userMap := data.PythonPackageUsers()
	var obs []pysec.ImportObservation
	for _, p := range data.PythonPackages() {
		obs = append(obs, pysec.ImportObservation{
			Package: p.Package, Users: userMap[p.Package], Jobs: p.Jobs, Processes: p.Processes,
		})
	}
	findings := db.Audit(obs)
	if len(findings) == 0 {
		fmt.Println("audit: no flagged Python imports")
		return
	}
	var rows [][]string
	for _, f := range findings {
		rows = append(rows, []string{f.Severity.String(), f.Package, strings.Join(f.Users, " "),
			report.Itoa(f.Jobs), report.Itoa(f.Processes), f.Reason})
	}
	report.Table(os.Stdout, "Python import audit (insecure/suspicious packages)",
		[]string{"severity", "package", "users", "jobs", "procs", "reason"}, rows)
}

// runClusters prints similarity clusters of user executables.
func runClusters(data *analysis.Dataset, threshold int) {
	cs := data.SimilarityClusters(threshold, ssdeep.BackendWeighted)
	purity, n := analysis.ClusterPurity(cs)
	fmt.Printf("similarity clusters at threshold %d: %d clusters, label purity %.2f\n\n", threshold, n, purity)
	var rows [][]string
	for i, c := range cs {
		rows = append(rows, []string{report.Itoa(i), c.DominantLabel(),
			report.Itoa(len(c.Members)), report.Itoa(c.Processes), strings.Join(c.Labels, " ")})
	}
	report.Table(os.Stdout, "", []string{"#", "dominant", "binaries", "procs", "labels"}, rows)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "siren-analyze:", err)
	os.Exit(1)
}
