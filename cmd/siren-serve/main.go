// Command siren-serve is the standalone recognition service: it opens the
// database(s) of a finished campaign, builds the fingerprint catalog, and
// answers identification queries over the HTTP JSON API — the online form
// of the recognition the paper runs as a batch similarity search.
//
// Usage:
//
//	siren-serve -db siren.wal [-addr 127.0.0.1:8899]
//	siren-serve -db 'siren-0.wal,siren-1.wal,siren-2.wal'   # multi-receiver
//	siren-serve -db 'campaign/siren-*.wal*'                 # glob over members
//
// -db takes the same grammar as siren-analyze: a comma-separated list of WAL
// base paths, each element optionally a glob over the stores' on-disk
// artifacts. The members of an N-receiver partitioned deployment,
//
//	siren-receiver -addr 0.0.0.0:8787 -db siren-0.wal -partition 0/3
//	siren-receiver -addr 0.0.0.0:8788 -db siren-1.wal -partition 1/3
//	siren-receiver -addr 0.0.0.0:8789 -db siren-2.wal -partition 2/3
//
// are served as one merged catalog: siren-serve -db 'siren-*.wal*' answers
// exactly what a single receiver ingesting the whole campaign would. Every
// member's advisory lock is held for the lifetime of the server, so the
// receivers must have exited first; to query a store that is still
// ingesting, use siren-receiver -serve-addr instead.
//
// -readonly opens every member with a shared lock instead of the exclusive
// one: several siren-serve processes (or any other readers) can serve the
// same campaign side by side, and none of them can mutate it. Writers are
// still excluded for as long as any reader holds the lock. Read-only opens
// require fully recovered stores — a member with an unfinished compaction
// or an unmigrated legacy WAL is refused (open it writable once first).
//
// API: POST /api/v1/identify, GET /api/v1/jobs, /api/v1/clusters?threshold=,
// /api/v1/report, /api/v1/stats, /healthz (see internal/server). GET /metrics
// serves the process's telemetry — per-endpoint latency histograms and the
// catalog's refresh timings — in Prometheus text format, and -pprof adds the
// net/http/pprof profiling handlers under /debug/pprof/ on the same listener.
//
// -refresh-interval re-captures the catalog periodically; it defaults to 0
// (off) because an exclusively locked set cannot change. It exists for
// future sources that can.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"siren/internal/catalog"
	"siren/internal/obs"
	"siren/internal/server"
	"siren/internal/sirendb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "siren-serve:", err)
		os.Exit(1)
	}
}

// run owns the process lifecycle so the deferred closes — the member locks,
// the listener drain — fire on error paths too.
func run() (err error) {
	dbSpec := flag.String("db", "siren.wal", "WAL file(s) to serve: comma-separated base paths, each optionally a glob")
	addr := flag.String("addr", "127.0.0.1:8899", "HTTP listen address of the query API")
	refreshEvery := flag.Duration("refresh-interval", 0, "period of catalog re-capture (0 = off; a locked set cannot change)")
	workers := flag.Int("workers", 0, "streaming-consolidation workers per refresh (0 = one per store shard)")
	readonly := flag.Bool("readonly", false, "open every member with a shared lock: concurrent serve processes may share the campaign, writers stay excluded")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/ on the query listener")
	flag.Parse()

	paths, err := sirendb.ResolveSetPaths(*dbSpec)
	if err != nil {
		return err
	}
	set, err := sirendb.OpenSet(paths, sirendb.Options{ReadOnly: *readonly})
	if err != nil {
		return err
	}
	// Backstop for early-return paths; Close is idempotent, so the explicit
	// close at the end of the drain sequence makes this a no-op. A failing
	// member close must surface in run's error, not vanish.
	defer func() { err = errors.Join(err, set.Close()) }()

	// One process registry: the catalog's refresh instruments and the
	// server's per-endpoint histograms share it, so GET /metrics covers both.
	reg := obs.NewRegistry("siren-serve")
	cat := catalog.New(catalog.SetSource(set), catalog.Options{Workers: *workers, Metrics: reg})
	rs := cat.Refresh()
	fmt.Printf("siren-serve: catalog generation %d: %d jobs, %d processes, %d fingerprints (built in %s from %d members)\n",
		rs.Gen, rs.Jobs, cat.Generation().Stats.Processes, cat.Generation().Index.Len(), rs.Elapsed.Round(time.Millisecond), len(paths))

	srv := server.NewWithMetrics(cat, reg)
	// The query API hangs off an outer mux so profiling can ride the same
	// listener; the pprof handlers are registered one by one — never via the
	// package's blank-import side effect, which would publish on
	// http.DefaultServeMux (the nodefaultmux contract).
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	hs := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("siren-serve: serving on http://%s\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	stop := make(chan struct{})
	defer close(stop)
	if *refreshEvery > 0 {
		go func() {
			t := time.NewTicker(*refreshEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					cat.Refresh()
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
	case err := <-serveErr:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Println("siren-serve: drained")
	return set.Close()
}
