// benchdiff is the benchmark-regression gate behind `make bench-gate`: it
// parses `go test -bench` output, reduces each benchmark to its best (minimum)
// ns/op across repeated counts — the run least disturbed by scheduler noise —
// and either writes that reduction as a baseline JSON or compares it against a
// committed baseline, failing when the geometric-mean slowdown exceeds the
// threshold.
//
// Write a baseline:
//
//	go test -bench ... -count=5 ./... | benchdiff -write -out BENCH_BASELINE.json
//
// Gate against it:
//
//	go test -bench ... -count=5 ./... | benchdiff -baseline BENCH_BASELINE.json
//
// Benchmarks are keyed by "pkg.Name" (the pkg: header joined with the
// benchmark line), so identically-named benchmarks in different packages —
// both analysis and server export BenchmarkIdentify — never collide. A
// benchmark present in the baseline but missing from the current run fails
// the gate: a silently-dropped benchmark must not pass as "no regression".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed artifact: benchmark key -> best ns/op.
type Baseline struct {
	// Note records how the file was produced, for humans re-baselining.
	Note string `json:"note"`
	// NsPerOp maps "pkg.BenchmarkName" to minimum ns/op across counts.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

func main() {
	write := flag.Bool("write", false, "write a baseline instead of comparing")
	out := flag.String("out", "BENCH_BASELINE.json", "baseline file to write (with -write)")
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against")
	threshold := flag.Float64("threshold", 1.25, "maximum allowed geomean slowdown (current/baseline)")
	note := flag.String("note", "", "note to embed in the written baseline")
	flag.Parse()

	var in io.Reader = os.Stdin
	if args := flag.Args(); len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			fatalf("%v", err)
		}
		defer func() { _ = f.Close() }() // read-only input; nothing to lose
		in = f
	} else if len(args) > 1 {
		fatalf("at most one input file (default stdin), got %v", args)
	}

	cur, err := parseBench(in)
	if err != nil {
		fatalf("parsing bench output: %v", err)
	}
	if len(cur) == 0 {
		fatalf("no benchmark results in input")
	}

	if *write {
		writeBaseline(*out, *note, cur)
		return
	}
	compare(*baselinePath, cur, *threshold)
}

// parseBench reads `go test -bench` output. Package headers ("pkg: path")
// scope the benchmark lines that follow; repeated counts of one benchmark
// reduce to the minimum ns/op.
func parseBench(r io.Reader) (map[string]float64, error) {
	best := make(map[string]float64)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if after, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(after)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name  N  ns/op-value  "ns/op"  [more metric pairs]
		if len(fields) < 4 {
			continue
		}
		nsIdx := -1
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] == "ns/op" {
				nsIdx = i
				break
			}
		}
		if nsIdx < 0 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		name := trimProcSuffix(fields[0])
		key := pkg + "." + name
		if old, ok := best[key]; !ok || ns < old {
			best[key] = ns
		}
	}
	return best, sc.Err()
}

// trimProcSuffix drops the "-8" GOMAXPROCS suffix so keys are stable across
// machines with different core counts.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func writeBaseline(path, note string, cur map[string]float64) {
	b := Baseline{Note: note, NsPerOp: cur}
	if b.Note == "" {
		b.Note = "min ns/op across -count repeats; re-baseline with `make bench-rebaseline` (see DESIGN.md §9)"
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(cur), path)
}

func compare(path string, cur map[string]float64, threshold float64) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("reading baseline: %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatalf("parsing baseline %s: %v", path, err)
	}
	if len(base.NsPerOp) == 0 {
		fatalf("baseline %s holds no benchmarks", path)
	}

	keys := make([]string, 0, len(base.NsPerOp))
	for k := range base.NsPerOp {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	logSum, n := 0.0, 0
	var missing []string
	fmt.Printf("%-72s %12s %12s %8s\n", "benchmark", "baseline", "current", "ratio")
	for _, k := range keys {
		b := base.NsPerOp[k]
		c, ok := cur[k]
		if !ok {
			missing = append(missing, k)
			continue
		}
		ratio := c / b
		fmt.Printf("%-72s %12.0f %12.0f %7.2fx\n", k, b, c, ratio)
		logSum += math.Log(ratio)
		n++
	}
	for k, c := range cur {
		if _, ok := base.NsPerOp[k]; !ok {
			fmt.Printf("%-72s %12s %12.0f   (new)\n", k, "-", c)
		}
	}
	if len(missing) > 0 {
		fatalf("benchmarks in baseline but missing from this run: %s", strings.Join(missing, ", "))
	}
	geomean := math.Exp(logSum / float64(n))
	fmt.Printf("geomean slowdown: %.3fx (threshold %.2fx, %d benchmarks)\n", geomean, threshold, n)
	if geomean > threshold {
		fatalf("benchmark regression: geomean %.3fx exceeds threshold %.2fx", geomean, threshold)
	}
	fmt.Println("benchdiff: PASS")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
