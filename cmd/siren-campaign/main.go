// Command siren-campaign runs the simulated LUMI deployment campaign
// end-to-end — catalogue install, 12-user workload, LD_PRELOAD collection,
// UDP (or in-process) transport, receiver, database, post-processing — and
// prints every table and figure of the paper's evaluation section.
//
// Usage:
//
//	siren-campaign [-scale 0.02] [-seed 1] [-db siren.wal] [-udp] [-loss 0.0002] [-workers N]
//	               [-send-retries R] [-debug-addr HOST:PORT]
//
// -scale 1.0 regenerates the paper's full magnitudes (~2.3M processes;
// allow a few minutes). -loss injects datagram loss to reproduce the
// missing-fields observation (§3.1). -send-retries re-attempts failed
// transport sends with jittered backoff (transient ENOBUFS bursts under
// -udp) before counting the datagram lost, and prints the delivery
// counters at the end.
//
// -debug-addr starts a debug listener for the duration of the run: GET
// /metrics serves the pipeline's live telemetry (ingest stage histograms,
// WAL fsync latency, send retries) in Prometheus text format, and the
// net/http/pprof handlers under /debug/pprof/ profile a long full-scale
// campaign while it executes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"siren/internal/campaign"
	"siren/internal/core"
	"siren/internal/obs"
	"siren/internal/report"
)

func main() {
	scale := flag.Float64("scale", campaign.DefaultScale, "workload scale (1.0 = paper magnitudes)")
	seed := flag.Int64("seed", 1, "generation seed")
	dbPath := flag.String("db", "", "WAL file for the message store (default in-memory)")
	udp := flag.Bool("udp", false, "use a real loopback UDP socket instead of the in-process transport")
	loss := flag.Float64("loss", 0, "datagram loss rate to inject (e.g. 0.0002)")
	workers := flag.Int("workers", 0, "concurrent job executors (default GOMAXPROCS)")
	sendRetries := flag.Int("send-retries", 0, "retries per failed transport send, with jittered backoff (0 disables)")
	debugAddr := flag.String("debug-addr", "", "HTTP listen address serving /metrics and /debug/pprof/ for the duration of the run (\"\" disables)")
	flag.Parse()

	opts := core.Options{DBPath: *dbPath, LossRate: *loss, LossSeed: *seed, SendRetries: *sendRetries}
	if *udp {
		opts.UDPAddr = "127.0.0.1:0"
	}
	if *debugAddr != "" {
		opts.Metrics = obs.NewRegistry("siren-campaign")
		shutdown, err := serveDebug(*debugAddr, opts.Metrics)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
	}
	pipeline, err := core.NewPipeline(opts)
	if err != nil {
		fatal(err)
	}
	// fatal() exits without running defers, so this only fires on the
	// success path — where a failing close (unflushed UDP stats, WAL close
	// error in the in-process store) must not be silent.
	defer func() {
		if cerr := pipeline.Close(); cerr != nil {
			fatal(cerr)
		}
	}()

	res, err := pipeline.RunCampaign(campaign.Config{Scale: *scale, Seed: *seed, Workers: *workers})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("campaign: %d jobs, %d processes simulated (scale %g)\n",
		res.JobsRun, res.ProcessesRun, *scale)
	cs := res.Collector.Stats()
	fmt.Printf("collector: seen=%d collected=%d rank-skipped=%d messages=%d failures=%d\n",
		cs.ProcessesSeen.Load(), cs.ProcessesCollected.Load(), cs.ProcessesSkipped.Load(),
		cs.MessagesSent.Load(), cs.Failures.Load())
	if *sendRetries > 0 {
		ss := pipeline.SendStats()
		fmt.Printf("transport: sent=%d retries=%d send_errors=%d\n", ss.Sent, ss.Retries, ss.SendErrors)
	}
	fmt.Println()

	data, stats, err := pipeline.Analyze()
	if err != nil {
		fatal(err)
	}
	report.WriteEvaluation(os.Stdout, data, stats)
}

// serveDebug starts the run-scoped debug listener: /metrics in Prometheus
// text format plus the pprof profiling handlers, on a dedicated mux —
// handler by handler, never via net/http/pprof's blank-import side effect on
// http.DefaultServeMux (the nodefaultmux contract).
func serveDebug(addr string, reg *obs.Registry) (shutdown func(), err error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	hs := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("debug: serving metrics and pprof on http://%s\n", ln.Addr())
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "siren-campaign: debug server:", err)
		}
	}()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "siren-campaign:", err)
	os.Exit(1)
}
