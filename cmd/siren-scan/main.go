// Command siren-scan inspects real on-disk ELF executables the way the
// injected siren.so does: compiler identification strings, DT_NEEDED
// libraries, global symbols, and the three SSDeep fuzzy hashes (raw file,
// printable strings, symbol table). With two paths it also prints the
// pairwise similarity of every characteristic — the real-host analogue of
// the Table 7 comparison.
//
// Usage:
//
//	siren-scan /usr/bin/bash
//	siren-scan -compare /usr/bin/bash /usr/bin/sh
//	siren-scan -send 127.0.0.1:8787 /usr/bin/bash
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"siren/internal/core"
	"siren/internal/ssdeep"
	"siren/internal/wire"
	"siren/internal/xxhash"
)

func main() {
	compare := flag.Bool("compare", false, "compare two executables")
	send := flag.String("send", "", "also send the records to a siren-receiver at this UDP address")
	flag.Parse()
	paths := flag.Args()
	if len(paths) == 0 || (*compare && len(paths) != 2) {
		fmt.Fprintln(os.Stderr, "usage: siren-scan [-compare] [-send addr] <elf>...")
		os.Exit(2)
	}

	if *compare {
		if err := comparePair(paths[0], paths[1]); err != nil {
			fatal(err)
		}
		return
	}
	for _, p := range paths {
		if err := scanOne(p, *send); err != nil {
			fmt.Fprintf(os.Stderr, "siren-scan: %s: %v\n", p, err)
		}
	}
}

func scanOne(path, sendAddr string) (err error) {
	img, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := core.ScanBinary(img)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%d bytes)\n", path, len(img))
	fmt.Printf("  PATH_HASH  %s\n", xxhash.Hash128String(path).Hex())
	fmt.Printf("  FILE_H     %s\n", rep.FileH)
	fmt.Printf("  STRINGS_H  %s\n", rep.StringsH)
	fmt.Printf("  SYMBOLS_H  %s\n", rep.SymbolsH)
	if len(rep.Compilers) > 0 {
		fmt.Printf("  COMPILERS  %s\n", strings.Join(rep.Compilers, " | "))
	}
	if len(rep.Needed) > 0 {
		fmt.Printf("  NEEDED     %s\n", strings.Join(rep.Needed, " "))
	}
	fmt.Printf("  SYMBOLS    %d global\n", len(rep.Symbols))

	if sendAddr == "" {
		return nil
	}
	tr, err := wire.DialUDP(sendAddr)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, tr.Close()) }()
	hdr := wire.Header{
		JobID: os.Getenv("SLURM_JOB_ID"), StepID: os.Getenv("SLURM_STEP_ID"),
		PID: os.Getpid(), Hash: xxhash.Hash128String(path).Hex(),
		Host: hostname(), Time: timeNow(), Layer: wire.LayerSelf,
	}
	for typ, content := range map[string][]byte{
		wire.TypeFileH:     []byte(rep.FileH),
		wire.TypeStringsH:  []byte(rep.StringsH),
		wire.TypeSymbolsH:  []byte(rep.SymbolsH),
		wire.TypeCompilers: []byte(strings.Join(rep.Compilers, "\n")),
	} {
		h := hdr
		h.Type = typ
		for _, m := range wire.Chunk(h, content, wire.MaxDatagram) {
			// Fire and forget: send errors are deliberately ignored.
			_ = tr.Send(wire.Encode(m))
		}
	}
	fmt.Printf("  sent to %s\n", sendAddr)
	return nil
}

func comparePair(a, b string) error {
	imgA, err := os.ReadFile(a)
	if err != nil {
		return err
	}
	imgB, err := os.ReadFile(b)
	if err != nil {
		return err
	}
	repA, err := core.ScanBinary(imgA)
	if err != nil {
		return fmt.Errorf("%s: %w", a, err)
	}
	repB, err := core.ScanBinary(imgB)
	if err != nil {
		return fmt.Errorf("%s: %w", b, err)
	}
	score := func(x, y string) int {
		s, err := ssdeep.Compare(x, y)
		if err != nil {
			return 0
		}
		return s
	}
	fi := score(repA.FileH, repB.FileH)
	st := score(repA.StringsH, repB.StringsH)
	sy := score(repA.SymbolsH, repB.SymbolsH)
	fmt.Printf("%s vs %s\n", a, b)
	fmt.Printf("  FI_H=%d ST_H=%d SY_H=%d avg=%.1f\n", fi, st, sy, float64(fi+st+sy)/3)
	return nil
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "unknown"
	}
	return h
}

func timeNow() int64 {
	// Separated for clarity: the collection timestamp has one-second
	// granularity, like siren.so's time(NULL).
	return nowUnix()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "siren-scan:", err)
	os.Exit(1)
}
