package main

import "time"

func nowUnix() int64 { return time.Now().Unix() }
