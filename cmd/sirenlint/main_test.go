package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

const fixtureMod = "testdata/mod"

func TestRunFindsAndReports(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{fixtureMod}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (one unsuppressed finding); stderr: %s", code, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "[walltime]") {
		t.Errorf("output missing [walltime] finding:\n%s", text)
	}
	if !strings.Contains(text, filepath.Join("analysis", "a.go")+":10:") {
		t.Errorf("output missing file:line position for the unsuppressed call:\n%s", text)
	}
	if !strings.Contains(text, "1 finding(s) suppressed") {
		t.Errorf("output missing suppression note:\n%s", text)
	}
}

// TestJSONShape pins the -json contract: module, rules, diagnostics with
// rule/file/line/column/message, and the suppressed count.
func TestJSONShape(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", fixtureMod}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}

	var rep struct {
		Module      string   `json:"module"`
		Rules       []string `json:"rules"`
		Diagnostics []struct {
			Rule    string `json:"rule"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Message string `json:"message"`
		} `json:"diagnostics"`
		Suppressed int `json:"suppressed"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output does not decode: %v\n%s", err, out.String())
	}
	if rep.Module != "fixmod" {
		t.Errorf("module = %q, want fixmod", rep.Module)
	}
	if len(rep.Rules) < 6 {
		t.Errorf("rules = %v, want all six by default", rep.Rules)
	}
	if len(rep.Diagnostics) != 1 {
		t.Fatalf("diagnostics = %d, want 1", len(rep.Diagnostics))
	}
	d := rep.Diagnostics[0]
	if d.Rule != "walltime" || d.Line != 10 || d.Column == 0 || d.Message == "" ||
		!strings.HasSuffix(d.File, filepath.Join("analysis", "a.go")) {
		t.Errorf("diagnostic = %+v, want walltime at analysis/a.go:10 with message", d)
	}
	if rep.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1", rep.Suppressed)
	}
}

// TestJSONCleanRun pins the zero-finding shape: diagnostics is an empty
// array (not null) and the exit status is 0 when only suppressed findings
// remain.
func TestJSONCleanRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-rules", "errsink", fixtureMod}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `"diagnostics": []`) {
		t.Errorf("clean run must emit an empty diagnostics array, got:\n%s", out.String())
	}
	var rep struct {
		Rules []string `json:"rules"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rules) != 1 || rep.Rules[0] != "errsink" {
		t.Errorf("rules = %v, want [errsink]", rep.Rules)
	}
}

func TestRuleSelection(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule", fixtureMod}, &out, &errb); code != 2 {
		t.Errorf("unknown rule: exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown rule") {
		t.Errorf("stderr = %q, want unknown-rule error", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-rules", "walltime", fixtureMod}, &out, &errb); code != 1 {
		t.Errorf("walltime only: exit = %d, want 1", code)
	}
}

func TestListRules(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"mutexscope", "snapshotmut", "nodefaultmux", "errsink", "goroleak", "walltime"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing rule %s:\n%s", name, out.String())
		}
	}
}

func TestBadModuleDir(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"testdata"}, &out, &errb); code != 2 {
		t.Errorf("non-module dir: exit = %d, want 2", code)
	}
}
