// Fixture module for the CLI tests: one unsuppressed walltime finding, one
// suppressed.
package analysis

import "time"

func Stamp() int64 {
	//lint:ignore walltime ingestion timestamp, deliberately wall-clock
	a := time.Now().Unix()
	b := time.Now().Unix()
	return a + b
}
