// Command sirenlint runs SIREN's project-invariant analyzers over the
// module (DESIGN.md §10): the concurrency, durability, and serving
// contracts the design document states in prose, machine-checked on every
// build. Exit status 0 means zero unsuppressed findings.
//
// Usage:
//
//	sirenlint [-json] [-rules a,b,...] [-list] [module-dir]
//
// With no directory argument the module rooted at the current directory is
// analyzed. -rules restricts the run to a comma-separated subset; -list
// prints the registered rules. -json emits the machine-readable report on
// stdout for tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"siren/internal/lintkit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json output shape; a stable contract for tooling.
type jsonReport struct {
	Module      string           `json:"module"`
	Rules       []string         `json:"rules"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Suppressed  int              `json:"suppressed"`
}

type jsonDiagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sirenlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the report as JSON on stdout")
	rulesFlag := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list registered rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, r := range lintkit.AllRules() {
			fmt.Fprintf(stdout, "%-14s %s\n", r.Name(), r.Doc())
		}
		return 0
	}

	rules, err := selectRules(*rulesFlag)
	if err != nil {
		fmt.Fprintln(stderr, "sirenlint:", err)
		return 2
	}

	dir := "."
	if fs.NArg() > 0 {
		dir = fs.Arg(0)
	}
	mod, err := lintkit.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(stderr, "sirenlint:", err)
		return 2
	}

	res := lintkit.Run(mod, rules)

	if *jsonOut {
		rep := jsonReport{
			Module:      mod.Path,
			Diagnostics: []jsonDiagnostic{}, // never null in output
			Suppressed:  len(res.Suppressed),
		}
		for _, r := range rules {
			rep.Rules = append(rep.Rules, r.Name())
		}
		for _, d := range res.Diagnostics {
			rep.Diagnostics = append(rep.Diagnostics, jsonDiagnostic{
				Rule:    d.Rule,
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "sirenlint:", err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Fprintln(stdout, d)
		}
		if n := len(res.Suppressed); n > 0 {
			fmt.Fprintf(stdout, "sirenlint: %d finding(s) suppressed by //lint:ignore\n", n)
		}
	}

	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

func selectRules(spec string) ([]lintkit.Rule, error) {
	all := lintkit.AllRules()
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]lintkit.Rule, len(all))
	for _, r := range all {
		byName[r.Name()] = r
	}
	var rules []lintkit.Rule
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (use -list)", name)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("no rules selected")
	}
	return rules, nil
}
