// Command siren-receiver is the standalone UDP message receiver: it binds a
// socket, funnels datagrams through hash-partitioned writer shards into the
// WAL-backed database, logs a periodic stats line, and reports final
// statistics on shutdown (SIGINT/SIGTERM) — the Go receiver of the paper's
// architecture (Figure 1), scaled out per DESIGN.md.
//
// Usage:
//
//	siren-receiver [-addr 127.0.0.1:8787] [-db siren.wal]
//	               [-partition k/N]
//	               [-readers N] [-writers M] [-depth D] [-batch B]
//	               [-db-shards S] [-sync-interval 100ms]
//	               [-rcvbuf BYTES] [-stats-interval 10s]
//	               [-serve-addr HOST:PORT] [-refresh-interval 5s]
//	               [-seal-interval 0] [-retain 0] [-pprof]
//
// The -expvar-addr mux additionally serves GET /metrics — every tier's
// latency histograms and counters (ingest stages, WAL fsync, seal phases,
// catalog refresh, probe RTT) in Prometheus text format — and, with -pprof,
// the net/http/pprof profiling handlers under /debug/pprof/.
//
// -seal-interval periodically freezes the WAL head into immutable sorted
// run files (sirendb.Seal): restart replay then costs only the rows since
// the last seal, and the runs reopen in O(index). -retain N drops sealed
// generations older than the newest N after each seal — the storage
// retention knob of a long campaign (0 keeps everything).
//
// -serve-addr starts the online recognition service over the live store:
// the HTTP JSON query API of internal/server (POST /api/v1/identify,
// GET /api/v1/jobs, /api/v1/clusters, /api/v1/report, /api/v1/stats,
// /healthz), backed by a fingerprint catalog refreshed incrementally every
// -refresh-interval while ingest keeps running. Queries answer from the
// last published catalog generation — at most one refresh interval behind
// the ingest stream, never blocking it.
//
// The listen address defaults to loopback — safe on a login node, where only
// local collectors (or an SSH-forwarded port) can reach the socket. A real
// deployment accepting datagrams from compute nodes binds a routable
// interface explicitly, e.g. -addr 0.0.0.0:8787.
//
// Multi-receiver deployment: N processes share one campaign by running each
// with its own database and a distinct partition slice,
//
//	siren-receiver -addr 0.0.0.0:8787 -db siren-0.wal -partition 0/3
//	siren-receiver -addr 0.0.0.0:8788 -db siren-1.wal -partition 1/3
//	siren-receiver -addr 0.0.0.0:8789 -db siren-2.wal -partition 2/3
//
// Each receiver admits only datagrams whose wire.PartitionHash(JOBID, HOST)
// lands in its slice and counts the rest as rejected, so senders may spray
// or broadcast across all N ports with no double-ingest. Analysis merges the
// member databases back together: siren-analyze -db 'siren-0.wal,siren-1.wal,siren-2.wal'.
//
// Membership mode (DESIGN.md §11) replaces the static -partition slices with
// a failover-capable roster:
//
//	siren-receiver -db siren-0.wal -member-id r0 \
//	    -roster 'r0=127.0.0.1:8787@127.0.0.1:9787,r1=127.0.0.1:8788@127.0.0.1:9788,r2=127.0.0.1:8789@127.0.0.1:9789'
//
// Each process admits the keys it owns under rendezvous hashing over the
// currently-live members, so when one receiver dies its keys reassign to
// survivors with no operator action (admitted keys whose all-live owner was
// the dead member are counted accepted_failover). -addr and -expvar-addr
// default from the member's roster entry (UDP@health); the health side of
// the stats mux serves /healthz (liveness + ingest-stall, see -health-stall),
// GET /membership (the live view as JSON), and POST /membership/down?id=X
// (confirm-probed death reports from senders). A background prober
// (-probe-interval/-probe-timeout) also detects peer deaths directly.
// -partition and membership mode are mutually exclusive.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"siren/internal/catalog"
	"siren/internal/membership"
	"siren/internal/obs"
	"siren/internal/receiver"
	"siren/internal/server"
	"siren/internal/sirendb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "siren-receiver:", err)
		os.Exit(1)
	}
}

// parsePartition parses a "k/N" partition spec ("" = unpartitioned).
func parsePartition(spec string) (k, n int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	bad := func() (int, int, error) {
		return 0, 0, fmt.Errorf("invalid -partition %q: want k/N with 0 <= k < N", spec)
	}
	ks, ns, ok := strings.Cut(spec, "/")
	if !ok {
		return bad()
	}
	if k, err = strconv.Atoi(ks); err != nil {
		return bad()
	}
	if n, err = strconv.Atoi(ns); err != nil {
		return bad()
	}
	if n < 1 || k < 0 || k >= n {
		return bad()
	}
	return k, n, nil
}

// run owns the whole process lifecycle so every defer — the store's final
// fsync-and-close, the receiver drain, the expvar listener — fires on the
// error paths too. The old main called os.Exit from a fatal() helper, which
// skipped deferred closes: a ListenUDP failure after a successful open
// leaked the group-commit syncers and bypassed the final WAL fsync.
func run() (err error) {
	addr := flag.String("addr", "127.0.0.1:8787", "UDP listen address (loopback by default; bind 0.0.0.0 to accept remote collectors)")
	dbPath := flag.String("db", "siren.wal", "WAL file for the message store")
	partSpec := flag.String("partition", "", "admit only partition k of N as \"k/N\" (e.g. 0/3); empty = admit everything")
	readers := flag.Int("readers", 0, "UDP reader goroutines (0 = auto)")
	writers := flag.Int("writers", 0, "writer shards, hash-partitioned by (JobID, Host) (0 = default)")
	depth := flag.Int("depth", 0, "total buffered-channel capacity across shards (0 = default)")
	batch := flag.Int("batch", 0, "max messages per database insert batch (0 = default)")
	rcvbuf := flag.Int("rcvbuf", 0, "requested SO_RCVBUF in bytes (0 = default 4 MiB)")
	dbShards := flag.Int("db-shards", 0, "store shards, each with its own WAL segment (0 = match writers)")
	syncEvery := flag.Duration("sync-interval", sirendb.DefaultSyncInterval,
		"group-commit fsync latency bound (negative = fsync every batch)")
	statsEvery := flag.Duration("stats-interval", 10*time.Second, "period of the stats log line (0 disables)")
	expvarAddr := flag.String("expvar-addr", "", "HTTP listen address exporting receiver+store stats as expvar under /debug/vars (\"\" disables; defaults to the roster health address in membership mode)")
	memberID := flag.String("member-id", "", "this receiver's ID in -roster (enables membership-table admission)")
	rosterSpec := flag.String("roster", "", "campaign roster as \"id=udp@health,...\" (health optional); requires -member-id")
	probeEvery := flag.Duration("probe-interval", time.Second, "period of background peer health probes in membership mode (<= 0 disables)")
	probeTimeout := flag.Duration("probe-timeout", 500*time.Millisecond, "timeout of each peer health probe and of /membership/down confirm-probes")
	healthStall := flag.Duration("health-stall", 0, "make /healthz report 503 if the UDP socket is open but no datagram arrived for this long (0 disables stall detection)")
	sealEvery := flag.Duration("seal-interval", 0, "period of sealing the WAL head into immutable run files (0 disables; bounds restart replay to the rows since the last seal)")
	retain := flag.Int("retain", 0, "sealed generations to keep after each seal; older runs are deleted (0 keeps everything; requires -seal-interval)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/ on the -expvar-addr mux")
	serveAddr := flag.String("serve-addr", "", "HTTP listen address of the online recognition API over the live store (\"\" disables)")
	refreshEvery := flag.Duration("refresh-interval", 5*time.Second, "period of incremental catalog refresh behind -serve-addr (<= 0 disables: the served catalog then never sees ingested rows)")
	flag.Parse()

	partition, partitions, err := parsePartition(*partSpec)
	if err != nil {
		return err
	}
	if *retain < 0 {
		return errors.New("-retain must be >= 0")
	}
	if *retain > 0 && *sealEvery <= 0 {
		return errors.New("-retain needs -seal-interval: generations only accumulate when sealing runs")
	}

	// Membership mode: rendezvous admission over the roster's live members,
	// replacing (not composing with) the static partition slice.
	var view *membership.View
	if (*memberID != "") != (*rosterSpec != "") {
		return errors.New("-member-id and -roster must be set together")
	}
	if *rosterSpec != "" {
		if partitions > 1 {
			return errors.New("-partition and -roster are mutually exclusive: membership admission supersedes static slices")
		}
		table, err := membership.ParseRoster(*rosterSpec)
		if err != nil {
			return err
		}
		view, err = membership.NewView(table, *memberID)
		if err != nil {
			return err
		}
		// Default the listen addresses from this member's roster entry so the
		// roster is the single source of truth for the deployment layout;
		// explicit flags still win.
		self := table.Member(view.SelfIndex())
		setFlags := make(map[string]bool)
		flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
		if !setFlags["addr"] {
			*addr = self.UDPAddr
		}
		if !setFlags["expvar-addr"] && self.HealthAddr != "" {
			*expvarAddr = self.HealthAddr
		}
	}

	// Defaulting the store shards to the writer count keeps the writer→store
	// mapping 1:1, so every batch lands in its store shard without
	// re-partitioning (receiver.ShardedStore).
	if *pprofOn && *expvarAddr == "" {
		return errors.New("-pprof needs -expvar-addr: the profiling handlers live on the stats mux")
	}

	// One process-wide metrics registry shared by every tier — the store's
	// WAL/seal histograms, the receiver's pipeline stages, the catalog's
	// refresh timings, the server's per-endpoint latencies and the prober's
	// RTTs all register here, so a single GET /metrics scrape covers the
	// whole pipeline (DESIGN.md §13).
	reg := obs.NewRegistry("siren-receiver")

	shards := *dbShards
	if shards <= 0 {
		shards = receiver.Options{Writers: *writers}.ResolvedWriters()
	}
	db, err := sirendb.OpenOptions(*dbPath, sirendb.Options{Shards: shards, SyncInterval: *syncEvery, Metrics: reg})
	if err != nil {
		return err
	}
	// Backstop for early-return paths; Close is idempotent, so the happy
	// path's explicit shutdown below makes this a no-op. A failed WAL close
	// here is lost durability and must surface in run's error.
	defer func() { err = errors.Join(err, db.Close()) }()
	rcv := receiver.New(db, receiver.Options{
		Depth:      *depth,
		BatchMax:   *batch,
		Readers:    *readers,
		Writers:    *writers,
		ReadBuffer: *rcvbuf,
		Partition:  partition,
		Partitions: partitions,
		View:       view,
		Metrics:    reg,
	})
	defer func() { err = errors.Join(err, rcv.Close()) }()
	bound, err := rcv.ListenUDP(*addr)
	if err != nil {
		return err
	}
	slice := "all partitions"
	if partitions > 1 {
		slice = fmt.Sprintf("partition %d/%d", partition, partitions)
	}
	if view != nil {
		slice = fmt.Sprintf("member %s of %d", *memberID, view.Table().Len())
	}
	fmt.Printf("siren-receiver: listening on %s (%s), storing to %s (%d shards, %d replayed rows, %d corrupt skipped)\n",
		bound, slice, *dbPath, db.StoreShards(), db.Count(), db.CorruptRecords())

	// Telemetry: the same counters the periodic log line prints, plus the
	// store's WAL/durability state, as machine-readable expvar JSON — the
	// backpressure counters (Dropped, Rejected, InsertErrors, InsertLost)
	// are the ones an operator alerts on. The vars live in a local map
	// served by a dedicated mux + http.Server: nothing touches the global
	// expvar registry or http.DefaultServeMux (whose Publish/Handle calls
	// panic on re-registration — two receivers embedded in one test process
	// used to collide), and Shutdown on exit drains the listener cleanly
	// instead of abandoning in-flight scrapes.
	if *expvarAddr != "" {
		vars := new(expvar.Map).Init()
		vars.Set("siren_receiver", expvar.Func(func() any { return rcv.Stats().Snapshot() }))
		vars.Set("siren_store", expvar.Func(func() any { return db.Stats() }))
		vars.Set("siren_metrics", reg.Expvar())
		// Mirror the two vars the expvar package itself publishes, so
		// scrapes of the old DefaultServeMux endpoint (heap/GC dashboards
		// read memstats) keep working against the dedicated mux.
		for _, name := range []string{"cmdline", "memstats"} {
			if v := expvar.Get(name); v != nil {
				vars.Set(name, v)
			}
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			io.WriteString(w, vars.String())
		})
		mux.Handle("/metrics", reg.Handler())
		// Profiling rides the same dedicated mux, registered handler by
		// handler — never via the package's blank-import side effect, which
		// would publish on http.DefaultServeMux (the nodefaultmux contract).
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		// Liveness + ingest-stall for balancers and the failover protocol's
		// confirm-probes: any answer (even 503 stalled) means the process is
		// alive; only a transport error reads as death.
		mux.Handle("/healthz", rcv.HealthHandler(*healthStall))
		if view != nil {
			mux.Handle("/membership", view.StatusHandler())
			mux.Handle("/membership/down", view.DownHandler(*probeTimeout))
		}
		hs := &http.Server{Handler: mux}
		ln, err := net.Listen("tcp", *expvarAddr)
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			hs.Shutdown(ctx)
		}()
		fmt.Printf("siren-receiver: expvar on http://%s/debug/vars\n", ln.Addr())
		go func() {
			if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "siren-receiver: expvar server:", err)
			}
		}()
	}

	// Peer failure detection: without it a receiver only learns of a death
	// from sender /membership/down reports; broadcast campaigns have no
	// sender-side dispatch, so the prober keeps admission converging anyway.
	if view != nil && *probeEvery > 0 {
		prober := &membership.Prober{
			View:     view,
			Interval: *probeEvery,
			Timeout:  *probeTimeout,
			OnDown: func(_ int, m membership.Member) {
				fmt.Printf("siren-receiver: member %s (%s) marked down by health probe\n", m.ID, m.UDPAddr)
			},
		}
		prober.InstrumentWith(reg)
		prober.Start()
		defer prober.Stop()
	}

	// Online recognition over the live store: an incrementally refreshed
	// fingerprint catalog behind the HTTP query API. Refreshes cost
	// O(changed jobs) against the snapshot watermark; queries read the last
	// published generation and never block ingest.
	if *serveAddr != "" {
		cat := catalog.New(catalog.StoreSource(db), catalog.Options{Metrics: reg})
		cat.Refresh()
		srv := server.NewWithMetrics(cat, reg)
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		fmt.Printf("siren-receiver: serving recognition API on http://%s\n", ln.Addr())
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "siren-receiver: recognition server:", err)
			}
		}()
		if *refreshEvery > 0 {
			refreshStop := make(chan struct{})
			defer close(refreshStop)
			go func() {
				t := time.NewTicker(*refreshEvery)
				defer t.Stop()
				for {
					select {
					case <-t.C:
						cat.Refresh()
					case <-refreshStop:
						return
					}
				}
			}()
		}
	}

	stop := make(chan struct{})
	defer close(stop)

	// Periodic sealing: freeze the WAL head into run files so a restart
	// replays only the tail, then apply generation retention. A seal error
	// is operator-visible but not fatal — the store keeps ingesting from
	// the WAL exactly as without sealing (a *poisoned* store surfaces
	// through insert errors in the receiver stats regardless).
	if *sealEvery > 0 {
		go func() {
			t := time.NewTicker(*sealEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := db.Seal(); err != nil {
						if errors.Is(err, sirendb.ErrClosed) {
							return
						}
						fmt.Fprintln(os.Stderr, "siren-receiver: seal:", err)
						continue
					}
					if *retain > 0 {
						if n, err := db.RetainSealedGenerations(*retain); err != nil {
							fmt.Fprintln(os.Stderr, "siren-receiver: retention:", err)
						} else if n > 0 {
							fmt.Printf("siren-receiver: retention dropped %d sealed run(s), keeping %d generation(s)\n", n, *retain)
						}
					}
				case <-stop:
					return
				}
			}
		}()
	}

	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					fmt.Printf("siren-receiver: %s rows=%d\n", rcv.StatsLine(), db.Count())
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig

	if err := rcv.Close(); err != nil {
		return err
	}
	fmt.Printf("siren-receiver: %s rows=%d\n", rcv.StatsLine(), db.Count())
	return db.Close()
}
