// Command siren-receiver is the standalone UDP message receiver: it binds a
// socket, funnels datagrams through a buffered channel into the WAL-backed
// database, and reports statistics on shutdown (SIGINT/SIGTERM) — the Go
// receiver of the paper's architecture (Figure 1).
//
// Usage:
//
//	siren-receiver [-addr 0.0.0.0:8787] [-db siren.wal]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"siren/internal/receiver"
	"siren/internal/sirendb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8787", "UDP listen address")
	dbPath := flag.String("db", "siren.wal", "WAL file for the message store")
	flag.Parse()

	db, err := sirendb.Open(*dbPath)
	if err != nil {
		fatal(err)
	}
	rcv := receiver.New(db, receiver.Options{})
	bound, err := rcv.ListenUDP(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("siren-receiver: listening on %s, storing to %s (%d replayed rows)\n",
		bound, *dbPath, db.Count())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig

	if err := rcv.Close(); err != nil {
		fatal(err)
	}
	st := rcv.Stats()
	fmt.Printf("siren-receiver: received=%d inserted=%d malformed=%d dropped=%d rows=%d\n",
		st.Received.Load(), st.Inserted.Load(), st.Malformed.Load(), st.Dropped.Load(), db.Count())
	if err := db.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "siren-receiver:", err)
	os.Exit(1)
}
