// Command siren-receiver is the standalone UDP message receiver: it binds a
// socket, funnels datagrams through hash-partitioned writer shards into the
// WAL-backed database, logs a periodic stats line, and reports final
// statistics on shutdown (SIGINT/SIGTERM) — the Go receiver of the paper's
// architecture (Figure 1), scaled out per DESIGN.md.
//
// Usage:
//
//	siren-receiver [-addr 127.0.0.1:8787] [-db siren.wal]
//	               [-partition k/N]
//	               [-readers N] [-writers M] [-depth D] [-batch B]
//	               [-db-shards S] [-sync-interval 100ms]
//	               [-rcvbuf BYTES] [-stats-interval 10s]
//
// The listen address defaults to loopback — safe on a login node, where only
// local collectors (or an SSH-forwarded port) can reach the socket. A real
// deployment accepting datagrams from compute nodes binds a routable
// interface explicitly, e.g. -addr 0.0.0.0:8787.
//
// Multi-receiver deployment: N processes share one campaign by running each
// with its own database and a distinct partition slice,
//
//	siren-receiver -addr 0.0.0.0:8787 -db siren-0.wal -partition 0/3
//	siren-receiver -addr 0.0.0.0:8788 -db siren-1.wal -partition 1/3
//	siren-receiver -addr 0.0.0.0:8789 -db siren-2.wal -partition 2/3
//
// Each receiver admits only datagrams whose wire.PartitionHash(JOBID, HOST)
// lands in its slice and counts the rest as rejected, so senders may spray
// or broadcast across all N ports with no double-ingest. Analysis merges the
// member databases back together: siren-analyze -db 'siren-0.wal,siren-1.wal,siren-2.wal'.
package main

import (
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"siren/internal/receiver"
	"siren/internal/sirendb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "siren-receiver:", err)
		os.Exit(1)
	}
}

// parsePartition parses a "k/N" partition spec ("" = unpartitioned).
func parsePartition(spec string) (k, n int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	bad := func() (int, int, error) {
		return 0, 0, fmt.Errorf("invalid -partition %q: want k/N with 0 <= k < N", spec)
	}
	ks, ns, ok := strings.Cut(spec, "/")
	if !ok {
		return bad()
	}
	if k, err = strconv.Atoi(ks); err != nil {
		return bad()
	}
	if n, err = strconv.Atoi(ns); err != nil {
		return bad()
	}
	if n < 1 || k < 0 || k >= n {
		return bad()
	}
	return k, n, nil
}

// run owns the whole process lifecycle so every defer — the store's final
// fsync-and-close, the receiver drain, the expvar listener — fires on the
// error paths too. The old main called os.Exit from a fatal() helper, which
// skipped deferred closes: a ListenUDP failure after a successful open
// leaked the group-commit syncers and bypassed the final WAL fsync.
func run() error {
	addr := flag.String("addr", "127.0.0.1:8787", "UDP listen address (loopback by default; bind 0.0.0.0 to accept remote collectors)")
	dbPath := flag.String("db", "siren.wal", "WAL file for the message store")
	partSpec := flag.String("partition", "", "admit only partition k of N as \"k/N\" (e.g. 0/3); empty = admit everything")
	readers := flag.Int("readers", 0, "UDP reader goroutines (0 = auto)")
	writers := flag.Int("writers", 0, "writer shards, hash-partitioned by (JobID, Host) (0 = default)")
	depth := flag.Int("depth", 0, "total buffered-channel capacity across shards (0 = default)")
	batch := flag.Int("batch", 0, "max messages per database insert batch (0 = default)")
	rcvbuf := flag.Int("rcvbuf", 0, "requested SO_RCVBUF in bytes (0 = default 4 MiB)")
	dbShards := flag.Int("db-shards", 0, "store shards, each with its own WAL segment (0 = match writers)")
	syncEvery := flag.Duration("sync-interval", sirendb.DefaultSyncInterval,
		"group-commit fsync latency bound (negative = fsync every batch)")
	statsEvery := flag.Duration("stats-interval", 10*time.Second, "period of the stats log line (0 disables)")
	expvarAddr := flag.String("expvar-addr", "", "HTTP listen address exporting receiver+store stats as expvar under /debug/vars (\"\" disables)")
	flag.Parse()

	partition, partitions, err := parsePartition(*partSpec)
	if err != nil {
		return err
	}

	// Defaulting the store shards to the writer count keeps the writer→store
	// mapping 1:1, so every batch lands in its store shard without
	// re-partitioning (receiver.ShardedStore).
	shards := *dbShards
	if shards <= 0 {
		shards = receiver.Options{Writers: *writers}.ResolvedWriters()
	}
	db, err := sirendb.OpenOptions(*dbPath, sirendb.Options{Shards: shards, SyncInterval: *syncEvery})
	if err != nil {
		return err
	}
	defer db.Close()
	rcv := receiver.New(db, receiver.Options{
		Depth:      *depth,
		BatchMax:   *batch,
		Readers:    *readers,
		Writers:    *writers,
		ReadBuffer: *rcvbuf,
		Partition:  partition,
		Partitions: partitions,
	})
	defer rcv.Close()
	bound, err := rcv.ListenUDP(*addr)
	if err != nil {
		return err
	}
	slice := "all partitions"
	if partitions > 1 {
		slice = fmt.Sprintf("partition %d/%d", partition, partitions)
	}
	fmt.Printf("siren-receiver: listening on %s (%s), storing to %s (%d shards, %d replayed rows, %d corrupt skipped)\n",
		bound, slice, *dbPath, db.StoreShards(), db.Count(), db.CorruptRecords())

	// Telemetry: the same counters the periodic log line prints, plus the
	// store's WAL/durability state, as machine-readable expvar JSON — the
	// backpressure counters (Dropped, Rejected, InsertErrors, InsertLost)
	// are the ones an operator alerts on.
	if *expvarAddr != "" {
		expvar.Publish("siren_receiver", expvar.Func(func() any { return rcv.Stats().Snapshot() }))
		expvar.Publish("siren_store", expvar.Func(func() any { return db.Stats() }))
		ln, err := net.Listen("tcp", *expvarAddr)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Printf("siren-receiver: expvar on http://%s/debug/vars\n", ln.Addr())
		go func() {
			// expvar registers itself on http.DefaultServeMux.
			if err := http.Serve(ln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "siren-receiver: expvar server:", err)
			}
		}()
	}

	stop := make(chan struct{})
	defer close(stop)
	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					fmt.Printf("siren-receiver: %s rows=%d\n", rcv.Stats(), db.Count())
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig

	if err := rcv.Close(); err != nil {
		return err
	}
	fmt.Printf("siren-receiver: %s rows=%d\n", rcv.Stats(), db.Count())
	return db.Close()
}
