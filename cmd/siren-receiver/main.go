// Command siren-receiver is the standalone UDP message receiver: it binds a
// socket, funnels datagrams through hash-partitioned writer shards into the
// WAL-backed database, logs a periodic stats line, and reports final
// statistics on shutdown (SIGINT/SIGTERM) — the Go receiver of the paper's
// architecture (Figure 1), scaled out per DESIGN.md.
//
// Usage:
//
//	siren-receiver [-addr 0.0.0.0:8787] [-db siren.wal]
//	               [-readers N] [-writers M] [-depth D] [-batch B]
//	               [-db-shards S] [-sync-interval 100ms]
//	               [-rcvbuf BYTES] [-stats-interval 10s]
package main

import (
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"siren/internal/receiver"
	"siren/internal/sirendb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8787", "UDP listen address")
	dbPath := flag.String("db", "siren.wal", "WAL file for the message store")
	readers := flag.Int("readers", 0, "UDP reader goroutines (0 = auto)")
	writers := flag.Int("writers", 0, "writer shards, hash-partitioned by (JobID, Host) (0 = default)")
	depth := flag.Int("depth", 0, "total buffered-channel capacity across shards (0 = default)")
	batch := flag.Int("batch", 0, "max messages per database insert batch (0 = default)")
	rcvbuf := flag.Int("rcvbuf", 0, "requested SO_RCVBUF in bytes (0 = default 4 MiB)")
	dbShards := flag.Int("db-shards", 0, "store shards, each with its own WAL segment (0 = match writers)")
	syncEvery := flag.Duration("sync-interval", sirendb.DefaultSyncInterval,
		"group-commit fsync latency bound (negative = fsync every batch)")
	statsEvery := flag.Duration("stats-interval", 10*time.Second, "period of the stats log line (0 disables)")
	expvarAddr := flag.String("expvar-addr", "", "HTTP listen address exporting receiver+store stats as expvar under /debug/vars (\"\" disables)")
	flag.Parse()

	// Defaulting the store shards to the writer count keeps the writer→store
	// mapping 1:1, so every batch lands in its store shard without
	// re-partitioning (receiver.ShardedStore).
	shards := *dbShards
	if shards <= 0 {
		shards = receiver.Options{Writers: *writers}.ResolvedWriters()
	}
	db, err := sirendb.OpenOptions(*dbPath, sirendb.Options{Shards: shards, SyncInterval: *syncEvery})
	if err != nil {
		fatal(err)
	}
	rcv := receiver.New(db, receiver.Options{
		Depth:      *depth,
		BatchMax:   *batch,
		Readers:    *readers,
		Writers:    *writers,
		ReadBuffer: *rcvbuf,
	})
	bound, err := rcv.ListenUDP(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("siren-receiver: listening on %s, storing to %s (%d shards, %d replayed rows, %d corrupt skipped)\n",
		bound, *dbPath, db.StoreShards(), db.Count(), db.CorruptRecords())

	// Telemetry: the same counters the periodic log line prints, plus the
	// store's WAL/durability state, as machine-readable expvar JSON — the
	// backpressure counters (Dropped, InsertErrors, InsertLost) are the
	// ones an operator alerts on.
	if *expvarAddr != "" {
		expvar.Publish("siren_receiver", expvar.Func(func() any { return rcv.Stats().Snapshot() }))
		expvar.Publish("siren_store", expvar.Func(func() any { return db.Stats() }))
		ln, err := net.Listen("tcp", *expvarAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("siren-receiver: expvar on http://%s/debug/vars\n", ln.Addr())
		go func() {
			// expvar registers itself on http.DefaultServeMux.
			if err := http.Serve(ln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "siren-receiver: expvar server:", err)
			}
		}()
		defer ln.Close()
	}

	stop := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					fmt.Printf("siren-receiver: %s rows=%d\n", rcv.Stats(), db.Count())
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	close(stop)

	if err := rcv.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("siren-receiver: %s rows=%d\n", rcv.Stats(), db.Count())
	if err := db.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "siren-receiver:", err)
	os.Exit(1)
}
