// Command siren-hash is an ssdeep-style fuzzy-hash CLI built on the
// internal CTPH implementation: hash files, or score two digests or files
// against each other, optionally with the Damerau–Levenshtein backend the
// paper describes.
//
// Usage:
//
//	siren-hash file...                      # print digests
//	siren-hash -compare digestOrFile digestOrFile
//	siren-hash -backend damerau -compare a b
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"siren/internal/ssdeep"
)

func main() {
	compare := flag.Bool("compare", false, "compare two digests (or files)")
	backendName := flag.String("backend", "weighted", "scoring backend: weighted|damerau|levenshtein")
	flag.Parse()
	args := flag.Args()

	// Shared grammar with the serving tier's identify API.
	backend, err := ssdeep.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}

	if *compare {
		if len(args) != 2 {
			fatal(fmt.Errorf("-compare needs exactly two arguments"))
		}
		d1, err := digestOf(args[0])
		if err != nil {
			fatal(err)
		}
		d2, err := digestOf(args[1])
		if err != nil {
			fatal(err)
		}
		score, err := ssdeep.CompareWith(d1, d2, backend)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d\n", score)
		return
	}

	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: siren-hash [-compare] [-backend b] <file-or-digest>...")
		os.Exit(2)
	}
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "siren-hash: %v\n", err)
			continue
		}
		h, err := ssdeep.Hash(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "siren-hash: %s: %v\n", path, err)
			continue
		}
		fmt.Printf("%s,%q\n", h, path)
	}
}

// digestOf treats arg as a digest if it parses as one, otherwise hashes the
// file at that path.
func digestOf(arg string) (string, error) {
	if _, err := ssdeep.ParseDigest(arg); err == nil && strings.Count(arg, ":") >= 2 {
		return arg, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return "", err
	}
	return ssdeep.Hash(data)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "siren-hash:", err)
	os.Exit(1)
}
