# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` locally means a green CI run.

GO ?= go

.PHONY: build test test-race vet fmt fmt-check lint bench bench-smoke bench-store bench-read bench-serve test-replay test-cluster test-serve ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails when any file is not gofmt-clean (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: vet fmt-check

# Full benchmark suite (regenerates the evaluation tables alongside timings).
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# One iteration per benchmark: proves every bench still compiles and runs
# (includes the segmented-store benchmarks in internal/sirendb and the
# sharded-vs-single-mutex store comparison in internal/receiver).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Segmented-store throughput: the sharded-store insert path and the receiver
# ingest comparison against the single-mutex store (EXPERIMENTS.md §3).
bench-store:
	$(GO) test -run=NONE -bench='BenchmarkInsertBatch|BenchmarkReceiverIngest' -benchmem ./internal/sirendb ./internal/receiver

# Read-path benchmarks (EXPERIMENTS.md §4/§5): snapshot scans vs the retired
# full-RLock scan, insert latency under a concurrent scanner, per-job index
# merges, the streaming consolidation vs the load-everything baseline, and
# the multi-receiver merged-snapshot consolidation vs the single store —
# always with -benchmem so allocation regressions are visible. Override
# BENCHTIME (e.g. BENCHTIME=1x) for a smoke run, -cpu via BENCHCPU for the
# parallel-speedup curve on multi-core hosts.
BENCHTIME ?= 2s
BENCHCPU ?= $(shell nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)
bench-read:
	$(GO) test -run=NONE -bench='BenchmarkScanSnapshot|BenchmarkInsertDuringScan|BenchmarkByJob|BenchmarkJobs|BenchmarkConsolidate|BenchmarkMergedConsolidate' \
		-benchmem -benchtime=$(BENCHTIME) -cpu=$(BENCHCPU) ./internal/sirendb ./internal/postprocess

# WAL durability suite under the race detector: replay-corruption matrix,
# crash-mid-group-commit and crash-mid-compact recovery, locking, migration,
# and shard-count changes. The focused uncached runner for store work;
# test-race already covers these tests, so ci does not run them twice.
test-replay:
	$(GO) test -race -count=1 -run 'Replay|Corrupt|Crash|Torn|GroupCommit|Closed|Locked|Legacy|ShardCount|Compact|Persist' ./internal/sirendb

# Multi-receiver deployment suite under the race detector: partition
# admission at the receiver, merged snapshots over member databases, the
# merged-vs-single consolidation equivalence, and the 3-receiver UDP
# end-to-end run (real siren-receiver processes, byte-compared reports).
test-cluster:
	$(GO) test -race -count=1 -run 'MultiReceiver|Partition|Merged|OpenSet' \
		. ./internal/receiver ./internal/sirendb ./internal/postprocess ./internal/wire

# Serving-tier suite under the race detector: watermark deltas, incremental
# catalog refresh vs full-rebuild equivalence, the generation-swap contract
# under concurrent queries, every query endpoint, and the live
# concurrent-ingest+query end-to-end runs (in-process and as a real
# siren-receiver -serve-addr / siren-serve process).
test-serve:
	$(GO) test -race -count=1 \
		-run 'JobsChangedSince|Incremental|CatalogOverMerged|ConcurrentQueries|Identify|ReadEndpoints|GracefulShutdown|ServeCommand|ReceiverServe' \
		. ./internal/catalog ./internal/server ./internal/sirendb

# Serving-tier benchmarks (EXPERIMENTS.md §6): identify throughput through
# the full handler stack, and incremental-vs-full catalog refresh across
# store sizes — the flat incremental line is the claim.
bench-serve:
	$(GO) test -run=NONE -bench='BenchmarkIdentify|BenchmarkCatalogRefresh' \
		-benchmem -benchtime=$(BENCHTIME) ./internal/catalog ./internal/server

ci: build vet fmt-check test-race bench-smoke
