# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` locally means a green CI run.

GO ?= go

.PHONY: build test test-race vet fmt fmt-check lint bench bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails when any file is not gofmt-clean (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: vet fmt-check

# Full benchmark suite (regenerates the evaluation tables alongside timings).
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# One iteration per benchmark: proves every bench still compiles and runs.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

ci: build vet fmt-check test-race bench-smoke
