# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` locally means a green CI run.

GO ?= go

.PHONY: build test test-race vet fmt fmt-check lint bench bench-smoke bench-store test-replay ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails when any file is not gofmt-clean (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: vet fmt-check

# Full benchmark suite (regenerates the evaluation tables alongside timings).
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# One iteration per benchmark: proves every bench still compiles and runs
# (includes the segmented-store benchmarks in internal/sirendb and the
# sharded-vs-single-mutex store comparison in internal/receiver).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Segmented-store throughput: the sharded-store insert path and the receiver
# ingest comparison against the single-mutex store (EXPERIMENTS.md §3).
bench-store:
	$(GO) test -run=NONE -bench='BenchmarkInsertBatch|BenchmarkReceiverIngest' -benchmem ./internal/sirendb ./internal/receiver

# WAL durability suite under the race detector: replay-corruption matrix,
# crash-mid-group-commit and crash-mid-compact recovery, locking, migration,
# and shard-count changes. The focused uncached runner for store work;
# test-race already covers these tests, so ci does not run them twice.
test-replay:
	$(GO) test -race -count=1 -run 'Replay|Corrupt|Crash|Torn|GroupCommit|Closed|Locked|Legacy|ShardCount|Compact|Persist' ./internal/sirendb

ci: build vet fmt-check test-race bench-smoke
