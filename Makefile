# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` locally means a green CI run.

GO ?= go

.PHONY: build test test-race vet fmt fmt-check lint staticcheck sirenlint fuzz-smoke bench bench-smoke bench-store bench-read bench-serve bench-gate bench-gate-run bench-rebaseline test-replay test-cluster test-serve test-failover test-runs test-obs ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails when any file is not gofmt-clean (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Pinned so CI and laptops agree on the finding set. `go run` resolves the
# tool from the module cache or the network; on an offline machine with a
# cold cache there is nothing to run, so the target degrades to a skip
# instead of failing the whole lint bundle.
STATICCHECK_VERSION ?= 2025.1
staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "staticcheck $(STATICCHECK_VERSION) unavailable (offline, cold module cache): skipping"; \
	fi

# The project's own analyzer (cmd/sirenlint): type-checks the whole module
# and enforces the concurrency/durability/serving contracts of DESIGN.md §10.
# Exit 1 means an unsuppressed finding; fix it or add a reasoned
# `//lint:ignore <rule> <why>` on the offending line.
sirenlint:
	$(GO) run ./cmd/sirenlint .

lint: vet fmt-check staticcheck sirenlint

# 10 seconds of coverage-guided fuzzing per target — enough to replay the
# checked-in seeds (including the hostile-TOT reassembly datagram) plus a
# short randomized excursion, cheap enough for every CI push. Go allows one
# -fuzz pattern per invocation, hence three runs.
# FuzzRunDecode caps minimization at 5 attempts: the default 60s budget per
# shrink makes a single found crash look like a hang in CI logs.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz='^FuzzWireParse$$' -fuzztime=10s ./internal/wire
	$(GO) test -run=NONE -fuzz='^FuzzReassemble$$' -fuzztime=10s ./internal/wire
	$(GO) test -run=NONE -fuzz='^FuzzParseDigest$$' -fuzztime=10s ./internal/ssdeep
	$(GO) test -run=NONE -fuzz='^FuzzRunDecode$$' -fuzztime=10s -fuzzminimizetime=5x ./internal/sirendb/runfmt

# Full benchmark suite (regenerates the evaluation tables alongside timings).
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# One iteration per benchmark: proves every bench still compiles and runs
# (includes the segmented-store benchmarks in internal/sirendb and the
# sharded-vs-single-mutex store comparison in internal/receiver).
# -short skips the 100k-entry identify catalogs: the smoke run proves the
# benches compile and run, not how they scale.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x -short ./...

# Segmented-store throughput: the sharded-store insert path and the receiver
# ingest comparison against the single-mutex store (EXPERIMENTS.md §3).
bench-store:
	$(GO) test -run=NONE -bench='BenchmarkInsertBatch|BenchmarkReceiverIngest' -benchmem ./internal/sirendb ./internal/receiver

# Read-path benchmarks (EXPERIMENTS.md §4/§5): snapshot scans vs the retired
# full-RLock scan, insert latency under a concurrent scanner, per-job index
# merges, the streaming consolidation vs the load-everything baseline, and
# the multi-receiver merged-snapshot consolidation vs the single store —
# always with -benchmem so allocation regressions are visible. Override
# BENCHTIME (e.g. BENCHTIME=1x) for a smoke run, -cpu via BENCHCPU for the
# parallel-speedup curve on multi-core hosts.
BENCHTIME ?= 2s
BENCHCPU ?= $(shell nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)
bench-read:
	$(GO) test -run=NONE -bench='BenchmarkScanSnapshot|BenchmarkInsertDuringScan|BenchmarkByJob|BenchmarkJobs|BenchmarkConsolidate|BenchmarkMergedConsolidate' \
		-benchmem -benchtime=$(BENCHTIME) -cpu=$(BENCHCPU) ./internal/sirendb ./internal/postprocess

# WAL durability suite under the race detector: replay-corruption matrix,
# crash-mid-group-commit and crash-mid-compact recovery, locking, migration,
# and shard-count changes. The focused uncached runner for store work;
# test-race already covers these tests, so ci does not run them twice.
test-replay:
	$(GO) test -race -count=1 -run 'Replay|Corrupt|Crash|Torn|GroupCommit|Closed|Locked|Legacy|ShardCount|Compact|Persist' ./internal/sirendb

# Sealed-run storage tier suite under the race detector: the seal crash
# matrix (debris sweep, post-marker roll-forward, torn-committed-run
# detection), retention, read-only shared-lock opens, and the
# sealed-vs-replay consolidation equivalence.
test-runs:
	$(GO) test -race -count=1 -run 'Seal|ReadOnly|RoundTrip|JobCursor|WriteSorts|WriteEmpty|CorruptionDetected' \
		./internal/sirendb ./internal/sirendb/runfmt ./internal/postprocess

# Multi-receiver deployment suite under the race detector: partition
# admission at the receiver, merged snapshots over member databases, the
# merged-vs-single consolidation equivalence, and the 3-receiver UDP
# end-to-end run (real siren-receiver processes, byte-compared reports).
test-cluster:
	$(GO) test -race -count=1 -run 'MultiReceiver|Partition|Merged|OpenSet' \
		. ./internal/receiver ./internal/sirendb ./internal/postprocess ./internal/wire

# Failover suite under the race detector (DESIGN.md §11): rendezvous
# ownership and view convergence, confirm-probed death reporting, sender
# journal-replay dispatch, merge-back overlap dedup, and the kill-one-of-N
# UDP end-to-end run (SIGKILL a member mid-campaign, byte-compared reports).
test-failover:
	$(GO) test -race -count=1 -run 'Failover|Membership|Dedup|Prober|Dispatch|Backoff|Probe|Roster|Route|Health|Score|PartitionHashGolden' \
		. ./internal/membership ./internal/campaign ./internal/receiver ./internal/sirendb ./internal/postprocess ./internal/wire

# Serving-tier suite under the race detector: watermark deltas, incremental
# catalog refresh vs full-rebuild equivalence, the generation-swap contract
# under concurrent queries, every query endpoint, and the live
# concurrent-ingest+query end-to-end runs (in-process and as a real
# siren-receiver -serve-addr / siren-serve process).
test-serve:
	$(GO) test -race -count=1 \
		-run 'JobsChangedSince|Incremental|CatalogOverMerged|ConcurrentQueries|Identify|ReadEndpoints|GracefulShutdown|ServeCommand|ReceiverServe' \
		. ./internal/catalog ./internal/server ./internal/sirendb

# Telemetry suite under the race detector (DESIGN.md §13): the obs core
# (lock-free records racing scrapes and registration), the Prometheus
# exposition golden and grammar tests, the per-tier instrument tests
# (receiver stages, server percentiles and shape-compat pins, membership
# probe/retry), and the live-campaign /metrics scrape of a real
# siren-receiver process with -pprof.
test-obs:
	$(GO) test -race -count=1 \
		-run 'Histogram|Counter|Gauge|Registry|Prometheus|Expvar|Metrics|StatsLine|Percentiles|DebugVars|ProberInstrumented|RetryTransportBridge|NilSafety|BucketBounds' \
		. ./internal/obs ./internal/receiver ./internal/server ./internal/membership

# Serving-tier benchmarks (EXPERIMENTS.md §6): identify throughput through
# the full handler stack, and incremental-vs-full catalog refresh across
# store sizes — the flat incremental line is the claim.
bench-serve:
	$(GO) test -run=NONE -bench='BenchmarkIdentify|BenchmarkCatalogRefresh' \
		-benchmem -benchtime=$(BENCHTIME) ./internal/catalog ./internal/server

# Benchmark-regression gate (DESIGN.md §9). One representative benchmark per
# tier — indexed identify (analysis and full handler stack), incremental
# catalog refresh, store insert, receiver ingest, and the sealed-vs-replay
# open pair (the flat sealed open is the storage tier's claim) — each run
# -count times so
# benchdiff can take the noise-resistant minimum, compared against the
# committed baseline and failing on a >25% geometric-mean slowdown. After an
# intentional perf change, re-baseline with `make bench-rebaseline` on the
# reference machine and commit the new BENCH_BASELINE.json.
BENCH_GATE_COUNT ?= 5
BENCH_BASELINE ?= BENCH_BASELINE.json
BENCH_GATE_OUT ?= .bench/gate.txt

bench-gate-run:
	@mkdir -p .bench && rm -f $(BENCH_GATE_OUT)
	$(GO) test -run=NONE -bench='BenchmarkIdentify/n=10000$$/indexed$$' -count=$(BENCH_GATE_COUNT) ./internal/analysis | tee -a $(BENCH_GATE_OUT)
	$(GO) test -run=NONE -bench='BenchmarkIdentify/serial/jobs=16$$' -count=$(BENCH_GATE_COUNT) ./internal/server | tee -a $(BENCH_GATE_OUT)
	$(GO) test -run=NONE -bench='BenchmarkCatalogRefresh/incremental/jobs=16$$' -count=$(BENCH_GATE_COUNT) ./internal/catalog | tee -a $(BENCH_GATE_OUT)
	$(GO) test -run=NONE -bench='BenchmarkInsertBatch/store=mem/shards=4/writers=4$$' -count=$(BENCH_GATE_COUNT) ./internal/sirendb | tee -a $(BENCH_GATE_OUT)
	$(GO) test -run=NONE -bench='BenchmarkReceiverIngest/shards=4/payload=512$$' -count=$(BENCH_GATE_COUNT) ./internal/receiver | tee -a $(BENCH_GATE_OUT)
	$(GO) test -run=NONE -bench='BenchmarkIngestInstrumented/shards=4/payload=512$$' -count=$(BENCH_GATE_COUNT) ./internal/receiver | tee -a $(BENCH_GATE_OUT)
	$(GO) test -run=NONE -bench='BenchmarkHistogramRecord$$' -count=$(BENCH_GATE_COUNT) ./internal/obs | tee -a $(BENCH_GATE_OUT)
	$(GO) test -run=NONE -bench='BenchmarkOpenSealed/rows=10000$$' -count=$(BENCH_GATE_COUNT) ./internal/sirendb | tee -a $(BENCH_GATE_OUT)
	$(GO) test -run=NONE -bench='BenchmarkOpenReplay/rows=10000$$' -count=$(BENCH_GATE_COUNT) ./internal/sirendb | tee -a $(BENCH_GATE_OUT)

bench-gate: bench-gate-run
	$(GO) run ./cmd/benchdiff -baseline $(BENCH_BASELINE) -threshold 1.25 $(BENCH_GATE_OUT)

bench-rebaseline: bench-gate-run
	$(GO) run ./cmd/benchdiff -write -out $(BENCH_BASELINE) $(BENCH_GATE_OUT)

# Everything the three CI jobs run (test, e2e, bench), serially.
ci: build vet fmt-check staticcheck sirenlint test-race test-runs test-cluster test-failover test-serve test-obs fuzz-smoke bench-smoke
	$(MAKE) bench-read BENCHTIME=1x
	$(MAKE) bench-serve BENCHTIME=1x
	$(MAKE) bench-gate
