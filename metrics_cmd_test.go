// Telemetry e2e: a live siren-receiver — ingesting real UDP datagrams,
// sealing its WAL, refreshing its catalog, and answering API queries — is
// scraped over GET /metrics mid-campaign, and every pipeline stage's
// histogram must show the traffic. The pprof handlers gated by -pprof must
// answer on the same mux.
package siren_test

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"siren/internal/wire"
)

// scrape fetches a Prometheus text exposition.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape %s: content-type %q", url, ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// sampleValue extracts the value of the series named exactly name (labels
// included) from an exposition, or -1 when absent.
func sampleValue(text, name string) int64 {
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		return -1
	}
	v, _ := strconv.ParseInt(m[1], 10, 64)
	return v
}

func TestReceiverMetricsE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	repo, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "siren-receiver")
	runCmd(t, repo, "go", "build", "-o", bin, "./cmd/siren-receiver")

	work := t.TempDir()
	found, stop := startCmd(t, bin,
		[]string{
			"-addr", "127.0.0.1:0",
			"-db", filepath.Join(work, "siren.wal"),
			"-expvar-addr", "127.0.0.1:0",
			"-pprof",
			"-serve-addr", "127.0.0.1:0",
			"-refresh-interval", "50ms",
			"-seal-interval", "200ms",
			"-sync-interval", "20ms",
			"-stats-interval", "0",
		},
		[]string{"listening on ", "expvar on ", "serving recognition API on "})
	udpAddr := found["listening on "]
	statsBase := strings.TrimSuffix(found["expvar on "], "/debug/vars")
	apiBase := found["serving recognition API on "]

	// A small live campaign: real datagrams over UDP, spread across jobs.
	conn, err := net.Dial("udp", udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 200; i++ {
		m := wire.Message{Header: wire.Header{
			JobID: fmt.Sprintf("%d", 9000+i%8), StepID: "0", PID: 100 + i,
			Hash: "feed", Host: "nid0001", Time: 1733900000 + int64(i),
			Layer: wire.LayerSelf, Type: wire.TypeObjects, Seq: 0, Total: 1,
		}, Content: []byte(fmt.Sprintf("libm.so.%d", i))}
		if _, err := conn.Write(wire.Encode(m)); err != nil {
			t.Fatal(err)
		}
	}
	// Exercise the query tier so the per-endpoint histograms see traffic.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(apiBase + "/api/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Poll /metrics until every stage of the pipeline has reported: ingest
	// parse+insert, WAL fdatasync, a completed seal, a catalog refresh, and
	// the jobs endpoint latency — all from one scrape of one registry.
	stages := []string{
		"siren_ingest_parse_ns_count",
		"siren_ingest_insert_ns_count",
		"siren_wal_fdatasync_ns_count",
		"siren_seal_ns_count",
		"siren_catalog_refresh_ns_count",
		`siren_http_request_ns_count{endpoint="jobs"}`,
	}
	deadline := time.Now().Add(15 * time.Second)
	var text string
	for {
		text = scrape(t, statsBase+"/metrics")
		missing := ""
		for _, s := range stages {
			if sampleValue(text, s) < 1 {
				missing = s
				break
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stage %s never reported a sample:\n%s", missing, text)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := sampleValue(text, "siren_ingest_received_total"); got != 200 {
		t.Errorf("siren_ingest_received_total = %d, want 200", got)
	}
	if sampleValue(text, "siren_seal_phase_ns_count{phase=\"commit\"}") < 1 {
		t.Errorf("seal phase histograms missing commit samples:\n%s", text)
	}

	// The query listener serves the same registry.
	if apiText := scrape(t, apiBase+"/metrics"); sampleValue(apiText, "siren_ingest_parse_ns_count") < 1 {
		t.Errorf("-serve-addr /metrics does not expose the shared registry")
	}

	// -pprof: the profiling handlers answer on the stats mux.
	resp, err := http.Get(statsBase + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof cmdline: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "siren-receiver") {
		t.Errorf("pprof cmdline: status %d body %q", resp.StatusCode, body)
	}

	// The final stats line carries the telemetry suffix the cluster e2e
	// parser pins (queue depth + insert p99).
	out := stop()
	if !regexp.MustCompile(`queue=\d+ insert_p99_ns=[1-9]\d* rows=200`).MatchString(out) {
		t.Errorf("final stats line missing live telemetry fields:\n%s", out)
	}
}
