package collector

import (
	"testing"

	"siren/internal/procfs"
	"siren/internal/slurm"
	"siren/internal/wire"
)

// TestDigestCacheEquivalence verifies that the cache never changes what is
// sent: two runs of the same workload, with and without the cache, must
// produce identical record sets.
func TestDigestCacheEquivalence(t *testing.T) {
	run := func(enableCache bool) map[string]string {
		w := newWorld(t)
		if enableCache {
			w.col.EnableDigestCache()
		}
		for i := 0; i < 5; i++ {
			if _, err := w.rt.Run("/users/user_3/sim/bin/solver",
				slurm.ExecOptions{PPID: 1, UID: 1003, Env: env(nil)}, nil); err != nil {
				t.Fatal(err)
			}
		}
		out := make(map[string]string)
		for _, m := range w.drain(t) {
			if m.Type == wire.TypeFileH || m.Type == wire.TypeStringsH || m.Type == wire.TypeSymbolsH {
				out[m.Type] = string(m.Content)
			}
		}
		return out
	}
	plain := run(false)
	cached := run(true)
	if len(plain) != 3 || len(cached) != 3 {
		t.Fatalf("hash types: plain=%d cached=%d", len(plain), len(cached))
	}
	for typ, h := range plain {
		if cached[typ] != h {
			t.Errorf("%s differs with cache: %q vs %q", typ, h, cached[typ])
		}
	}
}

// TestDigestCacheInvalidatedByMtime ensures a replaced binary (same path,
// new content and mtime) is rehashed, not served stale.
func TestDigestCacheInvalidatedByMtime(t *testing.T) {
	w := newWorld(t)
	w.col.EnableDigestCache()
	exe := "/users/user_3/sim/bin/solver"
	if _, err := w.rt.Run(exe, slurm.ExecOptions{PPID: 1, Env: env(nil)}, nil); err != nil {
		t.Fatal(err)
	}
	// Replace the binary in place (recompile): new inode+mtime.
	old, _ := w.rt.FS.ReadFile(exe)
	mutated := append([]byte(nil), old...)
	for i := 0x2000; i < 0x3000; i++ {
		mutated[i] ^= 0x5A
	}
	w.rt.FS.Install(exe, mutated, procfs.FileMeta{Mtime: 1800000000})
	if _, err := w.rt.Run(exe, slurm.ExecOptions{PPID: 1, Env: env(nil)}, nil); err != nil {
		t.Fatal(err)
	}
	var fileHashes []string
	for _, m := range w.drain(t) {
		if m.Type == wire.TypeFileH {
			fileHashes = append(fileHashes, string(m.Content))
		}
	}
	if len(fileHashes) != 2 {
		t.Fatalf("FILE_H records = %d", len(fileHashes))
	}
	if fileHashes[0] == fileHashes[1] {
		t.Error("cache served a stale digest after the binary changed")
	}
}
