package collector

import (
	"strings"
	"testing"

	"siren/internal/ldso"
	"siren/internal/procfs"
	"siren/internal/pyenv"
	"siren/internal/slurm"
	"siren/internal/toolchain"
	"siren/internal/wire"
)

// world builds a minimal system: libc, siren.so, one system tool, one user
// app, one Python interpreter with a script.
type world struct {
	rt        *slurm.Runtime
	col       *Collector
	transport *wire.ChanTransport
}

func newWorld(t *testing.T) *world {
	t.Helper()
	fs := procfs.NewFS()
	cache := ldso.NewCache()
	for _, lib := range []ldso.Library{
		{Soname: "libc.so.6", Path: "/lib64/libc.so.6"},
		{Soname: "libm.so.6", Path: "/lib64/libm.so.6"},
		{Soname: "siren.so", Path: "/opt/siren/lib/siren.so"},
	} {
		cache.Register(lib)
		fs.Install(lib.Path, []byte("so"), procfs.FileMeta{})
	}
	build := func(path, name string, libs []string) {
		art, err := toolchain.Compile(
			toolchain.Source{Name: name, Version: "1.0",
				Functions: []string{name + "_main", name + "_run"},
				Strings:   []string{name + " says hello"}},
			toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE, toolchain.ClangCray}, Libraries: libs})
		if err != nil {
			t.Fatal(err)
		}
		fs.Install(path, art.Binary, procfs.FileMeta{Mtime: 1700000000})
	}
	build("/usr/bin/cat", "cat", []string{"libc.so.6"})
	build("/users/user_3/sim/bin/solver", "solver", []string{"libm.so.6", "libc.so.6"})
	build("/usr/bin/python3.10", "python3.10", []string{"libc.so.6"})

	script := pyenv.GenerateScript("/scratch/u3/analysis.py", 7, []string{"numpy", "heapq"})
	fs.Install(script.Path, script.Content, procfs.FileMeta{Mtime: 1700000001})

	tr := wire.NewChanTransport(100000)
	col := New(tr)
	rt := slurm.NewRuntime(fs, procfs.NewTable(0), cache, slurm.NewClock(1733900000))
	rt.Hook = col
	return &world{rt: rt, col: col, transport: tr}
}

func env(extra map[string]string) map[string]string {
	base := map[string]string{
		"LD_PRELOAD":    "/opt/siren/lib/siren.so",
		"SLURM_JOB_ID":  "555",
		"SLURM_STEP_ID": "0",
		"SLURM_PROCID":  "0",
		"HOSTNAME":      "nid001001",
		"LOADEDMODULES": "craype/2.7.30:cray-netcdf/4.9.0",
	}
	for k, v := range extra {
		base[k] = v
	}
	return base
}

func (w *world) drain(t *testing.T) []wire.Message {
	t.Helper()
	w.transport.Close()
	var out []wire.Message
	for d := range w.transport.C() {
		m, err := wire.Parse(d)
		if err != nil {
			t.Fatalf("undecodable datagram: %v", err)
		}
		out = append(out, m)
	}
	return out
}

func typeSet(msgs []wire.Message) map[string]int {
	out := make(map[string]int)
	for _, m := range msgs {
		key := m.Layer + ":" + m.Type
		out[key]++
	}
	return out
}

func TestCategorize(t *testing.T) {
	cases := []struct {
		path string
		want Category
	}{
		{"/usr/bin/bash", CategorySystem},
		{"/opt/cray/pe/bin/cc", CategorySystem},
		{"/usr/bin/python3.10", CategoryPython},
		{"/users/u/app", CategoryUser},
		{"/scratch/project/a.out", CategoryUser},
		{"/appl/amber22/bin/pmemd", CategoryUser},
		{"/users/u/miniconda3/bin/python3.12", CategoryUser}, // user-dir interpreter
		{"/proc/self/exe", CategorySystem},
	}
	for _, c := range cases {
		if got := Categorize(c.path); got != c.want {
			t.Errorf("Categorize(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestScopeMatrixMatchesTable1 pins the Table 1 policy exactly.
func TestScopeMatrixMatchesTable1(t *testing.T) {
	sys := ScopeFor(CategorySystem)
	if sys != (Scope{FileMetadata: true, Libraries: true}) {
		t.Errorf("system scope = %+v", sys)
	}
	usr := ScopeFor(CategoryUser)
	if usr != (Scope{FileMetadata: true, Libraries: true, Modules: true, Compilers: true,
		MemoryMap: true, FileH: true, StringsH: true, SymbolsH: true}) {
		t.Errorf("user scope = %+v", usr)
	}
	py := ScopeFor(CategoryPython)
	if py != (Scope{FileMetadata: true, Libraries: true, MemoryMap: true}) {
		t.Errorf("python scope = %+v", py)
	}
	if ScriptScope() != (Scope{FileMetadata: true, FileH: true}) {
		t.Errorf("script scope = %+v", ScriptScope())
	}
}

func TestSystemExecutableScope(t *testing.T) {
	w := newWorld(t)
	if _, err := w.rt.Run("/usr/bin/cat", slurm.ExecOptions{PPID: 1, Env: env(nil)}, nil); err != nil {
		t.Fatal(err)
	}
	types := typeSet(w.drain(t))
	want := []string{"SELF:METADATA", "SELF:OBJECTS", "SELF:OBJECTS_H"}
	for _, ty := range want {
		if types[ty] == 0 {
			t.Errorf("missing %s (have %v)", ty, types)
		}
	}
	for _, forbidden := range []string{"SELF:FILE_H", "SELF:COMPILERS", "SELF:MODULES", "SELF:MAPS"} {
		if types[forbidden] != 0 {
			t.Errorf("system executable must not send %s", forbidden)
		}
	}
}

func TestUserExecutableScope(t *testing.T) {
	w := newWorld(t)
	if _, err := w.rt.Run("/users/user_3/sim/bin/solver", slurm.ExecOptions{PPID: 1, UID: 1003, Env: env(nil)}, nil); err != nil {
		t.Fatal(err)
	}
	msgs := w.drain(t)
	types := typeSet(msgs)
	for _, ty := range []string{
		"SELF:METADATA", "SELF:OBJECTS", "SELF:OBJECTS_H",
		"SELF:MODULES", "SELF:MODULES_H", "SELF:COMPILERS", "SELF:COMPILERS_H",
		"SELF:FILE_H", "SELF:STRINGS_H", "SELF:SYMBOLS_H", "SELF:MAPS", "SELF:MAPS_H",
	} {
		if types[ty] == 0 {
			t.Errorf("missing %s (have %v)", ty, types)
		}
	}
	// Inspect a few contents.
	for _, m := range msgs {
		switch m.Type {
		case wire.TypeModules:
			if !strings.Contains(string(m.Content), "cray-netcdf/4.9.0") {
				t.Errorf("MODULES content = %q", m.Content)
			}
		case wire.TypeCompilers:
			if !strings.Contains(string(m.Content), "GCC: (SUSE Linux)") {
				t.Errorf("COMPILERS content = %q", m.Content)
			}
		case wire.TypeMetadata:
			if !strings.Contains(string(m.Content), "EXE=/users/user_3/sim/bin/solver") ||
				!strings.Contains(string(m.Content), "CATEGORY=user") {
				t.Errorf("METADATA content = %q", m.Content)
			}
		}
		if m.JobID != "555" || m.Host != "nid001001" {
			t.Errorf("header = %+v", m.Header)
		}
	}
}

func TestPythonInterpreterAndScript(t *testing.T) {
	w := newWorld(t)
	it := pyenv.Interpreter{Version: "3.10", Path: "/usr/bin/python3.10", LibDir: "/usr/lib64/python3.10"}
	extra := pyenv.MapRegions(it, []string{"numpy", "heapq"}, 0x7f2000000000)
	_, err := w.rt.Run("/usr/bin/python3.10", slurm.ExecOptions{
		PPID: 1, Env: env(nil), ExtraMaps: extra,
	}, func(p *procfs.Proc) error {
		p.Cmdline = []string{"/usr/bin/python3.10", "/scratch/u3/analysis.py"}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs := w.drain(t)
	types := typeSet(msgs)
	for _, ty := range []string{
		"SELF:METADATA", "SELF:OBJECTS", "SELF:MAPS", "SELF:MAPS_H",
		"SCRIPT:METADATA", "SCRIPT:FILE_H",
	} {
		if types[ty] == 0 {
			t.Errorf("missing %s (have %v)", ty, types)
		}
	}
	// Interpreters are not hashed themselves (Table 1).
	if types["SELF:FILE_H"] != 0 || types["SELF:COMPILERS"] != 0 {
		t.Errorf("interpreter over-collected: %v", types)
	}
	// The maps content must expose the imported packages.
	for _, m := range msgs {
		if m.Type == wire.TypeMaps && m.Layer == wire.LayerSelf {
			joined := ""
			for _, mm := range msgs {
				if mm.Type == wire.TypeMaps {
					joined += string(mm.Content)
				}
			}
			regions, err := procfs.ParseMaps(joined)
			if err != nil {
				t.Fatalf("maps unparseable: %v", err)
			}
			imports := pyenv.ExtractImports(regions)
			if len(imports) != 2 {
				t.Errorf("imports = %q", imports)
			}
			break
		}
	}
}

func TestProcIDGate(t *testing.T) {
	w := newWorld(t)
	if _, err := w.rt.Run("/users/user_3/sim/bin/solver",
		slurm.ExecOptions{PPID: 1, Env: env(map[string]string{"SLURM_PROCID": "3"})}, nil); err != nil {
		t.Fatal(err)
	}
	if msgs := w.drain(t); len(msgs) != 0 {
		t.Errorf("rank 3 sent %d messages, want 0", len(msgs))
	}
	if w.col.Stats().ProcessesSkipped.Load() != 1 {
		t.Error("skip not counted")
	}
}

func TestNonSlurmProcessStillCollected(t *testing.T) {
	w := newWorld(t)
	e := env(nil)
	delete(e, "SLURM_PROCID")
	delete(e, "SLURM_JOB_ID")
	if _, err := w.rt.Run("/usr/bin/cat", slurm.ExecOptions{PPID: 1, Env: e}, nil); err != nil {
		t.Fatal(err)
	}
	msgs := w.drain(t)
	if len(msgs) == 0 {
		t.Fatal("login-node style process (no Slurm env) must still be collected")
	}
	if msgs[0].JobID != "" {
		t.Errorf("JobID = %q, want empty", msgs[0].JobID)
	}
}

func TestChunkedRecordsReassemble(t *testing.T) {
	w := newWorld(t)
	w.col.SetMaxDatagram(300) // force chunking of everything
	if _, err := w.rt.Run("/users/user_3/sim/bin/solver", slurm.ExecOptions{PPID: 1, Env: env(nil)}, nil); err != nil {
		t.Fatal(err)
	}
	recs := wire.Reassemble(w.drain(t))
	for _, r := range recs {
		if !r.Complete {
			t.Errorf("record %s incomplete without loss", r.Header.Type)
		}
	}
}

func TestGracefulFailureOnMissingScript(t *testing.T) {
	w := newWorld(t)
	_, err := w.rt.Run("/usr/bin/python3.10", slurm.ExecOptions{PPID: 1, Env: env(nil)},
		func(p *procfs.Proc) error {
			p.Cmdline = []string{"/usr/bin/python3.10", "/gone/script.py"}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if w.col.Stats().Failures.Load() == 0 {
		t.Error("missing script should count as failure")
	}
	// The process itself completed; SELF records still flowed.
	if len(w.drain(t)) == 0 {
		t.Error("collection should continue despite script failure")
	}
}

func TestScanBinaryReport(t *testing.T) {
	art, err := toolchain.Compile(
		toolchain.Source{Name: "tool", Version: "2.0", Functions: []string{"tool_run"}},
		toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.ClangAMD}, Libraries: []string{"libm.so.6"}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ScanBinary(art.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Compilers) != 1 || !strings.Contains(rep.Compilers[0], "clang version") {
		t.Errorf("compilers = %q", rep.Compilers)
	}
	if len(rep.Needed) != 1 || rep.Needed[0] != "libm.so.6" {
		t.Errorf("needed = %q", rep.Needed)
	}
	if rep.FileH == "" || rep.StringsH == "" || rep.SymbolsH == "" {
		t.Errorf("missing hashes: %+v", rep)
	}
	if _, err := ScanBinary([]byte("not elf")); err == nil {
		t.Error("ScanBinary must reject non-ELF input")
	}
}

func BenchmarkCollectUserProcess(b *testing.B) {
	fs := procfs.NewFS()
	cache := ldso.NewCache()
	cache.Register(ldso.Library{Soname: "libc.so.6", Path: "/lib64/libc.so.6"})
	cache.Register(ldso.Library{Soname: "siren.so", Path: "/opt/siren/lib/siren.so"})
	fs.Install("/lib64/libc.so.6", []byte("so"), procfs.FileMeta{})
	fs.Install("/opt/siren/lib/siren.so", []byte("so"), procfs.FileMeta{})
	art, err := toolchain.Compile(
		toolchain.Source{Name: "bench", Version: "1", Functions: []string{"f1", "f2"}},
		toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE}})
	if err != nil {
		b.Fatal(err)
	}
	fs.Install("/users/u/bench", art.Binary, procfs.FileMeta{})
	tr := wire.NewChanTransport(1 << 20)
	go func() {
		for range tr.C() {
		}
	}()
	col := New(tr)
	rt := slurm.NewRuntime(fs, procfs.NewTable(0), cache, slurm.NewClock(1733900000))
	rt.Hook = col
	e := env(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run("/users/u/bench", slurm.ExecOptions{PPID: 1, Env: e}, nil); err != nil {
			b.Fatal(err)
		}
	}
}
