// Package collector implements the siren.so data-collection logic: the code
// the LD_PRELOAD mechanism injects into every process, here invoked through
// the simulated dynamic linker's constructor/destructor hooks (and reusable
// against real on-disk executables via ScanBinary).
//
// Per the paper (§3.1), the collector gathers, per process:
//
//   - job/process identifiers from the environment and "system calls"
//   - executable file metadata via stat
//   - loaded shared objects (dl_iterate_phdr → our link result)
//   - loaded modules (LOADEDMODULES)
//   - compiler identification strings (.comment section via libelf → elfx)
//   - the memory map (/proc/self/maps)
//   - SSDeep fuzzy hashes of the raw binary (FILE_H), its printable strings
//     (STRINGS_H), and its global symbols (SYMBOLS_H); plus fuzzy hashes of
//     each collected list so partially lost lists remain comparable
//   - for Python interpreters: the input script's metadata and fuzzy hash
//     (LAYER=SCRIPT)
//
// Collection is scoped by executable category (Table 1) to avoid hashing
// /usr/bin/bash two million times, gated on SLURM_PROCID=0 to skip duplicate
// MPI ranks, and *never fails the process*: every internal error increments
// a counter and collection continues with whatever is left.
package collector

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"siren/internal/elfx"
	"siren/internal/lmod"
	"siren/internal/procfs"
	"siren/internal/pyenv"
	"siren/internal/slurm"
	"siren/internal/ssdeep"
	"siren/internal/strescan"
	"siren/internal/wire"
	"siren/internal/xxhash"
)

// Category is the executable class that decides the collection scope.
type Category int

const (
	// CategorySystem covers executables in system directories.
	CategorySystem Category = iota
	// CategoryUser covers executables outside system directories.
	CategoryUser
	// CategoryPython covers Python interpreters installed in system
	// directories (user-installed interpreters count as CategoryUser).
	CategoryPython
)

// String names the category for reports.
func (c Category) String() string {
	switch c {
	case CategorySystem:
		return "system"
	case CategoryUser:
		return "user"
	case CategoryPython:
		return "python"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// systemDirs is the paper's system-directory list (§3.1 "Selective Data
// Collection").
var systemDirs = []string{
	"/etc/", "/dev/", "/usr/", "/bin/", "/boot/", "/lib/",
	"/opt/", "/sbin/", "/sys/", "/proc/", "/var/",
}

// InSystemDir reports whether path lives under one of the system prefixes.
func InSystemDir(path string) bool {
	for _, d := range systemDirs {
		if strings.HasPrefix(path, d) {
			return true
		}
	}
	return false
}

// Categorize classifies an executable path per the paper's rules.
func Categorize(exePath string) Category {
	sys := InSystemDir(exePath)
	if sys && pyenv.IsInterpreterPath(exePath) {
		return CategoryPython
	}
	if sys {
		return CategorySystem
	}
	return CategoryUser
}

// Scope is the Table 1 policy row: which categories of information are
// collected for a given executable class.
type Scope struct {
	FileMetadata bool
	Libraries    bool
	Modules      bool
	Compilers    bool
	MemoryMap    bool
	FileH        bool
	StringsH     bool
	SymbolsH     bool
}

// ScopeFor returns the collection scope for a category (Table 1).
func ScopeFor(c Category) Scope {
	switch c {
	case CategorySystem:
		return Scope{FileMetadata: true, Libraries: true}
	case CategoryPython:
		return Scope{FileMetadata: true, Libraries: true, MemoryMap: true}
	default: // CategoryUser
		return Scope{FileMetadata: true, Libraries: true, Modules: true,
			Compilers: true, MemoryMap: true, FileH: true, StringsH: true, SymbolsH: true}
	}
}

// ScriptScope is the Table 1 column for Python input scripts: metadata and
// the script fuzzy hash only.
func ScriptScope() Scope { return Scope{FileMetadata: true, FileH: true} }

// Stats counts collector activity with atomic counters (safe under the
// campaign's concurrent workers).
type Stats struct {
	ProcessesSeen      atomic.Int64 // hook invocations
	ProcessesCollected atomic.Int64 // passed the PROCID gate
	ProcessesSkipped   atomic.Int64 // non-zero SLURM_PROCID
	MessagesSent       atomic.Int64
	Failures           atomic.Int64 // swallowed internal errors
}

// Collector implements slurm.Hook. One instance serves a whole simulation.
type Collector struct {
	transport   wire.Transport
	maxDatagram int
	stats       *Stats

	// Optional digest cache keyed by (path, inode, size, mtime): the real
	// siren.so rehashes on every start-up; enabling the cache trades exact
	// fidelity for throughput when the same executable starts thousands of
	// times (results are identical because the key pins the file content).
	cacheMu sync.Mutex
	cache   map[string]*BinaryReport
}

// New creates a collector sending datagrams through transport.
func New(transport wire.Transport) *Collector {
	return &Collector{transport: transport, maxDatagram: wire.MaxDatagram, stats: &Stats{}}
}

// SetMaxDatagram overrides the chunking threshold (ablation knob).
func (c *Collector) SetMaxDatagram(n int) { c.maxDatagram = n }

// EnableDigestCache turns on binary-report memoisation (see Collector docs).
func (c *Collector) EnableDigestCache() {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	if c.cache == nil {
		c.cache = make(map[string]*BinaryReport)
	}
}

// scanCached runs ScanBinary through the cache when enabled.
func (c *Collector) scanCached(ev slurm.ProcessEvent, exe string) (*BinaryReport, error) {
	c.cacheMu.Lock()
	enabled := c.cache != nil
	c.cacheMu.Unlock()
	if !enabled {
		img, err := ev.FS.ReadFile(exe)
		if err != nil {
			return nil, err
		}
		return ScanBinary(img)
	}
	meta, err := ev.FS.Stat(exe)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s|%d|%d|%d", exe, meta.Inode, meta.Size, meta.Mtime)
	c.cacheMu.Lock()
	rep, ok := c.cache[key]
	c.cacheMu.Unlock()
	if ok {
		return rep, nil
	}
	img, err := ev.FS.ReadFile(exe)
	if err != nil {
		return nil, err
	}
	rep, err = ScanBinary(img)
	if err != nil {
		return nil, err
	}
	c.cacheMu.Lock()
	c.cache[key] = rep
	c.cacheMu.Unlock()
	return rep, nil
}

// Stats exposes the counters.
func (c *Collector) Stats() *Stats { return c.stats }

var _ slurm.Hook = (*Collector)(nil)

// OnProcessStart is the constructor: collect everything known at startup.
func (c *Collector) OnProcessStart(ev slurm.ProcessEvent) {
	c.stats.ProcessesSeen.Add(1)
	if procID := ev.Proc.Getenv("SLURM_PROCID"); procID != "" && procID != "0" {
		// Only rank 0 collects; other ranks would duplicate everything.
		c.stats.ProcessesSkipped.Add(1)
		return
	}
	c.stats.ProcessesCollected.Add(1)
	c.collect(ev, false)
}

// OnProcessExit is the destructor: collect the state that only settles
// during execution — the memory map (Python imports appear here) and the
// Python input script.
func (c *Collector) OnProcessExit(ev slurm.ProcessEvent) {
	if procID := ev.Proc.Getenv("SLURM_PROCID"); procID != "" && procID != "0" {
		return
	}
	c.collect(ev, true)
}

// collect runs one collection pass. atExit selects the destructor subset.
func (c *Collector) collect(ev slurm.ProcessEvent, atExit bool) {
	defer func() {
		if r := recover(); r != nil {
			// The real siren.so must never take down the host process; a
			// panic in collection is swallowed and counted.
			c.stats.Failures.Add(1)
		}
	}()

	proc := ev.Proc
	cat := Categorize(proc.Exe)
	scope := ScopeFor(cat)
	hdr := wire.Header{
		JobID:  proc.Getenv("SLURM_JOB_ID"),
		StepID: proc.Getenv("SLURM_STEP_ID"),
		PID:    proc.PID,
		Hash:   xxhash.Hash128String(proc.Exe).Hex(),
		Host:   proc.Getenv("HOSTNAME"),
		Time:   ev.Time,
		Layer:  wire.LayerSelf,
	}

	if !atExit {
		c.collectStartup(ev, hdr, cat, scope)
	} else {
		c.collectExit(ev, hdr, cat, scope)
	}
}

func (c *Collector) collectStartup(ev slurm.ProcessEvent, hdr wire.Header, cat Category, scope Scope) {
	proc := ev.Proc

	if scope.FileMetadata {
		meta, err := ev.FS.Stat(proc.Exe)
		if err != nil {
			c.stats.Failures.Add(1)
		} else {
			c.send(hdr, wire.TypeMetadata, renderMetadata(proc, meta, cat))
		}
	}

	if scope.Libraries && ev.Link != nil {
		objects := strings.Join(ev.Link.LoadedPaths(), "\n")
		c.send(hdr, wire.TypeObjects, []byte(objects))
		c.sendHash(hdr, wire.TypeObjectsH, []byte(objects))
	}

	if scope.Modules {
		mods := strings.Join(lmod.ParseLoadedModules(proc.Getenv("LOADEDMODULES")), "\n")
		c.send(hdr, wire.TypeModules, []byte(mods))
		c.sendHash(hdr, wire.TypeModulesH, []byte(mods))
	}

	needBinary := scope.Compilers || scope.FileH || scope.StringsH || scope.SymbolsH
	if !needBinary {
		return
	}
	report, err := c.scanCached(ev, proc.Exe)
	if err != nil {
		c.stats.Failures.Add(1)
		return
	}
	if scope.Compilers {
		comps := strings.Join(report.Compilers, "\n")
		c.send(hdr, wire.TypeCompilers, []byte(comps))
		c.sendHash(hdr, wire.TypeCompilersH, []byte(comps))
	}
	if scope.FileH {
		c.send(hdr, wire.TypeFileH, []byte(report.FileH))
	}
	if scope.StringsH {
		c.send(hdr, wire.TypeStringsH, []byte(report.StringsH))
	}
	if scope.SymbolsH {
		c.send(hdr, wire.TypeSymbolsH, []byte(report.SymbolsH))
	}
}

func (c *Collector) collectExit(ev slurm.ProcessEvent, hdr wire.Header, cat Category, scope Scope) {
	proc := ev.Proc

	if scope.MemoryMap {
		maps := procfs.RenderMaps(proc.Maps)
		c.send(hdr, wire.TypeMaps, []byte(maps))
		c.sendHash(hdr, wire.TypeMapsH, []byte(maps))
	}

	// Python input script: metadata plus fuzzy hash under LAYER=SCRIPT.
	if cat == CategoryPython {
		if script := scriptArg(proc); script != "" {
			sh := hdr
			sh.Layer = wire.LayerScript
			meta, err := ev.FS.Stat(script)
			if err != nil {
				c.stats.Failures.Add(1)
				return
			}
			c.send(sh, wire.TypeMetadata, renderScriptMetadata(script, meta))
			content, err := ev.FS.ReadFile(script)
			if err != nil {
				c.stats.Failures.Add(1)
				return
			}
			c.sendHash(sh, wire.TypeFileH, content)
		}
	}
}

// scriptArg returns the first .py argument of a process command line.
func scriptArg(proc *procfs.Proc) string {
	for _, arg := range proc.Cmdline[1:] {
		if strings.HasSuffix(arg, ".py") {
			return arg
		}
	}
	return ""
}

// send chunks and transmits one record; errors are counted, not returned
// (fire and forget).
func (c *Collector) send(hdr wire.Header, typ string, content []byte) {
	hdr.Type = typ
	for _, m := range wire.Chunk(hdr, content, c.maxDatagram) {
		if err := c.transport.Send(wire.Encode(m)); err != nil {
			c.stats.Failures.Add(1)
			continue
		}
		c.stats.MessagesSent.Add(1)
	}
}

// sendHash fuzzy-hashes content and transmits the digest under typ.
func (c *Collector) sendHash(hdr wire.Header, typ string, content []byte) {
	digest, err := ssdeep.Hash(content)
	if err != nil {
		c.stats.Failures.Add(1)
		return
	}
	c.send(hdr, typ, []byte(digest))
}

// renderMetadata serialises the METADATA record: process identity plus
// stat(2) fields, as KEY=VALUE lines.
func renderMetadata(proc *procfs.Proc, meta procfs.FileMeta, cat Category) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EXE=%s\n", proc.Exe)
	fmt.Fprintf(&sb, "CATEGORY=%s\n", cat)
	fmt.Fprintf(&sb, "PPID=%d\n", proc.PPID)
	fmt.Fprintf(&sb, "UID=%d\n", proc.UID)
	fmt.Fprintf(&sb, "GID=%d\n", proc.GID)
	fmt.Fprintf(&sb, "INODE=%d\n", meta.Inode)
	fmt.Fprintf(&sb, "SIZE=%d\n", meta.Size)
	fmt.Fprintf(&sb, "MODE=%o\n", meta.Mode)
	fmt.Fprintf(&sb, "OWNER_UID=%d\n", meta.UID)
	fmt.Fprintf(&sb, "OWNER_GID=%d\n", meta.GID)
	fmt.Fprintf(&sb, "ATIME=%d\n", meta.Atime)
	fmt.Fprintf(&sb, "MTIME=%d\n", meta.Mtime)
	fmt.Fprintf(&sb, "CTIME=%d\n", meta.Ctime)
	return []byte(sb.String())
}

func renderScriptMetadata(path string, meta procfs.FileMeta) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EXE=%s\n", path)
	fmt.Fprintf(&sb, "CATEGORY=python-script\n")
	fmt.Fprintf(&sb, "INODE=%d\n", meta.Inode)
	fmt.Fprintf(&sb, "SIZE=%d\n", meta.Size)
	fmt.Fprintf(&sb, "MODE=%o\n", meta.Mode)
	fmt.Fprintf(&sb, "MTIME=%d\n", meta.Mtime)
	return []byte(sb.String())
}

// BinaryReport is the static-analysis result for one executable image.
type BinaryReport struct {
	Compilers []string // .comment records
	Needed    []string // DT_NEEDED sonames
	Symbols   []string // global symbol names
	FileH     string   // fuzzy hash of the raw image
	StringsH  string   // fuzzy hash of the printable-strings dump
	SymbolsH  string   // fuzzy hash of the global-symbol dump
}

// ScanBinary statically analyses an ELF image: the shared core between the
// simulation hook and the real-host siren-scan tool.
func ScanBinary(img []byte) (*BinaryReport, error) {
	f, err := elfx.Parse(img)
	if err != nil {
		return nil, err
	}
	rep := &BinaryReport{
		Compilers: f.Comment(),
		Needed:    f.Needed(),
	}
	if rep.FileH, err = ssdeep.Hash(img); err != nil {
		return nil, err
	}
	if rep.StringsH, err = ssdeep.Hash(strescan.Dump(img)); err != nil {
		return nil, err
	}
	symDump, err := f.SymbolDump()
	if err != nil {
		return nil, err
	}
	if rep.SymbolsH, err = ssdeep.Hash(symDump); err != nil {
		return nil, err
	}
	if rep.Symbols, err = f.GlobalSymbolNames(); err != nil {
		return nil, err
	}
	return rep, nil
}
