// Package ldso simulates the Linux dynamic linker (ld.so): shared-library
// resolution, transitive DT_NEEDED closure, LD_PRELOAD injection, and the
// constructor/destructor hook points that SIREN's data collection rides on.
//
// The aspects of ld.so behaviour the SIREN paper depends on are modelled
// faithfully:
//
//   - LD_LIBRARY_PATH directories are searched before the default system
//     directories, so the *environment* decides which libtinfo a given bash
//     process loads (the Table 4 "deviating shared libraries" effect).
//   - LD_PRELOAD objects are loaded before everything else and their
//     constructors run before main(); that is the siren.so injection point.
//   - Statically linked executables never invoke the dynamic linker, so no
//     preload — and therefore no data collection — happens (paper §2).
//   - Inside a container the preload path is typically not mounted; the
//     preload entry silently fails to resolve and the process runs
//     unobserved (paper §3 "Requirements and Limitations").
package ldso

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"siren/internal/elfx"
	"siren/internal/procfs"
)

// DefaultSearchPath is the built-in search order used after LD_LIBRARY_PATH,
// mirroring /etc/ld.so.conf on a typical HPE Cray EX image: the base system
// directories plus the Cray PE and ROCm trees that the site drops into
// ld.so.conf.d. Site/user software under /appl or /pfs is *not* here — it is
// reachable only through module-set LD_LIBRARY_PATH, which is exactly what
// makes Table 4's per-environment library deviations possible.
var DefaultSearchPath = []string{
	"/lib64", "/usr/lib64", "/usr/lib64/slurm",
	"/opt/cray/pe/lib64", "/opt/cray/pe/gcc-libs", "/opt/cray/libfabric/lib64",
	"/opt/cray/pe/pmi/lib", "/opt/cray/pe/libsci/lib", "/opt/cray/pe/netcdf/lib",
	"/opt/cray/pe/cce/lib", "/opt/cray/pe/fftw/lib", "/opt/cray/pe/hdf5/lib",
	"/opt/cray/pe/hdf5-parallel/lib", "/opt/cray/pe/parallel-netcdf/lib",
	"/opt/rocm/lib",
}

// Library describes one shared object registered with the Cache.
type Library struct {
	Soname string   // e.g. "libtinfo.so.6"
	Path   string   // full installed path
	Needed []string // transitive dependencies, by soname
	Size   uint64   // mapped size (for memory-map synthesis)
}

// Cache indexes installed libraries by soname and path, like ld.so.cache
// plus the directory search. It is safe for concurrent use.
type Cache struct {
	mu     sync.RWMutex
	byPath map[string]Library
	byDir  map[string]map[string]Library // dir → soname → lib
}

// NewCache returns an empty library cache.
func NewCache() *Cache {
	return &Cache{byPath: make(map[string]Library), byDir: make(map[string]map[string]Library)}
}

// Register installs a library at lib.Path.
func (c *Cache) Register(lib Library) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if lib.Size == 0 {
		lib.Size = 0x21000
	}
	c.byPath[lib.Path] = lib
	dir := dirOf(lib.Path)
	if c.byDir[dir] == nil {
		c.byDir[dir] = make(map[string]Library)
	}
	c.byDir[dir][lib.Soname] = lib
}

// ByPath resolves an exact path (used for LD_PRELOAD entries with slashes).
func (c *Cache) ByPath(path string) (Library, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	l, ok := c.byPath[path]
	return l, ok
}

// Resolve finds soname by walking searchPath in order, then the default
// system directories — the ld.so search order.
func (c *Cache) Resolve(soname string, searchPath []string) (Library, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, dir := range searchPath {
		if l, ok := c.byDir[dir][soname]; ok {
			return l, true
		}
	}
	for _, dir := range DefaultSearchPath {
		if l, ok := c.byDir[dir][soname]; ok {
			return l, true
		}
	}
	return Library{}, false
}

// Paths returns all registered library paths, sorted (for tests/reports).
func (c *Cache) Paths() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.byPath))
	for p := range c.byPath {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func dirOf(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// LinkResult is the outcome of "launching" an executable through the
// dynamic linker.
type LinkResult struct {
	Static    bool            // true: the linker was never invoked
	Preloaded []Library       // successfully injected LD_PRELOAD objects, in order
	Loaded    []Library       // all loaded objects incl. preloads, load order
	Missing   []string        // sonames that could not be resolved (lazy failure)
	Maps      []procfs.Region // synthesised memory map
	ExeFile   *elfx.File      // parsed executable image
}

// LoadedPaths returns the full paths of all loaded objects in load order —
// the dl_iterate_phdr view siren.so records as OBJECTS.
func (r *LinkResult) LoadedPaths() []string {
	out := make([]string, 0, len(r.Loaded))
	for _, l := range r.Loaded {
		out = append(out, l.Path)
	}
	return out
}

// HasPreload reports whether an object with the given soname was injected.
func (r *LinkResult) HasPreload(soname string) bool {
	for _, l := range r.Preloaded {
		if l.Soname == soname {
			return true
		}
	}
	return false
}

// Link simulates process start-up for the executable image at exePath:
// parse the ELF, decide static vs dynamic, resolve LD_PRELOAD and the
// DT_NEEDED closure using env's LD_LIBRARY_PATH, and synthesise the memory
// map. Missing optional libraries are recorded, not fatal — like lazy
// binding, the process may run fine until the symbol is needed.
//
// When the process is containerised, LD_PRELOAD entries whose path is not
// visible inside the container (i.e. not marked with a container-visible
// prefix) fail to resolve, matching the paper's limitation that siren.so is
// not mounted into containers.
func Link(exeImage []byte, exePath string, env map[string]string, cache *Cache, fs *procfs.FS, container bool) (*LinkResult, error) {
	f, err := elfx.Parse(exeImage)
	if err != nil {
		return nil, fmt.Errorf("ldso: %s: %w", exePath, err)
	}
	res := &LinkResult{ExeFile: f}

	needed := f.Needed()
	if f.SectionByType(elfx.SHTDynamic) == nil {
		// Static binary: the kernel maps it and jumps to the entry point;
		// ld.so — and any preload — never runs.
		res.Static = true
		res.Maps = synthMaps(exePath, uint64(len(exeImage)), nil, fs)
		return res, nil
	}

	searchPath := splitPathList(env["LD_LIBRARY_PATH"])

	loaded := make(map[string]bool) // by path
	var order []Library

	load := func(lib Library) {
		if loaded[lib.Path] {
			return
		}
		loaded[lib.Path] = true
		order = append(order, lib)
	}

	// LD_PRELOAD first: entries are paths (with '/') or sonames.
	for _, entry := range splitPreload(env["LD_PRELOAD"]) {
		var lib Library
		var ok bool
		if strings.ContainsRune(entry, '/') {
			lib, ok = cache.ByPath(entry)
			if ok && container && !containerVisible(entry) {
				ok = false // path not mounted inside the container
			}
		} else {
			lib, ok = cache.Resolve(entry, searchPath)
		}
		if !ok {
			// ld.so warns and continues: "object ... cannot be preloaded".
			res.Missing = append(res.Missing, entry)
			continue
		}
		res.Preloaded = append(res.Preloaded, lib)
		load(lib)
		// Preloaded objects drag in their own dependencies.
		needed = append(lib.Needed, needed...)
	}

	// Breadth-first DT_NEEDED closure.
	queue := append([]string(nil), needed...)
	seenSoname := make(map[string]bool)
	for len(queue) > 0 {
		so := queue[0]
		queue = queue[1:]
		if so == "" || seenSoname[so] {
			continue
		}
		seenSoname[so] = true
		lib, ok := cache.Resolve(so, searchPath)
		if !ok {
			res.Missing = append(res.Missing, so)
			continue
		}
		load(lib)
		queue = append(queue, lib.Needed...)
	}

	res.Loaded = order
	res.Maps = synthMaps(exePath, uint64(len(exeImage)), order, fs)
	return res, nil
}

// containerVisible reports whether a host path is visible inside the
// simulated container: only paths under /usr and /opt/app (the image's own
// content) are; site paths like /appl or /opt/siren are not mounted.
func containerVisible(path string) bool {
	return strings.HasPrefix(path, "/usr/") || strings.HasPrefix(path, "/opt/app/")
}

// synthMaps builds a /proc/self/maps-like view: the executable's segments,
// then each loaded object, then heap/stack pseudo-entries.
func synthMaps(exePath string, exeSize uint64, libs []Library, fs *procfs.FS) []procfs.Region {
	var out []procfs.Region
	inodeOf := func(path string) uint64 {
		if fs == nil {
			return 0
		}
		if meta, err := fs.Stat(path); err == nil {
			return meta.Inode
		}
		return 0
	}
	if exeSize < 0x1000 {
		exeSize = 0x1000
	}
	base := uint64(0x400000)
	out = append(out,
		procfs.Region{Start: base, End: base + exeSize, Perms: "r-xp", Dev: "fd:00", Inode: inodeOf(exePath), Path: exePath},
		procfs.Region{Start: base + exeSize, End: base + exeSize + 0x1000, Perms: "rw-p", Dev: "fd:00", Inode: inodeOf(exePath), Path: exePath},
	)
	libBase := uint64(0x7f0000000000)
	for _, l := range libs {
		out = append(out,
			procfs.Region{Start: libBase, End: libBase + l.Size, Perms: "r-xp", Dev: "fd:00", Inode: inodeOf(l.Path), Path: l.Path},
			procfs.Region{Start: libBase + l.Size, End: libBase + l.Size + 0x1000, Perms: "rw-p", Dev: "fd:00", Inode: inodeOf(l.Path), Path: l.Path},
		)
		libBase += l.Size + 0x10000
	}
	out = append(out,
		procfs.Region{Start: 0x7ffe00000000, End: 0x7ffe00100000, Perms: "rw-p", Path: "[heap]"},
		procfs.Region{Start: 0x7fff00000000, End: 0x7fff00021000, Perms: "rw-p", Path: "[stack]"},
	)
	return out
}

func splitPathList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ":") {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// splitPreload splits LD_PRELOAD, which accepts both colons and spaces.
func splitPreload(s string) []string {
	if s == "" {
		return nil
	}
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ':' || r == ' ' })
	var out []string
	for _, f := range fields {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}
