package ldso

import (
	"reflect"
	"testing"

	"siren/internal/procfs"
	"siren/internal/toolchain"
)

// testWorld builds a cache with two libtinfo variants, libc, libm, and
// siren.so, plus a dynamic bash-like executable.
func testWorld(t *testing.T) (*Cache, *procfs.FS, []byte) {
	t.Helper()
	cache := NewCache()
	fs := procfs.NewFS()

	install := func(lib Library) {
		cache.Register(lib)
		fs.Install(lib.Path, []byte("so:"+lib.Soname), procfs.FileMeta{})
	}
	install(Library{Soname: "libc.so.6", Path: "/lib64/libc.so.6"})
	install(Library{Soname: "libm.so.6", Path: "/lib64/libm.so.6"})
	install(Library{Soname: "libtinfo.so.6", Path: "/lib64/libtinfo.so.6"})
	install(Library{Soname: "libtinfo.so.6", Path: "/appl/spack/libtinfo.so.6", Needed: []string{"libm.so.6"}})
	install(Library{Soname: "siren.so", Path: "/opt/siren/lib/siren.so", Needed: []string{"libc.so.6"}})

	art, err := toolchain.Compile(
		toolchain.Source{Name: "bash", Version: "5.2", Functions: []string{"main", "readline_hook"}},
		toolchain.BuildOptions{
			Compilers: []toolchain.Compiler{toolchain.GCCSUSE},
			Libraries: []string{"libtinfo.so.6", "libc.so.6"},
		})
	if err != nil {
		t.Fatal(err)
	}
	fs.Install("/usr/bin/bash", art.Binary, procfs.FileMeta{})
	return cache, fs, art.Binary
}

func TestLinkDefaultSearchPath(t *testing.T) {
	cache, fs, bash := testWorld(t)
	res, err := Link(bash, "/usr/bin/bash", nil, cache, fs, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Static {
		t.Fatal("dynamic binary reported static")
	}
	want := []string{"/lib64/libtinfo.so.6", "/lib64/libc.so.6"}
	if got := res.LoadedPaths(); !reflect.DeepEqual(got, want) {
		t.Errorf("loaded = %q, want %q", got, want)
	}
	if len(res.Missing) != 0 {
		t.Errorf("missing = %q", res.Missing)
	}
}

func TestLDLibraryPathOverridesDefault(t *testing.T) {
	cache, fs, bash := testWorld(t)
	env := map[string]string{"LD_LIBRARY_PATH": "/appl/spack"}
	res, err := Link(bash, "/usr/bin/bash", env, cache, fs, false)
	if err != nil {
		t.Fatal(err)
	}
	got := res.LoadedPaths()
	// The spack libtinfo wins, and drags in libm — the Table 4 deviation.
	want := []string{"/appl/spack/libtinfo.so.6", "/lib64/libc.so.6", "/lib64/libm.so.6"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("loaded = %q, want %q", got, want)
	}
}

func TestPreloadInjection(t *testing.T) {
	cache, fs, bash := testWorld(t)
	env := map[string]string{"LD_PRELOAD": "/opt/siren/lib/siren.so"}
	res, err := Link(bash, "/usr/bin/bash", env, cache, fs, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasPreload("siren.so") {
		t.Fatal("siren.so not preloaded")
	}
	// Preload loads before everything else.
	if res.Loaded[0].Soname != "siren.so" {
		t.Errorf("load order = %q", res.LoadedPaths())
	}
}

func TestPreloadMissingIsGraceful(t *testing.T) {
	cache, fs, bash := testWorld(t)
	env := map[string]string{"LD_PRELOAD": "/nonexistent/siren.so"}
	res, err := Link(bash, "/usr/bin/bash", env, cache, fs, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.HasPreload("siren.so") {
		t.Error("nonexistent preload should not inject")
	}
	if len(res.Missing) != 1 || res.Missing[0] != "/nonexistent/siren.so" {
		t.Errorf("missing = %q", res.Missing)
	}
	// Process still links its real deps.
	if len(res.Loaded) != 2 {
		t.Errorf("loaded = %q", res.LoadedPaths())
	}
}

func TestContainerHidesPreload(t *testing.T) {
	cache, fs, bash := testWorld(t)
	env := map[string]string{"LD_PRELOAD": "/opt/siren/lib/siren.so"}
	res, err := Link(bash, "/usr/bin/bash", env, cache, fs, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.HasPreload("siren.so") {
		t.Error("preload must not resolve inside a container (path not mounted)")
	}
	if len(res.Missing) == 0 {
		t.Error("expected the preload recorded as missing")
	}
}

func TestStaticBinarySkipsLinker(t *testing.T) {
	cache, fs, _ := testWorld(t)
	art, err := toolchain.Compile(
		toolchain.Source{Name: "static-tool", Version: "1.0"},
		toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE}, Static: true})
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]string{"LD_PRELOAD": "/opt/siren/lib/siren.so"}
	res, err := Link(art.Binary, "/usr/bin/static-tool", env, cache, fs, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Static {
		t.Fatal("static binary not recognised")
	}
	if len(res.Preloaded) != 0 || len(res.Loaded) != 0 {
		t.Error("static binary must load nothing through ld.so")
	}
}

func TestMissingDependencyRecorded(t *testing.T) {
	cache, fs, _ := testWorld(t)
	art, err := toolchain.Compile(
		toolchain.Source{Name: "app", Version: "1"},
		toolchain.BuildOptions{
			Compilers: []toolchain.Compiler{toolchain.GCCSUSE},
			Libraries: []string{"libdoesnotexist.so.1", "libc.so.6"},
		})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Link(art.Binary, "/home/u/app", nil, cache, fs, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Missing, []string{"libdoesnotexist.so.1"}) {
		t.Errorf("missing = %q", res.Missing)
	}
	if got := res.LoadedPaths(); !reflect.DeepEqual(got, []string{"/lib64/libc.so.6"}) {
		t.Errorf("loaded = %q", got)
	}
}

func TestTransitiveClosureNoDuplicates(t *testing.T) {
	cache := NewCache()
	fs := procfs.NewFS()
	cache.Register(Library{Soname: "libc.so.6", Path: "/lib64/libc.so.6"})
	cache.Register(Library{Soname: "liba.so", Path: "/lib64/liba.so", Needed: []string{"libshared.so", "libc.so.6"}})
	cache.Register(Library{Soname: "libb.so", Path: "/lib64/libb.so", Needed: []string{"libshared.so", "liba.so"}})
	cache.Register(Library{Soname: "libshared.so", Path: "/lib64/libshared.so", Needed: []string{"libc.so.6"}})

	art, err := toolchain.Compile(
		toolchain.Source{Name: "app", Version: "1"},
		toolchain.BuildOptions{
			Compilers: []toolchain.Compiler{toolchain.GCCSUSE},
			Libraries: []string{"liba.so", "libb.so"},
		})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Link(art.Binary, "/home/u/app", nil, cache, fs, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/lib64/liba.so", "/lib64/libb.so", "/lib64/libshared.so", "/lib64/libc.so.6"}
	if got := res.LoadedPaths(); !reflect.DeepEqual(got, want) {
		t.Errorf("loaded = %q, want %q", got, want)
	}
}

func TestMapsIncludeExecutableAndLibraries(t *testing.T) {
	cache, fs, bash := testWorld(t)
	res, err := Link(bash, "/usr/bin/bash", nil, cache, fs, false)
	if err != nil {
		t.Fatal(err)
	}
	paths := procfs.MappedPaths(res.Maps)
	want := []string{"/usr/bin/bash", "/lib64/libtinfo.so.6", "/lib64/libc.so.6"}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("mapped paths = %q, want %q", paths, want)
	}
	// Maps text must parse back.
	if _, err := procfs.ParseMaps(procfs.RenderMaps(res.Maps)); err != nil {
		t.Errorf("maps do not round-trip: %v", err)
	}
	// Inodes must come from the filesystem.
	if res.Maps[0].Inode == 0 {
		t.Error("executable region lost its inode")
	}
}

func TestPreloadSonameResolution(t *testing.T) {
	cache, fs, bash := testWorld(t)
	// A bare soname in LD_PRELOAD resolves through the search path.
	cache.Register(Library{Soname: "libprofiler.so", Path: "/usr/lib64/libprofiler.so"})
	env := map[string]string{"LD_PRELOAD": "libprofiler.so"}
	res, err := Link(bash, "/usr/bin/bash", env, cache, fs, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasPreload("libprofiler.so") {
		t.Error("soname preload failed to resolve")
	}
}

func TestSplitPreloadForms(t *testing.T) {
	got := splitPreload("/a/b.so:libx.so /c/d.so")
	if !reflect.DeepEqual(got, []string{"/a/b.so", "libx.so", "/c/d.so"}) {
		t.Errorf("splitPreload = %q", got)
	}
	if splitPreload("") != nil {
		t.Error("empty preload should be nil")
	}
}

func TestCachePaths(t *testing.T) {
	cache, _, _ := testWorld(t)
	if got := len(cache.Paths()); got != 5 {
		t.Errorf("Paths len = %d, want 5", got)
	}
}

func BenchmarkLink(b *testing.B) {
	cache := NewCache()
	fs := procfs.NewFS()
	cache.Register(Library{Soname: "libc.so.6", Path: "/lib64/libc.so.6"})
	var libs []string
	for i := 0; i < 30; i++ {
		so := "lib" + string(rune('a'+i)) + ".so"
		cache.Register(Library{Soname: so, Path: "/lib64/" + so, Needed: []string{"libc.so.6"}})
		libs = append(libs, so)
	}
	art, err := toolchain.Compile(
		toolchain.Source{Name: "app", Version: "1"},
		toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE}, Libraries: libs})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Link(art.Binary, "/home/u/app", nil, cache, fs, false); err != nil {
			b.Fatal(err)
		}
	}
}
