package receiver

import (
	"fmt"
	"strconv"

	"siren/internal/obs"
)

// rcvMetrics holds the receiver's obs instruments, one per ingest stage.
// The zero value (every field nil) is the uninstrumented state: obs methods
// are nil-receiver safe, and the per-datagram paths additionally gate their
// time.Now() calls on instrumented() so an uninstrumented receiver pays
// only a nil check — pinned by BenchmarkReceiverIngest staying on its
// baseline while BenchmarkIngestInstrumented gates the instrumented cost.
type rcvMetrics struct {
	// parseNS is wire.Parse latency per datagram — the CPU half of the
	// write path; a p99 jump here means malformed floods or jumbo payloads.
	parseNS *obs.Histogram
	// queueWaitNS is shard-channel residency (dispatch → writer dequeue) —
	// the backpressure signal: it grows before Dropped does.
	queueWaitNS *obs.Histogram
	// insertNS is the InsertBatch/InsertShard call latency per flushed
	// batch — the disk half; its p99 is what the periodic stats line prints.
	insertNS *obs.Histogram
}

func (m *rcvMetrics) instrumented() bool { return m.parseNS != nil }

// registerMetrics creates the receiver's instruments in reg: the three
// stage histograms, a queue-depth gauge per writer shard, and counter
// bridges onto the existing Stats atomics (the hot path keeps its single
// increment; the registry reads the atomics only when scraped).
func (r *Receiver) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.mx = rcvMetrics{
		parseNS:     reg.Histogram("siren_ingest_parse_ns", "wire.Parse latency per datagram"),
		queueWaitNS: reg.Histogram("siren_ingest_queue_wait_ns", "shard-channel residency from dispatch to writer dequeue"),
		insertNS:    reg.Histogram("siren_ingest_insert_ns", "store insert latency per flushed batch"),
	}
	for i := range r.shards {
		ch := r.shards[i]
		reg.GaugeFunc("siren_ingest_queue_depth", "queued datagrams per writer shard",
			func() int64 { return int64(len(ch)) }, obs.L("shard", strconv.Itoa(i)))
	}
	reg.CounterFunc("siren_ingest_received_total", "datagrams read from the transport", r.stats.Received.Load)
	reg.CounterFunc("siren_ingest_inserted_total", "messages stored in the database", r.stats.Inserted.Load)
	reg.CounterFunc("siren_ingest_malformed_total", "datagrams that failed to parse", r.stats.Malformed.Load)
	reg.CounterFunc("siren_ingest_dropped_total", "datagrams dropped on a full shard channel", r.stats.Dropped.Load)
	reg.CounterFunc("siren_ingest_rejected_total", "datagrams outside this receiver's partition or ownership", r.stats.Rejected.Load)
	reg.CounterFunc("siren_ingest_insert_errors_total", "failed insert calls", r.stats.InsertErrors.Load)
}

// StatsLine renders the periodic log line cmd/siren-receiver prints: the
// Stats counter snapshot plus the live queue depth and the insert-latency
// p99 so far (0 when the receiver is uninstrumented or idle) — the two
// leading indicators of a drowning writer tier, visible without a scrape.
func (r *Receiver) StatsLine() string {
	return fmt.Sprintf("%s queue=%d insert_p99_ns=%d",
		r.stats.String(), r.QueueDepth(), r.mx.insertNS.Snapshot().P99)
}

// QueueDepth reports the total number of datagrams queued across all writer
// shard channels at this instant.
func (r *Receiver) QueueDepth() int {
	n := 0
	for _, sh := range r.shards {
		n += len(sh)
	}
	return n
}
