package receiver

import (
	"fmt"
	"testing"
	"time"

	"siren/internal/sirendb"
	"siren/internal/wire"
)

func mkMsg(pid int, typ string) wire.Message {
	return wire.Message{
		Header: wire.Header{
			JobID: "77", StepID: "0", PID: pid, Hash: "beef", Host: "nid001001",
			Time: 1733900000, Layer: wire.LayerSelf, Type: typ, Seq: 0, Total: 1,
		},
		Content: []byte("payload"),
	}
}

func TestUDPEndToEnd(t *testing.T) {
	db, _ := sirendb.Open("")
	r := New(db, Options{})
	addr, err := r.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := wire.DialUDP(addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Send(wire.Encode(mkMsg(i, wire.TypeMetadata))); err != nil {
			t.Fatal(err)
		}
	}
	tr.Close()
	// UDP delivery on loopback is fast but asynchronous; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for db.Count() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.Count(); got != n {
		t.Errorf("stored %d messages, want %d (loopback should not drop)", got, n)
	}
	if r.Stats().Malformed.Load() != 0 {
		t.Error("unexpected malformed datagrams")
	}
}

func TestChannelModeAndBatching(t *testing.T) {
	db, _ := sirendb.Open("")
	r := New(db, Options{Depth: 1024, BatchMax: 16})
	src := wire.NewChanTransport(1 << 16)
	r.AttachChannel(src.C())
	const n = 2000
	for i := 0; i < n; i++ {
		if err := src.Send(wire.Encode(mkMsg(i, wire.TypeObjects))); err != nil {
			t.Fatal(err)
		}
	}
	src.Close()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if db.Count() != n {
		t.Errorf("stored %d, want %d", db.Count(), n)
	}
	if r.Stats().Inserted.Load() != n {
		t.Errorf("Inserted = %d", r.Stats().Inserted.Load())
	}
}

func TestMalformedDatagramsDropped(t *testing.T) {
	db, _ := sirendb.Open("")
	r := New(db, Options{})
	src := wire.NewChanTransport(64)
	r.AttachChannel(src.C())
	src.Send([]byte("garbage"))
	src.Send(wire.Encode(mkMsg(1, wire.TypeMetadata)))
	src.Send([]byte("SIREN1|also garbage"))
	src.Close()
	r.Close()
	if db.Count() != 1 {
		t.Errorf("stored %d, want 1", db.Count())
	}
	if r.Stats().Malformed.Load() != 2 {
		t.Errorf("Malformed = %d, want 2", r.Stats().Malformed.Load())
	}
}

func TestLossyTransportMissingFields(t *testing.T) {
	// Reproduces the paper's observation: with a small UDP loss rate, a
	// small fraction of processes end up with missing fields, and the rest
	// of the pipeline keeps working.
	db, _ := sirendb.Open("")
	r := New(db, Options{})
	src := wire.NewChanTransport(1 << 18)
	lossy := wire.NewLossyTransport(src, 0.001, 99) // 0.1% datagram loss
	r.AttachChannel(src.C())

	const procs = 2000
	perProc := []string{wire.TypeMetadata, wire.TypeObjects, wire.TypeFileH}
	for p := 0; p < procs; p++ {
		for _, typ := range perProc {
			m := mkMsg(p, typ)
			m.Hash = fmt.Sprintf("%032x", p)
			lossy.Send(wire.Encode(m))
		}
	}
	src.Close()
	r.Close()

	// Count processes with missing fields.
	byProc := make(map[string]int)
	db.Scan(func(m wire.Message) bool {
		byProc[m.ProcessKey()]++
		return true
	})
	missing := 0
	for _, n := range byProc {
		if n < len(perProc) {
			missing++
		}
	}
	total := procs * len(perProc)
	lost := total - int(db.Count())
	if lost == 0 {
		t.Skip("loss injection produced no losses at this seed")
	}
	if missing == 0 {
		t.Error("expected some processes with missing fields")
	}
	frac := float64(missing) / procs
	if frac > 0.02 {
		t.Errorf("missing-field fraction %.4f implausibly high for 0.1%% loss", frac)
	}
	t.Logf("datagrams lost: %d/%d, processes with missing fields: %d/%d (%.3f%%)",
		lost, total, missing, procs, 100*frac)
}

func TestCloseIsIdempotentAndFlushes(t *testing.T) {
	db, _ := sirendb.Open("")
	r := New(db, Options{BatchMax: 1000})
	src := wire.NewChanTransport(64)
	r.AttachChannel(src.C())
	src.Send(wire.Encode(mkMsg(1, wire.TypeMetadata)))
	src.Close()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if db.Count() != 1 {
		t.Error("partial batch not flushed on close")
	}
}

func BenchmarkPipelineChannel(b *testing.B) {
	db, _ := sirendb.Open("")
	r := New(db, Options{Depth: 1 << 16})
	src := wire.NewChanTransport(1 << 16)
	r.AttachChannel(src.C())
	d := wire.Encode(mkMsg(1, wire.TypeObjects))
	b.SetBytes(int64(len(d)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for src.Send(d) != nil {
		}
	}
	b.StopTimer()
	src.Close()
	r.Close()
}
