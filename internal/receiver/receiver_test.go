package receiver

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"siren/internal/sirendb"
	"siren/internal/wire"
)

func mkMsg(pid int, typ string) wire.Message {
	return wire.Message{
		Header: wire.Header{
			JobID: "77", StepID: "0", PID: pid, Hash: "beef", Host: "nid001001",
			Time: 1733900000, Layer: wire.LayerSelf, Type: typ, Seq: 0, Total: 1,
		},
		Content: []byte("payload"),
	}
}

func TestUDPEndToEnd(t *testing.T) {
	db, _ := sirendb.Open("")
	r := New(db, Options{})
	addr, err := r.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := wire.DialUDP(addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Send(wire.Encode(mkMsg(i, wire.TypeMetadata))); err != nil {
			t.Fatal(err)
		}
	}
	tr.Close()
	// UDP delivery on loopback is fast but asynchronous; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for db.Count() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.Count(); got != n {
		t.Errorf("stored %d messages, want %d (loopback should not drop)", got, n)
	}
	if r.Stats().Malformed.Load() != 0 {
		t.Error("unexpected malformed datagrams")
	}
}

func TestChannelModeAndBatching(t *testing.T) {
	db, _ := sirendb.Open("")
	r := New(db, Options{Depth: 1024, BatchMax: 16})
	src := wire.NewChanTransport(1 << 16)
	r.AttachChannel(src.C())
	const n = 2000
	for i := 0; i < n; i++ {
		if err := src.Send(wire.Encode(mkMsg(i, wire.TypeObjects))); err != nil {
			t.Fatal(err)
		}
	}
	src.Close()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if db.Count() != n {
		t.Errorf("stored %d, want %d", db.Count(), n)
	}
	if r.Stats().Inserted.Load() != n {
		t.Errorf("Inserted = %d", r.Stats().Inserted.Load())
	}
}

func TestMalformedDatagramsDropped(t *testing.T) {
	db, _ := sirendb.Open("")
	r := New(db, Options{})
	src := wire.NewChanTransport(64)
	r.AttachChannel(src.C())
	src.Send([]byte("garbage"))
	src.Send(wire.Encode(mkMsg(1, wire.TypeMetadata)))
	src.Send([]byte("SIREN1|also garbage"))
	src.Close()
	r.Close()
	if db.Count() != 1 {
		t.Errorf("stored %d, want 1", db.Count())
	}
	if r.Stats().Malformed.Load() != 2 {
		t.Errorf("Malformed = %d, want 2", r.Stats().Malformed.Load())
	}
}

func TestLossyTransportMissingFields(t *testing.T) {
	// Reproduces the paper's observation: with a small UDP loss rate, a
	// small fraction of processes end up with missing fields, and the rest
	// of the pipeline keeps working.
	db, _ := sirendb.Open("")
	r := New(db, Options{})
	src := wire.NewChanTransport(1 << 18)
	lossy := wire.NewLossyTransport(src, 0.001, 99) // 0.1% datagram loss
	r.AttachChannel(src.C())

	const procs = 2000
	perProc := []string{wire.TypeMetadata, wire.TypeObjects, wire.TypeFileH}
	for p := 0; p < procs; p++ {
		for _, typ := range perProc {
			m := mkMsg(p, typ)
			m.Hash = fmt.Sprintf("%032x", p)
			lossy.Send(wire.Encode(m))
		}
	}
	src.Close()
	r.Close()

	// Count processes with missing fields.
	byProc := make(map[string]int)
	db.Scan(func(m wire.Message) bool {
		byProc[m.ProcessKey()]++
		return true
	})
	missing := 0
	for _, n := range byProc {
		if n < len(perProc) {
			missing++
		}
	}
	total := procs * len(perProc)
	lost := total - int(db.Count())
	if lost == 0 {
		t.Skip("loss injection produced no losses at this seed")
	}
	if missing == 0 {
		t.Error("expected some processes with missing fields")
	}
	frac := float64(missing) / procs
	if frac > 0.02 {
		t.Errorf("missing-field fraction %.4f implausibly high for 0.1%% loss", frac)
	}
	t.Logf("datagrams lost: %d/%d, processes with missing fields: %d/%d (%.3f%%)",
		lost, total, missing, procs, 100*frac)
}

func TestCloseIsIdempotentAndFlushes(t *testing.T) {
	db, _ := sirendb.Open("")
	r := New(db, Options{BatchMax: 1000})
	src := wire.NewChanTransport(64)
	r.AttachChannel(src.C())
	src.Send(wire.Encode(mkMsg(1, wire.TypeMetadata)))
	src.Close()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if db.Count() != 1 {
		t.Error("partial batch not flushed on close")
	}
}

// blockingStore blocks every InsertBatch until released, to back writers up
// deterministically.
type blockingStore struct {
	gate     chan struct{}
	inserted atomic.Int64
}

func (s *blockingStore) InsertBatch(ms []wire.Message) error {
	<-s.gate
	s.inserted.Add(int64(len(ms)))
	return nil
}

// failingStore rejects every InsertBatch.
type failingStore struct{}

func (failingStore) InsertBatch(ms []wire.Message) error {
	return fmt.Errorf("injected insert failure")
}

func TestChannelFullDropsAreCounted(t *testing.T) {
	store := &blockingStore{gate: make(chan struct{})}
	r := New(store, Options{Depth: 4, BatchMax: 1, Writers: 1})
	r.startWriters()

	// With the writer stalled inside its first InsertBatch (BatchMax 1), the
	// single shard accepts at most the batched message plus Depth queued
	// packets; everything beyond that must be counted as dropped, exactly
	// like a kernel socket-buffer overflow.
	const n = 32
	d := wire.Encode(mkMsg(1, wire.TypeMetadata))
	for i := 0; i < n; i++ {
		r.ingest(d, false)
	}
	if got := r.Stats().Dropped.Load(); got < n-8 {
		t.Fatalf("Dropped = %d, want >= %d with a stalled writer and depth 4", got, n-8)
	}
	close(store.gate) // release the writer
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	total := store.inserted.Load() + r.Stats().Dropped.Load() + r.Stats().Malformed.Load()
	if total != r.Stats().Received.Load() {
		t.Errorf("inserted %d + dropped %d + malformed %d != received %d",
			store.inserted.Load(), r.Stats().Dropped.Load(),
			r.Stats().Malformed.Load(), r.Stats().Received.Load())
	}
}

func TestInsertBatchFailuresAreCounted(t *testing.T) {
	r := New(failingStore{}, Options{BatchMax: 8, Writers: 2})
	src := wire.NewChanTransport(256)
	r.AttachChannel(src.C())
	const n = 50
	for i := 0; i < n; i++ {
		if err := src.Send(wire.Encode(mkMsg(i, wire.TypeObjects))); err != nil {
			t.Fatal(err)
		}
	}
	src.Close()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Inserted.Load() != 0 {
		t.Errorf("Inserted = %d with a failing store", st.Inserted.Load())
	}
	if st.InsertErrors.Load() == 0 {
		t.Error("failing InsertBatch must increment Stats.InsertErrors")
	}
	if st.InsertLost.Load() != n {
		t.Errorf("InsertLost = %d, want %d (every message of every failed batch)",
			st.InsertLost.Load(), n)
	}
}

func TestShardingPreservesPerJobOrder(t *testing.T) {
	db, _ := sirendb.Open("")
	r := New(db, Options{Writers: 4, BatchMax: 8})
	src := wire.NewChanTransport(1 << 12)
	r.AttachChannel(src.C())
	const jobs, perJob = 8, 100
	for seq := 0; seq < perJob; seq++ {
		for j := 0; j < jobs; j++ {
			m := mkMsg(seq, wire.TypeObjects)
			m.JobID = fmt.Sprintf("job-%d", j)
			m.Content = []byte(fmt.Sprintf("seq=%d", seq))
			if err := src.Send(wire.Encode(m)); err != nil {
				t.Fatal(err)
			}
		}
	}
	src.Close()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.Count(); got != jobs*perJob {
		t.Fatalf("stored %d, want %d", got, jobs*perJob)
	}
	// Within one job (same host), insertion order must match send order even
	// though four writer shards ran concurrently.
	for j := 0; j < jobs; j++ {
		ms := db.ByJob(fmt.Sprintf("job-%d", j))
		if len(ms) != perJob {
			t.Fatalf("job %d: %d messages, want %d", j, len(ms), perJob)
		}
		for seq, m := range ms {
			if want := fmt.Sprintf("seq=%d", seq); string(m.Content) != want {
				t.Fatalf("job %d position %d: content %q, want %q (reordered)",
					j, seq, m.Content, want)
			}
		}
	}
}

func TestMalformedAcrossShards(t *testing.T) {
	// Garbage that defeats the shard-key scan must still be counted exactly
	// once as malformed, wherever it lands.
	db, _ := sirendb.Open("")
	r := New(db, Options{Writers: 4})
	src := wire.NewChanTransport(64)
	r.AttachChannel(src.C())
	src.Send([]byte("no magic at all"))
	src.Send([]byte("SIREN1|JOBID=1|truncated"))
	src.Send(wire.Encode(mkMsg(1, wire.TypeMetadata)))
	src.Close()
	r.Close()
	if db.Count() != 1 {
		t.Errorf("stored %d, want 1", db.Count())
	}
	if got := r.Stats().Malformed.Load(); got != 2 {
		t.Errorf("Malformed = %d, want 2", got)
	}
}

// sendJobSpread pushes n messages spread over several (JobID, Host) pairs
// through a channel transport and closes everything down.
func sendJobSpread(t *testing.T, r *Receiver, n int) {
	t.Helper()
	src := wire.NewChanTransport(1 << 12)
	r.AttachChannel(src.C())
	for i := 0; i < n; i++ {
		m := mkMsg(i, wire.TypeObjects)
		m.JobID = fmt.Sprintf("job-%d", i%9)
		m.Host = fmt.Sprintf("nid%06d", i%4)
		if err := src.Send(wire.Encode(m)); err != nil {
			t.Fatal(err)
		}
	}
	src.Close()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectShardRoutingEndToEnd(t *testing.T) {
	// Writers == store shards: the receiver must detect the sharded store
	// and route writer batches straight into their store shards, with every
	// message still stored and queryable.
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := New(db, Options{Writers: 4, BatchMax: 16})
	if r.direct == nil {
		t.Fatal("matched shard counts must enable direct store routing")
	}
	const n = 900
	sendJobSpread(t, r, n)
	if got := db.Count(); got != n {
		t.Errorf("stored %d, want %d", got, n)
	}
	for j := 0; j < 9; j++ {
		if got := len(db.ByJob(fmt.Sprintf("job-%d", j))); got != n/9 {
			t.Errorf("job-%d: %d rows, want %d", j, got, n/9)
		}
	}
}

func TestMismatchedShardCountsFallBack(t *testing.T) {
	// Writers != store shards: no 1:1 mapping exists, so the receiver must
	// fall back to InsertBatch (store-side hash partitioning) and still
	// store everything.
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := New(db, Options{Writers: 4, BatchMax: 16})
	if r.direct != nil {
		t.Fatal("mismatched shard counts must not claim direct routing")
	}
	const n = 600
	sendJobSpread(t, r, n)
	if got := db.Count(); got != n {
		t.Errorf("stored %d, want %d", got, n)
	}
}

func TestDirectRoutingPersistentReplay(t *testing.T) {
	// The full paper pipeline shape: UDP-less channel ingest into a
	// WAL-backed sharded store, then a restart replays every stored row.
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := sirendb.OpenOptions(path, sirendb.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := New(db, Options{Writers: 2, BatchMax: 32})
	const n = 300
	sendJobSpread(t, r, n)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := sirendb.OpenOptions(path, sirendb.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Count(); got != n {
		t.Errorf("replayed %d rows, want %d", got, n)
	}
	if db2.CorruptRecords() != 0 {
		t.Errorf("corrupt = %d", db2.CorruptRecords())
	}
}

func BenchmarkPipelineChannel(b *testing.B) {
	db, _ := sirendb.Open("")
	r := New(db, Options{Depth: 1 << 16})
	src := wire.NewChanTransport(1 << 16)
	r.AttachChannel(src.C())
	d := wire.Encode(mkMsg(1, wire.TypeObjects))
	b.SetBytes(int64(len(d)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for src.Send(d) != nil {
		}
	}
	b.StopTimer()
	src.Close()
	r.Close()
}
