// Ingest throughput benchmarks for the sharded receiver, comparing the
// single-reader/single-writer baseline against multi-shard configurations
// across datagram sizes:
//
//	go test -bench=BenchmarkReceiverIngest -benchmem ./internal/receiver
//
// The benchmark drives the post-socket hot path directly (pooled buffer copy
// → shard dispatch → parse → batch → insert), i.e. everything the UDP reader
// does after ReadFrom returns, so numbers isolate the ingest subsystem from
// kernel scheduling. Messages cycle through 16 jobs so the hash partitioner
// actually spreads load across shards.
package receiver

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"siren/internal/obs"
	"siren/internal/sirendb"
	"siren/internal/wire"
)

func benchDatagrams(payload int) [][]byte {
	const jobs = 16
	dgs := make([][]byte, jobs)
	for i := range dgs {
		m := mkMsg(100+i, wire.TypeObjects)
		m.JobID = fmt.Sprintf("%d", 7000+i)
		m.Content = bytes.Repeat([]byte{'x'}, payload)
		dgs[i] = wire.Encode(m)
	}
	return dgs
}

func benchIngest(b *testing.B, writers, payload, dbShards int, reg *obs.Registry) {
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: dbShards})
	if err != nil {
		b.Fatal(err)
	}
	r := New(db, Options{Writers: writers, Depth: 1 << 14, BatchMax: 256, Metrics: reg})
	r.startWriters()
	dgs := benchDatagrams(payload)
	b.SetBytes(int64(len(dgs[0])))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ingest(dgs[i&15], true)
	}
	// Throughput means stored, not queued: wait until every message landed.
	for r.stats.Inserted.Load()+r.stats.Malformed.Load() < int64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()
	if err := r.Close(); err != nil {
		b.Fatal(err)
	}
	if db.Count() != b.N {
		b.Fatalf("stored %d of %d", db.Count(), b.N)
	}
}

// BenchmarkReceiverIngest drives the post-socket hot path with the store
// sharded 1:1 with the writers, so each writer inserts directly into its own
// store shard (the ShardedStore fast path).
func BenchmarkReceiverIngest(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, payload := range []int{64, 512, 1300} {
			b.Run(fmt.Sprintf("shards=%d/payload=%d", shards, payload), func(b *testing.B) {
				benchIngest(b, shards, payload, shards, nil)
			})
		}
	}
}

// BenchmarkIngestInstrumented is bench-gated alongside BenchmarkReceiverIngest:
// the identical hot path with a full obs registry attached (stage histograms
// stamping every datagram twice, queue-depth gauges, counter bridges), so the
// per-datagram cost of instrumentation itself is regression-gated — the gap
// between this and the uninstrumented run is the telemetry tax.
func BenchmarkIngestInstrumented(b *testing.B) {
	for _, shards := range []int{4} {
		for _, payload := range []int{512} {
			b.Run(fmt.Sprintf("shards=%d/payload=%d", shards, payload), func(b *testing.B) {
				benchIngest(b, shards, payload, shards, obs.NewRegistry("bench"))
			})
		}
	}
}

// BenchmarkReceiverIngestSingleMutexStore pins the pre-sharding store shape:
// four writer shards funnelling into one store shard, re-serialising every
// insert on a single mutex — the contention the sharded store removes.
func BenchmarkReceiverIngestSingleMutexStore(b *testing.B) {
	for _, payload := range []int{64, 512, 1300} {
		b.Run(fmt.Sprintf("writers=4/payload=%d", payload), func(b *testing.B) {
			benchIngest(b, 4, payload, 1, nil)
		})
	}
}

// baselineParse is the seed implementation of wire.Parse, kept verbatim so
// BenchmarkReceiverIngestBaseline reproduces the pre-refactor per-message
// cost: one string conversion of the whole datagram, a second copy for the
// content, and a per-field prefix concatenation.
func baselineParse(datagram []byte) (wire.Message, error) {
	s := string(datagram)
	if !strings.HasPrefix(s, "SIREN1|") {
		return wire.Message{}, fmt.Errorf("bad magic")
	}
	s = s[len("SIREN1|"):]
	var m wire.Message
	fields := []string{"JOBID", "STEPID", "PID", "HASH", "HOST", "TIME", "LAYER", "TYPE", "SEQ", "TOT"}
	for _, name := range fields {
		prefix := name + "="
		if !strings.HasPrefix(s, prefix) {
			return wire.Message{}, fmt.Errorf("expected field %s", name)
		}
		s = s[len(prefix):]
		sep := strings.IndexByte(s, '|')
		if sep < 0 {
			return wire.Message{}, fmt.Errorf("unterminated field %s", name)
		}
		val := s[:sep]
		s = s[sep+1:]
		var err error
		switch name {
		case "JOBID":
			m.JobID = val
		case "STEPID":
			m.StepID = val
		case "PID":
			m.PID, err = strconv.Atoi(val)
		case "HASH":
			m.Hash = val
		case "HOST":
			m.Host = val
		case "TIME":
			m.Time, err = strconv.ParseInt(val, 10, 64)
		case "LAYER":
			m.Layer = val
		case "TYPE":
			m.Type = val
		case "SEQ":
			m.Seq, err = strconv.Atoi(val)
		case "TOT":
			m.Total, err = strconv.Atoi(val)
		}
		if err != nil {
			return wire.Message{}, fmt.Errorf("field %s: %v", name, err)
		}
	}
	if !strings.HasPrefix(s, "CONTENT=") {
		return wire.Message{}, fmt.Errorf("missing CONTENT")
	}
	m.Content = []byte(s[len("CONTENT="):])
	if m.Total < 1 || m.Seq < 0 || m.Seq >= m.Total {
		return wire.Message{}, fmt.Errorf("chunk out of range")
	}
	return m, nil
}

// BenchmarkReceiverIngestBaseline reproduces the seed ingest pipeline — one
// reader-side per-packet heap copy, one channel, one writer goroutine
// running the seed parse — as the comparison floor for the sharded
// receiver's speedup target.
func BenchmarkReceiverIngestBaseline(b *testing.B) {
	for _, payload := range []int{64, 512, 1300} {
		b.Run(fmt.Sprintf("payload=%d", payload), func(b *testing.B) {
			db, _ := sirendb.OpenOptions("", sirendb.Options{Shards: 1}) // the seed's single-mutex store
			ch := make(chan []byte, 1<<14)
			done := make(chan struct{})
			go func() { // the seed writeLoop, batching up to 256
				defer close(done)
				batch := make([]wire.Message, 0, 256)
				flush := func() {
					if len(batch) == 0 {
						return
					}
					_ = db.InsertBatch(batch)
					batch = batch[:0]
				}
				add := func(d []byte) {
					if m, err := baselineParse(d); err == nil {
						batch = append(batch, m)
					}
				}
				for d := range ch {
					add(d)
				drain:
					for len(batch) < 256 {
						select {
						case d, ok := <-ch:
							if !ok {
								flush()
								return
							}
							add(d)
						default:
							break drain
						}
					}
					flush()
				}
				flush()
			}()
			dgs := benchDatagrams(payload)
			b.SetBytes(int64(len(dgs[0])))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := dgs[i&15]
				ch <- append([]byte(nil), d...) // the seed's per-packet allocation
			}
			close(ch)
			<-done
			b.StopTimer()
			if db.Count() != b.N {
				b.Fatalf("stored %d of %d", db.Count(), b.N)
			}
		})
	}
}

// BenchmarkReceiverUDP measures the full socket path on loopback, including
// kernel buffering and the SO_RCVBUF tuning.
func BenchmarkReceiverUDP(b *testing.B) {
	db, _ := sirendb.Open("")
	r := New(db, Options{})
	addr, err := r.ListenUDP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := wire.DialUDP(addr)
	if err != nil {
		b.Fatal(err)
	}
	d := wire.Encode(mkMsg(1, wire.TypeObjects))
	b.SetBytes(int64(len(d)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for tr.Send(d) != nil {
		}
	}
	b.StopTimer()
	tr.Close()
	if err := r.Close(); err != nil {
		b.Fatal(err)
	}
}
