package receiver

import (
	"fmt"
	"net/http"
	"time"
)

// Health evaluates the receiver's ingest health for /healthz. The liveness
// half is implicit — answering at all proves the process exists, which is
// all membership.ProbeLive requires — so the verdict reported here is the
// stronger *ingest* health: with stallAfter > 0, Health fails when the
// datagram source has been open longer than stallAfter without a single
// datagram arriving in that window (socket open, zero reads — the
// wedged-reader/black-holed-traffic signature), including the
// never-received-anything case. stallAfter <= 0 disables stall detection.
// An idle-but-probeable receiver therefore serves 503, which balancers use
// to steer traffic while senders still (correctly) consider it alive.
func (r *Receiver) Health(stallAfter time.Duration) (ok bool, detail string) {
	if r.closing.Load() {
		return false, "shutting down"
	}
	open := r.sourceOpenNano.Load()
	if open == 0 {
		return true, "ok: no datagram source attached yet"
	}
	if stallAfter <= 0 {
		return true, "ok"
	}
	ref := open
	kind := "source open"
	if last := r.lastRecvNano.Load(); last > ref {
		ref = last
		kind = "last datagram"
	}
	age := time.Since(time.Unix(0, ref))
	if age > stallAfter {
		return false, fmt.Sprintf("stalled: %s %s ago, nothing received since", kind, age.Round(time.Millisecond))
	}
	return true, "ok"
}

// HealthHandler serves Health as /healthz on the stats mux: 200 when
// healthy, 503 when ingest looks stalled, always with the detail line as
// the body. Probes distinguish the two liveness levels: any response =
// process alive (membership.ProbeLive), 200 = actually ingesting.
func (r *Receiver) HealthHandler(stallAfter time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ok, detail := r.Health(stallAfter)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, detail)
	})
}
