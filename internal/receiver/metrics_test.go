package receiver

import (
	"regexp"
	"strings"
	"testing"

	"siren/internal/obs"
	"siren/internal/sirendb"
	"siren/internal/wire"
)

// TestReceiverMetrics drives the instrumented ingest path and checks every
// stage instrument saw the traffic: parse and queue-wait per datagram,
// insert per batch, counter bridges mirroring Stats, and the queue-depth
// gauge families present in the exposition.
func TestReceiverMetrics(t *testing.T) {
	reg := obs.NewRegistry("test")
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := New(db, Options{Writers: 2, Metrics: reg})
	const n = 50
	src := make(chan []byte, n+1)
	for i := 0; i < n; i++ {
		src <- wire.Encode(mkMsg(100+i, wire.TypeObjects))
	}
	src <- []byte("not a siren datagram")
	close(src)
	r.AttachChannel(src)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	parse := reg.Histogram("siren_ingest_parse_ns", "").Snapshot()
	if parse.Count != n+1 {
		t.Fatalf("parse histogram count = %d, want %d (every datagram, malformed included)", parse.Count, n+1)
	}
	wait := reg.Histogram("siren_ingest_queue_wait_ns", "").Snapshot()
	if wait.Count != n+1 {
		t.Fatalf("queue-wait histogram count = %d, want %d", wait.Count, n+1)
	}
	ins := reg.Histogram("siren_ingest_insert_ns", "").Snapshot()
	if ins.Count == 0 || ins.Count > n {
		t.Fatalf("insert histogram count = %d, want between 1 and %d batches", ins.Count, n)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`siren_ingest_queue_depth{shard="0"} 0`,
		`siren_ingest_queue_depth{shard="1"} 0`,
		`siren_ingest_received_total 51`,
		`siren_ingest_inserted_total 50`,
		`siren_ingest_malformed_total 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestStatsLine pins the periodic log-line shape the cluster e2e parsers
// match: Stats.String() plus queue depth and insert p99.
func TestStatsLine(t *testing.T) {
	lineRe := regexp.MustCompile(`^received=\d+ inserted=\d+ malformed=\d+ dropped=\d+ rejected=\d+ insert_errors=\d+ insert_lost=\d+ accepted_failover=\d+ queue=\d+ insert_p99_ns=\d+$`)

	// Uninstrumented: p99 must read 0, not panic.
	db, _ := sirendb.Open("")
	r := New(db, Options{Writers: 1})
	if line := r.StatsLine(); !lineRe.MatchString(line) {
		t.Fatalf("uninstrumented StatsLine %q does not match the pinned shape", line)
	}
	if !strings.HasSuffix(r.StatsLine(), "queue=0 insert_p99_ns=0") {
		t.Fatalf("uninstrumented StatsLine = %q, want zero telemetry fields", r.StatsLine())
	}

	// Instrumented: after traffic the p99 is a real sample.
	reg := obs.NewRegistry("test")
	db2, _ := sirendb.OpenOptions("", sirendb.Options{Shards: 1})
	r2 := New(db2, Options{Writers: 1, Metrics: reg})
	src := make(chan []byte, 8)
	for i := 0; i < 8; i++ {
		src <- wire.Encode(mkMsg(200+i, wire.TypeObjects))
	}
	close(src)
	r2.AttachChannel(src)
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	line := r2.StatsLine()
	if !lineRe.MatchString(line) {
		t.Fatalf("instrumented StatsLine %q does not match the pinned shape", line)
	}
	if strings.HasSuffix(line, "insert_p99_ns=0") {
		t.Fatalf("instrumented StatsLine %q has p99 = 0 after %d inserts", line, 8)
	}
}
