package receiver

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"siren/internal/membership"
	"siren/internal/sirendb"
	"siren/internal/wire"
)

func testRoster(t *testing.T, n int) *membership.Table {
	t.Helper()
	ms := make([]membership.Member, n)
	for i := range ms {
		ms[i] = membership.Member{ID: fmt.Sprintf("r%d", i), UDPAddr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}
	}
	tbl, err := membership.NewTable(ms)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestMembershipAdmission is TestPartitionAdmission's contract under the
// membership table: broadcast one mixed-job campaign to every member of a
// 3-member roster (all live) and check that each member admits exactly the
// keys it rendezvous-owns, rejects the rest, the union ingests every
// message exactly once, and — with nobody down — AcceptedFailover stays 0.
func TestMembershipAdmission(t *testing.T) {
	tbl := testRoster(t, 3)
	var msgs []wire.Message
	for j := 0; j < 24; j++ {
		for h := 0; h < 2; h++ {
			msgs = append(msgs, jobMsg(fmt.Sprintf("job-%d", j), fmt.Sprintf("nid%06d", h), 100+j))
		}
	}
	owner := func(m wire.Message) int {
		return tbl.RankedOwners([]byte(m.JobID), []byte(m.Host))[0]
	}
	wantOwned := make([]int, tbl.Len())
	for _, m := range msgs {
		wantOwned[owner(m)]++
	}
	for k := range wantOwned {
		if wantOwned[k] == 0 {
			t.Fatalf("test corpus leaves member %d without keys", k)
		}
	}

	total := 0
	for k := 0; k < tbl.Len(); k++ {
		db, _ := sirendb.Open("")
		view, err := membership.NewView(tbl, fmt.Sprintf("r%d", k))
		if err != nil {
			t.Fatal(err)
		}
		r := New(db, Options{View: view})
		src := wire.NewChanTransport(1 << 12)
		r.AttachChannel(src.C())
		for _, m := range msgs {
			if err := src.Send(wire.Encode(m)); err != nil {
				t.Fatal(err)
			}
		}
		src.Close()
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}

		if got := db.Count(); got != wantOwned[k] {
			t.Errorf("member %d stored %d messages, want %d", k, got, wantOwned[k])
		}
		st := r.Stats().Snapshot()
		if st.Rejected != int64(len(msgs)-wantOwned[k]) {
			t.Errorf("member %d Rejected = %d, want %d", k, st.Rejected, len(msgs)-wantOwned[k])
		}
		if st.AcceptedFailover != 0 {
			t.Errorf("member %d AcceptedFailover = %d with everyone live, want 0", k, st.AcceptedFailover)
		}
		for _, m := range db.All() {
			if owner(m) != k {
				t.Errorf("member %d ingested foreign message job=%s host=%s", k, m.JobID, m.Host)
			}
		}
		total += db.Count()
	}
	if total != len(msgs) {
		t.Errorf("union across members stored %d messages, want exactly %d", total, len(msgs))
	}
}

// TestMembershipFailoverAdmission marks one member down in a survivor's
// view and checks the reassignment contract: the survivor now admits its
// own keys PLUS the dead member's keys it is next-ranked for, counts
// exactly those as AcceptedFailover, and still rejects keys owned by the
// other survivor — the failed-over slice moves, everything else stays put.
func TestMembershipFailoverAdmission(t *testing.T) {
	tbl := testRoster(t, 3)
	const self, dead = 0, 1
	var msgs []wire.Message
	for j := 0; j < 48; j++ {
		msgs = append(msgs, jobMsg(fmt.Sprintf("job-%d", j), "nid000001", 100+j))
	}

	wantOwn, wantFailover := 0, 0
	for _, m := range msgs {
		ranked := tbl.RankedOwners([]byte(m.JobID), []byte(m.Host))
		switch {
		case ranked[0] == self:
			wantOwn++
		case ranked[0] == dead && ranked[1] == self:
			wantFailover++
		}
	}
	if wantFailover == 0 {
		t.Fatal("test corpus gives member 0 no failover keys; widen it")
	}

	db, _ := sirendb.Open("")
	view, err := membership.NewView(tbl, "r0")
	if err != nil {
		t.Fatal(err)
	}
	if _, changed := view.MarkDown("r1"); !changed {
		t.Fatal("MarkDown(r1) did not change state")
	}
	r := New(db, Options{View: view})
	src := wire.NewChanTransport(1 << 12)
	r.AttachChannel(src.C())
	for _, m := range msgs {
		if err := src.Send(wire.Encode(m)); err != nil {
			t.Fatal(err)
		}
	}
	src.Close()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	if got := db.Count(); got != wantOwn+wantFailover {
		t.Errorf("stored %d messages, want %d own + %d failover", got, wantOwn, wantFailover)
	}
	st := r.Stats().Snapshot()
	if st.AcceptedFailover != int64(wantFailover) {
		t.Errorf("AcceptedFailover = %d, want %d", st.AcceptedFailover, wantFailover)
	}
	if st.Rejected != int64(len(msgs)-wantOwn-wantFailover) {
		t.Errorf("Rejected = %d, want %d", st.Rejected, len(msgs)-wantOwn-wantFailover)
	}
}

// TestMembershipConfigValidation: the fail-loudly contract extends to the
// membership mode — mixing admission modes or passing an observer view
// panics at construction.
func TestMembershipConfigValidation(t *testing.T) {
	tbl := testRoster(t, 2)
	observer, err := membership.NewView(tbl, "")
	if err != nil {
		t.Fatal(err)
	}
	memberView, err := membership.NewView(tbl, "r0")
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]Options{
		"observer view":   {View: observer},
		"view+partitions": {View: memberView, Partitions: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New accepted invalid config %q", name)
				}
			}()
			db, _ := sirendb.Open("")
			New(db, bad)
		}()
	}
}

// TestHealthStallDetection drives the /healthz contract: healthy while
// datagrams flow, 503 once the source has been open past the stall window
// with nothing received, healthy again when traffic resumes.
func TestHealthStallDetection(t *testing.T) {
	db, _ := sirendb.Open("")
	r := New(db, Options{})

	// No source attached: healthy (nothing to stall).
	if ok, detail := r.Health(time.Millisecond); !ok {
		t.Fatalf("sourceless receiver unhealthy: %s", detail)
	}

	src := wire.NewChanTransport(64)
	r.AttachChannel(src.C())
	const stall = 80 * time.Millisecond

	if err := src.Send(wire.Encode(jobMsg("job-1", "nid000001", 1))); err != nil {
		t.Fatal(err)
	}
	// Wait for the forwarder goroutine to stamp the receive.
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Received.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ok, detail := r.Health(stall); !ok {
		t.Fatalf("receiver unhealthy right after a datagram: %s", detail)
	}
	if ok, _ := r.Health(0); !ok {
		t.Fatal("stallAfter=0 must disable stall detection")
	}

	time.Sleep(2 * stall)
	ok, detail := r.Health(stall)
	if ok {
		t.Fatal("receiver still healthy after the stall window with zero traffic")
	}
	if detail == "" {
		t.Fatal("stalled verdict carries no detail")
	}

	// Traffic resumes: healthy again.
	if err := src.Send(wire.Encode(jobMsg("job-2", "nid000001", 2))); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for r.Stats().Received.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ok, detail := r.Health(stall); !ok {
		t.Fatalf("receiver unhealthy after traffic resumed: %s", detail)
	}

	src.Close()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.Health(0); ok {
		t.Fatal("closed receiver reports healthy")
	}
}

// TestHealthHandler pins the HTTP shape: 200 + detail when healthy, 503
// when stalled — and that a 503 still satisfies ProbeLive (liveness is
// any-response).
func TestHealthHandler(t *testing.T) {
	db, _ := sirendb.Open("")
	r := New(db, Options{})
	src := wire.NewChanTransport(4)
	r.AttachChannel(src.C())
	defer func() { src.Close(); r.Close() }()

	const stall = 50 * time.Millisecond
	srv := httptest.NewServer(r.HealthHandler(stall))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh receiver /healthz = %d, want 200", resp.StatusCode)
	}

	time.Sleep(2 * stall)
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stalled receiver /healthz = %d, want 503", resp.StatusCode)
	}
	if err := membership.ProbeLive(srv.Listener.Addr().String(), time.Second); err != nil {
		t.Fatalf("ProbeLive against a 503 /healthz: %v (stalled must still be alive)", err)
	}
}
