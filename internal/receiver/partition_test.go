package receiver

import (
	"fmt"
	"testing"

	"siren/internal/sirendb"
	"siren/internal/wire"
)

// jobMsg builds a message for one (job, host) pair — the partition unit.
func jobMsg(job, host string, pid int) wire.Message {
	return wire.Message{
		Header: wire.Header{
			JobID: job, StepID: "0", PID: pid, Hash: "beef", Host: host,
			Time: 1733900000, Layer: wire.LayerSelf, Type: wire.TypeMetadata, Seq: 0, Total: 1,
		},
		Content: []byte("EXE=/bin/x"),
	}
}

// TestPartitionAdmission broadcasts one mixed-job campaign to every member
// of an N-receiver set and checks the partition contract: each receiver
// admits exactly the (job, host) pairs hashing to its slice (k = 0 and
// k = N-1 are both members, covering the edge partitions), counts the rest
// as Rejected, and the union across members ingests every message exactly
// once — zero double-ingest.
func TestPartitionAdmission(t *testing.T) {
	const parts = 3
	var msgs []wire.Message
	for j := 0; j < 24; j++ {
		for h := 0; h < 2; h++ {
			msgs = append(msgs, jobMsg(fmt.Sprintf("job-%d", j), fmt.Sprintf("nid%06d", h), 100+j))
		}
	}
	owner := func(m wire.Message) int {
		return wire.PartitionIndex([]byte(m.JobID), []byte(m.Host), parts)
	}
	wantOwned := make([]int, parts)
	for _, m := range msgs {
		wantOwned[owner(m)]++
	}
	for k := 0; k < parts; k++ {
		if wantOwned[k] == 0 {
			t.Fatalf("test corpus leaves partition %d/%d empty", k, parts)
		}
	}

	dbs := make([]*sirendb.DB, parts)
	total := 0
	for k := 0; k < parts; k++ {
		db, _ := sirendb.Open("")
		dbs[k] = db
		r := New(db, Options{Partition: k, Partitions: parts})
		src := wire.NewChanTransport(1 << 12)
		r.AttachChannel(src.C())
		for _, m := range msgs {
			if err := src.Send(wire.Encode(m)); err != nil {
				t.Fatal(err)
			}
		}
		src.Close()
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}

		if got := db.Count(); got != wantOwned[k] {
			t.Errorf("receiver %d/%d stored %d messages, want %d", k, parts, got, wantOwned[k])
		}
		st := r.Stats().Snapshot()
		if st.Rejected != int64(len(msgs)-wantOwned[k]) {
			t.Errorf("receiver %d/%d Rejected = %d, want %d", k, parts, st.Rejected, len(msgs)-wantOwned[k])
		}
		if st.Received != int64(len(msgs)) {
			t.Errorf("receiver %d/%d Received = %d, want %d", k, parts, st.Received, len(msgs))
		}
		// Every stored row must actually hash to this partition.
		for _, m := range db.All() {
			if owner(m) != k {
				t.Errorf("receiver %d/%d ingested foreign message job=%s host=%s", k, parts, m.JobID, m.Host)
			}
		}
		total += db.Count()
	}
	if total != len(msgs) {
		t.Errorf("union across partitions stored %d messages, want exactly %d (no loss, no double-ingest)", total, len(msgs))
	}
}

// TestPartitionSingleAdmitsAll pins the default: Partitions <= 1 disables
// admission entirely.
func TestPartitionSingleAdmitsAll(t *testing.T) {
	for _, parts := range []int{0, 1} {
		db, _ := sirendb.Open("")
		r := New(db, Options{Partitions: parts})
		src := wire.NewChanTransport(64)
		r.AttachChannel(src.C())
		for i := 0; i < 8; i++ {
			src.Send(wire.Encode(jobMsg(fmt.Sprintf("j%d", i), "nid000001", i)))
		}
		src.Close()
		r.Close()
		if db.Count() != 8 {
			t.Errorf("Partitions=%d: stored %d, want all 8", parts, db.Count())
		}
		if rej := r.Stats().Rejected.Load(); rej != 0 {
			t.Errorf("Partitions=%d: Rejected = %d, want 0", parts, rej)
		}
	}
}

// TestPartitionMalformedBypassesAdmission: datagrams whose header cannot be
// scanned are admitted (and counted Malformed by the parse stage) on every
// member, never Rejected — rejection is a statement that another receiver
// owns the datagram, which is unknowable without a header.
func TestPartitionMalformedBypassesAdmission(t *testing.T) {
	db, _ := sirendb.Open("")
	r := New(db, Options{Partition: 1, Partitions: 3})
	src := wire.NewChanTransport(64)
	r.AttachChannel(src.C())
	src.Send([]byte("garbage"))
	src.Send([]byte("SIREN1|also garbage"))
	src.Close()
	r.Close()
	if got := r.Stats().Malformed.Load(); got != 2 {
		t.Errorf("Malformed = %d, want 2", got)
	}
	if got := r.Stats().Rejected.Load(); got != 0 {
		t.Errorf("Rejected = %d, want 0 for unscannable headers", got)
	}
}

// TestPartitionAdmissionSpreadsAcrossShards pins the independence of the
// admission rule (high hash bits, wire.PartitionIndex) from writer/store
// shard routing (low hash bits): if both reduced the same bits, a
// partition-k receiver's admitted traffic would be confined to the shards
// whose index ≡ k (mod gcd(partitions, shards)) — here, with partitions ==
// shards == 4, to exactly one shard, re-serialising the whole sharded
// ingest path.
func TestPartitionAdmissionSpreadsAcrossShards(t *testing.T) {
	const parts, shards = 4, 4
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	r := New(db, Options{Partition: 1, Partitions: parts, Writers: shards})
	src := wire.NewChanTransport(1 << 12)
	r.AttachChannel(src.C())
	for j := 0; j < 400; j++ {
		m := jobMsg(fmt.Sprintf("job-%d", j), "nid000001", j)
		if err := src.Send(wire.Encode(m)); err != nil {
			t.Fatal(err)
		}
	}
	src.Close()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if db.Count() == 0 {
		t.Fatal("partition 1/4 admitted nothing out of 400 jobs")
	}
	sn := db.Snapshot()
	for i := 0; i < sn.Shards(); i++ {
		if sn.ShardCursor(i).Len() == 0 {
			t.Errorf("store shard %d received no rows: admitted traffic is not spreading across shards", i)
		}
	}
}

// TestPartitionConfigValidation: a partition index outside [0, N) must fail
// loudly at construction, not silently double-ingest.
func TestPartitionConfigValidation(t *testing.T) {
	for _, bad := range []Options{
		{Partition: 3, Partitions: 3},
		{Partition: -1, Partitions: 3},
		{Partition: 7, Partitions: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New accepted invalid partition config %d/%d", bad.Partition, bad.Partitions)
				}
			}()
			db, _ := sirendb.Open("")
			New(db, bad)
		}()
	}
}
