// Package receiver implements SIREN's message receiver: a UDP server (the
// paper's receiver is also written in Go) that reads datagrams, pushes them
// through a buffered channel, and batch-inserts them into the database.
//
// The pipeline is reader-goroutine → buffered channel → writer goroutine,
// so a slow disk never backs up into the socket: when the channel is full,
// datagrams are dropped exactly as the kernel would drop them — SIREN's
// loss-tolerant design makes that safe.
package receiver

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"siren/internal/sirendb"
	"siren/internal/wire"
)

// Stats counts receiver activity.
type Stats struct {
	Received  atomic.Int64 // datagrams read
	Inserted  atomic.Int64 // messages stored
	Malformed atomic.Int64 // datagrams that failed to parse (dropped)
	Dropped   atomic.Int64 // datagrams dropped due to a full channel
}

// Receiver drains a datagram source into a sirendb.DB.
type Receiver struct {
	db       *sirendb.DB
	ch       chan []byte
	stats    *Stats
	wg       sync.WaitGroup
	closing  atomic.Bool
	conn     net.PacketConn // nil when fed from a channel transport
	batchMax int
}

// Options configure a receiver.
type Options struct {
	// Depth is the buffered-channel capacity (default 65536) — the paper's
	// "buffered channel of the receiver server".
	Depth int
	// BatchMax bounds how many messages are folded into one DB insert
	// (default 256).
	BatchMax int
}

// New creates a receiver writing to db.
func New(db *sirendb.DB, opts Options) *Receiver {
	if opts.Depth <= 0 {
		opts.Depth = 65536
	}
	if opts.BatchMax <= 0 {
		opts.BatchMax = 256
	}
	return &Receiver{db: db, ch: make(chan []byte, opts.Depth), stats: &Stats{}, batchMax: opts.BatchMax}
}

// Stats exposes the counters.
func (r *Receiver) Stats() *Stats { return r.stats }

// DB returns the underlying store.
func (r *Receiver) DB() *sirendb.DB { return r.db }

// ListenUDP binds a UDP socket on addr ("127.0.0.1:0" for an ephemeral
// port), starts the reader and writer goroutines, and returns the bound
// address.
func (r *Receiver) ListenUDP(addr string) (string, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return "", fmt.Errorf("receiver: listen %s: %w", addr, err)
	}
	r.conn = conn
	r.wg.Add(2)
	go r.readLoop(conn)
	go r.writeLoop()
	return conn.LocalAddr().String(), nil
}

// AttachChannel consumes datagrams from a wire.ChanTransport instead of a
// socket — the deterministic in-process mode used by tests and simulations.
// Unlike the UDP path, the forwarder applies backpressure instead of
// dropping: the source channel already models the lossy socket buffer, so a
// second drop point would double-count loss.
func (r *Receiver) AttachChannel(src <-chan []byte) {
	r.wg.Add(2)
	go func() {
		defer r.wg.Done()
		for d := range src {
			r.stats.Received.Add(1)
			r.ch <- d
		}
		close(r.ch)
	}()
	go r.writeLoop()
}

func (r *Receiver) readLoop(conn net.PacketConn) {
	defer r.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			if r.closing.Load() || errors.Is(err, net.ErrClosed) {
				close(r.ch)
				return
			}
			// Transient socket error: keep serving (graceful failure).
			continue
		}
		r.stats.Received.Add(1)
		r.enqueue(append([]byte(nil), buf[:n]...))
	}
}

func (r *Receiver) enqueue(datagram []byte) {
	select {
	case r.ch <- datagram:
	default:
		r.stats.Dropped.Add(1)
	}
}

func (r *Receiver) writeLoop() {
	defer r.wg.Done()
	batch := make([]wire.Message, 0, r.batchMax)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := r.db.InsertBatch(batch); err == nil {
			r.stats.Inserted.Add(int64(len(batch)))
		}
		batch = batch[:0]
	}
	for d := range r.ch {
		m, err := wire.Parse(d)
		if err != nil {
			r.stats.Malformed.Add(1)
			continue
		}
		batch = append(batch, m)
		if len(batch) >= r.batchMax {
			flush()
			continue
		}
		// Opportunistically drain whatever is already queued, then flush —
		// batches form under load, latency stays low when idle.
		for len(batch) < r.batchMax {
			select {
			case d, ok := <-r.ch:
				if !ok {
					flush()
					return
				}
				m, err := wire.Parse(d)
				if err != nil {
					r.stats.Malformed.Add(1)
					continue
				}
				batch = append(batch, m)
				continue
			default:
			}
			break
		}
		flush()
	}
	flush()
}

// Close stops the receiver and waits for in-flight datagrams to be stored.
func (r *Receiver) Close() error {
	r.closing.Store(true)
	var err error
	if r.conn != nil {
		err = r.conn.Close()
	}
	r.wg.Wait()
	return err
}
