// Package receiver implements SIREN's message receiver: a UDP server (the
// paper's receiver is also written in Go) that reads datagrams and
// batch-inserts them into the database without becoming the bottleneck.
//
// The pipeline generalises the paper's reader-goroutine → buffered-channel →
// writer-goroutine design into a sharded, multi-worker subsystem:
//
//	N reader goroutines ── hash(JobID, Host) ──▶ M shard channels ──▶ M writers
//	                                                                    │ 1:1
//	                                                              M store shards
//
// Readers drain the socket (tuned SO_RCVBUF) into sync.Pool-backed datagram
// buffers, so the hot path performs no per-packet heap allocation. Each
// datagram is hash-partitioned by its (JobID, Host) header fields onto one of
// M writer shards: messages of one job on one host always land on the same
// shard — so sharding itself never introduces cross-shard interleaving for a
// job — while independent jobs insert into the database concurrently. When
// the store is itself sharded by the same hash with a matching count
// (ShardedStore), each writer inserts straight into its own store shard, so
// the parallelism of the channel pipeline carries through the database
// instead of re-serialising on a store-wide mutex. (UDP
// delivery and concurrent readers may still reorder datagrams before the
// dispatch point, exactly as the network may; chunk reassembly and
// consolidation key on SEQ/TIME and never depended on arrival order.)
//
// The same hash's high bits (wire.PartitionIndex — kept independent of the
// low-bits shard modulo so admitted traffic still spreads over all shards)
// also partition whole campaigns across receiver *processes*
// (Options.Partition/Partitions): receiver k of N admits only datagrams whose
// partition index is k and counts the rest as Rejected, so N receivers on N
// ports share one campaign with no double-ingest even when senders broadcast
// to all of them. Analysis merges the N databases back together
// (sirendb.OpenSet).
//
// A slow disk never backs up into the socket: when a shard channel is full,
// datagrams are dropped exactly as the kernel would drop them — SIREN's
// loss-tolerant design makes that safe. Every loss and failure mode is
// counted in Stats (kernel-style channel drops, malformed datagrams,
// rejected partitions, failed database inserts) instead of disappearing
// silently.
package receiver

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"siren/internal/membership"
	"siren/internal/obs"
	"siren/internal/sirendb"
	"siren/internal/wire"
)

// Stats counts receiver activity.
type Stats struct {
	Received     atomic.Int64 // datagrams read from the transport
	Inserted     atomic.Int64 // messages stored in the database
	Malformed    atomic.Int64 // datagrams that failed to parse (dropped)
	Dropped      atomic.Int64 // datagrams dropped due to a full shard channel
	Rejected     atomic.Int64 // datagrams outside this receiver's partition/ownership (dropped by admission)
	InsertErrors atomic.Int64 // failed InsertBatch calls
	InsertLost   atomic.Int64 // messages in failed InsertBatch calls (upper bound: a partially-applied batch counts whole)
	// AcceptedFailover counts admitted datagrams whose key this receiver
	// owns only because the key's rank-0 member is marked down in the
	// membership view — the observable trace of a failover reassignment
	// (membership-table admission only; always 0 under static partitioning).
	AcceptedFailover atomic.Int64
}

// StatsSnapshot is a plain-value copy of the counters at one instant — the
// shape cmd/siren-receiver exports over expvar (the field names become the
// JSON keys of the "siren_receiver" var).
type StatsSnapshot struct {
	Received         int64
	Inserted         int64
	Malformed        int64
	Dropped          int64
	Rejected         int64
	InsertErrors     int64
	InsertLost       int64
	AcceptedFailover int64
}

// Snapshot copies the counters. Each counter is loaded atomically; the set
// is not a consistent cut across counters (a datagram may be counted
// received but not yet inserted), which telemetry tolerates.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Received:         s.Received.Load(),
		Inserted:         s.Inserted.Load(),
		Malformed:        s.Malformed.Load(),
		Dropped:          s.Dropped.Load(),
		Rejected:         s.Rejected.Load(),
		InsertErrors:     s.InsertErrors.Load(),
		InsertLost:       s.InsertLost.Load(),
		AcceptedFailover: s.AcceptedFailover.Load(),
	}
}

// String renders a one-line snapshot, the shape cmd/siren-receiver logs
// periodically.
func (s *Stats) String() string {
	v := s.Snapshot()
	return fmt.Sprintf("received=%d inserted=%d malformed=%d dropped=%d rejected=%d insert_errors=%d insert_lost=%d accepted_failover=%d",
		v.Received, v.Inserted, v.Malformed, v.Dropped, v.Rejected, v.InsertErrors, v.InsertLost, v.AcceptedFailover)
}

// Store is the destination a receiver drains into. *sirendb.DB implements
// it; tests substitute failure-injecting fakes.
type Store interface {
	InsertBatch(ms []wire.Message) error
}

// ShardedStore is the direct-routing fast path: a store partitioned by the
// same wire.PartitionHash the receiver's dispatcher uses. When the store's
// shard count equals the receiver's writer count, every message writer i
// handles hashes to store shard i, so writers call InsertShard(i, batch)
// and skip the store's per-message re-partitioning entirely — each writer
// owns its store shard and inserts contend on nothing.
type ShardedStore interface {
	Store
	StoreShards() int
	InsertShard(shard int, ms []wire.Message) error
}

// pkt is one in-flight datagram. When buf is non-nil the data slice aliases
// a pooled buffer that must be returned to bufPool after parsing. enq is
// the dispatch timestamp (UnixNano) stamped only when the receiver is
// instrumented; the writer turns it into the queue-wait histogram sample.
type pkt struct {
	data []byte
	buf  *[]byte
	enq  int64
}

// bufPool recycles datagram buffers between readers and writers, eliminating
// the per-packet heap allocation (and its GC pressure) of the naive
// append([]byte(nil), ...) copy. Buffers start at MaxDatagram-friendly size
// and grow in place for jumbo datagrams.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 2048)
	return &b
}}

// Receiver drains a datagram source into a Store.
type Receiver struct {
	db         Store
	direct     ShardedStore // non-nil when writer shards map 1:1 onto store shards
	shards     []chan pkt
	stats      *Stats
	batchMax   int
	readBuf    int
	readers    int
	partition  int              // this receiver's slice of the campaign partition space
	partitions int              // size of the partition space (<= 1: accept everything)
	view       *membership.View // membership-table admission (nil: static partition admission)
	selfIdx    int              // this receiver's index in view's roster
	mx         rcvMetrics       // obs instruments (zero value = uninstrumented)

	// Health state (see health.go): when the datagram source opened and when
	// the last datagram arrived, as UnixNano (0 = never).
	sourceOpenNano atomic.Int64
	lastRecvNano   atomic.Int64

	readerWG  sync.WaitGroup
	writerWG  sync.WaitGroup
	writersOn sync.Once
	closeOnce sync.Once
	closeErr  error
	closing   atomic.Bool
	conn      net.PacketConn // nil when fed from a channel transport
}

// Options configure a receiver.
type Options struct {
	// Depth is the total buffered capacity across all shard channels
	// (default 65536) — the paper's "buffered channel of the receiver
	// server", split evenly among writers.
	Depth int
	// BatchMax bounds how many messages are folded into one DB insert
	// (default 256).
	BatchMax int
	// Readers is the number of goroutines draining the UDP socket
	// (default min(GOMAXPROCS, 4); channel mode always uses one forwarder).
	Readers int
	// Writers is the number of writer shards inserting into the database
	// (default min(GOMAXPROCS, 4): sharding buys parallel parse+insert, so
	// extra shards on a single-core host would only add scheduling
	// overhead). Datagrams are partitioned by hash(JobID, Host), so
	// sharding never splits one job's messages across writers: within one
	// (JobID, Host), dispatch order is storage order. Global insertion
	// order across jobs is scheduler-dependent once Writers > 1, and with
	// multiple UDP Readers the socket→dispatch handoff itself can reorder,
	// just like UDP transit — consolidation never depends on either.
	Writers int
	// ReadBuffer is the SO_RCVBUF size requested for the UDP socket in
	// bytes (default 4 MiB; the kernel caps it at net.core.rmem_max). A
	// large socket buffer absorbs sender bursts while writers flush.
	ReadBuffer int
	// Partition/Partitions select this receiver's slice of a horizontally
	// partitioned deployment: with Partitions = N > 1, only datagrams whose
	// wire.PartitionIndex(JOBID, HOST, N) equals k (0 <= k < N) are
	// admitted; the rest are counted in Stats.Rejected and discarded before
	// parsing. N receiver processes with partitions 0/N … N-1/N therefore
	// share one campaign with no double-ingest even when every sender
	// broadcasts to all of them. Partitions <= 1 (the default) admits
	// everything — the paper's single-receiver deployment. Datagrams whose
	// header cannot be scanned bypass admission and are counted Malformed by
	// the parse stage, identically on every receiver.
	Partition  int
	Partitions int
	// View switches admission from the static Partition/Partitions table to
	// the membership table (DESIGN.md §11): a datagram is admitted when this
	// receiver is the highest-rendezvous-scoring member of the view's live
	// set for the datagram's (JOBID, HOST) — so a dead member's slice falls
	// to the surviving next-highest scorers instead of being lost until
	// restart. The view must be a member view (its self ID names this
	// receiver). Admissions whose rank-0 owner is marked down are counted in
	// Stats.AcceptedFailover. Mutually exclusive with Partitions > 1.
	View *membership.View
	// Metrics, when non-nil, registers the receiver's instruments there:
	// per-stage latency histograms (parse, shard-queue wait, insert batch),
	// per-shard queue-depth gauges, and counter bridges onto Stats (see
	// internal/obs). Nil leaves the per-datagram paths uninstrumented.
	Metrics *obs.Registry
}

func (o *Options) defaults() {
	if o.Depth <= 0 {
		o.Depth = 65536
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 256
	}
	if o.Readers <= 0 {
		o.Readers = runtime.GOMAXPROCS(0)
		if o.Readers > 4 {
			o.Readers = 4
		}
	}
	if o.Writers <= 0 {
		o.Writers = runtime.GOMAXPROCS(0)
		if o.Writers > 4 {
			o.Writers = 4
		}
	}
	if o.Depth < o.Writers {
		o.Depth = o.Writers
	}
}

// New creates a receiver writing to db. New panics when Options.Partition
// is outside [0, Partitions): a receiver silently admitting everything (or
// nothing) under a mistyped partition config would double-ingest or drop a
// whole campaign slice, so misconfiguration fails loudly at startup.
func New(db Store, opts Options) *Receiver {
	opts.defaults()
	if opts.Partitions > 1 && (opts.Partition < 0 || opts.Partition >= opts.Partitions) {
		panic(fmt.Sprintf("receiver: partition %d out of range [0,%d)", opts.Partition, opts.Partitions))
	}
	if opts.View != nil {
		// The same fail-loudly contract as a bad partition: a receiver
		// admitting under the wrong rule double-ingests or drops a slice.
		if opts.Partitions > 1 {
			panic("receiver: View and Partitions>1 are mutually exclusive admission modes")
		}
		if opts.View.SelfIndex() < 0 {
			panic("receiver: View must be a member view (NewView with this receiver's ID), not an observer view")
		}
	}
	r := &Receiver{
		db:         db,
		stats:      &Stats{},
		batchMax:   opts.BatchMax,
		readBuf:    opts.ReadBuffer,
		readers:    opts.Readers,
		partition:  opts.Partition,
		partitions: opts.Partitions,
		view:       opts.View,
		shards:     make([]chan pkt, opts.Writers),
	}
	if r.view != nil {
		r.selfIdx = r.view.SelfIndex()
	}
	if r.readBuf <= 0 {
		r.readBuf = 4 << 20
	}
	per := opts.Depth / opts.Writers
	for i := range r.shards {
		r.shards[i] = make(chan pkt, per)
	}
	if ss, ok := db.(ShardedStore); ok && ss.StoreShards() == len(r.shards) {
		r.direct = ss
	}
	r.registerMetrics(opts.Metrics)
	return r
}

// ResolvedWriters reports the writer-shard count New would use for these
// Options — exported so callers can size a sharded store 1:1 with the
// receiver (see sirendb.Options.Shards).
func (o Options) ResolvedWriters() int {
	o.defaults()
	return o.Writers
}

// Stats exposes the counters.
func (r *Receiver) Stats() *Stats { return r.stats }

// DB returns the underlying store.
func (r *Receiver) DB() Store { return r.db }

// startWriters launches the writer shards exactly once.
func (r *Receiver) startWriters() {
	r.writersOn.Do(func() {
		for i, sh := range r.shards {
			r.writerWG.Add(1)
			go r.writeLoop(i, sh)
		}
	})
}

// ListenUDP binds a UDP socket on addr ("127.0.0.1:0" for an ephemeral
// port), requests the tuned SO_RCVBUF, starts the reader and writer
// goroutines, and returns the bound address.
func (r *Receiver) ListenUDP(addr string) (string, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return "", fmt.Errorf("receiver: listen %s: %w", addr, err)
	}
	if uc, ok := conn.(*net.UDPConn); ok {
		// Best-effort: the kernel silently caps at net.core.rmem_max.
		_ = uc.SetReadBuffer(r.readBuf)
	}
	r.conn = conn
	r.sourceOpenNano.Store(time.Now().UnixNano())
	for i := 0; i < r.readers; i++ {
		r.readerWG.Add(1)
		go r.readLoop(conn)
	}
	r.startWriters()
	return conn.LocalAddr().String(), nil
}

// AttachChannel consumes datagrams from a channel source (wire.ChanTransport)
// instead of a socket — the deterministic in-process mode used by tests and
// simulations. Unlike the UDP path, the forwarder applies backpressure
// instead of dropping: the source channel already models the lossy socket
// buffer, so a second drop point would double-count loss.
func (r *Receiver) AttachChannel(src <-chan []byte) {
	r.sourceOpenNano.Store(time.Now().UnixNano())
	r.readerWG.Add(1)
	go func() {
		defer r.readerWG.Done()
		for d := range src {
			r.stats.Received.Add(1)
			r.lastRecvNano.Store(time.Now().UnixNano())
			r.dispatch(pkt{data: d}, true)
		}
	}()
	r.startWriters()
}

func (r *Receiver) readLoop(conn net.PacketConn) {
	defer r.readerWG.Done()
	scratch := make([]byte, 64<<10) // one max-size UDP datagram
	for {
		n, _, err := conn.ReadFrom(scratch)
		if err != nil {
			if r.closing.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient socket error: keep serving (graceful failure).
			continue
		}
		r.ingest(scratch[:n], false)
	}
}

// ingest copies one received datagram into a pooled buffer, counts it, and
// dispatches it to its shard — the shared post-ReadFrom path of the reader
// and shutdown-drain loops.
func (r *Receiver) ingest(d []byte, block bool) {
	r.stats.Received.Add(1)
	r.lastRecvNano.Store(time.Now().UnixNano())
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < len(d) {
		*bp = make([]byte, len(d))
	}
	data := (*bp)[:len(d)]
	copy(data, d)
	r.dispatch(pkt{data: data, buf: bp}, block)
}

// dispatch applies partition admission and routes a datagram to its writer
// shard — both decisions come from one wire.PartitionFields scan of the
// header, but from different bits of the hash (wire.PartitionIndex vs the
// low-bits shard modulo), so a receiver's admitted slice still spreads over
// all its writer and store shards. A datagram outside this receiver's
// partition is counted Rejected and discarded (another receiver of the set
// owns it); one whose header cannot be scanned bypasses admission and lands
// on shard 0, where Parse counts it as malformed — every receiver of a
// partitioned set agrees on that, so a malformed datagram is never
// double-ingested either. Unpartitioned single-shard receivers skip the
// header scan entirely (its result would be unused). Blocking mode (channel
// transport) applies backpressure; non-blocking mode (UDP)
// drops-and-counts like the kernel would.
func (r *Receiver) dispatch(p pkt, block bool) {
	idx := 0
	if r.view != nil || r.partitions > 1 || len(r.shards) > 1 {
		if job, host, ok := wire.PartitionFields(p.data); ok {
			switch {
			case r.view != nil:
				// Membership admission: accept exactly the keys this member
				// owns under the current live view; when ownership arrived by
				// failover (the key's rank-0 member is down), count it.
				rank0, owner := r.view.Route(job, host)
				if owner != r.selfIdx {
					r.stats.Rejected.Add(1)
					release(p)
					return
				}
				if rank0 != r.selfIdx {
					r.stats.AcceptedFailover.Add(1)
				}
			case r.partitions > 1:
				if wire.PartitionIndex(job, host, r.partitions) != r.partition {
					r.stats.Rejected.Add(1)
					release(p)
					return
				}
			}
			if len(r.shards) > 1 {
				idx = int(wire.PartitionHash(job, host) % uint64(len(r.shards)))
			}
		}
	}
	if r.mx.instrumented() {
		p.enq = time.Now().UnixNano()
	}
	sh := r.shards[idx]
	if block {
		sh <- p
		return
	}
	select {
	case sh <- p:
	default:
		r.stats.Dropped.Add(1)
		release(p)
	}
}

// release returns a pooled datagram buffer for reuse.
func release(p pkt) {
	if p.buf != nil {
		bufPool.Put(p.buf)
	}
}

func (r *Receiver) writeLoop(idx int, ch chan pkt) {
	defer r.writerWG.Done()
	batch := make([]wire.Message, 0, r.batchMax)
	insert := func() error {
		// Direct routing: writer idx's messages all hash to store shard idx
		// (same partition hash, same shard count), so the batch lands in its
		// store shard without re-partitioning or cross-shard locking.
		if r.direct != nil {
			return r.direct.InsertShard(idx, batch)
		}
		return r.db.InsertBatch(batch)
	}
	flush := func() {
		if len(batch) == 0 {
			return
		}
		var insStart time.Time
		if r.mx.insertNS != nil {
			insStart = time.Now()
		}
		if err := insert(); err != nil {
			// The batch is lost, but never silently: both the failed call
			// and the message count surface in Stats.
			r.stats.InsertErrors.Add(1)
			r.stats.InsertLost.Add(int64(len(batch)))
		} else {
			r.stats.Inserted.Add(int64(len(batch)))
		}
		r.mx.insertNS.Since(insStart)
		batch = batch[:0]
	}
	add := func(p pkt) {
		var parseStart time.Time
		if r.mx.instrumented() {
			// One clock read ends the queue-wait stage and starts parse.
			parseStart = time.Now()
			if p.enq != 0 {
				r.mx.queueWaitNS.Record(parseStart.UnixNano() - p.enq)
			}
		}
		m, err := wire.Parse(p.data)
		r.mx.parseNS.Since(parseStart)
		release(p) // Parse copied what it needs; recycle immediately
		if err != nil {
			r.stats.Malformed.Add(1)
			return
		}
		batch = append(batch, m)
	}
	for p := range ch {
		add(p)
		// Opportunistically drain whatever is already queued, then flush —
		// batches form under load, latency stays low when idle.
	drain:
		for len(batch) < r.batchMax {
			select {
			case p, ok := <-ch:
				if !ok {
					flush()
					return
				}
				add(p)
			default:
				break drain
			}
		}
		flush()
	}
	flush()
}

// Close stops the receiver and waits for in-flight datagrams to be stored:
// datagrams already accepted by the kernel socket buffer are drained before
// the socket closes, so a tuned SO_RCVBUF never turns into silent loss at
// shutdown. Close is idempotent; in channel mode the source must be closed
// first.
func (r *Receiver) Close() error {
	r.closeOnce.Do(func() {
		r.closing.Store(true)
		if r.conn != nil {
			// Wake readers blocked in ReadFrom; they observe closing and
			// exit, leaving the queued datagrams for the drain below.
			_ = r.conn.SetReadDeadline(time.Now())
			r.readerWG.Wait()
			r.drainSocket()
			r.closeErr = r.conn.Close()
		} else {
			r.readerWG.Wait()
		}
		r.startWriters() // a never-started receiver still closes cleanly
		for _, sh := range r.shards {
			close(sh)
		}
		r.writerWG.Wait()
	})
	return r.closeErr
}

// drainSocket empties the kernel socket buffer into the shards: it reads
// until the socket stays idle for drainIdle (or drainCap total, should a
// sender still be transmitting), dispatching with backpressure so nothing
// read here is dropped.
func (r *Receiver) drainSocket() {
	const (
		drainIdle = 50 * time.Millisecond
		drainCap  = 2 * time.Second
	)
	deadline := time.Now().Add(drainCap)
	scratch := make([]byte, 64<<10)
	for time.Now().Before(deadline) {
		if err := r.conn.SetReadDeadline(time.Now().Add(drainIdle)); err != nil {
			return
		}
		n, _, err := r.conn.ReadFrom(scratch)
		if err != nil {
			return // idle (deadline exceeded) or socket gone: drained
		}
		r.ingest(scratch[:n], true)
	}
}

var _ ShardedStore = (*sirendb.DB)(nil)
