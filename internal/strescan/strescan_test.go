package strescan

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestExtractBasics(t *testing.T) {
	data := []byte("\x00\x01hello\x02world!\x7f\xffhpc\x00libm.so.6\x00")
	got := Extract(data)
	want := []string{"hello", "world!", "libm.so.6"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Extract = %q, want %q", got, want)
	}
}

func TestExtractMinLength(t *testing.T) {
	data := []byte("ab\x00abc\x00abcd\x00abcde\x00")
	got := ExtractWith(data, Options{MinLength: 4})
	want := []string{"abcd", "abcde"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("minlen 4: %q, want %q", got, want)
	}
	got = ExtractWith(data, Options{MinLength: 3})
	want = []string{"abc", "abcd", "abcde"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("minlen 3: %q, want %q", got, want)
	}
}

func TestExtractTrailingRun(t *testing.T) {
	got := Extract([]byte("\x00tail-string"))
	if !reflect.DeepEqual(got, []string{"tail-string"}) {
		t.Errorf("trailing run missed: %q", got)
	}
}

func TestExtractEmptyAndAllBinary(t *testing.T) {
	if got := Extract(nil); got != nil {
		t.Errorf("Extract(nil) = %q, want nil", got)
	}
	if got := Extract([]byte{0, 1, 2, 3, 255}); got != nil {
		t.Errorf("Extract(binary) = %q, want nil", got)
	}
}

func TestTabHandling(t *testing.T) {
	data := []byte("col1\tcol2\x00")
	with := ExtractWith(data, Options{IncludeTab: true})
	if !reflect.DeepEqual(with, []string{"col1\tcol2"}) {
		t.Errorf("with tab: %q", with)
	}
	without := ExtractWith(data, Options{IncludeTab: false})
	if !reflect.DeepEqual(without, []string{"col1", "col2"}) {
		t.Errorf("without tab: %q", without)
	}
}

func TestMaxStrings(t *testing.T) {
	data := []byte("aaaa\x00bbbb\x00cccc\x00dddd\x00")
	got := ExtractWith(data, Options{MaxStrings: 2})
	if len(got) != 2 {
		t.Errorf("MaxStrings ignored: %q", got)
	}
}

func TestDump(t *testing.T) {
	data := []byte("one\x00two!\x00\x01\x02three")
	want := "two!\nthree\n" // "one" is only 3 chars
	if got := string(Dump(data)); got != want {
		t.Errorf("Dump = %q, want %q", got, want)
	}
}

func TestScanReader(t *testing.T) {
	got, err := Scan(bytes.NewReader([]byte("xyzzy\x00plugh")))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"xyzzy", "plugh"}) {
		t.Errorf("Scan = %q", got)
	}
}

func TestCountAgreesWithExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint16) bool {
		data := make([]byte, int(n)%4096)
		rng.Read(data)
		opts := DefaultOptions()
		return Count(data, opts) == len(ExtractWith(data, opts))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractAllRunsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	opts := DefaultOptions()
	for i := 0; i < 100; i++ {
		data := make([]byte, 2048)
		rng.Read(data)
		for _, s := range ExtractWith(data, opts) {
			if len(s) < opts.minLen() {
				t.Fatalf("string %q shorter than min length", s)
			}
			for j := 0; j < len(s); j++ {
				if !opts.printable(s[j]) {
					t.Fatalf("string %q contains unprintable byte %#x", s, s[j])
				}
			}
		}
	}
}

func BenchmarkExtract1M(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 1<<20)
	rng.Read(data)
	// Seed some realistic strings.
	for i := 0; i < 1000; i++ {
		copy(data[rng.Intn(len(data)-32):], "GCC: (SUSE Linux) 13.3.0\x00")
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(data)
	}
}
