// Package strescan extracts printable character sequences from binary data,
// equivalent to the strings(1) utility that SIREN mirrors when computing the
// STRINGS_H fuzzy hash of an executable.
//
// A "printable string" is a maximal run of at least MinLength printable
// bytes. By default the printable set matches strings(1): ASCII 0x20–0x7E
// plus horizontal tab.
package strescan

import (
	"bytes"
	"io"
)

// DefaultMinLength is the minimum run length reported by default, matching
// the strings(1) default of 4.
const DefaultMinLength = 4

// Options configure a scan.
type Options struct {
	// MinLength is the minimum printable-run length to report.
	// Zero means DefaultMinLength.
	MinLength int
	// IncludeTab treats horizontal tab (0x09) as printable, as strings(1)
	// does. Default true via DefaultOptions.
	IncludeTab bool
	// MaxStrings bounds the number of strings returned; zero means no bound.
	MaxStrings int
}

// DefaultOptions returns the strings(1)-compatible configuration.
func DefaultOptions() Options {
	return Options{MinLength: DefaultMinLength, IncludeTab: true}
}

func (o Options) minLen() int {
	if o.MinLength <= 0 {
		return DefaultMinLength
	}
	return o.MinLength
}

func (o Options) printable(b byte) bool {
	if b >= 0x20 && b <= 0x7E {
		return true
	}
	return o.IncludeTab && b == '\t'
}

// Extract returns every printable string in data using DefaultOptions.
func Extract(data []byte) []string {
	return ExtractWith(data, DefaultOptions())
}

// ExtractWith returns every printable string in data subject to opts.
func ExtractWith(data []byte, opts Options) []string {
	minLen := opts.minLen()
	var out []string
	start := -1
	for i, b := range data {
		if opts.printable(b) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 && i-start >= minLen {
			out = append(out, string(data[start:i]))
			if opts.MaxStrings > 0 && len(out) >= opts.MaxStrings {
				return out
			}
		}
		start = -1
	}
	if start >= 0 && len(data)-start >= minLen {
		out = append(out, string(data[start:]))
	}
	return out
}

// Dump renders all printable strings one per line, the form SIREN feeds to
// the fuzzy hasher for STRINGS_H. Feeding the joined dump (rather than
// hashing strings individually) preserves ordering information, so
// reordered or inserted strings still yield similar digests.
func Dump(data []byte) []byte {
	return DumpWith(data, DefaultOptions())
}

// DumpWith is Dump with explicit options.
func DumpWith(data []byte, opts Options) []byte {
	ss := ExtractWith(data, opts)
	var buf bytes.Buffer
	for _, s := range ss {
		buf.WriteString(s)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// Scan reads r to EOF and extracts printable strings with DefaultOptions.
func Scan(r io.Reader) ([]string, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Extract(data), nil
}

// Count returns how many printable strings data contains without
// materialising them.
func Count(data []byte, opts Options) int {
	minLen := opts.minLen()
	n := 0
	run := 0
	for _, b := range data {
		if opts.printable(b) {
			run++
			continue
		}
		if run >= minLen {
			n++
		}
		run = 0
	}
	if run >= minLen {
		n++
	}
	return n
}
