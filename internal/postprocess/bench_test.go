// Consolidation benchmarks (EXPERIMENTS.md §4/§5):
//
//	go test -bench=BenchmarkConsolidate -benchmem ./internal/postprocess
//
// BenchmarkConsolidate compares the streaming, shard-parallel path against
// the load-everything baseline (db.All() → ConsolidateMessages) on the same
// store. The headline is -benchmem: the baseline's footprint grows with the
// total message count (the full []wire.Message copy plus one global
// reassembly and group map), the streaming path's with the in-flight jobs.
package postprocess

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"siren/internal/sirendb"
	"siren/internal/wire"
)

func BenchmarkConsolidate(b *testing.B) {
	// ~64 jobs × 24 processes × (METADATA + chunked OBJECTS + FILE_H)
	// ≈ 10.7k messages — campaign-shaped, multi-shard, shard-spanning jobs.
	db := synthWorld(b, 4, 64, 24)
	defer db.Close()
	want := 64 * 24

	for _, workers := range []int{0, 1} {
		name := "streaming"
		if workers > 0 {
			name = fmt.Sprintf("streaming-workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				recs, _ := ConsolidateSnapshot(db.Snapshot(), StreamOptions{Workers: workers})
				if len(recs) != want {
					b.Fatalf("records = %d, want %d", len(recs), want)
				}
			}
		})
	}
	b.Run("load-everything-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			recs, _ := ConsolidateMessages(db.All())
			if len(recs) != want {
				b.Fatalf("records = %d, want %d", len(recs), want)
			}
		}
	})
}

// samplePeak spawns a 200 µs-period HeapAlloc sampler recording the
// high-water mark into *peak until stop closes — the shared probe of the
// peak-memory benchmarks.
func samplePeak(stop chan struct{}, peak *uint64) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > *peak {
				*peak = ms.HeapAlloc
			}
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()
	return &wg
}

// BenchmarkConsolidatePeakMemory pins the acceptance criterion directly:
// peak live heap during consolidation. The streaming consumer aggregates
// per job without retaining records (the Execution-Fingerprint-Dictionary
// shape: repeated whole-campaign group-bys); the baseline must materialise
// every message and record by construction. Reported as "peak-live-MB", the
// high-water mark of HeapAlloc sampled during the pass over a floor levelled
// by runtime.GC.
func BenchmarkConsolidatePeakMemory(b *testing.B) {
	// 256 jobs × 32 processes ≈ 57k messages: big enough that the sampler
	// (200 µs period) catches the footprint shape.
	db := synthWorld(b, 4, 256, 32)
	defer db.Close()

	// Keep HeapAlloc tracking *live* memory: at the default GOGC=100 the
	// heap balloons to 2× live before a collection, burying the retained-set
	// difference under transient garbage.
	defer debug.SetGCPercent(debug.SetGCPercent(10))

	run := func(b *testing.B, pass func() int) {
		var peak uint64
		for i := 0; i < b.N; i++ {
			runtime.GC()
			stop := make(chan struct{})
			wg := samplePeak(stop, &peak)
			if jobs := pass(); jobs != 256 {
				b.Fatalf("consolidated %d jobs", jobs)
			}
			close(stop)
			wg.Wait()
		}
		b.ReportMetric(float64(peak)/(1<<20), "peak-live-MB")
	}

	b.Run("streaming-aggregate", func(b *testing.B) {
		run(b, func() int {
			jobs := 0
			ConsolidateStream(db.Snapshot(), StreamOptions{}, func(j JobRecords) bool {
				jobs++ // aggregate-and-drop: nothing retained per job
				return true
			})
			return jobs
		})
	})
	b.Run("load-everything-baseline", func(b *testing.B) {
		run(b, func() int {
			_, stats := ConsolidateMessages(db.All())
			return stats.Jobs
		})
	})
}

// BenchmarkMergedConsolidate measures the multi-receiver merge step: the
// same campaign consolidated from one store versus from M member stores
// (the databases of M -partition k/M receivers) through a merged snapshot.
// The merged path adds only the per-member snapshot captures and the
// (member × shard)-wide cursor table — time and allocations should track
// the single-store streaming path, not the member count times it.
func BenchmarkMergedConsolidate(b *testing.B) {
	single := synthWorld(b, 4, 64, 24)
	defer single.Close()
	want := 64 * 24

	buildMembers := func(members, shards int) []*sirendb.DB {
		dbs := make([]*sirendb.DB, members)
		groups := make([][]wire.Message, members)
		for _, m := range single.All() {
			k := wire.PartitionIndex([]byte(m.JobID), []byte(m.Host), members)
			groups[k] = append(groups[k], m)
		}
		for k := range dbs {
			db, err := sirendb.OpenOptions("", sirendb.Options{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			if err := db.InsertBatch(groups[k]); err != nil {
				b.Fatal(err)
			}
			dbs[k] = db
		}
		return dbs
	}

	b.Run("single-store", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			recs, _ := ConsolidateSnapshot(single.Snapshot(), StreamOptions{})
			if len(recs) != want {
				b.Fatalf("records = %d, want %d", len(recs), want)
			}
		}
	})
	for _, members := range []int{2, 4} {
		dbs := buildMembers(members, 2)
		b.Run(fmt.Sprintf("merged-members=%d", members), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				snaps := make([]*sirendb.Snapshot, len(dbs))
				for k, db := range dbs {
					snaps[k] = db.Snapshot()
				}
				recs, _ := ConsolidateSnapshot(sirendb.MergeSnapshots(snaps), StreamOptions{})
				if len(recs) != want {
					b.Fatalf("records = %d, want %d", len(recs), want)
				}
			}
		})
		for _, db := range dbs {
			db.Close()
		}
	}
}

// BenchmarkMergedConsolidatePeakMemory pins the merge step's memory bound:
// consolidating M member stores through the merged snapshot must stay
// O(shards × members) — cursors plus in-flight jobs — while merging by
// materialising the union (the load-everything shape a naive multi-DB
// analysis would use) pays for every message at once.
func BenchmarkMergedConsolidatePeakMemory(b *testing.B) {
	const members = 3
	// 256 jobs × 32 processes ≈ 57k messages across 3 member stores.
	seedDB := synthWorld(b, 4, 256, 32)
	groups := make([][]wire.Message, members)
	for _, m := range seedDB.All() {
		k := wire.PartitionIndex([]byte(m.JobID), []byte(m.Host), members)
		groups[k] = append(groups[k], m)
	}
	seedDB.Close()
	dbs := make([]*sirendb.DB, members)
	for k := range dbs {
		db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := db.InsertBatch(groups[k]); err != nil {
			b.Fatal(err)
		}
		dbs[k] = db
		defer db.Close()
	}
	groups = nil

	defer debug.SetGCPercent(debug.SetGCPercent(10))

	run := func(b *testing.B, pass func() int) {
		var peak uint64
		for i := 0; i < b.N; i++ {
			runtime.GC()
			stop := make(chan struct{})
			wg := samplePeak(stop, &peak)
			if jobs := pass(); jobs != 256 {
				b.Fatalf("consolidated %d jobs", jobs)
			}
			close(stop)
			wg.Wait()
		}
		b.ReportMetric(float64(peak)/(1<<20), "peak-live-MB")
	}

	b.Run("merged-streaming-aggregate", func(b *testing.B) {
		run(b, func() int {
			snaps := make([]*sirendb.Snapshot, len(dbs))
			for k, db := range dbs {
				snaps[k] = db.Snapshot()
			}
			jobs := 0
			ConsolidateStream(sirendb.MergeSnapshots(snaps), StreamOptions{}, func(j JobRecords) bool {
				jobs++ // aggregate-and-drop: nothing retained per job
				return true
			})
			return jobs
		})
	})
	b.Run("merged-load-everything-baseline", func(b *testing.B) {
		run(b, func() int {
			var all []wire.Message
			for _, db := range dbs {
				all = append(all, db.All()...)
			}
			_, stats := ConsolidateMessages(all)
			return stats.Jobs
		})
	})
}
