// Consolidation benchmarks (EXPERIMENTS.md §4):
//
//	go test -bench=BenchmarkConsolidate -benchmem ./internal/postprocess
//
// BenchmarkConsolidate compares the streaming, shard-parallel path against
// the load-everything baseline (db.All() → ConsolidateMessages) on the same
// store. The headline is -benchmem: the baseline's footprint grows with the
// total message count (the full []wire.Message copy plus one global
// reassembly and group map), the streaming path's with the in-flight jobs.
package postprocess

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"
)

func BenchmarkConsolidate(b *testing.B) {
	// ~64 jobs × 24 processes × (METADATA + chunked OBJECTS + FILE_H)
	// ≈ 10.7k messages — campaign-shaped, multi-shard, shard-spanning jobs.
	db := synthWorld(b, 4, 64, 24)
	defer db.Close()
	want := 64 * 24

	for _, workers := range []int{0, 1} {
		name := "streaming"
		if workers > 0 {
			name = fmt.Sprintf("streaming-workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				recs, _ := ConsolidateSnapshot(db.Snapshot(), StreamOptions{Workers: workers})
				if len(recs) != want {
					b.Fatalf("records = %d, want %d", len(recs), want)
				}
			}
		})
	}
	b.Run("load-everything-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			recs, _ := ConsolidateMessages(db.All())
			if len(recs) != want {
				b.Fatalf("records = %d, want %d", len(recs), want)
			}
		}
	})
}

// BenchmarkConsolidatePeakMemory pins the acceptance criterion directly:
// peak live heap during consolidation. The streaming consumer aggregates
// per job without retaining records (the Execution-Fingerprint-Dictionary
// shape: repeated whole-campaign group-bys); the baseline must materialise
// every message and record by construction. Reported as "peak-live-MB", the
// high-water mark of HeapAlloc sampled during the pass over a floor levelled
// by runtime.GC.
func BenchmarkConsolidatePeakMemory(b *testing.B) {
	// 256 jobs × 32 processes ≈ 57k messages: big enough that the sampler
	// (200 µs period) catches the footprint shape.
	db := synthWorld(b, 4, 256, 32)
	defer db.Close()

	// Keep HeapAlloc tracking *live* memory: at the default GOGC=100 the
	// heap balloons to 2× live before a collection, burying the retained-set
	// difference under transient garbage.
	defer debug.SetGCPercent(debug.SetGCPercent(10))

	samplePeak := func(stop chan struct{}, peak *uint64) *sync.WaitGroup {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ms runtime.MemStats
			for {
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > *peak {
					*peak = ms.HeapAlloc
				}
				select {
				case <-stop:
					return
				case <-time.After(200 * time.Microsecond):
				}
			}
		}()
		return &wg
	}

	run := func(b *testing.B, pass func() int) {
		var peak uint64
		for i := 0; i < b.N; i++ {
			runtime.GC()
			stop := make(chan struct{})
			wg := samplePeak(stop, &peak)
			if jobs := pass(); jobs != 256 {
				b.Fatalf("consolidated %d jobs", jobs)
			}
			close(stop)
			wg.Wait()
		}
		b.ReportMetric(float64(peak)/(1<<20), "peak-live-MB")
	}

	b.Run("streaming-aggregate", func(b *testing.B) {
		run(b, func() int {
			jobs := 0
			ConsolidateStream(db.Snapshot(), StreamOptions{}, func(j JobRecords) bool {
				jobs++ // aggregate-and-drop: nothing retained per job
				return true
			})
			return jobs
		})
	})
	b.Run("load-everything-baseline", func(b *testing.B) {
		run(b, func() int {
			_, stats := ConsolidateMessages(db.All())
			return stats.Jobs
		})
	})
}
