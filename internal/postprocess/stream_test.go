package postprocess

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"siren/internal/sirendb"
	"siren/internal/slurm"
	"siren/internal/wire"
)

// synthWorld inserts a deterministic multi-job, multi-host workload into a
// sharded store: procsPerJob processes per job, each with METADATA, a
// chunked OBJECTS list, and FILE_H, interleaved across jobs the way
// concurrent senders interleave. Hosts rotate per process so most jobs span
// several store shards.
func synthWorld(t testing.TB, shards, jobs, procsPerJob int) *sirendb.DB {
	t.Helper()
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []wire.Message
	for p := 0; p < procsPerJob; p++ {
		for j := 0; j < jobs; j++ {
			h := wire.Header{
				JobID: fmt.Sprintf("job-%03d", j), StepID: "0", PID: 1000 + p,
				Hash: fmt.Sprintf("%08x", j*1000+p), Host: fmt.Sprintf("nid%04d", p%5),
				Time: 1733900000 + int64(p), Layer: wire.LayerSelf,
			}
			h.Type = wire.TypeMetadata
			msgs = append(msgs, wire.Chunk(h, []byte(fmt.Sprintf(
				"EXE=/users/u%d/app\nCATEGORY=user\nPPID=1\nUID=%d\n", j%4, 1000+j%4)), 0)...)
			h.Type = wire.TypeObjects
			msgs = append(msgs, wire.Chunk(h, []byte(
				"/opt/siren/lib/siren.so\n/lib64/libc.so.6\n/lib64/libm.so.6\n/opt/cray/libmpi.so\n"), 120)...)
			h.Type = wire.TypeFileH
			msgs = append(msgs, wire.Chunk(h, []byte(fmt.Sprintf("3:aB%dcD:eF%d", j, p)), 0)...)
		}
	}
	if err := db.InsertBatch(msgs); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestStreamingMatchesLoadEverything pins the equivalence that lets the
// streaming path replace the old one: record-for-record identical output
// and identical stats versus ConsolidateMessages(db.All()).
func TestStreamingMatchesLoadEverything(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := synthWorld(t, shards, 11, 7)
			defer db.Close()

			want, wantStats := ConsolidateMessages(db.All())
			got, gotStats := ConsolidateSnapshot(db.Snapshot(), StreamOptions{})

			if gotStats != wantStats {
				t.Errorf("stats diverged: streaming %+v, baseline %+v", gotStats, wantStats)
			}
			if len(got) != len(want) {
				t.Fatalf("record count: streaming %d, baseline %d", len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("record %d diverged:\nstreaming %+v\nbaseline  %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestConsolidateStreamPerJob: yield fires exactly once per job with that
// job's complete record set, even when the job's hosts span store shards.
func TestConsolidateStreamPerJob(t *testing.T) {
	db := synthWorld(t, 4, 9, 6)
	defer db.Close()
	snap := db.Snapshot()

	spanning := 0
	for _, n := range snap.JobShardCounts() {
		if n > 1 {
			spanning++
		}
	}
	if spanning == 0 {
		t.Fatal("workload produced no shard-spanning job; the fan-in path is untested")
	}

	seen := make(map[string]int)
	stats := ConsolidateStream(snap, StreamOptions{}, func(j JobRecords) bool {
		seen[j.JobID]++
		if len(j.Records) != 6 {
			t.Errorf("job %s yielded %d records, want 6", j.JobID, len(j.Records))
		}
		// Fan-in preserves insertion order within the job: Time (== PID
		// insertion wave here) never decreases within a host stream, and
		// records of one host must appear in their insertion order.
		lastByHost := make(map[string]int64)
		for _, r := range j.Records {
			if last, ok := lastByHost[r.Host]; ok && r.Time < last {
				t.Errorf("job %s host %s records out of insertion order", j.JobID, r.Host)
			}
			lastByHost[r.Host] = r.Time
		}
		return true
	})
	if len(seen) != 9 {
		t.Fatalf("yield covered %d jobs, want 9", len(seen))
	}
	for job, n := range seen {
		if n != 1 {
			t.Errorf("job %s yielded %d times", job, n)
		}
	}
	if stats.Jobs != 9 || stats.Processes != 9*6 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestConsolidateStreamEarlyStop: returning false from yield terminates the
// stream without deadlocking the workers, and stats stay partial.
func TestConsolidateStreamEarlyStop(t *testing.T) {
	db := synthWorld(t, 4, 20, 4)
	defer db.Close()
	calls := 0
	stats := ConsolidateStream(db.Snapshot(), StreamOptions{}, func(j JobRecords) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("yield called %d times, want 3", calls)
	}
	if stats.Jobs != 3 {
		t.Errorf("partial stats report %d jobs, want 3", stats.Jobs)
	}
}

// TestConsolidateStreamWorkerCap: a worker cap below the shard count still
// consolidates everything (workers pull shards from a shared queue).
func TestConsolidateStreamWorkerCap(t *testing.T) {
	db := synthWorld(t, 4, 8, 3)
	defer db.Close()
	want, _ := ConsolidateMessages(db.All())
	for _, workers := range []int{1, 2, 8} {
		got, _ := ConsolidateSnapshot(db.Snapshot(), StreamOptions{Workers: workers})
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(got), len(want))
		}
	}
}

// TestStreamingToleratesMisroutedInserts: InsertShard's contract lets a
// batch land in a shard its messages don't hash to. When that splits one
// process's chunks across shards, the fan-in's identity-collision check
// must re-consolidate the job from the merged stream instead of emitting
// two partial records.
func TestStreamingToleratesMisroutedInserts(t *testing.T) {
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	h := wire.Header{
		JobID: "split-job", StepID: "0", PID: 77, Hash: "cafe", Host: "nid0001",
		Time: 1733900000, Layer: wire.LayerSelf,
	}
	h.Type = wire.TypeMetadata
	meta := wire.Chunk(h, []byte("EXE=/users/u/app\nCATEGORY=user\nUID=1001\n"), 0)
	h.Type = wire.TypeObjects
	objs := wire.Chunk(h, []byte("/opt/siren/lib/siren.so\n/lib64/libc.so.6\n"), 0)
	// Deliberately misroute: the two message types of ONE process land in
	// two different shards.
	if err := db.InsertShard(0, meta); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertShard(1, objs); err != nil {
		t.Fatal(err)
	}

	want, _ := ConsolidateMessages(db.All())
	if len(want) != 1 {
		t.Fatalf("baseline produced %d records, want 1", len(want))
	}
	got, stats := ConsolidateSnapshot(db.Snapshot(), StreamOptions{})
	if len(got) != 1 {
		t.Fatalf("streaming produced %d records from a misrouted process, want 1", len(got))
	}
	if !reflect.DeepEqual(got[0], want[0]) {
		t.Fatalf("misrouted record diverged:\nstreaming %+v\nbaseline  %+v", got[0], want[0])
	}
	if stats.Messages != 2 || stats.Processes != 1 || stats.Jobs != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestConsolidateEmptyStore: the streaming path degrades cleanly.
func TestConsolidateEmptyStore(t *testing.T) {
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	recs, stats := Consolidate(db)
	if len(recs) != 0 || stats != (Stats{}) {
		t.Fatalf("recs=%d stats=%+v", len(recs), stats)
	}
}

// TestStreamingEndToEndPipeline runs the real collector pipeline (the same
// fixture the legacy tests use) and checks the streaming path through
// Consolidate agrees with the explicit-slice baseline.
func TestStreamingEndToEndPipeline(t *testing.T) {
	p := newPipeline(t)
	for i := 0; i < 4; i++ {
		opts := slurm.ExecOptions{PPID: 1, UID: uint32(1005 + i), Env: slurmEnv(fmt.Sprint(i))}
		if _, err := p.rt.Run("/users/u/solver", opts, nil); err != nil {
			t.Fatal(err)
		}
	}
	p.finish()

	want, wantStats := ConsolidateMessages(p.db.All())
	got, gotStats := Consolidate(p.db)
	if gotStats != wantStats {
		t.Errorf("stats diverged: %+v vs %+v", gotStats, wantStats)
	}
	if len(got) != len(want) {
		t.Fatalf("records: %d vs %d", len(got), len(want))
	}
	// Records may tie on the sort key (same second); compare as multisets
	// of executable identity.
	key := func(r *ProcessRecord) string {
		return fmt.Sprintf("%s|%s|%d|%s|%s|%d|%s", r.JobID, r.StepID, r.PID, r.ExeHash, r.Host, r.Time, r.Exe)
	}
	a, b := make([]string, 0, len(got)), make([]string, 0, len(want))
	for i := range got {
		a, b = append(a, key(got[i])), append(b, key(want[i]))
	}
	sort.Strings(a)
	sort.Strings(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("record identity multiset diverged")
	}
}

// TestMergedSnapshotMatchesSingleStore pins the multi-receiver equivalence:
// partitioning one campaign across N member stores by
// wire.PartitionHash(JOBID, HOST) — exactly what N -partition k/N receivers
// do — and consolidating the merged snapshot produces record-for-record the
// same output and stats as consolidating the union from one store.
func TestMergedSnapshotMatchesSingleStore(t *testing.T) {
	single := synthWorld(t, 4, 11, 7)
	defer single.Close()

	const members = 3
	dbs := make([]*sirendb.DB, members)
	for k := range dbs {
		db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		dbs[k] = db
		defer db.Close()
	}
	groups := make([][]wire.Message, members)
	for _, m := range single.All() {
		k := wire.PartitionIndex([]byte(m.JobID), []byte(m.Host), members)
		groups[k] = append(groups[k], m)
	}
	snaps := make([]*sirendb.Snapshot, members)
	for k, db := range dbs {
		if len(groups[k]) == 0 {
			t.Fatalf("partition %d/%d empty; grow the corpus", k, members)
		}
		if err := db.InsertBatch(groups[k]); err != nil {
			t.Fatal(err)
		}
		snaps[k] = db.Snapshot()
	}

	want, wantStats := ConsolidateSnapshot(single.Snapshot(), StreamOptions{})
	got, gotStats := ConsolidateSnapshot(sirendb.MergeSnapshots(snaps), StreamOptions{})

	if gotStats != wantStats {
		t.Errorf("stats diverged: merged %+v, single %+v", gotStats, wantStats)
	}
	if len(got) != len(want) {
		t.Fatalf("record count: merged %d, single %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d diverged:\nmerged %+v\nsingle %+v", i, got[i], want[i])
		}
	}
}
