package postprocess

import (
	"reflect"
	"testing"

	"siren/internal/collector"
	"siren/internal/ldso"
	"siren/internal/procfs"
	"siren/internal/pyenv"
	"siren/internal/receiver"
	"siren/internal/sirendb"
	"siren/internal/slurm"
	"siren/internal/toolchain"
	"siren/internal/wire"
)

// pipeline runs a tiny world through collector → channel → receiver → DB
// and returns the DB.
type pipeline struct {
	rt  *slurm.Runtime
	db  *sirendb.DB
	tr  *wire.ChanTransport
	rcv *receiver.Receiver
}

func newPipeline(t *testing.T) *pipeline {
	t.Helper()
	fs := procfs.NewFS()
	cache := ldso.NewCache()
	for _, lib := range []ldso.Library{
		{Soname: "libc.so.6", Path: "/lib64/libc.so.6"},
		{Soname: "libm.so.6", Path: "/lib64/libm.so.6"},
		{Soname: "siren.so", Path: "/opt/siren/lib/siren.so"},
	} {
		cache.Register(lib)
		fs.Install(lib.Path, []byte("so"), procfs.FileMeta{})
	}
	build := func(path, name string, libs ...string) {
		art, err := toolchain.Compile(
			toolchain.Source{Name: name, Version: "1.0", Functions: []string{name + "_main"}},
			toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE}, Libraries: libs})
		if err != nil {
			t.Fatal(err)
		}
		fs.Install(path, art.Binary, procfs.FileMeta{Mtime: 1700000000})
	}
	build("/usr/bin/bash", "bash", "libc.so.6")
	build("/usr/bin/mkdir", "mkdir", "libc.so.6")
	build("/users/u/solver", "solver", "libm.so.6", "libc.so.6")
	build("/usr/bin/python3.10", "python3.10", "libc.so.6")
	script := pyenv.GenerateScript("/scratch/u/run.py", 3, []string{"numpy"})
	fs.Install(script.Path, script.Content, procfs.FileMeta{Mtime: 1700000005})

	db, _ := sirendb.Open("")
	tr := wire.NewChanTransport(1 << 16)
	rcv := receiver.New(db, receiver.Options{})
	rcv.AttachChannel(tr.C())

	col := collector.New(tr)
	rt := slurm.NewRuntime(fs, procfs.NewTable(0), cache, slurm.NewClock(1733900000))
	rt.Hook = col
	return &pipeline{rt: rt, db: db, tr: tr, rcv: rcv}
}

func (p *pipeline) finish() {
	p.tr.Close()
	p.rcv.Close()
}

func slurmEnv(rank string) map[string]string {
	return map[string]string{
		"LD_PRELOAD":    "/opt/siren/lib/siren.so",
		"SLURM_JOB_ID":  "900",
		"SLURM_STEP_ID": "0",
		"SLURM_PROCID":  rank,
		"HOSTNAME":      "nid001002",
		"LOADEDMODULES": "craype/2.7.30",
	}
}

func TestConsolidateUserProcess(t *testing.T) {
	p := newPipeline(t)
	if _, err := p.rt.Run("/users/u/solver", slurm.ExecOptions{PPID: 1, UID: 1005, Env: slurmEnv("0")}, nil); err != nil {
		t.Fatal(err)
	}
	p.finish()

	recs, stats := Consolidate(p.db)
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	r := recs[0]
	if r.Exe != "/users/u/solver" || r.Category != "user" || r.JobID != "900" {
		t.Errorf("record = %+v", r)
	}
	if r.UID != 1005 {
		t.Errorf("UID = %d", r.UID)
	}
	// The preloaded siren.so leads the loaded-objects list — that is why the
	// paper's Figure 5 shows the "siren" tag for every application.
	if !reflect.DeepEqual(r.Objects, []string{"/opt/siren/lib/siren.so", "/lib64/libm.so.6", "/lib64/libc.so.6"}) {
		t.Errorf("Objects = %q", r.Objects)
	}
	if !reflect.DeepEqual(r.Modules, []string{"craype/2.7.30"}) {
		t.Errorf("Modules = %q", r.Modules)
	}
	if len(r.Compilers) != 1 {
		t.Errorf("Compilers = %q", r.Compilers)
	}
	if r.FileH == "" || r.StringsH == "" || r.SymbolsH == "" || r.ObjectsH == "" ||
		r.ModulesH == "" || r.CompilersH == "" || r.MapsH == "" {
		t.Errorf("missing hashes: %+v", r)
	}
	if len(r.Maps) == 0 {
		t.Error("maps missing")
	}
	if len(r.MissingFields) != 0 {
		t.Errorf("MissingFields = %q", r.MissingFields)
	}
	if stats.Processes != 1 || stats.Jobs != 1 || stats.JobsWithMissing != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if r.ExeName() != "solver" {
		t.Errorf("ExeName = %q", r.ExeName())
	}
}

func TestConsolidatePythonWithScript(t *testing.T) {
	p := newPipeline(t)
	it := pyenv.Interpreter{Version: "3.10", Path: "/usr/bin/python3.10", LibDir: "/usr/lib64/python3.10"}
	extra := pyenv.MapRegions(it, []string{"numpy"}, 0x7f3000000000)
	_, err := p.rt.Run("/usr/bin/python3.10", slurm.ExecOptions{PPID: 1, Env: slurmEnv("0"), ExtraMaps: extra},
		func(pr *procfs.Proc) error {
			pr.Cmdline = []string{"/usr/bin/python3.10", "/scratch/u/run.py"}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	p.finish()

	recs, _ := Consolidate(p.db)
	if len(recs) != 1 {
		t.Fatalf("python + script should merge into 1 record, got %d", len(recs))
	}
	r := recs[0]
	if r.Category != "python" {
		t.Errorf("category = %q", r.Category)
	}
	if r.Script == nil {
		t.Fatal("script record not merged")
	}
	if r.Script.Path != "/scratch/u/run.py" || r.Script.FileH == "" {
		t.Errorf("script = %+v", r.Script)
	}
	if !reflect.DeepEqual(r.Imports, []string{"numpy"}) {
		t.Errorf("imports = %q", r.Imports)
	}
	// Interpreters are not themselves hashed.
	if r.FileH != "" {
		t.Error("interpreter FILE_H should be empty per Table 1")
	}
}

func TestConsolidateExecPIDReuse(t *testing.T) {
	p := newPipeline(t)
	if _, err := p.rt.RunExec("/usr/bin/bash", "/usr/bin/mkdir", slurm.ExecOptions{PPID: 1, Env: slurmEnv("0")}); err != nil {
		t.Fatal(err)
	}
	p.finish()

	recs, _ := Consolidate(p.db)
	if len(recs) != 2 {
		t.Fatalf("exec'd process should yield 2 records, got %d", len(recs))
	}
	if recs[0].PID != recs[1].PID {
		t.Error("PIDs should match across exec")
	}
	if recs[0].Time != recs[1].Time {
		t.Error("times should collide (one-second granularity)")
	}
	exes := map[string]bool{recs[0].Exe: true, recs[1].Exe: true}
	if !exes["/usr/bin/bash"] || !exes["/usr/bin/mkdir"] {
		t.Errorf("exes = %v", exes)
	}
}

func TestMissingChunksMarked(t *testing.T) {
	// Hand-craft a chunked OBJECTS record with a lost middle chunk.
	h := wire.Header{JobID: "1", StepID: "0", PID: 5, Hash: "aa", Host: "n",
		Time: 10, Layer: wire.LayerSelf}
	content := []byte("/lib64/libA.so\n/lib64/libB.so\n/lib64/libC.so\n")
	h.Type = wire.TypeObjects
	chunks := wire.Chunk(h, content, 180)
	if len(chunks) < 3 {
		t.Skipf("need >=3 chunks, got %d", len(chunks))
	}
	msgs := append(chunks[:1], chunks[2:]...)
	meta := wire.Chunk(wire.Header{JobID: "1", StepID: "0", PID: 5, Hash: "aa", Host: "n",
		Time: 10, Layer: wire.LayerSelf, Type: wire.TypeMetadata},
		[]byte("EXE=/users/u/x\nCATEGORY=user\n"), 0)
	msgs = append(msgs, meta...)

	recs, stats := ConsolidateMessages(msgs)
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	found := false
	for _, mf := range recs[0].MissingFields {
		if mf == "SELF:OBJECTS" {
			found = true
		}
	}
	if !found {
		t.Errorf("MissingFields = %q", recs[0].MissingFields)
	}
	if stats.ProcessesWithMissing != 1 || stats.JobsWithMissing != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestDeterministicOrdering(t *testing.T) {
	p := newPipeline(t)
	for i := 0; i < 5; i++ {
		if _, err := p.rt.Run("/usr/bin/bash", slurm.ExecOptions{PPID: 1, Env: slurmEnv("0")}, nil); err != nil {
			t.Fatal(err)
		}
	}
	p.finish()
	recs1, _ := Consolidate(p.db)
	recs2, _ := Consolidate(p.db)
	for i := range recs1 {
		if recs1[i].PID != recs2[i].PID || recs1[i].Time != recs2[i].Time {
			t.Fatal("ordering not deterministic")
		}
	}
	// Times must be non-decreasing.
	for i := 1; i < len(recs1); i++ {
		if recs1[i].Time < recs1[i-1].Time {
			t.Error("records not time-ordered")
		}
	}
}
