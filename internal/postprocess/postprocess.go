// Package postprocess consolidates raw UDP messages from the database into
// one record per process — the paper's post-processing stage: chunk merging,
// type assembly, and folding Python-script rows into their parent
// interpreter rows — and derives the fields later analyses consume (e.g.
// imported Python packages recovered from interpreter memory maps).
package postprocess

import (
	"sort"
	"strconv"
	"strings"

	"siren/internal/procfs"
	"siren/internal/pyenv"
	"siren/internal/sirendb"
	"siren/internal/wire"
)

// ScriptRecord is the Python-input-script information merged into its
// interpreter's process record.
type ScriptRecord struct {
	Path  string
	FileH string
	Size  int64
	Mtime int64
	Inode uint64
}

// ProcessRecord is the consolidated view of one process instance.
type ProcessRecord struct {
	// Identity (UDP header columns).
	JobID   string
	StepID  string
	PID     int
	ExeHash string // executable-path hash that disambiguates exec() reuse
	Host    string
	Time    int64

	// METADATA fields.
	Exe      string
	Category string
	PPID     int
	UID      uint32
	GID      uint32
	Inode    uint64
	Size     int64
	Mode     uint32
	OwnerUID uint32
	OwnerGID uint32
	Atime    int64
	Mtime    int64
	Ctime    int64

	// List categories.
	Objects   []string
	Modules   []string
	Compilers []string
	Maps      []procfs.Region

	// Fuzzy hashes.
	FileH      string
	StringsH   string
	SymbolsH   string
	ObjectsH   string
	ModulesH   string
	CompilersH string
	MapsH      string

	// Python.
	Imports []string      // packages recovered from the memory map
	Script  *ScriptRecord // merged input-script row

	// MissingFields lists message types that arrived incomplete (chunk
	// loss); analyses treat those fields as partially trustworthy.
	MissingFields []string
}

// ExeName returns the basename of the executable path.
func (p *ProcessRecord) ExeName() string {
	if i := strings.LastIndexByte(p.Exe, '/'); i >= 0 {
		return p.Exe[i+1:]
	}
	return p.Exe
}

// Stats summarises a consolidation pass.
type Stats struct {
	Messages             int
	Records              int // reassembled logical records
	Processes            int
	ProcessesWithMissing int
	Jobs                 int
	JobsWithMissing      int
}

// AddJob folds one consolidated job into the summary — the single
// accumulation rule shared by the streaming pass and incremental consumers
// (the serving catalog) splicing carried jobs across refreshes, so both
// report identical Stats for identical records. messages is the job's
// stored wire messages, logical its reassembled record count.
func (s *Stats) AddJob(records []*ProcessRecord, messages, logical int) {
	s.Jobs++
	s.Messages += messages
	s.Records += logical
	jobMissing := false
	for _, r := range records {
		s.Processes++
		if len(r.MissingFields) > 0 {
			s.ProcessesWithMissing++
			jobMissing = true
		}
	}
	if jobMissing {
		s.JobsWithMissing++
	}
}

// Consolidate snapshots db and produces one ProcessRecord per process
// instance, sorted by (Time, JobID, PID, ExeHash) for determinism.
//
// Internally this rides the streaming, shard-parallel read path
// (ConsolidateSnapshot): the store is never materialised as one
// []wire.Message, and peak memory is bounded by the jobs in flight — one
// per store shard — plus the output records, instead of the whole store.
func Consolidate(db *sirendb.DB) ([]*ProcessRecord, Stats) {
	return ConsolidateSnapshot(db.Snapshot(), StreamOptions{})
}

// ConsolidateMessages is consolidation over an explicit message slice — the
// compatibility entry point for callers that already hold messages in
// memory, and the load-everything baseline BenchmarkConsolidate compares
// the streaming path against.
func ConsolidateMessages(msgs []wire.Message) ([]*ProcessRecord, Stats) {
	stats := Stats{Messages: len(msgs)}
	out, nRecords := consolidateChunk(msgs)
	stats.Records = nRecords
	SortRecords(out)
	countRecordStats(&stats, out)
	return out, stats
}

// consolidateChunk consolidates one self-contained message subset into
// process records. "Self-contained" means every chunk and record of every
// process mentioned is inside msgs — true for the whole store, and equally
// true for any (job, host)-closed subset, because the grouping key below
// never crosses a job or a host. That closure is what lets the streaming
// path consolidate per (shard, job) segment and still produce exactly the
// records a whole-store pass would.
//
// Constructor and destructor messages of the same process carry different
// TIME values (data is collected at start-up *and* before termination), so
// records are grouped by the identity columns without TIME — JOBID, STEPID,
// PID, HASH, HOST — and sorted by time within each group. A *repeated*
// message type inside a group signals genuine PID reuse (a later process
// with the same PID and executable path) and starts a new process instance;
// exec()-style reuse within one second is already separated by the
// executable-path HASH column, per the paper.
//
// Records are returned in identity-group first-appearance order, with the
// derived Python imports already extracted.
func consolidateChunk(msgs []wire.Message) (out []*ProcessRecord, nRecords int) {
	records := wire.Reassemble(msgs)
	nRecords = len(records)

	identity := func(h wire.Header) string {
		return strings.Join([]string{h.JobID, h.StepID, strconv.Itoa(h.PID), h.Hash, h.Host}, "\x1f")
	}
	groups := make(map[string][]wire.Record)
	var order []string
	for _, rec := range records {
		k := identity(rec.Header)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], rec)
	}

	for _, k := range order {
		recs := groups[k]
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Header.Time < recs[j].Header.Time })
		var p *ProcessRecord
		seen := make(map[string]bool)
		for _, rec := range recs {
			tk := rec.Header.Layer + ":" + rec.Header.Type
			if p == nil || seen[tk] {
				h := rec.Header
				p = &ProcessRecord{
					JobID: h.JobID, StepID: h.StepID, PID: h.PID,
					ExeHash: h.Hash, Host: h.Host, Time: h.Time,
				}
				out = append(out, p)
				seen = make(map[string]bool)
			}
			seen[tk] = true
			if !rec.Complete {
				p.MissingFields = append(p.MissingFields, tk)
			}
			content := string(rec.Content)
			if rec.Header.Layer == wire.LayerScript {
				applyScript(p, rec.Header.Type, content)
				continue
			}
			applySelf(p, rec.Header.Type, content)
		}
	}

	// Derived: Python imports from interpreter memory maps.
	for _, p := range out {
		if p.Category == "python" && len(p.Maps) > 0 {
			p.Imports = pyenv.ExtractImports(p.Maps)
		}
	}
	return out, nRecords
}

// SortRecords orders records by (Time, JobID, PID, ExeHash) — the
// deterministic output order of every consolidation entry point. Exported
// so incremental consumers (the serving catalog) that splice per-job record
// sets across refresh passes can restore exactly the order a fresh
// whole-store consolidation would produce.
func SortRecords(out []*ProcessRecord) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.JobID != b.JobID {
			return a.JobID < b.JobID
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		return a.ExeHash < b.ExeHash
	})
}

// countRecordStats fills the process- and job-level counters from the final
// record set.
func countRecordStats(stats *Stats, out []*ProcessRecord) {
	jobs := make(map[string]bool)
	jobsMissing := make(map[string]bool)
	for _, p := range out {
		stats.Processes++
		jobs[p.JobID] = true
		if len(p.MissingFields) > 0 {
			stats.ProcessesWithMissing++
			jobsMissing[p.JobID] = true
		}
	}
	stats.Jobs = len(jobs)
	stats.JobsWithMissing = len(jobsMissing)
}

func applySelf(p *ProcessRecord, typ, content string) {
	switch typ {
	case wire.TypeMetadata:
		kv := parseKV(content)
		p.Exe = kv["EXE"]
		p.Category = kv["CATEGORY"]
		p.PPID = atoi(kv["PPID"])
		p.UID = uint32(atoi(kv["UID"]))
		p.GID = uint32(atoi(kv["GID"]))
		p.Inode = uint64(atoi(kv["INODE"]))
		p.Size = int64(atoi(kv["SIZE"]))
		p.Mode = uint32(atoiBase(kv["MODE"], 8))
		p.OwnerUID = uint32(atoi(kv["OWNER_UID"]))
		p.OwnerGID = uint32(atoi(kv["OWNER_GID"]))
		p.Atime = int64(atoi(kv["ATIME"]))
		p.Mtime = int64(atoi(kv["MTIME"]))
		p.Ctime = int64(atoi(kv["CTIME"]))
	case wire.TypeObjects:
		p.Objects = splitLines(content)
	case wire.TypeModules:
		p.Modules = splitLines(content)
	case wire.TypeCompilers:
		p.Compilers = splitLines(content)
	case wire.TypeMaps:
		if regions, err := procfs.ParseMaps(content); err == nil {
			p.Maps = regions
		}
	case wire.TypeFileH:
		p.FileH = content
	case wire.TypeStringsH:
		p.StringsH = content
	case wire.TypeSymbolsH:
		p.SymbolsH = content
	case wire.TypeObjectsH:
		p.ObjectsH = content
	case wire.TypeModulesH:
		p.ModulesH = content
	case wire.TypeCompilersH:
		p.CompilersH = content
	case wire.TypeMapsH:
		p.MapsH = content
	}
}

func applyScript(p *ProcessRecord, typ, content string) {
	if p.Script == nil {
		p.Script = &ScriptRecord{}
	}
	switch typ {
	case wire.TypeMetadata:
		kv := parseKV(content)
		p.Script.Path = kv["EXE"]
		p.Script.Size = int64(atoi(kv["SIZE"]))
		p.Script.Mtime = int64(atoi(kv["MTIME"]))
		p.Script.Inode = uint64(atoi(kv["INODE"]))
	case wire.TypeFileH:
		p.Script.FileH = content
	}
}

func parseKV(content string) map[string]string {
	out := make(map[string]string)
	for _, line := range strings.Split(content, "\n") {
		if i := strings.IndexByte(line, '='); i > 0 {
			out[line[:i]] = line[i+1:]
		}
	}
	return out
}

func splitLines(content string) []string {
	if content == "" {
		return nil
	}
	var out []string
	for _, line := range strings.Split(content, "\n") {
		if line != "" {
			out = append(out, line)
		}
	}
	return out
}

func atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}

func atoiBase(s string, base int) uint64 {
	n, _ := strconv.ParseUint(s, base, 64)
	return n
}
