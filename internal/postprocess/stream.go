// Streaming, shard-parallel consolidation — the read-path counterpart of
// the sharded ingest pipeline.
//
// The load-everything shape (db.All() → ConsolidateMessages) materialises
// every stored message, one global reassembly map, and one global group map
// before producing a single record: peak memory O(total messages). The
// streaming path mirrors the store shards instead:
//
//	store shard 0 ── cursor ─▶ worker 0 ─┐  per-(shard, job) segments
//	store shard 1 ── cursor ─▶ worker 1 ─┼─▶ fan-in reducer ─▶ yield(job)
//	      …                       …      │   (completes a job once every
//	store shard S ── cursor ─▶ worker S ─┘    shard holding it reported)
//
// Each worker walks its shard's jobs in first-appearance order and
// consolidates one job at a time, so a worker's transient memory is one
// in-flight job (its messages are referenced from the snapshot, not
// copied). Messages of one (job, host) always live in one shard — the store
// partitions by wire.PartitionHash(JobID, Host) — and the consolidation
// grouping key never crosses a job or host, so per-(shard, job) segments
// consolidate to exactly the records a whole-store pass would produce. Jobs
// spanning several hosts can span shards; the reducer holds their segments
// until every shard has reported, then concatenates segments in first-row
// sequence order — each host's stream stays in its insertion order, and
// segments follow the order the job first touched each shard.
package postprocess

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"siren/internal/sirendb"
	"siren/internal/wire"
)

// SnapshotView is the cursor surface the streaming consolidation reads — the
// interface extracted from *sirendb.Snapshot so the same pipeline runs over
// one receiver database or the merged view of N (*sirendb.MergedSnapshot,
// the analysis tier of a partitioned multi-receiver deployment).
//
// The contract the consolidation depends on:
//   - rows of one (job, host) live wholly inside one shard, in insertion
//     order (the store partitions by wire.PartitionHash(JobID, Host));
//   - within a ShardJobRows stream, the subsequence of any one host carries
//     strictly increasing seq values (chunk reassembly order); hosts may be
//     grouped rather than seq-interleaved — a store whose sealed runs sort
//     rows by (job, host) yields host blocks, the mutable head yields pure
//     insertion order — and seqs are globally comparable across shards;
//   - JobShardCounts()[j] equals the number of shard indexes for which
//     ShardJobRows(i, j, …) yields at least one row;
//   - JobRows merges one job's rows across shards preserving each host's
//     insertion order (same per-host guarantee as ShardJobRows).
type SnapshotView interface {
	// Shards reports the number of shard cursors.
	Shards() int
	// ShardJobs returns shard i's distinct job IDs in first-appearance order.
	ShardJobs(i int) []string
	// ShardJobRows streams shard i's rows of one job — per-host insertion
	// order preserved, hosts possibly grouped — with each row's sequence
	// number; return false to stop.
	ShardJobRows(i int, job string, f func(m wire.Message, seq uint64) bool)
	// JobShardCounts maps every job ID to the number of shards holding rows
	// of that job — the fan-in count a per-job reducer waits for.
	JobShardCounts() map[string]int
	// JobRows streams every row of one job, preserving per-host insertion
	// order.
	JobRows(job string, f func(m wire.Message) bool)
	// LastSeq reports the highest sequence number the snapshot contains;
	// every row it yields has seq <= LastSeq. Successive snapshots of a
	// growing store have non-decreasing LastSeq, which makes the value a
	// refresh watermark.
	LastSeq() uint64
	// JobsChangedSince returns the job IDs with at least one row whose
	// sequence number is strictly greater than since, sorted; since=0
	// returns every job. An incremental consumer holding consolidated state
	// as of watermark W re-consolidates exactly JobsChangedSince(W) against
	// the new snapshot — the append-only store guarantees every other job's
	// rows are byte-identical to the previous capture.
	JobsChangedSince(since uint64) []string
}

// Both snapshot flavours satisfy the extracted cursor surface.
var (
	_ SnapshotView = (*sirendb.Snapshot)(nil)
	_ SnapshotView = (*sirendb.MergedSnapshot)(nil)
)

// StreamOptions configure the streaming consolidation.
type StreamOptions struct {
	// Workers bounds the number of concurrent shard workers. 0 (or
	// anything above the snapshot's shard count) means one worker per
	// shard cursor — the shard-mirrored default.
	Workers int
	// JobFilter, when non-nil, restricts the pass to jobs it returns true
	// for; other jobs are skipped before any of their rows are read. This is
	// how an incremental catalog refresh consolidates only the jobs changed
	// since its watermark instead of the whole store.
	JobFilter func(job string) bool
}

// JobRecords is one fully consolidated job — the unit the streaming fan-in
// yields. Records of one host are in that host's insertion order; when a
// job spans several hosts on different shards, the per-shard record groups
// are concatenated in first-row sequence order (their sequence ranges may
// interleave — strict global insertion order across hosts is not
// reconstructed; ConsolidateSnapshot's final sort does not depend on it).
type JobRecords struct {
	JobID   string
	Records []*ProcessRecord
	// Messages is the number of stored wire messages consolidated into this
	// job; Reassembled the number of logical records after chunk reassembly.
	// An incremental consumer carrying whole jobs across passes accumulates
	// these into the Stats a fresh full pass would report.
	Messages    int
	Reassembled int
}

// jobSegment is one shard's contribution to a job.
type jobSegment struct {
	job      string
	firstSeq uint64 // store-wide seq of the shard's first row of this job
	recs     []*ProcessRecord
	records  int // reassembled logical records in this segment
	messages int
}

// ConsolidateStream consolidates a store snapshot shard-parallel and calls
// yield once per job as the job completes, with that job's records ordered
// as JobRecords documents; return false from yield to stop early. Jobs
// complete in a scheduler-dependent order across workers — callers needing
// the global deterministic order use ConsolidateSnapshot.
//
// Memory stays bounded by the jobs in flight: each worker holds one job's
// messages (referenced from the snapshot) while consolidating it, and the
// reducer holds only record segments of multi-shard jobs still waiting for
// a sibling shard. The returned Stats cover the jobs yielded; after an
// early stop they are partial.
func ConsolidateStream(snap SnapshotView, opts StreamOptions, yield func(JobRecords) bool) Stats {
	workers := opts.Workers
	if workers <= 0 || workers > snap.Shards() {
		workers = snap.Shards()
	}

	segCh := make(chan jobSegment, workers)
	done := make(chan struct{}) // closed on early stop; unblocks worker sends
	var nextShard atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []wire.Message // reused across jobs: amortised to the largest job segment
			for {
				sh := int(nextShard.Add(1)) - 1
				if sh >= snap.Shards() {
					return
				}
				for _, job := range snap.ShardJobs(sh) {
					if opts.JobFilter != nil && !opts.JobFilter(job) {
						continue
					}
					buf = buf[:0]
					var firstSeq uint64
					snap.ShardJobRows(sh, job, func(m wire.Message, seq uint64) bool {
						if len(buf) == 0 {
							firstSeq = seq
						}
						buf = append(buf, m)
						return true
					})
					recs, nRecords := consolidateChunk(buf)
					select {
					case segCh <- jobSegment{job: job, firstSeq: firstSeq, recs: recs, records: nRecords, messages: len(buf)}:
					case <-done:
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(segCh)
	}()

	counts := snap.JobShardCounts()
	pending := make(map[string][]jobSegment) // multi-shard jobs awaiting siblings
	var stats Stats
	stopped := false
	for seg := range segCh {
		if stopped {
			continue // drain until the workers exit
		}
		segs := append(pending[seg.job], seg)
		if len(segs) < counts[seg.job] {
			pending[seg.job] = segs
			continue
		}
		delete(pending, seg.job)

		// Fan-in: segments merge in first-row sequence order. Rows of one
		// (job, host) normally live within a single segment — the store
		// routes by hash(JobID, Host) — so every host stream survives the
		// merge intact.
		sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
		jr := JobRecords{JobID: seg.job}
		messages, records := 0, 0
		for _, s := range segs {
			messages += s.messages
			records += s.records
		}
		if len(segs) == 1 {
			jr.Records = segs[0].recs
		} else if identityCollision(segs) {
			// Misrouted rows (InsertShard's contract allows them: a batch
			// may land in a shard its messages don't hash to) can split one
			// process identity across segments, which per-segment
			// consolidation would surface as two partial records. Fall back
			// to consolidating this job from the merged cross-shard stream
			// — slower, but exactly what a whole-store pass produces.
			var msgs []wire.Message
			snap.JobRows(seg.job, func(m wire.Message) bool {
				msgs = append(msgs, m)
				return true
			})
			jr.Records, records = consolidateChunk(msgs)
			messages = len(msgs)
		} else {
			n := 0
			for _, s := range segs {
				n += len(s.recs)
			}
			jr.Records = make([]*ProcessRecord, 0, n)
			for _, s := range segs {
				jr.Records = append(jr.Records, s.recs...)
			}
		}

		jr.Messages = messages
		jr.Reassembled = records
		stats.AddJob(jr.Records, messages, records)

		if !yield(jr) {
			stopped = true
			close(done)
		}
	}
	return stats
}

// identityCollision reports whether two *different* segments of one job
// contain records of the same process identity — the fingerprint of
// misrouted inserts (with hash routing intact, one (job, host) never spans
// shards, and identity includes the host). Duplicates within one segment
// are legitimate PID reuse and don't count.
func identityCollision(segs []jobSegment) bool {
	seen := make(map[string]int) // identity → index of the segment that saw it
	for si := range segs {
		for _, r := range segs[si].recs {
			k := r.StepID + "\x1f" + strconv.Itoa(r.PID) + "\x1f" + r.ExeHash + "\x1f" + r.Host
			if prev, ok := seen[k]; ok && prev != si {
				return true
			}
			seen[k] = si
		}
	}
	return false
}

// ConsolidateSnapshot consolidates a snapshot via the streaming
// shard-parallel path and returns every record sorted by (Time, JobID, PID,
// ExeHash) — the same contract as Consolidate, with peak memory bounded by
// the in-flight jobs plus the output instead of the whole store.
func ConsolidateSnapshot(snap SnapshotView, opts StreamOptions) ([]*ProcessRecord, Stats) {
	var out []*ProcessRecord
	stats := ConsolidateStream(snap, opts, func(j JobRecords) bool {
		out = append(out, j.Records...)
		return true
	})
	SortRecords(out)
	return out, stats
}
