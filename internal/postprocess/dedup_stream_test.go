package postprocess

import (
	"reflect"
	"testing"

	"siren/internal/sirendb"
	"siren/internal/wire"
)

// TestDedupedFailoverMergeMatchesSingleStore pins the merge-back contract of
// DESIGN.md §11 at the consolidation layer: simulate a mid-campaign death —
// member 1's keys were replayed in full to member 2 (the new rendezvous
// owner) while member 1's recovered WAL still holds partial copies — then
// dedup the merged snapshot and consolidate. The output must be
// record-for-record identical to consolidating the never-partitioned single
// store: the overlap window adds nothing and loses nothing.
func TestDedupedFailoverMergeMatchesSingleStore(t *testing.T) {
	single := synthWorld(t, 4, 11, 7)
	defer single.Close()

	const members = 3
	const dead = 1 // member whose keys failed over to member 2
	dbs := make([]*sirendb.DB, members)
	for k := range dbs {
		db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		dbs[k] = db
		defer db.Close()
	}

	groups := make([][]wire.Message, members)
	deadRuns := make(map[[2]string][]wire.Message) // (job, host) -> full run
	for _, m := range single.All() {
		k := wire.PartitionIndex([]byte(m.JobID), []byte(m.Host), members)
		if k == dead {
			key := [2]string{m.JobID, m.Host}
			deadRuns[key] = append(deadRuns[key], m)
			continue
		}
		groups[k] = append(groups[k], m)
	}
	if len(deadRuns) == 0 {
		t.Fatal("no keys owned by the dead member; grow the corpus")
	}
	// The new owner (member 2) holds every dead-member key in full (the
	// journal replay); the dead member's recovered WAL holds a partial
	// prefix of each run (the rows it ingested before SIGKILL).
	for _, run := range deadRuns {
		groups[2] = append(groups[2], run...)
		groups[dead] = append(groups[dead], run[:len(run)/2]...)
	}

	snaps := make([]*sirendb.Snapshot, members)
	for k, db := range dbs {
		if len(groups[k]) == 0 {
			t.Fatalf("member %d empty; grow the corpus", k)
		}
		if err := db.InsertBatch(groups[k]); err != nil {
			t.Fatal(err)
		}
		snaps[k] = db.Snapshot()
	}

	merged := sirendb.MergeSnapshots(snaps)
	preDedup := merged.Count()
	st := merged.DedupOverlaps()
	if st.OverlappingKeys == 0 || st.SuppressedRuns == 0 {
		t.Fatalf("dedup found nothing to do: %+v", st)
	}
	if st.Conflicts != 0 {
		t.Fatalf("pure-failover overlap produced conflicts: %+v", st)
	}
	if merged.Count() != single.Count() {
		t.Fatalf("deduped merged Count = %d, want %d (single store); pre-dedup %d",
			merged.Count(), single.Count(), preDedup)
	}

	want, wantStats := ConsolidateSnapshot(single.Snapshot(), StreamOptions{})
	got, gotStats := ConsolidateSnapshot(merged, StreamOptions{})
	if gotStats != wantStats {
		t.Errorf("stats diverged: deduped merged %+v, single %+v", gotStats, wantStats)
	}
	if len(got) != len(want) {
		t.Fatalf("record count: deduped merged %d, single %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d diverged:\nmerged %+v\nsingle %+v", i, got[i], want[i])
		}
	}
}
