// Sealed-tier equivalence: consolidating a store whose history lives in
// sealed runs (plus a WAL head) must produce the byte-identical report to
// consolidating the same campaign replayed entirely from the WAL — the
// storage tier is invisible to analysis. Single store and merged
// multi-member deployments, mixed seal states included.
package postprocess

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"siren/internal/sirendb"
	"siren/internal/wire"
)

// reportBytes serializes a consolidated report — stats then every record —
// into the byte form the equivalence tests compare. synthWorld gives every
// (job, process) a unique (Time, JobID, PID, ExeHash), so SortRecords'
// order is total and the serialization deterministic.
func reportBytes(recs []*ProcessRecord, stats Stats) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "stats %+v\n", stats)
	for _, r := range recs {
		fmt.Fprintf(&buf, "%+v\n", *r)
	}
	return buf.Bytes()
}

// diffReports fails the test with the first diverging line of two reports.
func diffReports(t *testing.T, name string, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("%s: report line %d diverged:\ngot  %s\nwant %s", name, i, gl[i], wl[i])
		}
	}
	t.Fatalf("%s: report length diverged: got %d lines, want %d", name, len(gl), len(wl))
}

// TestSealedConsolidationMatchesReplay: one campaign, three storage shapes
// — in-memory, persistent replayed wholly from the WAL, and persistent with
// two sealed generations plus a live head — all consolidate to the same
// bytes.
func TestSealedConsolidationMatchesReplay(t *testing.T) {
	ref := synthWorld(t, 4, 11, 7)
	defer ref.Close()
	msgs := ref.All() // in-memory store: global insertion order
	want := reportBytes(ConsolidateSnapshot(ref.Snapshot(), StreamOptions{}))

	// Replay-the-world: every row rides the WAL through a reopen.
	replayPath := filepath.Join(t.TempDir(), "replay.wal")
	rdb, err := sirendb.OpenOptions(replayPath, sirendb.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := rdb.InsertBatch(msgs); err != nil {
		t.Fatal(err)
	}
	if err := rdb.Close(); err != nil {
		t.Fatal(err)
	}
	rdb, err = sirendb.OpenOptions(replayPath, sirendb.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	diffReports(t, "replayed",
		reportBytes(ConsolidateSnapshot(rdb.Snapshot(), StreamOptions{})), want)

	// Sealed: two generations of runs plus an unsealed head, reopened so
	// the runs are served from their files in O(index).
	sealedPath := filepath.Join(t.TempDir(), "sealed.wal")
	sdb, err := sirendb.OpenOptions(sealedPath, sirendb.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	third := len(msgs) / 3
	for _, step := range []struct {
		rows []wire.Message
		seal bool
	}{
		{msgs[:third], true},
		{msgs[third : 2*third], true},
		{msgs[2*third:], false},
	} {
		if err := sdb.InsertBatch(step.rows); err != nil {
			t.Fatal(err)
		}
		if step.seal {
			if err := sdb.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Before the reopen: the live post-seal store already serves both tiers.
	diffReports(t, "sealed live",
		reportBytes(ConsolidateSnapshot(sdb.Snapshot(), StreamOptions{})), want)
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}
	sdb, err = sirendb.OpenOptions(sealedPath, sirendb.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	if st := sdb.Stats(); st.SealedGen != 2 || st.SealedRows == 0 {
		t.Fatalf("premise broken: store is not sealed: %+v", st)
	}
	diffReports(t, "sealed reopened",
		reportBytes(ConsolidateSnapshot(sdb.Snapshot(), StreamOptions{})), want)

	// The incremental-refresh surface agrees across tiers too.
	refJobs := ref.Snapshot().JobsChangedSince(0)
	sealedJobs := sdb.Snapshot().JobsChangedSince(0)
	if fmt.Sprint(refJobs) != fmt.Sprint(sealedJobs) {
		t.Fatalf("JobsChangedSince diverged: sealed %v, reference %v", sealedJobs, refJobs)
	}
}

// TestSealedMergedConsolidationMatchesSingleStore: a partitioned
// multi-receiver deployment where each member is in a different seal state
// (fully sealed / sealed plus head / never sealed) consolidates through
// MergeSnapshots to the same bytes as the single-store campaign.
func TestSealedMergedConsolidationMatchesSingleStore(t *testing.T) {
	single := synthWorld(t, 4, 11, 7)
	defer single.Close()
	want := reportBytes(ConsolidateSnapshot(single.Snapshot(), StreamOptions{}))

	const members = 3
	groups := make([][]wire.Message, members)
	for _, m := range single.All() {
		k := wire.PartitionIndex([]byte(m.JobID), []byte(m.Host), members)
		groups[k] = append(groups[k], m)
	}
	snaps := make([]*sirendb.Snapshot, members)
	dir := t.TempDir()
	for k := range groups {
		if len(groups[k]) == 0 {
			t.Fatalf("partition %d/%d empty; grow the corpus", k, members)
		}
		path := filepath.Join(dir, fmt.Sprintf("member-%d.wal", k))
		db, err := sirendb.OpenOptions(path, sirendb.Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		switch k {
		case 0: // fully sealed
			if err := db.InsertBatch(groups[k]); err != nil {
				t.Fatal(err)
			}
			if err := db.Seal(); err != nil {
				t.Fatal(err)
			}
		case 1: // sealed generation plus live head
			half := len(groups[k]) / 2
			if err := db.InsertBatch(groups[k][:half]); err != nil {
				t.Fatal(err)
			}
			if err := db.Seal(); err != nil {
				t.Fatal(err)
			}
			if err := db.InsertBatch(groups[k][half:]); err != nil {
				t.Fatal(err)
			}
		default: // never sealed
			if err := db.InsertBatch(groups[k]); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		db, err = sirendb.OpenOptions(path, sirendb.Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		snaps[k] = db.Snapshot()
	}

	diffReports(t, "merged mixed-seal",
		reportBytes(ConsolidateSnapshot(sirendb.MergeSnapshots(snaps), StreamOptions{})), want)
}
