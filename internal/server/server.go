// Package server is the online query tier: an HTTP JSON API answering
// recognition requests against a catalog of consolidated fingerprints while
// ingest keeps running. Every handler loads the current catalog generation
// exactly once and serves the whole request from that immutable state, so a
// response is always internally consistent and reflects every stored row
// with seq <= its reported last_seq — the serving-side face of the snapshot
// consistency contract (DESIGN.md §8).
//
// API (all responses JSON):
//
//	POST /api/v1/identify            six characteristic digests in, top-K
//	                                 similarity ranking out (Table 7 math)
//	GET  /api/v1/jobs                jobs of the served generation
//	GET  /api/v1/clusters?threshold= similarity clusters of user executables
//	GET  /api/v1/report              full evaluation (report.JSONReport)
//	GET  /api/v1/stats               catalog generation + request counters
//	GET  /healthz                    liveness
//	GET  /debug/vars                 per-endpoint latency expvars
//	GET  /metrics                    Prometheus text exposition (internal/obs)
//
// Every endpoint is instrumented with a log-bucketed latency histogram
// (internal/obs) alongside the original cumulative expvar counters, so
// /api/v1/stats reports tail percentiles, /metrics serves scrapers, and the
// /debug/vars shapes existing tooling parses stay byte-compatible.
//
// The server owns a dedicated mux and http.Server — nothing registers on
// http.DefaultServeMux, and nothing publishes to the global expvar registry,
// so many servers coexist in one process (tests, a receiver serving next to
// its expvar listener) and Shutdown drains cleanly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"siren/internal/analysis"
	"siren/internal/catalog"
	"siren/internal/obs"
	"siren/internal/report"
	"siren/internal/ssdeep"
)

// DefaultTopK is the identify ranking depth when the request does not ask
// for one.
const DefaultTopK = 10

// endpointVars are one endpoint's counters, exposed both under /debug/vars
// and inside /api/v1/stats. The expvar ints are the backward-compatible
// cumulative counters; lat is the obs histogram behind the percentile
// fields and the /metrics exposition.
type endpointVars struct {
	Requests  expvar.Int
	Errors    expvar.Int
	LatencyNS expvar.Int
	lat       *obs.Histogram
}

// Server is the query tier over one catalog.
type Server struct {
	cat  *catalog.Catalog
	mux  *http.ServeMux
	hs   *http.Server
	vars *expvar.Map   // unregistered: never touches the global expvar registry
	reg  *obs.Registry // the /metrics registry; shared when injected via NewWithMetrics

	endpoints map[string]*endpointVars
	started   time.Time

	// Derived-artifact memo for the current generation: report assembly and
	// clustering are deterministic over an immutable generation, so repeated
	// polls must not recompute them (clustering is O(n²) ssdeep
	// comparisons). Entries carry their own sync.Once, so K concurrent cold
	// polls of one key compute once and share the result, while other keys
	// and endpoints proceed untouched (cacheMu is never held across a
	// compute or a network write). Evicted when the generation advances.
	cacheMu        sync.Mutex
	cacheGen       uint64
	cachedReport   *reportEntry
	cachedClusters map[string]*clustersEntry
}

// reportEntry / clustersEntry are once-per-generation computations.
type reportEntry struct {
	once sync.Once
	rep  *report.JSONReport
}

type clustersEntry struct {
	once sync.Once
	resp *ClustersResponse
}

// New builds a server over cat with a dedicated mux and its own private
// metrics registry (served on GET /metrics).
func New(cat *catalog.Catalog) *Server {
	return NewWithMetrics(cat, nil)
}

// NewWithMetrics builds a server whose instruments register into reg, so a
// process running several tiers (a receiver with -serve-addr) exposes one
// unified /metrics covering all of them. A nil reg gets a private registry.
func NewWithMetrics(cat *catalog.Catalog, reg *obs.Registry) *Server {
	if reg == nil {
		reg = obs.NewRegistry("siren-server")
	}
	s := &Server{
		cat:            cat,
		mux:            http.NewServeMux(),
		vars:           new(expvar.Map).Init(),
		reg:            reg,
		endpoints:      make(map[string]*endpointVars),
		started:        time.Now(),
		cachedClusters: make(map[string]*clustersEntry),
	}
	s.hs = &http.Server{Handler: s.mux}

	s.handle("identify", "/api/v1/identify", s.handleIdentify)
	s.handle("jobs", "/api/v1/jobs", s.handleJobs)
	s.handle("clusters", "/api/v1/clusters", s.handleClusters)
	s.handle("report", "/api/v1/report", s.handleReport)
	s.handle("stats", "/api/v1/stats", s.handleStats)
	s.handle("healthz", "/healthz", s.handleHealthz)
	s.vars.Set("siren_catalog", expvar.Func(func() any {
		g := cat.Generation()
		return map[string]any{
			"generation": g.Gen,
			"last_seq":   g.LastSeq,
			"jobs":       g.Stats.Jobs,
			"processes":  g.Stats.Processes,
			"refreshes":  cat.Refreshes(),
		}
	}))
	s.vars.Set("siren_metrics", s.reg.Expvar())
	s.mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		io.WriteString(w, s.vars.String())
	})
	s.mux.Handle("/metrics", s.reg.Handler())
	return s
}

// Metrics returns the server's registry — the injection point for callers
// that want to add their own instruments to this server's /metrics.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// apiError carries an HTTP status with its message.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// committedWriter tracks whether the response header has been sent, so the
// error path never writes a second header into a partially streamed body.
type committedWriter struct {
	http.ResponseWriter
	committed bool
}

func (cw *committedWriter) WriteHeader(status int) {
	cw.committed = true
	cw.ResponseWriter.WriteHeader(status)
}

func (cw *committedWriter) Write(p []byte) (int, error) {
	cw.committed = true
	return cw.ResponseWriter.Write(p)
}

// handle wires one instrumented endpoint: request/error counters and a
// cumulative latency gauge per endpoint, grouped under "endpoint_<name>" in
// the vars map.
func (s *Server) handle(name, pattern string, h func(w http.ResponseWriter, r *http.Request) error) {
	ev := &endpointVars{lat: s.reg.Histogram("siren_http_request_ns", "request latency per endpoint", obs.L("endpoint", name))}
	s.endpoints[name] = ev
	em := new(expvar.Map).Init()
	em.Set("requests", &ev.Requests)
	em.Set("errors", &ev.Errors)
	em.Set("latency_ns_total", &ev.LatencyNS)
	s.vars.Set("endpoint_"+name, em)

	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		cw := &committedWriter{ResponseWriter: w}
		err := h(cw, r)
		elapsed := time.Since(start)
		ev.Requests.Add(1)
		ev.LatencyNS.Add(elapsed.Nanoseconds())
		ev.lat.Observe(elapsed)
		if err == nil {
			return
		}
		if cw.committed {
			// The 200 header (and part of the body) is already on the wire
			// — almost always a client that went away mid-response. Writing
			// an error header now would be a protocol violation, and
			// counting it would inflate the operator-facing error gauge
			// with every disconnect.
			return
		}
		ev.Errors.Add(1)
		status := http.StatusInternalServerError
		var ae *apiError
		if errors.As(err, &ae) {
			status = ae.status
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
	})
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	return json.NewEncoder(w).Encode(v)
}

// ---------------------------------------------------------------------------
// Request/response shapes. Similarity rows reuse report.JSONSimilarityRow —
// the same structs siren-analyze -json emits.

// IdentifyRequest is the identify body: the six characteristic digests of an
// unknown executable (any subset may be empty, but not all), plus ranking
// controls.
type IdentifyRequest struct {
	ModulesH   string `json:"modules_h"`
	CompilersH string `json:"compilers_h"`
	ObjectsH   string `json:"objects_h"`
	FileH      string `json:"file_h"`
	StringsH   string `json:"strings_h"`
	SymbolsH   string `json:"symbols_h"`
	// Top bounds the ranking (0 = DefaultTopK, negative = all rows).
	Top int `json:"top"`
	// Backend names the edit distance: weighted (default) | damerau |
	// levenshtein.
	Backend string `json:"backend"`
}

// IdentifyResponse is the ranking plus the generation it was computed
// against.
type IdentifyResponse struct {
	Generation uint64                     `json:"generation"`
	LastSeq    uint64                     `json:"last_seq"`
	Rows       []report.JSONSimilarityRow `json:"rows"`
}

// JobsResponse lists the jobs of the served generation.
type JobsResponse struct {
	Generation uint64    `json:"generation"`
	LastSeq    uint64    `json:"last_seq"`
	Jobs       []JobJSON `json:"jobs"`
}

// JobJSON is one job summary.
type JobJSON struct {
	JobID     string `json:"job_id"`
	Processes int    `json:"processes"`
	Messages  int    `json:"messages"`
}

// ClusterJSON is one similarity cluster.
type ClusterJSON struct {
	DominantLabel string   `json:"dominant_label"`
	Labels        []string `json:"labels"`
	Members       []string `json:"members"`
	Processes     int      `json:"processes"`
}

// ClustersResponse is the clusters listing.
type ClustersResponse struct {
	Generation uint64        `json:"generation"`
	LastSeq    uint64        `json:"last_seq"`
	Threshold  int           `json:"threshold"`
	Purity     float64       `json:"purity"`
	Clusters   []ClusterJSON `json:"clusters"`
}

// ReportResponse wraps the shared report shape with the generation header.
type ReportResponse struct {
	Generation uint64             `json:"generation"`
	LastSeq    uint64             `json:"last_seq"`
	Report     *report.JSONReport `json:"report"`
}

// EndpointStats are one endpoint's counters in /api/v1/stats. The original
// cumulative fields are kept byte-compatible; the percentile fields are
// additive, derived from the endpoint's latency histogram — a cumulative
// sum divided by requests is a mean, and a mean hides exactly the tail an
// operator is hunting.
type EndpointStats struct {
	Requests       int64 `json:"requests"`
	Errors         int64 `json:"errors"`
	LatencyNSTotal int64 `json:"latency_ns_total"`
	LatencyP50NS   int64 `json:"latency_p50_ns"`
	LatencyP90NS   int64 `json:"latency_p90_ns"`
	LatencyP99NS   int64 `json:"latency_p99_ns"`
	LatencyMaxNS   int64 `json:"latency_max_ns"`
}

// RefreshJSON describes the catalog's most recent refresh pass.
type RefreshJSON struct {
	Gen            uint64 `json:"generation"`
	LastSeq        uint64 `json:"last_seq"`
	NewRows        uint64 `json:"new_rows"`
	Jobs           int    `json:"jobs"`
	Reconsolidated int    `json:"reconsolidated"`
	Carried        int    `json:"carried"`
	NoOp           bool   `json:"noop"`
	ElapsedNS      int64  `json:"elapsed_ns"`
}

// StatsResponse is the serving-tier stats summary.
type StatsResponse struct {
	Generation   uint64                   `json:"generation"`
	LastSeq      uint64                   `json:"last_seq"`
	Jobs         int                      `json:"jobs"`
	Processes    int                      `json:"processes"`
	Fingerprints int                      `json:"fingerprints"`
	Refreshes    uint64                   `json:"refreshes"`
	LastRefresh  *RefreshJSON             `json:"last_refresh,omitempty"`
	UptimeNS     int64                    `json:"uptime_ns"`
	Endpoints    map[string]EndpointStats `json:"endpoints"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
}

// ---------------------------------------------------------------------------
// Handlers. Each loads the generation pointer once; everything it returns is
// computed from that one immutable state.

func (s *Server) handleIdentify(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodPost {
		return &apiError{status: http.StatusMethodNotAllowed, msg: "identify wants POST"}
	}
	var req IdentifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return badRequest("bad identify body: %v", err)
	}
	q := analysis.Digests{
		Modules:   req.ModulesH,
		Compilers: req.CompilersH,
		Objects:   req.ObjectsH,
		File:      req.FileH,
		Strings:   req.StringsH,
		Symbols:   req.SymbolsH,
	}
	if q.Empty() {
		return badRequest("identify needs at least one characteristic digest")
	}
	backend, err := ssdeep.ParseBackend(req.Backend)
	if err != nil {
		return badRequest("%v", err)
	}
	top := req.Top
	switch {
	case top == 0:
		top = DefaultTopK
	case top < 0:
		top = 0 // FingerprintIndex.Search: <= 0 returns all rows
	}
	g := s.cat.Generation()
	return writeJSON(w, IdentifyResponse{
		Generation: g.Gen,
		LastSeq:    g.LastSeq,
		Rows:       report.JSONSimilarityRows(g.Index.Search(q, top, backend)),
	})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodGet {
		return &apiError{status: http.StatusMethodNotAllowed, msg: "jobs wants GET"}
	}
	g := s.cat.Generation()
	resp := JobsResponse{Generation: g.Gen, LastSeq: g.LastSeq, Jobs: []JobJSON{}}
	for _, j := range g.Jobs() {
		resp.Jobs = append(resp.Jobs, JobJSON{JobID: j.JobID, Processes: j.Processes, Messages: j.Messages})
	}
	return writeJSON(w, resp)
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodGet {
		return &apiError{status: http.StatusMethodNotAllowed, msg: "clusters wants GET"}
	}
	ts := r.URL.Query().Get("threshold")
	if ts == "" {
		return badRequest("clusters needs ?threshold=1..100")
	}
	threshold, err := strconv.Atoi(ts)
	if err != nil || threshold < 1 || threshold > 100 {
		return badRequest("bad threshold %q: want 1..100", ts)
	}
	backend, err := ssdeep.ParseBackend(r.URL.Query().Get("backend"))
	if err != nil {
		return badRequest("%v", err)
	}
	g := s.cat.Generation()
	compute := func() *ClustersResponse {
		cs := g.Dataset.SimilarityClusters(threshold, backend)
		purity, _ := analysis.ClusterPurity(cs)
		resp := &ClustersResponse{
			Generation: g.Gen, LastSeq: g.LastSeq,
			Threshold: threshold, Purity: purity, Clusters: []ClusterJSON{},
		}
		for _, c := range cs {
			cj := ClusterJSON{DominantLabel: c.DominantLabel(), Labels: c.Labels, Processes: c.Processes}
			for _, m := range c.Members {
				cj.Members = append(cj.Members, m.Exe)
			}
			resp.Clusters = append(resp.Clusters, cj)
		}
		return resp
	}
	key := fmt.Sprintf("%d|%d", threshold, backend)
	s.cacheMu.Lock()
	atGen := s.cacheAtLocked(g.Gen)
	var e *clustersEntry
	if atGen {
		if e = s.cachedClusters[key]; e == nil {
			e = &clustersEntry{}
			s.cachedClusters[key] = e
		}
	}
	s.cacheMu.Unlock()
	if e == nil {
		// A refresh landed between loading g and taking the lock: answer
		// from g uncached rather than polluting the newer generation's memo.
		return writeJSON(w, compute())
	}
	e.once.Do(func() { e.resp = compute() })
	return writeJSON(w, e.resp)
}

// cacheAtLocked advances the derived-artifact memo to gen when gen is newer
// and reports whether the memo is at gen. Generations are monotone, so a
// request that loaded an older generation pointer (a refresh landed between
// its load and the lock) must neither read nor wipe the newer generation's
// cache — it computes its answer uncached instead. Caller holds cacheMu.
func (s *Server) cacheAtLocked(gen uint64) bool {
	if gen > s.cacheGen {
		s.cacheGen = gen
		s.cachedReport = nil
		s.cachedClusters = make(map[string]*clustersEntry)
	}
	return s.cacheGen == gen
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodGet {
		return &apiError{status: http.StatusMethodNotAllowed, msg: "report wants GET"}
	}
	g := s.cat.Generation()
	s.cacheMu.Lock()
	var e *reportEntry
	if s.cacheAtLocked(g.Gen) {
		if e = s.cachedReport; e == nil {
			e = &reportEntry{}
			s.cachedReport = e
		}
	}
	s.cacheMu.Unlock()
	rep := (*report.JSONReport)(nil)
	if e != nil {
		e.once.Do(func() { e.rep = report.BuildJSON(g.Dataset, g.Stats) })
		rep = e.rep
	} else {
		// Stale generation pointer (refresh raced the lock): uncached.
		rep = report.BuildJSON(g.Dataset, g.Stats)
	}
	return writeJSON(w, ReportResponse{
		Generation: g.Gen,
		LastSeq:    g.LastSeq,
		Report:     rep,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	if r.Method != http.MethodGet {
		return &apiError{status: http.StatusMethodNotAllowed, msg: "stats wants GET"}
	}
	g := s.cat.Generation()
	resp := StatsResponse{
		Generation:   g.Gen,
		LastSeq:      g.LastSeq,
		Jobs:         g.Stats.Jobs,
		Processes:    g.Stats.Processes,
		Fingerprints: g.Index.Len(),
		Refreshes:    s.cat.Refreshes(),
		UptimeNS:     time.Since(s.started).Nanoseconds(),
		Endpoints:    make(map[string]EndpointStats, len(s.endpoints)),
	}
	if rs, ok := s.cat.LastRefresh(); ok {
		resp.LastRefresh = &RefreshJSON{
			Gen: rs.Gen, LastSeq: rs.LastSeq, NewRows: rs.NewRows, Jobs: rs.Jobs,
			Reconsolidated: rs.Reconsolidated, Carried: rs.Carried, NoOp: rs.NoOp,
			ElapsedNS: rs.Elapsed.Nanoseconds(),
		}
	}
	for name, ev := range s.endpoints {
		hs := ev.lat.Snapshot()
		resp.Endpoints[name] = EndpointStats{
			Requests:       ev.Requests.Value(),
			Errors:         ev.Errors.Value(),
			LatencyNSTotal: ev.LatencyNS.Value(),
			LatencyP50NS:   hs.P50,
			LatencyP90NS:   hs.P90,
			LatencyP99NS:   hs.P99,
			LatencyMaxNS:   hs.Max,
		}
	}
	return writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	return writeJSON(w, HealthResponse{Status: "ok", Generation: s.cat.Generation().Gen})
}

// ---------------------------------------------------------------------------
// Lifecycle.

// Handler exposes the dedicated mux (httptest servers, embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown; it returns
// http.ErrServerClosed after a clean shutdown, exactly as http.Server.Serve.
func (s *Server) Serve(ln net.Listener) error { return s.hs.Serve(ln) }

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight requests drain until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error { return s.hs.Shutdown(ctx) }
