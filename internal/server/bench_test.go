// Identify throughput: queries per second through the full handler stack
// (mux, instrumentation, JSON decode/encode, index search) without socket
// overhead, serial and parallel — the serving-tier numbers EXPERIMENTS.md
// §6 records. make bench-serve runs the suite.
package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"siren/internal/catalog"
	"siren/internal/server"
	"siren/internal/sirendb"
)

func benchServer(b *testing.B, jobs int) (http.Handler, []byte) {
	b.Helper()
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	for j := 0; j < jobs; j++ {
		seedJob(b, db, j, 1733900000+int64(j))
	}
	cat := catalog.New(catalog.StoreSource(db), catalog.Options{})
	cat.Refresh()
	body, _ := json.Marshal(server.IdentifyRequest{FileH: digest(b, appContent("lammps", 39))})
	return server.New(cat).Handler(), body
}

func BenchmarkIdentify(b *testing.B) {
	for _, jobs := range []int{16, 64} {
		h, body := benchServer(b, jobs)
		do := func(b *testing.B) {
			req := httptest.NewRequest(http.MethodPost, "/api/v1/identify", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("identify status = %d: %s", w.Code, w.Body)
			}
		}
		b.Run(fmt.Sprintf("serial/jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				do(b)
			}
		})
		b.Run(fmt.Sprintf("parallel/jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					do(b)
				}
			})
		})
	}
}
