// Query-tier tests: endpoint contracts over a static catalog, and the
// acceptance e2e — identify answers over a live, concurrently ingesting
// store must equal the offline Table 7 search on a snapshot at the served
// generation. Run with -race via make test-serve.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"siren/internal/analysis"
	"siren/internal/catalog"
	"siren/internal/postprocess"
	"siren/internal/report"
	"siren/internal/server"
	"siren/internal/sirendb"
	"siren/internal/ssdeep"
	"siren/internal/wire"
)

// appContent/digest/procMessages/seedJob mirror the catalog test fixtures:
// one contiguous edit block per build keeps CTPH digests of one app similar
// while different apps stay unrelated.
func appContent(app string, variant int) string {
	h := 0
	for _, c := range app {
		h = h*31 + int(c)
	}
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		if variant > 0 && i == (variant*9)%390 {
			for e := 0; e < 5; e++ {
				fmt.Fprintf(&sb, "%s build-edit v%d line %d\n", app, variant, e)
			}
		}
		fmt.Fprintf(&sb, "%s log %04d: residual %d.%03d at step %d sym_%06d\n",
			app, i, (h+i)%7, (i*37+h)%1000, i*3, (h+i*1009)%999983)
	}
	return sb.String()
}

func digest(t testing.TB, content string) string {
	t.Helper()
	d, err := ssdeep.HashString(content)
	if err != nil {
		t.Fatalf("HashString: %v", err)
	}
	return d
}

func procMessages(t testing.TB, job, host string, pid int, tm int64, exe, app string, variant int) []wire.Message {
	mk := func(typ, content string) wire.Message {
		return wire.Message{
			Header: wire.Header{
				JobID: job, StepID: "0", PID: pid, Hash: fmt.Sprintf("%032x", pid),
				Host: host, Time: tm, Layer: wire.LayerSelf, Type: typ, Seq: 0, Total: 1,
			},
			Content: []byte(content),
		}
	}
	return []wire.Message{
		mk(wire.TypeMetadata, fmt.Sprintf("EXE=%s\nCATEGORY=user\nUID=%d\nGID=100", exe, 1000+variant%3)),
		mk(wire.TypeFileH, digest(t, appContent(app, variant))),
		mk(wire.TypeStringsH, digest(t, appContent(app+"/strings", variant))),
		mk(wire.TypeSymbolsH, digest(t, appContent(app+"/symbols", variant))),
		mk(wire.TypeObjectsH, digest(t, appContent(app+"/objects", variant))),
		mk(wire.TypeModulesH, digest(t, appContent(app+"/modules", variant))),
		mk(wire.TypeCompilersH, digest(t, appContent(app+"/compilers", variant))),
	}
}

func seedJob(t testing.TB, db *sirendb.DB, jobN int, tm int64) {
	apps := []struct{ exe, app string }{
		{"/appl/lammps/bin/lmp_gpu", "lammps"},
		{"/appl/gromacs/bin/gmx", "gromacs"},
		{"/usr/bin/gzip", "gzip"},
	}
	a := apps[jobN%len(apps)]
	job := fmt.Sprintf("job-%d", jobN)
	for h := 0; h < 2; h++ {
		msgs := procMessages(t, job, fmt.Sprintf("nid%04d", h), 100+jobN*10+h, tm, a.exe, a.app, jobN+1)
		if err := db.InsertBatch(msgs); err != nil {
			t.Fatal(err)
		}
	}
	if jobN == 0 {
		if err := db.InsertBatch(procMessages(t, job, "nid0000", 999, tm, "/users/u1/a.out", "lammps", 39)); err != nil {
			t.Fatal(err)
		}
	}
}

// newServed builds a store with n jobs, a refreshed catalog, and an
// httptest server over the query mux.
func newServed(t testing.TB, jobs int) (*sirendb.DB, *catalog.Catalog, *httptest.Server) {
	t.Helper()
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for j := 0; j < jobs; j++ {
		seedJob(t, db, j, 1733900000+int64(j))
	}
	cat := catalog.New(catalog.StoreSource(db), catalog.Options{})
	cat.Refresh()
	ts := httptest.NewServer(server.New(cat).Handler())
	t.Cleanup(ts.Close)
	return db, cat, ts
}

func getJSON(t testing.TB, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp
}

func postIdentify(t testing.TB, url string, req server.IdentifyRequest) (server.IdentifyResponse, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/api/v1/identify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST identify: %v", err)
	}
	defer resp.Body.Close()
	var out server.IdentifyResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("identify: decoding: %v", err)
		}
	}
	return out, resp
}

func TestIdentifyEndpoint(t *testing.T) {
	_, cat, ts := newServed(t, 6)
	gen := cat.Generation()
	unknown, ok := gen.Dataset.FindUnknown()
	if !ok {
		t.Fatal("no UNKNOWN baseline")
	}

	out, resp := postIdentify(t, ts.URL, server.IdentifyRequest{
		ModulesH:   unknown.ModulesH,
		CompilersH: unknown.CompilersH,
		ObjectsH:   unknown.ObjectsH,
		FileH:      unknown.FileH,
		StringsH:   unknown.StringsH,
		SymbolsH:   unknown.SymbolsH,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("identify status = %d", resp.StatusCode)
	}
	if out.Generation != gen.Gen || out.LastSeq != gen.LastSeq {
		t.Errorf("identify generation = %d/%d, want %d/%d", out.Generation, out.LastSeq, gen.Gen, gen.LastSeq)
	}
	want := report.JSONSimilarityRows(gen.Dataset.SimilaritySearch(unknown, server.DefaultTopK, ssdeep.BackendWeighted))
	if !reflect.DeepEqual(out.Rows, want) {
		t.Errorf("identify rows diverge from offline SimilaritySearch:\n got  %+v\n want %+v", out.Rows, want)
	}
	if len(out.Rows) == 0 || out.Rows[0].Label != "LAMMPS" {
		t.Errorf("unknown lammps build not identified: %+v", out.Rows)
	}

	// Single-digest queries and explicit backends work too.
	out, resp = postIdentify(t, ts.URL, server.IdentifyRequest{FileH: unknown.FileH, Top: 3, Backend: "damerau"})
	if resp.StatusCode != http.StatusOK || len(out.Rows) > 3 {
		t.Errorf("top-3 damerau identify: status %d rows %d", resp.StatusCode, len(out.Rows))
	}

	// Error surface: wrong method, empty query, junk body, bad backend.
	if r := getJSON(t, ts.URL+"/api/v1/identify", nil); r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET identify status = %d, want 405", r.StatusCode)
	}
	if _, r := postIdentify(t, ts.URL, server.IdentifyRequest{}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("empty identify status = %d, want 400", r.StatusCode)
	}
	if _, r := postIdentify(t, ts.URL, server.IdentifyRequest{FileH: "x", Backend: "md5"}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad-backend identify status = %d, want 400", r.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/api/v1/identify", "application/json", strings.NewReader(`{"file_h": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk body identify status = %d, want 400", resp.StatusCode)
	}
}

func TestReadEndpoints(t *testing.T) {
	_, cat, ts := newServed(t, 6)
	gen := cat.Generation()

	var health server.HealthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" || health.Generation != gen.Gen {
		t.Errorf("healthz = %+v", health)
	}

	var jobs server.JobsResponse
	getJSON(t, ts.URL+"/api/v1/jobs", &jobs)
	if len(jobs.Jobs) != 6 || jobs.Generation != gen.Gen {
		t.Fatalf("jobs = %+v", jobs)
	}
	if jobs.Jobs[0].JobID != "job-0" || jobs.Jobs[0].Processes != 3 {
		t.Errorf("job-0 summary = %+v, want 3 processes", jobs.Jobs[0])
	}

	var rep server.ReportResponse
	getJSON(t, ts.URL+"/api/v1/report", &rep)
	want := report.BuildJSON(gen.Dataset, gen.Stats)
	got, _ := json.Marshal(rep.Report)
	wantB, _ := json.Marshal(want)
	if !bytes.Equal(got, wantB) {
		t.Errorf("report diverges from report.BuildJSON:\n got  %s\n want %s", got, wantB)
	}

	var clusters server.ClustersResponse
	getJSON(t, ts.URL+"/api/v1/clusters?threshold=55", &clusters)
	if clusters.Threshold != 55 || len(clusters.Clusters) == 0 {
		t.Errorf("clusters = %+v", clusters)
	}
	if r := getJSON(t, ts.URL+"/api/v1/clusters", nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("threshold-less clusters status = %d, want 400", r.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/api/v1/clusters?threshold=999", nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range threshold status = %d, want 400", r.StatusCode)
	}

	var stats server.StatsResponse
	getJSON(t, ts.URL+"/api/v1/stats", &stats)
	if stats.Generation != gen.Gen || stats.Fingerprints != gen.Index.Len() {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Endpoints["jobs"].Requests < 1 || stats.Endpoints["clusters"].Errors < 2 {
		t.Errorf("endpoint counters not moving: %+v", stats.Endpoints)
	}
	if stats.Endpoints["jobs"].LatencyNSTotal <= 0 {
		t.Errorf("jobs latency gauge = %d, want > 0", stats.Endpoints["jobs"].LatencyNSTotal)
	}

	// The per-endpoint expvars are served off the dedicated mux.
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Catalog struct {
			Generation uint64 `json:"generation"`
		} `json:"siren_catalog"`
		Jobs struct {
			Requests int64 `json:"requests"`
		} `json:"endpoint_jobs"`
	}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	if vars.Catalog.Generation != gen.Gen || vars.Jobs.Requests < 1 {
		t.Errorf("/debug/vars = %s", body)
	}
}

// TestIdentifyDuringLiveIngest is the acceptance e2e: queries run against a
// store that is being written and refreshed concurrently, and at every
// observed generation the server's ranking equals the offline
// Dataset.SimilaritySearch over that same generation's dataset; after the
// final refresh it also equals a cold offline pass over a fresh store
// snapshot.
func TestIdentifyDuringLiveIngest(t *testing.T) {
	db, cat, ts := newServed(t, 2)

	q := server.IdentifyRequest{FileH: digest(t, appContent("lammps", 39))}
	const jobs = 16
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // live ingest + periodic refresh
		defer wg.Done()
		defer close(done)
		for j := 2; j <= jobs; j++ {
			seedJob(t, db, j, 1733900000+int64(j))
			cat.Refresh()
		}
	}()

	var lastGen uint64
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		out, resp := postIdentify(t, ts.URL, q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("identify during ingest: status %d", resp.StatusCode)
		}
		if out.Generation < lastGen {
			t.Fatalf("served generation moved backwards: %d after %d", out.Generation, lastGen)
		}
		lastGen = out.Generation
	}
	wg.Wait()

	// Converged: the served ranking equals both the generation's offline
	// search and a cold consolidation of a fresh snapshot.
	cat.Refresh()
	gen := cat.Generation()
	out, _ := postIdentify(t, ts.URL, q)
	if out.Generation != gen.Gen || out.LastSeq != gen.LastSeq {
		t.Fatalf("post-ingest identify generation = %d/%d, want %d/%d", out.Generation, out.LastSeq, gen.Gen, gen.LastSeq)
	}
	unknown, ok := gen.Dataset.FindUnknown()
	if !ok {
		t.Fatal("no UNKNOWN baseline after ingest")
	}
	if unknown.FileH != q.FileH {
		t.Fatalf("baseline FILE_H diverged from the query digest")
	}
	offline := report.JSONSimilarityRows(
		analysis.NewFingerprintIndex(gen.Dataset.Records).Search(analysis.Digests{File: q.FileH}, server.DefaultTopK, ssdeep.BackendWeighted))
	if !reflect.DeepEqual(out.Rows, offline) {
		t.Errorf("served rows diverge from generation-offline search:\n got  %+v\n want %+v", out.Rows, offline)
	}
	coldData, _ := analysis.ConsolidateDataset(db.Snapshot(), postprocess.StreamOptions{})
	cold := report.JSONSimilarityRows(
		analysis.NewFingerprintIndex(coldData.Records).Search(analysis.Digests{File: q.FileH}, server.DefaultTopK, ssdeep.BackendWeighted))
	if !reflect.DeepEqual(out.Rows, cold) {
		t.Errorf("served rows diverge from cold offline search:\n got  %+v\n want %+v", out.Rows, cold)
	}
	if len(out.Rows) == 0 || out.Rows[0].Label != "LAMMPS" {
		t.Errorf("live-ingested lammps builds not identified: %+v", out.Rows)
	}
}

func TestGracefulShutdown(t *testing.T) {
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	seedJob(t, db, 0, 1733900000)
	cat := catalog.New(catalog.StoreSource(db), catalog.Options{})
	cat.Refresh()

	srv := server.New(cat)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var health server.HealthResponse
	getJSON(t, "http://"+ln.Addr().String()+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("healthz = %+v", health)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if err != http.ErrServerClosed {
			t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
}
