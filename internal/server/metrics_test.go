// Telemetry contract tests for the query tier: the /api/v1/stats JSON stays
// field-for-field backward compatible while gaining percentiles, the
// /debug/vars endpoint shapes stay byte-compatible, and /metrics serves a
// Prometheus exposition with a latency histogram per endpoint.
package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"

	"siren/internal/server"
)

// TestEndpointStatsFieldCompat pins the JSON shape of EndpointStats: the
// three original fields keep their exact names, and the additive percentile
// fields are exactly the four documented ones — nothing silently renamed,
// dropped, or snuck in.
func TestEndpointStatsFieldCompat(t *testing.T) {
	b, err := json.Marshal(server.EndpointStats{
		Requests: 1, Errors: 2, LatencyNSTotal: 3,
		LatencyP50NS: 4, LatencyP90NS: 5, LatencyP99NS: 6, LatencyMaxNS: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"requests":         1,
		"errors":           2,
		"latency_ns_total": 3,
		"latency_p50_ns":   4,
		"latency_p90_ns":   5,
		"latency_p99_ns":   6,
		"latency_max_ns":   7,
	}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("EndpointStats JSON = %v, want exactly %v", m, want)
	}
}

// TestStatsPercentiles drives real requests and checks the percentile
// fields report live histogram data consistent with the cumulative sum.
func TestStatsPercentiles(t *testing.T) {
	_, _, ts := newServed(t, 2)
	for i := 0; i < 20; i++ {
		getJSON(t, ts.URL+"/api/v1/jobs", nil)
	}
	var stats server.StatsResponse
	getJSON(t, ts.URL+"/api/v1/stats", &stats)
	ep, ok := stats.Endpoints["jobs"]
	if !ok {
		t.Fatalf("stats endpoints missing jobs: %v", stats.Endpoints)
	}
	if ep.Requests != 20 {
		t.Fatalf("jobs requests = %d, want 20", ep.Requests)
	}
	if ep.LatencyP50NS <= 0 || ep.LatencyP99NS <= 0 || ep.LatencyMaxNS <= 0 {
		t.Fatalf("percentiles not populated: %+v", ep)
	}
	if ep.LatencyP50NS > ep.LatencyP90NS || ep.LatencyP90NS > ep.LatencyP99NS || ep.LatencyP99NS > ep.LatencyMaxNS {
		t.Fatalf("percentiles not monotone: %+v", ep)
	}
	if ep.LatencyNSTotal <= 0 {
		t.Fatalf("cumulative latency sum lost: %+v", ep)
	}
}

// TestDebugVarsShapeCompat pins the /debug/vars endpoint grouping existing
// scrapers parse: endpoint_<name> maps with exactly the original three keys.
func TestDebugVarsShapeCompat(t *testing.T) {
	_, _, ts := newServed(t, 1)
	getJSON(t, ts.URL+"/api/v1/jobs", nil)
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	var ep map[string]int64
	if err := json.Unmarshal(vars["endpoint_jobs"], &ep); err != nil {
		t.Fatalf("endpoint_jobs: %v", err)
	}
	keys := make([]string, 0, len(ep))
	for k := range ep {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if want := []string{"errors", "latency_ns_total", "requests"}; !reflect.DeepEqual(keys, want) {
		t.Fatalf("endpoint_jobs keys = %v, want %v (scraper compat)", keys, want)
	}
	// The histogram summaries ride along under the new bridged key.
	if _, ok := vars["siren_metrics"]; !ok {
		t.Fatalf("/debug/vars missing siren_metrics bridge; keys: %v", func() []string {
			ks := make([]string, 0, len(vars))
			for k := range vars {
				ks = append(ks, k)
			}
			return ks
		}())
	}
}

// TestMetricsExposition scrapes GET /metrics and checks the per-endpoint
// histogram families are served in Prometheus text format.
func TestMetricsExposition(t *testing.T) {
	_, _, ts := newServed(t, 1)
	for i := 0; i < 3; i++ {
		getJSON(t, ts.URL+"/api/v1/jobs", nil)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE siren_http_request_ns histogram",
		`siren_http_request_ns_count{endpoint="jobs"} 3`,
		`siren_http_request_ns_bucket{endpoint="jobs",le="+Inf"} 3`,
		`siren_http_request_ns_sum{endpoint="jobs"}`,
		`siren_http_request_ns_count{endpoint="identify"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
