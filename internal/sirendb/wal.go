// WAL segment format and recovery.
//
// Each shard appends to its own segment file "<path>.<shard>". A segment
// starts with a 10-byte magic and holds framed records:
//
//	[4B length] [4B checksum] [8B sequence] [payload…]
//
// checksum = uint32(xxhash(payload)) XOR mix(sequence), so a bitflip in
// either the payload or the sequence field is detected; the payload hash is
// computed outside the shard lock and only the cheap XOR happens inside.
// The sequence number is store-wide and strictly increasing within a
// segment, which lets replay (a) restore global insertion order across
// segments and (b) drop the duplicate copy of a record that a
// crash-interrupted Compact left in both a fresh segment and a leftover.
//
// Recovery rules, per segment: a torn record header or payload at any point
// ends replay of that segment (crash mid-append); a framed record whose
// checksum or parse fails is skipped and counted (historic corruption);
// appends resume at the end of the valid prefix, overwriting torn residue —
// the seed implementation appended after the tear, leaving every later
// record unreachable to replay.
//
// Single-file WALs written by earlier versions (records framed as
// [length][checksum][payload] directly in "<path>") are migrated on open:
// rows are re-partitioned into fresh segments, fsynced, and only then is the
// legacy file removed (directory fsynced in between). If segments and the
// legacy file ever coexist, the migration crashed before the removal — the
// legacy file is still the complete store, so the partial segments are
// discarded and the migration redone.
package sirendb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"siren/internal/wire"
	"siren/internal/xxhash"
)

const (
	segMagic     = "SIRENSEG1\n"
	recHdrSize   = 16 // length + checksum + sequence
	legacyHdrLen = 8  // length + checksum
	maxRecordLen = 64 << 20
)

func seqMix(seq uint64) uint32 { return uint32(seq) ^ uint32(seq>>32) }

func segmentPath(base string, i int) string {
	return base + "." + strconv.Itoa(i)
}

// encodeRecords frames ms into one contiguous buffer with zeroed checksum
// and sequence fields, returning each record's offset and payload hash so
// insertShard can patch the sequence in under the shard lock. A message
// exceeding maxRecordLen is rejected up front: replay treats an oversized
// length field as a torn tail, so writing one would make the record — and
// every record after it in the segment — silently unreplayable.
func encodeRecords(ms []wire.Message) (buf []byte, offs []int, sums []uint32, err error) {
	offs = make([]int, len(ms))
	sums = make([]uint32, len(ms))
	var hdr [recHdrSize]byte
	for i := range ms {
		payload := wire.Encode(ms[i])
		if len(payload) > maxRecordLen {
			return nil, nil, nil, fmt.Errorf("sirendb: message of %d bytes exceeds the %d-byte record limit", len(payload), maxRecordLen)
		}
		offs[i] = len(buf)
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
		sums[i] = uint32(xxhash.Sum64(payload))
	}
	return buf, offs, sums, nil
}

func patchRecordSeq(buf []byte, off int, payloadSum uint32, seq uint64) {
	binary.LittleEndian.PutUint32(buf[off+4:], payloadSum^seqMix(seq))
	binary.LittleEndian.PutUint64(buf[off+8:], seq)
}

// appendRecord frames one message with a known sequence (the Compact path).
func appendRecord(buf []byte, m wire.Message, seq uint64) []byte {
	payload := wire.Encode(m)
	var hdr [recHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(xxhash.Sum64(payload))^seqMix(seq))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// writeSegmentSnapshot writes rows as a fresh fsynced segment file and
// returns the still-open handle (positioned at the end, ready to become a
// shard's WAL handle) and its size.
func writeSegmentSnapshot(path string, rows []row) (*os.File, int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, 0, err
	}
	fail := func(err error) (*os.File, int64, error) {
		_ = f.Close() // abandoning the temp; the write error wins
		os.Remove(path)
		return nil, 0, err
	}
	size := int64(0)
	buf := []byte(segMagic)
	for _, r := range rows {
		buf = appendRecord(buf, r.msg, r.seq)
		if len(buf) >= 1<<20 {
			if _, err := f.Write(buf); err != nil {
				return fail(err)
			}
			size += int64(len(buf))
			buf = buf[:0]
		}
	}
	if _, err := f.Write(buf); err != nil {
		return fail(err)
	}
	size += int64(len(buf))
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	return f, size, nil
}

// compactMarkerPath is the commit record of a compaction transaction: its
// durable presence means the "<segment>.compact" temp set is complete and
// authoritative, so a crashed compaction must be rolled forward (renames
// finished) rather than discarded.
func compactMarkerPath(base string) string { return base + ".compact-commit" }

func writeCompactMarker(base string, shards int) error {
	marker := compactMarkerPath(base)
	f, err := os.Create(marker)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "shards=%d\n", shards); err != nil {
		_ = f.Close() // marker is being abandoned; the write error wins
		os.Remove(marker)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // ditto for a failed sync
		os.Remove(marker)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsyncDir(filepath.Dir(marker))
}

func removeCompactMarker(base, dir string) error {
	if err := os.Remove(compactMarkerPath(base)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return fsyncDir(dir)
}

// parseCompactMarker returns the transaction's shard count, or 0 when the
// content is not an *exact* "shards=N\n". The marker is written in one
// Write, so a torn marker is a strict prefix — and a decimal prefix of a
// multi-digit count ("shards=1" torn from "shards=16\n") still parses under
// a lenient scan; trusting it would delete live segments whose replacements
// never get renamed in. Only the full line, trailing newline included,
// proves the commit happened.
func parseCompactMarker(data []byte) int {
	s := string(data)
	if !strings.HasPrefix(s, "shards=") || !strings.HasSuffix(s, "\n") {
		return 0
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(s, "shards="), "\n"))
	if err != nil || n <= 0 {
		return 0
	}
	return n
}

// completeCompact rolls a compaction transaction forward or back before any
// replay happens. With a durable marker the fsynced temps are the truth:
// finish the renames and drop segments the transaction folded in. Without
// one (or with a torn, unparseable marker — it is fsynced before the first
// rename, so torn means uncommitted), any temps are a discarded phase-1 and
// are swept.
func (db *DB) completeCompact() error {
	segs, err := discoverSegments(db.path)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(compactMarkerPath(db.path))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("sirendb: %w", err)
	}
	shards := parseCompactMarker(data)
	if err != nil || shards == 0 {
		// No marker, or a torn one: the transaction never committed. Sweep
		// the phase-1 temps — every temp's segment exists (segments are
		// created at open, temps only for 0..S-1), so the discovered set
		// covers them all.
		for _, sf := range segs {
			if rerr := os.Remove(sf.path + ".compact"); rerr != nil && !os.IsNotExist(rerr) {
				return fmt.Errorf("sirendb: %w", rerr)
			}
		}
		if err == nil { // torn marker present: retire it
			return removeCompactMarker(db.path, db.dir)
		}
		return nil
	}
	for i := 0; i < shards; i++ {
		segPath := segmentPath(db.path, i)
		if err := os.Rename(segPath+".compact", segPath); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("sirendb: completing crashed compaction: %w", err)
		}
	}
	// Segments beyond the transaction's shard count were folded into the
	// temp set before the marker was committed.
	for _, sf := range segs {
		if sf.index >= shards {
			if err := os.Remove(sf.path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("sirendb: completing crashed compaction: %w", err)
			}
		}
	}
	return removeCompactMarker(db.path, db.dir)
}

type segmentFile struct {
	index int
	path  string
}

// discoverSegments lists existing "<base>.<n>" segment files in ascending
// index order, ignoring the lock file and temporaries.
func discoverSegments(base string) ([]segmentFile, error) {
	dir, name := filepath.Split(base)
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sirendb: %w", err)
	}
	var segs []segmentFile
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), name+".") {
			continue
		}
		idx, err := strconv.Atoi(e.Name()[len(name)+1:])
		if err != nil || idx < 0 {
			continue // ".lock", ".compact", or unrelated
		}
		segs = append(segs, segmentFile{index: idx, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, nil
}

// openSegments replays everything on disk and leaves each shard with an
// append-ready WAL handle. Called once from OpenOptions, before any
// concurrency exists.
func (db *DB) openSegments() error {
	if db.opts.ReadOnly {
		return db.openSegmentsReadOnly()
	}
	// Roll a crash-interrupted Compact forward (or sweep its discarded
	// temps) before anything is replayed.
	if err := db.completeCompact(); err != nil {
		return err
	}
	segs, err := discoverSegments(db.path)
	if err != nil {
		return err
	}
	if _, err := os.Stat(db.path); err == nil {
		return db.migrateLegacy(segs)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("sirendb: %w", err)
	}
	// Attach the sealed tier — O(index) per run, no row replay — and sweep
	// debris from a seal that never committed. Sets the sealed-residue floor
	// the segment replay below filters against, so a crash between Seal's
	// commit marker and its segment truncation rolls forward here.
	if err := db.loadRuns(); err != nil {
		return err
	}

	// A Compact abandoned between its renames (rename failure, or leftover
	// segments not yet removed) can leave a record in two files; the
	// sequence dedup collapses such copies to one row.
	seen := make(map[uint64]struct{})

	have := make(map[int]*segmentFile, len(segs))
	for i := range segs {
		have[segs[i].index] = &segs[i]
	}
	created := false
	for i, s := range db.shards {
		segPath := segmentPath(db.path, i)
		f, err := os.OpenFile(segPath, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("sirendb: opening %s: %w", segPath, err)
		}
		if _, ok := have[i]; !ok {
			created = true
		}
		validEnd, err := db.replaySegment(f, segPath, true, seen)
		if err != nil {
			_ = f.Close() // open is failing; the replay error wins
			return err
		}
		if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
			_ = f.Close() // open is failing; the seek error wins
			return fmt.Errorf("sirendb: seeking %s: %w", segPath, err)
		}
		s.wal = f
		s.written = validEnd
		s.synced.Store(validEnd)
	}
	// Leftover segments from a larger previous shard count: replay their
	// rows (hash routing folds them into the current shards) and remember
	// them so Compact can fold them into the active segments and delete
	// them. Until then they are read-only.
	for _, sf := range segs {
		if sf.index < len(db.shards) {
			continue
		}
		f, err := os.Open(sf.path)
		if err != nil {
			return fmt.Errorf("sirendb: opening %s: %w", sf.path, err)
		}
		_, err = db.replaySegment(f, sf.path, false, seen)
		_ = f.Close() // read-only replay handle; nothing durable at stake
		if err != nil {
			return err
		}
		db.staleSegs = append(db.staleSegs, sf.path)
	}
	for _, s := range db.shards {
		s.rebuildIndex()
	}
	if created {
		if err := fsyncDir(db.dir); err != nil {
			return fmt.Errorf("sirendb: %w", err)
		}
	}
	return nil
}

// openSegmentsReadOnly is the serving-tier open: sealed runs attach in
// O(index), segments replay from read-only handles, and nothing on disk is
// created, repaired, truncated, or swept. The shared lock guarantees no
// writer is live (a writer's exclusive lock would have excluded us), so the
// on-disk state is quiescent. Stores abandoned mid-recovery — a legacy WAL
// awaiting migration or an uncompleted compaction — need a writable open
// first: finishing either transaction is inherently a mutation.
func (db *DB) openSegmentsReadOnly() error {
	if _, err := os.Stat(compactMarkerPath(db.path)); err == nil {
		return fmt.Errorf("sirendb: read-only open: uncompleted compaction at %s; open writable once to recover", db.path)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("sirendb: %w", err)
	}
	if _, err := os.Stat(db.path); err == nil {
		return fmt.Errorf("sirendb: read-only open: unmigrated legacy WAL at %s; open writable once to migrate", db.path)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("sirendb: %w", err)
	}
	if err := db.loadRuns(); err != nil {
		return err
	}
	segs, err := discoverSegments(db.path)
	if err != nil {
		return err
	}
	seen := make(map[uint64]struct{})
	for _, sf := range segs {
		f, err := os.Open(sf.path)
		if err != nil {
			return fmt.Errorf("sirendb: opening %s: %w", sf.path, err)
		}
		_, err = db.replaySegment(f, sf.path, false, seen)
		_ = f.Close() // read-only replay handle; nothing durable at stake
		if err != nil {
			return err
		}
	}
	for _, s := range db.shards {
		s.rebuildIndex()
	}
	return nil
}

// replaySegment reads every intact record of one segment file, routing each
// row to its shard by hash (the segment's nominal owner is only a locality
// hint — records in the "wrong" segment still land correctly). It returns
// the end of the valid prefix — where appends must resume. repairHeader
// rewrites a missing/torn magic on writable active segments; leftover
// segments are opened read-only and must not be mutated. seen, when
// non-nil, deduplicates records by sequence.
func (db *DB) replaySegment(f *os.File, name string, repairHeader bool, seen map[uint64]struct{}) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("sirendb: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<20)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// Empty or torn-at-creation file: (re)write the magic so the
			// segment is well-formed before any record lands.
			if repairHeader {
				if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
					return 0, fmt.Errorf("sirendb: writing segment header %s: %w", name, err)
				}
			}
			return int64(len(segMagic)), nil
		}
		return 0, fmt.Errorf("sirendb: reading %s: %w", name, err)
	}
	if string(magic) != segMagic {
		return 0, fmt.Errorf("sirendb: %s is not a sirendb WAL segment (bad magic)", name)
	}
	off := int64(len(segMagic))
	var hdr [recHdrSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return off, nil // clean end or torn header
			}
			return 0, fmt.Errorf("sirendb: replaying %s: %w", name, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		seq := binary.LittleEndian.Uint64(hdr[8:16])
		if length > maxRecordLen {
			return off, nil // out-of-bounds length: treat as torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return off, nil // torn payload
			}
			return 0, fmt.Errorf("sirendb: replaying %s: %w", name, err)
		}
		recEnd := off + recHdrSize + int64(length)
		if uint32(xxhash.Sum64(payload))^seqMix(seq) != sum {
			// An in-bounds corrupt length lands here too: framing may now be
			// lost, but scanning on recovers any later intact records.
			db.corrupt.Add(1)
			off = recEnd
			continue
		}
		msg, err := wire.Parse(payload)
		if err != nil {
			db.corrupt.Add(1)
			off = recEnd
			continue
		}
		off = recEnd
		if seq <= db.sealedSeq {
			// Sealed residue: the row's authoritative copy lives in a run
			// (Seal committed its marker but crashed before truncating this
			// segment). Not corruption — just roll-forward leftovers.
			continue
		}
		if seen != nil {
			if _, dup := seen[seq]; dup {
				continue
			}
			seen[seq] = struct{}{}
		}
		if cur := db.seq.Load(); seq > cur {
			db.seq.Store(seq)
		}
		db.shards[db.shardIndex(msg)].appendReplay(msg, seq)
	}
}

// migrateLegacy converts a pre-segment single-file WAL at db.path into
// per-shard segments. Any existing segments are an incomplete earlier
// migration (the legacy file is removed last, so its presence proves they
// are partial) and are discarded first.
func (db *DB) migrateLegacy(segs []segmentFile) error {
	for _, sf := range segs {
		if err := os.Remove(sf.path); err != nil {
			return fmt.Errorf("sirendb: discarding partial migration %s: %w", sf.path, err)
		}
	}
	f, err := os.Open(db.path)
	if err != nil {
		return fmt.Errorf("sirendb: %w", err)
	}
	err = db.replayLegacy(f)
	_ = f.Close() // read-only legacy file; nothing durable at stake
	if err != nil {
		return err
	}
	for _, s := range db.shards {
		s.rebuildIndex()
	}
	for i, s := range db.shards {
		segPath := segmentPath(db.path, i)
		sf, size, err := writeSegmentSnapshot(segPath, s.rows)
		if err != nil {
			return fmt.Errorf("sirendb: migrating to %s: %w", segPath, err)
		}
		s.wal = sf
		s.written = size
		s.synced.Store(size)
	}
	// Crash ordering: segments must be durable (files + directory entries)
	// before the legacy file disappears, and its removal must be durable
	// before any new append is acknowledged — otherwise a resurrected
	// legacy file would make a later open discard the segments holding
	// those appends.
	if err := fsyncDir(db.dir); err != nil {
		return fmt.Errorf("sirendb: %w", err)
	}
	if err := os.Remove(db.path); err != nil {
		return fmt.Errorf("sirendb: removing migrated WAL: %w", err)
	}
	if err := fsyncDir(db.dir); err != nil {
		return fmt.Errorf("sirendb: %w", err)
	}
	return nil
}

// replayLegacy loads all intact records from a pre-segment WAL file
// ([length][checksum][payload] framing, no sequence numbers — they are
// assigned in file order).
func (db *DB) replayLegacy(f *os.File) error {
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [legacyHdrLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // clean end or torn header
			}
			return fmt.Errorf("sirendb: replaying legacy WAL: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordLen {
			return nil // corrupt length: treat as torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil // torn record
		}
		if uint32(xxhash.Sum64(payload)) != sum {
			db.corrupt.Add(1)
			continue
		}
		msg, err := wire.Parse(payload)
		if err != nil {
			db.corrupt.Add(1)
			continue
		}
		seq := db.seq.Add(1)
		db.shards[db.shardIndex(msg)].appendReplay(msg, seq)
	}
}

// fsyncDir flushes a directory's entries (renames, creates, removes) to
// stable storage — the step that makes an os.Rename crash-durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
