package sirendb

import (
	"fmt"
	"path/filepath"
	"strings"
)

// ResolveSetPaths expands a database spec into member WAL base paths — the
// shared -db argument grammar of cmd/siren-analyze and cmd/siren-serve:
// split on commas; an element without glob metacharacters is a literal base
// path, used verbatim (a fresh WAL path opens an empty store, and a base
// path that happens to end in digits is never mangled); an element with
// metacharacters is expanded, its matches — the stores' on-disk artifacts —
// folded back to base paths, and the result deduplicated preserving order.
// A pattern matching nothing is an error: silently analysing a freshly
// created empty store instead of the intended members would report a
// zero-row campaign as success.
func ResolveSetPaths(spec string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	add := func(base string) {
		if !seen[base] {
			seen[base] = true
			out = append(out, base)
		}
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.ContainsAny(part, "*?[") {
			add(part)
			continue
		}
		matches, err := filepath.Glob(part)
		if err != nil {
			return nil, fmt.Errorf("bad -db pattern %q: %w", part, err)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("-db pattern %q matches nothing", part)
		}
		for _, m := range matches {
			add(basePath(m))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-db %q names no databases", spec)
	}
	return out, nil
}

// basePath folds one of a store's on-disk artifacts back to its WAL base
// path: the advisory lock "base.lock", compaction temporaries
// "base.N.compact" / "base.compact-commit", and segment files "base.N".
// Exactly one numeric (segment) suffix is stripped — a base path that
// itself ends in digits must not collapse further ("siren.0.2" is segment
// 2 of base "siren.0", not of base "siren").
func basePath(p string) string {
	if s, ok := strings.CutSuffix(p, ".lock"); ok {
		return s
	}
	if s, ok := strings.CutSuffix(p, ".compact-commit"); ok {
		return s
	}
	p = strings.TrimSuffix(p, ".compact")
	if i := strings.LastIndexByte(p, '.'); i >= 0 && i < len(p)-1 && isDigits(p[i+1:]) {
		return p[:i]
	}
	return p
}

func isDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
