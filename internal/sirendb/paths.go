package sirendb

import (
	"fmt"
	"path/filepath"
	"strings"
)

// ResolveSetPaths expands a database spec into member WAL base paths — the
// shared -db argument grammar of cmd/siren-analyze and cmd/siren-serve:
// split on commas; an element without glob metacharacters is a literal base
// path, used verbatim (a fresh WAL path opens an empty store, and a base
// path that happens to end in digits is never mangled); an element with
// metacharacters is expanded, its matches — the stores' on-disk artifacts —
// folded back to base paths, and the result deduplicated preserving order.
// A pattern matching nothing is an error: silently analysing a freshly
// created empty store instead of the intended members would report a
// zero-row campaign as success.
func ResolveSetPaths(spec string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	add := func(base string) {
		if !seen[base] {
			seen[base] = true
			out = append(out, base)
		}
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.ContainsAny(part, "*?[") {
			add(part)
			continue
		}
		matches, err := filepath.Glob(part)
		if err != nil {
			return nil, fmt.Errorf("bad -db pattern %q: %w", part, err)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("-db pattern %q matches nothing", part)
		}
		for _, m := range matches {
			add(basePath(m))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-db %q names no databases", spec)
	}
	return out, nil
}

// basePath folds one of a store's on-disk artifacts back to its WAL base
// path: the advisory lock "base.lock", compaction temporaries
// "base.N.compact" / "base.compact-commit", seal artifacts
// "base.seal-commit" (and its ".tmp") / "base.run.G.S", and segment files
// "base.N". Exactly one numeric (segment) suffix is stripped — a base path
// that itself ends in digits must not collapse further ("siren.0.2" is
// segment 2 of base "siren.0", not of base "siren").
func basePath(p string) string {
	if s, ok := strings.CutSuffix(p, ".lock"); ok {
		return s
	}
	if s, ok := strings.CutSuffix(p, ".compact-commit"); ok {
		return s
	}
	if s, ok := strings.CutSuffix(p, ".seal-commit"); ok {
		return s
	}
	if s, ok := strings.CutSuffix(p, ".seal-commit.tmp"); ok {
		return s
	}
	if s, ok := cutRunSuffix(p); ok {
		return s
	}
	p = strings.TrimSuffix(p, ".compact")
	if i := strings.LastIndexByte(p, '.'); i >= 0 && i < len(p)-1 && isDigits(p[i+1:]) {
		return p[:i]
	}
	return p
}

// cutRunSuffix strips a sealed-run suffix ".run.G.S" (two numeric fields
// after a literal "run"), returning the base and whether it matched.
func cutRunSuffix(p string) (string, bool) {
	rest := p
	for range 2 { // the trailing ".G.S"
		i := strings.LastIndexByte(rest, '.')
		if i < 0 || i == len(rest)-1 || !isDigits(rest[i+1:]) {
			return "", false
		}
		rest = rest[:i]
	}
	s, ok := strings.CutSuffix(rest, ".run")
	return s, ok
}

func isDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
