package sirendb

import (
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"siren/internal/obs"
	"siren/internal/sirendb/runfmt"
	"siren/internal/wire"
)

// sealedRun is one immutable sorted run attached to a shard: the frozen
// remains of an earlier WAL head, reachable in O(index) without replay.
// gen is the seal generation that produced it; fileShard is the shard index
// baked into its file name, which equals the owning shard's index unless
// the store was reopened with a different shard count.
type sealedRun struct {
	gen       int
	fileShard int
	path      string
	run       *runfmt.Run
}

// row is one stored message plus its store-wide sequence number, the key the
// shard-merge in Scan/ByJob orders by.
type row struct {
	seq uint64
	msg wire.Message
}

// shard owns one partition of the store: its rows, secondary indexes, and
// WAL segment file. All writes to one (JobID, Host) land on one shard, so
// inserts across shards never contend.
type shard struct {
	mu        sync.RWMutex
	rows      []row
	byJob     map[string][]int
	byProcess map[string][]int
	wal       *os.File
	written   int64 // valid bytes appended to the segment (under mu)

	// runs are the shard's sealed tier, oldest generation first. The slice
	// is copy-on-write under mu: Seal and retention swap in a fresh slice,
	// so a snapshot's captured header stays valid forever. sealedRows is the
	// row total across runs, kept alongside so Count stays O(shards).
	runs       []sealedRun
	sealedRows int

	// jobKeys/procKeys cache the sorted key sets of the two indexes so
	// Jobs/ProcessKeys stop re-sorting on every call. A cache entry is an
	// immutable slice stamped with the map size it was built from; the maps
	// only ever gain keys, so size equality means freshness. Readers load
	// and (re)build the caches under the shard's read lock — a racing
	// duplicate rebuild stores an identical value, and the atomic pointer
	// keeps old snapshots of the slice valid forever.
	jobKeys  atomic.Pointer[sortedKeys]
	procKeys atomic.Pointer[sortedKeys]

	// synced is how many segment bytes are known durable (fdatasync
	// confirmed). Only the group-commit path under syncMu advances it, so
	// it grows monotonically; the crash-recovery tests read it to model
	// what survives power loss.
	synced atomic.Int64
	// syncMu serialises fdatasync with Compact's handle swap and Close,
	// without holding mu across the disk wait — appends proceed while a
	// group commit is in flight. Lock order: syncMu before mu.
	syncMu sync.Mutex
	// dirty is the group-commit doorbell: a buffered token wakes the syncer
	// after the first unsynced append; further appends in the window
	// piggyback on the pending commit.
	dirty chan struct{}

	// fsyncNS / commitBytes are the store's group-commit instruments,
	// shared by every shard (nil-safe no-ops when the store is
	// uninstrumented; see storeMetrics).
	fsyncNS     *obs.Histogram
	commitBytes *obs.Histogram
}

// sortedKeys is an immutable sorted key cache for one secondary index.
type sortedKeys struct {
	keys []string
	n    int // len of the index map when built; maps only grow, so n == len(m) ⇔ fresh
}

// sortedKeysOf returns the sorted keys of index map m through the cache,
// rebuilding it only when the map gained keys since the last build. Call
// with the shard lock held (read suffices).
func sortedKeysOf(cache *atomic.Pointer[sortedKeys], m map[string][]int) []string {
	if c := cache.Load(); c != nil && c.n == len(m) {
		return c.keys
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cache.Store(&sortedKeys{keys: keys, n: len(m)})
	return keys
}

func newShard() *shard {
	return &shard{
		byJob:     make(map[string][]int),
		byProcess: make(map[string][]int),
		dirty:     make(chan struct{}, 1),
	}
}

func (s *shard) appendLocked(m wire.Message, seq uint64) {
	idx := len(s.rows)
	s.rows = append(s.rows, row{seq, m})
	s.byJob[m.JobID] = append(s.byJob[m.JobID], idx)
	pk := m.ProcessKey()
	s.byProcess[pk] = append(s.byProcess[pk], idx)
}

// appendReplay adds a replayed row without index maintenance; the caller
// runs rebuildIndex once after all segments are read.
func (s *shard) appendReplay(m wire.Message, seq uint64) {
	s.rows = append(s.rows, row{seq, m})
}

// rebuildIndex seq-sorts the rows and rebuilds both secondary indexes.
// Replay can deliver one shard's rows from several files (its own segment
// plus leftovers from an older shard count), so file order is not seq order.
func (s *shard) rebuildIndex() {
	sort.SliceStable(s.rows, func(i, j int) bool { return s.rows[i].seq < s.rows[j].seq })
	s.byJob = make(map[string][]int)
	s.byProcess = make(map[string][]int)
	s.jobKeys.Store(nil)
	s.procKeys.Store(nil)
	for idx, r := range s.rows {
		s.byJob[r.msg.JobID] = append(s.byJob[r.msg.JobID], idx)
		pk := r.msg.ProcessKey()
		s.byProcess[pk] = append(s.byProcess[pk], idx)
	}
}

func (s *shard) notifyDirty() {
	select {
	case s.dirty <- struct{}{}:
	default:
	}
}

// fsync makes every byte appended so far durable. The write offset is
// snapshotted under mu, but the fdatasync itself runs with only syncMu held,
// so appends continue while the disk flushes — the essence of group commit.
func (s *shard) fsync() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	f, w := s.wal, s.written
	s.mu.Unlock()
	if f == nil || s.synced.Load() >= w {
		return nil
	}
	start := time.Now()
	if err := fdatasync(f); err != nil {
		return err
	}
	s.fsyncNS.Since(start)
	s.commitBytes.Record(w - s.synced.Load())
	s.synced.Store(w)
	return nil
}

// syncLoop is the per-shard group-commit syncer: it sleeps until a write
// rings the doorbell, lets the batch accumulate for SyncInterval, then
// fdatasyncs everything at once. An appended record is therefore durable at
// most SyncInterval (plus one disk flush) after Insert returned.
func (db *DB) syncLoop(s *shard) {
	defer db.syncWG.Done()
	for {
		select {
		case <-db.stopSync:
			return // Close fdatasyncs each shard during shutdown
		case <-s.dirty:
			t := time.NewTimer(db.opts.SyncInterval)
			select {
			case <-t.C:
			case <-db.stopSync:
				t.Stop()
				return
			}
			if err := s.fsync(); err != nil {
				db.recordSyncErr(err)
			}
		}
	}
}
