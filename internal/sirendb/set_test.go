package sirendb

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"siren/internal/wire"
)

func setMsg(job, host string, pid int, seq int) wire.Message {
	return wire.Message{
		Header: wire.Header{
			JobID: job, StepID: "0", PID: pid, Hash: "beef", Host: host,
			Time: 1733900000 + int64(seq), Layer: wire.LayerSelf, Type: wire.TypeMetadata,
			Seq: 0, Total: 1,
		},
		Content: []byte(fmt.Sprintf("EXE=/bin/x-%s-%s-%d", job, host, seq)),
	}
}

// TestMergedSnapshotNoInterleavingWithinJob pins the merged ordering
// contract: when one job's hosts land in different member databases, the
// merged JobRows stream yields every member-0 row before any member-1 row —
// member boundaries are strict sequence boundaries, and each member's rows
// stay in that member's insertion order.
func TestMergedSnapshotNoInterleavingWithinJob(t *testing.T) {
	db0, _ := Open("")
	db1, _ := Open("")
	defer db0.Close()
	defer db1.Close()

	// One job, three hosts: a and b in member 0, c in member 1. Interleave
	// inserts with an unrelated job so sequence numbers are not trivially
	// dense for job J.
	var want0, want1 []string
	for i := 0; i < 10; i++ {
		h := "a"
		if i%2 == 1 {
			h = "b"
		}
		m := setMsg("J", h, 100+i, i)
		if err := db0.Insert(m); err != nil {
			t.Fatal(err)
		}
		want0 = append(want0, string(m.Content))
		if err := db0.Insert(setMsg("other", "a", 900+i, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m := setMsg("J", "c", 200+i, i)
		if err := db1.Insert(m); err != nil {
			t.Fatal(err)
		}
		want1 = append(want1, string(m.Content))
	}

	ms := MergeSnapshots([]*Snapshot{db0.Snapshot(), db1.Snapshot()})
	if ms.Count() != 30 {
		t.Fatalf("merged Count = %d, want 30", ms.Count())
	}

	var got []string
	ms.JobRows("J", func(m wire.Message) bool {
		got = append(got, string(m.Content))
		return true
	})
	if len(got) != len(want0)+len(want1) {
		t.Fatalf("JobRows yielded %d rows, want %d", len(got), len(want0)+len(want1))
	}
	for i, w := range append(append([]string{}, want0...), want1...) {
		if got[i] != w {
			t.Fatalf("row %d = %q, want %q: member rows interleaved or reordered", i, got[i], w)
		}
	}

	// The rebased sequence numbers must reproduce the same contract on the
	// shard-cursor surface: every member-0 seq < every member-1 seq, and
	// seqs are strictly increasing within one merged shard's job stream.
	member0Shards := db0.StoreShards()
	var max0, min1 uint64
	min1 = ^uint64(0)
	for i := 0; i < ms.Shards(); i++ {
		var last uint64
		ms.ShardJobRows(i, "J", func(m wire.Message, seq uint64) bool {
			if seq <= last {
				t.Fatalf("merged shard %d: seq %d not strictly increasing (last %d)", i, seq, last)
			}
			last = seq
			if i < member0Shards {
				if seq > max0 {
					max0 = seq
				}
			} else if seq < min1 {
				min1 = seq
			}
			return true
		})
	}
	if max0 >= min1 {
		t.Errorf("member-0 max rebased seq %d >= member-1 min %d", max0, min1)
	}

	// The job spans shards of both members; the fan-in count must agree
	// with what the per-shard cursors actually yield.
	counts := ms.JobShardCounts()
	gotShards := 0
	for i := 0; i < ms.Shards(); i++ {
		n := 0
		ms.ShardJobRows(i, "J", func(wire.Message, uint64) bool { n++; return false })
		if n > 0 {
			gotShards++
		}
	}
	if counts["J"] != gotShards {
		t.Errorf("JobShardCounts[J] = %d, but %d merged shards hold the job", counts["J"], gotShards)
	}
}

// TestOpenSetPersistent partitions one campaign across three WAL-backed
// stores the way three -partition k/3 receivers would, reopens them as a
// set, and checks the union: every message exactly once, member order
// preserved, Jobs merged.
func TestOpenSetPersistent(t *testing.T) {
	const parts = 3
	dir := t.TempDir()
	paths := make([]string, parts)
	dbs := make([]*DB, parts)
	for k := range paths {
		paths[k] = filepath.Join(dir, fmt.Sprintf("member-%d.wal", k))
		db, err := OpenOptions(paths[k], Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		dbs[k] = db
	}
	total := 0
	for j := 0; j < 12; j++ {
		for h := 0; h < 2; h++ {
			m := setMsg(fmt.Sprintf("job-%d", j), fmt.Sprintf("nid%06d", h), j, h)
			k := wire.PartitionIndex([]byte(m.JobID), []byte(m.Host), parts)
			if err := dbs[k].Insert(m); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	for _, db := range dbs {
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}

	set, err := OpenSet(paths, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if set.Count() != total {
		t.Fatalf("set Count = %d, want %d", set.Count(), total)
	}
	ms := set.Snapshot()
	seen := make(map[string]int)
	ms.Iter(func(m wire.Message) bool {
		seen[string(m.Content)]++
		return true
	})
	if len(seen) != total {
		t.Errorf("merged Iter yielded %d distinct messages, want %d", len(seen), total)
	}
	for c, n := range seen {
		if n != 1 {
			t.Errorf("message %q appeared %d times in the merged snapshot", c, n)
		}
	}
	if jobs := ms.Jobs(); len(jobs) != 12 {
		t.Errorf("merged Jobs() = %d jobs, want 12", len(jobs))
	}
}

// TestOpenSetMemberLocked: a member still held by a running receiver fails
// the whole set open, releasing the members opened before it.
func TestOpenSetMemberLocked(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.wal")
	b := filepath.Join(dir, "b.wal")
	holder, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()

	if _, err := OpenSet([]string{a, b}, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("OpenSet over a locked member: err = %v, want ErrLocked", err)
	}
	// Member a must have been released: a fresh open succeeds.
	db, err := Open(a)
	if err != nil {
		t.Fatalf("member opened before the failure was not released: %v", err)
	}
	db.Close()
}

// TestOpenSetSingleMemberMatchesDB: a one-element set is the degenerate
// case cmd/siren-analyze uses for classic single-receiver WALs; its merged
// snapshot must present exactly the member's rows with unshifted seqs.
func TestOpenSetSingleMemberMatchesDB(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "solo.wal")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := db.Insert(setMsg("J", "a", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	want := db.All()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	set, err := OpenSet([]string{path}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	ms := set.Snapshot()
	var got []wire.Message
	ms.Iter(func(m wire.Message) bool { got = append(got, m); return true })
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i].Content) != string(want[i].Content) {
			t.Errorf("row %d content mismatch", i)
		}
	}
	if ms.LastSeq() != 5 {
		t.Errorf("LastSeq = %d, want 5 (unshifted)", ms.LastSeq())
	}
}
