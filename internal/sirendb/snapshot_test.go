// Snapshot-semantics tests: the contracts the streaming read path stands
// on. Run under -race (make test-race / test-replay) — the lock-free reads
// are exactly what the detector would flag if the append-only reasoning
// were wrong.
package sirendb

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"siren/internal/wire"
)

func jobMsg(job, host string, pid int, content string) wire.Message {
	return wire.Message{
		Header: wire.Header{
			JobID: job, StepID: "0", PID: pid, Hash: "abcd", Host: host,
			Time: 1733900000, Layer: wire.LayerSelf, Type: wire.TypeMetadata,
			Seq: 0, Total: 1,
		},
		Content: []byte(content),
	}
}

// TestSnapshotStableUnderConcurrentInserts pins the core snapshot contract:
// while writers keep inserting, an Iter over a snapshot terminates (no
// deadlock — no locks are even held), yields exactly the rows present at
// capture time in global insertion order, and never surfaces a row inserted
// after the capture.
func TestSnapshotStableUnderConcurrentInserts(t *testing.T) {
	db, err := OpenOptions("", Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const preRows = 2000
	for i := 0; i < preRows; i++ {
		if err := db.Insert(jobMsg(fmt.Sprintf("job-%d", i%7), fmt.Sprintf("nid%04d", i%5), i, "pre")); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Snapshot()
	if snap.Count() != preRows {
		t.Fatalf("snapshot Count = %d, want %d", snap.Count(), preRows)
	}

	// Writers hammer the store while the snapshot is walked repeatedly.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				db.Insert(jobMsg(fmt.Sprintf("job-%d", i%7), fmt.Sprintf("nid%04d", g), 10000+g*100000+i, "post"))
			}
		}(g)
	}

	for pass := 0; pass < 20; pass++ {
		n := 0
		var lastSeq uint64
		ok := true
		snap.Iter(func(m wire.Message) bool {
			n++
			if string(m.Content) != "pre" {
				ok = false
			}
			return true
		})
		if !ok {
			t.Error("snapshot surfaced a row inserted after capture")
		}
		if n != preRows {
			t.Errorf("snapshot Iter visited %d rows, want %d", n, preRows)
		}
		// Shard cursors: sequence-sorted per shard, all <= LastSeq.
		total := 0
		for s := 0; s < snap.Shards(); s++ {
			c := snap.ShardCursor(s)
			total += c.Len()
			lastSeq = 0
			for {
				_, seq, more := c.Next()
				if !more {
					break
				}
				if seq <= lastSeq {
					t.Fatalf("shard %d cursor not seq-ascending (%d after %d)", s, seq, lastSeq)
				}
				if seq > snap.LastSeq() {
					t.Fatalf("shard %d yielded seq %d past snapshot LastSeq %d", s, seq, snap.LastSeq())
				}
				lastSeq = seq
			}
		}
		if total != preRows {
			t.Errorf("cursors hold %d rows, want %d", total, preRows)
		}
	}
	close(stop)
	wg.Wait()

	// A fresh snapshot sees everything, still consistently.
	snap2 := db.Snapshot()
	if snap2.Count() != db.Count() {
		t.Errorf("fresh snapshot Count = %d, db Count = %d", snap2.Count(), db.Count())
	}
}

// TestInsertInsideScanCallback pins the no-locks-held contract of the
// rewired Scan: inserting from inside the callback must work. Under the old
// full-RLock scan this was a guaranteed deadlock (RLock held while Insert
// waits for the write lock).
func TestInsertInsideScanCallback(t *testing.T) {
	db, err := OpenOptions("", Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Insert(jobMsg("j", "h", i, "x"))
	}
	n := 0
	db.Scan(func(m wire.Message) bool {
		n++
		// Mutating the store mid-scan: legal now, and the scan must not
		// surface the row it just inserted.
		if err := db.Insert(jobMsg("j2", "h", 100+n, "mid-scan")); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if n != 10 {
		t.Fatalf("scan visited %d rows, want the 10 pre-scan rows", n)
	}
	if db.Count() != 20 {
		t.Fatalf("Count = %d, want 20", db.Count())
	}
}

// TestSnapshotPerJobOrder checks JobRows/ShardJobRows: per-job streams are
// in insertion order (ascending seq), match ByJob exactly, and jobs created
// after the capture do not exist in the snapshot.
func TestSnapshotPerJobOrder(t *testing.T) {
	db, err := OpenOptions("", Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// One job across several hosts → its rows span shards.
	hosts := []string{"nid0001", "nid0002", "nid0003", "nid0004", "nid0005"}
	for i := 0; i < 500; i++ {
		db.Insert(jobMsg("spanner", hosts[i%len(hosts)], i, fmt.Sprintf("c%d", i)))
		db.Insert(jobMsg(fmt.Sprintf("other-%d", i%3), hosts[i%2], i, "noise"))
	}
	snap := db.Snapshot()
	db.Insert(jobMsg("late-job", "nid0009", 1, "late"))

	var got []string
	snap.JobRows("spanner", func(m wire.Message) bool {
		got = append(got, string(m.Content))
		return true
	})
	want := make([]string, 0, 500)
	for i := 0; i < 500; i++ {
		want = append(want, fmt.Sprintf("c%d", i))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("JobRows order diverged from insertion order (got %d rows)", len(got))
	}
	// ByJob (the merged slice API) agrees with the zero-copy stream.
	byJob := db.ByJob("spanner")
	if len(byJob) != 500 {
		t.Fatalf("ByJob = %d rows", len(byJob))
	}
	for i, m := range byJob {
		if string(m.Content) != want[i] {
			t.Fatalf("ByJob[%d] = %q, want %q", i, m.Content, want[i])
		}
	}
	// ByJobFunc: same order and content, early stop honoured.
	var streamed []string
	db.ByJobFunc("spanner", func(m wire.Message) bool {
		streamed = append(streamed, string(m.Content))
		return len(streamed) < 250
	})
	if !reflect.DeepEqual(streamed, want[:250]) {
		t.Fatalf("ByJobFunc diverged from ByJob prefix (got %d rows)", len(streamed))
	}
	// ByProcessFunc matches ByProcess for one process key.
	pk := byJob[0].ProcessKey()
	var a, b []string
	for _, m := range db.ByProcess(pk) {
		a = append(a, string(m.Content))
	}
	db.ByProcessFunc(pk, func(m wire.Message) bool {
		b = append(b, string(m.Content))
		return true
	})
	if len(a) == 0 || !reflect.DeepEqual(a, b) {
		t.Fatalf("ByProcessFunc (%d rows) diverged from ByProcess (%d rows)", len(b), len(a))
	}

	// Shard-local segments: seq-ascending, and their union is the job.
	counts := snap.JobShardCounts()
	total, shardsWithJob := 0, 0
	for s := 0; s < snap.Shards(); s++ {
		var lastSeq uint64
		n := 0
		snap.ShardJobRows(s, "spanner", func(m wire.Message, seq uint64) bool {
			if seq <= lastSeq {
				t.Fatalf("shard %d job rows not seq-ascending", s)
			}
			lastSeq = seq
			n++
			return true
		})
		if n > 0 {
			shardsWithJob++
		}
		total += n
	}
	if total != 500 {
		t.Errorf("shard segments sum to %d rows, want 500", total)
	}
	if counts["spanner"] != shardsWithJob {
		t.Errorf("JobShardCounts = %d, observed %d shards", counts["spanner"], shardsWithJob)
	}
	if shardsWithJob < 2 {
		t.Errorf("multi-host job should span shards (got %d); host set too small for the hash?", shardsWithJob)
	}

	// Snapshot job listing: sorted, and blind to post-capture jobs.
	jobs := snap.Jobs()
	for i := 1; i < len(jobs); i++ {
		if jobs[i-1] >= jobs[i] {
			t.Fatalf("snapshot Jobs not sorted: %q >= %q", jobs[i-1], jobs[i])
		}
	}
	for _, j := range jobs {
		if j == "late-job" {
			t.Error("snapshot Jobs surfaced a post-capture job")
		}
	}
	if rows := len(db.ByJob("late-job")); rows != 1 {
		t.Errorf("db sees %d late-job rows, want 1", rows)
	}
}

// TestKeysCacheFreshness: Jobs/ProcessKeys answers stay correct across
// inserts that add new keys (the sorted-key caches must invalidate), and
// repeated calls return equal results.
func TestKeysCacheFreshness(t *testing.T) {
	db, err := OpenOptions("", Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Insert(jobMsg("b", "h1", 1, "x"))
	db.Insert(jobMsg("a", "h2", 2, "x"))
	if got := db.Jobs(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Jobs = %q", got)
	}
	if got := db.Jobs(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("cached Jobs = %q", got)
	}
	db.Insert(jobMsg("0-first", "h3", 3, "x"))
	if got := db.Jobs(); !reflect.DeepEqual(got, []string{"0-first", "a", "b"}) {
		t.Fatalf("Jobs after new key = %q", got)
	}
	if got := len(db.ProcessKeys()); got != 3 {
		t.Fatalf("ProcessKeys = %d, want 3", got)
	}
	// Same-key inserts must not invalidate (exercises the fresh-cache path).
	db.Insert(jobMsg("a", "h2", 2, "y"))
	if got := db.Jobs(); !reflect.DeepEqual(got, []string{"0-first", "a", "b"}) {
		t.Fatalf("Jobs after same-key insert = %q", got)
	}
}

// TestStoreStats sanity-checks the telemetry snapshot the expvar endpoint
// serves.
func TestStoreStats(t *testing.T) {
	path := t.TempDir() + "/stats.wal"
	db, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Insert(jobMsg("j", "h", i, "content"))
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Rows != 10 || st.Shards != 2 || st.LastSeq != 10 {
		t.Errorf("Stats = %+v", st)
	}
	if st.WALBytes == 0 || st.WALSynced != st.WALBytes {
		t.Errorf("WAL accounting: %+v (after Sync, synced must equal written)", st)
	}
	if st.SyncFailed || st.CorruptRecords != 0 {
		t.Errorf("unexpected failure state: %+v", st)
	}
}

// TestScanMatchesBaseline: the snapshot scan and the retired full-RLock
// scan agree on content and order.
func TestScanMatchesBaseline(t *testing.T) {
	db, err := OpenOptions("", Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 1000; i++ {
		db.Insert(jobMsg(fmt.Sprintf("j%d", i%13), fmt.Sprintf("h%d", i%7), i, fmt.Sprintf("c%d", i)))
	}
	var a, b []string
	db.Scan(func(m wire.Message) bool { a = append(a, string(m.Content)); return true })
	db.scanHoldingAllLocks(func(m wire.Message) bool { b = append(b, string(m.Content)); return true })
	if !reflect.DeepEqual(a, b) {
		t.Fatal("snapshot scan diverged from full-RLock baseline")
	}
}
