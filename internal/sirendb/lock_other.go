//go:build !unix

package sirendb

import (
	"fmt"
	"os"
)

// acquireLock on platforms without flock only creates the lock file; mutual
// exclusion between processes is not enforced. SIREN's receiver targets
// Linux (HPC nodes), where lock_unix.go applies.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sirendb: opening lock file: %w", err)
	}
	return f, nil
}

// acquireSharedLock matches lock_unix.go's shared variant; without flock it
// degrades the same way acquireLock does.
func acquireSharedLock(path string) (*os.File, error) {
	return acquireLock(path)
}
