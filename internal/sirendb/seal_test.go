// Sealed-run tier tests: the seal transaction's crash matrix (crash before
// the commit marker ⇒ WAL intact and debris swept; crash after ⇒ rolled
// forward with no duplicate and no lost row; torn committed run ⇒ loud
// failure at open), retention, tier-merged reads, and the open benchmarks
// proving sealed opens stay flat while replay grows with history.
package sirendb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"siren/internal/sirendb/runfmt"
	"siren/internal/wire"
)

// sealCorpus builds a deterministic multi-job, multi-host corpus. Seqs are
// assigned at insert; contents encode (job, host, i) so any reordering or
// loss is detectable.
func sealCorpus(n int) []wire.Message {
	ms := make([]wire.Message, n)
	for i := range ms {
		ms[i] = wire.Message{
			Header: wire.Header{
				JobID: fmt.Sprintf("job-%d", i%5), StepID: "0", PID: 100 + i,
				Hash: fmt.Sprintf("%08x", i), Host: fmt.Sprintf("nid%03d", i%3),
				Time: 1733900000 + int64(i), Layer: wire.LayerSelf,
				Type: wire.TypeFileH, Total: 1,
			},
			Content: []byte(fmt.Sprintf("row-%d", i)),
		}
	}
	return ms
}

// assertAll checks the store yields exactly ms through All — every row
// exactly once, none lost, none invented. Sealed runs store rows in
// (job, host, seq) order, so All's order is not insertion order once a seal
// has happened; each sealCorpus row is a distinct process, so multiset
// equality over (ProcessKey, Content) is the exact no-loss/no-duplicate
// check.
func assertAll(t *testing.T, db *DB, ms []wire.Message) {
	t.Helper()
	got := db.All()
	if len(got) != len(ms) {
		t.Fatalf("All: %d rows, want %d", len(got), len(ms))
	}
	want := make(map[string]string, len(ms))
	for _, m := range ms {
		want[m.ProcessKey()] = string(m.Content)
	}
	for _, m := range got {
		c, ok := want[m.ProcessKey()]
		if !ok {
			t.Fatalf("unexpected or duplicated row %v", m.Header)
		}
		if c != string(m.Content) {
			t.Fatalf("row %v content = %q, want %q", m.Header, m.Content, c)
		}
		delete(want, m.ProcessKey())
	}
	if len(want) != 0 {
		t.Fatalf("%d rows missing from All", len(want))
	}
}

func TestSealRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ms := sealCorpus(400)
	if err := db.InsertBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}

	// The live store serves the sealed tier transparently.
	assertAll(t, db, ms)
	if db.Count() != len(ms) {
		t.Fatalf("Count = %d", db.Count())
	}
	st := db.Stats()
	if st.SealedGen != 1 || st.SealedRows != len(ms) || st.SealedRuns == 0 || st.Rows != len(ms) {
		t.Fatalf("Stats = %+v", st)
	}
	byJob := db.ByJob("job-2")
	if len(byJob) != 80 {
		t.Fatalf("ByJob(job-2) = %d rows, want 80", len(byJob))
	}
	pk := ms[7].ProcessKey()
	if got := db.ByProcess(pk); len(got) != 1 || string(got[0].Content) != "row-7" {
		t.Fatalf("ByProcess = %v", got)
	}
	if jobs := db.Jobs(); len(jobs) != 5 {
		t.Fatalf("Jobs = %v", jobs)
	}
	if keys := db.ProcessKeys(); len(keys) != len(ms) {
		t.Fatalf("ProcessKeys = %d, want %d", len(keys), len(ms))
	}

	// Segments were truncated back to their magic.
	for i := 0; i < 4; i++ {
		fi, err := os.Stat(segmentPath(path, i))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != int64(len(segMagic)) {
			t.Fatalf("segment %d is %d bytes after seal, want %d", i, fi.Size(), len(segMagic))
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the sealed tier attaches without replay; everything reads back.
	db2, err := OpenOptions(path, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	assertAll(t, db2, ms)
	if st := db2.Stats(); st.SealedRows != len(ms) || st.SealedGen != 1 || st.LastSeq != uint64(len(ms)) {
		t.Fatalf("reopened Stats = %+v", st)
	}
}

func TestSealThenInsertThenResealAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	ms := sealCorpus(300)
	if err := db.InsertBatch(ms[:100]); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err != nil { // gen 1
		t.Fatal(err)
	}
	if err := db.InsertBatch(ms[100:200]); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err != nil { // gen 2
		t.Fatal(err)
	}
	if err := db.InsertBatch(ms[200:]); err != nil { // stays in the head
		t.Fatal(err)
	}
	assertAll(t, db, ms)
	if st := db.Stats(); st.SealedGen != 2 || st.SealedRows != 200 {
		t.Fatalf("Stats = %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenOptions(path, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	assertAll(t, db2, ms)
	// The head survived as WAL rows and the runs as runs.
	if st := db2.Stats(); st.SealedRows != 200 || st.Rows != 300 {
		t.Fatalf("reopened Stats = %+v", st)
	}
	// Sealing the replayed head works and bumps the generation past 2.
	if err := db2.Seal(); err != nil {
		t.Fatal(err)
	}
	if st := db2.Stats(); st.SealedGen != 3 || st.SealedRows != 300 {
		t.Fatalf("resealed Stats = %+v", st)
	}
	assertAll(t, db2, ms)
}

func TestSealEmptyHeadIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sealMarkerPath(path)); !os.IsNotExist(err) {
		t.Fatalf("empty seal left a marker: %v", err)
	}
	if err := db.InsertBatch(sealCorpus(10)); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	gen := db.Stats().SealedGen
	if err := db.Seal(); err != nil { // nothing new to seal
		t.Fatal(err)
	}
	if got := db.Stats().SealedGen; got != gen {
		t.Fatalf("empty reseal advanced the generation: %d -> %d", gen, got)
	}
}

// TestSealCrashBeforeMarkerDiscardsDebris: a seal that wrote run files but
// died before its commit marker changes nothing — the next open deletes the
// orphan runs (even torn ones) and replays the intact WAL.
func TestSealCrashBeforeMarkerDiscardsDebris(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms := sealCorpus(120)
	if err := db.InsertBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crashed seal: one complete run and one torn run of an
	// uncommitted generation.
	if _, err := runfmt.Write(runFilePath(path, 1, 0), []runfmt.Row{{Seq: 1, Msg: ms[0]}}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(runFilePath(path, 1, 1), []byte("torn mid-write"), 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	assertAll(t, db2, ms) // every WAL row, no duplicate from the debris run
	if st := db2.Stats(); st.SealedGen != 0 || st.SealedRows != 0 {
		t.Fatalf("debris was attached: %+v", st)
	}
	for s := 0; s < 2; s++ {
		if _, err := os.Stat(runFilePath(path, 1, s)); !os.IsNotExist(err) {
			t.Fatalf("debris run %d survived the open: %v", s, err)
		}
	}
}

// TestSealCrashAfterMarkerRollsForward: once the marker is durable the runs
// are authoritative; the crashed process's untruncated WAL residue must not
// resurface as duplicates, and nothing may be lost.
func TestSealCrashAfterMarkerRollsForward(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ms := sealCorpus(250)
	if err := db.InsertBatch(ms); err != nil {
		t.Fatal(err)
	}
	db.testCrashAfterSealCommit = true
	if err := db.Seal(); err == nil {
		t.Fatal("injected crash did not surface")
	}
	// The store is poisoned: an insert acknowledged now could land in a
	// segment recovery will re-filter.
	if err := db.Insert(ms[0]); err == nil {
		t.Fatal("insert after interrupted seal succeeded")
	}
	_ = db.Close() // poisoned store; close error is expected noise

	// Residue really is on disk: segments still hold the sealed records.
	resid := false
	for i := 0; i < 4; i++ {
		if fi, err := os.Stat(segmentPath(path, i)); err == nil && fi.Size() > int64(len(segMagic)) {
			resid = true
		}
	}
	if !resid {
		t.Fatal("test premise broken: no WAL residue left behind")
	}

	db2, err := OpenOptions(path, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	assertAll(t, db2, ms) // exactly once each: runs + filtered residue
	st := db2.Stats()
	if st.SealedGen != 1 || st.SealedRows != len(ms) || st.Rows != len(ms) {
		t.Fatalf("roll-forward Stats = %+v", st)
	}
	// The store is fully functional after recovery.
	extra := sealCorpus(270)[250:]
	if err := db2.InsertBatch(extra); err != nil {
		t.Fatal(err)
	}
	if err := db2.Seal(); err != nil {
		t.Fatal(err)
	}
	assertAll(t, db2, append(append([]wire.Message{}, ms...), extra...))
}

// TestSealedTornRunDetected: a committed run damaged after the fact (torn
// tail, index bit flip) fails the whole open loudly — never a silently
// reduced history.
func TestSealedTornRunDetected(t *testing.T) {
	build := func(t *testing.T) (string, string) {
		path := filepath.Join(t.TempDir(), "siren.wal")
		db, err := OpenOptions(path, Options{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.InsertBatch(sealCorpus(150)); err != nil {
			t.Fatal(err)
		}
		if err := db.Seal(); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		return path, runFilePath(path, 1, 0)
	}

	t.Run("torn_tail", func(t *testing.T) {
		path, run := build(t)
		fi, err := os.Stat(run)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(run, fi.Size()-7); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenOptions(path, Options{Shards: 1}); err == nil {
			t.Fatal("open accepted a store with a torn committed run")
		}
	})

	t.Run("index_bitflip", func(t *testing.T) {
		path, run := build(t)
		b, err := os.ReadFile(run)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)-70] ^= 0x01 // inside the job index, above the footer
		if err := os.WriteFile(run, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenOptions(path, Options{Shards: 1}); err == nil {
			t.Fatal("open accepted a store with a corrupt committed run")
		}
	})
}

func TestSealRetention(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms := sealCorpus(300)
	for g := 0; g < 3; g++ { // three generations of 100 rows each
		if err := db.InsertBatch(ms[g*100 : (g+1)*100]); err != nil {
			t.Fatal(err)
		}
		if err := db.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	old := db.Snapshot() // must keep reading dropped runs

	// Generation 1's rows all have seq <= 100.
	dropped, err := db.DropSealedBefore(100)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("DropSealedBefore(100) dropped nothing")
	}
	if db.Count() != 200 {
		t.Fatalf("Count after drop = %d, want 200", db.Count())
	}
	assertAll(t, db, ms[100:])

	if _, err := db.RetainSealedGenerations(1); err != nil {
		t.Fatal(err)
	}
	if db.Count() != 100 {
		t.Fatalf("Count after retain = %d, want 100", db.Count())
	}
	assertAll(t, db, ms[200:])

	// The pre-retention snapshot still serves all 300 rows through the
	// unlinked runs' live mappings.
	n := 0
	old.Iter(func(wire.Message) bool { n++; return true })
	if n != 300 || old.Err() != nil {
		t.Fatalf("old snapshot yields %d rows (err=%v), want 300", n, old.Err())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: absent generations stay absent, present ones attach, and the
	// next seal generation continues past the marker's.
	db2, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	assertAll(t, db2, ms[200:])
	if err := db2.InsertBatch(sealCorpus(310)[300:]); err != nil {
		t.Fatal(err)
	}
	if err := db2.Seal(); err != nil {
		t.Fatal(err)
	}
	if st := db2.Stats(); st.SealedGen != 4 {
		t.Fatalf("generation after retention+reseal = %d, want 4", st.SealedGen)
	}
}

// TestSealShardCountChange: runs written under one shard count re-attach
// under another; every row stays reachable through the tier-merged reads.
func TestSealShardCountChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ms := sealCorpus(200)
	if err := db.InsertBatch(ms); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	assertAll(t, db2, ms)
	for j := 0; j < 5; j++ {
		job := fmt.Sprintf("job-%d", j)
		if got := db2.ByJob(job); len(got) != 40 {
			t.Fatalf("ByJob(%s) = %d rows under new shard count, want 40", job, len(got))
		}
	}
	// Snapshot contract: within every shard-job stream, each host's
	// subsequence stays strictly seq-ascending (the chunk-reassembly
	// invariant postprocess.SnapshotView documents).
	sn := db2.Snapshot()
	for s := 0; s < sn.Shards(); s++ {
		for _, job := range sn.ShardJobs(s) {
			last := map[string]uint64{}
			sn.ShardJobRows(s, job, func(m wire.Message, seq uint64) bool {
				if seq <= last[m.Host] {
					t.Fatalf("shard %d job %s host %s: seq %d after %d", s, job, m.Host, seq, last[m.Host])
				}
				last[m.Host] = seq
				return true
			})
		}
	}
}

// TestSnapshotIsolatedFromSeal: a snapshot taken before Seal keeps serving
// the pre-seal view (head rows), one taken after serves the identical rows
// from the run — copy-on-write isolation of the shard run slices.
func TestSnapshotIsolatedFromSeal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ms := sealCorpus(80)
	if err := db.InsertBatch(ms); err != nil {
		t.Fatal(err)
	}
	before := db.Snapshot()
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	after := db.Snapshot()

	for name, sn := range map[string]*Snapshot{"before": before, "after": after} {
		if sn.Count() != len(ms) {
			t.Fatalf("%s snapshot Count = %d", name, sn.Count())
		}
		n := 0
		sn.Iter(func(wire.Message) bool { n++; return true })
		if n != len(ms) {
			t.Fatalf("%s snapshot yields %d rows", name, n)
		}
		counts := sn.JobShardCounts()
		total := 0
		for job := range counts {
			for s := 0; s < sn.Shards(); s++ {
				sn.ShardJobRows(s, job, func(wire.Message, uint64) bool { total++; return true })
			}
		}
		if total != len(ms) {
			t.Fatalf("%s snapshot ShardJobRows covered %d rows", name, total)
		}
	}
}

// TestSealConcurrentWithReads feeds the race detector: inserts, seals, and
// snapshot scans overlap freely; afterwards every row is present exactly
// once.
func TestSealConcurrentWithReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ms := sealCorpus(1200)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < len(ms); i += 60 {
			if err := db.InsertBatch(ms[i : i+60]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := db.Seal(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			sn := db.Snapshot()
			n := 0
			sn.Iter(func(wire.Message) bool { n++; return true })
			if n != sn.Count() {
				t.Errorf("snapshot advertised %d rows, yielded %d", sn.Count(), n)
				return
			}
		}
	}()
	wg.Wait()
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	if db.Count() != len(ms) {
		t.Fatalf("Count = %d, want %d", db.Count(), len(ms))
	}
	got := db.All()
	seen := make(map[string]bool, len(got))
	for _, m := range got {
		if seen[m.ProcessKey()] {
			t.Fatalf("duplicate row %v", m.Header)
		}
		seen[m.ProcessKey()] = true
	}
}

// TestResolveSetPathsFoldsSealArtifacts: run files and seal markers fold to
// their base path under the -db glob grammar, so a glob over a sealed
// store's directory never opens "siren.wal.run" as a phantom member.
func TestResolveSetPathsFoldsSealArtifacts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.InsertBatch(sealCorpus(50)); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The directory now holds segments, a lock, a seal marker, and run
	// files; the glob must fold them all to the one base path.
	got, err := ResolveSetPaths(filepath.Join(dir, "siren.wal*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != path {
		t.Fatalf("ResolveSetPaths = %v, want [%s]", got, path)
	}
	for _, artifact := range []string{
		path + ".seal-commit",
		path + ".seal-commit.tmp",
		runFilePath(path, 3, 1),
	} {
		if base := basePath(artifact); base != path {
			t.Fatalf("basePath(%s) = %q, want %q", artifact, base, path)
		}
	}
	// A base path that merely ends in ".run" must not be mangled by the
	// run-suffix folding ("data.run" is a legitimate base).
	if base := basePath(filepath.Join(dir, "data.run")); !strings.HasSuffix(base, "data.run") {
		t.Fatalf("basePath mangled a base ending in .run: %q", base)
	}
}

// benchOpenStore builds a store of n rows — sealed into runs or left as
// replayable WAL — then measures Open+Close. Sealed opens are O(index):
// the per-open cost must stay flat as n grows 10k → 1M, while replay grows
// linearly with it.
func benchOpenStore(b *testing.B, n int, sealed bool) {
	if n >= 1_000_000 && testing.Short() {
		b.Skip("1M-row open benchmark skipped in -short")
	}
	path := filepath.Join(b.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	batch := sealCorpus(4096)
	for done := 0; done < n; done += len(batch) {
		if done+len(batch) > n {
			batch = batch[:n-done]
		}
		if err := db.InsertBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	if sealed {
		if err := db.Seal(); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := OpenOptions(path, Options{Shards: 4})
		if err != nil {
			b.Fatal(err)
		}
		if db.Count() != n {
			b.Fatalf("opened %d rows, want %d", db.Count(), n)
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenSealed(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) { benchOpenStore(b, n, true) })
	}
}

func BenchmarkOpenReplay(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) { benchOpenStore(b, n, false) })
	}
}
