package sirendb

import (
	"siren/internal/obs"
)

// storeMetrics holds the store's obs instruments. The zero value (every
// field nil) is the uninstrumented state: all obs methods are nil-receiver
// safe, so hot paths record unconditionally and pay nothing but a nil check
// when Options.Metrics was not set.
type storeMetrics struct {
	// walAppendNS is the write(2) latency of a WAL segment append, measured
	// under the shard lock — the synchronous disk cost every insert batch
	// pays before acknowledgement.
	walAppendNS *obs.Histogram
	// fsyncNS is the fdatasync latency of a group commit — the durability
	// floor of the store; its p99 bounds how long a commit window can take.
	fsyncNS *obs.Histogram
	// commitBytes is the number of segment bytes made durable per group
	// commit — the batch size the SyncInterval window accumulated. Small
	// values mean the window is too short to amortise the flush.
	commitBytes *obs.Histogram
	// sealNS is total Seal wall time; sealPhaseNS splits it into the four
	// commit-protocol phases so a slow seal points at disk (write-runs,
	// truncate) vs rename (commit) vs in-memory swap (attach).
	sealNS      *obs.Histogram
	sealPhaseNS [4]*obs.Histogram
	// runReadErrs mirrors StoreStats.RunReadErrors: lazy run-read failures
	// (block checksum mismatches) discovered while serving the sealed tier.
	runReadErrs *obs.Counter
}

// sealPhases names Seal's four phases in protocol order; the array indexes
// of storeMetrics.sealPhaseNS follow it.
var sealPhases = [4]string{"write-runs", "commit", "truncate", "attach"}

// newStoreMetrics registers the store's instruments in r; a nil registry
// yields the zero (uninstrumented) value.
func newStoreMetrics(r *obs.Registry) storeMetrics {
	if r == nil {
		return storeMetrics{}
	}
	m := storeMetrics{
		walAppendNS: r.Histogram("siren_wal_append_ns", "WAL segment append (write syscall) latency"),
		fsyncNS:     r.Histogram("siren_wal_fdatasync_ns", "group-commit fdatasync latency"),
		commitBytes: r.Histogram("siren_wal_commit_bytes", "segment bytes made durable per group commit"),
		sealNS:      r.Histogram("siren_seal_ns", "total Seal wall time"),
		runReadErrs: r.Counter("siren_run_read_errors_total", "sealed-run lazy read failures (block checksum mismatches)"),
	}
	for i, phase := range sealPhases {
		m.sealPhaseNS[i] = r.Histogram("siren_seal_phase_ns", "Seal wall time per commit-protocol phase", obs.L("phase", phase))
	}
	return m
}
