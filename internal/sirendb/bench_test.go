// Store-level insert benchmarks:
//
//	go test -bench=BenchmarkInsertBatch -benchmem ./internal/sirendb
//
// BenchmarkInsertBatch measures the receiver-shaped workload — concurrent
// writers each flushing batches into their own store shard — against the
// single-mutex shape (shards=1), in memory and with the segmented WAL under
// group commit. One op is one 256-message batch.
package sirendb

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"siren/internal/wire"
)

func benchBatch(job, host string, n int) []wire.Message {
	ms := make([]wire.Message, n)
	for i := range ms {
		ms[i] = wire.Message{
			Header: wire.Header{
				JobID: job, StepID: "0", PID: i, Hash: "abcd", Host: host,
				Time: 1733900000, Layer: wire.LayerSelf, Type: wire.TypeObjects,
				Seq: 0, Total: 1,
			},
			Content: []byte("/lib64/libc.so.6\n/lib64/libm.so.6\n/opt/cray/libmpi.so\n"),
		}
	}
	return ms
}

func benchInsertBatch(b *testing.B, path string, shards, writers int) {
	db, err := OpenOptions(path, Options{Shards: shards, SyncInterval: DefaultSyncInterval})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const batchLen = 256
	// Each writer owns one store shard, like matched receiver writers; with
	// a single-shard store every writer hits the same mutex.
	batches := make([][]wire.Message, writers)
	for w := range batches {
		batches[w] = benchBatch(fmt.Sprintf("job-%d", w), fmt.Sprintf("nid%06d", w), batchLen)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			shard := w % shards
			for i := 0; i < n; i++ {
				if err := db.InsertShard(shard, batches[w]); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, per+boolToInt(w < b.N%writers))
	}
	wg.Wait()
	b.StopTimer()
	if db.Count() != b.N*batchLen {
		b.Fatalf("stored %d of %d", db.Count(), b.N*batchLen)
	}
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

func BenchmarkInsertBatch(b *testing.B) {
	for _, backend := range []string{"mem", "wal"} {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("store=%s/shards=%d/writers=4", backend, shards), func(b *testing.B) {
				path := ""
				if backend == "wal" {
					path = filepath.Join(b.TempDir(), "bench.wal")
				}
				benchInsertBatch(b, path, shards, 4)
			})
		}
	}
}

// BenchmarkInsertBatchSyncEveryBatch prices full per-batch durability, the
// policy group commit amortises away.
func BenchmarkInsertBatchSyncEveryBatch(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	db, err := OpenOptions(path, Options{Shards: 1, SyncInterval: -time.Nanosecond})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	batch := benchBatch("job-0", "nid000001", 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.InsertShard(0, batch); err != nil {
			b.Fatal(err)
		}
	}
}
