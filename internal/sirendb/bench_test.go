// Store-level insert benchmarks:
//
//	go test -bench=BenchmarkInsertBatch -benchmem ./internal/sirendb
//
// BenchmarkInsertBatch measures the receiver-shaped workload — concurrent
// writers each flushing batches into their own store shard — against the
// single-mutex shape (shards=1), in memory and with the segmented WAL under
// group commit. One op is one 256-message batch.
package sirendb

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"siren/internal/wire"
)

func benchBatch(job, host string, n int) []wire.Message {
	ms := make([]wire.Message, n)
	for i := range ms {
		ms[i] = wire.Message{
			Header: wire.Header{
				JobID: job, StepID: "0", PID: i, Hash: "abcd", Host: host,
				Time: 1733900000, Layer: wire.LayerSelf, Type: wire.TypeObjects,
				Seq: 0, Total: 1,
			},
			Content: []byte("/lib64/libc.so.6\n/lib64/libm.so.6\n/opt/cray/libmpi.so\n"),
		}
	}
	return ms
}

func benchInsertBatch(b *testing.B, path string, shards, writers int) {
	db, err := OpenOptions(path, Options{Shards: shards, SyncInterval: DefaultSyncInterval})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const batchLen = 256
	// Each writer owns one store shard, like matched receiver writers; with
	// a single-shard store every writer hits the same mutex.
	batches := make([][]wire.Message, writers)
	for w := range batches {
		batches[w] = benchBatch(fmt.Sprintf("job-%d", w), fmt.Sprintf("nid%06d", w), batchLen)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			shard := w % shards
			for i := 0; i < n; i++ {
				if err := db.InsertShard(shard, batches[w]); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, per+boolToInt(w < b.N%writers))
	}
	wg.Wait()
	b.StopTimer()
	if db.Count() != b.N*batchLen {
		b.Fatalf("stored %d of %d", db.Count(), b.N*batchLen)
	}
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

func BenchmarkInsertBatch(b *testing.B) {
	for _, backend := range []string{"mem", "wal"} {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("store=%s/shards=%d/writers=4", backend, shards), func(b *testing.B) {
				path := ""
				if backend == "wal" {
					path = filepath.Join(b.TempDir(), "bench.wal")
				}
				benchInsertBatch(b, path, shards, 4)
			})
		}
	}
}

// --------------------------------------------------------------------------
// Read path: snapshot scans versus the retired full-RLock scan
// (EXPERIMENTS.md §4).

// benchReadDB seeds an in-memory sharded store with rows spread over jobs
// and hosts, the shape a campaign leaves behind.
func benchReadDB(b *testing.B, shards, rows int) *DB {
	b.Helper()
	db, err := OpenOptions("", Options{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	const batchLen = 256
	batch := make([]wire.Message, 0, batchLen)
	for i := 0; i < rows; i++ {
		m := benchBatch(fmt.Sprintf("job-%d", i%16), fmt.Sprintf("nid%06d", i%8), 1)[0]
		m.PID = i
		batch = append(batch, m)
		if len(batch) == batchLen || i == rows-1 {
			if err := db.InsertBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	return db
}

// BenchmarkScanSnapshot measures a whole-store scan on an idle store: the
// snapshot path (brief lock, then lock-free merge) against the pre-snapshot
// shape that held every shard RLock for the scan's duration.
func BenchmarkScanSnapshot(b *testing.B) {
	const rows = 100_000
	for _, mode := range []struct {
		name string
		scan func(*DB, func(wire.Message) bool)
	}{
		{"scan=snapshot", (*DB).Scan},
		{"scan=full-rlock-baseline", (*DB).scanHoldingAllLocks},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db := benchReadDB(b, 4, rows)
			defer db.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				mode.scan(db, func(m wire.Message) bool { n++; return true })
				if n != rows {
					b.Fatalf("scanned %d of %d", n, rows)
				}
			}
		})
	}
}

// BenchmarkInsertDuringScan prices what the full-RLock scan cost writers: a
// background goroutine scans the store in a loop while the benchmark op is
// one 64-message InsertBatch. Under the baseline every insert stalls until
// the in-flight scan releases the shard locks; under the snapshot path the
// scanner holds locks only for the O(shards) capture.
func BenchmarkInsertDuringScan(b *testing.B) {
	const rows = 100_000
	for _, mode := range []struct {
		name string
		scan func(*DB, func(wire.Message) bool)
	}{
		{"scan=snapshot", (*DB).Scan},
		{"scan=full-rlock-baseline", (*DB).scanHoldingAllLocks},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db := benchReadDB(b, 4, rows)
			defer db.Close()
			stop := make(chan struct{})
			var scans atomic.Int64
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					mode.scan(db, func(m wire.Message) bool { return true })
					scans.Add(1)
				}
			}()
			batch := benchBatch("job-bench", "nid000099", 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.InsertBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			b.ReportMetric(float64(scans.Load()), "bg-scans")
		})
	}
}

// BenchmarkByJob measures the per-job read: the k-way index merge into one
// exact-size allocation (the old path re-sorted a growing temporary slice
// on every call).
func BenchmarkByJob(b *testing.B) {
	db := benchReadDB(b, 4, 100_000)
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(db.ByJob("job-3")); got != 100_000/16 {
			b.Fatalf("ByJob = %d rows", got)
		}
	}
}

// BenchmarkJobs measures the sorted-key listing, now served from the
// per-shard sorted caches after the first call.
func BenchmarkJobs(b *testing.B) {
	db := benchReadDB(b, 4, 100_000)
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(db.Jobs()); got != 16 {
			b.Fatalf("Jobs = %d", got)
		}
	}
}

// BenchmarkInsertBatchSyncEveryBatch prices full per-batch durability, the
// policy group commit amortises away.
func BenchmarkInsertBatchSyncEveryBatch(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	db, err := OpenOptions(path, Options{Shards: 1, SyncInterval: -time.Nanosecond})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	batch := benchBatch("job-0", "nid000001", 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.InsertShard(0, batch); err != nil {
			b.Fatal(err)
		}
	}
}
