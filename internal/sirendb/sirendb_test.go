package sirendb

import (
	"os"
	"path/filepath"
	"testing"

	"siren/internal/wire"
)

func msg(job string, pid int, typ string, content string) wire.Message {
	return wire.Message{
		Header: wire.Header{
			JobID: job, StepID: "0", PID: pid, Hash: "abcd", Host: "nid001001",
			Time: 1733900000, Layer: wire.LayerSelf, Type: typ, Seq: 0, Total: 1,
		},
		Content: []byte(content),
	}
}

func TestInMemoryBasics(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Insert(msg("1", 10, wire.TypeMetadata, "m")); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertBatch([]wire.Message{
		msg("1", 10, wire.TypeObjects, "libs"),
		msg("2", 11, wire.TypeMetadata, "m2"),
	}); err != nil {
		t.Fatal(err)
	}
	if db.Count() != 3 {
		t.Errorf("Count = %d", db.Count())
	}
	if got := db.ByJob("1"); len(got) != 2 {
		t.Errorf("ByJob(1) = %d rows", len(got))
	}
	if got := db.Jobs(); len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Errorf("Jobs = %q", got)
	}
	n := 0
	db.Scan(func(m wire.Message) bool { n++; return true })
	if n != 3 {
		t.Errorf("Scan visited %d", n)
	}
	// Early stop.
	n = 0
	db.Scan(func(m wire.Message) bool { n++; return false })
	if n != 1 {
		t.Errorf("Scan early-stop visited %d", n)
	}
}

func TestPersistAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Insert(msg("42", i, wire.TypeMetadata, "content")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Count() != 100 {
		t.Errorf("replayed %d rows, want 100", db2.Count())
	}
	if db2.CorruptRecords() != 0 {
		t.Errorf("corrupt = %d", db2.CorruptRecords())
	}
	// Appending after replay must work.
	if err := db2.Insert(msg("43", 1, wire.TypeObjects, "x")); err != nil {
		t.Fatal(err)
	}
	if db2.Count() != 101 {
		t.Errorf("count after append = %d", db2.Count())
	}
}

func TestTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		db.Insert(msg("7", i, wire.TypeMetadata, "c"))
	}
	db.Close()

	// Simulate a crash mid-write: truncate the last few bytes of the
	// single segment.
	seg := segmentPath(path, 0)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenOptions(path, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Count() != 9 {
		t.Errorf("after torn tail: %d rows, want 9", db2.Count())
	}
}

func TestCorruptRecordSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	db.Insert(msg("7", 1, wire.TypeMetadata, "first"))
	db.Insert(msg("7", 2, wire.TypeMetadata, "second"))
	db.Insert(msg("7", 3, wire.TypeMetadata, "third"))
	db.Close()

	// Flip a byte inside the middle record's payload.
	seg := segmentPath(path, 0)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recs := recordOffsets(t, data)
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3", len(recs))
	}
	data[recs[1].payloadOff+2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenOptions(path, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Count()+db2.CorruptRecords() != 3 {
		t.Errorf("rows=%d corrupt=%d, want total 3", db2.Count(), db2.CorruptRecords())
	}
	if db2.CorruptRecords() == 0 {
		t.Error("corruption not detected")
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		db.Insert(msg("9", i, wire.TypeMetadata, "payload"))
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// Still writable after compaction.
	if err := db.Insert(msg("9", 99, wire.TypeObjects, "after")); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Count() != 51 {
		t.Errorf("after compact+append: %d rows, want 51", db2.Count())
	}
}

func TestByProcessIndex(t *testing.T) {
	db, _ := Open("")
	defer db.Close()
	m1 := msg("1", 10, wire.TypeMetadata, "a")
	m2 := msg("1", 10, wire.TypeObjects, "b")
	m3 := msg("1", 10, wire.TypeMetadata, "c")
	m3.Hash = "ffff" // exec(): same PID, different executable
	db.InsertBatch([]wire.Message{m1, m2, m3})

	if got := db.ByProcess(m1.ProcessKey()); len(got) != 2 {
		t.Errorf("ByProcess = %d rows, want 2", len(got))
	}
	if got := db.ByProcess(m3.ProcessKey()); len(got) != 1 {
		t.Errorf("exec'd process rows = %d, want 1", len(got))
	}
	if len(db.ProcessKeys()) != 2 {
		t.Errorf("ProcessKeys = %d, want 2", len(db.ProcessKeys()))
	}
}

func TestConcurrentInsertAndScan(t *testing.T) {
	db, _ := Open("")
	defer db.Close()
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 500; i++ {
				db.Insert(msg("j", g*1000+i, wire.TypeMetadata, "x"))
			}
			done <- true
		}(g)
	}
	go func() {
		for i := 0; i < 100; i++ {
			db.Scan(func(m wire.Message) bool { return true })
			db.Count()
		}
		done <- true
	}()
	for i := 0; i < 5; i++ {
		<-done
	}
	if db.Count() != 2000 {
		t.Errorf("Count = %d, want 2000", db.Count())
	}
}

func BenchmarkInsertMemory(b *testing.B) {
	db, _ := Open("")
	defer db.Close()
	m := msg("1", 1, wire.TypeObjects, "/lib64/libc.so.6\n/lib64/libm.so.6\n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.PID = i
		if err := db.Insert(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertWAL(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	db, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	m := msg("1", 1, wire.TypeObjects, "/lib64/libc.so.6\n/lib64/libm.so.6\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PID = i
		if err := db.Insert(m); err != nil {
			b.Fatal(err)
		}
	}
}
