// Read-only opens: shared-lock semantics (readers coexist, writers are
// refused and vice versa), mutation refusal, and the serving path's
// OpenSet over live store directories.
package sirendb

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"siren/internal/wire"
)

// buildSealedStore writes a store with one sealed generation plus a WAL
// head and closes it, returning the base path and the full corpus.
func buildSealedStore(t *testing.T, n, sealAt int) (string, []wire.Message) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ms := sealCorpus(n)
	if err := db.InsertBatch(ms[:sealAt]); err != nil {
		t.Fatal(err)
	}
	if err := db.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertBatch(ms[sealAt:]); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return path, ms
}

func TestReadOnlyOpenServesAndRefusesWrites(t *testing.T) {
	path, ms := buildSealedStore(t, 200, 120)

	db, err := OpenOptions(path, Options{Shards: 2, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Reads: both tiers present and complete.
	assertAll(t, db, ms)
	if st := db.Stats(); st.SealedRows != 120 || st.Rows != 200 {
		t.Fatalf("Stats = %+v", st)
	}
	if got := db.ByJob("job-1"); len(got) != 40 {
		t.Fatalf("ByJob = %d rows, want 40", len(got))
	}
	sn := db.Snapshot()
	if sn.Count() != 200 {
		t.Fatalf("snapshot Count = %d", sn.Count())
	}

	// Writes: refused with ErrReadOnly, store unchanged.
	if err := db.Insert(ms[0]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Insert = %v, want ErrReadOnly", err)
	}
	if err := db.InsertBatch(ms[:2]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("InsertBatch = %v, want ErrReadOnly", err)
	}
	if err := db.Seal(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Seal = %v, want ErrReadOnly", err)
	}
	if err := db.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Compact = %v, want ErrReadOnly", err)
	}
	if _, err := db.DropSealedBefore(1 << 62); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("DropSealedBefore = %v, want ErrReadOnly", err)
	}
	if _, err := db.RetainSealedGenerations(1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("RetainSealedGenerations = %v, want ErrReadOnly", err)
	}
	if err := db.Sync(); err != nil { // nothing to make durable; must not fail
		t.Fatalf("Sync = %v", err)
	}
	if db.Count() != 200 {
		t.Fatalf("Count changed to %d", db.Count())
	}
}

// TestReadOnlySharedLock: two read-only opens coexist; a writable open is
// refused while any reader holds the shared lock; a read-only open is
// refused while a writer holds the exclusive lock.
func TestReadOnlySharedLock(t *testing.T) {
	path, ms := buildSealedStore(t, 100, 60)

	r1, err := OpenOptions(path, Options{Shards: 2, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := OpenOptions(path, Options{Shards: 2, ReadOnly: true})
	if err != nil {
		t.Fatalf("second concurrent read-only open: %v", err)
	}
	assertAll(t, r1, ms)
	assertAll(t, r2, ms)

	if _, err := OpenOptions(path, Options{Shards: 2}); !errors.Is(err, ErrLocked) {
		t.Fatalf("writable open under readers = %v, want ErrLocked", err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenOptions(path, Options{Shards: 2}); !errors.Is(err, ErrLocked) {
		t.Fatalf("writable open under remaining reader = %v, want ErrLocked", err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}

	w, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatalf("writable open after readers closed: %v", err)
	}
	defer w.Close()
	if _, err := OpenOptions(path, Options{Shards: 2, ReadOnly: true}); !errors.Is(err, ErrLocked) {
		t.Fatalf("read-only open under writer = %v, want ErrLocked", err)
	}
}

// TestReadOnlyRefusesRecovery: read-only opens cannot mutate, so a store
// needing recovery work — an uncommitted compaction to finish, a legacy
// single-file WAL to migrate — must be refused, not half-served.
func TestReadOnlyRefusesRecovery(t *testing.T) {
	t.Run("compact_marker", func(t *testing.T) {
		path, _ := buildSealedStore(t, 50, 30)
		if err := os.WriteFile(compactMarkerPath(path), []byte("shards=2\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenOptions(path, Options{Shards: 2, ReadOnly: true}); err == nil {
			t.Fatal("read-only open accepted a store mid-compaction")
		}
	})
	t.Run("legacy_wal", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "siren.wal")
		if err := os.WriteFile(path, []byte(segMagic), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenOptions(path, Options{Shards: 2, ReadOnly: true}); err == nil {
			t.Fatal("read-only open accepted an unmigrated legacy WAL")
		}
	})
}

// TestOpenSetReadOnly: the serving tier opens the receivers' stores
// read-only while they may still be written elsewhere — two read-only sets
// coexist, a writable set is refused while they serve.
func TestOpenSetReadOnly(t *testing.T) {
	p1, ms1 := buildSealedStore(t, 80, 40)
	p2, ms2 := buildSealedStore(t, 60, 20)
	paths := []string{p1, p2}

	s1, err := OpenSet(paths, Options{Shards: 2, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSet(paths, Options{Shards: 2, ReadOnly: true})
	if err != nil {
		t.Fatalf("second concurrent read-only set: %v", err)
	}

	for _, s := range []*DBSet{s1, s2} {
		if s.Count() != len(ms1)+len(ms2) {
			t.Fatalf("set Count = %d, want %d", s.Count(), len(ms1)+len(ms2))
		}
		for _, db := range s.Members() {
			if err := db.Insert(ms1[0]); !errors.Is(err, ErrReadOnly) {
				t.Fatalf("member Insert = %v, want ErrReadOnly", err)
			}
		}
	}
	snaps := make([]*Snapshot, len(s1.Members()))
	for i, db := range s1.Members() {
		snaps[i] = db.Snapshot()
	}
	merged := MergeSnapshots(snaps)
	n := 0
	merged.Iter(func(m wire.Message) bool { n++; return true })
	if n != len(ms1)+len(ms2) {
		t.Fatalf("merged snapshot yields %d rows", n)
	}

	if _, err := OpenSet(paths, Options{Shards: 2}); !errors.Is(err, ErrLocked) {
		t.Fatalf("writable set under read-only sets = %v, want ErrLocked", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSet(paths, Options{Shards: 2}); !errors.Is(err, ErrLocked) {
		t.Fatalf("writable set under remaining read-only set = %v, want ErrLocked", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	w, err := OpenSet(paths, Options{Shards: 2})
	if err != nil {
		t.Fatalf("writable set after readers closed: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
