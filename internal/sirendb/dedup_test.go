package sirendb

import (
	"testing"

	"siren/internal/wire"
)

// insertAll fails the test on the first insert error.
func insertAll(t *testing.T, db *DB, ms []wire.Message) {
	t.Helper()
	for _, m := range ms {
		if err := db.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
}

// mergedContents collects the merged view's row multiset keyed by content
// string (setMsg makes content unique per row).
func mergedContents(ms *MergedSnapshot) map[string]int {
	out := make(map[string]int)
	ms.Iter(func(m wire.Message) bool {
		out[string(m.Content)]++
		return true
	})
	return out
}

// checkViewConsistency verifies the SnapshotView contract the streaming
// consolidator depends on: JobShardCounts[j] equals the number of merged
// shards whose ShardJobRows yields at least one row of j, ShardJobs lists
// exactly the jobs with surviving rows, and Count matches Iter.
func checkViewConsistency(t *testing.T, ms *MergedSnapshot) {
	t.Helper()
	counts := ms.JobShardCounts()
	yield := make(map[string]int)
	for i := 0; i < ms.Shards(); i++ {
		jobsListed := make(map[string]bool)
		for _, j := range ms.ShardJobs(i) {
			jobsListed[j] = true
		}
		seen := make(map[string]bool)
		for job := range counts {
			n := 0
			ms.ShardJobRows(i, job, func(wire.Message, uint64) bool { n++; return true })
			if n > 0 {
				yield[job]++
				seen[job] = true
			}
		}
		for j := range seen {
			if !jobsListed[j] {
				t.Errorf("shard %d yields rows of %q but ShardJobs omits it", i, j)
			}
		}
		for j := range jobsListed {
			if !seen[j] {
				t.Errorf("shard %d lists job %q but ShardJobRows yields nothing", i, j)
			}
		}
	}
	for job, n := range counts {
		if yield[job] != n {
			t.Errorf("JobShardCounts[%q] = %d but %d shards yield rows", job, n, yield[job])
		}
	}
	total := 0
	ms.Iter(func(wire.Message) bool { total++; return true })
	if total != ms.Count() {
		t.Errorf("Iter yielded %d rows, Count() = %d", total, ms.Count())
	}
}

// TestDedupPrefixOverlap is the canonical failover shape: the recovered
// member's WAL holds a strict prefix of the run the new owner holds in
// full. The prefix is suppressed; the merged view equals the full copy.
func TestDedupPrefixOverlap(t *testing.T) {
	owner, _ := Open("")
	recovered, _ := Open("")
	defer owner.Close()
	defer recovered.Close()

	var full []wire.Message
	for i := 0; i < 10; i++ {
		full = append(full, setMsg("J", "h1", 100+i, i))
	}
	insertAll(t, owner, full)
	insertAll(t, recovered, full[:6]) // partial pre-crash ingest

	ms := MergeSnapshots([]*Snapshot{owner.Snapshot(), recovered.Snapshot()})
	if ms.Count() != 16 {
		t.Fatalf("pre-dedup Count = %d, want 16", ms.Count())
	}
	st := ms.DedupOverlaps()
	want := DedupStats{OverlappingKeys: 1, SuppressedRuns: 1, SuppressedRows: 6}
	if st != want {
		t.Fatalf("DedupOverlaps = %+v, want %+v", st, want)
	}
	if ms.Count() != 10 {
		t.Fatalf("post-dedup Count = %d, want 10", ms.Count())
	}
	got := mergedContents(ms)
	if len(got) != 10 {
		t.Fatalf("merged view has %d distinct rows, want 10", len(got))
	}
	for _, m := range full {
		if got[string(m.Content)] != 1 {
			t.Fatalf("row %q appears %d times, want exactly 1", m.Content, got[string(m.Content)])
		}
	}
	if again := ms.DedupOverlaps(); again != st {
		t.Fatalf("second DedupOverlaps = %+v, want idempotent %+v", again, st)
	}
	if ms.DedupStats() != st {
		t.Fatalf("DedupStats = %+v, want %+v", ms.DedupStats(), st)
	}
	checkViewConsistency(t, ms)
}

// TestDedupReorderedSubset: multiple UDP readers can reorder datagrams
// within one (job, host) before storage, so the recovered member's partial
// copy may be a sub-multiset without being a prefix. Still suppressed.
func TestDedupReorderedSubset(t *testing.T) {
	owner, _ := Open("")
	recovered, _ := Open("")
	defer owner.Close()
	defer recovered.Close()

	var full []wire.Message
	for i := 0; i < 8; i++ {
		full = append(full, setMsg("J", "h1", 100+i, i))
	}
	insertAll(t, owner, full)
	// Reordered, gappy subset: rows 5, 1, 6, 2.
	insertAll(t, recovered, []wire.Message{full[5], full[1], full[6], full[2]})

	ms := MergeSnapshots([]*Snapshot{owner.Snapshot(), recovered.Snapshot()})
	st := ms.DedupOverlaps()
	want := DedupStats{OverlappingKeys: 1, SuppressedRuns: 1, SuppressedRows: 4}
	if st != want {
		t.Fatalf("DedupOverlaps = %+v, want %+v", st, want)
	}
	if ms.Count() != 8 {
		t.Fatalf("Count = %d, want 8", ms.Count())
	}
	checkViewConsistency(t, ms)
}

// TestDedupConflictKept: an overlapping run that is NOT contained in the
// canonical run is genuinely different data — it must survive and be
// counted as a conflict, never silently discarded.
func TestDedupConflictKept(t *testing.T) {
	a, _ := Open("")
	b, _ := Open("")
	defer a.Close()
	defer b.Close()

	for i := 0; i < 6; i++ {
		if err := a.Insert(setMsg("J", "h1", 100+i, i)); err != nil {
			t.Fatal(err)
		}
	}
	// b shares rows 0-2 but adds rows 100-101 that a never saw.
	insertAll(t, b, []wire.Message{
		setMsg("J", "h1", 100, 0), setMsg("J", "h1", 101, 1), setMsg("J", "h1", 102, 2),
		setMsg("J", "h1", 200, 100), setMsg("J", "h1", 201, 101),
	})

	ms := MergeSnapshots([]*Snapshot{a.Snapshot(), b.Snapshot()})
	st := ms.DedupOverlaps()
	want := DedupStats{OverlappingKeys: 1, Conflicts: 1}
	if st != want {
		t.Fatalf("DedupOverlaps = %+v, want %+v", st, want)
	}
	if ms.Count() != 11 {
		t.Fatalf("Count = %d, want all 11 rows kept", ms.Count())
	}
	checkViewConsistency(t, ms)
}

// TestDedupEqualRuns: two members holding identical copies (the overlap
// window where both old and new owner accepted the whole stream) keep
// exactly one — the earlier member's, by the (JOBID, HOST, first-row seq)
// tiebreak.
func TestDedupEqualRuns(t *testing.T) {
	a, _ := Open("")
	b, _ := Open("")
	defer a.Close()
	defer b.Close()

	var full []wire.Message
	for i := 0; i < 5; i++ {
		full = append(full, setMsg("J", "h1", 100+i, i))
	}
	insertAll(t, a, full)
	insertAll(t, b, full)

	ms := MergeSnapshots([]*Snapshot{a.Snapshot(), b.Snapshot()})
	st := ms.DedupOverlaps()
	want := DedupStats{OverlappingKeys: 1, SuppressedRuns: 1, SuppressedRows: 5}
	if st != want {
		t.Fatalf("DedupOverlaps = %+v, want %+v", st, want)
	}
	if ms.Count() != 5 {
		t.Fatalf("Count = %d, want 5", ms.Count())
	}
	// The survivor is member 0's run: its rows carry the smaller rebased
	// seqs, so every yielded seq must be <= member 0's LastSeq.
	var maxSeq uint64
	for i := 0; i < ms.Shards(); i++ {
		ms.ShardJobRows(i, "J", func(_ wire.Message, seq uint64) bool {
			if seq > maxSeq {
				maxSeq = seq
			}
			return true
		})
	}
	if member0Last := a.Snapshot().LastSeq(); maxSeq > member0Last {
		t.Fatalf("surviving run has seq %d > member 0's range %d: canonical tiebreak picked the later member", maxSeq, member0Last)
	}
	checkViewConsistency(t, ms)
}

// TestDedupMultiHostJob: dedup is per (job, host) — a job whose h1 stream
// was failed over (duplicated) but whose h2 stream stayed clean loses only
// the duplicate h1 run, and a member-shard whose rows are all suppressed
// drops out of the job's fan-in count.
func TestDedupMultiHostJob(t *testing.T) {
	owner, _ := Open("")
	recovered, _ := Open("")
	defer owner.Close()
	defer recovered.Close()

	var h1, h2 []wire.Message
	for i := 0; i < 6; i++ {
		h1 = append(h1, setMsg("J", "h1", 100+i, i))
		h2 = append(h2, setMsg("J", "h2", 300+i, i))
	}
	insertAll(t, owner, h1)
	insertAll(t, owner, h2)
	insertAll(t, recovered, h1[:3]) // only the h1 overlap; h2 never moved

	ms := MergeSnapshots([]*Snapshot{owner.Snapshot(), recovered.Snapshot()})
	st := ms.DedupOverlaps()
	want := DedupStats{OverlappingKeys: 1, SuppressedRuns: 1, SuppressedRows: 3}
	if st != want {
		t.Fatalf("DedupOverlaps = %+v, want %+v", st, want)
	}
	if ms.Count() != 12 {
		t.Fatalf("Count = %d, want 12", ms.Count())
	}
	got := mergedContents(ms)
	for _, m := range append(append([]wire.Message{}, h1...), h2...) {
		if got[string(m.Content)] != 1 {
			t.Fatalf("row %q appears %d times, want 1", m.Content, got[string(m.Content)])
		}
	}
	checkViewConsistency(t, ms)
}

// TestDedupNoOverlapIsFree: disjoint members (the static-partition case)
// dedup to nothing and the view is untouched.
func TestDedupNoOverlapIsFree(t *testing.T) {
	a, _ := Open("")
	b, _ := Open("")
	defer a.Close()
	defer b.Close()
	for i := 0; i < 4; i++ {
		if err := a.Insert(setMsg("JA", "h1", 100+i, i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Insert(setMsg("JB", "h2", 200+i, i)); err != nil {
			t.Fatal(err)
		}
	}
	ms := MergeSnapshots([]*Snapshot{a.Snapshot(), b.Snapshot()})
	if st := ms.DedupOverlaps(); st != (DedupStats{}) {
		t.Fatalf("DedupOverlaps on disjoint members = %+v, want zero", st)
	}
	if ms.Count() != 8 {
		t.Fatalf("Count = %d, want 8", ms.Count())
	}
	checkViewConsistency(t, ms)
}

// TestDedupThreeWayOverlap: two recovered partials of one key (a double
// failover) both suppress against the single full copy.
func TestDedupThreeWayOverlap(t *testing.T) {
	fullDB, _ := Open("")
	p1, _ := Open("")
	p2, _ := Open("")
	defer fullDB.Close()
	defer p1.Close()
	defer p2.Close()

	var full []wire.Message
	for i := 0; i < 9; i++ {
		full = append(full, setMsg("J", "h1", 100+i, i))
	}
	insertAll(t, p1, full[:4])
	insertAll(t, fullDB, full)
	insertAll(t, p2, full[2:7])

	ms := MergeSnapshots([]*Snapshot{p1.Snapshot(), fullDB.Snapshot(), p2.Snapshot()})
	st := ms.DedupOverlaps()
	want := DedupStats{OverlappingKeys: 1, SuppressedRuns: 2, SuppressedRows: 9}
	if st != want {
		t.Fatalf("DedupOverlaps = %+v, want %+v", st, want)
	}
	if ms.Count() != 9 {
		t.Fatalf("Count = %d, want 9", ms.Count())
	}
	got := mergedContents(ms)
	for _, m := range full {
		if got[string(m.Content)] != 1 {
			t.Fatalf("row %q appears %d times, want 1", m.Content, got[string(m.Content)])
		}
	}
	checkViewConsistency(t, ms)
}
