// Watermark/delta tests: JobsChangedSince is what the incremental catalog
// refresh stands on — a job missing from the delta is a job the serving
// tier will never re-read, so over- and under-reporting are both bugs.
package sirendb

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSnapshotJobsChangedSince(t *testing.T) {
	db, err := OpenOptions("", Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 30; i++ {
		if err := db.Insert(jobMsg(fmt.Sprintf("job-%d", i%3), "h1", i, "wave1")); err != nil {
			t.Fatal(err)
		}
	}
	mark := db.Snapshot().LastSeq()

	// Wave 2 touches job-1 only (same host → same shard) and adds job-9.
	for i := 0; i < 5; i++ {
		db.Insert(jobMsg("job-1", "h1", 1000+i, "wave2"))
		db.Insert(jobMsg("job-9", "h1", 2000+i, "wave2"))
	}
	snap := db.Snapshot()

	if got := snap.JobsChangedSince(0); !reflect.DeepEqual(got, []string{"job-0", "job-1", "job-2", "job-9"}) {
		t.Errorf("JobsChangedSince(0) = %v, want all jobs", got)
	}
	if got := snap.JobsChangedSince(mark); !reflect.DeepEqual(got, []string{"job-1", "job-9"}) {
		t.Errorf("JobsChangedSince(%d) = %v, want [job-1 job-9]", mark, got)
	}
	if got := snap.JobsChangedSince(snap.LastSeq()); len(got) != 0 {
		t.Errorf("JobsChangedSince(LastSeq) = %v, want empty", got)
	}

	// A snapshot taken before wave 2 must keep answering from its own cut:
	// the pre-wave snapshot saw no row past mark.
	if pre := db.Snapshot(); pre.LastSeq() < mark {
		t.Fatalf("LastSeq went backwards: %d < %d", pre.LastSeq(), mark)
	}
}

func TestMergedSnapshotJobsChangedSince(t *testing.T) {
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "m0.wal"), filepath.Join(dir, "m1.wal")}
	var snaps []*Snapshot
	var marks []uint64
	for mi, p := range paths {
		db, err := OpenOptions(p, Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			db.Insert(jobMsg(fmt.Sprintf("job-%d-%d", mi, i%2), "h1", i, "wave1"))
		}
		marks = append(marks, db.Snapshot().LastSeq())
		// Wave 2: member 1 gains a new job; member 0 stays untouched.
		if mi == 1 {
			for i := 0; i < 4; i++ {
				db.Insert(jobMsg("job-new", "h1", 100+i, "wave2"))
			}
		}
		snaps = append(snaps, db.Snapshot())
		db.Close()
	}

	merged := MergeSnapshots(snaps)
	// The merged watermark after wave 1 rebases member 1's mark by member
	// 0's full range.
	wave1 := snaps[0].LastSeq() + marks[1]
	if got := merged.JobsChangedSince(wave1); !reflect.DeepEqual(got, []string{"job-new"}) {
		t.Errorf("merged JobsChangedSince(%d) = %v, want [job-new]", wave1, got)
	}
	if got := merged.JobsChangedSince(0); len(got) != 5 {
		t.Errorf("merged JobsChangedSince(0) = %v, want 5 jobs", got)
	}
	if got := merged.JobsChangedSince(merged.LastSeq()); len(got) != 0 {
		t.Errorf("merged JobsChangedSince(LastSeq) = %v, want empty", got)
	}
	// A watermark at exactly member 0's end reports every member-1 job and
	// nothing of member 0.
	if got := merged.JobsChangedSince(snaps[0].LastSeq()); !reflect.DeepEqual(got, []string{"job-1-0", "job-1-1", "job-new"}) {
		t.Errorf("merged JobsChangedSince(member0 end) = %v, want member-1 jobs", got)
	}
}
