package sirendb

import (
	"sort"
	"sync"

	"siren/internal/wire"
)

// Snapshot is an immutable point-in-time view of the store.
//
// Capture cost is deliberately tiny: under a brief all-shard read lock the
// snapshot copies each shard's row-slice header, its by-job index map (the
// map itself, not the rows or the index slices — those are shared), and its
// sealed-run slice header. Everything read afterwards runs without touching
// a store lock. That works because the store is append-only after open: a
// shard's row slice and its index lists only ever grow, so the first
// len(rows) entries captured here are never mutated again — concurrent
// inserts land beyond the snapshot's length and never surface through it.
// The sealed-run slices are copy-on-write (Seal and retention swap in fresh
// slices), so a captured header keeps naming exactly the runs that existed
// at capture time; a run file unlinked by retention stays readable through
// its still-open mapping. Writers therefore keep inserting — and sealing —
// at full speed while a scan or a whole-campaign consolidation walks the
// snapshot.
//
// The capture is also a consistent cut: the all-shard lock means no insert
// or seal is mid-flight, so if a row with sequence number S is in the
// snapshot, every row with a smaller sequence number is too — whether it
// lives in the WAL head or in a sealed run.
//
// Sealed-run rows decode lazily from the mapped files. A block whose
// checksum fails mid-read (bit rot after Open's index validation) ends that
// run's stream early rather than yielding wrong rows; the first such error
// is sticky on the snapshot (Err) and counted in the store's stats.
type Snapshot struct {
	shards  []shardView
	count   int
	lastSeq uint64 // highest sequence number assigned at capture time
	db      *DB    // stats backlink for lazy run-read errors; nil in tests

	jobsOnce sync.Once
	jobs     []string

	errMu    sync.Mutex
	firstErr error
}

// shardView is one shard's captured state: immutable prefixes of shared
// storage plus the then-current sealed-run set, safe to read without locks.
type shardView struct {
	rows       []row
	byJob      map[string][]int
	runs       []sealedRun
	sealedRows int
}

// Snapshot captures the current store contents. The lock is held only for
// the per-shard header and index-map copies — O(jobs), never O(rows).
func (db *DB) Snapshot() *Snapshot {
	sn := &Snapshot{shards: make([]shardView, len(db.shards)), db: db}
	unlock := db.rlockAll()
	sn.lastSeq = db.seq.Load()
	for i, s := range db.shards {
		byJob := make(map[string][]int, len(s.byJob))
		for k, v := range s.byJob {
			byJob[k] = v // slice header: the first len(v) entries never change
		}
		sn.shards[i] = shardView{rows: s.rows, byJob: byJob, runs: s.runs, sealedRows: s.sealedRows}
		sn.count += len(s.rows) + s.sealedRows
	}
	unlock()
	return sn
}

// noteErr records the first lazy run-read failure and forwards it to the
// store's telemetry counter.
func (sn *Snapshot) noteErr(err error) {
	sn.errMu.Lock()
	if sn.firstErr == nil {
		sn.firstErr = err
	}
	sn.errMu.Unlock()
	if sn.db != nil {
		sn.db.noteRunErr(err)
	}
}

// Err reports the first sealed-run read failure any cursor or stream of
// this snapshot encountered — the signal that some run rows were withheld
// (never corrupted rows, never silently wrong ones). Nil means every stream
// so far was complete.
func (sn *Snapshot) Err() error {
	sn.errMu.Lock()
	defer sn.errMu.Unlock()
	return sn.firstErr
}

// Shards reports the number of store shards behind the snapshot.
func (sn *Snapshot) Shards() int { return len(sn.shards) }

// Count reports the number of messages in the snapshot, sealed runs
// included.
func (sn *Snapshot) Count() int { return sn.count }

// LastSeq reports the highest store-wide sequence number the snapshot
// contains; every row it yields has Seq <= LastSeq.
func (sn *Snapshot) LastSeq() uint64 { return sn.lastSeq }

// src is one sequence-ascending row stream inside a merge: a sealed-run
// cursor (lazy block decode), or an in-memory row slice, optionally
// index-selected. A one-row lookahead (peek) drives the k-way merges.
type src struct {
	rc     *runCursorSrc
	rows   []row
	idxs   []int // non-nil: select rows[idxs[pos]] instead of rows[pos]
	pos    int
	rem    int // rows not yet yielded (run streams: advertised count)
	peeked bool
	pm     wire.Message
	pseq   uint64
}

// runCursorSrc wraps a runfmt cursor with the filter and error sink the
// in-memory sources don't need.
type runCursorSrc struct {
	next   func() (wire.Message, uint64, bool)
	err    func() error
	filter func(wire.Message) bool
	onErr  func(error)
	done   bool
}

func (s *src) peek() (uint64, bool) {
	if s.peeked {
		return s.pseq, true
	}
	if s.rc != nil {
		if s.rc.done {
			return 0, false
		}
		for {
			m, seq, ok := s.rc.next()
			if !ok {
				s.rc.done = true
				if err := s.rc.err(); err != nil && s.rc.onErr != nil {
					s.rc.onErr(err)
				}
				return 0, false
			}
			if s.rc.filter != nil && !s.rc.filter(m) {
				continue
			}
			s.pm, s.pseq, s.peeked = m, seq, true
			return seq, true
		}
	}
	if s.idxs != nil {
		if s.pos >= len(s.idxs) {
			return 0, false
		}
		r := &s.rows[s.idxs[s.pos]]
		s.pm, s.pseq, s.peeked = r.msg, r.seq, true
		return r.seq, true
	}
	if s.pos >= len(s.rows) {
		return 0, false
	}
	r := &s.rows[s.pos]
	s.pm, s.pseq, s.peeked = r.msg, r.seq, true
	return r.seq, true
}

// take consumes the peeked row; only valid right after a successful peek.
func (s *src) take() (wire.Message, uint64) {
	s.peeked = false
	s.pos++
	if s.rem > 0 {
		s.rem--
	}
	return s.pm, s.pseq
}

// mergeSrcs streams the union of the sources in ascending sequence order —
// the shared engine behind every tiered read path. A linear best-pick per
// step is fine at the store's source counts (shards × runs-per-shard, both
// small); the peek cache keeps it one comparison per source per step.
func mergeSrcs(srcs []*src, f func(m wire.Message, seq uint64) bool) {
	for {
		best := -1
		var bestSeq uint64
		for i, s := range srcs {
			seq, ok := s.peek()
			if !ok {
				continue
			}
			if best < 0 || seq < bestSeq {
				best, bestSeq = i, seq
			}
		}
		if best < 0 {
			return
		}
		m, seq := srcs[best].take()
		if !f(m, seq) {
			return
		}
	}
}

// runSrc builds a source over one sealed run's full row stream.
func runSrc(sr sealedRun, onErr func(error)) *src {
	c := sr.run.Cursor()
	return &src{rc: &runCursorSrc{next: c.Next, err: c.Err, onErr: onErr}, rem: sr.run.Rows()}
}

// runJobSrc builds a source over one job's rows in a sealed run, optionally
// filtered (ByProcess recovers its exact key by filtering job extents).
func runJobSrc(sr sealedRun, job string, filter func(wire.Message) bool, onErr func(error)) *src {
	c := sr.run.JobCursor(job)
	rows, _, _, _ := sr.run.JobStats(job)
	return &src{rc: &runCursorSrc{next: c.Next, err: c.Err, filter: filter, onErr: onErr}, rem: rows}
}

// tierSources builds the full source set for whole-store iteration: every
// shard contributes its sealed runs plus its head rows.
func tierSources(rows [][]row, runs [][]sealedRun, onErr func(error)) []*src {
	var srcs []*src
	for i := range rows {
		for _, sr := range runs[i] {
			srcs = append(srcs, runSrc(sr, onErr))
		}
		if len(rows[i]) > 0 {
			srcs = append(srcs, &src{rows: rows[i], rem: len(rows[i])})
		}
	}
	return srcs
}

// jobSources builds the source set for one job across shards: per shard the
// runs known (via their job index) to hold the job, plus the head's
// index-selected rows.
func jobSources(rows [][]row, idxs [][]int, runs [][]sealedRun, job string, filter func(wire.Message) bool, onErr func(error)) []*src {
	var srcs []*src
	for i := range rows {
		for _, sr := range runs[i] {
			srcs = append(srcs, runJobSrc(sr, job, filter, onErr))
		}
		if len(idxs[i]) > 0 {
			srcs = append(srcs, &src{rows: rows[i], idxs: idxs[i], rem: len(idxs[i])})
		}
	}
	return srcs
}

// shardSources builds shard i's sources: its sealed runs (oldest generation
// first) plus its head rows.
func (sn *Snapshot) shardSources(i int) []*src {
	sv := &sn.shards[i]
	srcs := make([]*src, 0, len(sv.runs)+1)
	for _, sr := range sv.runs {
		srcs = append(srcs, runSrc(sr, sn.noteErr))
	}
	if len(sv.rows) > 0 {
		srcs = append(srcs, &src{rows: sv.rows, rem: len(sv.rows)})
	}
	return srcs
}

// Cursor iterates one shard's snapshot rows in sequence order, lock-free —
// a sequence-merge of the shard's sealed runs and its WAL head.
type Cursor struct {
	srcs []*src
}

// ShardCursor returns a cursor over shard i's rows, sealed runs included.
// Each shard's merged stream is sequence-sorted, so a caller merging
// several cursors by Next's seq value reconstructs global insertion order
// (Iter does exactly that).
func (sn *Snapshot) ShardCursor(i int) *Cursor {
	return &Cursor{srcs: sn.shardSources(i)}
}

// Len reports how many rows remain ahead of the cursor. Run streams count
// their advertised (footer) rows, so a mid-read corruption can end a stream
// with Len still positive — the snapshot's Err reports why.
func (c *Cursor) Len() int {
	n := 0
	for _, s := range c.srcs {
		n += s.rem
	}
	return n
}

// Next returns the next message and its store-wide sequence number.
func (c *Cursor) Next() (wire.Message, uint64, bool) {
	best := -1
	var bestSeq uint64
	for i, s := range c.srcs {
		seq, ok := s.peek()
		if !ok {
			continue
		}
		if best < 0 || seq < bestSeq {
			best, bestSeq = i, seq
		}
	}
	if best < 0 {
		return wire.Message{}, 0, false
	}
	m, seq := c.srcs[best].take()
	return m, seq, true
}

// Iter streams every snapshot message in global insertion order (a
// sequence-merge across all shards' runs and heads); return false to stop.
// No store lock is held: the callback may block, take arbitrarily long, or
// insert into the store without stalling writers or deadlocking.
func (sn *Snapshot) Iter(f func(m wire.Message) bool) {
	var srcs []*src
	for i := range sn.shards {
		srcs = append(srcs, sn.shardSources(i)...)
	}
	mergeSrcs(srcs, func(m wire.Message, _ uint64) bool { return f(m) })
}

// Jobs returns the distinct job IDs in the snapshot, sorted. Head jobs come
// from the captured index maps, run jobs from each run's embedded job index
// — no row decode. The union runs once per snapshot and is cached.
func (sn *Snapshot) Jobs() []string {
	sn.jobsOnce.Do(func() {
		seen := make(map[string]struct{})
		for i := range sn.shards {
			for k := range sn.shards[i].byJob {
				seen[k] = struct{}{}
			}
			for _, sr := range sn.shards[i].runs {
				for _, k := range sr.run.Jobs() {
					seen[k] = struct{}{}
				}
			}
		}
		out := make([]string, 0, len(seen))
		for k := range seen {
			out = append(out, k)
		}
		sort.Strings(out)
		sn.jobs = out
	})
	return sn.jobs
}

// JobsChangedSince returns the job IDs with at least one row whose sequence
// number is strictly greater than since, sorted — the delta an incremental
// catalog refresh re-consolidates. since=0 returns every job (sequence
// numbers start at 1). The check is O(shards × jobs), never O(rows): each
// shard's by-job index list is sequence-ascending (its last entry is the
// newest head row of the job), and each run's job index carries the job's
// max sequence number.
func (sn *Snapshot) JobsChangedSince(since uint64) []string {
	seen := make(map[string]struct{})
	for i := range sn.shards {
		sv := &sn.shards[i]
		for job, idxs := range sv.byJob {
			if _, ok := seen[job]; ok {
				continue
			}
			if sv.rows[idxs[len(idxs)-1]].seq > since {
				seen[job] = struct{}{}
			}
		}
		for _, sr := range sv.runs {
			sr.run.EachJob(func(job string, _ int, _, maxSeq uint64) bool {
				if maxSeq > since {
					seen[job] = struct{}{}
				}
				return true
			})
		}
	}
	out := make([]string, 0, len(seen))
	for job := range seen {
		out = append(out, job)
	}
	sort.Strings(out)
	return out
}

// ShardJobs returns shard i's distinct job IDs in first-appearance
// (insertion) order — the iteration order of the shard-parallel streaming
// consolidation workers, chosen so each worker visits its jobs roughly in
// the order their first rows arrived. A job's first appearance is the
// minimum of its first head row's sequence and its min sequence in any of
// the shard's runs.
func (sn *Snapshot) ShardJobs(i int) []string {
	sv := &sn.shards[i]
	first := make(map[string]uint64, len(sv.byJob))
	for k, idxs := range sv.byJob {
		first[k] = sv.rows[idxs[0]].seq
	}
	for _, sr := range sv.runs {
		sr.run.EachJob(func(job string, _ int, minSeq, _ uint64) bool {
			if cur, ok := first[job]; !ok || minSeq < cur {
				first[job] = minSeq
			}
			return true
		})
	}
	out := make([]string, 0, len(first))
	for k := range first {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool { return first[out[a]] < first[out[b]] })
	return out
}

// JobShardCounts maps every job ID in the snapshot to the number of shards
// holding rows of that job — the fan-in count a streaming per-job reducer
// waits for before declaring a job complete. Jobs running on several hosts
// can span shards because partitioning hashes (JobID, Host).
func (sn *Snapshot) JobShardCounts() map[string]int {
	out := make(map[string]int)
	for i := range sn.shards {
		sv := &sn.shards[i]
		var jobs map[string]struct{}
		if len(sv.runs) > 0 {
			jobs = make(map[string]struct{}, len(sv.byJob))
		}
		for k := range sv.byJob {
			if jobs == nil {
				out[k]++
			} else {
				jobs[k] = struct{}{}
			}
		}
		for _, sr := range sv.runs {
			for _, k := range sr.run.Jobs() {
				jobs[k] = struct{}{}
			}
		}
		for k := range jobs {
			out[k]++
		}
	}
	return out
}

// ShardJobRows streams shard i's rows of one job in insertion order along
// with each row's store-wide sequence number; return false to stop. Zero
// copy for head rows (they alias the stored slice via the index list);
// sealed rows decode lazily from their run's job extents, merged in by
// sequence.
func (sn *Snapshot) ShardJobRows(shard int, job string, f func(m wire.Message, seq uint64) bool) {
	sv := &sn.shards[shard]
	idxs := sv.byJob[job]
	if len(sv.runs) == 0 { // head-only fast path: no merge state needed
		for _, idx := range idxs {
			r := &sv.rows[idx]
			if !f(r.msg, r.seq) {
				return
			}
		}
		return
	}
	var srcs []*src
	for _, sr := range sv.runs {
		if sr.run.HasJob(job) {
			srcs = append(srcs, runJobSrc(sr, job, nil, sn.noteErr))
		}
	}
	if len(idxs) > 0 {
		srcs = append(srcs, &src{rows: sv.rows, idxs: idxs, rem: len(idxs)})
	}
	mergeSrcs(srcs, f)
}

// JobRows streams every row of one job in global insertion order, merged
// across shards and tiers, without copying head rows or re-sorting: each
// head index list is already sequence-ascending and each run decodes its
// job extents in sequence order — the zero-copy, lock-free counterpart of
// DB.ByJob.
func (sn *Snapshot) JobRows(job string, f func(m wire.Message) bool) {
	var srcs []*src
	for i := range sn.shards {
		sv := &sn.shards[i]
		for _, sr := range sv.runs {
			if sr.run.HasJob(job) {
				srcs = append(srcs, runJobSrc(sr, job, nil, sn.noteErr))
			}
		}
		if idxs := sv.byJob[job]; len(idxs) > 0 {
			srcs = append(srcs, &src{rows: sv.rows, idxs: idxs, rem: len(idxs)})
		}
	}
	mergeSrcs(srcs, func(m wire.Message, _ uint64) bool { return f(m) })
}
