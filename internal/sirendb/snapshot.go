package sirendb

import (
	"sort"
	"sync"

	"siren/internal/wire"
)

// Snapshot is an immutable point-in-time view of the store.
//
// Capture cost is deliberately tiny: under a brief all-shard read lock the
// snapshot copies each shard's row-slice header and its by-job index map
// (the map itself, not the rows or the index slices — those are shared).
// Everything read afterwards runs without touching a store lock. That works
// because the store is append-only after open: a shard's row slice and its
// index lists only ever grow, so the first len(rows) entries captured here
// are never mutated again — concurrent inserts land beyond the snapshot's
// length and never surface through it. Writers therefore keep inserting at
// full speed while a scan or a whole-campaign consolidation walks the
// snapshot; the pre-snapshot read path held every shard RLock for the whole
// scan and stalled all writers for its duration.
//
// The capture is also a consistent cut: the all-shard lock means no insert
// is mid-flight, so if a row with sequence number S is in the snapshot,
// every row with a smaller sequence number is too.
type Snapshot struct {
	shards  []shardView
	count   int
	lastSeq uint64 // highest sequence number assigned at capture time

	jobsOnce sync.Once
	jobs     []string
}

// shardView is one shard's captured state: immutable prefixes of shared
// storage, safe to read without locks.
type shardView struct {
	rows  []row
	byJob map[string][]int
}

// Snapshot captures the current store contents. The lock is held only for
// the per-shard header and index-map copies — O(jobs), never O(rows).
func (db *DB) Snapshot() *Snapshot {
	sn := &Snapshot{shards: make([]shardView, len(db.shards))}
	unlock := db.rlockAll()
	sn.lastSeq = db.seq.Load()
	for i, s := range db.shards {
		byJob := make(map[string][]int, len(s.byJob))
		for k, v := range s.byJob {
			byJob[k] = v // slice header: the first len(v) entries never change
		}
		sn.shards[i] = shardView{rows: s.rows, byJob: byJob}
		sn.count += len(s.rows)
	}
	unlock()
	return sn
}

// Shards reports the number of store shards behind the snapshot.
func (sn *Snapshot) Shards() int { return len(sn.shards) }

// Count reports the number of messages in the snapshot.
func (sn *Snapshot) Count() int { return sn.count }

// LastSeq reports the highest store-wide sequence number the snapshot
// contains; every row it yields has Seq <= LastSeq.
func (sn *Snapshot) LastSeq() uint64 { return sn.lastSeq }

// Cursor iterates one shard's snapshot rows in sequence order, lock-free.
type Cursor struct {
	rows []row
	pos  int
}

// ShardCursor returns a cursor over shard i's rows. Each shard's rows are
// sequence-sorted, so a caller merging several cursors by Next's seq value
// reconstructs global insertion order (Iter does exactly that).
func (sn *Snapshot) ShardCursor(i int) *Cursor {
	return &Cursor{rows: sn.shards[i].rows}
}

// Len reports how many rows remain ahead of the cursor.
func (c *Cursor) Len() int { return len(c.rows) - c.pos }

// Next returns the next message and its store-wide sequence number.
func (c *Cursor) Next() (wire.Message, uint64, bool) {
	if c.pos >= len(c.rows) {
		return wire.Message{}, 0, false
	}
	r := &c.rows[c.pos]
	c.pos++
	return r.msg, r.seq, true
}

// Iter streams every snapshot message in global insertion order (a
// sequence-merge across the shard cursors); return false to stop. No store
// lock is held: the callback may block, take arbitrarily long, or insert
// into the store without stalling writers or deadlocking.
func (sn *Snapshot) Iter(f func(m wire.Message) bool) {
	views := make([][]row, len(sn.shards))
	for i := range sn.shards {
		views[i] = sn.shards[i].rows
	}
	iterRows(views, f)
}

// Jobs returns the distinct job IDs in the snapshot, sorted. The union and
// sort run once per snapshot and are cached, so repeated calls are
// allocation-free.
func (sn *Snapshot) Jobs() []string {
	sn.jobsOnce.Do(func() {
		seen := make(map[string]struct{})
		for i := range sn.shards {
			for k := range sn.shards[i].byJob {
				seen[k] = struct{}{}
			}
		}
		out := make([]string, 0, len(seen))
		for k := range seen {
			out = append(out, k)
		}
		sort.Strings(out)
		sn.jobs = out
	})
	return sn.jobs
}

// JobsChangedSince returns the job IDs with at least one row whose sequence
// number is strictly greater than since, sorted — the delta an incremental
// catalog refresh re-consolidates. since=0 returns every job (sequence
// numbers start at 1). The check is O(shards × jobs), never O(rows): each
// shard's by-job index list is sequence-ascending, so its last entry is the
// shard's newest row of that job.
func (sn *Snapshot) JobsChangedSince(since uint64) []string {
	seen := make(map[string]struct{})
	for i := range sn.shards {
		sv := &sn.shards[i]
		for job, idxs := range sv.byJob {
			if _, ok := seen[job]; ok {
				continue
			}
			if sv.rows[idxs[len(idxs)-1]].seq > since {
				seen[job] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for job := range seen {
		out = append(out, job)
	}
	sort.Strings(out)
	return out
}

// ShardJobs returns shard i's distinct job IDs in first-appearance
// (insertion) order — the iteration order of the shard-parallel streaming
// consolidation workers, chosen so each worker visits its jobs roughly in
// the order their first rows arrived.
func (sn *Snapshot) ShardJobs(i int) []string {
	sv := &sn.shards[i]
	out := make([]string, 0, len(sv.byJob))
	for k := range sv.byJob {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool { return sv.byJob[out[a]][0] < sv.byJob[out[b]][0] })
	return out
}

// JobShardCounts maps every job ID in the snapshot to the number of shards
// holding rows of that job — the fan-in count a streaming per-job reducer
// waits for before declaring a job complete. Jobs running on several hosts
// can span shards because partitioning hashes (JobID, Host).
func (sn *Snapshot) JobShardCounts() map[string]int {
	out := make(map[string]int)
	for i := range sn.shards {
		for k := range sn.shards[i].byJob {
			out[k]++
		}
	}
	return out
}

// ShardJobRows streams shard i's rows of one job in insertion order along
// with each row's store-wide sequence number; return false to stop. Zero
// copy: the messages alias the stored rows via the shard's index list.
func (sn *Snapshot) ShardJobRows(shard int, job string, f func(m wire.Message, seq uint64) bool) {
	sv := &sn.shards[shard]
	for _, idx := range sv.byJob[job] {
		r := &sv.rows[idx]
		if !f(r.msg, r.seq) {
			return
		}
	}
}

// JobRows streams every row of one job in global insertion order, merged
// across shards, without copying rows or re-sorting: each shard's index
// list is already sequence-ascending, so this is a k-way merge — the
// zero-copy, lock-free counterpart of DB.ByJob.
func (sn *Snapshot) JobRows(job string, f func(m wire.Message) bool) {
	rows := make([][]row, len(sn.shards))
	idxs := make([][]int, len(sn.shards))
	for i := range sn.shards {
		rows[i] = sn.shards[i].rows
		idxs[i] = sn.shards[i].byJob[job]
	}
	mergeIndexed(rows, idxs, f)
}

// iterRows sequence-merges whole row slices — the shared engine behind
// DB.Scan and Snapshot.Iter. A linear best-pick per step is fine at the
// store's shard counts (<= 256, typically 4).
func iterRows(views [][]row, f func(m wire.Message) bool) {
	pos := make([]int, len(views))
	for {
		best := -1
		var bestSeq uint64
		for i, rows := range views {
			if pos[i] >= len(rows) {
				continue
			}
			if sq := rows[pos[i]].seq; best < 0 || sq < bestSeq {
				best, bestSeq = i, sq
			}
		}
		if best < 0 {
			return
		}
		if !f(views[best][pos[best]].msg) {
			return
		}
		pos[best]++
	}
}

// mergeIndexed sequence-merges index-selected rows across shards. Index
// lists are appended in row order, so each is already sequence-ascending —
// no sort, no temporary (seq, msg) slice.
func mergeIndexed(rows [][]row, idxs [][]int, f func(m wire.Message) bool) {
	pos := make([]int, len(idxs))
	for {
		best := -1
		var bestSeq uint64
		for i := range idxs {
			if pos[i] >= len(idxs[i]) {
				continue
			}
			if sq := rows[i][idxs[i][pos[i]]].seq; best < 0 || sq < bestSeq {
				best, bestSeq = i, sq
			}
		}
		if best < 0 {
			return
		}
		if !f(rows[best][idxs[best][pos[best]]].msg) {
			return
		}
		pos[best]++
	}
}
