// Package sirendb is the embedded message store behind the SIREN receiver —
// the stdlib-only substitute for the SQLite database the paper uses.
//
// The paper's schema is a single table keyed by the UDP header columns
// (JOBID, STEPID, PID, HASH, HOST, TIME, LAYER, TYPE) with the message
// CONTENT as payload. This store keeps rows in memory with two secondary
// indexes (by job and by process key), and persists every insert to an
// append-only write-ahead log so a receiver restart loses nothing. Replay
// tolerates a torn final record (crash mid-write) and skips corrupt records
// (checksummed), in keeping with SIREN's graceful-failure design.
package sirendb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"siren/internal/wire"
	"siren/internal/xxhash"
)

// DB is a thread-safe append-only message store.
type DB struct {
	mu        sync.RWMutex
	rows      []wire.Message
	byJob     map[string][]int
	byProcess map[string][]int
	wal       *os.File
	path      string
	corrupt   int // records skipped during replay
}

// Open opens (or creates) a database backed by the WAL file at path.
// An empty path yields a purely in-memory database.
func Open(path string) (*DB, error) {
	db := &DB{byJob: make(map[string][]int), byProcess: make(map[string][]int), path: path}
	if path == "" {
		return db, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sirendb: opening %s: %w", path, err)
	}
	if err := db.replay(f); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("sirendb: seeking %s: %w", path, err)
	}
	db.wal = f
	return db, nil
}

// replay loads all intact records from the WAL.
func (db *DB) replay(f *os.File) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("sirendb: %w", err)
	}
	var hdr [8]byte // 4-byte length + 4-byte checksum
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // clean end or torn header: stop replay
			}
			return fmt.Errorf("sirendb: replaying WAL: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > 64<<20 {
			return nil // corrupt length: treat as torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil // torn record
		}
		if uint32(xxhash.Sum64(payload)) != sum {
			db.corrupt++
			continue
		}
		msg, err := wire.Parse(payload)
		if err != nil {
			db.corrupt++
			continue
		}
		db.appendLocked(msg)
	}
}

// CorruptRecords reports how many WAL records were skipped during replay.
func (db *DB) CorruptRecords() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.corrupt
}

// Insert stores one message (and appends it to the WAL when persistent).
func (db *DB) Insert(m wire.Message) error {
	return db.InsertBatch([]wire.Message{m})
}

// InsertBatch stores several messages under one lock/flush cycle — the shape
// the receiver's writer shards naturally produce. WAL serialisation happens
// before the lock is taken, so concurrent writer shards overlap the encoding
// work and only the file append and index update serialise.
func (db *DB) InsertBatch(ms []wire.Message) error {
	if len(ms) == 0 {
		return nil
	}
	var buf []byte
	if db.path != "" { // immutable after Open; WAL presence re-checked below
		for _, m := range ms {
			buf = appendWALRecord(buf, m)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal != nil {
		if _, err := db.wal.Write(buf); err != nil {
			return fmt.Errorf("sirendb: WAL write: %w", err)
		}
	}
	for _, m := range ms {
		db.appendLocked(m)
	}
	return nil
}

// appendWALRecord frames one message as a length+checksum WAL record.
func appendWALRecord(buf []byte, m wire.Message) []byte {
	payload := wire.Encode(m)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(xxhash.Sum64(payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

func (db *DB) appendLocked(m wire.Message) {
	idx := len(db.rows)
	db.rows = append(db.rows, m)
	db.byJob[m.JobID] = append(db.byJob[m.JobID], idx)
	pk := m.ProcessKey()
	db.byProcess[pk] = append(db.byProcess[pk], idx)
}

// Count returns the number of stored messages.
func (db *DB) Count() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.rows)
}

// Scan streams every message in insertion order; return false to stop.
func (db *DB) Scan(f func(m wire.Message) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, m := range db.rows {
		if !f(m) {
			return
		}
	}
}

// All returns a copy of every message in insertion order.
func (db *DB) All() []wire.Message {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]wire.Message(nil), db.rows...)
}

// ByJob returns all messages of one job in insertion order.
func (db *DB) ByJob(jobID string) []wire.Message {
	db.mu.RLock()
	defer db.mu.RUnlock()
	idxs := db.byJob[jobID]
	out := make([]wire.Message, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, db.rows[i])
	}
	return out
}

// ByProcess returns all messages sharing a process key.
func (db *DB) ByProcess(processKey string) []wire.Message {
	db.mu.RLock()
	defer db.mu.RUnlock()
	idxs := db.byProcess[processKey]
	out := make([]wire.Message, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, db.rows[i])
	}
	return out
}

// Jobs returns the distinct job IDs, sorted.
func (db *DB) Jobs() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.byJob))
	for j := range db.byJob {
		out = append(out, j)
	}
	sort.Strings(out)
	return out
}

// ProcessKeys returns the distinct process keys, sorted.
func (db *DB) ProcessKeys() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.byProcess))
	for k := range db.byProcess {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Compact rewrites the WAL to contain exactly the current rows (dropping
// torn/corrupt residue) and fsyncs it.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	tmpPath := db.path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("sirendb: compact: %w", err)
	}
	for _, m := range db.rows {
		if _, err := tmp.Write(appendWALRecord(nil, m)); err != nil {
			tmp.Close()
			return fmt.Errorf("sirendb: compact: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sirendb: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sirendb: compact: %w", err)
	}
	if err := db.wal.Close(); err != nil {
		return fmt.Errorf("sirendb: compact: %w", err)
	}
	if err := os.Rename(tmpPath, db.path); err != nil {
		return fmt.Errorf("sirendb: compact: %w", err)
	}
	f, err := os.OpenFile(db.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("sirendb: compact: %w", err)
	}
	db.wal = f
	db.corrupt = 0
	return nil
}

// Sync flushes the WAL to stable storage.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	return db.wal.Sync()
}

// Close syncs and closes the WAL. The in-memory view stays readable.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	if err := db.wal.Sync(); err != nil {
		db.wal.Close()
		return fmt.Errorf("sirendb: close: %w", err)
	}
	err := db.wal.Close()
	db.wal = nil
	return err
}
