// Package sirendb is the embedded message store behind the SIREN receiver —
// the stdlib-only substitute for the SQLite database the paper uses.
//
// The paper's schema is a single table keyed by the UDP header columns
// (JOBID, STEPID, PID, HASH, HOST, TIME, LAYER, TYPE) with the message
// CONTENT as payload. The store is sharded: rows, secondary indexes (by job
// and by process key), and the append-only write-ahead log are split into S
// shards partitioned by wire.PartitionHash(JOBID, HOST) — the same hash the
// receiver's dispatcher uses — so concurrent writer shards insert with zero
// cross-shard lock contention. Each shard persists to its own WAL segment
// file ("path.0" … "path.S-1"); a per-shard group-commit syncer batches
// fdatasync calls under a configurable latency bound, so durability does not
// ride on OS write-back and an fsync never stalls concurrent appends.
//
// Every record carries a store-wide sequence number, so Scan/All/ByJob
// present the merged shards in global insertion order and replay after a
// crash-interrupted Compact deduplicates records that momentarily exist in
// two segment files. Replay tolerates a torn final record (crash mid-write)
// and skips corrupt records (checksummed), in keeping with SIREN's
// graceful-failure design. Single-file WALs written by earlier versions are
// migrated to segments on first open, crash-safely.
package sirendb

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"siren/internal/obs"
	"siren/internal/wire"
)

// ErrClosed is returned by mutating operations on a persistent store after
// Close: silently accepting rows that can no longer reach the WAL would turn
// a lifecycle bug into data loss.
var ErrClosed = errors.New("sirendb: store is closed")

// ErrLocked is returned by Open when another process holds the store's
// advisory lock. Two processes appending to the same WAL segments would
// interleave records and corrupt the log.
var ErrLocked = errors.New("sirendb: store is locked by another process")

// DefaultSyncInterval is the group-commit latency bound used when
// Options.SyncInterval is zero: an appended record becomes durable at most
// this long after the write, amortising fdatasync across every batch that
// lands in the window.
const DefaultSyncInterval = 100 * time.Millisecond

// Options configure a store.
type Options struct {
	// Shards is the number of store shards, each owning its rows, indexes,
	// and WAL segment (default min(GOMAXPROCS, 4), matching the receiver's
	// writer-shard default so batches route shard→shard 1:1). Reopening with
	// a different count is safe: replay re-partitions rows by hash and reads
	// every segment on disk regardless of the configured count.
	Shards int
	// SyncInterval bounds how long an appended record may stay unsynced
	// before the group-commit syncer calls fdatasync (0 = DefaultSyncInterval;
	// negative = fdatasync synchronously on every insert batch).
	SyncInterval time.Duration
	// ReadOnly opens the store for serving without write access: a *shared*
	// advisory lock is taken (any number of read-only opens coexist, but a
	// writer's exclusive lock excludes them and vice versa), segments are
	// replayed from read-only handles without header repair or truncation,
	// sealed runs are attached, and no group-commit syncers start. Mutating
	// operations return ErrReadOnly. A store left needing writable recovery
	// (legacy WAL, uncompleted compaction) refuses to open read-only.
	ReadOnly bool
	// Metrics, when non-nil, registers the store's instruments there: WAL
	// append and group-commit fdatasync latency, commit batch bytes, Seal
	// phase durations, and run-read errors (see internal/obs). Nil leaves
	// every hot path uninstrumented at zero cost.
	Metrics *obs.Registry
}

func (o *Options) defaults() {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards > 4 {
			o.Shards = 4
		}
	}
	if o.Shards > 256 {
		o.Shards = 256
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = DefaultSyncInterval
	}
}

// DB is a thread-safe append-only message store, sharded by (JobID, Host).
type DB struct {
	path      string // "" = purely in-memory
	dir       string
	opts      Options
	shards    []*shard
	seq       atomic.Uint64 // last assigned store-wide sequence number
	corrupt   atomic.Int64  // records skipped during replay
	closed    atomic.Bool
	lockFile  *os.File
	staleSegs []string // segment files with index >= len(shards), folded in by Compact

	// sealMu guards the sealed-tier bookkeeping. sealGen is the highest
	// committed seal generation; sealedSeq is the marker's maxseq — the
	// replay filter's floor for WAL residue a crashed post-commit seal left
	// behind. Both only ever grow. runReadErrs counts lazy run-read failures
	// (block checksum mismatches found after Open) surfaced through Stats.
	sealMu      sync.Mutex
	sealGen     int
	sealedSeq   uint64
	runReadErrs atomic.Int64

	// mx holds the store's obs instruments; the zero value is the
	// uninstrumented no-op state (see storeMetrics).
	mx storeMetrics

	stopSync   chan struct{}
	syncWG     sync.WaitGroup
	syncErrMu  sync.Mutex
	syncErr    error       // first background fdatasync failure
	syncFailed atomic.Bool // fast-path flag for syncErr, checked on every insert

	// testCrashBeforeRename, when non-nil, simulates a process crash inside
	// Compact's rename phase for crash-recovery tests: returning true before
	// segment i's rename makes Compact stop dead — committed marker and
	// remaining temps left in place, no abort.
	testCrashBeforeRename func(i int) bool
	// testCrashAfterSealCommit simulates a crash right after Seal's commit
	// marker became durable: runs committed, WAL not yet truncated.
	testCrashAfterSealCommit bool
}

// Open opens (or creates) a database backed by WAL segments derived from
// path, with default options. An empty path yields a purely in-memory store.
func Open(path string) (*DB, error) { return OpenOptions(path, Options{}) }

// OpenOptions opens (or creates) a database backed by the WAL segment files
// "path.0" … "path.S-1", taking an exclusive advisory lock on "path.lock"
// (ErrLocked if another process holds it) and replaying every intact record
// found on disk. A single-file WAL written by earlier versions at path itself
// is migrated to segments before the store becomes writable.
func OpenOptions(path string, opts Options) (*DB, error) {
	opts.defaults()
	db := &DB{path: path, opts: opts, stopSync: make(chan struct{})}
	db.mx = newStoreMetrics(opts.Metrics)
	db.shards = make([]*shard, opts.Shards)
	for i := range db.shards {
		db.shards[i] = newShard()
		db.shards[i].fsyncNS = db.mx.fsyncNS
		db.shards[i].commitBytes = db.mx.commitBytes
	}
	if path == "" {
		return db, nil
	}
	db.dir = filepath.Dir(path)
	lock := acquireLock
	if opts.ReadOnly {
		lock = acquireSharedLock
	}
	lf, err := lock(path + ".lock")
	if err != nil {
		return nil, err
	}
	db.lockFile = lf
	if err := db.openSegments(); err != nil {
		for _, s := range db.shards {
			if s.wal != nil {
				_ = s.wal.Close() // cleanup on a path already returning err
			}
		}
		db.closeRunsLocked()
		_ = lf.Close() // ditto; the open error is what matters
		return nil, err
	}
	if opts.SyncInterval > 0 && !opts.ReadOnly {
		for _, s := range db.shards {
			db.syncWG.Add(1)
			go db.syncLoop(s)
		}
	}
	return db, nil
}

// StoreShards reports the number of store shards. Together with InsertShard
// it forms the direct-routing fast path the receiver uses when its writer
// count matches.
func (db *DB) StoreShards() int { return len(db.shards) }

// CorruptRecords reports how many WAL records were skipped during replay.
func (db *DB) CorruptRecords() int { return int(db.corrupt.Load()) }

// Insert stores one message (and appends it to its WAL segment when
// persistent).
func (db *DB) Insert(m wire.Message) error {
	return db.InsertBatch([]wire.Message{m})
}

// InsertBatch stores several messages under per-shard lock/flush cycles,
// partitioning them by wire.PartitionHash(JobID, Host). WAL serialisation
// happens before any lock is taken, so concurrent callers overlap the
// encoding work and only the segment append and index update serialise —
// per shard, not globally.
//
// Each shard group commits independently: on error the other groups are
// still attempted (one shard's full disk should not discard rows bound for
// healthy shards), so a non-nil return means *some* messages were not
// stored, not that none were. Callers must not blindly retry the whole
// batch — the stored subset would duplicate; SIREN's loss-tolerant layers
// treat a failed group like any other counted loss instead.
func (db *DB) InsertBatch(ms []wire.Message) error {
	if len(ms) == 0 {
		return nil
	}
	if len(db.shards) == 1 {
		return db.insertShard(db.shards[0], ms)
	}
	groups := make([][]wire.Message, len(db.shards))
	for _, m := range ms {
		i := db.shardIndex(m)
		groups[i] = append(groups[i], m)
	}
	var errs []error
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		if err := db.insertShard(db.shards[i], g); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// InsertShard stores a batch directly into one shard, skipping the
// per-message hash partitioning. The caller asserts every message hashes to
// this shard — the receiver's writer shards hold that by construction when
// writer count equals StoreShards(). A misrouted batch costs segment
// locality, not correctness: queries merge all shards, replay re-partitions
// by hash on the next open, and the streaming consolidation's fan-in
// detects identities split across shards and falls back to a merged
// cross-shard pass for the affected job.
func (db *DB) InsertShard(shard int, ms []wire.Message) error {
	if shard < 0 || shard >= len(db.shards) {
		return fmt.Errorf("sirendb: shard %d out of range [0,%d)", shard, len(db.shards))
	}
	if len(ms) == 0 {
		return nil
	}
	return db.insertShard(db.shards[shard], ms)
}

func (db *DB) shardIndex(m wire.Message) int {
	if len(db.shards) == 1 {
		return 0
	}
	return int(wire.PartitionHash([]byte(m.JobID), []byte(m.Host)) % uint64(len(db.shards)))
}

func (db *DB) insertShard(s *shard, ms []wire.Message) error {
	if db.opts.ReadOnly {
		return ErrReadOnly
	}
	persistent := db.path != ""
	if persistent && db.closed.Load() {
		return ErrClosed
	}
	// A failed group commit means durability is already lost for an
	// acknowledged window; fail inserts immediately (the receiver surfaces
	// this in its stats) instead of acknowledging rows that may never reach
	// the platter — the operator learns now, not at Close.
	if persistent && db.syncFailed.Load() {
		return db.takeSyncErr()
	}
	var buf []byte
	var offs []int
	var sums []uint32
	if persistent {
		var err error
		if buf, offs, sums, err = encodeRecords(ms); err != nil {
			return err
		}
	}
	s.mu.Lock()
	if persistent && s.wal == nil {
		s.mu.Unlock()
		return ErrClosed
	}
	// Sequence numbers are reserved under the shard lock so each shard's
	// rows (and its segment's records) stay seq-sorted; the atomic keeps
	// the counter consistent across shards.
	start := db.seq.Add(uint64(len(ms))) - uint64(len(ms))
	if buf != nil {
		for i := range offs {
			patchRecordSeq(buf, offs[i], sums[i], start+1+uint64(i))
		}
		appendStart := time.Now()
		if _, err := s.wal.Write(buf); err != nil {
			// A short write advanced the file offset past s.written; rewind
			// so the next append overwrites the partial record instead of
			// leaving a misframing gap in the segment. If even the rewind
			// fails the offset is unknowable — poison the shard rather than
			// let a later append create a gap that frame-skips replay into
			// acknowledged records.
			if _, serr := s.wal.Seek(s.written, io.SeekStart); serr != nil {
				db.recordSyncErr(fmt.Errorf("sirendb: WAL offset unrecoverable after failed write: %w", serr))
				_ = s.wal.Close() // shard is being poisoned; the write error wins
				s.wal = nil
			}
			s.mu.Unlock()
			return fmt.Errorf("sirendb: WAL write: %w", err)
		}
		db.mx.walAppendNS.Since(appendStart)
		s.written += int64(len(buf))
	}
	for i := range ms {
		s.appendLocked(ms[i], start+1+uint64(i))
	}
	s.mu.Unlock()
	if persistent {
		if db.opts.SyncInterval < 0 {
			if err := s.fsync(); err != nil {
				// Poison like the background path: a failed fdatasync may
				// have marked the dirty pages clean (Linux ≥ 4.13), so a
				// "successful" retry would not make the lost window durable.
				db.recordSyncErr(err)
				return err
			}
			return nil
		}
		s.notifyDirty()
	}
	return nil
}

// rlockAll read-locks every shard (ascending, matching the global lock
// order) so cross-shard reads see one consistent snapshot; the returned
// function releases them. Per-shard locking would let a concurrent insert
// land between shard visits and surface a later row without its
// predecessor — a state the single-mutex store could never expose.
func (db *DB) rlockAll() func() {
	for _, s := range db.shards {
		s.mu.RLock()
	}
	return func() {
		for _, s := range db.shards {
			s.mu.RUnlock()
		}
	}
}

// Count returns the number of stored messages, sealed runs included.
func (db *DB) Count() int {
	defer db.rlockAll()()
	n := 0
	for _, s := range db.shards {
		n += len(s.rows) + s.sealedRows
	}
	return n
}

// tierViews captures every shard's head rows and sealed-run set under one
// brief all-shard read lock. Both are copy-on-write (rows append-only, run
// slices swapped wholesale by Seal/retention), so the captured headers stay
// valid without the lock.
func (db *DB) tierViews() (rows [][]row, runs [][]sealedRun) {
	rows = make([][]row, len(db.shards))
	runs = make([][]sealedRun, len(db.shards))
	unlock := db.rlockAll()
	for i, s := range db.shards {
		rows[i] = s.rows
		runs[i] = s.runs
	}
	unlock()
	return rows, runs
}

// noteRunErr records a lazy run-read failure (a block checksum mismatch
// found while decoding an already-opened run). The affected stream ends
// early rather than yielding wrong rows; the counter surfaces through Stats
// so the loss is observable, in keeping with SIREN's graceful-failure
// design (a torn *committed* run is caught hard at Open instead).
func (db *DB) noteRunErr(error) {
	db.runReadErrs.Add(1)
	db.mx.runReadErrs.Inc()
}

// Scan streams every message exactly once; return false to stop. The
// stream is a seq-merge across shard heads and sealed runs: head rows come
// out in global insertion order, a sealed run's rows in its on-disk
// (job, host, seq) sort — so any one (job, host) stream is always in
// insertion order, while rows of different hosts may be grouped rather than
// globally seq-interleaved once sealed. Scan reads a
// point-in-time snapshot captured under a brief lock: the callback runs
// with no store lock held, so it may block, take arbitrarily long, or even
// insert into the store without stalling writers or deadlocking; rows
// inserted after the Scan began are not surfaced. Use Snapshot for repeated
// reads of one cut.
func (db *DB) Scan(f func(m wire.Message) bool) {
	rows, runs := db.tierViews()
	mergeSrcs(tierSources(rows, runs, db.noteRunErr), func(m wire.Message, _ uint64) bool { return f(m) })
}

// scanHoldingAllLocks is the pre-snapshot read path: the same k-way merge,
// performed while holding every shard RLock for the full duration of the
// scan — so every concurrent insert stalls until the scan finishes. Kept
// only as the baseline for BenchmarkScanSnapshot; no production caller
// remains.
func (db *DB) scanHoldingAllLocks(f func(m wire.Message) bool) {
	defer db.rlockAll()()
	pos := make([]int, len(db.shards))
	for {
		best := -1
		var bestSeq uint64
		for i, s := range db.shards {
			if pos[i] >= len(s.rows) {
				continue
			}
			if sq := s.rows[pos[i]].seq; best < 0 || sq < bestSeq {
				best, bestSeq = i, sq
			}
		}
		if best < 0 {
			return
		}
		if !f(db.shards[best].rows[pos[best]].msg) {
			return
		}
		pos[best]++
	}
}

// All returns a copy of every message, sealed runs included, in Scan's
// order (insertion order per (job, host); host blocks once sealed).
func (db *DB) All() []wire.Message {
	rows, runs := db.tierViews()
	n := 0
	for i := range rows {
		n += len(rows[i])
		for _, sr := range runs[i] {
			n += sr.run.Rows()
		}
	}
	out := make([]wire.Message, 0, n)
	mergeSrcs(tierSources(rows, runs, db.noteRunErr), func(m wire.Message, _ uint64) bool {
		out = append(out, m)
		return true
	})
	return out
}

// jobTierViews captures, under one all-shard read lock, each shard's head
// rows, one head secondary-index entry, and the sealed runs that contain
// jobID (located through each run's embedded job index — O(log jobs), no
// row decode). n counts head index entries plus run job rows.
func (db *DB) jobTierViews(jobID string, pick func(*shard) []int) (rows [][]row, idxs [][]int, runs [][]sealedRun, n int) {
	rows = make([][]row, len(db.shards))
	idxs = make([][]int, len(db.shards))
	runs = make([][]sealedRun, len(db.shards))
	unlock := db.rlockAll()
	for i, s := range db.shards {
		rows[i] = s.rows
		idxs[i] = pick(s)
		n += len(idxs[i])
		for _, sr := range s.runs {
			if jr, _, _, ok := sr.run.JobStats(jobID); ok {
				runs[i] = append(runs[i], sr)
				n += jr
			}
		}
	}
	unlock()
	return rows, idxs, runs, n
}

// ByJob returns all messages of one job in insertion order, sealed runs
// included. The head contributes its sequence-sorted index lists, each run
// its indexed job extents; the per-shard streams k-way merge by sequence.
func (db *DB) ByJob(jobID string) []wire.Message {
	rows, idxs, runs, n := db.jobTierViews(jobID, func(s *shard) []int { return s.byJob[jobID] })
	out := make([]wire.Message, 0, n)
	mergeSrcs(jobSources(rows, idxs, runs, jobID, nil, db.noteRunErr), func(m wire.Message, _ uint64) bool {
		out = append(out, m)
		return true
	})
	return out
}

// ByJobFunc streams one job's messages in insertion order without
// materialising a slice — the zero-copy variant of ByJob. Return false to
// stop. No store lock is held while f runs.
func (db *DB) ByJobFunc(jobID string, f func(m wire.Message) bool) {
	rows, idxs, runs, _ := db.jobTierViews(jobID, func(s *shard) []int { return s.byJob[jobID] })
	mergeSrcs(jobSources(rows, idxs, runs, jobID, nil, db.noteRunErr), func(m wire.Message, _ uint64) bool { return f(m) })
}

// ByProcess returns all messages sharing a process key, in insertion order,
// sealed runs included. Head rows come straight off the byProcess index;
// run files index by job only, so the job's extents are streamed and
// filtered on the full key.
func (db *DB) ByProcess(processKey string) []wire.Message {
	var out []wire.Message
	db.ByProcessFunc(processKey, func(m wire.Message) bool {
		out = append(out, m)
		return true
	})
	return out
}

// ByProcessFunc streams one process's messages in insertion order — the
// zero-copy variant of ByProcess. Return false to stop.
func (db *DB) ByProcessFunc(processKey string, f func(m wire.Message) bool) {
	jobID := processKeyJob(processKey)
	rows, idxs, runs, _ := db.jobTierViews(jobID, func(s *shard) []int { return s.byProcess[processKey] })
	filter := func(m wire.Message) bool { return m.ProcessKey() == processKey }
	mergeSrcs(jobSources(rows, idxs, runs, jobID, filter, db.noteRunErr), func(m wire.Message, _ uint64) bool { return f(m) })
}

// processKeyJob extracts the JobID field (the first) from a process key —
// the fields are joined with 0x1f, same as wire.Header.ProcessKey.
func processKeyJob(pk string) string {
	if i := strings.IndexByte(pk, '\x1f'); i >= 0 {
		return pk[:i]
	}
	return pk
}

// keys returns the sorted union of one secondary-index key set over all
// shards, merging the per-shard sorted caches — no per-call re-sort once
// the caches are warm (they invalidate only when a shard gains a new key).
func (db *DB) keys(pick func(*shard) []string) []string {
	lists := make([][]string, len(db.shards))
	unlock := db.rlockAll()
	for i, s := range db.shards {
		lists[i] = pick(s)
	}
	unlock()
	return mergeSortedUnique(lists)
}

// Jobs returns the distinct job IDs, sorted — the head's cached key sets
// merged with each sealed run's embedded job index (already sorted, no row
// decode).
func (db *DB) Jobs() []string {
	lists := make([][]string, 0, len(db.shards))
	unlock := db.rlockAll()
	for _, s := range db.shards {
		lists = append(lists, sortedKeysOf(&s.jobKeys, s.byJob))
		for _, sr := range s.runs {
			lists = append(lists, sr.run.Jobs())
		}
	}
	unlock()
	return mergeSortedUnique(lists)
}

// ProcessKeys returns the distinct process keys, sorted. Runs index by job
// only, so their rows are decoded to recover process keys — O(sealed rows),
// acceptable for this diagnostic accessor (no serving path calls it).
func (db *DB) ProcessKeys() []string {
	keys := db.keys(func(s *shard) []string { return sortedKeysOf(&s.procKeys, s.byProcess) })
	_, runs := db.tierViews()
	set := map[string]struct{}{}
	for _, shardRuns := range runs {
		for _, sr := range shardRuns {
			c := sr.run.Cursor()
			for {
				m, _, ok := c.Next()
				if !ok {
					break
				}
				set[m.ProcessKey()] = struct{}{}
			}
			if err := c.Err(); err != nil {
				db.noteRunErr(err)
			}
		}
	}
	if len(set) == 0 {
		return keys
	}
	for _, k := range keys {
		set[k] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mergeSortedUnique k-way merges sorted string lists, dropping duplicates.
func mergeSortedUnique(lists [][]string) []string {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	out := make([]string, 0, n)
	pos := make([]int, len(lists))
	for {
		best, found := "", false
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if !found || l[pos[i]] < best {
				best, found = l[pos[i]], true
			}
		}
		if !found {
			return out
		}
		out = append(out, best)
		for i, l := range lists {
			if pos[i] < len(l) && l[pos[i]] == best {
				pos[i]++
			}
		}
	}
}

// StoreStats is a point-in-time summary of store state for telemetry
// (cmd/siren-receiver exports it via expvar alongside the receiver's
// counters).
type StoreStats struct {
	Rows           int    // stored messages (WAL head + sealed runs)
	Shards         int    // store shards
	LastSeq        uint64 // highest assigned store-wide sequence number
	CorruptRecords int    // WAL records skipped during replay
	WALBytes       int64  // bytes appended across all segments
	WALSynced      int64  // bytes confirmed durable by fdatasync
	SyncFailed     bool   // a group commit failed; the store is poisoned
	SealedGen      int    // highest committed seal generation (0 = never sealed)
	SealedRuns     int    // attached sealed run files
	SealedRows     int    // rows living in sealed runs
	SealedBytes    int64  // bytes across sealed run files
	RunReadErrors  int    // lazy run-read failures (block corruption found after Open)
}

// Stats snapshots the store's telemetry counters.
func (db *DB) Stats() StoreStats {
	st := StoreStats{
		Shards:         len(db.shards),
		LastSeq:        db.seq.Load(),
		CorruptRecords: int(db.corrupt.Load()),
		SyncFailed:     db.syncFailed.Load(),
		RunReadErrors:  int(db.runReadErrs.Load()),
	}
	db.sealMu.Lock()
	st.SealedGen = db.sealGen
	db.sealMu.Unlock()
	for _, s := range db.shards {
		s.mu.RLock()
		st.Rows += len(s.rows) + s.sealedRows
		st.SealedRuns += len(s.runs)
		st.SealedRows += s.sealedRows
		for _, sr := range s.runs {
			st.SealedBytes += sr.run.Size()
		}
		st.WALBytes += s.written
		s.mu.RUnlock()
		st.WALSynced += s.synced.Load()
	}
	return st
}

// Compact rewrites every WAL segment to contain exactly its shard's current
// rows — dropping torn/corrupt residue, re-homing rows whose segment no
// longer matches their shard (after a shard-count change), and folding in
// leftover segments — then removes the leftovers.
//
// Compaction is transactional against crashes: every new segment is first
// written and fsynced as "<segment>.compact" with the file handle kept (it
// becomes the shard's WAL handle after the rename, so there is no fallible
// reopen step), then a commit marker is made durable, and only then are the
// temps renamed into place. A crash before the marker leaves the old
// segments untouched (orphan temps are swept on the next open); a crash
// after it is completed by the next open, which finishes the renames from
// the fsynced temps — so no interleaving of crash and rename can lose a row
// that lives in a different segment than the one about to be rewritten.
func (db *DB) Compact() error {
	if db.path == "" {
		return nil
	}
	if db.opts.ReadOnly {
		return ErrReadOnly
	}
	if db.closed.Load() {
		return ErrClosed
	}
	// Freeze the whole store: syncMu keeps the group-commit syncers from
	// fdatasync-ing handles mid-swap, the write locks freeze rows and WALs.
	// Lock order (syncMu before mu, ascending shards) matches every other
	// path.
	for _, s := range db.shards {
		s.syncMu.Lock()
		defer s.syncMu.Unlock()
	}
	for _, s := range db.shards {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	for _, s := range db.shards {
		if s.wal == nil {
			return ErrClosed
		}
	}

	// Phase 1: write and fsync every replacement segment as a temp file.
	tmps := make([]*os.File, len(db.shards))
	sizes := make([]int64, len(db.shards))
	discard := func() {
		for i, f := range tmps {
			if f != nil {
				_ = f.Close() // abandoning the temp; the triggering error wins
				os.Remove(segmentPath(db.path, i) + ".compact")
			}
		}
	}
	for i, s := range db.shards {
		f, size, err := writeSegmentSnapshot(segmentPath(db.path, i)+".compact", s.rows)
		if err != nil {
			discard()
			return fmt.Errorf("sirendb: compact: %w", err)
		}
		tmps[i], sizes[i] = f, size
	}
	//lint:ignore mutexscope compaction freezes the world by design: every shard is write-locked while the temp set is made durable
	if err := fsyncDir(db.dir); err != nil {
		discard()
		return fmt.Errorf("sirendb: compact: %w", err)
	}

	// Phase 2: commit. Once the marker is durable, the temp set is the
	// authoritative store state; a crashed process completes the renames on
	// the next open (completeCompact). If writing the marker errors, it may
	// nevertheless be (or become) durable — e.g. a Close failure after a
	// successful Sync — and a durable marker with discarded temps would
	// roll forward against nothing and delete the leftover segments it
	// thinks were folded in. So temps may only be discarded once the
	// marker's removal is itself durable; otherwise fail to the same
	// poisoned roll-forward state as a post-commit failure.
	if err := writeCompactMarker(db.path, len(db.shards)); err != nil {
		if rerr := removeCompactMarker(db.path, db.dir); rerr == nil {
			discard()
			return fmt.Errorf("sirendb: compact: %w", err)
		}
		return db.compactRollForward(tmps, fmt.Errorf("sirendb: compact: %w", err))
	}

	// Phase 3: rename temps into place, swapping each shard's WAL handle to
	// its (still open) temp fd. The marker is durable, so a rename failure
	// must roll FORWARD, not back: an already-replaced segment holds only
	// its own shard's rows, and rows cross-homed from it (shard-count
	// change, misrouted InsertShard) now exist on disk only in the
	// not-yet-renamed temps — deleting those would orphan them. Keep the
	// marker and temps for the next open to complete, and poison inserts so
	// no acknowledged append lands in an old segment the roll-forward will
	// replace.
	for i, s := range db.shards {
		if db.testCrashBeforeRename != nil && db.testCrashBeforeRename(i) {
			return fmt.Errorf("sirendb: compact: injected crash before rename %d", i)
		}
		segPath := segmentPath(db.path, i)
		if err := os.Rename(segPath+".compact", segPath); err != nil {
			return db.compactRollForward(tmps[i:], fmt.Errorf("sirendb: compact: %w", err))
		}
		old := s.wal
		s.wal = tmps[i] // the renamed inode; write offset is at its end
		s.written = sizes[i]
		s.synced.Store(sizes[i])
		_ = old.Close() // unlinked by the rename; nothing left to preserve
	}
	// Crash ordering: the renames above atomically replace the segments,
	// but the new directory entries are not durable until the directory
	// itself is fsynced — without this, a crash right after compaction can
	// present the old segments again (losing the rewrite) or, on some
	// filesystems, neither file.
	//lint:ignore mutexscope compaction freezes the world by design: the rename swap must be durable before any shard unfreezes
	if err := fsyncDir(db.dir); err != nil {
		return fmt.Errorf("sirendb: compact: %w", err)
	}

	// Phase 4: the leftovers' rows now live in the active segments; drop
	// them and retire the marker.
	for _, p := range db.staleSegs {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("sirendb: compact: %w", err)
		}
	}
	db.staleSegs = nil
	if err := removeCompactMarker(db.path, db.dir); err != nil {
		return fmt.Errorf("sirendb: compact: %w", err)
	}
	db.corrupt.Store(0)
	return nil
}

// compactRollForward abandons an in-process compaction whose commit marker
// may be durable: the fsynced temps stay on disk as the authoritative state
// for the next open's completeCompact, temp handles are released, and the
// store is poisoned — a row acknowledged into an old segment now would be
// silently destroyed when the roll-forward replaces that segment.
func (db *DB) compactRollForward(tmps []*os.File, err error) error {
	for _, f := range tmps {
		if f != nil {
			_ = f.Close() // releasing handles on an already-poisoned path
		}
	}
	db.recordSyncErr(fmt.Errorf("sirendb: compaction interrupted, reopen to complete: %w", err))
	return err
}

// Sync is the durability barrier: it fdatasyncs every shard's segment and
// returns only when every row inserted before the call is stable — the
// synchronous form of the group commit the background syncers run on a
// timer. It also surfaces any earlier background sync failure.
func (db *DB) Sync() error {
	if db.path == "" || db.opts.ReadOnly {
		return nil // nothing of ours is unsynced
	}
	if db.closed.Load() {
		return ErrClosed
	}
	for _, s := range db.shards {
		if err := s.fsync(); err != nil {
			// Sticky, like the background path: the un-synced window is
			// lost even if a later fdatasync "succeeds" (Linux marks the
			// failed dirty pages clean).
			db.recordSyncErr(err)
			return err
		}
	}
	return db.takeSyncErr()
}

// Close stops the group-commit syncers, fdatasyncs and closes every segment,
// and releases the advisory lock. The in-memory view stays readable; further
// inserts on a persistent store return ErrClosed. Close is idempotent.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	if db.path == "" {
		return nil
	}
	close(db.stopSync)
	db.syncWG.Wait()
	var first error
	for _, s := range db.shards {
		s.syncMu.Lock()
		s.mu.Lock()
		f := s.wal
		s.wal = nil
		s.mu.Unlock()
		if f != nil {
			if err := fdatasync(f); err != nil && first == nil {
				first = fmt.Errorf("sirendb: close: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("sirendb: close: %w", err)
			}
		}
		s.syncMu.Unlock()
	}
	// Closing the lock file releases the flock. The lock file itself stays
	// on disk: unlinking it would let a concurrent Open lock a fresh inode
	// while a third process still holds the old one.
	if db.lockFile != nil {
		if err := db.lockFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("sirendb: close: %w", err)
		}
	}
	if first == nil {
		first = db.takeSyncErr()
	}
	return first
}

func (db *DB) recordSyncErr(err error) {
	db.syncErrMu.Lock()
	if db.syncErr == nil {
		db.syncErr = err
	}
	db.syncErrMu.Unlock()
	db.syncFailed.Store(true)
}

// takeSyncErr reports the first background fdatasync failure. The error is
// sticky: durability was lost for some acknowledged window, so every later
// insert and barrier keeps failing rather than pretending the store
// recovered.
func (db *DB) takeSyncErr() error {
	db.syncErrMu.Lock()
	defer db.syncErrMu.Unlock()
	return db.syncErr
}
