//go:build !linux

package sirendb

import "os"

// fdatasync falls back to a full fsync where the cheaper data-only variant
// is unavailable.
func fdatasync(f *os.File) error {
	return f.Sync()
}
