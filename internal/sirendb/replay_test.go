// Replay, durability, and recovery tests for the segmented WAL: a corruption
// matrix (torn header, torn payload, in-bounds corrupt length, mid-file
// bitflip) over single- and multi-segment stores, a crash-mid-group-commit
// simulation proving no acknowledged row is lost, process-exclusion locking,
// ErrClosed semantics, and legacy single-file migration.
package sirendb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"siren/internal/wire"
	"siren/internal/xxhash"
)

// spreadMsg varies (JobID, Host) so rows land on every shard.
func spreadMsg(i int, content string) wire.Message {
	return wire.Message{
		Header: wire.Header{
			JobID: fmt.Sprintf("job-%d", i%7), StepID: "0", PID: i,
			Hash: "abcd", Host: fmt.Sprintf("nid%06d", i%5),
			Time: 1733900000 + int64(i), Layer: wire.LayerSelf,
			Type: wire.TypeMetadata, Seq: 0, Total: 1,
		},
		Content: []byte(content),
	}
}

type recOffset struct {
	hdrOff     int // start of the 16-byte record header
	payloadOff int
	payloadLen int
	seq        uint64
}

// recordOffsets walks a segment file's framing (skipping the magic) so tests
// can corrupt records surgically.
func recordOffsets(t *testing.T, data []byte) []recOffset {
	t.Helper()
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		t.Fatalf("segment missing magic")
	}
	var recs []recOffset
	off := len(segMagic)
	for off+recHdrSize <= len(data) {
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		seq := binary.LittleEndian.Uint64(data[off+8 : off+16])
		if off+recHdrSize+length > len(data) {
			break
		}
		recs = append(recs, recOffset{
			hdrOff: off, payloadOff: off + recHdrSize, payloadLen: length, seq: seq,
		})
		off += recHdrSize + length
	}
	return recs
}

// largestSegment returns the path and contents of the store segment holding
// the most records.
func largestSegment(t *testing.T, base string, shards int) (string, []byte) {
	t.Helper()
	var bestPath string
	var bestData []byte
	best := -1
	for i := 0; i < shards; i++ {
		p := segmentPath(base, i)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if n := len(recordOffsets(t, data)); n > best {
			best, bestPath, bestData = n, p, data
		}
	}
	return bestPath, bestData
}

func TestReplayCorruptionMatrix(t *testing.T) {
	const rows = 120
	for _, shards := range []int{1, 4} {
		for _, mode := range []string{"torn-header", "torn-payload", "corrupt-length", "bitflip"} {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, mode), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "siren.wal")
				db, err := OpenOptions(path, Options{Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < rows; i++ {
					if err := db.Insert(spreadMsg(i, "content-payload")); err != nil {
						t.Fatal(err)
					}
				}
				if err := db.Close(); err != nil {
					t.Fatal(err)
				}

				seg, data := largestSegment(t, path, shards)
				recs := recordOffsets(t, data)
				if len(recs) < 4 {
					t.Fatalf("segment %s has only %d records", seg, len(recs))
				}
				segRows := len(recs)
				otherRows := rows - segRows
				mid := len(recs) / 2
				var wantRows, wantCorruptMin int
				switch mode {
				case "torn-header":
					// Crash mid-append: only half the last record's header
					// made it out. The record is lost, everything else is not.
					data = data[:recs[segRows-1].hdrOff+7]
					wantRows = rows - 1
				case "torn-payload":
					data = data[:recs[segRows-1].payloadOff+recs[segRows-1].payloadLen/2]
					wantRows = rows - 1
				case "corrupt-length":
					// An in-bounds garbage length misframes the stream from
					// the middle record on: rows before it and in other
					// segments survive, the rest surface as corrupt/lost.
					binary.LittleEndian.PutUint32(data[recs[mid].hdrOff:], uint32(recs[mid].payloadLen+5))
					wantRows = otherRows + mid
					wantCorruptMin = 1
				case "bitflip":
					// One flipped payload byte kills exactly that record;
					// framing stays intact so every other record replays.
					data[recs[mid].payloadOff+1] ^= 0x80
					wantRows = rows - 1
					wantCorruptMin = 1
				}
				if err := os.WriteFile(seg, data, 0o644); err != nil {
					t.Fatal(err)
				}

				db2, err := OpenOptions(path, Options{Shards: shards})
				if err != nil {
					t.Fatalf("reopen after %s: %v", mode, err)
				}
				defer db2.Close()
				got := db2.Count()
				switch mode {
				case "corrupt-length":
					// Misframing can destroy later records in this segment
					// but never rows before the corruption or other segments.
					if got < wantRows || got >= rows {
						t.Errorf("rows = %d, want [%d, %d)", got, wantRows, rows)
					}
				default:
					if got != wantRows {
						t.Errorf("rows = %d, want %d", got, wantRows)
					}
				}
				if db2.CorruptRecords() < wantCorruptMin {
					t.Errorf("corrupt = %d, want >= %d", db2.CorruptRecords(), wantCorruptMin)
				}
				// Accounting stays sane: nothing is double-counted.
				if got+db2.CorruptRecords() > rows {
					t.Errorf("rows %d + corrupt %d exceed written %d", got, db2.CorruptRecords(), rows)
				}
			})
		}
	}
}

// TestCrashMidGroupCommit proves the group-commit contract: every row
// acknowledged by the Sync barrier survives a crash, simulated by keeping
// only each segment's fdatasync-confirmed prefix (the pessimistic model —
// nothing past the last fdatasync reached the platter) plus torn residue.
func TestCrashMidGroupCommit(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "siren.wal")
			// A huge interval keeps the background syncer idle so the test
			// controls exactly what is durable.
			db, err := OpenOptions(path, Options{Shards: shards, SyncInterval: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			const acked = 180
			for i := 0; i < acked; i++ {
				if err := db.Insert(spreadMsg(i, "acknowledged")); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Sync(); err != nil { // durability barrier: rows 0..179 acknowledged
				t.Fatal(err)
			}
			for i := acked; i < acked+90; i++ {
				if err := db.Insert(spreadMsg(i, "in-flight")); err != nil {
					t.Fatal(err)
				}
			}

			// Crash: copy each segment truncated at its synced offset, plus
			// a few torn bytes of the unsynced tail on shard 0.
			crash := filepath.Join(dir, "after-crash")
			if err := os.Mkdir(crash, 0o755); err != nil {
				t.Fatal(err)
			}
			crashPath := filepath.Join(crash, "siren.wal")
			for i, s := range db.shards {
				data, err := os.ReadFile(segmentPath(path, i))
				if err != nil {
					t.Fatal(err)
				}
				durable := s.synced.Load()
				if int64(len(data)) < durable {
					t.Fatalf("shard %d: synced %d beyond file size %d", i, durable, len(data))
				}
				keep := data[:durable]
				if i == 0 && int64(len(data)) > durable+5 {
					keep = data[:durable+5] // torn unsynced tail
				}
				if err := os.WriteFile(segmentPath(crashPath, i), keep, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			db.Close()

			db2, err := OpenOptions(crashPath, Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			if got := db2.Count(); got != acked {
				t.Errorf("replayed %d rows, want exactly the %d acknowledged", got, acked)
			}
			if db2.CorruptRecords() != 0 {
				t.Errorf("corrupt = %d after clean group-commit crash", db2.CorruptRecords())
			}
			for _, m := range db2.All() {
				if string(m.Content) != "acknowledged" {
					t.Fatalf("unacknowledged row %q replayed as durable", m.Content)
				}
			}
		})
	}
}

// TestAppendAfterTornTail pins the recovery rule that appends resume at the
// end of the valid prefix: the seed implementation appended *after* torn
// residue, making every post-crash insert unreachable to the next replay.
func TestAppendAfterTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		db.Insert(msg("7", i, wire.TypeMetadata, "before"))
	}
	db.Close()
	seg := segmentPath(path, 0)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenOptions(path, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Count() != 9 {
		t.Fatalf("after tear: %d rows, want 9", db2.Count())
	}
	for i := 0; i < 5; i++ {
		if err := db2.Insert(msg("8", i, wire.TypeMetadata, "after")); err != nil {
			t.Fatal(err)
		}
	}
	db2.Close()

	db3, err := OpenOptions(path, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if db3.Count() != 14 {
		t.Errorf("after reopen: %d rows, want 14 (post-crash appends must be replayable)", db3.Count())
	}
	if db3.CorruptRecords() != 0 {
		t.Errorf("corrupt = %d", db3.CorruptRecords())
	}
}

func TestGroupCommitLatencyBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 2, SyncInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 50; i++ {
		if err := db.Insert(spreadMsg(i, "x")); err != nil {
			t.Fatal(err)
		}
	}
	// Without any explicit Sync, the background syncers must make every
	// appended byte durable within the latency bound (plus slack for a
	// loaded CI box).
	deadline := time.Now().Add(5 * time.Second)
	for {
		allSynced := true
		for _, s := range db.shards {
			s.mu.RLock()
			w := s.written
			s.mu.RUnlock()
			if s.synced.Load() < w {
				allSynced = false
			}
		}
		if allSynced {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("group-commit syncer did not fdatasync within the latency bound")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestInsertAfterCloseReturnsErrClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(msg("1", 1, wire.TypeMetadata, "x")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(msg("1", 2, wire.TypeMetadata, "dropped")); !errors.Is(err, ErrClosed) {
		t.Errorf("Insert after Close = %v, want ErrClosed", err)
	}
	if err := db.InsertBatch([]wire.Message{msg("1", 3, wire.TypeMetadata, "dropped")}); !errors.Is(err, ErrClosed) {
		t.Errorf("InsertBatch after Close = %v, want ErrClosed", err)
	}
	if err := db.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after Close = %v, want ErrClosed", err)
	}
	if err := db.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after Close = %v, want ErrClosed", err)
	}
	// The in-memory view stays readable, and no silent row slipped in.
	if db.Count() != 1 {
		t.Errorf("Count = %d after rejected inserts, want 1", db.Count())
	}
	// A second Close stays a no-op.
	if err := db.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
	// Purely in-memory stores have no WAL to protect; Close keeps them usable.
	mem, _ := Open("")
	mem.Close()
	if err := mem.Insert(msg("1", 1, wire.TypeMetadata, "ok")); err != nil {
		t.Errorf("in-memory Insert after Close = %v", err)
	}
}

// TestSyncFailurePoisonsInserts: once a group commit fails, durability is
// already lost for an acknowledged window — further inserts must fail
// loudly (the receiver counts them in its stats) instead of acknowledging
// rows that may never become durable.
func TestSyncFailurePoisonsInserts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Insert(spreadMsg(1, "ok")); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected fdatasync failure")
	db.recordSyncErr(injected)
	if err := db.Insert(spreadMsg(2, "x")); !errors.Is(err, injected) {
		t.Errorf("Insert after sync failure = %v, want the sticky sync error", err)
	}
	if err := db.Sync(); !errors.Is(err, injected) {
		t.Errorf("Sync after sync failure = %v, want the sticky sync error", err)
	}
}

func TestOpenConflictReturnsErrLocked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrLocked) {
		t.Errorf("second Open = %v, want ErrLocked", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The lock dies with the holder: reopening after Close succeeds.
	db2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	db2.Close()
}

// writeLegacyWAL writes a pre-segment single-file WAL ([len][sum][payload]
// framing) the way the seed implementation did.
func writeLegacyWAL(t *testing.T, path string, ms []wire.Message) {
	t.Helper()
	var buf []byte
	for _, m := range ms {
		payload := wire.Encode(m)
		var hdr [legacyHdrLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(xxhash.Sum64(payload)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLegacyWALMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	var ms []wire.Message
	for i := 0; i < 40; i++ {
		ms = append(ms, spreadMsg(i, "legacy-row"))
	}
	writeLegacyWAL(t, path, ms)

	db, err := OpenOptions(path, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if db.Count() != len(ms) {
		t.Errorf("migrated %d rows, want %d", db.Count(), len(ms))
	}
	// Migration is complete: the legacy file is gone, segments exist.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("legacy WAL still present after migration (err=%v)", err)
	}
	// The store stays writable and replayable after migration.
	if err := db.Insert(spreadMsg(99, "post-migration")); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := OpenOptions(path, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Count() != len(ms)+1 {
		t.Errorf("after reopen: %d rows, want %d", db2.Count(), len(ms)+1)
	}
}

// TestLegacyMigrationCrashRedo: if the legacy file still exists, any
// segments are a migration that crashed before the final remove — they must
// be discarded and the migration redone from the (complete) legacy file,
// never merged into duplicates.
func TestLegacyMigrationCrashRedo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	var ms []wire.Message
	for i := 0; i < 30; i++ {
		ms = append(ms, spreadMsg(i, "legacy-row"))
	}
	writeLegacyWAL(t, path, ms)
	// Simulate the crash: a completed segment write for shard 0 (holding a
	// subset of the rows) alongside the intact legacy file.
	db, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	seg0, err := os.ReadFile(segmentPath(path, 0))
	if err != nil {
		t.Fatal(err)
	}
	writeLegacyWAL(t, path, ms) // legacy resurrected, segments now partial
	if err := os.Remove(segmentPath(path, 1)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segmentPath(path, 0), seg0, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Count() != len(ms) {
		t.Errorf("after crash-redo: %d rows, want %d (no duplicates, no loss)", db2.Count(), len(ms))
	}
}

func TestShardCountChangeAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 60
	for i := 0; i < rows; i++ {
		db.Insert(spreadMsg(i, "v"))
	}
	db.Close()

	// Shrink: segments 2 and 3 become read-only leftovers, their rows fold
	// into shards 0 and 1.
	db2, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Count() != rows {
		t.Fatalf("after shrink: %d rows, want %d", db2.Count(), rows)
	}
	for i := rows; i < rows+10; i++ {
		db2.Insert(spreadMsg(i, "v"))
	}
	// Compact folds the leftover segments in and removes them.
	if err := db2.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{2, 3} {
		if _, err := os.Stat(segmentPath(path, i)); !os.IsNotExist(err) {
			t.Errorf("leftover segment %d survived Compact (err=%v)", i, err)
		}
	}
	db2.Close()

	// Grow back: replay re-partitions across 8 shards.
	db3, err := OpenOptions(path, Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if db3.Count() != rows+10 {
		t.Errorf("after grow: %d rows, want %d", db3.Count(), rows+10)
	}
}

// TestCompactCrashLeavesNoDuplicates: a crash between Compact's segment
// renames and the leftover-segment removal briefly leaves the same records
// in two files; sequence-number dedup on replay must collapse them.
func TestCompactCrashLeavesNoDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 50
	for i := 0; i < rows; i++ {
		db.Insert(spreadMsg(i, "v"))
	}
	db.Close()

	// Reopen with fewer shards and compact, but "crash" before the leftover
	// removal by restoring the stale segments afterwards.
	stale2, err := os.ReadFile(segmentPath(path, 2))
	if err != nil {
		t.Fatal(err)
	}
	stale3, err := os.ReadFile(segmentPath(path, 3))
	if err != nil {
		t.Fatal(err)
	}
	db2, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Compact(); err != nil {
		t.Fatal(err)
	}
	db2.Close()
	if err := os.WriteFile(segmentPath(path, 2), stale2, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segmentPath(path, 3), stale3, 0o644); err != nil {
		t.Fatal(err)
	}

	db3, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if db3.Count() != rows {
		t.Errorf("after compact-crash: %d rows, want %d (seq dedup must collapse duplicates)", db3.Count(), rows)
	}
}

// copyStoreFiles copies every regular file of a store's directory into a
// fresh directory, modelling the on-disk state a crashed process leaves.
func copyStoreFiles(t *testing.T, fromDir, toDir string) {
	t.Helper()
	entries, err := os.ReadDir(fromDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(fromDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(toDir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompactCrashMidRenameRecoversAllRows pins the hardest compaction
// crash window: after a shard-count change, a row's on-disk segment differs
// from its in-memory shard, so a crash between Compact's renames must not
// orphan the rows whose new segment was not yet in place. The committed
// marker makes the next open roll the transaction forward from the fsynced
// temps.
func TestCompactCrashMidRenameRecoversAllRows(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 80
	for i := 0; i < rows; i++ {
		if err := db.Insert(spreadMsg(i, "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with 8 shards: replay re-homes the two segments' rows across
	// eight in-memory shards, then Compact "crashes" right after renaming
	// new segment 0 — old segment 0's rows for shards 2,4,6 now exist only
	// in the not-yet-renamed temps.
	db2, err := OpenOptions(path, Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	db2.testCrashBeforeRename = func(i int) bool { return i == 1 }
	if err := db2.Compact(); err == nil {
		t.Fatal("injected crash did not surface")
	}
	crash := filepath.Join(dir, "after-crash")
	if err := os.Mkdir(crash, 0o755); err != nil {
		t.Fatal(err)
	}
	copyStoreFiles(t, dir, crash)

	db3, err := OpenOptions(filepath.Join(crash, "siren.wal"), Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := db3.Count(); got != rows {
		t.Errorf("after compact-crash recovery: %d rows, want %d", got, rows)
	}
	if db3.CorruptRecords() != 0 {
		t.Errorf("corrupt = %d", db3.CorruptRecords())
	}
	// The transaction is retired: no marker, no temps.
	if _, err := os.Stat(compactMarkerPath(filepath.Join(crash, "siren.wal"))); !os.IsNotExist(err) {
		t.Errorf("commit marker survived recovery (err=%v)", err)
	}
}

// TestCompactCrashBeforeCommitDiscardsTemps: without a durable marker the
// temp set is a discarded phase 1 — the old segments stay authoritative.
func TestCompactCrashBeforeCommitDiscardsTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 40
	for i := 0; i < rows; i++ {
		db.Insert(spreadMsg(i, "v"))
	}
	db.Close()
	// Fake an uncommitted phase 1: stray temp files, no marker.
	for i := 0; i < 2; i++ {
		if err := os.WriteFile(segmentPath(path, i)+".compact", []byte(segMagic+"garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	db2, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Count(); got != rows {
		t.Errorf("rows = %d, want %d", got, rows)
	}
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(segmentPath(path, i) + ".compact"); !os.IsNotExist(err) {
			t.Errorf("orphan temp %d not swept (err=%v)", i, err)
		}
	}
}

// TestCompactRenameFailureRollsForward: once the commit marker is durable,
// a mid-loop rename failure must leave the marker and remaining temps for
// the next open to complete (rolling back would orphan rows cross-homed
// into not-yet-renamed temps) and must poison inserts, since an append
// acknowledged into an old segment would be destroyed by the roll-forward.
func TestCompactRenameFailureRollsForward(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 60
	for i := 0; i < rows; i++ {
		db.Insert(spreadMsg(i, "v"))
	}
	db.Close()

	// Reopen with 2 shards (cross-homed rows exist), then make segment 1's
	// rename fail by obstructing its path with a directory.
	db2, err := OpenOptions(path, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(segmentPath(path, 1)); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(segmentPath(path, 1), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := db2.Compact(); err == nil {
		t.Fatal("Compact with an obstructed rename must error")
	}
	if err := db2.Insert(spreadMsg(999, "late")); err == nil {
		t.Error("inserts after an interrupted compaction must be poisoned")
	}
	if _, err := os.Stat(compactMarkerPath(path)); err != nil {
		t.Fatalf("commit marker must survive for roll-forward: %v", err)
	}
	if _, err := os.Stat(segmentPath(path, 1) + ".compact"); err != nil {
		t.Fatalf("unrenamed temp must survive for roll-forward: %v", err)
	}

	// "Crash", clear the obstruction, and reopen: completeCompact finishes
	// the transaction from the fsynced temps — no row lost.
	if err := os.Remove(segmentPath(path, 1)); err != nil {
		t.Fatal(err)
	}
	crash := filepath.Join(dir, "after-crash")
	if err := os.Mkdir(crash, 0o755); err != nil {
		t.Fatal(err)
	}
	copyStoreFiles(t, dir, crash)
	db3, err := OpenOptions(filepath.Join(crash, "siren.wal"), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if got := db3.Count(); got != rows {
		t.Errorf("after roll-forward: %d rows, want %d", got, rows)
	}
}

func TestOversizedMessageRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	big := spreadMsg(1, "")
	big.Content = make([]byte, maxRecordLen+1)
	if err := db.Insert(big); err == nil {
		t.Fatal("a record replay would treat as a torn tail must be rejected at write time")
	}
	// The store stays fully usable and the segment unpolluted.
	if err := db.Insert(spreadMsg(2, "ok")); err != nil {
		t.Fatal(err)
	}
	if db.Count() != 1 {
		t.Errorf("Count = %d, want 1", db.Count())
	}
}

// TestTornCompactMarkerNotTrusted: a torn marker is a strict prefix of
// "shards=N\n", and a decimal prefix of a multi-digit count still parses
// under a lenient scan. Trusting it would delete live segments; the store
// must treat it as uncommitted and keep the old segments authoritative.
func TestTornCompactMarkerNotTrusted(t *testing.T) {
	if parseCompactMarker([]byte("shards=16\n")) != 16 {
		t.Error("complete marker rejected")
	}
	for _, torn := range []string{"", "sh", "shards=", "shards=1", "shards=16", "shards=-4\n", "shards=0\n", "garbage\n"} {
		if got := parseCompactMarker([]byte(torn)); got != 0 {
			t.Errorf("parseCompactMarker(%q) = %d, want 0 (uncommitted)", torn, got)
		}
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "siren.wal")
	db, err := OpenOptions(path, Options{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	const rows = 64
	for i := 0; i < rows; i++ {
		db.Insert(spreadMsg(i, "v"))
	}
	db.Close()
	// Crash mid-marker-write: the prefix "shards=1" parses leniently but is
	// torn from "shards=16\n".
	if err := os.WriteFile(compactMarkerPath(path), []byte("shards=1"), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenOptions(path, Options{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Count(); got != rows {
		t.Errorf("rows = %d after torn marker, want %d (segments must survive)", got, rows)
	}
	if _, err := os.Stat(compactMarkerPath(path)); !os.IsNotExist(err) {
		t.Errorf("torn marker not retired (err=%v)", err)
	}
}

func TestScanMergesShardsInInsertionOrder(t *testing.T) {
	db, err := OpenOptions("", Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const rows = 200
	for i := 0; i < rows; i++ {
		m := spreadMsg(i, fmt.Sprintf("%d", i))
		if err := db.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	want := 0
	db.Scan(func(m wire.Message) bool {
		if string(m.Content) != fmt.Sprintf("%d", want) {
			t.Fatalf("Scan position %d yielded %q (shard merge out of order)", want, m.Content)
		}
		want++
		return true
	})
	if want != rows {
		t.Errorf("Scan visited %d rows, want %d", want, rows)
	}
}

func TestInsertShardDirectRouting(t *testing.T) {
	db, err := OpenOptions("", Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.StoreShards() != 4 {
		t.Fatalf("StoreShards = %d", db.StoreShards())
	}
	// Route batches the way matched receiver writers do: shard index =
	// PartitionHash % shards.
	byShard := make([][]wire.Message, 4)
	const rows = 80
	for i := 0; i < rows; i++ {
		m := spreadMsg(i, "direct")
		idx := int(wire.PartitionHash([]byte(m.JobID), []byte(m.Host)) % 4)
		byShard[idx] = append(byShard[idx], m)
	}
	for idx, batch := range byShard {
		if err := db.InsertShard(idx, batch); err != nil {
			t.Fatal(err)
		}
	}
	if db.Count() != rows {
		t.Errorf("Count = %d, want %d", db.Count(), rows)
	}
	if err := db.InsertShard(4, byShard[0]); err == nil {
		t.Error("out-of-range shard index must error")
	}
}
