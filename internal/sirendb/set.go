// Multi-open: analysing a horizontally partitioned deployment.
//
// A multi-receiver deployment runs N receiver processes, each admitting one
// slice of the campaign (wire.PartitionIndex(JOBID, HOST, N)) and writing
// its own WAL-backed store. Analysis needs the union: OpenSet opens every
// member database and MergedSnapshot presents their snapshots as one —
// per-shard cursors from every member, globally ordered by (member, seq).
//
// Each member assigns its own store-wide sequence numbers, so raw sequence
// values collide across members. The merged snapshot rebases them: member m's
// rows are shifted by the sum of the preceding members' LastSeq values, which
// preserves every member's internal order and places members strictly one
// after another — rows of different members never interleave, within a job or
// globally. That is exactly the contract the streaming consolidation needs:
// a (job, host) lives wholly inside one member (admission is a deterministic
// function of the same (JOBID, HOST) pair the store shards by), so member
// boundaries never split a host's
// stream, and the fan-in reducer sees each member's segments as contiguous
// sequence ranges.
package sirendb

import (
	"errors"
	"fmt"
	"sort"

	"siren/internal/wire"
)

// DBSet is a set of member databases opened together — the analysis-side
// view of an N-receiver deployment. Every member holds its exclusive
// advisory lock, so a still-running receiver cannot be opened into a set.
type DBSet struct {
	dbs []*DB
}

// OpenSet opens the databases at paths (each a WAL base path, exactly as
// Open takes) with shared options. On any member failing to open, the
// already-open members are closed and the error identifies the path. A
// one-element set behaves identically to the single database.
func OpenSet(paths []string, opts Options) (*DBSet, error) {
	if len(paths) == 0 {
		return nil, errors.New("sirendb: OpenSet needs at least one path")
	}
	set := &DBSet{dbs: make([]*DB, 0, len(paths))}
	for _, p := range paths {
		db, err := OpenOptions(p, opts)
		if err != nil {
			_ = set.Close() // best-effort unwind of the already-opened members
			return nil, fmt.Errorf("sirendb: opening set member %s: %w", p, err)
		}
		set.dbs = append(set.dbs, db)
	}
	return set, nil
}

// Members returns the member databases in set order.
func (s *DBSet) Members() []*DB { return s.dbs }

// Count returns the number of messages stored across all members.
func (s *DBSet) Count() int {
	n := 0
	for _, db := range s.dbs {
		n += db.Count()
	}
	return n
}

// CorruptRecords sums the WAL records skipped during replay across members.
func (s *DBSet) CorruptRecords() int {
	n := 0
	for _, db := range s.dbs {
		n += db.CorruptRecords()
	}
	return n
}

// Close closes every member and reports the first error.
func (s *DBSet) Close() error {
	var errs []error
	for _, db := range s.dbs {
		if err := db.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Snapshot captures a point-in-time view of every member and merges them.
// The capture is per-member consistent (each member's snapshot is its own
// consistent cut); cross-member consistency is not needed — members hold
// disjoint campaign partitions.
func (s *DBSet) Snapshot() *MergedSnapshot {
	snaps := make([]*Snapshot, len(s.dbs))
	for i, db := range s.dbs {
		snaps[i] = db.Snapshot()
	}
	return MergeSnapshots(snaps)
}

// memberShard maps one merged-shard index back to (member, local shard).
type memberShard struct {
	member int
	shard  int
}

// MergedSnapshot presents N member snapshots as one: the shard axis is the
// concatenation of every member's shards, and sequence numbers are rebased
// so global order is (member index, member seq). It exposes the same cursor
// surface as Snapshot (postprocess.SnapshotView), so the streaming
// consolidation, analysis, and reporting run unchanged over N receiver
// databases.
type MergedSnapshot struct {
	members []*Snapshot
	offsets []uint64      // per-member seq rebase: sum of preceding LastSeqs
	shards  []memberShard // flattened merged-shard index space
	count   int

	// Overlap-dedup state (see dedup.go; all nil/zero until DedupOverlaps):
	// drop[m] holds member m's suppressed (job, host) runs, deadShardJobs
	// maps a merged shard index to jobs with zero surviving rows there.
	drop          []map[jobHost]struct{}
	deadShardJobs map[int]map[string]struct{}
	dedup         DedupStats
}

// MergeSnapshots builds the merged view over already-captured member
// snapshots, in member order. Useful when the members' capture points are
// controlled individually; DBSet.Snapshot is the common path.
func MergeSnapshots(members []*Snapshot) *MergedSnapshot {
	ms := &MergedSnapshot{
		members: members,
		offsets: make([]uint64, len(members)),
	}
	var off uint64
	for i, sn := range members {
		ms.offsets[i] = off
		off += sn.LastSeq()
		ms.count += sn.Count()
		for s := 0; s < sn.Shards(); s++ {
			ms.shards = append(ms.shards, memberShard{member: i, shard: s})
		}
	}
	return ms
}

// Members reports the number of member snapshots behind the merged view.
func (ms *MergedSnapshot) Members() int { return len(ms.members) }

// Shards reports the merged shard count: the sum of every member's shards.
// Merged shard indexes enumerate member 0's shards first, then member 1's,
// and so on.
func (ms *MergedSnapshot) Shards() int { return len(ms.shards) }

// Count reports the number of messages across all members.
func (ms *MergedSnapshot) Count() int { return ms.count }

// LastSeq reports the highest rebased sequence number the merged snapshot
// contains; every row it yields has seq <= LastSeq.
func (ms *MergedSnapshot) LastSeq() uint64 {
	if len(ms.members) == 0 {
		return 0
	}
	last := len(ms.members) - 1
	return ms.offsets[last] + ms.members[last].LastSeq()
}

// JobsChangedSince returns the job IDs with at least one row whose rebased
// sequence number is strictly greater than since, sorted. Watermarks are
// only comparable across merged snapshots with the same member set in the
// same order and non-shrinking members (both deployment shapes guarantee
// that: a live store only appends, and an OpenSet holds every member's
// exclusive lock so a finished campaign cannot change at all) — rebasing
// offsets are cumulative member LastSeqs, so removing or reordering members
// would re-home rebased sequence ranges. After DedupOverlaps the result is
// conservative: a job may be reported changed even when its only new rows
// were suppressed duplicates (the refresh then re-consolidates it from the
// surviving rows — wasted work, never wrong data).
func (ms *MergedSnapshot) JobsChangedSince(since uint64) []string {
	seen := make(map[string]struct{})
	for i, sn := range ms.members {
		// Member i's rows carry rebased seqs in (off, off+LastSeq]; translate
		// the global watermark into the member's local sequence space.
		off := ms.offsets[i]
		var local uint64
		if since > off {
			if since >= off+sn.LastSeq() {
				continue // watermark is past this member's whole range
			}
			local = since - off
		}
		for _, job := range sn.JobsChangedSince(local) {
			seen[job] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for job := range seen {
		out = append(out, job)
	}
	sort.Strings(out)
	return out
}

// ShardJobs returns merged shard i's distinct job IDs in first-appearance
// order — Snapshot.ShardJobs over the owning member's local shard, minus
// jobs whose every row there was dedup-suppressed.
func (ms *MergedSnapshot) ShardJobs(i int) []string {
	m := ms.shards[i]
	jobs := ms.members[m.member].ShardJobs(m.shard)
	dead := ms.deadShardJobs[i]
	if len(dead) == 0 {
		return jobs
	}
	out := make([]string, 0, len(jobs))
	for _, j := range jobs {
		if _, gone := dead[j]; !gone {
			out = append(out, j)
		}
	}
	return out
}

// ShardJobRows streams merged shard i's rows of one job in insertion order
// with rebased sequence numbers, skipping dedup-suppressed runs; return
// false to stop.
func (ms *MergedSnapshot) ShardJobRows(i int, job string, f func(m wire.Message, seq uint64) bool) {
	sh := ms.shards[i]
	off := ms.offsets[sh.member]
	ms.members[sh.member].ShardJobRows(sh.shard, job, func(m wire.Message, seq uint64) bool {
		if ms.dropped(sh.member, job, m.Host) {
			return true
		}
		return f(m, off+seq)
	})
}

// JobShardCounts maps every job ID to the number of merged shards holding
// at least one surviving row of that job — the fan-in count per job, summed
// across members (a multi-host job may span members when its hosts hash to
// different partitions, exactly as it may span shards within one store).
// Shard segments emptied by dedup are not counted, keeping the promise to
// the streaming consolidator (SnapshotView) exact: ShardJobRows yields rows
// in exactly JobShardCounts[job] shards.
func (ms *MergedSnapshot) JobShardCounts() map[string]int {
	out := make(map[string]int)
	for _, sn := range ms.members {
		for job, n := range sn.JobShardCounts() {
			out[job] += n
		}
	}
	for _, dead := range ms.deadShardJobs {
		for job := range dead {
			if out[job]--; out[job] == 0 {
				delete(out, job)
			}
		}
	}
	return out
}

// JobRows streams every row of one job in merged global order: member by
// member, each member's rows in its own insertion order. Rows of different
// members never interleave — member boundaries are strict sequence
// boundaries under the rebase.
func (ms *MergedSnapshot) JobRows(job string, f func(m wire.Message) bool) {
	stop := false
	for i, sn := range ms.members {
		if stop {
			return
		}
		sn.JobRows(job, func(m wire.Message) bool {
			if ms.dropped(i, job, m.Host) {
				return true
			}
			if !f(m) {
				stop = true
			}
			return !stop
		})
	}
}

// Iter streams every message across all members in merged global order
// (member index, then member insertion order); return false to stop.
func (ms *MergedSnapshot) Iter(f func(m wire.Message) bool) {
	stop := false
	for i, sn := range ms.members {
		if stop {
			return
		}
		sn.Iter(func(m wire.Message) bool {
			if ms.dropped(i, m.JobID, m.Host) {
				return true
			}
			if !f(m) {
				stop = true
			}
			return !stop
		})
	}
}

// Jobs returns the distinct job IDs across all members, sorted.
func (ms *MergedSnapshot) Jobs() []string {
	lists := make([][]string, len(ms.members))
	for i, sn := range ms.members {
		lists[i] = sn.Jobs()
	}
	return mergeSortedUnique(lists)
}
