//go:build unix

package sirendb

import (
	"fmt"
	"os"
	"syscall"
)

// acquireLock takes an exclusive advisory flock on the store's lock file,
// failing fast with ErrLocked when another process holds it. The lock lives
// on the open file descriptor, so it is released on Close — or automatically
// by the kernel if the process dies, which is why a lock *file* beats a pid
// file here: a crash never leaves the store permanently locked.
func acquireLock(path string) (*os.File, error) {
	return flockFile(path, syscall.LOCK_EX)
}

// acquireSharedLock takes the shared form of the same flock: any number of
// read-only opens hold it together, while a writer's exclusive lock and the
// shared holders exclude each other — so a reader never observes a segment
// mid-append and a writer never starts under live readers.
func acquireSharedLock(path string) (*os.File, error) {
	return flockFile(path, syscall.LOCK_SH)
}

func flockFile(path string, how int) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sirendb: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), how|syscall.LOCK_NB); err != nil {
		_ = f.Close() // cleanup; the flock failure is the error to report
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, fmt.Errorf("%w (lock file %s)", ErrLocked, path)
		}
		return nil, fmt.Errorf("sirendb: locking %s: %w", path, err)
	}
	return f, nil
}
