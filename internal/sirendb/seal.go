// Sealing: freezing the mutable WAL head into immutable sorted runs.
//
// Seal is the LSM boundary of the store. The write tier stays exactly what
// it was — sharded segments, group commit — but its contents are periodically
// frozen into runfmt run files ("base.run.<gen>.<shard>"), after which the
// segments are truncated back to their magic. A later Open loads the runs in
// O(index) (map the file, decode footer + job index, no row replay) and
// replays only the WAL head — open cost stops growing with campaign history.
//
// The transaction mirrors Compact's commit-marker shape:
//
//	phase 1: write + fsync one run per non-empty shard, fsync the directory
//	phase 2: atomically replace "base.seal-commit" with "gen=G maxseq=N\n"
//	         (tmp + fsync + rename + dir fsync) — the commit point
//	phase 3: truncate every segment to its magic, fdatasync
//	phase 4: drop leftover segments from older shard counts, swap the
//	         in-memory head for the opened runs
//
// Crash anywhere before phase 2 leaves the store untouched: the marker still
// names the previous generation, so the next Open deletes the orphan run
// files of generations beyond it and replays the intact WAL. Crash after
// phase 2 rolls forward: the runs are authoritative, and replay filters out
// WAL records with seq <= the marker's maxseq (sealed residue), truncated or
// not. A torn run tail cannot be mistaken for a short run — runfmt's footer
// sits at the end of the file, so Open(run) fails loudly — and a committed
// generation's run failing to open fails the whole DB open rather than
// silently serving a subset of history.
//
// The marker's maxseq is the residue filter's floor and lives in the marker
// (not derived from the run files) so retention may drop every run of a
// generation without un-filtering residue a crashed phase 3 left behind.
package sirendb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"siren/internal/sirendb/runfmt"
)

// ErrReadOnly is returned by mutating operations on a store opened with
// Options.ReadOnly: the shared lock explicitly permits concurrent readers,
// so a write through any of them would corrupt what the others serve.
var ErrReadOnly = errors.New("sirendb: store is opened read-only")

func sealMarkerPath(base string) string { return base + ".seal-commit" }

func runFilePath(base string, gen, shard int) string {
	return fmt.Sprintf("%s.run.%d.%d", base, gen, shard)
}

// writeSealMarker atomically replaces the seal commit marker. The marker is
// only ever replaced whole (tmp + fsync + rename + dir fsync), so its
// content can never be torn — a crash mid-update leaves either the old
// marker or the new one, never a prefix.
func writeSealMarker(base, dir string, gen int, maxSeq uint64) error {
	tmp := sealMarkerPath(base) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	abandon := func(err error) error {
		_ = f.Close() // abandoning the tmp; the triggering error wins
		os.Remove(tmp)
		return err
	}
	if _, err := fmt.Fprintf(f, "gen=%d maxseq=%d\n", gen, maxSeq); err != nil {
		return abandon(err)
	}
	if err := f.Sync(); err != nil {
		return abandon(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, sealMarkerPath(base)); err != nil {
		os.Remove(tmp)
		return err
	}
	return fsyncDir(dir)
}

// readSealMarker returns the committed generation and sealed-sequence floor,
// (0, 0) when no seal has ever committed. The content is written atomically,
// so anything but an exact "gen=G maxseq=N\n" is external corruption and is
// surfaced, not guessed at.
func readSealMarker(base string) (gen int, maxSeq uint64, err error) {
	data, err := os.ReadFile(sealMarkerPath(base))
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("sirendb: %w", err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "gen=") || !strings.HasSuffix(s, "\n") {
		return 0, 0, fmt.Errorf("sirendb: corrupt seal marker %s: %q", sealMarkerPath(base), s)
	}
	fields := strings.Fields(strings.TrimSuffix(s, "\n"))
	if len(fields) != 2 || !strings.HasPrefix(fields[1], "maxseq=") {
		return 0, 0, fmt.Errorf("sirendb: corrupt seal marker %s: %q", sealMarkerPath(base), s)
	}
	gen, gerr := strconv.Atoi(strings.TrimPrefix(fields[0], "gen="))
	maxSeq, serr := strconv.ParseUint(strings.TrimPrefix(fields[1], "maxseq="), 10, 64)
	if gerr != nil || serr != nil || gen <= 0 {
		return 0, 0, fmt.Errorf("sirendb: corrupt seal marker %s: %q", sealMarkerPath(base), s)
	}
	return gen, maxSeq, nil
}

// runFile names one discovered "base.run.<gen>.<shard>" artifact.
type runFile struct {
	gen   int
	shard int
	path  string
}

// discoverRunFiles lists the store's run files in (gen, shard) order.
func discoverRunFiles(base string) ([]runFile, error) {
	dir, name := filepath.Split(base)
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sirendb: %w", err)
	}
	prefix := name + ".run."
	var runs []runFile
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		rest := e.Name()[len(prefix):]
		dot := strings.IndexByte(rest, '.')
		if dot <= 0 {
			continue
		}
		gen, gerr := strconv.Atoi(rest[:dot])
		shard, serr := strconv.Atoi(rest[dot+1:])
		if gerr != nil || serr != nil || gen <= 0 || shard < 0 {
			continue // not a run artifact of this store
		}
		runs = append(runs, runFile{gen: gen, shard: shard, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].gen != runs[j].gen {
			return runs[i].gen < runs[j].gen
		}
		return runs[i].shard < runs[j].shard
	})
	return runs, nil
}

// loadRuns opens every committed run file and attaches it to its shard —
// the O(index) half of Open. Uncommitted runs (generation beyond the
// marker's) are debris from a seal that never reached its commit point:
// deleted on a writable open, ignored on a read-only one. A committed run
// that fails to open fails the whole DB open: serving a silently reduced
// history is the one outcome the tier must never produce.
func (db *DB) loadRuns() error {
	gen, maxSeq, err := readSealMarker(db.path)
	if err != nil {
		return err
	}
	db.sealMu.Lock()
	db.sealGen = gen
	db.sealedSeq = maxSeq
	db.sealMu.Unlock()
	if maxSeq > db.seq.Load() {
		db.seq.Store(maxSeq)
	}
	files, err := discoverRunFiles(db.path)
	if err != nil {
		return err
	}
	removed := false
	for _, rf := range files {
		if rf.gen > gen {
			if db.opts.ReadOnly {
				continue // a live writer may be mid-seal; its debris is not ours
			}
			if err := os.Remove(rf.path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("sirendb: sweeping uncommitted run %s: %w", rf.path, err)
			}
			removed = true
			continue
		}
		r, err := runfmt.Open(rf.path)
		if err != nil {
			db.closeRunsLocked()
			return fmt.Errorf("sirendb: committed run %s: %w", rf.path, err)
		}
		db.attachRun(rf, r)
	}
	if removed {
		if err := fsyncDir(db.dir); err != nil {
			return fmt.Errorf("sirendb: %w", err)
		}
	}
	return nil
}

// attachRun homes an opened run on an in-memory shard. When the run's file
// shard index fits the current shard count the mapping is exact; after a
// shard-count change the run lands on fileShard % shards — its (job, host)
// groups may then sit in a different shard than new head rows of the same
// identity, which the consolidation's cross-shard fan-in already tolerates
// (the same situation a misrouted InsertShard batch produces).
func (db *DB) attachRun(rf runFile, r *runfmt.Run) {
	s := db.shards[rf.shard%len(db.shards)]
	s.runs = append(s.runs, sealedRun{gen: rf.gen, fileShard: rf.shard, path: rf.path, run: r})
	s.sealedRows += r.Rows()
}

// closeRunsLocked releases every attached run mapping — only safe during a
// failing Open, before any snapshot could reference the runs.
func (db *DB) closeRunsLocked() {
	for _, s := range db.shards {
		for _, sr := range s.runs {
			_ = sr.run.Close() // open is failing; the original error wins
		}
		s.runs = nil
		s.sealedRows = 0
	}
}

// Seal freezes every row currently in the WAL head into one immutable
// sorted run file per non-empty shard (generation sealGen+1), commits the
// generation with a durable marker, and truncates the segments — after
// which Open replays only rows inserted since. Leftover segments from an
// older shard count are folded in (their replayed rows are part of the
// sealed head) and removed. Sealing an empty head is a no-op.
//
// Seal is transactional against crashes exactly like Compact: the marker is
// the commit point, a pre-marker crash changes nothing, a post-marker crash
// is rolled forward by the next Open (runs are authoritative, WAL residue
// with seq <= the marker's maxseq is filtered during replay). On a
// post-marker failure the store is poisoned — an insert acknowledged into a
// segment that recovery will re-filter could otherwise be lost.
func (db *DB) Seal() error {
	if db.path == "" {
		return nil
	}
	if db.opts.ReadOnly {
		return ErrReadOnly
	}
	if db.closed.Load() {
		return ErrClosed
	}
	// Freeze the world, same order as Compact: all syncMu (stops group
	// commits mid-swap), then all mu (freezes rows and segment offsets).
	for _, s := range db.shards {
		s.syncMu.Lock()
		defer s.syncMu.Unlock()
	}
	for _, s := range db.shards {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	for _, s := range db.shards {
		if s.wal == nil {
			return ErrClosed
		}
	}
	total := 0
	for _, s := range db.shards {
		total += len(s.rows)
	}
	if total == 0 {
		return nil
	}
	sealStart := time.Now()
	phaseStart := sealStart

	// Phase 1: write one fsynced run per non-empty shard.
	db.sealMu.Lock()
	gen := db.sealGen + 1
	db.sealMu.Unlock()
	type written struct {
		shard int
		path  string
		size  int64
	}
	var outs []written
	discard := func() {
		for _, w := range outs {
			os.Remove(w.path)
		}
	}
	maxSeq := db.seq.Load()
	for i, s := range db.shards {
		if len(s.rows) == 0 {
			continue
		}
		rows := make([]runfmt.Row, len(s.rows))
		for j, r := range s.rows {
			rows[j] = runfmt.Row{Seq: r.seq, Msg: r.msg}
		}
		path := runFilePath(db.path, gen, i)
		size, err := runfmt.Write(path, rows)
		if err != nil {
			discard()
			return fmt.Errorf("sirendb: seal: %w", err)
		}
		outs = append(outs, written{shard: i, path: path, size: size})
	}
	//lint:ignore mutexscope sealing freezes the world by design: every shard is write-locked while the run set is made durable
	if err := fsyncDir(db.dir); err != nil {
		discard()
		return fmt.Errorf("sirendb: seal: %w", err)
	}
	db.mx.sealPhaseNS[0].Since(phaseStart)
	phaseStart = time.Now()

	// Phase 2: commit. The marker replace is atomic; once durable, the runs
	// are the authoritative home of every sealed row. A marker-write error
	// is ambiguous (the rename may yet be durable), so fail forward into the
	// poisoned state recovery knows how to finish, exactly like Compact.
	if err := writeSealMarker(db.path, db.dir, gen, maxSeq); err != nil {
		db.recordSyncErr(fmt.Errorf("sirendb: seal interrupted, reopen to recover: %w", err))
		return fmt.Errorf("sirendb: seal: %w", err)
	}
	db.mx.sealPhaseNS[1].Since(phaseStart)
	phaseStart = time.Now()
	if db.testCrashAfterSealCommit {
		err := fmt.Errorf("sirendb: seal: injected crash after commit marker")
		db.recordSyncErr(fmt.Errorf("sirendb: seal interrupted, reopen to complete: %w", err))
		return err
	}

	// Phase 3: the sealed rows now live in the runs; truncate every segment
	// back to its magic. Failure here must roll forward (poison): the next
	// open filters the residue by the marker's maxseq.
	rollForward := func(err error) error {
		db.recordSyncErr(fmt.Errorf("sirendb: seal interrupted, reopen to complete: %w", err))
		return fmt.Errorf("sirendb: seal: %w", err)
	}
	for _, s := range db.shards {
		if s.written <= int64(len(segMagic)) {
			continue
		}
		if err := s.wal.Truncate(int64(len(segMagic))); err != nil {
			return rollForward(err)
		}
		if _, err := s.wal.Seek(int64(len(segMagic)), 0); err != nil {
			return rollForward(err)
		}
		//lint:ignore mutexscope sealing freezes the world by design: the truncation must be durable before any shard unfreezes
		if err := fdatasync(s.wal); err != nil {
			return rollForward(err)
		}
		s.written = int64(len(segMagic))
		s.synced.Store(int64(len(segMagic)))
	}
	db.mx.sealPhaseNS[2].Since(phaseStart)
	phaseStart = time.Now()

	// Phase 4: leftover segments from an older shard count were replayed
	// into the head and are now sealed; drop them. Then swap the in-memory
	// head for the opened runs — copy-on-write on the run slices, so
	// existing snapshots keep serving the pre-seal view.
	for _, p := range db.staleSegs {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return rollForward(err)
		}
	}
	db.staleSegs = nil
	for _, w := range outs {
		r, err := runfmt.Open(w.path)
		if err != nil {
			return rollForward(err)
		}
		s := db.shards[w.shard]
		runs := make([]sealedRun, len(s.runs), len(s.runs)+1)
		copy(runs, s.runs)
		s.runs = append(runs, sealedRun{gen: gen, fileShard: w.shard, path: w.path, run: r})
		s.sealedRows += r.Rows()
		s.rows = nil
		s.byJob = make(map[string][]int)
		s.byProcess = make(map[string][]int)
		s.jobKeys.Store(nil)
		s.procKeys.Store(nil)
	}
	db.sealMu.Lock()
	db.sealGen = gen
	db.sealedSeq = maxSeq
	db.sealMu.Unlock()
	// Corrupt WAL residue (skipped, counted records) was truncated with the
	// segments, same as after a Compact rewrite.
	db.corrupt.Store(0)
	db.mx.sealPhaseNS[3].Since(phaseStart)
	db.mx.sealNS.Since(sealStart)
	return nil
}

// DropSealedBefore removes every sealed run whose newest row has
// seq <= before — the retention hook a catalog-driven rollup calls once a
// consolidated generation covers that watermark. Whole runs only: a run
// with even one newer row survives intact. Returns the number of runs
// dropped. Open snapshots keep reading dropped runs (the mapping outlives
// the unlink); new snapshots no longer see them.
func (db *DB) DropSealedBefore(before uint64) (int, error) {
	return db.dropRuns(func(sr sealedRun) bool { return sr.run.MaxSeq() <= before })
}

// RetainSealedGenerations keeps the newest n sealed generations and drops
// every older one — the receiver's -retain knob. n <= 0 keeps everything.
// Returns the number of runs dropped.
func (db *DB) RetainSealedGenerations(n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	db.sealMu.Lock()
	floor := db.sealGen - n // drop generations <= floor
	db.sealMu.Unlock()
	return db.dropRuns(func(sr sealedRun) bool { return sr.gen <= floor })
}

// dropRuns removes the runs selected by drop from every shard (copy-on-write
// under the shard lock) and unlinks their files. File removal happens after
// the in-memory swap: a crash in between leaves committed-generation files
// that the next open simply re-attaches — retention re-run, never data lost.
func (db *DB) dropRuns(drop func(sealedRun) bool) (int, error) {
	if db.path == "" {
		return 0, nil
	}
	if db.opts.ReadOnly {
		return 0, ErrReadOnly
	}
	if db.closed.Load() {
		return 0, ErrClosed
	}
	var victims []string
	for _, s := range db.shards {
		s.mu.Lock()
		keep := make([]sealedRun, 0, len(s.runs))
		rows := 0
		for _, sr := range s.runs {
			if drop(sr) {
				victims = append(victims, sr.path)
				continue
			}
			keep = append(keep, sr)
			rows += sr.run.Rows()
		}
		s.runs = keep
		s.sealedRows = rows
		s.mu.Unlock()
	}
	if len(victims) == 0 {
		return 0, nil
	}
	for _, p := range victims {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return 0, fmt.Errorf("sirendb: retention: %w", err)
		}
	}
	if err := fsyncDir(db.dir); err != nil {
		return 0, fmt.Errorf("sirendb: retention: %w", err)
	}
	return len(victims), nil
}
