//go:build linux

package sirendb

import (
	"os"
	"syscall"
)

// fdatasync flushes a segment's data (and the file-size metadata needed to
// read it back) without forcing unrelated inode metadata out — the cheapest
// durable flush Linux offers, which matters at group-commit frequency.
func fdatasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
