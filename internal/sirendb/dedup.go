// Overlap dedup: merging back a recovered member without double-ingest.
//
// Under static partitioning, member WALs hold disjoint (JOBID, HOST) sets by
// construction. Failover (DESIGN.md §11) breaks that: when a member dies
// mid-campaign, the sender replays that member's journaled traffic to the
// keys' new rendezvous owners, so the new owner ends up holding a complete
// copy of each reassigned key's stream — while the dead member's recovered
// WAL still holds the partial copy it ingested before dying. Merging all
// WALs naively would double-count every overlapping row (the consolidator
// would see the duplicate segments as an identity collision and ingest
// both). DedupOverlaps resolves the overlap at the merge layer, below
// consolidation, where member identity is still known.
//
// The unit of dedup is the run: one member's rows of one (JOBID, HOST),
// which sharding keeps contiguous and insertion-ordered inside that member.
// For every (JOBID, HOST) held by two or more members, the canonical run is
// the longest one (tie: smallest rebased first-row sequence number, i.e.
// the earliest member — the ISSUE's (JOBID, HOST, first-row seq) identity);
// every other run is suppressed iff it is a sub-multiset of the canonical
// run, comparing whole encoded datagrams. Multisets, not prefixes: multiple
// UDP readers may reorder datagrams within one (job, host) before storage,
// so a recovered member's partial copy is a sub-multiset — but not
// necessarily a prefix — of the replayed full copy. A run that overlaps
// without being contained (the senders genuinely produced different data
// under one key) is NOT suppressed; it is kept and counted in
// DedupStats.Conflicts so the anomaly stays visible downstream instead of
// being silently discarded.
package sirendb

import "siren/internal/wire"

// DedupStats reports what DedupOverlaps found and removed.
type DedupStats struct {
	// OverlappingKeys is the number of (JOBID, HOST) keys held by >= 2
	// members — the size of the failover overlap window (0 in a healthy
	// statically-partitioned campaign).
	OverlappingKeys int
	// SuppressedRuns / SuppressedRows count the duplicate member runs (and
	// their rows) removed from the merged view.
	SuppressedRuns int
	SuppressedRows int
	// Conflicts counts overlapping runs that were NOT sub-multisets of
	// their key's canonical run and were therefore kept. Nonzero conflicts
	// mean two members hold genuinely different data for one key — a
	// misconfigured roster or colliding campaigns, never plain failover.
	Conflicts int
}

// jobHost keys a run within one member.
type jobHost struct{ job, host string }

// runInfo locates one member's run of one (JOBID, HOST).
type runInfo struct {
	member   int
	shard    int // member-local shard holding the run
	rows     int
	firstSeq uint64 // rebased sequence number of the run's first row
}

// DedupOverlaps scans the member snapshots for (JOBID, HOST) runs held by
// more than one member and suppresses the duplicate copies from every
// accessor of the merged view (Count, Iter, JobRows, ShardJobs,
// ShardJobRows, JobShardCounts — the whole postprocess.SnapshotView
// surface stays mutually consistent). It is idempotent and returns what it
// found; call it once after MergeSnapshots/DBSet.Snapshot when the member
// set may contain a recovered member's WAL. Cost: one streaming pass over
// all rows to find overlaps, plus one pass over the overlapping runs only.
func (ms *MergedSnapshot) DedupOverlaps() DedupStats {
	if ms.drop != nil {
		return ms.dedup // already applied
	}
	ms.drop = make([]map[jobHost]struct{}, len(ms.members))

	// Pass 1: locate every member's run of every (JOBID, HOST).
	runs := make(map[jobHost][]runInfo)
	for m, sn := range ms.members {
		for s := 0; s < sn.Shards(); s++ {
			for _, job := range sn.ShardJobs(s) {
				var cur *runInfo
				var curHost string
				sn.ShardJobRows(s, job, func(msg wire.Message, seq uint64) bool {
					if cur == nil || msg.Host != curHost {
						key := jobHost{job, msg.Host}
						rs := runs[key]
						if len(rs) > 0 && rs[len(rs)-1].member == m {
							// Same member, host revisited after interleaving
							// with another host of the same job+shard: still
							// one run.
							cur = &rs[len(rs)-1]
						} else {
							runs[key] = append(rs, runInfo{member: m, shard: s, firstSeq: ms.offsets[m] + seq})
							cur = &runs[key][len(runs[key])-1]
						}
						curHost = msg.Host
					}
					cur.rows++
					return true
				})
			}
		}
	}

	// Pass 2: for each key with runs in >= 2 members, pick the canonical run
	// and suppress the contained duplicates.
	var st DedupStats
	for key, rs := range runs {
		if len(rs) < 2 {
			continue
		}
		st.OverlappingKeys++
		canon := 0
		for i := 1; i < len(rs); i++ {
			if rs[i].rows > rs[canon].rows ||
				(rs[i].rows == rs[canon].rows && rs[i].firstSeq < rs[canon].firstSeq) {
				canon = i
			}
		}
		// The canonical run's datagram multiset, encoded-bytes keyed.
		bag := make(map[string]int, rs[canon].rows)
		ms.runRows(rs[canon], key, func(msg wire.Message) {
			bag[string(wire.Encode(msg))]++
		})
		for i, r := range rs {
			if i == canon {
				continue
			}
			left := make(map[string]int, len(bag))
			for k, n := range bag {
				left[k] = n
			}
			contained := true
			ms.runRows(r, key, func(msg wire.Message) {
				k := string(wire.Encode(msg))
				if left[k] == 0 {
					contained = false
					return
				}
				left[k]--
			})
			if !contained {
				st.Conflicts++
				continue
			}
			if ms.drop[r.member] == nil {
				ms.drop[r.member] = make(map[jobHost]struct{})
			}
			ms.drop[r.member][key] = struct{}{}
			st.SuppressedRuns++
			st.SuppressedRows += r.rows
			ms.count -= r.rows
		}
	}

	// Pass 3: jobs whose every row in one member-shard was suppressed must
	// vanish from that shard's job listing, or JobShardCounts would promise
	// the consolidator a shard segment that ShardJobRows never delivers.
	if st.SuppressedRuns > 0 {
		ms.deadShardJobs = make(map[int]map[string]struct{})
		base := 0
		for m, sn := range ms.members {
			if ms.drop[m] != nil {
				for s := 0; s < sn.Shards(); s++ {
					for _, job := range sn.ShardJobs(s) {
						alive := false
						sn.ShardJobRows(s, job, func(msg wire.Message, _ uint64) bool {
							if _, dead := ms.drop[m][jobHost{job, msg.Host}]; !dead {
								alive = true
								return false
							}
							return true
						})
						if !alive {
							gi := base + s
							if ms.deadShardJobs[gi] == nil {
								ms.deadShardJobs[gi] = make(map[string]struct{})
							}
							ms.deadShardJobs[gi][job] = struct{}{}
						}
					}
				}
			}
			base += sn.Shards()
		}
	}
	ms.dedup = st
	return st
}

// DedupStats returns what the applied DedupOverlaps found (zero value when
// dedup was never applied).
func (ms *MergedSnapshot) DedupStats() DedupStats { return ms.dedup }

// runRows streams one located run's messages.
func (ms *MergedSnapshot) runRows(r runInfo, key jobHost, f func(msg wire.Message)) {
	ms.members[r.member].ShardJobRows(r.shard, key.job, func(msg wire.Message, _ uint64) bool {
		if msg.Host == key.host {
			f(msg)
		}
		return true
	})
}

// dropped reports whether member m's run of (job, host) is suppressed.
func (ms *MergedSnapshot) dropped(m int, job, host string) bool {
	if ms.drop == nil || ms.drop[m] == nil {
		return false
	}
	_, ok := ms.drop[m][jobHost{job, host}]
	return ok
}
