package runfmt

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"siren/internal/wire"
)

func testRows(n int) []Row {
	rows := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, Row{
			Seq: uint64(i + 1),
			Msg: wire.Message{
				Header: wire.Header{
					JobID:  fmt.Sprintf("job-%d", i%7),
					StepID: "0",
					PID:    1000 + i,
					Hash:   fmt.Sprintf("%032x", i),
					Host:   fmt.Sprintf("node%02d", i%5),
					Time:   1700000000 + int64(i),
					Layer:  wire.LayerSelf,
					Type:   wire.TypeFileH,
					Total:  1,
				},
				Content: []byte(fmt.Sprintf("content-%d", i)),
			},
		})
	}
	return rows
}

func writeRun(t *testing.T, rows []Row) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.run")
	if _, err := Write(path, rows); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	rows := testRows(500)
	path := writeRun(t, rows)
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()

	if r.Rows() != len(rows) {
		t.Fatalf("Rows = %d, want %d", r.Rows(), len(rows))
	}
	if r.MinSeq() != 1 || r.MaxSeq() != uint64(len(rows)) {
		t.Fatalf("seq range [%d,%d], want [1,%d]", r.MinSeq(), r.MaxSeq(), len(rows))
	}

	wantJobs := map[string]bool{}
	for _, row := range rows {
		wantJobs[row.Msg.JobID] = true
	}
	jobs := r.Jobs()
	if len(jobs) != len(wantJobs) || !sort.StringsAreSorted(jobs) {
		t.Fatalf("Jobs = %v", jobs)
	}
	for _, j := range jobs {
		if !r.HasJob(j) {
			t.Fatalf("HasJob(%q) = false", j)
		}
	}
	if r.HasJob("nope") {
		t.Fatal("HasJob(nope) = true")
	}

	// The full cursor must replay every row in strict seq order.
	c := r.Cursor()
	var got []Row
	for {
		m, seq, ok := c.Next()
		if !ok {
			break
		}
		got = append(got, Row{Seq: seq, Msg: m})
	}
	if c.Err() != nil {
		t.Fatalf("cursor error: %v", c.Err())
	}
	if len(got) != len(rows) {
		t.Fatalf("cursor yielded %d rows, want %d", len(got), len(rows))
	}
	for i, g := range got {
		w := rows[i] // input seqs were already ascending
		if g.Seq != w.Seq {
			t.Fatalf("row %d: seq %d, want %d", i, g.Seq, w.Seq)
		}
		if g.Msg.JobID != w.Msg.JobID || g.Msg.Host != w.Msg.Host ||
			g.Msg.PID != w.Msg.PID || !bytes.Equal(g.Msg.Content, w.Msg.Content) {
			t.Fatalf("row %d mismatch: got %+v want %+v", i, g.Msg, w.Msg)
		}
	}
}

func TestJobCursorAndStats(t *testing.T) {
	rows := testRows(300)
	path := writeRun(t, rows)
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()

	byJob := map[string][]Row{}
	for _, row := range rows {
		byJob[row.Msg.JobID] = append(byJob[row.Msg.JobID], row)
	}
	total := 0
	for job, want := range byJob {
		c := r.JobCursor(job)
		var got []Row
		for {
			m, seq, ok := c.Next()
			if !ok {
				break
			}
			got = append(got, Row{Seq: seq, Msg: m})
		}
		if c.Err() != nil {
			t.Fatalf("job %s cursor: %v", job, c.Err())
		}
		if len(got) != len(want) {
			t.Fatalf("job %s: %d rows, want %d", job, len(got), len(want))
		}
		for i := range got {
			if got[i].Seq != want[i].Seq || got[i].Msg.Host != want[i].Msg.Host {
				t.Fatalf("job %s row %d: got seq=%d host=%s, want seq=%d host=%s",
					job, i, got[i].Seq, got[i].Msg.Host, want[i].Seq, want[i].Msg.Host)
			}
		}
		n, minSeq, maxSeq, ok := r.JobStats(job)
		if !ok || n != len(want) || minSeq != want[0].Seq || maxSeq != want[len(want)-1].Seq {
			t.Fatalf("JobStats(%s) = (%d,%d,%d,%v), want (%d,%d,%d,true)",
				job, n, minSeq, maxSeq, ok, len(want), want[0].Seq, want[len(want)-1].Seq)
		}
		total += n
	}
	if total != r.Rows() {
		t.Fatalf("per-job rows sum to %d, footer says %d", total, r.Rows())
	}

	if m, seq, ok := r.JobCursor("absent").Next(); ok {
		t.Fatalf("absent job yielded (%v, %d)", m, seq)
	}

	seen := 0
	r.EachJob(func(job string, n int, minSeq, maxSeq uint64) bool {
		seen++
		if len(byJob[job]) != n {
			t.Fatalf("EachJob %s: %d rows, want %d", job, n, len(byJob[job]))
		}
		return true
	})
	if seen != len(byJob) {
		t.Fatalf("EachJob visited %d jobs, want %d", seen, len(byJob))
	}
}

func TestWriteSortsInput(t *testing.T) {
	rows := testRows(100)
	shuffled := make([]Row, len(rows))
	copy(shuffled, rows)
	// Deterministic scramble: reverse, then swap odd/even pairs.
	for i, j := 0, len(shuffled)-1; i < j; i, j = i+1, j-1 {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	path := writeRun(t, shuffled)
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	c := r.Cursor()
	var prev uint64
	n := 0
	for {
		_, seq, ok := c.Next()
		if !ok {
			break
		}
		if seq <= prev {
			t.Fatalf("cursor not seq-ascending: %d after %d", seq, prev)
		}
		prev = seq
		n++
	}
	if c.Err() != nil || n != len(rows) {
		t.Fatalf("yielded %d rows (err=%v), want %d", n, c.Err(), len(rows))
	}
}

func TestWriteEmptyRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.run")
	if _, err := Write(path, nil); err == nil {
		t.Fatal("Write(nil rows) succeeded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("empty run left a file behind: %v", err)
	}
}

// mutate reopens the run file with one byte changed at off.
func mutate(t *testing.T, path string, off int64, delta byte) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[off] ^= delta
	out := path + ".mut"
	if err := os.WriteFile(out, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCorruptionDetected(t *testing.T) {
	rows := testRows(200)
	path := writeRun(t, rows)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("torn_tail", func(t *testing.T) {
		// A crashed writer leaves a prefix: the footer magic is gone.
		for _, cut := range []int{1, footerSize / 2, footerSize + 10, len(orig) / 2} {
			p := filepath.Join(t.TempDir(), "torn.run")
			if err := os.WriteFile(p, orig[:len(orig)-cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(p); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut %d bytes: Open err = %v, want ErrCorrupt", cut, err)
			}
		}
	})

	t.Run("bad_header_magic", func(t *testing.T) {
		if _, err := Open(mutate(t, path, 0, 0xff)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("index_bitflip", func(t *testing.T) {
		// Any flip in the index region breaks the index checksum at Open.
		indexOff := int64(len(orig)) - footerSize - 8
		if _, err := Open(mutate(t, path, indexOff, 0x01)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("block_bitflip", func(t *testing.T) {
		// A flip inside the data region opens fine (lazy verification) but
		// the cursor must fail with ErrCorrupt, never yield wrong rows.
		p := mutate(t, path, int64(len(headerMagic))+blockHdrSize+5, 0x01)
		r, err := Open(p)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer r.Close()
		c := r.Cursor()
		for {
			if _, _, ok := c.Next(); !ok {
				break
			}
		}
		if !errors.Is(c.Err(), ErrCorrupt) {
			t.Fatalf("cursor err = %v, want ErrCorrupt", c.Err())
		}
	})

	t.Run("bad_version", func(t *testing.T) {
		p := mutate(t, path, int64(len(orig))-footerSize+48, 0x7f)
		if _, err := Open(p); err == nil {
			t.Fatal("Open accepted an unknown format version")
		}
	})

	t.Run("empty_file", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "zero.run")
		if err := os.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(p); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open err = %v, want ErrCorrupt", err)
		}
	})
}

// FuzzRunDecode throws arbitrary bytes — seeded with a valid run and
// structured mutations of it — at Open and a full cursor drain. Invariants:
// never panic, never read out of bounds (the backing bounds-checks every
// Slice), and corrupt input yields an error, never a silent subset of a
// valid file's rows pretending to be complete.
func FuzzRunDecode(f *testing.F) {
	rows := testRows(60)
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.run")
	if _, err := Write(seedPath, rows); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])         // torn footer
	f.Add(valid[:len(headerMagic)+3])   // torn data
	f.Add([]byte(headerMagic))          // header only
	f.Add(bytes.Repeat([]byte{0}, 100)) // zeros
	// Hostile index: valid frame, index offsets pointing everywhere.
	hostile := append([]byte(nil), valid...)
	for i := len(hostile) - footerSize; i < len(hostile)-16; i++ {
		hostile[i] ^= 0xa5
	}
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.run")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := Open(p)
		if err != nil {
			return // rejected: fine, as long as we did not panic
		}
		defer r.Close()
		n := 0
		c := r.Cursor()
		for {
			if _, _, ok := c.Next(); !ok {
				break
			}
			n++
		}
		// An accepted file must be internally consistent: either the cursor
		// drains exactly the advertised rows, or it reports corruption.
		if c.Err() == nil && n != r.Rows() {
			t.Fatalf("accepted file: cursor yielded %d rows, footer advertised %d", n, r.Rows())
		}
		for _, job := range r.Jobs() {
			jc := r.JobCursor(job)
			for {
				if _, _, ok := jc.Next(); !ok {
					break
				}
			}
		}
	})
}
