//go:build unix

package runfmt

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"syscall"
)

// backing abstracts how a run file's bytes are reached: a shared read-only
// mmap on unix (this file), positional reads elsewhere. Slice returns the
// requested byte range; on the mmap backing it aliases the mapping, so the
// bytes must not outlive the backing — which is why wire.Parse (which copies)
// is the only decoder allowed to touch them.
type backing interface {
	Slice(off, length int64) ([]byte, error)
	Close() error
}

// openBacking maps the whole file read-only and closes the descriptor — the
// mapping survives the close, so an open Run holds no fd, only address
// space. A finalizer unmaps when the backing becomes garbage: snapshots hand
// out lazily-decoded rows with no Close of their own, so the last reference
// dropping is the natural reclamation point.
func openBacking(path string) (backing, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // open is failing; the stat error wins
		return nil, 0, err
	}
	size := st.Size()
	if size == 0 {
		_ = f.Close() // nothing to map; the corruption error wins
		return nil, 0, fmt.Errorf("%w: %s: empty file", ErrCorrupt, path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		_ = f.Close() // map failed; the mmap error wins
		return nil, 0, fmt.Errorf("runfmt: mmap %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		_ = syscall.Munmap(data) // unwinding; the close error wins
		return nil, 0, err
	}
	m := &mmapBacking{path: path, data: data}
	runtime.SetFinalizer(m, func(m *mmapBacking) { _ = m.Close() })
	return m, size, nil
}

type mmapBacking struct {
	path string
	once sync.Once
	err  error
	data []byte
}

func (m *mmapBacking) Slice(off, length int64) ([]byte, error) {
	if off < 0 || length < 0 || off+length > int64(len(m.data)) || off+length < off {
		return nil, fmt.Errorf("%w: %s: read [%d,+%d) outside the %d-byte mapping",
			ErrCorrupt, m.path, off, length, len(m.data))
	}
	return m.data[off : off+length], nil
}

// Close unmaps; idempotent so both an explicit Close and the finalizer are
// safe. After Close any retained Slice result is invalid — Run's contract
// is that only owners with no outstanding readers call it.
func (m *mmapBacking) Close() error {
	m.once.Do(func() {
		runtime.SetFinalizer(m, nil)
		m.err = syscall.Munmap(m.data)
		m.data = nil
	})
	return m.err
}
