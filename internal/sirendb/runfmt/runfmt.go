// Package runfmt is the immutable sealed-run file format of the sirendb
// storage tier — the read-optimised layer an LSM pairs with a write-ahead
// log. A run file freezes one store shard's rows at seal time into a sorted,
// checksummed, mmap-able artifact that later opens in O(index): readers map
// the file and decode only the footer and the embedded job index, never the
// rows, so opening a campaign-months store costs index size, not history
// size. Rows are decoded lazily, block by block, when a job is actually
// read.
//
// # Layout (version 1)
//
//	[10B header magic "SIRENRUN1\n"]
//	data:    blocks, each [4B payloadLen][4B checksum][payload]
//	index:   per-job, per-host extent directory (see below)
//	footer:  [8B indexOff][8B indexLen][8B indexSum][8B rows]
//	         [8B minSeq][8B maxSeq][4B version][4B reserved]
//	         [8B footer magic "SRUNFTR1"]  (64 bytes, at end of file)
//
// Rows are sorted by (JOBID, HOST, seq): every (job, host) group is
// contiguous, so one index extent — (host, offset, length, rows, seq range)
// under its job — locates a group's whole byte range. A block's payload is
// framed records ([4B recLen][8B seq][wire-encoded message]) belonging to
// exactly one (job, host) group; large groups span multiple blocks. The
// checksum is uint32(xxhash(payload)), verified when a block is first read,
// so historic bit rot is detected lazily without an O(rows) open. The index
// is covered by its own xxhash in the footer, and the footer sits at the end
// of the file — a torn tail from a crashed writer destroys the footer magic
// and the file is rejected at Open, never silently truncated.
//
// Within one (job, host) group rows are seq-ascending; across hosts of one
// job they are not. Cursors therefore k-way merge the extent streams by
// sequence number, reconstructing exactly the insertion order the WAL held.
package runfmt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"

	"siren/internal/wire"
	"siren/internal/xxhash"
)

const (
	headerMagic = "SIRENRUN1\n"
	footerMagic = "SRUNFTR1"
	footerSize  = 64

	// Version is the current run-file format version, stamped in the footer.
	Version = 1

	blockHdrSize = 8  // payload length + checksum
	recHdrSize   = 12 // record length + sequence

	// blockTarget bounds a block's payload: the unit of checksum
	// verification and of lazy decode. Large enough to amortise the
	// per-block hash, small enough that reading one job's first rows does
	// not fault in megabytes.
	blockTarget = 128 << 10

	// maxRecordLen mirrors the WAL's record bound; a length field beyond it
	// is corruption by definition.
	maxRecordLen = 64 << 20
)

// ErrCorrupt wraps every integrity failure — bad magic, torn footer, index
// checksum mismatch, out-of-bounds extents, block checksum failures. Opens
// and reads fail loudly instead of silently dropping rows.
var ErrCorrupt = errors.New("runfmt: corrupt run file")

// Row is one sealed row: a message plus its store-wide sequence number.
type Row struct {
	Seq uint64
	Msg wire.Message
}

// extent locates one (job, host) group's contiguous block range.
type extent struct {
	host   string
	off    int64 // first block's offset
	length int64 // total bytes of the group's blocks (headers included)
	rows   int
	minSeq uint64
	maxSeq uint64
}

// jobIndex is one job's entry: its extents, host-sorted as written.
type jobIndex struct {
	job     string
	extents []extent
	rows    int
	minSeq  uint64
	maxSeq  uint64
}

// Write seals rows into a new run file at path. Rows may arrive in any
// order; they are sorted by (JOBID, HOST, seq) stably. The file is written,
// fsynced, and closed; the caller owns directory durability (fsync the
// parent dir before trusting the file across a crash). Returns the file
// size. Sealing zero rows is an error — an empty run carries no information
// an absent file doesn't.
func Write(path string, rows []Row) (int64, error) {
	if len(rows) == 0 {
		return 0, errors.New("runfmt: refusing to write an empty run")
	}
	sorted := make([]Row, len(rows))
	copy(sorted, rows)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := &sorted[i], &sorted[j]
		if a.Msg.JobID != b.Msg.JobID {
			return a.Msg.JobID < b.Msg.JobID
		}
		if a.Msg.Host != b.Msg.Host {
			return a.Msg.Host < b.Msg.Host
		}
		return a.Seq < b.Seq
	})

	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	fail := func(err error) (int64, error) {
		_ = f.Close() // abandoning the partial file; the write error wins
		_ = os.Remove(path)
		return 0, err
	}
	w := &runWriter{f: f}
	if err := w.write([]byte(headerMagic)); err != nil {
		return fail(err)
	}

	var jobs []jobIndex
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j].Msg.JobID == sorted[i].Msg.JobID {
			j++
		}
		ji, err := w.writeJob(sorted[i:j])
		if err != nil {
			return fail(err)
		}
		jobs = append(jobs, ji)
		i = j
	}

	indexOff := w.off
	index := encodeIndex(jobs)
	if err := w.write(index); err != nil {
		return fail(err)
	}
	var minSeq, maxSeq uint64
	for i, ji := range jobs {
		if i == 0 || ji.minSeq < minSeq {
			minSeq = ji.minSeq
		}
		if ji.maxSeq > maxSeq {
			maxSeq = ji.maxSeq
		}
	}
	footer := make([]byte, footerSize)
	binary.LittleEndian.PutUint64(footer[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[8:16], uint64(len(index)))
	binary.LittleEndian.PutUint64(footer[16:24], xxhash.Sum64(index))
	binary.LittleEndian.PutUint64(footer[24:32], uint64(len(sorted)))
	binary.LittleEndian.PutUint64(footer[32:40], minSeq)
	binary.LittleEndian.PutUint64(footer[40:48], maxSeq)
	binary.LittleEndian.PutUint32(footer[48:52], Version)
	copy(footer[56:64], footerMagic)
	if err := w.write(footer); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(path) // file state unknown after a failed close
		return 0, err
	}
	return w.off, nil
}

// runWriter tracks the write offset so extents can be recorded as blocks go
// out.
type runWriter struct {
	f   *os.File
	off int64
}

func (w *runWriter) write(b []byte) error {
	if _, err := w.f.Write(b); err != nil {
		return err
	}
	w.off += int64(len(b))
	return nil
}

// writeJob emits one job's rows (already (host, seq)-sorted) as per-host
// extents of checksummed blocks and returns the job's index entry.
func (w *runWriter) writeJob(rows []Row) (jobIndex, error) {
	ji := jobIndex{job: rows[0].Msg.JobID, rows: len(rows), minSeq: rows[0].Seq, maxSeq: rows[0].Seq}
	for _, r := range rows {
		if r.Seq < ji.minSeq {
			ji.minSeq = r.Seq
		}
		if r.Seq > ji.maxSeq {
			ji.maxSeq = r.Seq
		}
	}
	i := 0
	for i < len(rows) {
		j := i
		for j < len(rows) && rows[j].Msg.Host == rows[i].Msg.Host {
			j++
		}
		ext, err := w.writeExtent(rows[i:j])
		if err != nil {
			return jobIndex{}, err
		}
		ji.extents = append(ji.extents, ext)
		i = j
	}
	return ji, nil
}

// writeExtent emits one (job, host) group as one or more blocks.
func (w *runWriter) writeExtent(rows []Row) (extent, error) {
	ext := extent{host: rows[0].Msg.Host, off: w.off, rows: len(rows),
		minSeq: rows[0].Seq, maxSeq: rows[len(rows)-1].Seq}
	var payload []byte
	var hdr [blockHdrSize]byte
	flush := func() error {
		if len(payload) == 0 {
			return nil
		}
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(xxhash.Sum64(payload)))
		if err := w.write(hdr[:]); err != nil {
			return err
		}
		if err := w.write(payload); err != nil {
			return err
		}
		payload = payload[:0]
		return nil
	}
	var rec [recHdrSize]byte
	for _, r := range rows {
		enc := wire.Encode(r.Msg)
		if len(enc) > maxRecordLen {
			return extent{}, fmt.Errorf("runfmt: message of %d bytes exceeds the %d-byte record limit", len(enc), maxRecordLen)
		}
		binary.LittleEndian.PutUint32(rec[0:4], uint32(len(enc)))
		binary.LittleEndian.PutUint64(rec[4:12], r.Seq)
		payload = append(payload, rec[:]...)
		payload = append(payload, enc...)
		if len(payload) >= blockTarget {
			if err := flush(); err != nil {
				return extent{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return extent{}, err
	}
	ext.length = w.off - ext.off
	return ext, nil
}

// encodeIndex renders the job directory:
//
//	[4B jobCount]
//	per job:   [4B jobLen][job][4B extentCount]
//	per extent: [4B hostLen][host][8B off][8B len][8B rows][8B minSeq][8B maxSeq]
func encodeIndex(jobs []jobIndex) []byte {
	var b []byte
	var u32 [4]byte
	var u64 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		b = append(b, u32[:]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		b = append(b, u64[:]...)
	}
	put32(uint32(len(jobs)))
	for _, ji := range jobs {
		put32(uint32(len(ji.job)))
		b = append(b, ji.job...)
		put32(uint32(len(ji.extents)))
		for _, e := range ji.extents {
			put32(uint32(len(e.host)))
			b = append(b, e.host...)
			put64(uint64(e.off))
			put64(uint64(e.length))
			put64(uint64(e.rows))
			put64(e.minSeq)
			put64(e.maxSeq)
		}
	}
	return b
}

// Run is an opened run file: the mapped (or pread-backed) data plus the
// decoded job index. Opening is O(index); rows decode lazily on read.
// Runs are safe for concurrent readers.
type Run struct {
	path    string
	back    backing // mmap on unix, pread elsewhere
	size    int64
	dataEnd int64 // start of the index == end of the block region
	rows    int
	minSeq  uint64
	maxSeq  uint64
	version uint32
	jobs    []jobIndex
	byJob   map[string]int // job -> index into jobs
	names   []string       // job names, sorted (index order)
}

// Open maps the run file at path and decodes only its footer and job index —
// O(index) work regardless of row count. Every structural field is
// bounds-checked; a torn tail, a bad checksum, or a hostile index yields
// ErrCorrupt, never a partial silently-truncated run.
func Open(path string) (*Run, error) {
	back, size, err := openBacking(path)
	if err != nil {
		return nil, err
	}
	r := &Run{path: path, back: back, size: size}
	if err := r.load(); err != nil {
		_ = back.Close() // open is failing; the corruption error wins
		return nil, err
	}
	return r, nil
}

func (r *Run) load() error {
	if r.size < int64(len(headerMagic))+footerSize {
		return fmt.Errorf("%w: %s: %d bytes is too small for a run", ErrCorrupt, r.path, r.size)
	}
	hdr, err := r.back.Slice(0, int64(len(headerMagic)))
	if err != nil {
		return err
	}
	if string(hdr) != headerMagic {
		return fmt.Errorf("%w: %s: bad header magic", ErrCorrupt, r.path)
	}
	footer, err := r.back.Slice(r.size-footerSize, footerSize)
	if err != nil {
		return err
	}
	if string(footer[56:64]) != footerMagic {
		return fmt.Errorf("%w: %s: bad footer magic (torn tail?)", ErrCorrupt, r.path)
	}
	r.version = binary.LittleEndian.Uint32(footer[48:52])
	if r.version != Version {
		return fmt.Errorf("runfmt: %s: unsupported run format version %d", r.path, r.version)
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:8]))
	indexLen := int64(binary.LittleEndian.Uint64(footer[8:16]))
	indexSum := binary.LittleEndian.Uint64(footer[16:24])
	r.rows = int(binary.LittleEndian.Uint64(footer[24:32]))
	r.minSeq = binary.LittleEndian.Uint64(footer[32:40])
	r.maxSeq = binary.LittleEndian.Uint64(footer[40:48])
	if indexOff < int64(len(headerMagic)) || indexLen < 0 || indexOff+indexLen != r.size-footerSize {
		return fmt.Errorf("%w: %s: index [%d,+%d) does not abut the footer", ErrCorrupt, r.path, indexOff, indexLen)
	}
	// A row needs at least a record header; a count beyond that bound can
	// only come from corruption and must not size any allocation.
	if r.rows < 0 || int64(r.rows) > r.size/recHdrSize {
		return fmt.Errorf("%w: %s: implausible row count %d", ErrCorrupt, r.path, r.rows)
	}
	index, err := r.back.Slice(indexOff, indexLen)
	if err != nil {
		return err
	}
	if xxhash.Sum64(index) != indexSum {
		return fmt.Errorf("%w: %s: index checksum mismatch", ErrCorrupt, r.path)
	}
	r.dataEnd = indexOff
	return r.decodeIndex(index)
}

// decodeIndex parses the job directory, validating every length and extent
// against the file bounds — the index is attacker-adjacent input for the
// fuzzer even though the checksum gates it in practice.
func (r *Run) decodeIndex(b []byte) error {
	bad := func(what string) error {
		return fmt.Errorf("%w: %s: index %s", ErrCorrupt, r.path, what)
	}
	pos := 0
	u32 := func() (uint32, bool) {
		if pos+4 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b[pos:])
		pos += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if pos+8 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(b[pos:])
		pos += 8
		return v, true
	}
	str := func(n uint32) (string, bool) {
		if int64(n) > int64(len(b)-pos) {
			return "", false
		}
		s := string(b[pos : pos+int(n)])
		pos += int(n)
		return s, true
	}
	nJobs, ok := u32()
	if !ok || int64(nJobs) > int64(len(b))/8 {
		return bad("job count out of bounds")
	}
	r.jobs = make([]jobIndex, 0, nJobs)
	r.byJob = make(map[string]int, nJobs)
	r.names = make([]string, 0, nJobs)
	sum := 0
	for ji := uint32(0); ji < nJobs; ji++ {
		n, ok := u32()
		if !ok {
			return bad("truncated job name length")
		}
		job, ok := str(n)
		if !ok {
			return bad("truncated job name")
		}
		nExt, ok := u32()
		if !ok || int64(nExt) > int64(len(b))/8 {
			return bad("extent count out of bounds")
		}
		entry := jobIndex{job: job, extents: make([]extent, 0, nExt)}
		for ei := uint32(0); ei < nExt; ei++ {
			hn, ok := u32()
			if !ok {
				return bad("truncated host name length")
			}
			host, ok := str(hn)
			if !ok {
				return bad("truncated host name")
			}
			off, ok1 := u64()
			length, ok2 := u64()
			rows, ok3 := u64()
			minSeq, ok4 := u64()
			maxSeq, ok5 := u64()
			if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
				return bad("truncated extent")
			}
			if off < uint64(len(headerMagic)) || length > uint64(r.dataEnd) || off+length > uint64(r.dataEnd) || off+length < off {
				return bad("extent outside the data region")
			}
			if rows > length/recHdrSize {
				return bad("implausible extent row count")
			}
			entry.extents = append(entry.extents, extent{
				host: host, off: int64(off), length: int64(length),
				rows: int(rows), minSeq: minSeq, maxSeq: maxSeq,
			})
			entry.rows += int(rows)
			if len(entry.extents) == 1 || minSeq < entry.minSeq {
				entry.minSeq = minSeq
			}
			if maxSeq > entry.maxSeq {
				entry.maxSeq = maxSeq
			}
		}
		if len(entry.extents) == 0 {
			return bad("job with no extents")
		}
		if _, dup := r.byJob[job]; dup {
			return bad("duplicate job entry")
		}
		sum += entry.rows
		r.byJob[job] = len(r.jobs)
		r.jobs = append(r.jobs, entry)
		r.names = append(r.names, job)
	}
	if pos != len(b) {
		return bad("trailing bytes")
	}
	if sum != r.rows {
		return bad("row counts disagree with footer")
	}
	if !sort.StringsAreSorted(r.names) {
		return bad("jobs not sorted")
	}
	return nil
}

// Close releases the mapping (or the file handle). Callers that hand rows
// out lazily — snapshots — must keep the Run reachable instead of closing
// it; the finalizer installed by the unix backing reclaims the mapping when
// the last reference is garbage. Close is idempotent.
func (r *Run) Close() error { return r.back.Close() }

// Path returns the run file's path.
func (r *Run) Path() string { return r.path }

// Rows reports the run's total row count (from the footer — O(1)).
func (r *Run) Rows() int { return r.rows }

// MinSeq reports the smallest sequence number stored in the run.
func (r *Run) MinSeq() uint64 { return r.minSeq }

// MaxSeq reports the largest sequence number stored in the run.
func (r *Run) MaxSeq() uint64 { return r.maxSeq }

// Size reports the file size in bytes.
func (r *Run) Size() int64 { return r.size }

// Jobs returns the run's distinct job IDs, sorted. The slice is the Run's
// own index order — callers must not mutate it.
func (r *Run) Jobs() []string { return r.names }

// HasJob reports whether the run holds any rows of job.
func (r *Run) HasJob(job string) bool {
	_, ok := r.byJob[job]
	return ok
}

// JobStats reports one job's row count and sequence range, from the index —
// O(1), no row decode.
func (r *Run) JobStats(job string) (rows int, minSeq, maxSeq uint64, ok bool) {
	i, ok := r.byJob[job]
	if !ok {
		return 0, 0, 0, false
	}
	ji := &r.jobs[i]
	return ji.rows, ji.minSeq, ji.maxSeq, true
}

// EachJob visits every job entry in sorted order with its index-level stats;
// return false to stop. O(index), no row decode.
func (r *Run) EachJob(f func(job string, rows int, minSeq, maxSeq uint64) bool) {
	for i := range r.jobs {
		ji := &r.jobs[i]
		if !f(ji.job, ji.rows, ji.minSeq, ji.maxSeq) {
			return
		}
	}
}

// Cursor streams a run's rows in ascending sequence order, k-way merging
// the per-(job, host) extent streams. Blocks decode (and checksum-verify)
// lazily as the cursor crosses them.
type Cursor struct {
	streams []*extentCursor
	err     error
}

// Cursor returns a cursor over every row of the run, seq-ascending.
func (r *Run) Cursor() *Cursor {
	c := &Cursor{}
	for i := range r.jobs {
		for e := range r.jobs[i].extents {
			c.streams = append(c.streams, newExtentCursor(r, &r.jobs[i].extents[e]))
		}
	}
	return c
}

// JobCursor returns a cursor over one job's rows, seq-ascending (its host
// extents merged). A job absent from the run yields an immediately-empty
// cursor.
func (r *Run) JobCursor(job string) *Cursor {
	c := &Cursor{}
	i, ok := r.byJob[job]
	if !ok {
		return c
	}
	for e := range r.jobs[i].extents {
		c.streams = append(c.streams, newExtentCursor(r, &r.jobs[i].extents[e]))
	}
	return c
}

// Next returns the next row in sequence order. ok=false means exhausted or
// failed — check Err to distinguish.
func (c *Cursor) Next() (wire.Message, uint64, bool) {
	if c.err != nil {
		return wire.Message{}, 0, false
	}
	best := -1
	var bestSeq uint64
	for i, s := range c.streams {
		seq, ok, err := s.peekSeq()
		if err != nil {
			c.err = err
			return wire.Message{}, 0, false
		}
		if !ok {
			continue
		}
		if best < 0 || seq < bestSeq {
			best, bestSeq = i, seq
		}
	}
	if best < 0 {
		return wire.Message{}, 0, false
	}
	m, seq, err := c.streams[best].next()
	if err != nil {
		c.err = err
		return wire.Message{}, 0, false
	}
	return m, seq, true
}

// Err reports the first corruption or decode error the cursor hit; nil
// after a clean exhaustion.
func (c *Cursor) Err() error { return c.err }

// extentCursor walks one (job, host) extent block by block.
type extentCursor struct {
	r       *Run
	off     int64 // next unread block
	end     int64
	payload []byte // current block's verified payload
	pos     int    // read position within payload
	peeked  bool
	pSeq    uint64
	pMsg    wire.Message
}

func newExtentCursor(r *Run, e *extent) *extentCursor {
	return &extentCursor{r: r, off: e.off, end: e.off + e.length}
}

// peekSeq reports the sequence number of the next row without consuming it.
func (ec *extentCursor) peekSeq() (uint64, bool, error) {
	if ec.peeked {
		return ec.pSeq, true, nil
	}
	m, seq, ok, err := ec.decodeNext()
	if err != nil || !ok {
		return 0, false, err
	}
	ec.peeked, ec.pMsg, ec.pSeq = true, m, seq
	return seq, true, nil
}

func (ec *extentCursor) next() (wire.Message, uint64, error) {
	if !ec.peeked {
		m, seq, ok, err := ec.decodeNext()
		if err != nil {
			return wire.Message{}, 0, err
		}
		if !ok {
			return wire.Message{}, 0, fmt.Errorf("%w: %s: cursor advanced past extent end", ErrCorrupt, ec.r.path)
		}
		return m, seq, nil
	}
	ec.peeked = false
	return ec.pMsg, ec.pSeq, nil
}

// decodeNext yields the next record, loading and verifying the next block
// when the current payload is exhausted.
func (ec *extentCursor) decodeNext() (wire.Message, uint64, bool, error) {
	for ec.pos >= len(ec.payload) {
		if ec.off >= ec.end {
			return wire.Message{}, 0, false, nil
		}
		if err := ec.loadBlock(); err != nil {
			return wire.Message{}, 0, false, err
		}
	}
	bad := func(what string) (wire.Message, uint64, bool, error) {
		return wire.Message{}, 0, false, fmt.Errorf("%w: %s: %s", ErrCorrupt, ec.r.path, what)
	}
	if ec.pos+recHdrSize > len(ec.payload) {
		return bad("torn record header inside a verified block")
	}
	length := binary.LittleEndian.Uint32(ec.payload[ec.pos:])
	seq := binary.LittleEndian.Uint64(ec.payload[ec.pos+4:])
	ec.pos += recHdrSize
	if length > maxRecordLen || ec.pos+int(length) > len(ec.payload) {
		return bad("record length outside its block")
	}
	m, err := wire.Parse(ec.payload[ec.pos : ec.pos+int(length)])
	if err != nil {
		return bad(fmt.Sprintf("undecodable record: %v", err))
	}
	ec.pos += int(length)
	return m, seq, true, nil
}

// loadBlock reads and checksum-verifies the block at ec.off.
func (ec *extentCursor) loadBlock() error {
	bad := func(what string) error {
		return fmt.Errorf("%w: %s: %s at offset %d", ErrCorrupt, ec.r.path, what, ec.off)
	}
	hdr, err := ec.r.back.Slice(ec.off, blockHdrSize)
	if err != nil {
		return err
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if int64(plen) > ec.end-ec.off-blockHdrSize {
		return bad("block length outside its extent")
	}
	payload, err := ec.r.back.Slice(ec.off+blockHdrSize, int64(plen))
	if err != nil {
		return err
	}
	if uint32(xxhash.Sum64(payload)) != sum {
		return bad("block checksum mismatch")
	}
	ec.off += blockHdrSize + int64(plen)
	ec.payload = payload
	ec.pos = 0
	return nil
}
