//go:build !unix

package runfmt

import (
	"fmt"
	"os"
	"sync"
)

// backing abstracts how a run file's bytes are reached; see mmap_unix.go.
// Without mmap the fallback is positional reads into fresh buffers, so
// Slice results here never alias shared memory.
type backing interface {
	Slice(off, length int64) ([]byte, error)
	Close() error
}

func openBacking(path string) (backing, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // open is failing; the stat error wins
		return nil, 0, err
	}
	if st.Size() == 0 {
		_ = f.Close() // nothing to read; the corruption error wins
		return nil, 0, fmt.Errorf("%w: %s: empty file", ErrCorrupt, path)
	}
	return &preadBacking{path: path, f: f, size: st.Size()}, st.Size(), nil
}

type preadBacking struct {
	path string
	mu   sync.Mutex
	f    *os.File
	size int64
}

func (p *preadBacking) Slice(off, length int64) ([]byte, error) {
	if off < 0 || length < 0 || off+length > p.size || off+length < off {
		return nil, fmt.Errorf("%w: %s: read [%d,+%d) outside the %d-byte file",
			ErrCorrupt, p.path, off, length, p.size)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return nil, fmt.Errorf("runfmt: %s: read after Close", p.path)
	}
	buf := make([]byte, length)
	if _, err := p.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("runfmt: reading %s: %w", p.path, err)
	}
	return buf, nil
}

func (p *preadBacking) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return nil
	}
	err := p.f.Close()
	p.f = nil
	return err
}
