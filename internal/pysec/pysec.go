// Package pysec cross-references imported Python packages against a curated
// database of insecure or suspicious package names — the paper's stated
// future work (§6: "cross-reference Python imports against known non-secure
// packages") and its slopsquatting discussion (§4.4).
//
// Two families of findings are produced:
//
//   - Vulnerable: the package (at some version range) has known CVEs; the
//     static import alone flags it for version-level follow-up.
//   - Suspicious: the name matches a known hallucination/typosquat pattern
//     (slopsquatting) — names LLMs invent that attackers then register.
//
// The database is a small curated snapshot in the spirit of pyup.io's
// safety-db (the paper's reference [29]); sites extend it with AddAdvisory.
package pysec

import (
	"sort"
	"strings"
	"sync"
)

// Severity grades a finding.
type Severity int

const (
	// SeverityInfo marks packages worth inventorying but not alarming.
	SeverityInfo Severity = iota
	// SeverityWarning marks known-vulnerable packages (version-dependent).
	SeverityWarning
	// SeverityCritical marks names that should never be imported
	// (typosquats / hallucinated names).
	SeverityCritical
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SeverityWarning:
		return "warning"
	case SeverityCritical:
		return "critical"
	default:
		return "info"
	}
}

// Advisory is one database entry.
type Advisory struct {
	Package  string
	Severity Severity
	Reason   string // free text: CVE ids or squat target
}

// DB is an advisory database keyed by package name (case-insensitive).
type DB struct {
	mu         sync.RWMutex
	advisories map[string]Advisory
}

// NewDB returns the built-in curated snapshot.
func NewDB() *DB {
	db := &DB{advisories: make(map[string]Advisory)}
	for _, a := range builtinAdvisories {
		db.advisories[strings.ToLower(a.Package)] = a
	}
	return db
}

// builtinAdvisories is the curated seed: a few real historically vulnerable
// packages plus canonical typosquat/hallucination names.
var builtinAdvisories = []Advisory{
	// Known-vulnerable (version ranges elided; import alone warrants review).
	{Package: "pyyaml", Severity: SeverityWarning, Reason: "CVE-2020-14343 unsafe load RCE in <5.4"},
	{Package: "pillow", Severity: SeverityWarning, Reason: "multiple image-parser CVEs in <9.0"},
	{Package: "requests", Severity: SeverityWarning, Reason: "CVE-2023-32681 Proxy-Authorization leak in <2.31"},
	{Package: "cryptography", Severity: SeverityWarning, Reason: "CVE-2023-0286 X.509 type confusion in <39.0.1"},
	{Package: "numpy", Severity: SeverityInfo, Reason: "CVE-2021-33430 buffer overflow in <1.21 (niche)"},
	// Typosquats / slopsquatting.
	{Package: "reqeusts", Severity: SeverityCritical, Reason: "typosquat of requests"},
	{Package: "python-dateutils", Severity: SeverityCritical, Reason: "squat of python-dateutil"},
	{Package: "tensorflw", Severity: SeverityCritical, Reason: "typosquat of tensorflow"},
	{Package: "huggingface-hub-cli", Severity: SeverityCritical, Reason: "hallucinated package name (slopsquatting)"},
	{Package: "pytorch-nightly-gpu", Severity: SeverityCritical, Reason: "hallucinated package name (slopsquatting)"},
	{Package: "mpi4py-mpich-bin", Severity: SeverityCritical, Reason: "hallucinated package name (slopsquatting)"},
}

// AddAdvisory inserts or replaces an advisory.
func (db *DB) AddAdvisory(a Advisory) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.advisories[strings.ToLower(a.Package)] = a
}

// Lookup returns the advisory for a package name, if any.
func (db *DB) Lookup(pkg string) (Advisory, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	a, ok := db.advisories[strings.ToLower(pkg)]
	return a, ok
}

// Len reports the number of advisories.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.advisories)
}

// Finding is one matched import.
type Finding struct {
	Advisory
	Users     []string // anonymised users importing it
	Jobs      int
	Processes int
}

// ImportObservation is the minimal view pysec needs of an analysis result —
// one imported package with its usage counts (analysis.PackageStat
// satisfies this shape; the indirection avoids an import cycle).
type ImportObservation struct {
	Package   string
	Users     []string
	Jobs      int
	Processes int
}

// Audit matches observations against the database, returning findings
// sorted by severity (critical first), then package name.
func (db *DB) Audit(observations []ImportObservation) []Finding {
	var out []Finding
	for _, obs := range observations {
		a, ok := db.Lookup(obs.Package)
		if !ok {
			continue
		}
		out = append(out, Finding{
			Advisory: a, Users: obs.Users, Jobs: obs.Jobs, Processes: obs.Processes,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].Package < out[j].Package
	})
	return out
}
