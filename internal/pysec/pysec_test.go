package pysec

import (
	"testing"
)

func TestBuiltinDatabase(t *testing.T) {
	db := NewDB()
	if db.Len() < 10 {
		t.Errorf("curated DB too small: %d", db.Len())
	}
	a, ok := db.Lookup("PyYAML") // case-insensitive
	if !ok || a.Severity != SeverityWarning {
		t.Errorf("pyyaml lookup = %+v ok=%v", a, ok)
	}
	if _, ok := db.Lookup("heapq"); ok {
		t.Error("stdlib package flagged")
	}
}

func TestAddAdvisory(t *testing.T) {
	db := NewDB()
	db.AddAdvisory(Advisory{Package: "siteonly", Severity: SeverityCritical, Reason: "local ban"})
	if a, ok := db.Lookup("siteonly"); !ok || a.Reason != "local ban" {
		t.Errorf("custom advisory lost: %+v", a)
	}
	// Replace severity.
	db.AddAdvisory(Advisory{Package: "siteonly", Severity: SeverityInfo})
	if a, _ := db.Lookup("siteonly"); a.Severity != SeverityInfo {
		t.Error("replacement failed")
	}
}

func TestAuditOrdering(t *testing.T) {
	db := NewDB()
	findings := db.Audit([]ImportObservation{
		{Package: "numpy", Users: []string{"user_4"}, Jobs: 3, Processes: 10},
		{Package: "reqeusts", Users: []string{"user_9"}, Jobs: 1, Processes: 1},
		{Package: "requests", Users: []string{"user_2"}, Jobs: 2, Processes: 2},
		{Package: "heapq", Users: []string{"user_4"}, Jobs: 3, Processes: 10}, // clean
	})
	if len(findings) != 3 {
		t.Fatalf("findings = %d", len(findings))
	}
	if findings[0].Package != "reqeusts" || findings[0].Severity != SeverityCritical {
		t.Errorf("first finding = %+v, want the typosquat", findings[0])
	}
	if findings[1].Severity != SeverityWarning {
		t.Errorf("second finding = %+v", findings[1])
	}
	if findings[2].Severity != SeverityInfo {
		t.Errorf("third finding = %+v", findings[2])
	}
	if findings[0].Jobs != 1 || len(findings[0].Users) != 1 {
		t.Errorf("usage counts lost: %+v", findings[0])
	}
}

func TestSeverityStrings(t *testing.T) {
	if SeverityCritical.String() != "critical" || SeverityWarning.String() != "warning" || SeverityInfo.String() != "info" {
		t.Error("severity names wrong")
	}
}
