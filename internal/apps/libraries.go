// Package apps is the software catalogue of the simulated LUMI-like system:
// shared libraries (with paths chosen so the paper's derived-substring tags
// come out exactly as in Figures 2 and 5), system-directory utilities,
// the nine labelled scientific applications of Table 5 with their variant
// counts and compiler combinations (Table 6, Figure 4), the nondescript
// UNKNOWN executable of Table 7, and the Python interpreters of Table 8.
package apps

import "siren/internal/ldso"

// SirenSOPath is where the data-collection shared object is installed; the
// SIREN module exports LD_PRELOAD pointing here.
const SirenSOPath = "/opt/siren/lib/siren.so"

// Library paths double as tag generators: the analysis layer derives a tag
// from each path by matching an ordered substring list (see
// analysis.DeriveLibraryTag), so e.g. /opt/rocm/lib/librocfft.so.0 yields
// "rocfft-rocm-fft". The comment on each entry records the intended tag.
var libraryDefs = []ldso.Library{
	// Plain system libraries (no tag).
	{Soname: "ld-linux-x86-64.so.2", Path: "/lib64/ld-linux-x86-64.so.2"},
	{Soname: "libc.so.6", Path: "/lib64/libc.so.6"},
	{Soname: "libm.so.6", Path: "/lib64/libm.so.6"},
	{Soname: "libz.so.1", Path: "/lib64/libz.so.1"},
	{Soname: "libtinfo.so.6", Path: "/lib64/libtinfo.so.6"},
	{Soname: "libreadline.so.8", Path: "/lib64/libreadline.so.8", Needed: []string{"libtinfo.so.6"}},
	{Soname: "liblua5.3.so.5", Path: "/usr/lib64/liblua5.3.so.5"},
	{Soname: "libselinux.so.1", Path: "/lib64/libselinux.so.1"},
	{Soname: "libslurmfull.so", Path: "/usr/lib64/slurm/libslurmfull.so"},
	{Soname: "libmunge.so.2", Path: "/usr/lib64/libmunge.so.2"},

	// Environment-dependent variants (Table 4): same soname, site paths.
	{Soname: "libtinfo.so.6", Path: "/appl/spack/env/lib/libtinfo.so.6"},
	{Soname: "libtinfo.so.6", Path: "/pfs/SW/env/lib/libtinfo.so.6", Needed: []string{"libm.so.6"}},
	{Soname: "libpmi.so.0", Path: "/opt/cray/pe/pmi/lib/libpmi.so.0"},     // tag: pmi-cray
	{Soname: "libpmi.so.0", Path: "/opt/cray/pe/pmi-exp/lib/libpmi.so.0"}, // tag: pmi-cray (experimental build)
	{Soname: "libreadline.so.8", Path: "/appl/spack/env/lib/libreadline.so.8"},

	// The SIREN collector itself (tag: siren).
	{Soname: "siren.so", Path: SirenSOPath, Needed: []string{"libc.so.6"}},

	// Tagged libraries, one per Figure 2/5 column.
	{Soname: "libpthread.so.0", Path: "/lib64/libpthread.so.0"},                                                         // pthread
	{Soname: "libcrayutils.so.1", Path: "/opt/cray/pe/lib64/libcrayutils.so.1"},                                         // cray
	{Soname: "libquadmath.so.0", Path: "/opt/cray/pe/gcc-libs/libquadmath.so.0"},                                        // quadmath-cray
	{Soname: "libfabric.so.1", Path: "/opt/cray/libfabric/lib64/libfabric.so.1"},                                        // fabric-cray
	{Soname: "libhsa-runtime64.so.1", Path: "/opt/rocm/lib/libhsa-runtime64.so.1"},                                      // rocm
	{Soname: "libnuma.so.1", Path: "/usr/lib64/libnuma.so.1"},                                                           // numa
	{Soname: "libdrm.so.2", Path: "/usr/lib64/libdrm.so.2"},                                                             // drm
	{Soname: "libdrm_amdgpu.so.1", Path: "/usr/lib64/libdrm_amdgpu.so.1", Needed: []string{"libdrm.so.2"}},              // amdgpu-drm
	{Soname: "libgfortran.so.5", Path: "/usr/lib64/libgfortran.so.5"},                                                   // fortran
	{Soname: "libsci_cray.so.6", Path: "/opt/cray/pe/libsci/lib/libsci_cray.so.6"},                                      // libsci-cray
	{Soname: "librocblas.so.4", Path: "/opt/rocm/lib/librocblas.so.4"},                                                  // rocm-blas
	{Soname: "librocsolver.so.0", Path: "/opt/rocm/lib/librocsolver.so.0"},                                              // rocsolver-rocm
	{Soname: "librocsparse.so.1", Path: "/opt/rocm/lib/librocsparse.so.1"},                                              // rocsparse-rocm
	{Soname: "libfftw3.so.3", Path: "/opt/cray/pe/fftw/lib/libfftw3.so.3"},                                              // fft-cray
	{Soname: "libhipfft.so.0", Path: "/opt/rocm/lib/libhipfft.so.0"},                                                    // rocm-fft
	{Soname: "librocfft.so.0", Path: "/opt/rocm/lib/librocfft.so.0"},                                                    // rocfft-rocm-fft
	{Soname: "libcraymath.so.1", Path: "/opt/cray/pe/lib64/libcraymath.so.1"},                                           // craymath-cray
	{Soname: "libMIOpen.so.1", Path: "/opt/rocm/lib/libMIOpen.so.1"},                                                    // MIOpen-rocm
	{Soname: "libgromacs_mpi.so.8", Path: "/appl/soft/chem/gromacs/lib/libgromacs_mpi.so.8"},                            // gromacs
	{Soname: "libboost_program_options.so.1.82", Path: "/usr/lib64/libboost_program_options.so.1.82"},                   // boost
	{Soname: "libnetcdf.so.19", Path: "/opt/cray/pe/netcdf/lib/libnetcdf.so.19"},                                        // netcdf-cray
	{Soname: "libamdgpu_offload.so.1", Path: "/opt/cray/pe/cce/lib/libamdgpu_offload.so.1"},                             // amdgpu-cray
	{Soname: "libopenacc.so.1", Path: "/opt/cray/pe/cce/lib/libopenacc.so.1"},                                           // openacc-cray
	{Soname: "libtorch_hip.so.2", Path: "/opt/rocm/lib/libtorch_hip.so.2"},                                              // rocm-torch
	{Soname: "libtorch_hip_numa.so.2", Path: "/opt/rocm/lib/libtorch_hip_numa.so.2"},                                    // numa-rocm-torch
	{Soname: "libnuma_spack.so.1", Path: "/appl/spack/opt/lib/libnuma.so.1"},                                            // numa-spack
	{Soname: "libssl_site.so.3", Path: "/appl/spack/opt/lib/libssl.so.3"},                                               // spack
	{Soname: "libopenblas.so.0", Path: "/appl/spack/opt/lib/libopenblas.so.0"},                                          // blas-spack
	{Soname: "librocsolver_spack.so.0", Path: "/appl/spack/opt/lib/librocsolver.so.0"},                                  // rocsolver-spack
	{Soname: "librocsparse_spack.so.1", Path: "/appl/spack/opt/lib/librocsparse.so.1"},                                  // rocsparse-spack
	{Soname: "libdrm_spack.so.2", Path: "/appl/spack/opt/lib/libdrm.so.2"},                                              // drm-spack
	{Soname: "libdrm_amdgpu_spack.so.1", Path: "/appl/spack/opt/lib/libdrm_amdgpu.so.1"},                                // amdgpu-drm-spack
	{Soname: "libclimatedt_core.so.1", Path: "/appl/climatedt/lib/libclimatedt_core.so.1"},                              // climatedt
	{Soname: "libclimatedt_yaml.so.1", Path: "/appl/climatedt/lib/libclimatedt_yaml.so.1"},                              // climatedt-yaml
	{Soname: "libhdf5.so.200", Path: "/opt/cray/pe/hdf5/lib/libhdf5.so.200"},                                            // hdf5-cray
	{Soname: "libcudart.so.11", Path: "/appl/amber22/lib/libcudart.so.11"},                                              // cuda-amber
	{Soname: "libamber_core.so.22", Path: "/appl/amber22/lib/libamber_core.so.22"},                                      // amber
	{Soname: "libpnetcdf.so.4", Path: "/opt/cray/pe/parallel-netcdf/lib/libpnetcdf.so.4"},                               // netcdf-parallel-cray
	{Soname: "libhdf5_parallel.so.200", Path: "/opt/cray/pe/hdf5-parallel/lib/libhdf5_parallel.so.200"},                 // hdf5-parallel-cray
	{Soname: "libhdf5_fortran_parallel.so.200", Path: "/opt/cray/pe/hdf5-parallel/lib/libhdf5_fortran_parallel.so.200"}, // hdf5-fortran-parallel-cray
	{Soname: "libtorch.so.2", Path: "/appl/tykky/torch-env/lib/libtorch.so.2"},                                          // torch-tykky
	{Soname: "libtorch_numa.so.2", Path: "/appl/tykky/torch-env/lib/libtorch_numa.so.2"},                                // numa-torch-tykky
}

// Tagged soname groups used when declaring application link sets. Keys are
// the Figure 2/5 tag names; values the soname that carries the tag.
var tagSoname = map[string]string{
	"pthread":                    "libpthread.so.0",
	"cray":                       "libcrayutils.so.1",
	"quadmath-cray":              "libquadmath.so.0",
	"fabric-cray":                "libfabric.so.1",
	"pmi-cray":                   "libpmi.so.0",
	"rocm":                       "libhsa-runtime64.so.1",
	"numa":                       "libnuma.so.1",
	"drm":                        "libdrm.so.2",
	"amdgpu-drm":                 "libdrm_amdgpu.so.1",
	"fortran":                    "libgfortran.so.5",
	"libsci-cray":                "libsci_cray.so.6",
	"rocm-blas":                  "librocblas.so.4",
	"rocsolver-rocm":             "librocsolver.so.0",
	"rocsparse-rocm":             "librocsparse.so.1",
	"fft-cray":                   "libfftw3.so.3",
	"rocm-fft":                   "libhipfft.so.0",
	"rocfft-rocm-fft":            "librocfft.so.0",
	"craymath-cray":              "libcraymath.so.1",
	"MIOpen-rocm":                "libMIOpen.so.1",
	"gromacs":                    "libgromacs_mpi.so.8",
	"boost":                      "libboost_program_options.so.1.82",
	"netcdf-cray":                "libnetcdf.so.19",
	"amdgpu-cray":                "libamdgpu_offload.so.1",
	"openacc-cray":               "libopenacc.so.1",
	"rocm-torch":                 "libtorch_hip.so.2",
	"numa-rocm-torch":            "libtorch_hip_numa.so.2",
	"numa-spack":                 "libnuma_spack.so.1",
	"spack":                      "libssl_site.so.3",
	"blas-spack":                 "libopenblas.so.0",
	"rocsolver-spack":            "librocsolver_spack.so.0",
	"rocsparse-spack":            "librocsparse_spack.so.1",
	"drm-spack":                  "libdrm_spack.so.2",
	"amdgpu-drm-spack":           "libdrm_amdgpu_spack.so.1",
	"climatedt":                  "libclimatedt_core.so.1",
	"climatedt-yaml":             "libclimatedt_yaml.so.1",
	"hdf5-cray":                  "libhdf5.so.200",
	"cuda-amber":                 "libcudart.so.11",
	"amber":                      "libamber_core.so.22",
	"netcdf-parallel-cray":       "libpnetcdf.so.4",
	"hdf5-parallel-cray":         "libhdf5_parallel.so.200",
	"hdf5-fortran-parallel-cray": "libhdf5_fortran_parallel.so.200",
	"torch-tykky":                "libtorch.so.2",
	"numa-torch-tykky":           "libtorch_numa.so.2",
}

// sonamesForTags resolves tag names into the link set (sonames). Unknown
// tags panic: they indicate an inconsistency between the catalogue and the
// paper matrices, which must fail fast at catalogue construction.
func sonamesForTags(tags ...string) []string {
	out := make([]string, 0, len(tags)+1)
	for _, tag := range tags {
		so, ok := tagSoname[tag]
		if !ok {
			panic("apps: no library registered for tag " + tag)
		}
		out = append(out, so)
	}
	out = append(out, "libc.so.6")
	return out
}
