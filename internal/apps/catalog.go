package apps

import (
	"fmt"

	"siren/internal/ldso"
	"siren/internal/procfs"
	"siren/internal/pyenv"
	"siren/internal/toolchain"
	"strings"

	"siren/internal/xxhash"
)

// SystemExe is one utility installed in a system directory.
type SystemExe struct {
	Name   string
	Path   string
	Needed []string // DT_NEEDED sonames
}

// Variant is one concrete executable of an application: a distinct binary
// (distinct FILE_H) built from the app's source family.
type Variant struct {
	Path      string
	Compilers []toolchain.Compiler
	Version   string
	Mutations int
}

// App is one labelled application of Table 5.
type App struct {
	Label    string   // the regex-derived software label
	Tags     []string // Figure 5 library tags this app links against
	Variants []Variant
	// SourceName is the toolchain source identity; variants of apps sharing
	// a SourceName (icon and UNKNOWN) are fuzzy-similar across labels.
	SourceName string
	CodeKB     int
	// LibraryPath holds the extra LD_LIBRARY_PATH directories (set by the
	// app's environment modules) needed to resolve site-installed libraries
	// under /appl; computed at Install time.
	LibraryPath []string
}

// Env returns the module-provided environment for running this app:
// LD_LIBRARY_PATH covering its site library directories (empty map if the
// default linker path suffices).
func (a *App) Env() map[string]string {
	if len(a.LibraryPath) == 0 {
		return map[string]string{}
	}
	path := a.LibraryPath[0]
	for _, d := range a.LibraryPath[1:] {
		path += ":" + d
	}
	return map[string]string{"LD_LIBRARY_PATH": path}
}

// Catalog is the installed software inventory of the simulated system.
type Catalog struct {
	FS           *procfs.FS
	Cache        *ldso.Cache
	SystemExes   []SystemExe
	Apps         []App
	Interpreters []pyenv.Interpreter
}

// System utilities; the real LUMI dataset saw 112 distinct system-directory
// executables — we install a representative 30, including everything
// Table 3 names.
var systemExeDefs = []SystemExe{
	{Name: "bash", Path: "/usr/bin/bash", Needed: []string{"libtinfo.so.6", "libc.so.6"}},
	{Name: "srun", Path: "/usr/bin/srun", Needed: []string{"libslurmfull.so", "libpmi.so.0", "libmunge.so.2", "libc.so.6"}},
	{Name: "lua5.3", Path: "/usr/bin/lua5.3", Needed: []string{"liblua5.3.so.5", "libreadline.so.8", "libc.so.6"}},
	{Name: "rm", Path: "/usr/bin/rm", Needed: []string{"libselinux.so.1", "libc.so.6"}},
	{Name: "cat", Path: "/usr/bin/cat", Needed: []string{"libc.so.6"}},
	{Name: "uname", Path: "/usr/bin/uname", Needed: []string{"libc.so.6"}},
	{Name: "ls", Path: "/usr/bin/ls", Needed: []string{"libselinux.so.1", "libc.so.6"}},
	{Name: "mkdir", Path: "/usr/bin/mkdir", Needed: []string{"libselinux.so.1", "libc.so.6"}},
	{Name: "grep", Path: "/usr/bin/grep", Needed: []string{"libc.so.6"}},
	{Name: "cp", Path: "/usr/bin/cp", Needed: []string{"libselinux.so.1", "libc.so.6"}},
	{Name: "sed", Path: "/usr/bin/sed", Needed: []string{"libc.so.6"}},
	{Name: "awk", Path: "/usr/bin/awk", Needed: []string{"libm.so.6", "libc.so.6"}},
	{Name: "tar", Path: "/usr/bin/tar", Needed: []string{"libselinux.so.1", "libc.so.6"}},
	{Name: "gzip", Path: "/usr/bin/gzip", Needed: []string{"libc.so.6"}},
	{Name: "date", Path: "/usr/bin/date", Needed: []string{"libc.so.6"}},
	{Name: "hostname", Path: "/usr/bin/hostname", Needed: []string{"libc.so.6"}},
	{Name: "env", Path: "/usr/bin/env", Needed: []string{"libc.so.6"}},
	{Name: "chmod", Path: "/usr/bin/chmod", Needed: []string{"libc.so.6"}},
	{Name: "tail", Path: "/usr/bin/tail", Needed: []string{"libc.so.6"}},
	{Name: "head", Path: "/usr/bin/head", Needed: []string{"libc.so.6"}},
	{Name: "wc", Path: "/usr/bin/wc", Needed: []string{"libc.so.6"}},
	{Name: "sleep", Path: "/usr/bin/sleep", Needed: []string{"libc.so.6"}},
	{Name: "find", Path: "/usr/bin/find", Needed: []string{"libselinux.so.1", "libc.so.6"}},
	{Name: "touch", Path: "/usr/bin/touch", Needed: []string{"libc.so.6"}},
	{Name: "echo", Path: "/usr/bin/echo", Needed: []string{"libc.so.6"}},
	{Name: "tee", Path: "/usr/bin/tee", Needed: []string{"libc.so.6"}},
	{Name: "sort", Path: "/usr/bin/sort", Needed: []string{"libc.so.6"}},
	{Name: "cut", Path: "/usr/bin/cut", Needed: []string{"libc.so.6"}},
	{Name: "xargs", Path: "/usr/bin/xargs", Needed: []string{"libc.so.6"}},
	{Name: "bc", Path: "/usr/bin/bc", Needed: []string{"libm.so.6", "libc.so.6"}},
}

var interpreterDefs = []pyenv.Interpreter{
	{Version: "3.6", Path: "/usr/bin/python3.6", LibDir: "/usr/lib64/python3.6"},
	{Version: "3.10", Path: "/usr/bin/python3.10", LibDir: "/usr/lib64/python3.10"},
	{Version: "3.11", Path: "/usr/bin/python3.11", LibDir: "/usr/lib64/python3.11"},
}

// UnknownLabel is the label the analysis layer assigns to unmatched paths.
const UnknownLabel = "UNKNOWN"

// UnknownPath is the nondescript executable of Tables 5 and 7 — an icon
// build living under a name and path that match no software regex.
const UnknownPath = "/scratch/project_465000831/run/a.out"

// appDefs declares Table 5's applications: their Figure 5 link tags and
// their variant structure (count, compiler combinations, version spread),
// which drives Table 6 and Figure 4.
func appDefs() []App {
	apps := []App{
		{
			Label:      "LAMMPS",
			SourceName: "lammps",
			CodeKB:     48,
			Tags: []string{"pthread", "cray", "quadmath-cray", "fabric-cray", "pmi-cray",
				"rocm", "numa", "drm", "amdgpu-drm", "libsci-cray", "rocm-blas",
				"rocsolver-rocm", "rocsparse-rocm", "fft-cray", "rocm-fft",
				"rocfft-rocm-fft", "MIOpen-rocm", "rocm-torch", "numa-rocm-torch",
				"torch-tykky", "numa-torch-tykky"},
			Variants: []Variant{
				{Path: "/users/user_2/lammps/build1/lmp", Compilers: []toolchain.Compiler{toolchain.GCCSUSE}, Version: "2Aug2023"},
				{Path: "/users/user_2/lammps/build2/lmp", Compilers: []toolchain.Compiler{toolchain.GCCSUSE}, Version: "2Aug2023", Mutations: 40},
				{Path: "/projappl/project_465000012/lammps/bin/lmp", Compilers: []toolchain.Compiler{toolchain.GCCSUSE}, Version: "29Aug2024"},
				{Path: "/users/user_2/lammps-gpu/lmp_hip", Compilers: []toolchain.Compiler{toolchain.LLDAMD}, Version: "2Aug2023"},
				{Path: "/users/user_7/lammps/lmp", Compilers: []toolchain.Compiler{toolchain.LLDAMD}, Version: "29Aug2024"},
			},
		},
		{
			Label:      "GROMACS",
			SourceName: "gromacs",
			CodeKB:     48,
			Tags: []string{"pthread", "cray", "quadmath-cray", "fabric-cray", "pmi-cray",
				"rocm", "numa", "drm", "amdgpu-drm", "fortran", "gromacs", "boost"},
			Variants: []Variant{
				{Path: "/appl/soft/chem/gromacs/bin/gmx_mpi", Compilers: []toolchain.Compiler{toolchain.LLDAMD}, Version: "2024.1"},
			},
		},
		{
			Label:      "miniconda",
			SourceName: "miniconda",
			CodeKB:     32,
			Tags:       []string{"pthread"},
			Variants: []Variant{
				{Path: "/users/user_2/miniconda3/bin/conda", Compilers: []toolchain.Compiler{toolchain.GCCRedHat, toolchain.GCCConda}, Version: "24.1"},
				{Path: "/users/user_2/miniconda3/bin/python3.12", Compilers: []toolchain.Compiler{toolchain.GCCRedHat, toolchain.GCCConda}, Version: "24.1", Mutations: 30},
				{Path: "/users/user_2/miniconda3/bin/pip3.12", Compilers: []toolchain.Compiler{toolchain.GCCRedHat, toolchain.GCCConda}, Version: "24.1", Mutations: 60},
				{Path: "/users/user_2/miniconda3/bin/conda-env", Compilers: []toolchain.Compiler{toolchain.GCCRedHat, toolchain.GCCConda}, Version: "24.2"},
				{Path: "/users/user_2/miniconda3/bin/mamba", Compilers: []toolchain.Compiler{toolchain.GCCRedHat, toolchain.Rustc}, Version: "1.5"},
			},
		},
		{
			Label:      "janko",
			SourceName: "janko",
			CodeKB:     32,
			Tags: []string{"pthread", "cray", "quadmath-cray", "fabric-cray", "pmi-cray",
				"fortran", "libsci-cray", "numa-spack", "spack", "blas-spack",
				"rocsolver-spack", "rocsparse-spack", "drm-spack", "amdgpu-drm-spack"},
			Variants: []Variant{
				{Path: "/users/user_11/janko/bin/janko", Compilers: []toolchain.Compiler{toolchain.GCCSUSE, toolchain.GCCHPE}, Version: "0.9"},
				{Path: "/users/user_11/janko/bin/janko-pre", Compilers: []toolchain.Compiler{toolchain.GCCSUSE, toolchain.GCCHPE}, Version: "0.9", Mutations: 80},
			},
		},
		{
			Label:      "amber",
			SourceName: "amber",
			CodeKB:     48,
			Tags: []string{"pthread", "cray", "quadmath-cray", "fabric-cray", "pmi-cray",
				"rocm", "numa", "drm", "amdgpu-drm", "fortran", "libsci-cray",
				"rocm-blas", "rocsolver-rocm", "rocsparse-rocm", "fft-cray", "rocm-fft",
				"rocfft-rocm-fft", "netcdf-cray", "cuda-amber", "amber",
				"netcdf-parallel-cray", "hdf5-parallel-cray", "hdf5-fortran-parallel-cray"},
			Variants: []Variant{
				{Path: "/appl/amber22/bin/pmemd.hip", Compilers: []toolchain.Compiler{toolchain.GCCSUSE, toolchain.ClangAMD}, Version: "22"},
				{Path: "/appl/amber22/bin/sander", Compilers: []toolchain.Compiler{toolchain.GCCSUSE, toolchain.ClangAMD}, Version: "22", Mutations: 50},
			},
		},
		{
			Label:      "gzip",
			SourceName: "gzip-user",
			CodeKB:     16,
			Tags:       nil, // links only libc: Figure 5's siren-only row
			Variants: []Variant{
				{Path: "/users/user_2/tools/gzip", Compilers: []toolchain.Compiler{toolchain.LLDAMD}, Version: "1.13"},
			},
		},
		{
			Label:      "alexandria",
			SourceName: "alexandria",
			CodeKB:     24,
			Tags: []string{"pthread", "cray", "quadmath-cray", "fabric-cray", "pmi-cray",
				"fortran", "craymath-cray"},
			Variants: []Variant{
				{Path: "/users/user_9/alexandria/bin/alexandria", Compilers: []toolchain.Compiler{toolchain.GCCSUSE}, Version: "1.0"},
			},
		},
		{
			Label:      "RadRad",
			SourceName: "radrad",
			CodeKB:     24,
			Tags: []string{"pthread", "cray", "quadmath-cray", "rocm", "numa", "drm",
				"amdgpu-drm", "fortran", "libsci-cray", "rocm-blas", "rocsolver-rocm",
				"rocsparse-rocm", "craymath-cray", "amdgpu-cray", "openacc-cray"},
			Variants: []Variant{
				{Path: "/users/user_6/RadRad/bin/RadRad", Compilers: []toolchain.Compiler{toolchain.GCCSUSE, toolchain.ClangCray}, Version: "3.1"},
				{Path: "/users/user_6/RadRad/bin/RadRad-post", Compilers: []toolchain.Compiler{toolchain.GCCSUSE, toolchain.ClangCray}, Version: "3.1", Mutations: 60},
			},
		},
	}
	apps = append(apps, iconApp(), unknownApp())
	return apps
}

// iconTags is shared by icon and its UNKNOWN doppelgänger (same build
// system, same link set).
var iconTags = []string{"pthread", "cray", "quadmath-cray", "fabric-cray", "pmi-cray",
	"rocm", "numa", "drm", "amdgpu-drm", "fortran", "libsci-cray", "craymath-cray",
	"netcdf-cray", "amdgpu-cray", "openacc-cray", "climatedt", "climatedt-yaml",
	"hdf5-cray"}

// IconVariantCount mirrors the paper: 175 distinct icon executables from one
// user's many rebuild jobs (Table 5's unique-FILE_H outlier), split across
// three compiler combinations (Table 6 rows 2, 3 and 8).
const IconVariantCount = 175

func iconApp() App {
	app := App{Label: "icon", SourceName: "icon", CodeKB: 32, Tags: iconTags}
	for i := 0; i < IconVariantCount; i++ {
		var comps []toolchain.Compiler
		switch {
		case i < 130:
			comps = []toolchain.Compiler{toolchain.GCCSUSE}
		case i < 162:
			comps = []toolchain.Compiler{toolchain.GCCSUSE, toolchain.ClangCray}
		default:
			comps = []toolchain.Compiler{toolchain.GCCSUSE, toolchain.ClangCray, toolchain.ClangAMD}
		}
		app.Variants = append(app.Variants, Variant{
			Path:      fmt.Sprintf("/scratch/project_465000100/icon/build_%03d/bin/icon", i),
			Compilers: comps,
			Version:   fmt.Sprintf("2.6.%d", i/20),
			Mutations: (i % 20) * 25,
		})
	}
	return app
}

// unknownApp is the Table 7 subject: icon builds under a nondescript name.
// Same source family and link tags as icon, so similarity search must
// identify it; its own label derives to UNKNOWN.
func unknownApp() App {
	app := App{Label: UnknownLabel, SourceName: "icon", CodeKB: 32, Tags: iconTags}
	for i := 0; i < 7; i++ {
		path := UnknownPath
		if i > 0 {
			path = fmt.Sprintf("/scratch/project_465000831/run%d/a.out", i)
		}
		app.Variants = append(app.Variants, Variant{
			Path:      path,
			Compilers: []toolchain.Compiler{toolchain.GCCSUSE},
			Version:   fmt.Sprintf("2.6.%d", i/3),
			Mutations: (i % 3) * 25,
		})
	}
	return app
}

// iconFunctions is the global-symbol surface of the icon source family.
var sourceFunctions = map[string][]string{
	"icon":       {"icon_init", "icon_run_timestep", "icon_radiation", "icon_dynamics", "icon_output_nc", "icon_finalize"},
	"lammps":     {"lmp_init", "lmp_run", "lmp_pair_compute", "lmp_neighbor_build", "lmp_dump"},
	"gromacs":    {"gmx_mdrun", "gmx_grompp", "gmx_pme_spread", "gmx_nb_kernel"},
	"miniconda":  {"conda_main", "conda_solve", "conda_fetch"},
	"janko":      {"janko_assemble", "janko_solve", "janko_write"},
	"amber":      {"pmemd_main", "pmemd_force", "pmemd_pme", "pmemd_shake"},
	"gzip-user":  {"deflate", "inflate", "zip_main"},
	"alexandria": {"alex_train", "alex_score"},
	"radrad":     {"radrad_transport", "radrad_emit"},
}

// Install builds the whole catalogue into fs and cache. All binaries are
// compiled deterministically; file timestamps derive from baseTime.
func Install(fs *procfs.FS, cache *ldso.Cache, baseTime int64) (*Catalog, error) {
	cat := &Catalog{FS: fs, Cache: cache, Interpreters: interpreterDefs}

	// Shared libraries: register with the linker cache and install file
	// content (small stand-in images; the campaign never parses libraries).
	for _, lib := range libraryDefs {
		cache.Register(lib)
		content := []byte("\x7fELF-shared-object\x00" + lib.Path)
		fs.Install(lib.Path, content, procfs.FileMeta{
			UID: 0, GID: 0, Mtime: baseTime - 86400*200, Atime: baseTime, Ctime: baseTime - 86400*200,
		})
	}

	// System executables: root-owned, built with the distro compiler.
	for _, se := range systemExeDefs {
		src := toolchain.Source{
			Name:      se.Name,
			Version:   "system",
			Functions: []string{"main", se.Name + "_run"},
			Strings:   []string{se.Name + " (GNU coreutils-like) 9.1", "usage: " + se.Name},
			CodeKB:    8,
		}
		art, err := toolchain.Compile(src, toolchain.BuildOptions{
			Compilers: []toolchain.Compiler{toolchain.GCCSUSE},
			Libraries: se.Needed,
		})
		if err != nil {
			return nil, fmt.Errorf("apps: building %s: %w", se.Name, err)
		}
		fs.Install(se.Path, art.Binary, procfs.FileMeta{
			UID: 0, GID: 0, Mtime: baseTime - 86400*365, Atime: baseTime, Ctime: baseTime - 86400*365,
		})
		cat.SystemExes = append(cat.SystemExes, se)
	}

	// Python interpreters (system directory).
	for _, it := range interpreterDefs {
		src := toolchain.Source{
			Name:      "python" + it.Version,
			Version:   it.Version,
			Functions: []string{"Py_Main", "Py_Initialize", "PyEval_EvalCode"},
			Strings:   []string{"Python " + it.Version, "PYTHONPATH"},
			CodeKB:    16,
		}
		art, err := toolchain.Compile(src, toolchain.BuildOptions{
			Compilers: []toolchain.Compiler{toolchain.GCCSUSE},
			Libraries: []string{"libm.so.6", "libc.so.6"},
		})
		if err != nil {
			return nil, fmt.Errorf("apps: building %s: %w", it.Path, err)
		}
		fs.Install(it.Path, art.Binary, procfs.FileMeta{
			UID: 0, GID: 0, Mtime: baseTime - 86400*365, Atime: baseTime, Ctime: baseTime - 86400*365,
		})
	}

	// Scientific applications.
	for _, app := range appDefs() {
		needed := sonamesForTags(app.Tags...)
		app.LibraryPath = extraLibraryDirs(cache, needed)
		funcs := sourceFunctions[app.SourceName]
		for vi, v := range app.Variants {
			uid := userIDFromPath(v.Path)
			src := toolchain.Source{
				Name:      app.SourceName,
				Version:   v.Version,
				Functions: funcs,
				Strings: []string{
					app.SourceName + " scientific application",
					"build " + v.Version,
				},
				CodeKB: app.CodeKB,
			}
			art, err := toolchain.Compile(src, toolchain.BuildOptions{
				Compilers: v.Compilers,
				Mutations: v.Mutations,
				Libraries: needed,
			})
			if err != nil {
				return nil, fmt.Errorf("apps: building %s variant %d: %w", app.Label, vi, err)
			}
			fs.Install(v.Path, art.Binary, procfs.FileMeta{
				UID: uid, GID: uid, Mtime: baseTime - 86400*int64(vi%30), Atime: baseTime,
				Ctime: baseTime - 86400*int64(vi%30),
			})
		}
		cat.Apps = append(cat.Apps, app)
	}

	return cat, nil
}

// App returns the catalogue entry with the given label, or nil.
func (c *Catalog) App(label string) *App {
	for i := range c.Apps {
		if c.Apps[i].Label == label {
			return &c.Apps[i]
		}
	}
	return nil
}

// SystemExePath returns the path of the named system utility ("" if absent).
func (c *Catalog) SystemExePath(name string) string {
	for _, se := range c.SystemExes {
		if se.Name == name {
			return se.Path
		}
	}
	return ""
}

// Interpreter returns the Python interpreter with the given version.
func (c *Catalog) Interpreter(version string) (pyenv.Interpreter, bool) {
	for _, it := range c.Interpreters {
		if it.Version == version {
			return it, true
		}
	}
	return pyenv.Interpreter{}, false
}

// userIDFromPath derives a stable synthetic UID for user-owned paths.
func userIDFromPath(path string) uint32 {
	return 1000 + uint32(xxhash.Sum64String(path)%100)
}

// extraLibraryDirs finds the directories (beyond the default linker search
// path) an app's environment modules must add to LD_LIBRARY_PATH so that all
// its sonames resolve. Order is stable (link-set order, deduplicated).
func extraLibraryDirs(cache *ldso.Cache, needed []string) []string {
	var dirs []string
	seen := make(map[string]bool)
	for _, so := range needed {
		if _, ok := cache.Resolve(so, nil); ok {
			continue // default path covers it
		}
		for _, lib := range libraryDefs {
			if lib.Soname != so {
				continue
			}
			dir := lib.Path[:strings.LastIndexByte(lib.Path, '/')]
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
			break
		}
	}
	return dirs
}
