package apps

import (
	"strings"
	"testing"

	"siren/internal/elfx"
	"siren/internal/ldso"
	"siren/internal/procfs"
	"siren/internal/ssdeep"
)

func install(t *testing.T) *Catalog {
	t.Helper()
	fs := procfs.NewFS()
	cache := ldso.NewCache()
	cat, err := Install(fs, cache, 1733900000)
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	return cat
}

func TestInstallCounts(t *testing.T) {
	cat := install(t)
	if len(cat.SystemExes) != 30 {
		t.Errorf("system exes = %d, want 30", len(cat.SystemExes))
	}
	if len(cat.Apps) != 10 { // 8 named + icon + UNKNOWN
		t.Errorf("apps = %d, want 10", len(cat.Apps))
	}
	icon := cat.App("icon")
	if icon == nil || len(icon.Variants) != IconVariantCount {
		t.Fatalf("icon variants missing")
	}
	unk := cat.App(UnknownLabel)
	if unk == nil || len(unk.Variants) != 7 {
		t.Fatalf("UNKNOWN variants = %+v", unk)
	}
}

func TestEveryBinaryIsValidELF(t *testing.T) {
	cat := install(t)
	check := func(path string) {
		img, err := cat.FS.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, err := elfx.Parse(img); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
	for _, se := range cat.SystemExes {
		check(se.Path)
	}
	for _, it := range cat.Interpreters {
		check(it.Path)
	}
	for _, app := range cat.Apps {
		for _, v := range app.Variants {
			check(v.Path)
		}
	}
}

func TestAllNeededLibrariesResolvable(t *testing.T) {
	cat := install(t)
	for _, app := range cat.Apps {
		for _, v := range app.Variants {
			img, _ := cat.FS.ReadFile(v.Path)
			res, err := ldso.Link(img, v.Path, app.Env(), cat.Cache, cat.FS, false)
			if err != nil {
				t.Fatalf("%s: %v", v.Path, err)
			}
			if len(res.Missing) > 0 {
				t.Errorf("%s: unresolved libraries %q", v.Path, res.Missing)
			}
		}
	}
	for _, se := range cat.SystemExes {
		img, _ := cat.FS.ReadFile(se.Path)
		res, err := ldso.Link(img, se.Path, nil, cat.Cache, cat.FS, false)
		if err != nil {
			t.Fatalf("%s: %v", se.Path, err)
		}
		if len(res.Missing) > 0 {
			t.Errorf("%s: unresolved libraries %q", se.Path, res.Missing)
		}
	}
}

func TestVariantsHaveDistinctBinaries(t *testing.T) {
	cat := install(t)
	for _, app := range cat.Apps {
		seen := make(map[string]string)
		for _, v := range app.Variants {
			img, _ := cat.FS.ReadFile(v.Path)
			h, err := ssdeep.Hash(img)
			if err != nil {
				t.Fatal(err)
			}
			if prev, dup := seen[h]; dup {
				t.Errorf("%s: %s and %s share FILE_H", app.Label, prev, v.Path)
			}
			seen[h] = v.Path
		}
	}
}

func TestUnknownResemblesIcon(t *testing.T) {
	cat := install(t)
	unkImg, err := cat.FS.ReadFile(UnknownPath)
	if err != nil {
		t.Fatal(err)
	}
	unkHash, _ := ssdeep.Hash(unkImg)

	icon := cat.App("icon")
	best := 0
	for _, v := range icon.Variants[:40] {
		img, _ := cat.FS.ReadFile(v.Path)
		h, _ := ssdeep.Hash(img)
		s, err := ssdeep.Compare(unkHash, h)
		if err != nil {
			t.Fatal(err)
		}
		if s > best {
			best = s
		}
	}
	if best < 60 {
		t.Errorf("best icon similarity to UNKNOWN = %d, want >= 60", best)
	}

	// And it must NOT resemble an unrelated app.
	gmx := cat.App("GROMACS").Variants[0]
	img, _ := cat.FS.ReadFile(gmx.Path)
	h, _ := ssdeep.Hash(img)
	if s, _ := ssdeep.Compare(unkHash, h); s > 20 {
		t.Errorf("UNKNOWN vs GROMACS similarity = %d, want <= 20", s)
	}
}

func TestCompilerCombosMatchFigure4(t *testing.T) {
	cat := install(t)
	// Figure 4's usage matrix: label → set of compiler labels that must
	// appear across the app's variants.
	want := map[string][]string{
		"LAMMPS":     {"GCC [SUSE]", "LLD [AMD]"},
		"GROMACS":    {"LLD [AMD]"},
		"miniconda":  {"GCC [Red Hat]", "GCC [conda]", "rustc"},
		"janko":      {"GCC [SUSE]", "GCC [HPE]"},
		"icon":       {"GCC [SUSE]", "clang [Cray]", "clang [AMD]"},
		"amber":      {"GCC [SUSE]", "clang [AMD]"},
		"gzip":       {"LLD [AMD]"},
		"alexandria": {"GCC [SUSE]"},
		"RadRad":     {"GCC [SUSE]", "clang [Cray]"},
	}
	for label, comps := range want {
		app := cat.App(label)
		if app == nil {
			t.Fatalf("missing app %s", label)
		}
		got := make(map[string]bool)
		for _, v := range app.Variants {
			for _, c := range v.Compilers {
				got[c.Label()] = true
			}
		}
		for _, c := range comps {
			if !got[c] {
				t.Errorf("%s: compiler %s missing (have %v)", label, c, got)
			}
		}
		if len(got) != len(comps) {
			t.Errorf("%s: extra compilers: have %v, want %v", label, got, comps)
		}
	}
}

func TestCommentSectionsRoundTrip(t *testing.T) {
	cat := install(t)
	v := cat.App("janko").Variants[0]
	img, _ := cat.FS.ReadFile(v.Path)
	f, err := elfx.Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	comments := f.Comment()
	if len(comments) != 2 {
		t.Fatalf("comments = %q", comments)
	}
	if !strings.Contains(comments[0], "GCC: (SUSE Linux)") || !strings.Contains(comments[1], "GCC: (HPE)") {
		t.Errorf("comments = %q", comments)
	}
}

func TestUnknownPathIsNondescript(t *testing.T) {
	lower := strings.ToLower(UnknownPath)
	for _, name := range []string{"lammps", "gromacs", "conda", "janko", "icon", "amber", "gzip", "alexandria", "radrad", "lmp", "gmx"} {
		if strings.Contains(lower, name) {
			t.Errorf("UnknownPath %q leaks software name %q", UnknownPath, name)
		}
	}
}

func TestCatalogAccessors(t *testing.T) {
	cat := install(t)
	if p := cat.SystemExePath("bash"); p != "/usr/bin/bash" {
		t.Errorf("bash path = %q", p)
	}
	if p := cat.SystemExePath("nonesuch"); p != "" {
		t.Errorf("nonesuch path = %q", p)
	}
	it, ok := cat.Interpreter("3.10")
	if !ok || it.Path != "/usr/bin/python3.10" {
		t.Errorf("interpreter = %+v ok=%v", it, ok)
	}
	if _, ok := cat.Interpreter("2.7"); ok {
		t.Error("python 2.7 should not exist")
	}
}

func BenchmarkInstall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs := procfs.NewFS()
		cache := ldso.NewCache()
		if _, err := Install(fs, cache, 1733900000); err != nil {
			b.Fatal(err)
		}
	}
}
