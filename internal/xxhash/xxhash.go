// Package xxhash implements the XXH64 fast non-cryptographic hash and a
// 128-bit composition used by SIREN to fingerprint executable paths.
//
// SIREN hashes the path read from /proc/self/exe with a 128-bit xxHash
// (XXH3_128bits in the C implementation) purely to disambiguate database
// rows when a process image is replaced via exec() under the same PID and
// timestamp. The hash is neither cryptographic nor fuzzy and is never
// analysed, so the only properties that matter are speed and dispersion.
//
// Sum64 is a faithful implementation of the published XXH64 algorithm
// (same constants and mixing schedule, so values match the reference for
// any seed). Sum128 composes two independently seeded XXH64 lanes with an
// extra avalanche finalisation; it is NOT bit-compatible with reference
// XXH3_128bits (documented substitution — see DESIGN.md §1).
package xxhash

import (
	"encoding/binary"
	"math/bits"
)

const (
	prime1 uint64 = 0x9E3779B185EBCA87
	prime2 uint64 = 0xC2B2AE3D27D4EB4F
	prime3 uint64 = 0x165667B19E3779F9
	prime4 uint64 = 0x85EBCA77C2B2AE63
	prime5 uint64 = 0x27D4EB2F165667C5
)

// Sum64 returns the XXH64 hash of data with seed 0.
func Sum64(data []byte) uint64 { return Sum64Seed(data, 0) }

// Sum64String is Sum64 over the bytes of s.
func Sum64String(s string) uint64 { return Sum64Seed([]byte(s), 0) }

// Sum64Seed returns the XXH64 hash of data with the given seed.
func Sum64Seed(data []byte, seed uint64) uint64 {
	n := len(data)
	var h uint64

	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(data) >= 32 {
			v1 = round(v1, binary.LittleEndian.Uint64(data[0:8]))
			v2 = round(v2, binary.LittleEndian.Uint64(data[8:16]))
			v3 = round(v3, binary.LittleEndian.Uint64(data[16:24]))
			v4 = round(v4, binary.LittleEndian.Uint64(data[24:32]))
			data = data[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}

	h += uint64(n)

	for len(data) >= 8 {
		h ^= round(0, binary.LittleEndian.Uint64(data[:8]))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		data = data[8:]
	}
	if len(data) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(data[:4])) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		data = data[4:]
	}
	for _, b := range data {
		h ^= uint64(b) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}

	return avalanche(h)
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = bits.RotateLeft64(acc, 31)
	return acc * prime1
}

func mergeRound(acc, val uint64) uint64 {
	acc ^= round(0, val)
	return acc*prime1 + prime4
}

func avalanche(h uint64) uint64 {
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Sum128 is a 128-bit hash value.
type Sum128 struct {
	Hi, Lo uint64
}

// IsZero reports whether the value is the all-zero hash (never produced for
// any input, so usable as a sentinel).
func (s Sum128) IsZero() bool { return s.Hi == 0 && s.Lo == 0 }

// Hex renders the 128-bit value as 32 lowercase hex digits.
func (s Sum128) Hex() string {
	const digits = "0123456789abcdef"
	var out [32]byte
	v := s.Hi
	for i := 15; i >= 0; i-- {
		out[i] = digits[v&0xF]
		v >>= 4
	}
	v = s.Lo
	for i := 31; i >= 16; i-- {
		out[i] = digits[v&0xF]
		v >>= 4
	}
	return string(out[:])
}

// Hash128 returns a 128-bit hash of data: two independently seeded XXH64
// lanes cross-mixed with an extra avalanche so the halves are not trivially
// correlated.
func Hash128(data []byte) Sum128 {
	lo := Sum64Seed(data, 0)
	hi := Sum64Seed(data, prime5)
	// Cross-mix so that (lo, hi) pairs from related seeds do not align.
	mixedHi := avalanche(hi ^ bits.RotateLeft64(lo, 32) ^ uint64(len(data))*prime3)
	mixedLo := avalanche(lo ^ bits.RotateLeft64(hi, 17) + prime4)
	if mixedHi == 0 && mixedLo == 0 {
		mixedLo = prime1 // keep the zero value reserved as a sentinel
	}
	return Sum128{Hi: mixedHi, Lo: mixedLo}
}

// Hash128String is Hash128 over the bytes of s.
func Hash128String(s string) Sum128 { return Hash128([]byte(s)) }

// Digest64 is a streaming XXH64 state implementing a subset of hash.Hash64.
type Digest64 struct {
	v1, v2, v3, v4 uint64
	total          uint64
	mem            [32]byte
	memSize        int
	seed           uint64
}

// NewDigest64 returns a streaming XXH64 hasher with the given seed.
func NewDigest64(seed uint64) *Digest64 {
	d := &Digest64{seed: seed}
	d.Reset()
	return d
}

// Reset restores the initial state.
func (d *Digest64) Reset() {
	d.v1 = d.seed + prime1 + prime2
	d.v2 = d.seed + prime2
	d.v3 = d.seed
	d.v4 = d.seed - prime1
	d.total = 0
	d.memSize = 0
}

// Write absorbs p into the state. It never fails.
func (d *Digest64) Write(p []byte) (int, error) {
	n := len(p)
	d.total += uint64(n)
	if d.memSize+len(p) < 32 {
		copy(d.mem[d.memSize:], p)
		d.memSize += len(p)
		return n, nil
	}
	if d.memSize > 0 {
		c := copy(d.mem[d.memSize:], p)
		d.v1 = round(d.v1, binary.LittleEndian.Uint64(d.mem[0:8]))
		d.v2 = round(d.v2, binary.LittleEndian.Uint64(d.mem[8:16]))
		d.v3 = round(d.v3, binary.LittleEndian.Uint64(d.mem[16:24]))
		d.v4 = round(d.v4, binary.LittleEndian.Uint64(d.mem[24:32]))
		p = p[c:]
		d.memSize = 0
	}
	for len(p) >= 32 {
		d.v1 = round(d.v1, binary.LittleEndian.Uint64(p[0:8]))
		d.v2 = round(d.v2, binary.LittleEndian.Uint64(p[8:16]))
		d.v3 = round(d.v3, binary.LittleEndian.Uint64(p[16:24]))
		d.v4 = round(d.v4, binary.LittleEndian.Uint64(p[24:32]))
		p = p[32:]
	}
	if len(p) > 0 {
		copy(d.mem[:], p)
		d.memSize = len(p)
	}
	return n, nil
}

// Sum64 finalises the state without consuming it.
func (d *Digest64) Sum64() uint64 {
	var h uint64
	if d.total >= 32 {
		h = bits.RotateLeft64(d.v1, 1) + bits.RotateLeft64(d.v2, 7) +
			bits.RotateLeft64(d.v3, 12) + bits.RotateLeft64(d.v4, 18)
		h = mergeRound(h, d.v1)
		h = mergeRound(h, d.v2)
		h = mergeRound(h, d.v3)
		h = mergeRound(h, d.v4)
	} else {
		h = d.seed + prime5
	}
	h += d.total

	tail := d.mem[:d.memSize]
	for len(tail) >= 8 {
		h ^= round(0, binary.LittleEndian.Uint64(tail[:8]))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		tail = tail[8:]
	}
	if len(tail) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(tail[:4])) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		tail = tail[4:]
	}
	for _, b := range tail {
		h ^= uint64(b) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}
	return avalanche(h)
}
