package xxhash

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// Published XXH64 reference vectors (seed 0).
func TestSum64ReferenceVectors(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xEF46DB3751D8E999},
		{"a", 0xD24EC4F1A98C6E5B},
		{"abc", 0x44BC2CF5AD770999},
	}
	for _, c := range cases {
		if got := Sum64String(c.in); got != c.want {
			t.Errorf("Sum64(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestSum64SeedChangesResult(t *testing.T) {
	data := []byte("the same input")
	if Sum64Seed(data, 0) == Sum64Seed(data, 1) {
		t.Error("different seeds produced identical hashes")
	}
}

func TestSum64AllLengthClasses(t *testing.T) {
	// Exercise every tail-handling branch: <4, 4..7, 8..31, >=32, and
	// lengths crossing each boundary.
	rng := rand.New(rand.NewSource(1))
	seen := make(map[uint64]int)
	for n := 0; n <= 100; n++ {
		data := make([]byte, n)
		rng.Read(data)
		h := Sum64(data)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between lengths %d and %d", prev, n)
		}
		seen[h] = n
	}
}

func TestStreamingMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed uint64, n uint16, chunk uint8) bool {
		data := make([]byte, int(n)%5000)
		rng.Read(data)
		want := Sum64Seed(data, seed)
		d := NewDigest64(seed)
		step := int(chunk)%97 + 1
		for i := 0; i < len(data); i += step {
			end := i + step
			if end > len(data) {
				end = len(data)
			}
			if _, err := d.Write(data[i:end]); err != nil {
				return false
			}
		}
		return d.Sum64() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestDigestReset(t *testing.T) {
	d := NewDigest64(7)
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	if got, want := d.Sum64(), Sum64Seed([]byte("abc"), 7); got != want {
		t.Errorf("after Reset: %#x, want %#x", got, want)
	}
}

func TestSum64FinalizeIsIdempotent(t *testing.T) {
	d := NewDigest64(0)
	d.Write([]byte("hello xxhash streaming world, longer than thirty-two bytes"))
	if d.Sum64() != d.Sum64() {
		t.Error("Sum64 mutated the streaming state")
	}
}

func TestHash128Basics(t *testing.T) {
	a := Hash128([]byte("executable path /usr/bin/bash"))
	b := Hash128([]byte("executable path /usr/bin/dash"))
	if a == b {
		t.Error("distinct inputs produced identical 128-bit hashes")
	}
	if a.IsZero() || b.IsZero() {
		t.Error("hash produced the reserved zero value")
	}
	if a != Hash128([]byte("executable path /usr/bin/bash")) {
		t.Error("Hash128 not deterministic")
	}
	if Hash128String("x") != Hash128([]byte("x")) {
		t.Error("Hash128String disagrees with Hash128")
	}
}

func TestHash128HalvesIndependent(t *testing.T) {
	// The low half alone must not determine the high half across inputs that
	// collide in one XXH64 lane's low bits — approximate by checking that we
	// never see matching Lo with differing Hi or vice versa on random data
	// (would indicate trivially correlated halves), and that both halves
	// change when the input changes.
	rng := rand.New(rand.NewSource(3))
	prev := Hash128([]byte{0})
	for i := 0; i < 1000; i++ {
		buf := make([]byte, 1+rng.Intn(64))
		rng.Read(buf)
		h := Hash128(buf)
		if h.Lo == prev.Lo && h.Hi != prev.Hi {
			t.Fatalf("low halves collide while high halves differ: %v vs %v", h, prev)
		}
		prev = h
	}
}

func TestHexFormat(t *testing.T) {
	h := Sum128{Hi: 0x0123456789ABCDEF, Lo: 0xFEDCBA9876543210}
	if got := h.Hex(); got != "0123456789abcdeffedcba9876543210" {
		t.Errorf("Hex() = %q", got)
	}
	if len(Hash128([]byte("x")).Hex()) != 32 {
		t.Error("Hex must always be 32 chars")
	}
}

func TestAvalancheDispersion(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	rng := rand.New(rand.NewSource(4))
	base := make([]byte, 64)
	rng.Read(base)
	h0 := Sum64(base)
	total := 0
	const trials = 256
	for i := 0; i < trials; i++ {
		mut := append([]byte(nil), base...)
		mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
		total += bits.OnesCount64(h0 ^ Sum64(mut))
	}
	avg := float64(total) / trials
	if avg < 24 || avg > 40 {
		t.Errorf("average flipped bits %.1f, want ~32 (poor avalanche)", avg)
	}
}

func BenchmarkSum64_1K(b *testing.B)  { benchSum64(b, 1<<10) }
func BenchmarkSum64_64K(b *testing.B) { benchSum64(b, 64<<10) }
func BenchmarkSum64_1M(b *testing.B)  { benchSum64(b, 1<<20) }

func benchSum64(b *testing.B, n int) {
	data := make([]byte, n)
	rand.New(rand.NewSource(5)).Read(data)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum64(data)
	}
}

func BenchmarkHash128_1K(b *testing.B) {
	data := make([]byte, 1<<10)
	rand.New(rand.NewSource(6)).Read(data)
	b.SetBytes(1 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hash128(data)
	}
}
