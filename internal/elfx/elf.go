// Package elfx implements a self-contained ELF64 object builder and reader.
//
// SIREN's C implementation uses libelf to pull three things out of an
// executable: the compiler identification strings in the .comment section,
// the externally visible (global) symbols, and the DT_NEEDED shared-library
// entries. This package provides a reader exposing exactly those fields —
// plus a writer used by the simulation substrate to synthesise realistic
// executables (the campaign generator compiles synthetic applications into
// genuine ELF images whose parsed content round-trips).
//
// Only little-endian ELF64 is supported, matching the AMD EPYC nodes of the
// paper's LUMI deployment. Files produced by Builder are parseable both by
// this package and by the Go standard library's debug/elf (cross-checked in
// tests).
package elfx

// Indexes and values in the ELF identification array (e_ident).
const (
	EIMag0       = 0
	EIMag1       = 1
	EIMag2       = 2
	EIMag3       = 3
	EIClass      = 4
	EIData       = 5
	EIVersion    = 6
	EIOSABI      = 7
	EIABIVersion = 8
	EINIdent     = 16

	ELFMag0 = 0x7F
	ELFMag1 = 'E'
	ELFMag2 = 'L'
	ELFMag3 = 'F'

	ELFClass64    = 2
	ELFData2LSB   = 1
	EVCurrent     = 1
	ELFOSABINone  = 0
	ELFOSABILinux = 3
)

// Object file types (e_type).
const (
	ETNone = 0
	ETRel  = 1
	ETExec = 2
	ETDyn  = 3
)

// Machine architectures (e_machine).
const (
	EMX8664   = 62  // AMD x86-64
	EMAArch64 = 183 // ARM 64-bit
)

// Section header types (sh_type).
const (
	SHTNull     = 0
	SHTProgbits = 1
	SHTSymtab   = 2
	SHTStrtab   = 3
	SHTHash     = 5
	SHTDynamic  = 6
	SHTNote     = 7
	SHTNobits   = 8
	SHTDynsym   = 11
)

// Section header flags (sh_flags).
const (
	SHFWrite     = 0x1
	SHFAlloc     = 0x2
	SHFExecinstr = 0x4
	SHFMerge     = 0x10
	SHFStrings   = 0x20
)

// Symbol bindings (high nibble of st_info).
const (
	STBLocal  = 0
	STBGlobal = 1
	STBWeak   = 2
)

// Symbol types (low nibble of st_info).
const (
	STTNotype = 0
	STTObject = 1
	STTFunc   = 2
)

// Special section indexes for st_shndx.
const (
	SHNUndef = 0
	SHNAbs   = 0xFFF1
)

// Dynamic table tags (d_tag).
const (
	DTNull    = 0
	DTNeeded  = 1
	DTStrtab  = 5
	DTSoname  = 14
	DTRunpath = 29
)

// Sizes of on-disk structures.
const (
	HeaderSize        = 64
	SectionHeaderSize = 64
	SymbolSize        = 24
	DynEntrySize      = 16
)

// Header is the parsed ELF64 file header (the fields SIREN cares about).
type Header struct {
	Class      byte
	Data       byte
	OSABI      byte
	Type       uint16
	Machine    uint16
	Version    uint32
	Entry      uint64
	Flags      uint32
	SectionNum int
}

// Section is one section with its resolved name and raw contents.
type Section struct {
	Name    string
	Type    uint32
	Flags   uint64
	Addr    uint64
	Offset  uint64
	Size    uint64
	Link    uint32
	Info    uint32
	Align   uint64
	EntSize uint64
	Data    []byte // nil for SHT_NOBITS
}

// Symbol is one symbol-table entry.
type Symbol struct {
	Name    string
	Binding byte   // STBLocal, STBGlobal, STBWeak
	Type    byte   // STTNotype, STTObject, STTFunc
	Section uint16 // section index or SHNUndef/SHNAbs
	Value   uint64
	Size    uint64
}

// Global reports whether the symbol has external (non-static) linkage —
// the symbols SIREN feeds into the SYMBOLS_H fuzzy hash.
func (s Symbol) Global() bool { return s.Binding == STBGlobal || s.Binding == STBWeak }

// DynEntry is one .dynamic table entry.
type DynEntry struct {
	Tag uint64
	Val uint64
}
