package elfx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// ErrNotELF is returned by Parse for inputs that do not start with the ELF
// magic or are not little-endian ELF64.
var ErrNotELF = errors.New("elfx: not a little-endian ELF64 image")

// File is a parsed ELF64 image.
type File struct {
	Header   Header
	Sections []Section
	raw      []byte
}

// Raw returns the underlying image bytes (the input to Parse).
func (f *File) Raw() []byte { return f.raw }

// Parse reads a little-endian ELF64 image from data. The returned File
// aliases data; callers must not mutate it afterwards.
func Parse(data []byte) (*File, error) {
	if len(data) < HeaderSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the ELF header", ErrNotELF, len(data))
	}
	if data[EIMag0] != ELFMag0 || data[EIMag1] != ELFMag1 || data[EIMag2] != ELFMag2 || data[EIMag3] != ELFMag3 {
		return nil, fmt.Errorf("%w: bad magic", ErrNotELF)
	}
	if data[EIClass] != ELFClass64 {
		return nil, fmt.Errorf("%w: class %d", ErrNotELF, data[EIClass])
	}
	if data[EIData] != ELFData2LSB {
		return nil, fmt.Errorf("%w: data encoding %d", ErrNotELF, data[EIData])
	}
	le := binary.LittleEndian
	f := &File{raw: data}
	f.Header = Header{
		Class:   data[EIClass],
		Data:    data[EIData],
		OSABI:   data[EIOSABI],
		Type:    le.Uint16(data[16:18]),
		Machine: le.Uint16(data[18:20]),
		Version: le.Uint32(data[20:24]),
		Entry:   le.Uint64(data[24:32]),
		Flags:   le.Uint32(data[48:52]),
	}
	shoff := le.Uint64(data[40:48])
	shentsize := le.Uint16(data[58:60])
	shnum := int(le.Uint16(data[60:62]))
	shstrndx := int(le.Uint16(data[62:64]))
	f.Header.SectionNum = shnum
	if shnum == 0 {
		return f, nil
	}
	if shentsize != SectionHeaderSize {
		return nil, fmt.Errorf("elfx: unsupported section header size %d", shentsize)
	}
	end := shoff + uint64(shnum)*SectionHeaderSize
	if shoff == 0 || end > uint64(len(data)) || end < shoff {
		return nil, fmt.Errorf("elfx: section header table out of bounds (shoff=%d shnum=%d len=%d)", shoff, shnum, len(data))
	}

	type rawSec struct {
		nameOff uint32
		Section
	}
	raws := make([]rawSec, shnum)
	for i := 0; i < shnum; i++ {
		base := shoff + uint64(i)*SectionHeaderSize
		sh := data[base : base+SectionHeaderSize]
		rs := rawSec{
			nameOff: le.Uint32(sh[0:4]),
			Section: Section{
				Type:    le.Uint32(sh[4:8]),
				Flags:   le.Uint64(sh[8:16]),
				Addr:    le.Uint64(sh[16:24]),
				Offset:  le.Uint64(sh[24:32]),
				Size:    le.Uint64(sh[32:40]),
				Link:    le.Uint32(sh[40:44]),
				Info:    le.Uint32(sh[44:48]),
				Align:   le.Uint64(sh[48:56]),
				EntSize: le.Uint64(sh[56:64]),
			},
		}
		if rs.Type != SHTNull && rs.Type != SHTNobits && rs.Size > 0 {
			lo, hi := rs.Offset, rs.Offset+rs.Size
			if hi > uint64(len(data)) || hi < lo {
				return nil, fmt.Errorf("elfx: section %d data out of bounds [%d,%d)", i, lo, hi)
			}
			rs.Data = data[lo:hi]
		}
		raws[i] = rs
	}

	var shstr []byte
	if shstrndx > 0 && shstrndx < shnum && raws[shstrndx].Type == SHTStrtab {
		shstr = raws[shstrndx].Data
	}
	f.Sections = make([]Section, shnum)
	for i := range raws {
		raws[i].Section.Name = strtabString(shstr, raws[i].nameOff)
		f.Sections[i] = raws[i].Section
	}
	return f, nil
}

// IsELF reports whether data begins with the ELF magic (any class).
func IsELF(data []byte) bool {
	return len(data) >= 4 &&
		data[0] == ELFMag0 && data[1] == ELFMag1 && data[2] == ELFMag2 && data[3] == ELFMag3
}

// Section returns the first section with the given name, or nil.
func (f *File) Section(name string) *Section {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return &f.Sections[i]
		}
	}
	return nil
}

// SectionByType returns the first section of the given type, or nil.
func (f *File) SectionByType(typ uint32) *Section {
	for i := range f.Sections {
		if f.Sections[i].Type == typ {
			return &f.Sections[i]
		}
	}
	return nil
}

// Comment returns the NUL-separated compiler identification strings from the
// .comment section — the field SIREN reports as "Compilers". Empty records
// are dropped; order is preserved; exact duplicates are removed (linkers
// merge SHF_MERGE|SHF_STRINGS records the same way).
func (f *File) Comment() []string {
	sec := f.Section(".comment")
	if sec == nil || len(sec.Data) == 0 {
		return nil
	}
	var out []string
	seen := make(map[string]bool)
	for _, part := range strings.Split(string(sec.Data), "\x00") {
		if part == "" || seen[part] {
			continue
		}
		seen[part] = true
		out = append(out, part)
	}
	return out
}

// Needed returns the DT_NEEDED shared-library names from the .dynamic
// section, in table order. A missing or unlinked .dynamic yields nil.
func (f *File) Needed() []string {
	var out []string
	for _, e := range f.Dynamic() {
		if e.Tag == DTNeeded {
			out = append(out, f.dynString(e.Val))
		}
	}
	return out
}

// Soname returns the DT_SONAME value, or "".
func (f *File) Soname() string {
	for _, e := range f.Dynamic() {
		if e.Tag == DTSoname {
			return f.dynString(e.Val)
		}
	}
	return ""
}

// Dynamic returns the entries of the .dynamic section up to DT_NULL.
func (f *File) Dynamic() []DynEntry {
	sec := f.SectionByType(SHTDynamic)
	if sec == nil {
		return nil
	}
	le := binary.LittleEndian
	var out []DynEntry
	for off := 0; off+DynEntrySize <= len(sec.Data); off += DynEntrySize {
		e := DynEntry{Tag: le.Uint64(sec.Data[off : off+8]), Val: le.Uint64(sec.Data[off+8 : off+16])}
		if e.Tag == DTNull {
			break
		}
		out = append(out, e)
	}
	return out
}

func (f *File) dynString(off uint64) string {
	dyn := f.SectionByType(SHTDynamic)
	if dyn == nil || int(dyn.Link) >= len(f.Sections) {
		return ""
	}
	return strtabString(f.Sections[dyn.Link].Data, uint32(off))
}

// Symbols parses the .symtab section (falling back to .dynsym) and returns
// all non-null entries in table order.
func (f *File) Symbols() ([]Symbol, error) {
	sec := f.SectionByType(SHTSymtab)
	if sec == nil {
		sec = f.SectionByType(SHTDynsym)
	}
	if sec == nil {
		return nil, nil
	}
	if int(sec.Link) >= len(f.Sections) {
		return nil, fmt.Errorf("elfx: symbol table links to invalid string table %d", sec.Link)
	}
	strs := f.Sections[sec.Link].Data
	if len(sec.Data)%SymbolSize != 0 {
		return nil, fmt.Errorf("elfx: symbol table size %d not a multiple of %d", len(sec.Data), SymbolSize)
	}
	le := binary.LittleEndian
	n := len(sec.Data) / SymbolSize
	out := make([]Symbol, 0, n)
	for i := 1; i < n; i++ { // skip the null symbol
		ent := sec.Data[i*SymbolSize : (i+1)*SymbolSize]
		info := ent[4]
		out = append(out, Symbol{
			Name:    strtabString(strs, le.Uint32(ent[0:4])),
			Binding: info >> 4,
			Type:    info & 0xF,
			Section: le.Uint16(ent[6:8]),
			Value:   le.Uint64(ent[8:16]),
			Size:    le.Uint64(ent[16:24]),
		})
	}
	return out, nil
}

// GlobalSymbolNames returns the names of all global (externally visible)
// symbols in table order — the input to SIREN's SYMBOLS_H fuzzy hash,
// equivalent to nm's external symbols.
func (f *File) GlobalSymbolNames() ([]string, error) {
	syms, err := f.Symbols()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, s := range syms {
		if s.Global() && s.Name != "" {
			out = append(out, s.Name)
		}
	}
	return out, nil
}

// SymbolDump renders the global symbol names one per line for fuzzy hashing.
func (f *File) SymbolDump() ([]byte, error) {
	names, err := f.GlobalSymbolNames()
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	for _, n := range names {
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return []byte(sb.String()), nil
}

func strtabString(tab []byte, off uint32) string {
	if tab == nil || uint64(off) >= uint64(len(tab)) {
		return ""
	}
	end := off
	for end < uint32(len(tab)) && tab[end] != 0 {
		end++
	}
	return string(tab[off:end])
}
