package elfx

import (
	"math/rand"
	"testing"
)

// FuzzParse: Parse must never panic or over-read on arbitrary input, and
// any file it accepts must support the full extraction surface without
// errors or panics.
func FuzzParse(f *testing.F) {
	b := NewBuilder(ETDyn, EMX8664)
	b.SetComment("GCC: (SUSE Linux) 13.3.0")
	b.AddNeeded("libm.so.6")
	b.AddGlobalFunc("fn", 0x401000, 8)
	img, err := b.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add([]byte{0x7F, 'E', 'L', 'F'})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Parse(data)
		if err != nil {
			return
		}
		file.Comment()
		file.Needed()
		file.Soname()
		file.Dynamic()
		if _, err := file.Symbols(); err == nil {
			if _, err := file.GlobalSymbolNames(); err != nil {
				t.Fatalf("GlobalSymbolNames after successful Symbols: %v", err)
			}
		}
	})
}

// TestParseSurvivesBitFlips complements the fuzz target under plain
// `go test`: corrupt valid images and require graceful handling.
func TestParseSurvivesBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	img := buildSample(t)
	for i := 0; i < 3000; i++ {
		mutated := append([]byte(nil), img...)
		for n := 1 + rng.Intn(8); n > 0; n-- {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		file, err := Parse(mutated)
		if err != nil {
			continue
		}
		// Accepted images must not panic in any accessor.
		file.Comment()
		file.Needed()
		file.Soname()
		file.Dynamic()
		file.Symbols()
	}
}
