package elfx

import (
	"bytes"
	"debug/elf"
	"math/rand"
	"reflect"
	"testing"
)

func buildSample(t *testing.T) []byte {
	t.Helper()
	b := NewBuilder(ETDyn, EMX8664)
	b.SetEntry(0x401000)
	b.SetText([]byte{0x55, 0x48, 0x89, 0xE5, 0xC3})
	b.SetRodata([]byte("icon atmospheric solver v2.6.4\x00NetCDF output enabled\x00"))
	b.SetComment("GCC: (SUSE Linux) 13.3.0", "clang version 17.0.1 (Cray Inc.)")
	b.AddNeeded("libm.so.6")
	b.AddNeeded("libnetcdf.so.19")
	b.AddNeeded("libmpi_cray.so.12")
	b.SetSoname("icon.so")
	b.SetRunpath("/opt/cray/pe/lib64")
	b.AddGlobalFunc("icon_run_timestep", 0x401000, 128)
	b.AddGlobalObject("icon_grid_config", 0x402000, 64)
	b.AddLocalFunc("internal_helper", 0x401100, 32)
	b.AddSymbol(Symbol{Name: "weak_hook", Binding: STBWeak, Type: STTFunc, Section: 1, Value: 0x401200, Size: 8})
	img, err := b.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	return img
}

func TestRoundTripHeader(t *testing.T) {
	img := buildSample(t)
	f, err := Parse(img)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if f.Header.Type != ETDyn || f.Header.Machine != EMX8664 {
		t.Errorf("header = %+v", f.Header)
	}
	if f.Header.Entry != 0x401000 {
		t.Errorf("entry = %#x", f.Header.Entry)
	}
}

func TestRoundTripComment(t *testing.T) {
	f, err := Parse(buildSample(t))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"GCC: (SUSE Linux) 13.3.0", "clang version 17.0.1 (Cray Inc.)"}
	if got := f.Comment(); !reflect.DeepEqual(got, want) {
		t.Errorf("Comment = %q, want %q", got, want)
	}
}

func TestCommentDeduplicates(t *testing.T) {
	b := NewBuilder(ETExec, EMX8664)
	b.SetComment("GCC: 13.3.0", "GCC: 13.3.0", "rustc version 1.77.0")
	img, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"GCC: 13.3.0", "rustc version 1.77.0"}
	if got := f.Comment(); !reflect.DeepEqual(got, want) {
		t.Errorf("Comment = %q, want %q", got, want)
	}
}

func TestRoundTripNeeded(t *testing.T) {
	f, err := Parse(buildSample(t))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"libm.so.6", "libnetcdf.so.19", "libmpi_cray.so.12"}
	if got := f.Needed(); !reflect.DeepEqual(got, want) {
		t.Errorf("Needed = %q, want %q", got, want)
	}
	if got := f.Soname(); got != "icon.so" {
		t.Errorf("Soname = %q", got)
	}
}

func TestRoundTripSymbols(t *testing.T) {
	f, err := Parse(buildSample(t))
	if err != nil {
		t.Fatal(err)
	}
	syms, err := f.Symbols()
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) != 4 {
		t.Fatalf("got %d symbols: %+v", len(syms), syms)
	}
	// Locals must come first (spec ordering enforced by the builder).
	if syms[0].Name != "internal_helper" || syms[0].Binding != STBLocal {
		t.Errorf("first symbol = %+v, want local internal_helper", syms[0])
	}
	globals, err := f.GlobalSymbolNames()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"icon_run_timestep", "icon_grid_config", "weak_hook"}
	if !reflect.DeepEqual(globals, want) {
		t.Errorf("globals = %q, want %q", globals, want)
	}
	dump, err := f.SymbolDump()
	if err != nil {
		t.Fatal(err)
	}
	if string(dump) != "icon_run_timestep\nicon_grid_config\nweak_hook\n" {
		t.Errorf("SymbolDump = %q", dump)
	}
}

// TestCrossCheckDebugELF verifies that images we build are accepted by the
// standard library's ELF parser and agree on every field SIREN extracts.
func TestCrossCheckDebugELF(t *testing.T) {
	img := buildSample(t)
	sf, err := elf.NewFile(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("debug/elf rejects builder output: %v", err)
	}
	defer sf.Close()

	if sf.Type != elf.ET_DYN || sf.Machine != elf.EM_X86_64 {
		t.Errorf("debug/elf header: type=%v machine=%v", sf.Type, sf.Machine)
	}

	libs, err := sf.DynString(elf.DT_NEEDED)
	if err != nil {
		t.Fatalf("DynString: %v", err)
	}
	want := []string{"libm.so.6", "libnetcdf.so.19", "libmpi_cray.so.12"}
	if !reflect.DeepEqual(libs, want) {
		t.Errorf("debug/elf DT_NEEDED = %q, want %q", libs, want)
	}

	syms, err := sf.Symbols()
	if err != nil {
		t.Fatalf("debug/elf Symbols: %v", err)
	}
	if len(syms) != 4 {
		t.Errorf("debug/elf sees %d symbols, want 4", len(syms))
	}

	comment := sf.Section(".comment")
	if comment == nil {
		t.Fatal("debug/elf cannot find .comment")
	}
	data, err := comment.Data()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("GCC: (SUSE Linux) 13.3.0")) {
		t.Errorf(".comment data = %q", data)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		bytes.Repeat([]byte{0}, 128), // no magic
		append([]byte{0x7F, 'E', 'L', 'F', 1}, make([]byte, 128)...), // 32-bit class
	}
	for i, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("case %d: Parse accepted garbage", i)
		}
	}
	if IsELF([]byte("not elf")) {
		t.Error("IsELF misidentified")
	}
	if !IsELF(buildSample(t)) {
		t.Error("IsELF rejected a valid image")
	}
}

func TestParseRejectsTruncatedSections(t *testing.T) {
	img := buildSample(t)
	// Chop the image just after the header: section table now out of bounds.
	if _, err := Parse(img[:HeaderSize+10]); err == nil {
		t.Error("Parse accepted truncated image")
	}
}

func TestEmptyBuilderStillValid(t *testing.T) {
	b := NewBuilder(ETExec, EMX8664)
	img, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if f.Comment() != nil || f.Needed() != nil {
		t.Error("empty builder should have no comment or needed entries")
	}
	syms, err := f.Symbols()
	if err != nil || syms != nil {
		t.Errorf("expected no symbols, got %v (err %v)", syms, err)
	}
	if _, err := elf.NewFile(bytes.NewReader(img)); err != nil {
		t.Errorf("debug/elf rejects minimal image: %v", err)
	}
}

func TestExtraSections(t *testing.T) {
	b := NewBuilder(ETExec, EMX8664)
	b.AddSection(Section{Name: ".note.siren", Type: SHTNote, Data: []byte("hello"), Align: 4})
	img, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	sec := f.Section(".note.siren")
	if sec == nil || string(sec.Data) != "hello" {
		t.Errorf("extra section lost: %+v", sec)
	}

	// Colliding with a managed name must fail.
	b2 := NewBuilder(ETExec, EMX8664)
	b2.AddSection(Section{Name: ".symtab", Type: SHTProgbits})
	if _, err := b2.Bytes(); err == nil {
		t.Error("managed-name collision not rejected")
	}
}

func TestDeterministicOutput(t *testing.T) {
	img1 := buildSample(t)
	img2 := buildSample(t)
	if !bytes.Equal(img1, img2) {
		t.Error("builder output not deterministic")
	}
}

func TestManyRandomImagesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		b := NewBuilder(ETExec, EMX8664)
		text := make([]byte, 1+rng.Intn(4096))
		rng.Read(text)
		b.SetText(text)
		nlibs := rng.Intn(6)
		var libs []string
		for j := 0; j < nlibs; j++ {
			libs = append(libs, randName(rng)+".so")
			b.AddNeeded(libs[j])
		}
		nsyms := rng.Intn(20)
		var globals []string
		for j := 0; j < nsyms; j++ {
			name := randName(rng)
			if rng.Intn(3) == 0 {
				b.AddLocalFunc(name, uint64(j), 4)
			} else {
				globals = append(globals, name)
				b.AddGlobalFunc(name, uint64(j), 4)
			}
		}
		img, err := b.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		f, err := Parse(img)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if nlibs > 0 && !reflect.DeepEqual(f.Needed(), libs) {
			t.Fatalf("iteration %d: needed %q != %q", i, f.Needed(), libs)
		}
		got, err := f.GlobalSymbolNames()
		if err != nil {
			t.Fatal(err)
		}
		if len(globals) == 0 {
			if len(got) != 0 {
				t.Fatalf("iteration %d: unexpected globals %q", i, got)
			}
		} else if !reflect.DeepEqual(got, globals) {
			t.Fatalf("iteration %d: globals %q != %q", i, got, globals)
		}
		if !bytes.Equal(f.Section(".text").Data, text) {
			t.Fatalf("iteration %d: text corrupted", i)
		}
	}
}

func randName(rng *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz_"
	n := 3 + rng.Intn(12)
	out := make([]byte, n)
	for i := range out {
		out[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(out)
}

func BenchmarkBuild(b *testing.B) {
	text := bytes.Repeat([]byte{0x90}, 64<<10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(ETDyn, EMX8664)
		bld.SetText(text)
		bld.SetComment("GCC: (SUSE Linux) 13.3.0")
		bld.AddNeeded("libm.so.6")
		bld.AddGlobalFunc("main", 0x401000, 64)
		if _, err := bld.Bytes(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	bld := NewBuilder(ETDyn, EMX8664)
	bld.SetText(bytes.Repeat([]byte{0x90}, 256<<10))
	bld.SetComment("GCC: (SUSE Linux) 13.3.0")
	for i := 0; i < 40; i++ {
		bld.AddGlobalFunc(randName(rand.New(rand.NewSource(int64(i)))), uint64(i), 16)
	}
	img, err := bld.Bytes()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := Parse(img)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.GlobalSymbolNames(); err != nil {
			b.Fatal(err)
		}
	}
}
