package elfx

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Builder assembles an ELF64 image section by section. The zero value is not
// usable; call NewBuilder. Typical use by the simulation substrate:
//
//	b := elfx.NewBuilder(elfx.ETDyn, elfx.EMX8664)
//	b.SetText(code)
//	b.SetComment("GCC: (SUSE Linux) 13.3.0")
//	b.AddNeeded("libm.so.6")
//	b.AddGlobalFunc("lmp_run_dynamics", 0x401000, 512)
//	img, err := b.Bytes()
type Builder struct {
	typ     uint16
	machine uint16
	entry   uint64
	osabi   byte

	text    []byte
	rodata  []byte
	comment []string
	needed  []string
	soname  string
	runpath string
	symbols []Symbol
	extra   []Section // additional caller-provided sections
}

// NewBuilder returns a Builder for the given object type (ETExec or ETDyn)
// and machine (normally EMX8664).
func NewBuilder(typ, machine uint16) *Builder {
	return &Builder{typ: typ, machine: machine}
}

// SetEntry sets the entry-point address recorded in the header.
func (b *Builder) SetEntry(addr uint64) { b.entry = addr }

// SetOSABI sets the e_ident OSABI byte (default ELFOSABINone).
func (b *Builder) SetOSABI(abi byte) { b.osabi = abi }

// SetText sets the contents of the .text section.
func (b *Builder) SetText(code []byte) { b.text = code }

// SetRodata sets the contents of the .rodata section; this is where the
// synthetic toolchain places the printable strings that STRINGS_H captures.
func (b *Builder) SetRodata(data []byte) { b.rodata = data }

// SetComment replaces the compiler identification strings stored in the
// .comment section. Real compilers append one NUL-terminated record each;
// linked objects accumulate several.
func (b *Builder) SetComment(tags ...string) { b.comment = append([]string(nil), tags...) }

// AddComment appends one compiler identification string.
func (b *Builder) AddComment(tag string) { b.comment = append(b.comment, tag) }

// AddNeeded appends a DT_NEEDED entry naming a required shared library.
// Duplicates are preserved in order, as real link editors emit them.
func (b *Builder) AddNeeded(lib string) { b.needed = append(b.needed, lib) }

// SetSoname records a DT_SONAME entry (for shared objects).
func (b *Builder) SetSoname(name string) { b.soname = name }

// SetRunpath records a DT_RUNPATH entry.
func (b *Builder) SetRunpath(path string) { b.runpath = path }

// AddSymbol appends a symbol-table entry.
func (b *Builder) AddSymbol(sym Symbol) { b.symbols = append(b.symbols, sym) }

// AddGlobalFunc is shorthand for a global STT_FUNC symbol in section 1.
func (b *Builder) AddGlobalFunc(name string, value, size uint64) {
	b.AddSymbol(Symbol{Name: name, Binding: STBGlobal, Type: STTFunc, Section: 1, Value: value, Size: size})
}

// AddGlobalObject is shorthand for a global STT_OBJECT symbol.
func (b *Builder) AddGlobalObject(name string, value, size uint64) {
	b.AddSymbol(Symbol{Name: name, Binding: STBGlobal, Type: STTObject, Section: 1, Value: value, Size: size})
}

// AddLocalFunc is shorthand for a local (static) STT_FUNC symbol — invisible
// to SIREN's global-symbol extraction, used in tests to verify the filter.
func (b *Builder) AddLocalFunc(name string, value, size uint64) {
	b.AddSymbol(Symbol{Name: name, Binding: STBLocal, Type: STTFunc, Section: 1, Value: value, Size: size})
}

// AddSection appends an arbitrary extra section (name must not collide with
// the sections the builder manages itself).
func (b *Builder) AddSection(s Section) { b.extra = append(b.extra, s) }

// managedNames are section names the builder synthesises; extra sections may
// not reuse them.
var managedNames = map[string]bool{
	"": true, ".text": true, ".rodata": true, ".comment": true,
	".dynstr": true, ".dynamic": true, ".symtab": true, ".strtab": true,
	".shstrtab": true,
}

// Bytes serialises the image. The layout is:
//
//	ELF header | section data (8-aligned) | section header table
//
// No program headers are emitted: SIREN only ever parses the section view,
// and debug/elf accepts a zero program-header table.
func (b *Builder) Bytes() ([]byte, error) {
	for _, s := range b.extra {
		if managedNames[s.Name] {
			return nil, fmt.Errorf("elfx: extra section name %q is managed by the builder", s.Name)
		}
	}

	type sec struct {
		Section
		body []byte
	}
	secs := []sec{{Section: Section{Name: "", Type: SHTNull}}}

	addBody := func(s Section, body []byte) {
		s.Size = uint64(len(body))
		secs = append(secs, sec{Section: s, body: body})
	}

	if b.text == nil {
		// Always emit .text so symbol section indexes have a target.
		b.text = []byte{0xC3} // ret
	}
	addBody(Section{Name: ".text", Type: SHTProgbits, Flags: SHFAlloc | SHFExecinstr, Addr: 0x401000, Align: 16}, b.text)
	if b.rodata != nil {
		addBody(Section{Name: ".rodata", Type: SHTProgbits, Flags: SHFAlloc, Addr: 0x402000, Align: 8}, b.rodata)
	}
	if len(b.comment) > 0 {
		addBody(Section{Name: ".comment", Type: SHTProgbits, Flags: SHFMerge | SHFStrings, Align: 1, EntSize: 1},
			nulJoin(b.comment))
	}

	// Dynamic string table + dynamic section.
	if len(b.needed) > 0 || b.soname != "" || b.runpath != "" {
		dynstr := newStrtab()
		var dyn []DynEntry
		for _, n := range b.needed {
			dyn = append(dyn, DynEntry{Tag: DTNeeded, Val: uint64(dynstr.add(n))})
		}
		if b.soname != "" {
			dyn = append(dyn, DynEntry{Tag: DTSoname, Val: uint64(dynstr.add(b.soname))})
		}
		if b.runpath != "" {
			dyn = append(dyn, DynEntry{Tag: DTRunpath, Val: uint64(dynstr.add(b.runpath))})
		}
		dyn = append(dyn, DynEntry{Tag: DTNull})

		addBody(Section{Name: ".dynstr", Type: SHTStrtab, Flags: SHFAlloc, Align: 1}, dynstr.bytes())
		dynstrIdx := len(secs) - 1
		dynBody := make([]byte, 0, len(dyn)*DynEntrySize)
		for _, e := range dyn {
			dynBody = binary.LittleEndian.AppendUint64(dynBody, e.Tag)
			dynBody = binary.LittleEndian.AppendUint64(dynBody, e.Val)
		}
		addBody(Section{Name: ".dynamic", Type: SHTDynamic, Flags: SHFAlloc | SHFWrite,
			Align: 8, EntSize: DynEntrySize, Link: uint32(dynstrIdx)}, dynBody)
	}

	// Symbol table: null symbol first, then locals, then globals (sh_info =
	// index of first non-local, as the spec requires).
	if len(b.symbols) > 0 {
		ordered := make([]Symbol, len(b.symbols))
		copy(ordered, b.symbols)
		sort.SliceStable(ordered, func(i, j int) bool {
			return ordered[i].Binding == STBLocal && ordered[j].Binding != STBLocal
		})
		firstGlobal := len(ordered) + 1
		for i, s := range ordered {
			if s.Binding != STBLocal {
				firstGlobal = i + 1 // +1 for the null symbol
				break
			}
		}
		strtab := newStrtab()
		symBody := make([]byte, 0, (len(ordered)+1)*SymbolSize)
		symBody = append(symBody, make([]byte, SymbolSize)...) // null symbol
		for _, s := range ordered {
			off := strtab.add(s.Name)
			var ent [SymbolSize]byte
			binary.LittleEndian.PutUint32(ent[0:4], uint32(off))
			ent[4] = s.Binding<<4 | s.Type&0xF
			ent[5] = 0
			binary.LittleEndian.PutUint16(ent[6:8], s.Section)
			binary.LittleEndian.PutUint64(ent[8:16], s.Value)
			binary.LittleEndian.PutUint64(ent[16:24], s.Size)
			symBody = append(symBody, ent[:]...)
		}
		addBody(Section{Name: ".strtab", Type: SHTStrtab, Align: 1}, strtab.bytes())
		strtabIdx := len(secs) - 1
		addBody(Section{Name: ".symtab", Type: SHTSymtab, Align: 8, EntSize: SymbolSize,
			Link: uint32(strtabIdx), Info: uint32(firstGlobal)}, symBody)
	}

	for _, s := range b.extra {
		addBody(s, s.Data)
	}

	// Section-name string table, last.
	shstr := newStrtab()
	for i := range secs {
		shstr.add(secs[i].Name)
	}
	shstr.add(".shstrtab")
	addBody(Section{Name: ".shstrtab", Type: SHTStrtab, Align: 1}, shstr.bytes())
	shstrndx := len(secs) - 1

	// Lay out bodies after the header.
	offset := uint64(HeaderSize)
	for i := range secs {
		if secs[i].Type == SHTNull || secs[i].Type == SHTNobits {
			continue
		}
		align := secs[i].Align
		if align == 0 {
			align = 8
		}
		offset = alignUp(offset, align)
		secs[i].Offset = offset
		offset += uint64(len(secs[i].body))
	}
	shoff := alignUp(offset, 8)

	total := shoff + uint64(len(secs))*SectionHeaderSize
	out := make([]byte, total)

	// ELF header.
	out[EIMag0] = ELFMag0
	out[EIMag1] = ELFMag1
	out[EIMag2] = ELFMag2
	out[EIMag3] = ELFMag3
	out[EIClass] = ELFClass64
	out[EIData] = ELFData2LSB
	out[EIVersion] = EVCurrent
	out[EIOSABI] = b.osabi
	le := binary.LittleEndian
	le.PutUint16(out[16:18], b.typ)
	le.PutUint16(out[18:20], b.machine)
	le.PutUint32(out[20:24], EVCurrent)
	le.PutUint64(out[24:32], b.entry)
	le.PutUint64(out[32:40], 0) // e_phoff
	le.PutUint64(out[40:48], shoff)
	le.PutUint32(out[48:52], 0)          // e_flags
	le.PutUint16(out[52:54], HeaderSize) // e_ehsize
	le.PutUint16(out[54:56], 0)          // e_phentsize
	le.PutUint16(out[56:58], 0)          // e_phnum
	le.PutUint16(out[58:60], SectionHeaderSize)
	le.PutUint16(out[60:62], uint16(len(secs)))
	le.PutUint16(out[62:64], uint16(shstrndx))

	// Section bodies.
	for i := range secs {
		if secs[i].Offset != 0 {
			copy(out[secs[i].Offset:], secs[i].body)
		}
	}

	// Section header table.
	for i := range secs {
		base := shoff + uint64(i)*SectionHeaderSize
		sh := out[base : base+SectionHeaderSize]
		le.PutUint32(sh[0:4], uint32(shstr.offset(secs[i].Name)))
		le.PutUint32(sh[4:8], secs[i].Type)
		le.PutUint64(sh[8:16], secs[i].Flags)
		le.PutUint64(sh[16:24], secs[i].Addr)
		le.PutUint64(sh[24:32], secs[i].Offset)
		le.PutUint64(sh[32:40], uint64(len(secs[i].body)))
		le.PutUint32(sh[40:44], secs[i].Link)
		le.PutUint32(sh[44:48], secs[i].Info)
		align := secs[i].Align
		if align == 0 && secs[i].Type != SHTNull {
			align = 8
		}
		le.PutUint64(sh[48:56], align)
		le.PutUint64(sh[56:64], secs[i].EntSize)
	}

	return out, nil
}

// strtab builds a string table with offset reuse for repeated strings.
type strtab struct {
	buf     []byte
	offsets map[string]int
}

func newStrtab() *strtab {
	return &strtab{buf: []byte{0}, offsets: map[string]int{"": 0}}
}

func (st *strtab) add(s string) int {
	if off, ok := st.offsets[s]; ok {
		return off
	}
	off := len(st.buf)
	st.buf = append(st.buf, s...)
	st.buf = append(st.buf, 0)
	st.offsets[s] = off
	return off
}

func (st *strtab) offset(s string) int {
	if off, ok := st.offsets[s]; ok {
		return off
	}
	return 0
}

func (st *strtab) bytes() []byte { return st.buf }

func nulJoin(ss []string) []byte {
	var sb strings.Builder
	for _, s := range ss {
		sb.WriteString(s)
		sb.WriteByte(0)
	}
	return []byte(sb.String())
}

func alignUp(v, align uint64) uint64 {
	if align <= 1 {
		return v
	}
	return (v + align - 1) &^ (align - 1)
}
