package catalog

import (
	"siren/internal/postprocess"
	"siren/internal/sirendb"
)

// StoreSource serves a live single-receiver store: every refresh captures a
// fresh consistent cut while ingest keeps running (snapshot capture is
// O(jobs), and the append-only store makes the cut immutable).
func StoreSource(db *sirendb.DB) Source {
	return func() postprocess.SnapshotView { return db.Snapshot() }
}

// SetSource serves a finished campaign behind sirendb.OpenSet — one or many
// member databases of a (multi-)receiver deployment, merged. The set holds
// every member's exclusive lock, so the store is static and the rebasing
// offsets behind the merged watermark never move; refreshes after the first
// are no-ops.
func SetSource(set *sirendb.DBSet) Source {
	return func() postprocess.SnapshotView { return set.Snapshot() }
}
