// BenchmarkCatalogRefresh pins the serving tier's scaling claim: an
// incremental refresh after one new job costs O(new rows + total records),
// while a full rebuild re-reads and re-consolidates every stored message.
// Compare the incremental lines across jobs= sizes (near-flat: only the
// generation-assembly term grows) against the full lines (linear in store
// size). make bench-serve runs the suite; EXPERIMENTS.md §6 records the
// curve.
package catalog_test

import (
	"fmt"
	"testing"

	"siren/internal/catalog"
	"siren/internal/sirendb"
)

func benchStore(b *testing.B, jobs int) *sirendb.DB {
	b.Helper()
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	for j := 0; j < jobs; j++ {
		seedJob(b, db, j, 1733900000+int64(j))
	}
	return db
}

func BenchmarkCatalogRefresh(b *testing.B) {
	for _, jobs := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("incremental/jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			// Each iteration measures exactly one delta refresh — a warm
			// catalog over a store of the stated size that just gained one
			// job. The store is rebuilt outside the timer so the measured
			// store size stays fixed (appending inside a shared store would
			// silently grow it by b.N jobs and measure the wrong curve).
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := benchStore(b, jobs)
				cat := catalog.New(catalog.StoreSource(db), catalog.Options{})
				cat.Refresh()
				seedJob(b, db, jobs, 1734000000)
				b.StartTimer()
				if rs := cat.Refresh(); rs.Reconsolidated != 1 {
					b.Fatalf("refresh reconsolidated %d jobs, want 1", rs.Reconsolidated)
				}
				b.StopTimer()
				db.Close()
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("full/jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			db := benchStore(b, jobs)
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A cold catalog pays the whole store every time — the
				// baseline the incremental path is measured against.
				cat := catalog.New(catalog.StoreSource(db), catalog.Options{})
				if rs := cat.Refresh(); rs.Reconsolidated != jobs {
					b.Fatalf("refresh reconsolidated %d jobs, want %d", rs.Reconsolidated, jobs)
				}
			}
		})
	}
}
