// Package catalog maintains the online recognition catalog: consolidated
// process records plus the labelled fingerprint index the identify endpoint
// ranks against, refreshed incrementally from store snapshots while ingest
// is running.
//
// The design exploits two properties the storage tier already guarantees.
// First, a snapshot is a consistent cut of an append-only store, so the rows
// of any job untouched since sequence number W are byte-identical between a
// snapshot at watermark W and every later snapshot. Second, per-shard job
// indexes are sequence-sorted, so "which jobs gained rows after W" is an
// O(shards × jobs) index probe (SnapshotView.JobsChangedSince), never a row
// scan. A refresh therefore re-consolidates only the changed jobs through
// the job-filtered streaming pass, splices the untouched jobs' records
// forward from the previous generation, and publishes the result as a new
// immutable Generation behind an atomic pointer:
//
//	ingest ──▶ store ──▶ Snapshot ──▶ changed jobs ──▶ consolidate ─┐
//	                         │            (delta)                   ▼
//	queries ◀── atomic ptr ◀─┴──────────── carried jobs ──────── Generation
//
// Queries load the pointer once and read an immutable generation for their
// whole lifetime: they never block on a refresh, never see a half-built
// catalog, and two reads within one request are mutually consistent. The
// consistency contract is exactly the snapshot's: a generation reflects
// every row with seq <= Generation.LastSeq and nothing newer.
package catalog

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"siren/internal/analysis"
	"siren/internal/obs"
	"siren/internal/postprocess"
)

// Source captures a point-in-time snapshot view of the store(s) behind the
// catalog. Successive captures must observe a non-shrinking store with
// stable shard/member layout — true for a live *sirendb.DB (append-only
// after open) and for a *sirendb.DBSet (exclusively locked, so fully
// static). See StoreSource and SetSource in the sirendb bindings below.
type Source func() postprocess.SnapshotView

// Options tune the catalog.
type Options struct {
	// Workers bounds the streaming-consolidation workers per refresh pass
	// (0 = one per shard cursor, the shard-mirrored default).
	Workers int
	// Metrics, when non-nil, registers the catalog's instruments there:
	// Refresh wall-time histogram and counters for jobs spliced forward vs
	// re-consolidated (see internal/obs). Nil leaves Refresh uninstrumented.
	Metrics *obs.Registry
}

// Generation is one immutable published state of the catalog. All fields
// are read-only after publication; a query holding a *Generation may use it
// for arbitrarily long after newer generations supersede it.
type Generation struct {
	// Gen is the generation counter, 1 for the first refresh. The boot
	// generation (before any refresh) is 0 and empty.
	Gen uint64
	// LastSeq is the store watermark: the generation reflects every stored
	// row with seq <= LastSeq and nothing newer.
	LastSeq uint64
	// Dataset wraps the consolidated records — every offline analysis
	// (tables, clusters, report) runs unchanged against it.
	Dataset *analysis.Dataset
	// Stats is the consolidation summary a fresh full pass over the same
	// rows would report (carried jobs included).
	Stats postprocess.Stats
	// Index is the labelled fingerprint index the identify endpoint
	// queries, deduplicated by FILE_H.
	Index *analysis.FingerprintIndex

	jobs map[string]jobEntry // per-job state the next incremental pass splices from
}

// jobEntry is one job's consolidated contribution to a generation.
type jobEntry struct {
	records  []*postprocess.ProcessRecord
	messages int // stored wire messages consolidated into the job
	logical  int // reassembled logical records
}

// JobInfo summarises one job of a generation.
type JobInfo struct {
	JobID     string
	Processes int
	Messages  int
}

// Jobs lists the generation's jobs sorted by JobID.
func (g *Generation) Jobs() []JobInfo {
	out := make([]JobInfo, 0, len(g.jobs))
	for id, e := range g.jobs {
		out = append(out, JobInfo{JobID: id, Processes: len(e.records), Messages: e.messages})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// RefreshStats describe one refresh pass.
type RefreshStats struct {
	Gen            uint64        // generation published by this pass
	LastSeq        uint64        // watermark of the published generation
	NewRows        uint64        // sequence numbers gained since the previous generation
	Jobs           int           // total jobs in the published generation
	Reconsolidated int           // jobs re-consolidated by this pass
	Carried        int           // jobs spliced forward unchanged
	NoOp           bool          // store unchanged: previous generation kept
	Elapsed        time.Duration // wall time of the pass
}

// Catalog owns the generation pointer and the refresh loop state.
type Catalog struct {
	source Source
	opts   Options

	cur       atomic.Pointer[Generation]
	last      atomic.Pointer[RefreshStats]
	refreshes atomic.Uint64

	refreshMu sync.Mutex // serialises refreshes; never held by queries

	// obs instruments (nil when Options.Metrics is nil; all nil-safe).
	refreshNS      *obs.Histogram
	carriedTotal   *obs.Counter
	reconsolidated *obs.Counter
	refreshesCt    *obs.Counter
}

// New builds a catalog over source. The catalog starts at an empty boot
// generation (Gen 0) so queries are valid immediately; call Refresh to
// publish the first real generation.
func New(source Source, opts Options) *Catalog {
	c := &Catalog{source: source, opts: opts}
	if reg := opts.Metrics; reg != nil {
		c.refreshNS = reg.Histogram("siren_catalog_refresh_ns", "catalog Refresh wall time per pass (no-ops included)")
		c.carriedTotal = reg.Counter("siren_catalog_jobs_carried_total", "jobs spliced forward unchanged across refreshes")
		c.reconsolidated = reg.Counter("siren_catalog_jobs_reconsolidated_total", "jobs re-consolidated by refreshes")
		c.refreshesCt = reg.Counter("siren_catalog_refreshes_total", "refresh passes run (no-ops included)")
	}
	boot := &Generation{
		Dataset: analysis.NewDataset(nil),
		Index:   analysis.NewFingerprintIndex(nil),
		jobs:    map[string]jobEntry{},
	}
	c.cur.Store(boot)
	return c
}

// Generation returns the current published generation. Never nil; the
// returned value is immutable and safe to use across a concurrent Refresh.
func (c *Catalog) Generation() *Generation { return c.cur.Load() }

// Refreshes reports how many refresh passes have run (no-ops included).
func (c *Catalog) Refreshes() uint64 { return c.refreshes.Load() }

// LastRefresh returns the stats of the most recent refresh pass, or false
// before the first.
func (c *Catalog) LastRefresh() (RefreshStats, bool) {
	if rs := c.last.Load(); rs != nil {
		return *rs, true
	}
	return RefreshStats{}, false
}

// Refresh captures a fresh snapshot and publishes a generation reflecting
// it. Cost is proportional to the rows gained since the previous generation
// — jobs without new rows are spliced forward, not re-read. Concurrent
// Refresh calls serialise; queries are never blocked. Returns the stats of
// the pass (NoOp set when the store had no new rows and the previous
// generation was kept).
func (c *Catalog) Refresh() RefreshStats {
	c.refreshMu.Lock()
	defer c.refreshMu.Unlock()
	start := time.Now()

	prev := c.cur.Load()
	snap := c.source()
	rs := RefreshStats{Gen: prev.Gen, LastSeq: prev.LastSeq}
	if snap.LastSeq() == prev.LastSeq && prev.Gen > 0 {
		// Nothing new: keep the published generation. Gen does not advance,
		// so pollers can cheaply detect "no change".
		rs.NoOp = true
		rs.Jobs = len(prev.jobs)
		rs.Carried = len(prev.jobs)
		rs.Elapsed = time.Since(start)
		c.finish(rs)
		return rs
	}

	// The watermark is only meaningful against a store that grew in place.
	// A snapshot that moved backwards (a source swapped under the catalog)
	// falls back to a full rebuild from watermark zero.
	since := prev.LastSeq
	if snap.LastSeq() < since {
		since = 0
	}

	changed := snap.JobsChangedSince(since)
	changedSet := make(map[string]struct{}, len(changed))
	for _, job := range changed {
		changedSet[job] = struct{}{}
	}

	// Carry every untouched job forward: its rows are byte-identical in the
	// new snapshot, so its consolidated records (immutable, shared across
	// generations) are too.
	jobs := make(map[string]jobEntry, len(prev.jobs)+len(changed))
	if since > 0 {
		for id, e := range prev.jobs {
			if _, ok := changedSet[id]; !ok {
				jobs[id] = e
			}
		}
	}
	rs.Carried = len(jobs)
	rs.Reconsolidated = len(changed)

	// Re-consolidate only the changed jobs, streaming and shard-parallel.
	postprocess.ConsolidateStream(snap, postprocess.StreamOptions{
		Workers: c.opts.Workers,
		JobFilter: func(job string) bool {
			_, ok := changedSet[job]
			return ok
		},
	}, func(j postprocess.JobRecords) bool {
		jobs[j.JobID] = jobEntry{records: j.Records, messages: j.Messages, logical: j.Reassembled}
		return true
	})

	// Assemble the new generation: records in the deterministic whole-store
	// order, stats accumulated over carried and fresh jobs alike.
	var stats postprocess.Stats
	total := 0
	for _, e := range jobs {
		total += len(e.records)
	}
	records := make([]*postprocess.ProcessRecord, 0, total)
	for _, e := range jobs {
		stats.AddJob(e.records, e.messages, e.logical)
		records = append(records, e.records...)
	}
	postprocess.SortRecords(records)

	gen := &Generation{
		Gen:     prev.Gen + 1,
		LastSeq: snap.LastSeq(),
		Dataset: analysis.NewDataset(records),
		Stats:   stats,
		// Derive the fingerprint index from the previous generation's:
		// unchanged fingerprints keep their parsed digests and base-block
		// postings (carried jobs share record pointers, so the carry check
		// is a pointer compare), only new or altered ones are re-indexed
		// (DESIGN.md §9).
		Index: analysis.NewFingerprintIndexFrom(prev.Index, records),
		jobs:  jobs,
	}
	c.cur.Store(gen)

	rs.Gen = gen.Gen
	rs.LastSeq = gen.LastSeq
	rs.NewRows = gen.LastSeq - since
	rs.Jobs = len(jobs)
	rs.Elapsed = time.Since(start)
	c.finish(rs)
	return rs
}

func (c *Catalog) finish(rs RefreshStats) {
	c.refreshes.Add(1)
	c.last.Store(&rs)
	c.refreshNS.Observe(rs.Elapsed)
	c.carriedTotal.Add(int64(rs.Carried))
	c.reconsolidated.Add(int64(rs.Reconsolidated))
	c.refreshesCt.Inc()
}
