// Catalog tests: the incremental refresh must be indistinguishable from a
// full rebuild (same records, same stats, same identify ranking) while
// re-reading only the jobs the watermark says changed, and the generation
// swap must be safe under concurrent queries (run with -race via make
// test-serve).
package catalog_test

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"siren/internal/analysis"
	"siren/internal/catalog"
	"siren/internal/postprocess"
	"siren/internal/report"
	"siren/internal/sirendb"
	"siren/internal/ssdeep"
	"siren/internal/wire"
)

// appContent fabricates varied pseudo-binary text for one app build: a
// per-app base body (CTPH needs non-periodic content) with a handful of
// variant-specific lines spliced in, so builds of one app hash similar and
// different apps hash unrelated.
func appContent(app string, variant int) string {
	h := 0
	for _, c := range app {
		h = h*31 + int(c)
	}
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		if variant > 0 && i == (variant*9)%390 {
			// One contiguous edit block per variant: CTPH digests stay
			// highly similar across builds of one app (edits spread through
			// the file would perturb most chunks and score ~0).
			for e := 0; e < 5; e++ {
				fmt.Fprintf(&sb, "%s build-edit v%d line %d\n", app, variant, e)
			}
		}
		fmt.Fprintf(&sb, "%s log %04d: residual %d.%03d at step %d sym_%06d\n",
			app, i, (h+i)%7, (i*37+h)%1000, i*3, (h+i*1009)%999983)
	}
	return sb.String()
}

// digestCache memoises content → digest: benchmarks rebuild stores with
// identical app builds thousands of times, and hashing dominates setup.
var digestCache sync.Map

func digest(t testing.TB, content string) string {
	t.Helper()
	if v, ok := digestCache.Load(content); ok {
		return v.(string)
	}
	d, err := ssdeep.HashString(content)
	if err != nil {
		t.Fatalf("HashString: %v", err)
	}
	digestCache.Store(content, d)
	return d
}

// procMessages is one user process's full constructor record set: METADATA
// plus the six characteristic digests, all single-chunk.
func procMessages(t testing.TB, job, host string, pid int, tm int64, exe, app string, variant int) []wire.Message {
	mk := func(typ, content string) wire.Message {
		return wire.Message{
			Header: wire.Header{
				JobID: job, StepID: "0", PID: pid, Hash: fmt.Sprintf("%032x", pid),
				Host: host, Time: tm, Layer: wire.LayerSelf, Type: typ, Seq: 0, Total: 1,
			},
			Content: []byte(content),
		}
	}
	return []wire.Message{
		mk(wire.TypeMetadata, fmt.Sprintf("EXE=%s\nCATEGORY=user\nUID=%d\nGID=100", exe, 1000+variant%3)),
		mk(wire.TypeFileH, digest(t, appContent(app, variant))),
		mk(wire.TypeStringsH, digest(t, appContent(app+"/strings", variant))),
		mk(wire.TypeSymbolsH, digest(t, appContent(app+"/symbols", variant))),
		mk(wire.TypeObjectsH, digest(t, appContent(app+"/objects", variant))),
		mk(wire.TypeModulesH, digest(t, appContent(app+"/modules", variant))),
		mk(wire.TypeCompilersH, digest(t, appContent(app+"/compilers", variant))),
	}
}

// jobBatchCache memoises a job's message batches: content is a pure
// function of (jobN, tm), and the benchmarks rebuild identical stores
// thousands of times.
var jobBatchCache sync.Map

// seedJob inserts one job: a labelled app process per host plus, for job 0,
// the UNKNOWN baseline binary.
func seedJob(t testing.TB, db *sirendb.DB, jobN int, tm int64) {
	key := fmt.Sprintf("%d|%d", jobN, tm)
	var batches [][]wire.Message
	if v, ok := jobBatchCache.Load(key); ok {
		batches = v.([][]wire.Message)
	} else {
		apps := []struct{ exe, app string }{
			{"/appl/lammps/bin/lmp_gpu", "lammps"},
			{"/appl/gromacs/bin/gmx", "gromacs"},
			{"/usr/bin/gzip", "gzip"},
		}
		a := apps[jobN%len(apps)]
		job := fmt.Sprintf("job-%d", jobN)
		for h := 0; h < 2; h++ {
			host := fmt.Sprintf("nid%04d", h)
			batches = append(batches, procMessages(t, job, host, 100+jobN*10+h, tm, a.exe, a.app, jobN+1))
		}
		if jobN == 0 {
			// The unknown: a fresh build of lammps under an unlabelled path.
			batches = append(batches, procMessages(t, job, "nid0000", 999, tm, "/users/u1/a.out", "lammps", 39))
		}
		jobBatchCache.Store(key, batches)
	}
	for _, msgs := range batches {
		if err := db.InsertBatch(msgs); err != nil {
			t.Fatal(err)
		}
	}
}

// reportJSON renders a dataset through the shared report shape — the
// strongest cheap equality: every table, figure, and stats field.
func reportJSON(t testing.TB, data *analysis.Dataset, stats postprocess.Stats) string {
	t.Helper()
	b, err := json.Marshal(report.BuildJSON(data, stats))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestIncrementalRefreshMatchesFull(t *testing.T) {
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const initialJobs = 8
	for j := 0; j < initialJobs; j++ {
		seedJob(t, db, j, 1733900000+int64(j))
	}

	cat := catalog.New(catalog.StoreSource(db), catalog.Options{})
	if g := cat.Generation(); g.Gen != 0 || g.Index.Len() != 0 {
		t.Fatalf("boot generation not empty: gen=%d fingerprints=%d", g.Gen, g.Index.Len())
	}
	rs := cat.Refresh()
	if rs.Gen != 1 || rs.Reconsolidated != initialJobs || rs.Carried != 0 || rs.NoOp {
		t.Fatalf("first refresh stats = %+v, want gen 1, %d reconsolidated, 0 carried", rs, initialJobs)
	}

	// Wave 2: one brand-new job, plus new processes appended to job-1.
	seedJob(t, db, initialJobs, 1733900100)
	if err := db.InsertBatch(procMessages(t, "job-1", "nid0007", 7777, 1733900100, "/appl/gromacs/bin/gmx", "gromacs", 17)); err != nil {
		t.Fatal(err)
	}
	rs = cat.Refresh()
	if rs.Gen != 2 || rs.Reconsolidated != 2 || rs.Carried != initialJobs-1 {
		t.Fatalf("incremental refresh stats = %+v, want gen 2, 2 reconsolidated, %d carried", rs, initialJobs-1)
	}
	// The gen-2 fingerprint index must be a splice off gen 1, not a full
	// rebuild: a rebuild lands every fingerprint in the base block, a splice
	// keeps derived entries in the extra block (at this catalog size the
	// boot generation's base is empty, so everything rides extra).
	if s := cat.Generation().Index.Stats(); s.Extra == 0 {
		t.Errorf("gen-2 index stats = %+v, want spliced entries in the extra block", s)
	}

	// The incremental generation must be indistinguishable from a full
	// offline pass over the same snapshot.
	gen := cat.Generation()
	offData, offStats := analysis.ConsolidateDataset(db.Snapshot(), postprocess.StreamOptions{})
	if got, want := reportJSON(t, gen.Dataset, gen.Stats), reportJSON(t, offData, offStats); got != want {
		t.Errorf("incremental generation diverges from full consolidation:\n got %s\nwant %s", got, want)
	}

	// …and from a second catalog built in one shot.
	fresh := catalog.New(catalog.StoreSource(db), catalog.Options{})
	frs := fresh.Refresh()
	if frs.Reconsolidated != initialJobs+1 {
		t.Fatalf("fresh full refresh reconsolidated %d jobs, want %d", frs.Reconsolidated, initialJobs+1)
	}
	fgen := fresh.Generation()
	if gen.Index.Len() != fgen.Index.Len() {
		t.Fatalf("fingerprint count: incremental %d, full %d", gen.Index.Len(), fgen.Index.Len())
	}
	unknown, ok := gen.Dataset.FindUnknown()
	if !ok {
		t.Fatal("no UNKNOWN baseline in catalog dataset")
	}
	q := analysis.RecordDigests(unknown)
	inc := gen.Index.Search(q, 10, ssdeep.BackendWeighted)
	full := fgen.Index.Search(q, 10, ssdeep.BackendWeighted)
	if !reflect.DeepEqual(inc, full) {
		t.Errorf("identify ranking diverges:\n inc  %+v\n full %+v", inc, full)
	}
	if len(inc) == 0 || inc[0].Label != "LAMMPS" {
		t.Errorf("unknown lammps build not identified: %+v", inc)
	}
	// The shared implementation contract: the offline Table 7 search is
	// the same computation.
	if off := offData.SimilaritySearch(unknown, 10, ssdeep.BackendWeighted); !reflect.DeepEqual(inc, off) {
		t.Errorf("online vs offline ranking diverges:\n online  %+v\n offline %+v", inc, off)
	}

	// No new rows: refresh is a no-op and the pointer is untouched.
	rs = cat.Refresh()
	if !rs.NoOp || rs.Gen != 2 {
		t.Fatalf("no-op refresh stats = %+v", rs)
	}
	if cat.Generation() != gen {
		t.Error("no-op refresh replaced the generation pointer")
	}
}

func TestCatalogOverMergedSet(t *testing.T) {
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "m0.wal"), filepath.Join(dir, "m1.wal")}
	for mi, p := range paths {
		db, err := sirendb.OpenOptions(p, sirendb.Options{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			seedJob(t, db, mi*3+j, 1733900000+int64(j))
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}

	set, err := sirendb.OpenSet(paths, sirendb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	cat := catalog.New(catalog.SetSource(set), catalog.Options{})
	rs := cat.Refresh()
	if rs.Gen != 1 || rs.Jobs != 6 {
		t.Fatalf("merged refresh stats = %+v, want gen 1 over 6 jobs", rs)
	}
	gen := cat.Generation()
	offData, offStats := analysis.ConsolidateDataset(set.Snapshot(), postprocess.StreamOptions{})
	if got, want := reportJSON(t, gen.Dataset, gen.Stats), reportJSON(t, offData, offStats); got != want {
		t.Errorf("merged catalog diverges from merged consolidation:\n got %s\nwant %s", got, want)
	}
	// The locked set cannot change: a second refresh is a no-op.
	if rs = cat.Refresh(); !rs.NoOp {
		t.Fatalf("refresh over a static set not a no-op: %+v", rs)
	}
}

// TestConcurrentQueriesDuringRefresh hammers the generation pointer from
// query goroutines while ingest and refreshes run — the atomic-swap
// contract, checked under -race: a loaded generation stays internally
// consistent (dataset, stats, and index all describe the same records) and
// the observed generation number and watermark never move backwards.
func TestConcurrentQueriesDuringRefresh(t *testing.T) {
	db, err := sirendb.OpenOptions("", sirendb.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	seedJob(t, db, 0, 1733900000)

	cat := catalog.New(catalog.StoreSource(db), catalog.Options{})
	cat.Refresh()

	const jobs = 24
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // ingest + refresh loop
		defer wg.Done()
		defer close(done)
		for j := 1; j <= jobs; j++ {
			seedJob(t, db, j, 1733900000+int64(j))
			rs := cat.Refresh()
			if rs.NoOp {
				panic("refresh after insert reported no-op")
			}
		}
	}()

	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen, lastSeq uint64
			q := analysis.Digests{File: digest(t, appContent("lammps", 5))}
			for {
				select {
				case <-done:
					return
				default:
				}
				gen := cat.Generation()
				if gen.Gen < lastGen || gen.LastSeq < lastSeq {
					errs <- fmt.Errorf("generation moved backwards: %d/%d after %d/%d", gen.Gen, gen.LastSeq, lastGen, lastSeq)
					return
				}
				lastGen, lastSeq = gen.Gen, gen.LastSeq
				if got := len(gen.Dataset.Records); got != gen.Stats.Processes {
					errs <- fmt.Errorf("generation %d inconsistent: %d records vs %d processes", gen.Gen, got, gen.Stats.Processes)
					return
				}
				gen.Index.Search(q, 5, ssdeep.BackendWeighted)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	gen := cat.Generation()
	if gen.Stats.Jobs != jobs+1 {
		t.Fatalf("final generation has %d jobs, want %d", gen.Stats.Jobs, jobs+1)
	}
	offData, offStats := analysis.ConsolidateDataset(db.Snapshot(), postprocess.StreamOptions{})
	if got, want := reportJSON(t, gen.Dataset, gen.Stats), reportJSON(t, offData, offStats); got != want {
		t.Errorf("final generation diverges from full consolidation")
	}
}
