package membership

import (
	"sync/atomic"

	"siren/internal/wire"
)

// SendStats is a snapshot of a retrying sender's counters.
type SendStats struct {
	// Sent counts datagrams ultimately delivered (Send returned nil).
	Sent uint64
	// Retries counts individual re-send attempts after a failed send.
	Retries uint64
	// SendErrors counts datagrams lost for good: every attempt failed.
	SendErrors uint64
}

// RetryTransport wraps a wire.Transport with bounded, backed-off retries and
// error accounting. UDP sendto errors (ENOBUFS under burst load,
// ECONNREFUSED picked up on connected loopback sockets) were previously
// dropped silently in the collector's fire-and-forget path; here they are
// retried up to Retries times and — if they still fail — surfaced in
// SendErrors instead of vanishing. Safe for concurrent Send calls; holds no
// locks, so a retry sleep never blocks other senders.
type RetryTransport struct {
	// T is the underlying transport.
	T wire.Transport
	// Retries is the number of re-send attempts after the first failure
	// (0 = fail immediately, counting the error).
	Retries int
	// Backoff paces the retries.
	Backoff Backoff

	sent    atomic.Uint64
	retries atomic.Uint64
	errors  atomic.Uint64
}

// Send delivers b, retrying failed attempts. It returns the last error when
// every attempt failed.
func (r *RetryTransport) Send(b []byte) error {
	err := r.T.Send(b)
	for attempt := 0; err != nil && attempt < r.Retries; attempt++ {
		r.Backoff.Sleep(attempt, nil)
		r.retries.Add(1)
		err = r.T.Send(b)
	}
	if err != nil {
		r.errors.Add(1)
		return err
	}
	r.sent.Add(1)
	return nil
}

// Close closes the underlying transport.
func (r *RetryTransport) Close() error { return r.T.Close() }

// Stats snapshots the counters.
func (r *RetryTransport) Stats() SendStats {
	return SendStats{
		Sent:       r.sent.Load(),
		Retries:    r.retries.Load(),
		SendErrors: r.errors.Load(),
	}
}
