package membership

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestDownHandlerConfirmProbe drives the report-down protocol end to end:
// a report against a member that still answers probes is refused (409), a
// report against one whose health endpoint is gone is honored (200) and
// marks the view, repeats are idempotent, and bad requests get 4xx.
func TestDownHandlerConfirmProbe(t *testing.T) {
	peerHealth := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	tbl, err := NewTable([]Member{
		{ID: "self", UDPAddr: "127.0.0.1:1"},
		{ID: "peer", UDPAddr: "127.0.0.1:2", HealthAddr: addrOf(t, peerHealth)},
		{ID: "mute", UDPAddr: "127.0.0.1:3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(tbl, "self")
	if err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.Handle("/membership", v.StatusHandler())
	mux.Handle("/membership/down", v.DownHandler(500*time.Millisecond))
	srv := httptest.NewServer(mux)
	defer srv.Close()
	self := addrOf(t, srv)

	post := func(q string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/membership/down"+q, "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(""); code != http.StatusBadRequest {
		t.Errorf("missing id: %d, want 400", code)
	}
	if code := post("?id=stranger"); code != http.StatusNotFound {
		t.Errorf("unknown id: %d, want 404", code)
	}
	if code := post("?id=self"); code != http.StatusConflict {
		t.Errorf("report against self: %d, want 409", code)
	}
	// A member with no health address can never be disproven alive.
	if code := post("?id=mute"); code != http.StatusConflict {
		t.Errorf("unprobable member: %d, want 409", code)
	}
	// peer still answers its health endpoint: the confirm-probe refutes the
	// report.
	if code := post("?id=peer"); code != http.StatusConflict {
		t.Errorf("live peer: %d, want 409 (confirm-probe answered)", code)
	}
	if v.Down(1) {
		t.Fatal("refused report still marked the member down")
	}

	// Kill the peer's health endpoint: now the report is confirmed.
	peerHealth.Close()
	if code := post("?id=peer"); code != http.StatusOK {
		t.Errorf("dead peer: %d, want 200", code)
	}
	if !v.Down(1) {
		t.Fatal("honored report did not mark the member down")
	}
	if code := post("?id=peer"); code != http.StatusOK {
		t.Errorf("repeat report: %d, want idempotent 200", code)
	}

	// ReportDown (the client side) against this very handler agrees.
	if err := ReportDown(self, "peer", time.Second); err != nil {
		t.Fatalf("ReportDown(already-down peer): %v", err)
	}
	if err := ReportDown(self, "mute", time.Second); err == nil {
		t.Fatal("ReportDown(unprobable member): want refusal error")
	}

	// GET /membership reflects the state.
	resp, err := http.Get(srv.URL + "/membership")
	if err != nil {
		t.Fatal(err)
	}
	var status []MemberStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(status) != 3 || !status[1].Down || status[0].Down || !status[0].Self {
		t.Fatalf("membership status = %+v", status)
	}
}
