package membership

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"siren/internal/wire"
)

func addrOf(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestProbeLive(t *testing.T) {
	// Liveness != health: a 503 (stalled ingest) still proves the process
	// exists, so it must probe live.
	for _, code := range []int{http.StatusOK, http.StatusServiceUnavailable} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(code)
		}))
		if err := ProbeLive(addrOf(t, srv), time.Second); err != nil {
			t.Errorf("ProbeLive(status %d): %v", code, err)
		}
		srv.Close()
	}
	// A closed server is a transport error: dead.
	srv := httptest.NewServer(http.NotFoundHandler())
	addr := addrOf(t, srv)
	srv.Close()
	if err := ProbeLive(addr, 500*time.Millisecond); err == nil {
		t.Error("ProbeLive against a closed server: want error")
	}
	// Unprobable members are assumed live.
	if err := ProbeLive("", time.Nanosecond); err != nil {
		t.Errorf("ProbeLive(\"\"): %v", err)
	}
}

func TestReportDown(t *testing.T) {
	var gotID atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/membership/down" {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		gotID.Store(r.URL.Query().Get("id"))
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	if err := ReportDown(addrOf(t, srv), "r2", time.Second); err != nil {
		t.Fatal(err)
	}
	if id, _ := gotID.Load().(string); id != "r2" {
		t.Fatalf("reported id = %q, want r2", id)
	}

	refuse := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "still alive", http.StatusConflict)
	}))
	defer refuse.Close()
	if err := ReportDown(addrOf(t, refuse), "r2", time.Second); err == nil {
		t.Fatal("refused report: want error")
	}
	if err := ReportDown("", "r2", time.Nanosecond); err != nil {
		t.Fatalf("ReportDown to unprobable member: %v", err)
	}
}

func TestProberMarksDownAfterThreshold(t *testing.T) {
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer alive.Close()
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	tbl, err := NewTable([]Member{
		{ID: "self", UDPAddr: "127.0.0.1:1"},
		{ID: "peer", UDPAddr: "127.0.0.1:2", HealthAddr: addrOf(t, alive)},
		{ID: "victim", UDPAddr: "127.0.0.1:3", HealthAddr: addrOf(t, dying)},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(tbl, "self")
	if err != nil {
		t.Fatal(err)
	}

	downCh := make(chan int, 4)
	p := &Prober{
		View:          v,
		Interval:      10 * time.Millisecond,
		Timeout:       250 * time.Millisecond,
		FailThreshold: 2,
		OnDown:        func(idx int, m Member) { downCh <- idx },
	}
	p.Start()
	defer p.Stop()

	dying.Close()
	select {
	case idx := <-downCh:
		if idx != 2 {
			t.Fatalf("OnDown idx = %d, want 2 (victim)", idx)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("prober never marked the dead member down")
	}
	if !v.Down(2) {
		t.Fatal("victim not marked down in the view")
	}
	if v.Down(1) {
		t.Fatal("live peer was marked down")
	}

	// OnDown fires exactly once per member.
	time.Sleep(50 * time.Millisecond)
	select {
	case idx := <-downCh:
		t.Fatalf("second OnDown(%d) for an already-down member", idx)
	default:
	}
}

// flakyTransport fails the first failN sends, then succeeds.
type flakyTransport struct {
	failN int32
	sent  atomic.Uint64
}

func (f *flakyTransport) Send(b []byte) error {
	if atomic.AddInt32(&f.failN, -1) >= 0 {
		return errors.New("sendto: no buffer space available")
	}
	f.sent.Add(1)
	return nil
}

func (f *flakyTransport) Close() error { return nil }

var _ wire.Transport = (*flakyTransport)(nil)
var _ wire.Transport = (*RetryTransport)(nil)

func TestRetryTransportRecovers(t *testing.T) {
	f := &flakyTransport{failN: 2}
	rt := &RetryTransport{T: f, Retries: 3}
	if err := rt.Send([]byte("x")); err != nil {
		t.Fatalf("Send with 3 retries over 2 failures: %v", err)
	}
	s := rt.Stats()
	if s.Sent != 1 || s.Retries != 2 || s.SendErrors != 0 {
		t.Fatalf("stats = %+v, want Sent=1 Retries=2 SendErrors=0", s)
	}
	if f.sent.Load() != 1 {
		t.Fatalf("underlying transport delivered %d, want 1", f.sent.Load())
	}
}

func TestRetryTransportExhausted(t *testing.T) {
	f := &flakyTransport{failN: 100}
	rt := &RetryTransport{T: f, Retries: 2}
	if err := rt.Send([]byte("x")); err == nil {
		t.Fatal("Send: want error after exhausting retries")
	}
	s := rt.Stats()
	if s.Sent != 0 || s.Retries != 2 || s.SendErrors != 1 {
		t.Fatalf("stats = %+v, want Sent=0 Retries=2 SendErrors=1", s)
	}
	// Retries=0 fails immediately but still counts the loss.
	rt0 := &RetryTransport{T: &flakyTransport{failN: 100}}
	if err := rt0.Send([]byte("x")); err == nil {
		t.Fatal("Retries=0 Send: want error")
	}
	if s := rt0.Stats(); s.SendErrors != 1 || s.Retries != 0 {
		t.Fatalf("Retries=0 stats = %+v", s)
	}
}
