package membership

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"siren/internal/obs"
)

// TestProberInstrumented checks a probing round records RTT for successful
// probes and counts transport failures, via the round() path directly so the
// test doesn't race the ticker.
func TestProberInstrumented(t *testing.T) {
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer alive.Close()

	tbl, err := NewTable([]Member{
		{ID: "self", UDPAddr: "127.0.0.1:1"},
		{ID: "peer", UDPAddr: "127.0.0.1:2", HealthAddr: addrOf(t, alive)},
		{ID: "ghost", UDPAddr: "127.0.0.1:3", HealthAddr: "127.0.0.1:1"}, // nothing listens
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewView(tbl, "self")
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry("test")
	p := &Prober{View: v, Timeout: 250 * time.Millisecond, FailThreshold: 100}
	p.InstrumentWith(reg)
	p.fails = make([]int, tbl.Len())
	p.round()
	p.round()

	if rtt := reg.Histogram("siren_probe_rtt_ns", "").Snapshot(); rtt.Count != 2 {
		t.Fatalf("probe RTT count = %d, want 2 (one live peer, two rounds)", rtt.Count)
	}
	if fails := reg.Counter("siren_probe_failures_total", "").Value(); fails != 2 {
		t.Fatalf("probe failures = %d, want 2 (ghost per round)", fails)
	}

	// Uninstrumented prober: same rounds, no panic.
	p2 := &Prober{View: v, Timeout: 250 * time.Millisecond, FailThreshold: 100}
	p2.fails = make([]int, tbl.Len())
	p2.round()
}

// TestRetryTransportBridge pins the exposition names of the sender bridge.
func TestRetryTransportBridge(t *testing.T) {
	reg := obs.NewRegistry("test")
	rt := &RetryTransport{T: &flakyTransport{failN: 2}, Retries: 3}
	rt.InstrumentWith(reg)
	rt.InstrumentWith(nil) // no-op
	if err := rt.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"siren_send_delivered_total 1",
		"siren_send_retries_total 2",
		"siren_send_errors_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}
