package membership

import (
	"encoding/json"
	"net/http"
	"time"
)

// MemberStatus is one roster row of the GET /membership response.
type MemberStatus struct {
	ID         string `json:"id"`
	UDPAddr    string `json:"udp_addr"`
	HealthAddr string `json:"health_addr,omitempty"`
	Down       bool   `json:"down"`
	Self       bool   `json:"self,omitempty"`
}

// Status snapshots the view as the GET /membership response body.
func (v *View) Status() []MemberStatus {
	out := make([]MemberStatus, v.t.Len())
	for i := range out {
		m := v.t.Member(i)
		out[i] = MemberStatus{
			ID:         m.ID,
			UDPAddr:    m.UDPAddr,
			HealthAddr: m.HealthAddr,
			Down:       v.Down(i),
			Self:       i == v.self,
		}
	}
	return out
}

// StatusHandler serves GET /membership: the roster with each member's
// live/down state under this process's view, as JSON.
func (v *View) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v.Status())
	})
}

// DownHandler serves POST /membership/down?id=<member>: a sender's report
// that it found the named member dead (see ReportDown). The report is not
// taken on faith — a confused or partitioned sender must not be able to
// evict a healthy member — so the handler confirm-probes the named member
// itself and only marks it down when its own probe also fails:
//
//	404  unknown member ID
//	409  refused — the member answered this process's confirm-probe (or is
//	     this process itself, or has no health address to disprove life)
//	200  marked down (idempotent: already-down members answer 200 without
//	     re-probing)
//
// Marking down before any failover traffic arrives is what closes the
// admission race: the sender reports to every survivor first, then replays
// the dead member's journal, so the new owners already accept the
// reassigned keys (counted AcceptedFailover) when the first replayed
// datagram lands.
func (v *View) DownHandler(probeTimeout time.Duration) http.Handler {
	if probeTimeout <= 0 {
		probeTimeout = 500 * time.Millisecond
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id parameter", http.StatusBadRequest)
			return
		}
		i, ok := v.t.Index(id)
		if !ok {
			http.Error(w, "unknown member "+id, http.StatusNotFound)
			return
		}
		if i == v.self {
			http.Error(w, "refused: "+id+" is this process", http.StatusConflict)
			return
		}
		if v.Down(i) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte("already down\n"))
			return
		}
		m := v.t.Member(i)
		if m.HealthAddr == "" {
			http.Error(w, "refused: "+id+" has no health address to confirm against", http.StatusConflict)
			return
		}
		if err := ProbeLive(m.HealthAddr, probeTimeout); err == nil {
			http.Error(w, "refused: "+id+" answered a confirm-probe", http.StatusConflict)
			return
		}
		v.MarkDownIndex(i)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("marked down\n"))
	})
}
