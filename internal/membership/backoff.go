package membership

import (
	"math/rand"
	"time"
)

// Backoff computes jittered, capped exponential retry delays. The zero value
// is usable and returns zero delays (retry immediately); callers that want
// pacing set Base (and usually Max). It is shared by the sender-side health
// prober, the failover dispatcher, and RetryTransport so every retry loop in
// the pipeline paces the same way.
type Backoff struct {
	// Base is the delay before the first retry; each further attempt doubles
	// it. Base <= 0 disables delays entirely.
	Base time.Duration
	// Max caps the exponential growth. Max <= 0 means 16×Base.
	Max time.Duration
	// Jitter in [0, 1] spreads each delay uniformly over
	// [d·(1−Jitter), d·(1+Jitter)] so a fleet of senders probing one dead
	// member does not retry in lockstep. 0 = deterministic delays.
	Jitter float64
}

// Delay returns the pause before retry attempt (0-based: attempt 0 is the
// first retry).
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	max := b.Max
	if max <= 0 {
		max = 16 * b.Base
	}
	d := b.Base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if b.Jitter > 0 {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		// Uniform in [d·(1−j), d·(1+j)]. rand's global source is
		// concurrency-safe; determinism is irrelevant here.
		d = time.Duration(float64(d) * (1 - j + 2*j*rand.Float64()))
	}
	return d
}

// Sleep pauses for Delay(attempt), returning early (false) when stop closes.
// A nil stop never aborts.
func (b Backoff) Sleep(attempt int, stop <-chan struct{}) bool {
	d := b.Delay(attempt)
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}
