package membership

import (
	"fmt"
	"testing"
	"time"

	"siren/internal/wire"
	"siren/internal/xxhash"
)

func testTable(t *testing.T, ids ...string) *Table {
	t.Helper()
	ms := make([]Member, len(ids))
	for i, id := range ids {
		ms[i] = Member{ID: id, UDPAddr: fmt.Sprintf("127.0.0.1:%d", 9000+i)}
	}
	tbl, err := NewTable(ms)
	if err != nil {
		t.Fatalf("NewTable(%v): %v", ids, err)
	}
	return tbl
}

func TestParseRoster(t *testing.T) {
	tbl, err := ParseRoster("r0=127.0.0.1:9000@127.0.0.1:8000, r1=127.0.0.1:9001 ,r2=127.0.0.1:9002@127.0.0.1:8002")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tbl.Len())
	}
	want := []Member{
		{ID: "r0", UDPAddr: "127.0.0.1:9000", HealthAddr: "127.0.0.1:8000"},
		{ID: "r1", UDPAddr: "127.0.0.1:9001"},
		{ID: "r2", UDPAddr: "127.0.0.1:9002", HealthAddr: "127.0.0.1:8002"},
	}
	for i, w := range want {
		if got := tbl.Member(i); got != w {
			t.Errorf("Member(%d) = %+v, want %+v", i, got, w)
		}
	}
	// String round-trips through ParseRoster.
	again, err := ParseRoster(tbl.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", tbl.String(), err)
	}
	if again.String() != tbl.String() {
		t.Errorf("round-trip: %q != %q", again.String(), tbl.String())
	}
}

func TestParseRosterErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"   ",
		"r0",                     // no '='
		"r0=",                    // empty addr
		"=127.0.0.1:9000",        // empty id
		"r0=a:1,r0=a:2",          // duplicate id
		"bad id=127.0.0.1:9000",  // separator in id
		"r0=a:1,,r0@x=127.0.0.1", // '@' in id parses as addr soup -> still invalid
	} {
		if _, err := ParseRoster(spec); err == nil {
			t.Errorf("ParseRoster(%q): want error, got nil", spec)
		}
	}
}

// The failover order of a key must be a pure function of member IDs and the
// key — independent of roster order — or differently-configured processes
// would route the same datagram to different members.
func TestRankedOwnersIgnoresRosterOrder(t *testing.T) {
	a := testTable(t, "r0", "r1", "r2", "r3")
	b := testTable(t, "r3", "r1", "r0", "r2")
	for k := 0; k < 200; k++ {
		job := []byte(fmt.Sprintf("job-%d", k))
		host := []byte(fmt.Sprintf("node%03d", k%17))
		ra, rb := a.RankedOwners(job, host), b.RankedOwners(job, host)
		for i := range ra {
			if a.Member(ra[i]).ID != b.Member(rb[i]).ID {
				t.Fatalf("key %d rank %d: %s (roster A) != %s (roster B)",
					k, i, a.Member(ra[i]).ID, b.Member(rb[i]).ID)
			}
		}
	}
}

func TestScoreMatchesSpec(t *testing.T) {
	job, host := []byte("jobid-1"), []byte("node001")
	want := xxhash.Sum64Seed([]byte("r1"), wire.PartitionHash(job, host))
	if got := Score("r1", job, host); got != want {
		t.Fatalf("Score = %#x, want %#x", got, want)
	}
}

func TestRouteFailover(t *testing.T) {
	tbl := testTable(t, "r0", "r1", "r2")
	v, err := NewView(tbl, "")
	if err != nil {
		t.Fatal(err)
	}

	type key struct{ job, host string }
	owners := map[key]int{}
	var victims []key
	for k := 0; k < 300; k++ {
		kk := key{fmt.Sprintf("job-%d", k), fmt.Sprintf("node%03d", k%23)}
		rank0, owner := v.Route([]byte(kk.job), []byte(kk.host))
		if rank0 != owner {
			t.Fatalf("all-live view: rank0 %d != owner %d", rank0, owner)
		}
		ranked := tbl.RankedOwners([]byte(kk.job), []byte(kk.host))
		if ranked[0] != owner {
			t.Fatalf("owner %d != RankedOwners[0] %d", owner, ranked[0])
		}
		owners[kk] = owner
		if owner == 1 {
			victims = append(victims, kk)
		}
	}
	// Sanity: rendezvous spreads keys over all three members.
	seen := map[int]int{}
	for _, o := range owners {
		seen[o]++
	}
	for i := 0; i < 3; i++ {
		if seen[i] == 0 {
			t.Fatalf("member %d owns zero of 300 keys: %v", i, seen)
		}
	}
	if len(victims) == 0 {
		t.Fatal("no keys owned by r1; widen the key set")
	}

	if i, changed := v.MarkDown("r1"); i != 1 || !changed {
		t.Fatalf("MarkDown(r1) = (%d, %v)", i, changed)
	}
	if _, changed := v.MarkDown("r1"); changed {
		t.Fatal("second MarkDown(r1) reported a change")
	}
	if v.LiveCount() != 2 {
		t.Fatalf("LiveCount = %d, want 2", v.LiveCount())
	}

	for kk, before := range owners {
		rank0, owner := v.Route([]byte(kk.job), []byte(kk.host))
		if rank0 != before {
			t.Fatalf("rank0 changed after death: %d -> %d", before, rank0)
		}
		if before != 1 {
			// The rendezvous property: survivors' keys never move.
			if owner != before {
				t.Fatalf("key %v owned by live member %d moved to %d", kk, before, owner)
			}
			continue
		}
		// Dead member's keys fall to the next-ranked live member.
		ranked := tbl.RankedOwners([]byte(kk.job), []byte(kk.host))
		if ranked[0] != 1 {
			t.Fatalf("victim key %v not rank-0 owned by r1", kk)
		}
		if owner != ranked[1] {
			t.Fatalf("key %v fell to %d, want next-ranked %d", kk, owner, ranked[1])
		}
	}

	// Everyone down: no owner.
	v.MarkDownIndex(0)
	v.MarkDownIndex(2)
	if _, owner := v.Route([]byte("j"), []byte("h")); owner != -1 {
		t.Fatalf("owner = %d with all members down, want -1", owner)
	}
}

func TestViewSelf(t *testing.T) {
	tbl := testTable(t, "r0", "r1")
	if _, err := NewView(tbl, "nope"); err == nil {
		t.Fatal("NewView with unknown self: want error")
	}
	v, err := NewView(tbl, "r1")
	if err != nil {
		t.Fatal(err)
	}
	if v.SelfIndex() != 1 {
		t.Fatalf("SelfIndex = %d, want 1", v.SelfIndex())
	}
	if _, changed := v.MarkDown("r1"); changed {
		t.Fatal("view marked its own member down")
	}
	if v.MarkDownIndex(1) {
		t.Fatal("MarkDownIndex marked self")
	}
	if v.Down(1) {
		t.Fatal("self is down")
	}
}

func TestBackoffDelays(t *testing.T) {
	var zero Backoff
	if d := zero.Delay(3); d != 0 {
		t.Fatalf("zero Backoff.Delay = %v, want 0", d)
	}
	b := Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if d := b.Delay(i); d != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, d, w*time.Millisecond)
		}
	}
	j := Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := j.Delay(1) // nominal 20ms, jittered to [10ms, 30ms]
		if d < 10*time.Millisecond || d > 30*time.Millisecond {
			t.Fatalf("jittered Delay(1) = %v outside [10ms, 30ms]", d)
		}
	}
	// Default cap (16×Base) applies when Max is unset.
	uncapped := Backoff{Base: time.Millisecond}
	if d := uncapped.Delay(10); d != 16*time.Millisecond {
		t.Fatalf("default-cap Delay(10) = %v, want 16ms", d)
	}
}

func TestBackoffSleepStop(t *testing.T) {
	b := Backoff{Base: time.Minute}
	stop := make(chan struct{})
	close(stop)
	start := time.Now()
	if b.Sleep(0, stop) {
		t.Fatal("Sleep returned true despite closed stop")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Sleep did not return promptly on stop")
	}
}
