package membership

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"siren/internal/obs"
)

// ProbeLive checks whether the process behind healthAddr is alive. Liveness
// is deliberately weaker than health: ANY http response — including a 503
// from a stalled-ingest /healthz — proves the process exists and its WAL is
// still growing toward the final merge, so traffic routed to it is not lost.
// Only a transport-level failure (refused, reset, timeout) is death. A probe
// against an empty healthAddr succeeds: unprobable members are assumed live.
func ProbeLive(healthAddr string, timeout time.Duration) error {
	if healthAddr == "" {
		return nil
	}
	c := &http.Client{Timeout: timeout}
	resp, err := c.Get("http://" + healthAddr + "/healthz")
	if err != nil {
		return fmt.Errorf("membership: probe %s: %w", healthAddr, err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}

// ReportDown tells the member behind healthAddr that the member named
// deadID is dead, via POST /membership/down?id=deadID. The receiver
// confirm-probes before honoring the report (see receiver admission in
// DESIGN.md §11), so a 409 response means it still sees the member alive
// and refused; that is returned as an error. Senders call this on every
// surviving member BEFORE replaying a dead member's traffic so the new
// owners admit the failed-over keys immediately.
func ReportDown(healthAddr, deadID string, timeout time.Duration) error {
	if healthAddr == "" {
		return nil
	}
	c := &http.Client{Timeout: timeout}
	resp, err := c.Post("http://"+healthAddr+"/membership/down?id="+url.QueryEscape(deadID), "text/plain", nil)
	if err != nil {
		return fmt.Errorf("membership: report down to %s: %w", healthAddr, err)
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	if cerr := resp.Body.Close(); cerr != nil {
		return cerr
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("membership: report down to %s: %s: %s", healthAddr, resp.Status, body)
	}
	return nil
}

// Prober periodically probes every roster member's health address and marks
// members down in a View after FailThreshold consecutive probe failures.
// Receivers run one so that even traffic from senders that never probe
// (plain broadcast campaigns) is admitted after a death; failover-dispatch
// senders learn of deaths faster through their own send-path probes.
type Prober struct {
	// View is marked as deaths are confirmed. The prober never probes the
	// view's own member.
	View *View
	// Interval between probe rounds (default 1s).
	Interval time.Duration
	// Timeout of each individual probe (default 500ms).
	Timeout time.Duration
	// FailThreshold is the number of consecutive failures that constitutes
	// death (default 2 — one failed probe can be a blip).
	FailThreshold int
	// OnDown, if set, is called once per member transitioned to down, from
	// the prober goroutine.
	OnDown func(idx int, m Member)

	wg    sync.WaitGroup
	stop  chan struct{}
	fails []int

	// obs instruments, set by InstrumentWith (nil-safe when absent).
	rttNS      *obs.Histogram
	probeFails *obs.Counter
}

// Start launches the probe loop. Stop joins it.
func (p *Prober) Start() {
	if p.Interval <= 0 {
		p.Interval = time.Second
	}
	if p.Timeout <= 0 {
		p.Timeout = 500 * time.Millisecond
	}
	if p.FailThreshold <= 0 {
		p.FailThreshold = 2
	}
	p.stop = make(chan struct{})
	p.fails = make([]int, p.View.Table().Len())
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t := time.NewTicker(p.Interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.round()
			}
		}
	}()
}

// Stop terminates the probe loop and waits for it to exit.
func (p *Prober) Stop() {
	if p.stop == nil {
		return
	}
	close(p.stop)
	p.wg.Wait()
	p.stop = nil
}

// round probes every live non-self member once. Runs only on the prober
// goroutine, so p.fails needs no locking.
func (p *Prober) round() {
	t := p.View.Table()
	for i := 0; i < t.Len(); i++ {
		if i == p.View.SelfIndex() || p.View.Down(i) {
			continue
		}
		m := t.Member(i)
		if m.HealthAddr == "" {
			continue
		}
		start := time.Now()
		if err := ProbeLive(m.HealthAddr, p.Timeout); err != nil {
			p.probeFails.Inc()
			p.fails[i]++
			if p.fails[i] >= p.FailThreshold && p.View.MarkDownIndex(i) && p.OnDown != nil {
				p.OnDown(i, m)
			}
			continue
		}
		p.rttNS.Since(start)
		p.fails[i] = 0
	}
}
