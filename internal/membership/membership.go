// Package membership defines the campaign roster of a multi-receiver
// deployment and the rendezvous-hashing ownership rule over it — the
// replacement for the static `-partition k/N` admission.
//
// A Table lists every receiver of a campaign (ID, UDP ingest address,
// health/stats HTTP address). Ownership of a (JOBID, HOST) key is decided by
// rendezvous (highest-random-weight) hashing: every member is scored against
// the key and the highest-scoring *live* member owns it. The score chains
// wire.PartitionHash — the canonical (JOBID, HOST) keyed hash the receiver
// shards and the static partitioner already agree on — through the same
// xxhash, seeded per member ID, so sender dispatch and receiver admission
// compute identical ownership from identical inputs. When a member dies,
// ownership of each of its keys falls independently to the next-highest
// scorer, and — the rendezvous property — keys owned by surviving members
// never move.
//
// A View layers liveness over the table. Deaths are sticky: a member marked
// down stays down for the lifetime of the view, so sender and receivers
// converge on the same shrinking live set instead of flapping (a recovered
// member rejoins by merging its WAL at analysis time and re-entering the
// next campaign, see DESIGN.md §11). The package also carries the sender's
// robustness primitives: health probing (ProbeLive), the down-report client
// (ReportDown), a jittered capped Backoff, and RetryTransport.
package membership

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"siren/internal/wire"
	"siren/internal/xxhash"
)

// Member is one receiver of the campaign roster.
type Member struct {
	// ID names the member; it is the rendezvous hashing key, so it must be
	// unique and stable across every process reading the same roster.
	ID string
	// UDPAddr is the member's datagram ingest address ("host:port").
	UDPAddr string
	// HealthAddr is the member's stats mux address serving /healthz and
	// /membership ("" = unprobable: the member is assumed live forever).
	HealthAddr string
}

// Table is an immutable campaign roster. Every process of a deployment —
// senders and receivers — must be configured with the same roster (same
// members, any order): ownership depends only on member IDs and the key,
// never on roster order.
type Table struct {
	members []Member
	byID    map[string]int
	idBytes [][]byte // precomputed for the per-datagram scoring hot path
}

// NewTable builds a roster. Member IDs must be unique and non-empty; IDs,
// UDP addresses, and the separator characters of the roster spec ("=", "@",
// ",") must not collide.
func NewTable(members []Member) (*Table, error) {
	if len(members) == 0 {
		return nil, errors.New("membership: empty roster")
	}
	t := &Table{
		members: append([]Member(nil), members...),
		byID:    make(map[string]int, len(members)),
		idBytes: make([][]byte, len(members)),
	}
	for i, m := range t.members {
		if m.ID == "" {
			return nil, fmt.Errorf("membership: member %d has an empty ID", i)
		}
		if strings.ContainsAny(m.ID, "=@, \t") {
			return nil, fmt.Errorf("membership: member ID %q contains a roster separator", m.ID)
		}
		if m.UDPAddr == "" {
			return nil, fmt.Errorf("membership: member %q has no UDP address", m.ID)
		}
		if _, dup := t.byID[m.ID]; dup {
			return nil, fmt.Errorf("membership: duplicate member ID %q", m.ID)
		}
		t.byID[m.ID] = i
		t.idBytes[i] = []byte(m.ID)
	}
	return t, nil
}

// ParseRoster parses the flag-friendly roster spec
//
//	id=udpaddr@healthaddr,id=udpaddr@healthaddr,...
//
// The "@healthaddr" part may be omitted for members without a stats mux.
func ParseRoster(spec string) (*Table, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("membership: empty roster spec")
	}
	var members []Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addrs, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("membership: roster entry %q: want id=udpaddr[@healthaddr]", part)
		}
		udp, health, _ := strings.Cut(addrs, "@")
		if udp == "" {
			return nil, fmt.Errorf("membership: roster entry %q: empty UDP address", part)
		}
		members = append(members, Member{ID: strings.TrimSpace(id), UDPAddr: udp, HealthAddr: health})
	}
	return NewTable(members)
}

// String renders the roster in ParseRoster's format.
func (t *Table) String() string {
	var sb strings.Builder
	for i, m := range t.members {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(m.ID)
		sb.WriteByte('=')
		sb.WriteString(m.UDPAddr)
		if m.HealthAddr != "" {
			sb.WriteByte('@')
			sb.WriteString(m.HealthAddr)
		}
	}
	return sb.String()
}

// Len reports the roster size.
func (t *Table) Len() int { return len(t.members) }

// Members returns a copy of the roster in table order.
func (t *Table) Members() []Member { return append([]Member(nil), t.members...) }

// Member returns member i.
func (t *Table) Member(i int) Member { return t.members[i] }

// Index returns the table index of the member named id.
func (t *Table) Index(id string) (int, bool) {
	i, ok := t.byID[id]
	return i, ok
}

// Score is the rendezvous weight of the member named id for the key
// (job, host): wire.PartitionHash reused as the keyed hash, its 64-bit key
// digest seeding one more xxhash round over the member ID. Like
// PartitionHash and PartitionIndex, this is a cross-process wire contract —
// every sender and receiver of a campaign must compute identical scores —
// pinned by golden-value tests.
func Score(id string, job, host []byte) uint64 {
	return xxhash.Sum64Seed([]byte(id), wire.PartitionHash(job, host))
}

// score is the allocation-free Table-internal form of Score.
func (t *Table) score(i int, keyHash uint64) uint64 {
	return xxhash.Sum64Seed(t.idBytes[i], keyHash)
}

// RankedOwners returns every member index ordered by descending rendezvous
// score for (job, host) — the failover order of the key. Ties (score
// collisions) break toward the smaller member ID so the order is identical
// in every process regardless of roster order.
func (t *Table) RankedOwners(job, host []byte) []int {
	kh := wire.PartitionHash(job, host)
	out := make([]int, len(t.members))
	for i := range out {
		out[i] = i
	}
	sort.Slice(out, func(a, b int) bool {
		sa, sb := t.score(out[a], kh), t.score(out[b], kh)
		if sa != sb {
			return sa > sb
		}
		return t.members[out[a]].ID < t.members[out[b]].ID
	})
	return out
}

// View layers a live/down state over a roster. Deaths are sticky — MarkDown
// is one-way — so ownership only ever falls forward through the rendezvous
// order and two processes that observed the same death agree on every key's
// owner from then on. All methods are safe for concurrent use.
type View struct {
	t    *Table
	self int // -1 for an observer (sender) view
	down []atomic.Bool
}

// NewView builds a view of table t. selfID names the member this process is
// ("" for an observer view, e.g. a sender). A View never marks its own
// member down.
func NewView(t *Table, selfID string) (*View, error) {
	v := &View{t: t, self: -1, down: make([]atomic.Bool, t.Len())}
	if selfID != "" {
		i, ok := t.Index(selfID)
		if !ok {
			return nil, fmt.Errorf("membership: self ID %q is not in the roster %q", selfID, t)
		}
		v.self = i
	}
	return v, nil
}

// Table returns the underlying roster.
func (v *View) Table() *Table { return v.t }

// SelfIndex returns this process's member index, or -1 for an observer.
func (v *View) SelfIndex() int { return v.self }

// MarkDown marks the member named id as dead (sticky). It reports the
// member's index and whether this call changed the state. Marking self or
// an unknown ID is a no-op with idx -1.
func (v *View) MarkDown(id string) (idx int, changed bool) {
	i, ok := v.t.Index(id)
	if !ok || i == v.self {
		return -1, false
	}
	return i, v.MarkDownIndex(i)
}

// MarkDownIndex marks member i dead (sticky); it reports whether the state
// changed. Self is never marked.
func (v *View) MarkDownIndex(i int) bool {
	if i == v.self {
		return false
	}
	return v.down[i].CompareAndSwap(false, true)
}

// Down reports whether member i is marked dead.
func (v *View) Down(i int) bool { return v.down[i].Load() }

// LiveCount reports how many members are not marked down.
func (v *View) LiveCount() int {
	n := 0
	for i := range v.down {
		if !v.down[i].Load() {
			n++
		}
	}
	return n
}

// Route computes the ownership of key (job, host) under the current live
// view in one allocation-free pass: rank0 is the highest-scoring member of
// the whole roster (the key's owner when everyone is alive) and owner the
// highest-scoring member not marked down (-1 if every member is down).
// Receiver admission accepts exactly owner == self, counting the accept as
// failover when rank0 != self; sender dispatch addresses owner.
func (v *View) Route(job, host []byte) (rank0, owner int) {
	kh := wire.PartitionHash(job, host)
	rank0, owner = -1, -1
	var bestAll, bestLive uint64
	for i := range v.t.members {
		s := v.t.score(i, kh)
		if rank0 < 0 || s > bestAll || (s == bestAll && v.t.members[i].ID < v.t.members[rank0].ID) {
			rank0, bestAll = i, s
		}
		if v.down[i].Load() {
			continue
		}
		if owner < 0 || s > bestLive || (s == bestLive && v.t.members[i].ID < v.t.members[owner].ID) {
			owner, bestLive = i, s
		}
	}
	return rank0, owner
}
