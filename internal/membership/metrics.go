// Telemetry bindings for the membership tier: probe round-trip latency and
// failure counting on the Prober, and counter bridges exposing a
// RetryTransport's existing send accounting through an obs registry.

package membership

import "siren/internal/obs"

// InstrumentWith registers the prober's instruments in reg: a probe RTT
// histogram (successful probes only — a timeout would dominate the tail with
// the configured deadline, not a measurement) and a counter of failed
// probes. Call before Start; nil reg leaves the prober uninstrumented.
func (p *Prober) InstrumentWith(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.rttNS = reg.Histogram("siren_probe_rtt_ns", "membership liveness probe round-trip time (successful probes)")
	p.probeFails = reg.Counter("siren_probe_failures_total", "membership liveness probes that failed at the transport level")
}

// InstrumentWith bridges the transport's send counters into reg so they ride
// the /metrics exposition. The counters stay the transport's own atomics —
// evaluated at scrape time, never double-counted on the send path. Nil reg
// is a no-op.
func (r *RetryTransport) InstrumentWith(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("siren_send_delivered_total", "datagrams ultimately delivered by the retrying sender", func() int64 {
		return int64(r.sent.Load())
	})
	reg.CounterFunc("siren_send_retries_total", "re-send attempts after a failed send", func() int64 {
		return int64(r.retries.Load())
	})
	reg.CounterFunc("siren_send_errors_total", "datagrams lost for good: every send attempt failed", func() int64 {
		return int64(r.errors.Load())
	})
}
