package campaign

import (
	"strings"
	"sync"
	"testing"

	"siren/internal/analysis"
	"siren/internal/postprocess"
	"siren/internal/receiver"
	"siren/internal/sirendb"
	"siren/internal/ssdeep"
	"siren/internal/wire"
)

// fixture runs one campaign at test scale and shares the consolidated
// dataset across all tests in the package.
type fixture struct {
	res     *Result
	db      *sirendb.DB
	records []*postprocess.ProcessRecord
	stats   postprocess.Stats
	data    *analysis.Dataset
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func campaignFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		db, _ := sirendb.Open("")
		tr := wire.NewChanTransport(1 << 18)
		rcv := receiver.New(db, receiver.Options{})
		rcv.AttachChannel(tr.C())
		res, err := Run(Config{Scale: 0.02, Seed: 1, Transport: tr})
		if err != nil {
			fixErr = err
			return
		}
		tr.Close()
		rcv.Close()
		records, stats := postprocess.Consolidate(db)
		fix = &fixture{res: res, db: db, records: records, stats: stats, data: analysis.NewDataset(records)}
	})
	if fixErr != nil {
		t.Fatalf("campaign: %v", fixErr)
	}
	return fix
}

func TestCampaignRuns(t *testing.T) {
	f := campaignFixture(t)
	if f.res.JobsRun < 250 {
		t.Errorf("jobs run = %d, want a few hundred at scale 0.02", f.res.JobsRun)
	}
	if f.res.ProcessesRun < 10000 {
		t.Errorf("processes run = %d", f.res.ProcessesRun)
	}
	if f.db.Count() == 0 {
		t.Fatal("no messages stored")
	}
	if f.res.Collector.Stats().Failures.Load() != 0 {
		t.Errorf("collector failures = %d", f.res.Collector.Stats().Failures.Load())
	}
	t.Logf("jobs=%d procs=%d messages=%d records=%d",
		f.res.JobsRun, f.res.ProcessesRun, f.db.Count(), len(f.records))
}

func TestTable2Shape(t *testing.T) {
	f := campaignFixture(t)
	stats := f.data.UserStats()
	if len(stats) != 12 {
		t.Fatalf("got %d users, want 12", len(stats))
	}
	// user_1 dominates jobs and runs only system executables.
	if stats[0].User != "user_1" {
		t.Errorf("top user by jobs = %s, want user_1", stats[0].User)
	}
	if stats[0].UserProcs != 0 || stats[0].PythonProcs != 0 {
		t.Errorf("user_1 should be system-only: %+v", stats[0])
	}
	byUser := make(map[string]analysis.UserStat)
	for _, s := range stats {
		byUser[s.User] = s
	}
	// user_6 runs no system executables at all.
	if u6 := byUser["user_6"]; u6.SystemProcs != 0 || u6.UserProcs == 0 {
		t.Errorf("user_6 = %+v, want only user-directory processes", u6)
	}
	// user_4 is the dominant Python user.
	if byUser["user_4"].PythonProcs <= byUser["user_5"].PythonProcs {
		t.Errorf("user_4 python %d should exceed user_5 %d",
			byUser["user_4"].PythonProcs, byUser["user_5"].PythonProcs)
	}
	// Most users mix system and user executables.
	if byUser["user_2"].UserProcs == 0 || byUser["user_2"].SystemProcs == 0 {
		t.Errorf("user_2 = %+v, want a mix", byUser["user_2"])
	}
}

func TestTable3Shape(t *testing.T) {
	f := campaignFixture(t)
	top := f.data.TopSystemExecutables(10)
	if len(top) != 10 {
		t.Fatalf("top-10 has %d rows", len(top))
	}
	byPath := make(map[string]analysis.ExeStat)
	for _, e := range f.data.TopSystemExecutables(0) {
		byPath[e.Path] = e
	}
	// srun is used by exactly 10 of the 12 users (not user_1, not user_6).
	if got := byPath["/usr/bin/srun"].UniqueUsers; got != 10 {
		t.Errorf("srun users = %d, want 10", got)
	}
	if got := byPath["/usr/bin/bash"].UniqueUsers; got != 8 {
		t.Errorf("bash users = %d, want 8", got)
	}
	if got := byPath["/usr/bin/lua5.3"].UniqueUsers; got != 8 {
		t.Errorf("lua users = %d, want 8", got)
	}
	// mkdir and rm dominate process counts (the user_1 storm).
	if byPath["/usr/bin/mkdir"].Processes < byPath["/usr/bin/srun"].Processes {
		t.Error("mkdir should outnumber srun by processes")
	}
	// Variant counts: bash 3 object sets, srun 3, lua 2, mkdir 1.
	if got := byPath["/usr/bin/bash"].UniqueObjectsH; got != 3 {
		t.Errorf("bash OBJECTS_H variants = %d, want 3", got)
	}
	if got := byPath["/usr/bin/srun"].UniqueObjectsH; got != 3 {
		t.Errorf("srun OBJECTS_H variants = %d, want 3", got)
	}
	if got := byPath["/usr/bin/lua5.3"].UniqueObjectsH; got != 2 {
		t.Errorf("lua OBJECTS_H variants = %d, want 2", got)
	}
	if got := byPath["/usr/bin/mkdir"].UniqueObjectsH; got != 1 {
		t.Errorf("mkdir OBJECTS_H variants = %d, want 1", got)
	}
}

func TestTable4Shape(t *testing.T) {
	f := campaignFixture(t)
	sets := f.data.DeviatingLibraries("/usr/bin/bash")
	if len(sets) != 3 {
		t.Fatalf("bash object sets = %d, want 3", len(sets))
	}
	// Majority variant: /lib64 libtinfo, no libm.
	if sets[0].LibraryVariant("libtinfo") != "/lib64/libtinfo.so.6" {
		t.Errorf("majority libtinfo = %s", sets[0].LibraryVariant("libtinfo"))
	}
	if sets[0].LibraryVariant("libm") != "–" {
		t.Errorf("majority should not load libm: %s", sets[0].LibraryVariant("libm"))
	}
	var sawSpack, sawSWWithLibm bool
	for _, s := range sets[1:] {
		ti := s.LibraryVariant("libtinfo")
		if strings.Contains(ti, "/appl/spack/") {
			sawSpack = true
		}
		if strings.Contains(ti, "/pfs/SW/") && s.LibraryVariant("libm") == "/lib64/libm.so.6" {
			sawSWWithLibm = true
		}
	}
	if !sawSpack {
		t.Error("missing spack libtinfo variant")
	}
	if !sawSWWithLibm {
		t.Error("missing SW libtinfo + libm variant")
	}
	// Majority ordering by process count.
	if sets[0].Processes <= sets[1].Processes {
		t.Error("variants not sorted by process count")
	}
}

func TestTable5Shape(t *testing.T) {
	f := campaignFixture(t)
	labels := f.data.DeriveLabels()
	byLabel := make(map[string]analysis.LabelStat)
	for _, l := range labels {
		byLabel[l.Label] = l
	}
	for _, want := range []string{"LAMMPS", "GROMACS", "miniconda", "janko", "icon", "amber", "gzip", "UNKNOWN", "alexandria", "RadRad"} {
		if _, ok := byLabel[want]; !ok {
			t.Errorf("label %s missing (have %v)", want, labels)
		}
	}
	if byLabel["GROMACS"].UniqueUsers != 2 {
		t.Errorf("GROMACS users = %d, want 2", byLabel["GROMACS"].UniqueUsers)
	}
	if byLabel["LAMMPS"].UniqueUsers != 2 {
		t.Errorf("LAMMPS users = %d, want 2", byLabel["LAMMPS"].UniqueUsers)
	}
	if byLabel["GROMACS"].UniqueFileH != 1 {
		t.Errorf("GROMACS unique FILE_H = %d, want 1 (single binary, many users)", byLabel["GROMACS"].UniqueFileH)
	}
	// icon has by far the most distinct executables.
	for _, l := range labels {
		if l.Label != "icon" && l.UniqueFileH >= byLabel["icon"].UniqueFileH {
			t.Errorf("icon unique FILE_H (%d) should dominate %s (%d)",
				byLabel["icon"].UniqueFileH, l.Label, l.UniqueFileH)
		}
	}
	if byLabel["icon"].UniqueUsers != 1 {
		t.Errorf("icon users = %d, want 1", byLabel["icon"].UniqueUsers)
	}
}

func TestTable6Shape(t *testing.T) {
	f := campaignFixture(t)
	rows := f.data.CompilerTable()
	byCombo := make(map[string]analysis.CompilerStat)
	for _, r := range rows {
		byCombo[r.Compilers] = r
	}
	for _, combo := range []string{
		"LLD [AMD]",
		"GCC [SUSE]",
		"GCC [Red Hat], GCC [conda]",
		"GCC [SUSE], GCC [HPE]",
		"GCC [Red Hat], rustc",
		"GCC [SUSE], clang [AMD]",
	} {
		if _, ok := byCombo[combo]; !ok {
			t.Errorf("combo %q missing (have %d rows)", combo, len(rows))
		}
	}
	// LLD [AMD] covers GROMACS+gzip+LAMMPS users → most unique users.
	if rows[0].Compilers != "LLD [AMD]" {
		t.Errorf("top combo = %q, want LLD [AMD]", rows[0].Compilers)
	}
	// Pure GCC [SUSE] has the most unique executables (the icon rebuilds).
	var maxFileH analysis.CompilerStat
	for _, r := range rows {
		if r.UniqueFileH > maxFileH.UniqueFileH {
			maxFileH = r
		}
	}
	if maxFileH.Compilers != "GCC [SUSE]" {
		t.Errorf("combo with most unique FILE_H = %q, want GCC [SUSE]", maxFileH.Compilers)
	}
}

func TestTable7Shape(t *testing.T) {
	f := campaignFixture(t)
	unknown, ok := f.data.FindUnknown()
	if !ok {
		t.Fatal("no UNKNOWN baseline found")
	}
	rows := f.data.SimilaritySearch(unknown, 10, ssdeep.BackendWeighted)
	if len(rows) == 0 {
		t.Fatal("similarity search returned nothing")
	}
	for i, r := range rows {
		if r.Label != "icon" {
			t.Errorf("row %d label = %s, want icon", i, r.Label)
		}
	}
	if rows[0].Avg != 100 {
		t.Errorf("best match avg = %.1f, want 100 (identical build exists)", rows[0].Avg)
	}
	// Scores decrease down the table.
	for i := 1; i < len(rows); i++ {
		if rows[i].Avg > rows[i-1].Avg {
			t.Error("rows not sorted by average similarity")
		}
	}
	t.Logf("similarity top rows: %+v", rows[:min(3, len(rows))])
}

func TestTable8Shape(t *testing.T) {
	f := campaignFixture(t)
	rows := f.data.PythonInterpreters()
	if len(rows) != 3 {
		t.Fatalf("interpreters = %d, want 3", len(rows))
	}
	byName := make(map[string]analysis.InterpreterStat)
	for _, r := range rows {
		byName[r.Interpreter] = r
	}
	if byName["python3.10"].UniqueUsers != 2 {
		t.Errorf("python3.10 users = %d, want 2", byName["python3.10"].UniqueUsers)
	}
	if byName["python3.6"].UniqueUsers != 1 || byName["python3.11"].UniqueUsers != 1 {
		t.Error("python3.6/3.11 should each have one user")
	}
	// 3.6 dominates processes; 3.10 has the most distinct scripts relative
	// to its process count.
	if byName["python3.6"].Processes <= byName["python3.10"].Processes {
		t.Error("python3.6 should dominate process count")
	}
}

func TestFigure2Shape(t *testing.T) {
	f := campaignFixture(t)
	tags := f.data.DerivedLibraries()
	byTag := make(map[string]analysis.LibraryTagStat)
	for _, s := range tags {
		byTag[s.Tag] = s
	}
	// siren is loaded by every observed user application.
	maxUsers := 0
	for _, s := range tags {
		if s.UniqueUsers > maxUsers {
			maxUsers = s.UniqueUsers
		}
	}
	if byTag["siren"].UniqueUsers != maxUsers {
		t.Errorf("siren users = %d, max = %d", byTag["siren"].UniqueUsers, maxUsers)
	}
	for _, want := range []string{"siren", "pthread", "cray", "quadmath-cray", "rocfft-rocm-fft",
		"climatedt", "climatedt-yaml", "hdf5-fortran-parallel-cray", "torch-tykky", "gromacs"} {
		if _, ok := byTag[want]; !ok {
			t.Errorf("tag %s missing", want)
		}
	}
	// climatedt: many unique executables (icon variants), few jobs.
	cd := byTag["climatedt"]
	if cd.UniqueExecutables <= cd.Jobs {
		t.Errorf("climatedt executables (%d) should exceed jobs (%d) — the Figure 2 disparity",
			cd.UniqueExecutables, cd.Jobs)
	}
}

func TestFigure3Shape(t *testing.T) {
	f := campaignFixture(t)
	pkgs := f.data.PythonPackages()
	byPkg := make(map[string]analysis.PackageStat)
	for _, p := range pkgs {
		byPkg[p.Package] = p
	}
	// heapq and struct are imported by all three Python users.
	if byPkg["heapq"].UniqueUsers != 3 || byPkg["struct"].UniqueUsers != 3 {
		t.Errorf("heapq/struct users = %d/%d, want 3/3",
			byPkg["heapq"].UniqueUsers, byPkg["struct"].UniqueUsers)
	}
	// mpi4py and numpy are specialist imports (subset of users).
	if byPkg["mpi4py"].UniqueUsers >= 3 {
		t.Errorf("mpi4py users = %d, want < 3", byPkg["mpi4py"].UniqueUsers)
	}
	if _, ok := byPkg["pandas"]; !ok {
		t.Error("pandas missing")
	}
}

func TestFigure4And5Matrices(t *testing.T) {
	f := campaignFixture(t)
	cm := f.data.CompilerMatrix()
	if !cm.Used("icon", "GCC [SUSE]") || !cm.Used("icon", "clang [Cray]") {
		t.Error("icon compiler row wrong")
	}
	if cm.Used("GROMACS", "GCC [SUSE]") || !cm.Used("GROMACS", "LLD [AMD]") {
		t.Error("GROMACS compiler row wrong")
	}
	if !cm.Used("miniconda", "rustc") {
		t.Error("miniconda should show rustc (mamba)")
	}

	lm := f.data.LibraryMatrix()
	if !lm.Used("icon", "climatedt") || !lm.Used("icon", "hdf5-cray") {
		t.Error("icon library row wrong")
	}
	if !lm.Used("amber", "cuda-amber") || !lm.Used("amber", "hdf5-fortran-parallel-cray") {
		t.Error("amber library row wrong")
	}
	// gzip loads nothing but siren (and libc, which carries no tag).
	if lm.Used("gzip", "pthread") {
		t.Error("gzip must not show pthread")
	}
	if !lm.Used("gzip", "siren") {
		t.Error("gzip must show siren (the preload itself)")
	}
	// Every app loads siren.
	for _, row := range lm.Rows {
		if !lm.Used(row, "siren") {
			t.Errorf("%s missing siren tag", row)
		}
	}
}

func TestStaticAndContainerInvisible(t *testing.T) {
	f := campaignFixture(t)
	for _, r := range f.records {
		if r.Exe == StaticToolPath {
			t.Fatalf("statically linked tool was collected: %+v", r)
		}
	}
	// The containerised icon runs of sys8 are invisible: every icon record
	// must come from a job that loaded the icon modules (PrgEnv); sys8 jobs
	// loaded only app-icon + siren. Check via modules: icon records all have
	// non-empty module lists including PrgEnv-cray.
	for _, r := range f.records {
		if strings.Contains(r.Exe, "/icon/build_") {
			found := false
			for _, m := range r.Modules {
				if strings.HasPrefix(m, "PrgEnv-cray/") {
					found = true
				}
			}
			if !found {
				t.Fatalf("icon record from container job leaked: %+v", r.Modules)
			}
		}
	}
}

func TestMissingFieldsAbsentWithoutLoss(t *testing.T) {
	f := campaignFixture(t)
	if f.stats.ProcessesWithMissing != 0 {
		t.Errorf("processes with missing fields = %d, want 0 on a lossless transport",
			f.stats.ProcessesWithMissing)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
