package campaign

import (
	"fmt"
	"math"

	"siren/internal/procfs"
	"siren/internal/pyenv"
	"siren/internal/slurm"
	"siren/internal/xxhash"
)

// runJob executes one job of a template: builds the module environment,
// registers the Slurm identity, and walks the job-script steps.
func (st *runState) runJob(tmpl *template, jobIdx int, adjust float64) error {
	mods := tmpl.modules
	if len(tmpl.moduleVariants) > 0 {
		mods = tmpl.moduleVariants[jobIdx%len(tmpl.moduleVariants)]
	}
	base := make(map[string]string)
	if len(mods) > 0 {
		sess, err := st.modsys.NewSession()
		if err != nil {
			return fmt.Errorf("campaign: %s: %w", tmpl.name, err)
		}
		for _, m := range mods {
			if err := sess.Load(m); err != nil {
				return fmt.Errorf("campaign: %s: %w", tmpl.name, err)
			}
		}
		base = sess.Env()
	}
	for k, v := range tmpl.extraEnv {
		if k == "LD_LIBRARY_PATH" && v == "" {
			// Placeholder: the user's profile exports the app's library path.
			for _, s := range tmpl.steps {
				if s.app != "" {
					v = appEnvOf(st.cat, s.app)["LD_LIBRARY_PATH"]
					break
				}
			}
		}
		if v == "" {
			continue
		}
		if (k == "LD_LIBRARY_PATH" || k == "LD_PRELOAD") && base[k] != "" {
			base[k] = v + ":" + base[k]
		} else {
			base[k] = v
		}
	}

	job := slurm.Job{
		ID:   st.cluster.NextJobID(),
		Name: tmpl.jobName,
		User: tmpl.user,
		UID:  tmpl.uid,
		GID:  tmpl.uid,
		Node: st.cluster.Node(jobIdx + int(xxhash.Sum64String(tmpl.name)%64)),
	}

	jc := &jobCtx{st: st, tmpl: tmpl, jobIdx: jobIdx, adjust: adjust, job: job, base: base}
	if tmpl.useBash {
		// The batch script itself runs under bash; everything else is its
		// child.
		env := job.TaskEnv(base, 0, 0)
		_, err := st.run("/usr/bin/bash", slurm.ExecOptions{
			PPID: 1, UID: tmpl.uid, GID: tmpl.uid, Env: env,
		}, func(root *procfs.Proc) error {
			return jc.execSteps(root.PID)
		})
		return err
	}
	return jc.execSteps(1)
}

// run wraps Runtime.Run with the process counter.
func (st *runState) run(exe string, opts slurm.ExecOptions, body func(*procfs.Proc) error) (*procfs.Proc, error) {
	st.procs.Add(1)
	return st.rt.Run(exe, opts, body)
}

// jobCtx carries per-job execution state.
type jobCtx struct {
	st     *runState
	tmpl   *template
	jobIdx int
	adjust float64
	job    slurm.Job
	base   map[string]string
}

// n scales a full-magnitude per-job multiplicity.
func (jc *jobCtx) n(perJob float64) int {
	v := int(math.Round(perJob * jc.adjust))
	if v < 1 {
		v = 1
	}
	return v
}

// execSteps walks the template's steps as children of ppid.
func (jc *jobCtx) execSteps(ppid int) error {
	st := jc.st
	tmpl := jc.tmpl
	stepID := 0
	for _, s := range tmpl.steps {
		n := jc.n(s.perJob)
		switch {
		case s.static:
			for i := 0; i < n; i++ {
				env := jc.job.TaskEnv(jc.base, 0, 0)
				if _, err := st.run(StaticToolPath, slurm.ExecOptions{
					PPID: ppid, UID: tmpl.uid, GID: tmpl.uid, Env: env,
				}, nil); err != nil {
					return err
				}
			}

		case s.execPair[0] != "":
			env := jc.job.TaskEnv(jc.base, 0, 0)
			for i := 0; i < n; i++ {
				st.procs.Add(2)
				if _, err := st.rt.RunExec(s.execPair[0], s.execPair[1], slurm.ExecOptions{
					PPID: ppid, UID: tmpl.uid, GID: tmpl.uid, Env: env,
				}); err != nil {
					return err
				}
			}

		case s.util != "":
			path := st.cat.SystemExePath(s.util)
			if path == "" {
				return fmt.Errorf("campaign: unknown utility %q", s.util)
			}
			env := jc.job.TaskEnv(jc.base, 0, 0)
			for i := 0; i < n; i++ {
				if _, err := st.run(path, slurm.ExecOptions{
					PPID: ppid, UID: tmpl.uid, GID: tmpl.uid, Env: env,
				}, nil); err != nil {
					return err
				}
			}

		case s.app != "":
			app := st.cat.App(s.app)
			if app == nil {
				return fmt.Errorf("campaign: unknown app %q", s.app)
			}
			stride := s.stride
			if stride == 0 {
				stride = 1
			}
			spread := s.spread
			if spread == 0 {
				spread = 1
			}
			for i := 0; i < n; i++ {
				variant := s.fixedVar
				if variant < 0 {
					variant = (jc.jobIdx*stride + i*spread) % len(app.Variants)
				}
				v := app.Variants[variant%len(app.Variants)]
				if s.viaSrun {
					stepID++
				}
				ranks := s.ranks
				if ranks <= 0 {
					ranks = 1
				}
				for r := 0; r < ranks; r++ {
					env := jc.job.TaskEnv(jc.base, stepID, r)
					if _, err := st.run(v.Path, slurm.ExecOptions{
						PPID: ppid, UID: tmpl.uid, GID: tmpl.uid, Env: env,
						Container: s.container,
					}, nil); err != nil {
						return err
					}
				}
			}

		case s.python != "":
			it, ok := st.cat.Interpreter(s.python)
			if !ok {
				return fmt.Errorf("campaign: unknown interpreter %q", s.python)
			}
			scriptIdx := jc.jobIdx % s.scriptCount
			script := scriptPath(tmpl.user, tmpl.name, scriptIdx)
			imports := s.imports(scriptIdx)
			extra := pyenv.MapRegions(it, imports, 0x7f4000000000)
			env := jc.job.TaskEnv(jc.base, 0, 0)
			for i := 0; i < n; i++ {
				if _, err := st.run(it.Path, slurm.ExecOptions{
					PPID: ppid, UID: tmpl.uid, GID: tmpl.uid, Env: env, ExtraMaps: extra,
				}, func(p *procfs.Proc) error {
					p.Cmdline = []string{it.Path, script}
					return nil
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
