// Failover dispatch: the sender half of membership-table routing.
//
// A FailoverTransport replaces the single connected UDP socket with one
// socket per roster member and routes every datagram to the rendezvous
// owner of its (JOBID, HOST) under the sender's live view. When a send to a
// member errors (on loopback a SIGKILLed receiver surfaces as ECONNREFUSED
// picked up on the connected socket; on a network, probes catch it), the
// sender confirm-probes the member's health endpoint with backed-off
// retries; a confirmed death triggers the failover protocol:
//
//  1. report the death to every surviving member (membership.ReportDown),
//     so the new owners' admission accepts the reassigned keys before any
//     failed-over datagram arrives — concurrent senders spin on the failing
//     member's state until step 2, so nothing re-routes to a survivor that
//     has not yet been told;
//  2. mark the member down in the view — from here every Route, including
//     the replay below and concurrent senders' retries, avoids it;
//  3. seal the dead member's journal and replay every datagram ever sent
//     to it through normal routing — the keys' new owners receive a
//     complete copy of the dead member's stream, which is what lets the
//     recovered WAL merge back as a pure sub-multiset
//     (sirendb.DedupOverlaps) and the final report come out byte-identical.
//
// The journal is the price of that guarantee: every delivered datagram is
// retained (grouped per member) until the transport closes, so a campaign
// of M sent bytes holds M bytes of sender memory. That is the deliberate
// trade for exactly-one-full-copy semantics without receiver-side
// cross-member coordination; senders that cannot afford it run the plain
// single-owner dispatch (DisableJournal) and accept losing the dead
// member's undelivered slice, exactly as the pre-membership design did.
//
// Concurrency: member state is a lock-free alive/failing/dead machine;
// the only mutex guards journal appends and is never held across I/O,
// sleeps, or probes (the mutexscope contract). Losing racers of the
// failover CAS do not block on the winner — they sleep-retry through
// Route, which the winner's MarkDown redirects.
package campaign

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"siren/internal/membership"
	"siren/internal/wire"
)

// Member dispatch states.
const (
	stateAlive int32 = iota
	stateFailing
	stateDead
)

// FailoverOptions tune a FailoverTransport.
type FailoverOptions struct {
	// DisableJournal turns off datagram journaling and with it the
	// replay-on-death guarantee (see the package comment for the memory
	// trade-off). Off by default: the byte-identity contract needs the
	// journal.
	DisableJournal bool
	// ProbeTimeout bounds each confirm-probe HTTP request (default 500ms).
	ProbeTimeout time.Duration
	// ProbeRetries is how many failed probes confirm a death (default 3).
	ProbeRetries int
	// Backoff paces probe retries and send re-attempts (default 20ms base,
	// 200ms cap, 0.2 jitter).
	Backoff membership.Backoff
	// MaxSendAttempts bounds one datagram's routing attempts across member
	// failures before Send gives up and counts a SendError (default 64).
	MaxSendAttempts int
	// ReportTimeout bounds each ReportDown request to a survivor (default
	// 2s).
	ReportTimeout time.Duration
	// Dial opens the per-member transport (default wire.DialUDP); tests
	// substitute in-process transports.
	Dial func(addr string) (wire.Transport, error)
}

func (o *FailoverOptions) defaults() {
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.ProbeRetries <= 0 {
		o.ProbeRetries = 3
	}
	if o.Backoff == (membership.Backoff{}) {
		o.Backoff = membership.Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond, Jitter: 0.2}
	}
	if o.MaxSendAttempts <= 0 {
		o.MaxSendAttempts = 64
	}
	if o.ReportTimeout <= 0 {
		o.ReportTimeout = 2 * time.Second
	}
	if o.Dial == nil {
		o.Dial = func(addr string) (wire.Transport, error) { return wire.DialUDP(addr) }
	}
}

// DispatchStats snapshots a FailoverTransport's counters.
type DispatchStats struct {
	Sent       uint64 // datagrams delivered to a live owner
	SendErrors uint64 // datagrams lost after exhausting every attempt
	Failovers  uint64 // members confirmed dead and failed over
	Replayed   uint64 // journal entries re-sent to new owners after a death
	Rerouted   uint64 // datagrams re-routed inline when their member sealed mid-send
	FalseAlarm uint64 // send errors whose member then answered a confirm-probe
}

// memberLink is one roster member's dispatch state.
type memberLink struct {
	idx   int
	m     membership.Member
	t     wire.Transport
	state atomic.Int32

	mu      sync.Mutex // guards journal+sealed only; never held across I/O
	journal [][]byte
	sealed  bool
}

// append journals one delivered datagram; false means the journal sealed
// (the member died) and the caller must re-route the datagram itself.
func (ml *memberLink) append(d []byte) bool {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	if ml.sealed {
		return false
	}
	ml.journal = append(ml.journal, append([]byte(nil), d...))
	return true
}

// seal marks the journal closed and hands the entries to the caller.
func (ml *memberLink) seal() [][]byte {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	ml.sealed = true
	out := ml.journal
	ml.journal = nil
	return out
}

// FailoverTransport routes datagrams to rendezvous owners with
// probe-confirmed failover and journal replay. It implements
// wire.Transport, so campaigns and collectors use it unchanged.
type FailoverTransport struct {
	view    *membership.View
	members []*memberLink
	opts    FailoverOptions

	sent       atomic.Uint64
	sendErrors atomic.Uint64
	failovers  atomic.Uint64
	replayed   atomic.Uint64
	rerouted   atomic.Uint64
	falseAlarm atomic.Uint64
}

// NewFailoverTransport dials every member of the view's roster. The view
// should be an observer view (membership.NewView(table, "")); deaths the
// transport confirms are marked in it.
func NewFailoverTransport(view *membership.View, opts FailoverOptions) (*FailoverTransport, error) {
	opts.defaults()
	t := view.Table()
	f := &FailoverTransport{view: view, opts: opts, members: make([]*memberLink, t.Len())}
	for i := 0; i < t.Len(); i++ {
		m := t.Member(i)
		tr, err := opts.Dial(m.UDPAddr)
		if err != nil {
			_ = f.Close() // unwind the already-dialed members
			return nil, fmt.Errorf("campaign: dialing member %s (%s): %w", m.ID, m.UDPAddr, err)
		}
		f.members[i] = &memberLink{idx: i, m: m, t: tr}
	}
	return f, nil
}

// Stats snapshots the dispatch counters.
func (f *FailoverTransport) Stats() DispatchStats {
	return DispatchStats{
		Sent:       f.sent.Load(),
		SendErrors: f.sendErrors.Load(),
		Failovers:  f.failovers.Load(),
		Replayed:   f.replayed.Load(),
		Rerouted:   f.rerouted.Load(),
		FalseAlarm: f.falseAlarm.Load(),
	}
}

// Send routes one datagram to the live owner of its (JOBID, HOST),
// following ownership across member deaths until it is delivered or
// MaxSendAttempts is exhausted.
func (f *FailoverTransport) Send(d []byte) error {
	job, host, scannable := wire.PartitionFields(d)
	var lastErr error
	for attempt := 0; attempt < f.opts.MaxSendAttempts; attempt++ {
		if attempt > 0 {
			// Pace retries; cap the exponent so a long outage retries
			// steadily instead of overflowing toward Backoff.Max^inf.
			exp := attempt - 1
			if exp > 4 {
				exp = 4
			}
			f.opts.Backoff.Sleep(exp, nil)
		}
		ml := f.route(job, host, scannable)
		if ml == nil {
			f.sendErrors.Add(1)
			return errors.New("campaign: no live members to route to")
		}
		if ml.state.Load() != stateAlive {
			// A racer is confirming this member; by the next attempt either
			// the view routes around it or it was a false alarm.
			lastErr = fmt.Errorf("campaign: member %s is failing", ml.m.ID)
			continue
		}
		if err := ml.t.Send(d); err != nil {
			// An errored send on a connected UDP socket never transmitted
			// the datagram (the pending socket error is returned instead),
			// so retrying cannot duplicate it.
			lastErr = err
			f.failMember(ml)
			continue
		}
		if !f.opts.DisableJournal && !ml.append(d) {
			// Sealed between our send and the journal append: the replay
			// does not cover this datagram, so re-route it ourselves. The
			// dying member may also have ingested it — that overlap is
			// exactly what merge-time dedup removes.
			f.rerouted.Add(1)
			lastErr = fmt.Errorf("campaign: member %s sealed mid-send", ml.m.ID)
			continue
		}
		f.sent.Add(1)
		return nil
	}
	f.sendErrors.Add(1)
	return fmt.Errorf("campaign: dropping datagram after %d attempts: %w", f.opts.MaxSendAttempts, lastErr)
}

// route picks the live owner's link. Unscannable datagrams (no parseable
// header) go to the lowest-indexed live member — every receiver counts
// them Malformed identically, so the choice only needs to be deterministic.
func (f *FailoverTransport) route(job, host []byte, scannable bool) *memberLink {
	if scannable {
		if _, owner := f.view.Route(job, host); owner >= 0 {
			return f.members[owner]
		}
		return nil
	}
	for _, ml := range f.members {
		if !f.view.Down(ml.idx) {
			return ml
		}
	}
	return nil
}

// failMember runs the failover protocol for a member whose send errored.
// Exactly one caller wins the CAS and resolves the incident; racers retry
// through Send's loop.
func (f *FailoverTransport) failMember(ml *memberLink) {
	if !ml.state.CompareAndSwap(stateAlive, stateFailing) {
		return
	}
	// Confirm death: a member that answers any probe is alive (a stale
	// ECONNREFUSED can surface after a receiver restart; don't evict on it).
	for p := 0; p < f.opts.ProbeRetries; p++ {
		if err := membership.ProbeLive(ml.m.HealthAddr, f.opts.ProbeTimeout); err == nil {
			ml.state.Store(stateAlive)
			f.falseAlarm.Add(1)
			return
		}
		f.opts.Backoff.Sleep(p, nil)
	}

	// Dead. Order matters: tell the survivors FIRST, so their admission
	// accepts the reassigned keys before any datagram is re-routed to them —
	// concurrent senders cannot race ahead, because the victim's keys only
	// leave it once MarkDownIndex below flips the view (until then their
	// Sends spin on the stateFailing check). Reporting after re-routing
	// would lose every row a stale survivor rejects in the window.
	for _, other := range f.members {
		if other.idx == ml.idx || f.view.Down(other.idx) {
			continue
		}
		// Best-effort: a survivor that cannot be reached right now will
		// still learn of the death from its own background prober.
		_ = membership.ReportDown(other.m.HealthAddr, ml.m.ID, f.opts.ReportTimeout)
	}
	f.view.MarkDownIndex(ml.idx)
	entries := ml.seal()
	ml.state.Store(stateDead)
	f.failovers.Add(1)
	for _, e := range entries {
		f.replayed.Add(1)
		// Re-routed through normal Send: the new owner journals it in turn,
		// so a second death keeps the guarantee.
		_ = f.Send(e)
	}
}

// Close closes every member transport.
func (f *FailoverTransport) Close() error {
	var errs []error
	for _, ml := range f.members {
		if ml == nil {
			continue
		}
		if err := ml.t.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

var _ wire.Transport = (*FailoverTransport)(nil)
