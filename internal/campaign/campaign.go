// Package campaign simulates SIREN's opt-in deployment campaign on a
// LUMI-like system: 12 users with the workload profiles of the paper's
// Table 2 submit jobs over a simulated three-month window; every process
// runs through the simulated Slurm runtime, gets the siren.so preload
// injected (when the job loaded the siren module), and streams collection
// messages to the configured transport.
//
// Workload counts are parameterised by Scale: at Scale=1 the campaign
// regenerates the paper's full magnitudes (≈13.4k jobs, ≈2.3M processes);
// the default Scale=0.02 preserves every ratio and ordering at 1/50 the
// volume. All generation is seeded and deterministic up to goroutine
// interleaving (which affects PIDs and timestamps, not analysis results).
package campaign

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"siren/internal/apps"
	"siren/internal/collector"
	"siren/internal/ldso"
	"siren/internal/lmod"
	"siren/internal/procfs"
	"siren/internal/pyenv"
	"siren/internal/slurm"
	"siren/internal/toolchain"
	"siren/internal/wire"
)

// DefaultScale is the default workload scale factor.
const DefaultScale = 0.02

// DefaultStartTime is 2024-12-11, the campaign's first day on LUMI.
const DefaultStartTime = 1733875200

// Config parameterises a campaign run.
type Config struct {
	// Scale multiplies all job counts (default DefaultScale; 1.0 = paper
	// magnitudes).
	Scale float64
	// Seed drives all pseudo-random decisions.
	Seed int64
	// Transport receives collection datagrams (required).
	Transport wire.Transport
	// Workers bounds concurrent job execution (default GOMAXPROCS).
	Workers int
	// StartTime is the campaign start (default DefaultStartTime).
	StartTime int64
}

// Result summarises a campaign run.
type Result struct {
	Catalog      *apps.Catalog
	Collector    *collector.Collector
	JobsRun      int
	ProcessesRun int
}

// StaticToolPath is a statically linked system tool installed by the
// campaign; the preload can never observe it (paper §2 limitation).
const StaticToolPath = "/usr/bin/ldconfig"

// runState is the shared world of one campaign execution.
type runState struct {
	cfg     Config
	cat     *apps.Catalog
	fs      *procfs.FS
	cache   *ldso.Cache
	cluster *slurm.Cluster
	rt      *slurm.Runtime
	col     *collector.Collector
	modsys  *lmod.System
	procs   atomic.Int64
}

// Run executes the campaign and returns its summary. The transport is not
// closed; the caller owns it.
func Run(cfg Config) (*Result, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("campaign: Transport is required")
	}
	if cfg.Scale <= 0 {
		cfg.Scale = DefaultScale
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.StartTime == 0 {
		cfg.StartTime = DefaultStartTime
	}

	st := &runState{cfg: cfg}
	st.fs = procfs.NewFS()
	st.cache = ldso.NewCache()
	cat, err := apps.Install(st.fs, st.cache, cfg.StartTime)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	st.cat = cat
	if err := st.installExtras(); err != nil {
		return nil, err
	}
	st.buildModules()

	st.cluster = slurm.NewCluster("lumi-sim", 64)
	st.col = collector.New(cfg.Transport)
	st.rt = slurm.NewRuntime(st.fs, procfs.NewTable(1<<21), st.cache, slurm.NewClock(cfg.StartTime))
	st.rt.Hook = st.col

	// Expand templates into concrete jobs.
	type jobUnit struct {
		tmpl   *template
		jobIdx int
		adjust float64
	}
	var units []jobUnit
	for _, tmpl := range templates() {
		t := tmpl
		scaled := scaleCount(t.jobs, cfg.Scale)
		adjust := float64(t.jobs) * cfg.Scale / float64(scaled)
		if adjust < 0.05 {
			adjust = 0.05
		}
		for j := 0; j < scaled; j++ {
			units = append(units, jobUnit{tmpl: &t, jobIdx: j, adjust: adjust})
		}
	}

	// Execute with a bounded worker pool (Effective Go: a buffered channel
	// as a semaphore).
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	errCh := make(chan error, 1)
	for _, u := range units {
		wg.Add(1)
		sem <- struct{}{}
		go func(u jobUnit) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := st.runJob(u.tmpl, u.jobIdx, u.adjust); err != nil {
				select {
				case errCh <- err:
				default:
				}
			}
		}(u)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	return &Result{
		Catalog:      cat,
		Collector:    st.col,
		JobsRun:      len(units),
		ProcessesRun: int(st.procs.Load()),
	}, nil
}

// scaleCount scales a full-magnitude count, keeping at least one.
func scaleCount(n int, scale float64) int {
	s := int(math.Round(float64(n) * scale))
	if s < 1 {
		s = 1
	}
	return s
}

// installExtras adds campaign-owned files: the static tool, the alternate
// PMI library for srun's third object-set variant, and all Python scripts.
func (st *runState) installExtras() error {
	art, err := toolchain.Compile(
		toolchain.Source{Name: "ldconfig", Version: "system", CodeKB: 8},
		toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE}, Static: true})
	if err != nil {
		return fmt.Errorf("campaign: building static tool: %w", err)
	}
	st.fs.Install(StaticToolPath, art.Binary, procfs.FileMeta{UID: 0, GID: 0, Mtime: st.cfg.StartTime - 86400*400})

	// A spack-provided PMI: jobs whose environment points at the spack tree
	// make srun load it — srun's third OBJECTS_H variant (Table 3).
	spackPMI := ldso.Library{Soname: "libpmi.so.0", Path: "/appl/spack/env/lib/libpmi.so.0"}
	st.cache.Register(spackPMI)
	st.fs.Install(spackPMI.Path, []byte("\x7fELF-shared-object\x00"+spackPMI.Path), procfs.FileMeta{})

	// Python input scripts for every python step of every template.
	for _, tmpl := range templates() {
		for _, stp := range tmpl.steps {
			if stp.python == "" {
				continue
			}
			for i := 0; i < stp.scriptCount; i++ {
				path := scriptPath(tmpl.user, tmpl.name, i)
				sc := pyenv.GenerateScript(path, int64(i)+st.cfg.Seed, stp.imports(i))
				st.fs.Install(path, sc.Content, procfs.FileMeta{
					UID: tmpl.uid, GID: tmpl.uid, Mtime: st.cfg.StartTime - int64(i)*3600,
				})
			}
		}
	}
	return nil
}

func scriptPath(user, tmplName string, i int) string {
	return fmt.Sprintf("/users/%s/scripts/%s_%02d.py", user, tmplName, i)
}

// buildModules populates the LMOD tree: the Cray PE stack, the siren opt-in
// module, and one module per catalogue application wiring its
// LD_LIBRARY_PATH.
func (st *runState) buildModules() {
	sys := lmod.NewSystem()
	sys.Add(lmod.Module{Name: "craype/2.7.30"})
	sys.Add(lmod.Module{Name: "craype/2.7.31"})
	sys.Add(lmod.Module{Name: "cce/17.0.1"})
	sys.Add(lmod.Module{Name: "PrgEnv-cray/8.5.0", Deps: []string{"craype/2.7.30", "cce/17.0.1"}})
	sys.Add(lmod.Module{Name: "cray-hdf5/1.12.2"})
	sys.Add(lmod.Module{Name: "cray-netcdf/4.9.0", Deps: []string{"cray-hdf5/1.12.2"}})
	sys.Add(lmod.Module{Name: "rocm/6.0.3"})
	sys.Add(lmod.Module{Name: "cray-pmi-exp/6.1", Prepend: map[string]string{"LD_LIBRARY_PATH": "/opt/cray/pe/pmi-exp/lib"}})
	sys.Add(lmod.Module{Name: "spack-env/23.09", Prepend: map[string]string{"LD_LIBRARY_PATH": "/appl/spack/env/lib"}})
	sys.Add(lmod.Module{Name: "siren/1.0", Setenv: map[string]string{"LD_PRELOAD": apps.SirenSOPath}})
	for _, app := range st.cat.Apps {
		name := "app-" + app.Label
		var prep map[string]string
		if env := appEnvOf(st.cat, app.Label); env["LD_LIBRARY_PATH"] != "" {
			prep = map[string]string{"LD_LIBRARY_PATH": env["LD_LIBRARY_PATH"]}
		}
		sys.Add(lmod.Module{Name: name + "/1.0", Prepend: prep})
	}
	st.modsys = sys
}

func appEnvOf(cat *apps.Catalog, label string) map[string]string {
	if a := cat.App(label); a != nil {
		return a.Env()
	}
	return map[string]string{}
}
