package campaign

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"siren/internal/membership"
	"siren/internal/wire"
)

// fakeMemberTransport is one member's in-process ingest: it records
// delivered datagrams and can be "killed" so later sends error like a
// connected UDP socket picking up ECONNREFUSED.
type fakeMemberTransport struct {
	mu   sync.Mutex
	got  [][]byte
	dead bool
}

func (ft *fakeMemberTransport) Send(d []byte) error {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if ft.dead {
		return errors.New("write: connection refused")
	}
	ft.got = append(ft.got, append([]byte(nil), d...))
	return nil
}

func (ft *fakeMemberTransport) Close() error { return nil }

func (ft *fakeMemberTransport) kill() {
	ft.mu.Lock()
	ft.dead = true
	ft.mu.Unlock()
}

func (ft *fakeMemberTransport) contents() map[string]int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	out := make(map[string]int, len(ft.got))
	for _, d := range ft.got {
		out[string(d)]++
	}
	return out
}

// dispatchWorld builds a 3-member roster with fake transports and, for the
// victim member, a health endpoint that can be shut down.
type dispatchWorld struct {
	tbl   *membership.Table
	view  *membership.View
	ft    *FailoverTransport
	fakes []*fakeMemberTransport
	// health servers by member index (nil = none)
	health []*httptest.Server
}

func newDispatchWorld(t *testing.T, opts FailoverOptions) *dispatchWorld {
	t.Helper()
	w := &dispatchWorld{fakes: make([]*fakeMemberTransport, 3), health: make([]*httptest.Server, 3)}
	members := make([]membership.Member, 3)
	for i := range members {
		w.fakes[i] = &fakeMemberTransport{}
		w.health[i] = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			rw.WriteHeader(http.StatusOK)
		}))
		members[i] = membership.Member{
			ID:         fmt.Sprintf("r%d", i),
			UDPAddr:    fmt.Sprintf("fake:%d", i),
			HealthAddr: strings.TrimPrefix(w.health[i].URL, "http://"),
		}
	}
	tbl, err := membership.NewTable(members)
	if err != nil {
		t.Fatal(err)
	}
	view, err := membership.NewView(tbl, "")
	if err != nil {
		t.Fatal(err)
	}
	w.tbl, w.view = tbl, view
	opts.Dial = func(addr string) (wire.Transport, error) {
		var i int
		if _, err := fmt.Sscanf(addr, "fake:%d", &i); err != nil {
			return nil, err
		}
		return w.fakes[i], nil
	}
	ft, err := NewFailoverTransport(view, opts)
	if err != nil {
		t.Fatal(err)
	}
	w.ft = ft
	t.Cleanup(func() {
		ft.Close()
		for _, h := range w.health {
			if h != nil {
				h.Close()
			}
		}
	})
	return w
}

func dg(job, host string, pid int) []byte {
	return wire.Encode(wire.Message{
		Header: wire.Header{
			JobID: job, StepID: "0", PID: pid, Hash: "beef", Host: host,
			Time: 1733900000, Layer: wire.LayerSelf, Type: wire.TypeMetadata, Seq: 0, Total: 1,
		},
		Content: []byte(fmt.Sprintf("EXE=/bin/x-%s-%s-%d", job, host, pid)),
	})
}

// TestDispatchRoutesToOwner: with everyone alive, each datagram lands on
// exactly its rendezvous owner.
func TestDispatchRoutesToOwner(t *testing.T) {
	w := newDispatchWorld(t, FailoverOptions{})
	var sent int
	for j := 0; j < 30; j++ {
		if err := w.ft.Send(dg(fmt.Sprintf("job-%d", j), "nid000001", 100+j)); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	total := 0
	for i, f := range w.fakes {
		for d := range f.contents() {
			job, host, ok := wire.PartitionFields([]byte(d))
			if !ok {
				t.Fatal("unscannable test datagram")
			}
			if owner := w.tbl.RankedOwners(job, host)[0]; owner != i {
				t.Errorf("datagram for owner %d landed on member %d", owner, i)
			}
			total++
		}
	}
	if total != sent {
		t.Fatalf("delivered %d datagrams, want %d", total, sent)
	}
	st := w.ft.Stats()
	if st.Sent != uint64(sent) || st.Failovers != 0 || st.SendErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDispatchFailoverReplaysJournal kills one member mid-stream and checks
// the guarantee the e2e relies on: after failover, the union of surviving
// members holds every datagram ever delivered, with the dead member's
// journal replayed to the keys' new owners exactly once.
func TestDispatchFailoverReplaysJournal(t *testing.T) {
	w := newDispatchWorld(t, FailoverOptions{
		ProbeTimeout: 200 * time.Millisecond,
		ProbeRetries: 2,
		Backoff:      membership.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
	})

	// Pick a victim that owns at least one of the first-phase keys.
	var all [][]byte
	for j := 0; j < 40; j++ {
		all = append(all, dg(fmt.Sprintf("job-%d", j), "nid000001", 100+j))
	}
	victim := -1
	for _, d := range all {
		job, host, _ := wire.PartitionFields(d)
		victim = w.tbl.RankedOwners(job, host)[0]
		break
	}

	// Phase 1: everyone alive.
	for _, d := range all[:20] {
		if err := w.ft.Send(d); err != nil {
			t.Fatal(err)
		}
	}
	preKill := len(w.fakes[victim].contents())
	if preKill == 0 {
		t.Fatal("victim owns none of phase 1; widen the corpus")
	}

	// Kill the victim: transport errors and health endpoint gone.
	w.fakes[victim].kill()
	w.health[victim].Close()

	// Phase 2: sends route around the corpse, triggering failover on the
	// first datagram the victim owns.
	for _, d := range all[20:] {
		if err := w.ft.Send(d); err != nil {
			t.Fatal(err)
		}
	}

	st := w.ft.Stats()
	if st.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1 (stats %+v)", st.Failovers, st)
	}
	if st.Replayed != uint64(preKill) {
		t.Fatalf("Replayed = %d, want the victim's %d journaled datagrams", st.Replayed, preKill)
	}
	if st.SendErrors != 0 {
		t.Fatalf("SendErrors = %d, want 0 (stats %+v)", st.SendErrors, st)
	}
	if !w.view.Down(victim) {
		t.Fatal("victim not marked down in the sender view")
	}

	// The union of survivors holds every datagram exactly once.
	union := make(map[string]int)
	for i, f := range w.fakes {
		if i == victim {
			continue
		}
		for d, n := range f.contents() {
			union[d] += n
		}
	}
	for _, d := range all {
		if union[string(d)] != 1 {
			t.Fatalf("datagram %q delivered %d times to survivors, want exactly 1", d[:40], union[string(d)])
		}
	}
	// And nothing but those datagrams.
	if len(union) != len(all) {
		t.Fatalf("survivors hold %d distinct datagrams, want %d", len(union), len(all))
	}

	// Post-failover routing agrees with the shrunken view.
	for i, f := range w.fakes {
		if i == victim {
			continue
		}
		for d := range f.contents() {
			job, host, _ := wire.PartitionFields([]byte(d))
			if _, owner := w.view.Route(job, host); owner != i {
				t.Errorf("datagram owned by %d rests on member %d", owner, i)
			}
		}
	}
}

// TestDispatchFalseAlarm: a transient send error against a member whose
// health endpoint still answers must NOT evict it.
func TestDispatchFalseAlarm(t *testing.T) {
	w := newDispatchWorld(t, FailoverOptions{
		ProbeTimeout: 200 * time.Millisecond,
		ProbeRetries: 2,
		Backoff:      membership.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
	})
	d := dg("job-1", "nid000001", 1)
	job, host, _ := wire.PartitionFields(d)
	owner := w.tbl.RankedOwners(job, host)[0]

	// One-shot failure: error once, then deliver (health stays up).
	failed := false
	inner := w.fakes[owner]
	w.ft.members[owner].t = transportFunc(func(dd []byte) error {
		if !failed {
			failed = true
			return errors.New("sendto: no buffer space available")
		}
		return inner.Send(dd)
	})

	if err := w.ft.Send(d); err != nil {
		t.Fatal(err)
	}
	st := w.ft.Stats()
	if st.FalseAlarm != 1 || st.Failovers != 0 {
		t.Fatalf("stats = %+v, want FalseAlarm=1 Failovers=0", st)
	}
	if w.view.Down(owner) {
		t.Fatal("live member evicted on a transient send error")
	}
	if inner.contents()[string(d)] != 1 {
		t.Fatal("datagram not delivered after the false alarm")
	}
}

// transportFunc adapts a function to wire.Transport.
type transportFunc func([]byte) error

func (f transportFunc) Send(d []byte) error { return f(d) }
func (f transportFunc) Close() error        { return nil }

// TestDispatchAllDead: every member dead → Send errors out and counts it.
func TestDispatchAllDead(t *testing.T) {
	w := newDispatchWorld(t, FailoverOptions{
		ProbeTimeout:    100 * time.Millisecond,
		ProbeRetries:    1,
		MaxSendAttempts: 5,
		Backoff:         membership.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	for i := range w.fakes {
		w.fakes[i].kill()
		w.health[i].Close()
	}
	if err := w.ft.Send(dg("job-1", "nid000001", 1)); err == nil {
		t.Fatal("Send succeeded with every member dead")
	}
	if st := w.ft.Stats(); st.SendErrors == 0 {
		t.Fatalf("stats = %+v, want SendErrors > 0", st)
	}
}

// TestDispatchConcurrentSendersOneDeath: many goroutines sending while one
// member dies — exactly one failover, no datagram lost, none duplicated to
// survivors. Run with -race.
func TestDispatchConcurrentSendersOneDeath(t *testing.T) {
	w := newDispatchWorld(t, FailoverOptions{
		ProbeTimeout: 200 * time.Millisecond,
		ProbeRetries: 2,
		Backoff:      membership.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
	})

	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	var once sync.Once
	var victim int
	// Find some member to kill partway through.
	d0 := dg("job-0", "nid000001", 0)
	job, host, _ := wire.PartitionFields(d0)
	victim = w.tbl.RankedOwners(job, host)[0]

	errCh := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if g == 0 && i == perG/2 {
					once.Do(func() {
						w.fakes[victim].kill()
						w.health[victim].Close()
					})
				}
				if err := w.ft.Send(dg(fmt.Sprintf("job-%d-%d", g, i), "nid000001", i)); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := w.ft.Stats()
	if st.Failovers != 1 {
		t.Fatalf("Failovers = %d, want exactly 1 (stats %+v)", st.Failovers, st)
	}
	if st.SendErrors != 0 {
		t.Fatalf("SendErrors = %d (stats %+v)", st.SendErrors, st)
	}

	// Survivors hold every sent datagram at most... exactly once each for
	// all delivered+journal-replayed traffic; the victim's pre-kill copies
	// overlap by design (they're what dedup removes at merge time).
	union := make(map[string]int)
	for i, f := range w.fakes {
		if i == victim {
			continue
		}
		for d, n := range f.contents() {
			union[d] += n
		}
	}
	for d, n := range union {
		if n != 1 {
			t.Fatalf("datagram %q delivered %d times to survivors", d[:40], n)
		}
	}
	if len(union) != goroutines*perG {
		t.Fatalf("survivors hold %d distinct datagrams, want %d", len(union), goroutines*perG)
	}
}
