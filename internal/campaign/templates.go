package campaign

// The 12-user workload of the paper's Table 2, expressed as job templates.
// Full-scale job counts and per-job process multiplicities approximate the
// published magnitudes; orderings and category mixes match exactly:
//
//	user_1  11782 jobs  system-only data mover (mkdir/rm storms)
//	user_2    930 jobs  miniconda + GROMACS + LAMMPS + user gzip
//	user_3      2 jobs  small system-only jobs
//	user_4    205 jobs  python3.6/3.11 + GROMACS + system-heavy staging
//	user_5     47 jobs  python3.10 (srun-launched, no bash)
//	user_6      2 jobs  RadRad launched directly: no system executables
//	user_7      1 job   one LAMMPS run
//	user_8    216 jobs  icon rebuild campaign + the UNKNOWN a.out + misc
//	user_9      4 jobs  alexandria (srun, no bash)
//	user_10    28 jobs  amber with heavy staging
//	user_11   230 jobs  janko + system jobs
//	user_12     1 job   a single python3.10 script
type template struct {
	name    string
	user    string
	uid     uint32
	jobs    int    // full-scale job count
	jobName string // user-chosen Slurm job name (arbitrary, unreliable)
	useBash bool   // job script runs under a root bash
	modules []string
	// moduleVariants, when set, overrides modules per job (jobIdx modulo) —
	// the source of the declining MO_H scores in Table 7.
	moduleVariants [][]string
	extraEnv       map[string]string // exported by the user's shell profile
	steps          []step
}

// step is one component of a job script. Exactly one of util, execPair[0],
// app, python, or static selects the kind.
type step struct {
	// System utility runs.
	util   string
	perJob float64

	// exec() pair: first exe replaces itself with the second (same PID).
	execPair [2]string

	// Application processes.
	app       string // catalogue label
	ranks     int    // srun task count; ranks>1 exercises the PROCID gate
	stride    int    // variant rotation stride across jobs (default 1)
	spread    int    // variant rotation stride across procs within a job (default 1)
	fixedVar  int    // fixed variant index; -1 rotates
	container bool   // run inside a container (preload invisible)
	viaSrun   bool   // launched through an srun process

	// Python interpreter runs.
	python      string // interpreter version
	scriptCount int    // distinct input scripts across the template's jobs
	importsFn   func(i int) []string

	// Statically linked tool (never collected).
	static bool
}

func (s step) imports(i int) []string {
	if s.importsFn == nil {
		return nil
	}
	return s.importsFn(i)
}

// rotate returns base plus k elements of pool starting at offset i.
func rotate(base []string, pool []string, i, k int) []string {
	out := append([]string(nil), base...)
	for j := 0; j < k; j++ {
		out = append(out, pool[(i+j)%len(pool)])
	}
	return out
}

var pyBase = []string{"heapq", "struct", "math"}

func templates() []template {
	sirenMods := func(mods ...string) []string {
		return append(mods, "siren/1.0")
	}
	return []template{
		{
			name: "datamover", user: "user_1", uid: 1001, jobs: 11782,
			jobName: "copy.sh", useBash: true, modules: sirenMods(),
			steps: []step{
				{util: "bash", perJob: 10},
				{execPair: [2]string{"/usr/bin/bash", "/usr/bin/mkdir"}, perJob: 1},
				{util: "mkdir", perJob: 45},
				{util: "rm", perJob: 44},
				{util: "cat", perJob: 2},
				{static: true, perJob: 1},
			},
		},
		{
			name: "conda", user: "user_2", uid: 1002, jobs: 673,
			jobName: "env-build", useBash: true,
			modules: sirenMods("spack-env/23.09"),
			steps: []step{
				{util: "bash", perJob: 1},
				{util: "lua5.3", perJob: 8},
				{util: "srun", perJob: 1},
				{util: "rm", perJob: 1},
				{app: "miniconda", perJob: 7.5, ranks: 1, stride: 3, fixedVar: -1},
			},
		},
		{
			name: "gmx2", user: "user_2", uid: 1002, jobs: 150,
			jobName: "md_prod", useBash: true,
			modules: sirenMods("PrgEnv-cray/8.5.0", "app-GROMACS/1.0"),
			steps: []step{
				{util: "bash", perJob: 1},
				{util: "lua5.3", perJob: 12},
				{util: "srun", perJob: 3},
				{util: "uname", perJob: 24},
				{util: "grep", perJob: 8},
				{util: "ls", perJob: 6},
				{util: "cp", perJob: 11},
				{app: "GROMACS", perJob: 10, ranks: 4, fixedVar: 0, viaSrun: true},
			},
		},
		{
			name: "lmp2", user: "user_2", uid: 1002, jobs: 89,
			jobName: "melt", useBash: true,
			modules: sirenMods("PrgEnv-cray/8.5.0", "app-LAMMPS/1.0"),
			steps: []step{
				{util: "bash", perJob: 1},
				{util: "lua5.3", perJob: 10},
				{util: "srun", perJob: 1},
				{app: "LAMMPS", perJob: 2.5, ranks: 4, stride: 1, fixedVar: -1, viaSrun: true},
			},
		},
		{
			name: "gzip2", user: "user_2", uid: 1002, jobs: 18,
			jobName: "pack", useBash: true, modules: sirenMods(),
			steps: []step{
				{util: "bash", perJob: 1},
				{util: "ls", perJob: 2},
				{app: "gzip", perJob: 1.05, ranks: 1, fixedVar: 0},
			},
		},
		{
			name: "sys3", user: "user_3", uid: 1003, jobs: 2,
			jobName: "check", useBash: true, modules: sirenMods(),
			steps: []step{
				{util: "bash", perJob: 1},
				{util: "srun", perJob: 1},
				{util: "cat", perJob: 3},
			},
		},
		{
			name: "py36", user: "user_4", uid: 1004, jobs: 28,
			jobName: "ensemble", useBash: true,
			modules: sirenMods("PrgEnv-cray/8.5.0"),
			steps: []step{
				{util: "bash", perJob: 2},
				{util: "lua5.3", perJob: 10},
				{util: "srun", perJob: 2},
				{util: "rm", perJob: 20},
				{util: "mkdir", perJob: 30},
				{util: "cat", perJob: 50},
				{python: "3.6", perJob: 531, scriptCount: 6, importsFn: func(i int) []string {
					return rotate(append(pyBase, "select", "posixsubprocess", "mpi4py", "numpy"),
						[]string{"scipy", "pickle", "json", "socket", "multiprocessing", "random"}, i, 3)
				}},
			},
		},
		{
			name: "py311", user: "user_4", uid: 1004, jobs: 8,
			jobName: "train", useBash: true,
			modules: sirenMods("PrgEnv-cray/8.5.0"),
			steps: []step{
				{util: "bash", perJob: 2},
				{util: "lua5.3", perJob: 10},
				{util: "srun", perJob: 1},
				{python: "3.11", perJob: 1050, scriptCount: 5, importsFn: func(i int) []string {
					return rotate(append(pyBase, "numpy", "pandas", "hashlib"),
						[]string{"blake2", "sha512", "sha3", "zlib", "bz2", "lzma", "mmap", "queue"}, i, 3)
				}},
			},
		},
		{
			name: "gmx4", user: "user_4", uid: 1004, jobs: 65,
			jobName: "md_scale", useBash: true,
			modules: sirenMods("PrgEnv-cray/8.5.0", "app-GROMACS/1.0"),
			steps: []step{
				{util: "bash", perJob: 1},
				{util: "lua5.3", perJob: 12},
				{util: "srun", perJob: 3},
				{util: "uname", perJob: 24},
				{util: "grep", perJob: 8},
				{util: "ls", perJob: 6},
				{util: "cp", perJob: 11},
				{util: "mkdir", perJob: 20},
				{app: "GROMACS", perJob: 10, ranks: 4, fixedVar: 0, viaSrun: true},
			},
		},
		{
			name: "stage4", user: "user_4", uid: 1004, jobs: 104,
			jobName: "stage", useBash: true, modules: sirenMods(),
			steps: []step{
				{util: "bash", perJob: 20},
				{util: "mkdir", perJob: 2500},
				{util: "rm", perJob: 2400},
				{util: "cat", perJob: 80},
				{util: "grep", perJob: 10},
			},
		},
		{
			name: "py310", user: "user_5", uid: 1005, jobs: 29,
			jobName: "plot", useBash: false,
			modules: sirenMods(),
			steps: []step{
				{util: "srun", perJob: 1},
				{util: "lua5.3", perJob: 2},
				{util: "cat", perJob: 1},
				{python: "3.10", perJob: 1, scriptCount: 27, importsFn: func(i int) []string {
					return rotate(pyBase,
						[]string{"csv", "ctypes", "datetime", "decimal", "grp", "json", "mmap",
							"opcode", "pandas", "pickle", "queue", "random", "sha512", "socket",
							"unicodedata", "zoneinfo", "sha3", "bisect", "cmath", "blake2",
							"hashlib", "bz2", "lzma", "zlib", "fcntl", "array", "binascii"}, i, 4)
				}},
			},
		},
		{
			name: "sys5", user: "user_5", uid: 1005, jobs: 18,
			jobName: "probe", useBash: false, modules: sirenMods(),
			steps: []step{
				{util: "srun", perJob: 1},
				{util: "cat", perJob: 1},
			},
		},
		{
			// user_6 launches the application binary directly: no bash, no
			// srun, no lua — the Table 2 row with zero system processes.
			// Opt-in happens via shell-profile exports, not the module.
			name: "radrad", user: "user_6", uid: 1006, jobs: 2,
			jobName: "a.out", useBash: false, modules: nil,
			extraEnv: map[string]string{
				"LD_PRELOAD":      "/opt/siren/lib/siren.so",
				"LD_LIBRARY_PATH": "", // filled by app env at execution
			},
			steps: []step{
				{app: "RadRad", perJob: 1, ranks: 1, stride: 1, fixedVar: -1},
			},
		},
		{
			name: "lmp7", user: "user_7", uid: 1007, jobs: 1,
			jobName: "bench", useBash: true,
			modules: sirenMods("PrgEnv-cray/8.5.0", "app-LAMMPS/1.0"),
			steps: []step{
				{util: "bash", perJob: 2},
				{util: "lua5.3", perJob: 4},
				{util: "srun", perJob: 1},
				{util: "cat", perJob: 8},
				{util: "uname", perJob: 2},
				{app: "LAMMPS", perJob: 1, ranks: 4, fixedVar: 4, viaSrun: true},
			},
		},
		{
			name: "icon", user: "user_8", uid: 1008, jobs: 64,
			jobName: "exp_hist", useBash: true,
			// Per-job module drift (version bumps, extra rocm) produces the
			// declining MO_H band of Table 7.
			moduleVariants: [][]string{
				sirenMods("PrgEnv-cray/8.5.0", "cray-netcdf/4.9.0", "app-icon/1.0"),
				sirenMods("craype/2.7.31", "PrgEnv-cray/8.5.0", "cray-netcdf/4.9.0", "app-icon/1.0"),
				sirenMods("PrgEnv-cray/8.5.0", "cray-netcdf/4.9.0", "rocm/6.0.3", "app-icon/1.0"),
			},
			steps: []step{
				{util: "bash", perJob: 2},
				{util: "lua5.3", perJob: 8},
				{util: "srun", perJob: 3},
				{util: "rm", perJob: 2},
				{util: "ls", perJob: 2},
				{util: "mkdir", perJob: 3},
				{util: "cat", perJob: 4},
				// spread 14 walks the whole 175-variant space even in a
				// single job (gcd(14,175)=7, combined with the job stride
				// 10 every variant is eventually exercised).
				{app: "icon", perJob: 9.8, ranks: 2, stride: 10, spread: 14, fixedVar: -1, viaSrun: true},
			},
		},
		{
			// The Table 7 subject: icon builds under a nondescript a.out.
			// The job loads the *same* modules as the icon jobs (the user
			// copy-pasted their own job script), so the closest icon
			// instance matches at MO_H=100; the environment additionally
			// pulls libtinfo from /pfs/SW — the third bash variant of
			// Table 4.
			name: "unknown", user: "user_8", uid: 1008, jobs: 3,
			jobName: "run.sh", useBash: true,
			modules:  sirenMods("PrgEnv-cray/8.5.0", "cray-netcdf/4.9.0", "app-icon/1.0"),
			extraEnv: map[string]string{"LD_LIBRARY_PATH": "/pfs/SW/env/lib"},
			steps: []step{
				{util: "bash", perJob: 2},
				{util: "srun", perJob: 1},
				{app: "UNKNOWN", perJob: 5.7, ranks: 2, stride: 3, fixedVar: -1, viaSrun: true},
			},
		},
		{
			name: "sys8", user: "user_8", uid: 1008, jobs: 149,
			jobName: "post", useBash: true, modules: sirenMods("app-icon/1.0"),
			steps: []step{
				{util: "bash", perJob: 2},
				{util: "cat", perJob: 10},
				{util: "ls", perJob: 5},
				{util: "mkdir", perJob: 5},
				// A containerised icon run: LD_PRELOAD propagates into the
				// container but siren.so is not mounted — never collected.
				{app: "icon", perJob: 1, ranks: 1, fixedVar: 0, container: true},
			},
		},
		{
			name: "alex", user: "user_9", uid: 1009, jobs: 2,
			jobName: "fit", useBash: false,
			modules: sirenMods("PrgEnv-cray/8.5.0", "app-alexandria/1.0"),
			steps: []step{
				{util: "srun", perJob: 1},
				{util: "lua5.3", perJob: 6},
				{app: "alexandria", perJob: 2, ranks: 1, fixedVar: 0, viaSrun: true},
			},
		},
		{
			name: "sys9", user: "user_9", uid: 1009, jobs: 2,
			jobName: "io", useBash: false, modules: sirenMods(),
			steps: []step{
				{util: "srun", perJob: 1},
				{util: "lua5.3", perJob: 1},
			},
		},
		{
			name: "amber", user: "user_10", uid: 1010, jobs: 27,
			jobName: "md_amber", useBash: true,
			// cray-pmi-exp redirects srun's PMI — srun's third OBJECTS_H
			// variant in Table 3.
			modules: sirenMods("PrgEnv-cray/8.5.0", "rocm/6.0.3", "cray-pmi-exp/6.1", "app-amber/1.0"),
			steps: []step{
				{util: "bash", perJob: 3},
				{util: "lua5.3", perJob: 10},
				{util: "srun", perJob: 4},
				{util: "rm", perJob: 30},
				{util: "mkdir", perJob: 40},
				{util: "uname", perJob: 24},
				{util: "grep", perJob: 10},
				{util: "ls", perJob: 6},
				{util: "cp", perJob: 10},
				{app: "amber", perJob: 33, ranks: 4, stride: 1, fixedVar: -1, viaSrun: true},
			},
		},
		{
			name: "sys10", user: "user_10", uid: 1010, jobs: 1,
			jobName: "clean", useBash: true, modules: sirenMods(),
			steps: []step{
				{util: "bash", perJob: 2},
				{util: "rm", perJob: 10},
			},
		},
		{
			name: "janko", user: "user_11", uid: 1011, jobs: 138,
			jobName: "solve", useBash: true,
			modules: sirenMods("PrgEnv-cray/8.5.0", "spack-env/23.09", "app-janko/1.0"),
			steps: []step{
				{util: "bash", perJob: 1},
				{util: "lua5.3", perJob: 6},
				{util: "srun", perJob: 1},
				{util: "uname", perJob: 2},
				{util: "grep", perJob: 2},
				{util: "ls", perJob: 1},
				{util: "rm", perJob: 3},
				{app: "janko", perJob: 1, ranks: 1, stride: 1, fixedVar: -1, viaSrun: true},
			},
		},
		{
			name: "sys11", user: "user_11", uid: 1011, jobs: 92,
			jobName: "tidy", useBash: true, modules: sirenMods(),
			steps: []step{
				{util: "bash", perJob: 1},
				{util: "rm", perJob: 5},
				{util: "uname", perJob: 2},
				{util: "ls", perJob: 1},
			},
		},
		{
			name: "py12", user: "user_12", uid: 1012, jobs: 1,
			jobName: "hello", useBash: false, modules: sirenMods(),
			steps: []step{
				{util: "srun", perJob: 1},
				{util: "hostname", perJob: 1},
				{python: "3.10", perJob: 1, scriptCount: 1, importsFn: func(i int) []string {
					return pyBase
				}},
			},
		},
	}
}
