// Package pyenv models Python interpreters, input scripts, and the
// memory-mapped package extensions from which SIREN recovers imported
// packages.
//
// Python defeats executable-name identification: every Python job shows up
// as e.g. /usr/bin/python3.10 regardless of what it computes. SIREN's answer
// (paper §4.4) is to record the interpreter's memory-mapped files — compiled
// C extensions like _heapq.cpython-310-x86_64-linux-gnu.so or
// numpy/core/_multiarray_umath...so — and post-process them back into
// package names, plus to fuzzy-hash the input script itself (SCRIPT_H).
package pyenv

import (
	"fmt"
	"sort"
	"strings"

	"siren/internal/procfs"
	"siren/internal/xxhash"
)

// Interpreter is one installed Python.
type Interpreter struct {
	Version string // "3.10"
	Path    string // "/usr/bin/python3.10"
	LibDir  string // "/usr/lib64/python3.10"
}

// Executable reports the basename SIREN sees, e.g. "python3.10".
func (it Interpreter) Executable() string {
	if i := strings.LastIndexByte(it.Path, '/'); i >= 0 {
		return it.Path[i+1:]
	}
	return it.Path
}

// stdlibExtensions are packages shipped as compiled extensions in
// lib-dynload; importing them maps a .so into the interpreter. The leading
// underscore (CPython convention for the C half of a module) is stripped
// during post-processing, matching the names in the paper's Figure 3.
var stdlibExtensions = map[string]string{
	"heapq": "_heapq", "struct": "_struct", "math": "math",
	"posixsubprocess": "_posixsubprocess", "select": "select",
	"blake2": "_blake2", "hashlib": "_hashlib", "bz2": "_bz2",
	"lzma": "_lzma", "zlib": "zlib", "fcntl": "fcntl", "array": "array",
	"binascii": "binascii", "bisect": "_bisect", "cmath": "cmath",
	"csv": "_csv", "ctypes": "_ctypes", "datetime": "_datetime",
	"decimal": "_decimal", "grp": "grp", "json": "_json", "mmap": "mmap",
	"multiprocessing": "_multiprocessing", "opcode": "_opcode",
	"pickle": "_pickle", "queue": "_queue", "random": "_random",
	"sha512": "_sha512", "socket": "_socket", "unicodedata": "unicodedata",
	"zoneinfo": "_zoneinfo", "sha3": "_sha3",
}

// sitePackages are third-party packages installed under site-packages;
// their extension modules live in a package-named directory.
var sitePackages = map[string]string{
	"numpy":  "numpy/core/_multiarray_umath",
	"pandas": "pandas/_libs/lib",
	"scipy":  "scipy/linalg/_fblas",
	"mpi4py": "mpi4py/MPI",
	"torch":  "torch/_C",
}

// KnownPackages lists every package name the simulation can map, sorted.
func KnownPackages() []string {
	out := make([]string, 0, len(stdlibExtensions)+len(sitePackages))
	for p := range stdlibExtensions {
		out = append(out, p)
	}
	for p := range sitePackages {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Script is a synthetic Python input script.
type Script struct {
	Path    string
	Content []byte
	Imports []string
}

// GenerateScript produces a deterministic synthetic script that imports the
// given packages. The body varies with name and seed so distinct scripts get
// distinct SCRIPT_H fuzzy hashes, while edited versions of the same script
// (same name, nearby seed content) stay similar.
func GenerateScript(path string, seed int64, imports []string) Script {
	var sb strings.Builder
	sb.WriteString("#!/usr/bin/env python3\n")
	sb.WriteString("# generated analysis driver\n")
	for _, im := range imports {
		fmt.Fprintf(&sb, "import %s\n", im)
	}
	sb.WriteString("\n\ndef main():\n")
	// Deterministic body: a few dozen pseudo-statements derived from seed.
	h := uint64(seed)
	for i := 0; i < 40; i++ {
		h = xxhash.Sum64Seed([]byte(path), h)
		fmt.Fprintf(&sb, "    x_%d = compute_%d(%d)\n", i, h%17, h%1000)
	}
	sb.WriteString("\n\nif __name__ == '__main__':\n    main()\n")
	return Script{Path: path, Content: []byte(sb.String()), Imports: append([]string(nil), imports...)}
}

// ExtensionPath returns the on-disk .so path that importing pkg maps into
// interpreter it, and whether the package is known.
func ExtensionPath(it Interpreter, pkg string) (string, bool) {
	tag := "cpython-" + strings.ReplaceAll(it.Version, ".", "") + "-x86_64-linux-gnu"
	if ext, ok := stdlibExtensions[pkg]; ok {
		return fmt.Sprintf("%s/lib-dynload/%s.%s.so", it.LibDir, ext, tag), true
	}
	if ext, ok := sitePackages[pkg]; ok {
		return fmt.Sprintf("%s/site-packages/%s.%s.so", it.LibDir, ext, tag), true
	}
	return "", false
}

// MapRegions synthesises the memory-map regions that importing the given
// packages adds to an interpreter process.
func MapRegions(it Interpreter, imports []string, baseAddr uint64) []procfs.Region {
	var out []procfs.Region
	addr := baseAddr
	for _, pkg := range imports {
		path, ok := ExtensionPath(it, pkg)
		if !ok {
			continue // pure-Python module: no mapped extension
		}
		size := uint64(0x8000 + xxhash.Sum64String(pkg)%0x40000&^0xFFF)
		out = append(out, procfs.Region{
			Start: addr, End: addr + size, Perms: "r-xp", Dev: "fd:00",
			Inode: xxhash.Sum64String(path) % 1 << 20, Path: path,
		})
		addr += size + 0x10000
	}
	return out
}

// ExtractImports recovers package names from an interpreter's memory map —
// SIREN's post-processing step. It returns the distinct names sorted.
//
// Recognition: files under a pythonX.Y lib directory, either in lib-dynload
// (stdlib extension; strip the leading underscore and the cpython suffix) or
// under site-packages (take the first path component = distribution name).
func ExtractImports(regions []procfs.Region) []string {
	seen := make(map[string]bool)
	for _, path := range procfs.MappedPaths(regions) {
		name, ok := packageFromPath(path)
		if ok {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func packageFromPath(path string) (string, bool) {
	if !strings.Contains(path, "/python") || !strings.HasSuffix(path, ".so") {
		return "", false
	}
	if i := strings.Index(path, "/lib-dynload/"); i >= 0 {
		base := path[i+len("/lib-dynload/"):]
		if j := strings.IndexByte(base, '.'); j >= 0 {
			base = base[:j]
		}
		return strings.TrimPrefix(base, "_"), base != ""
	}
	if i := strings.Index(path, "/site-packages/"); i >= 0 {
		rest := path[i+len("/site-packages/"):]
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			return rest[:j], true
		}
		if j := strings.IndexByte(rest, '.'); j >= 0 {
			return strings.TrimPrefix(rest[:j], "_"), true
		}
	}
	return "", false
}

// IsInterpreterPath reports whether an executable path looks like a Python
// interpreter — the trigger for SIREN's Python-specific collection scope.
func IsInterpreterPath(path string) bool {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if base == "python" {
		return true
	}
	if strings.HasPrefix(base, "python") {
		rest := base[len("python"):]
		for _, r := range rest {
			if (r < '0' || r > '9') && r != '.' {
				return false
			}
		}
		return rest != ""
	}
	return false
}
