package pyenv

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"siren/internal/ssdeep"
)

var py310 = Interpreter{Version: "3.10", Path: "/usr/bin/python3.10", LibDir: "/usr/lib64/python3.10"}

func TestExecutable(t *testing.T) {
	if got := py310.Executable(); got != "python3.10" {
		t.Errorf("Executable = %q", got)
	}
}

func TestExtensionPaths(t *testing.T) {
	path, ok := ExtensionPath(py310, "heapq")
	if !ok || path != "/usr/lib64/python3.10/lib-dynload/_heapq.cpython-310-x86_64-linux-gnu.so" {
		t.Errorf("heapq path = %q ok=%v", path, ok)
	}
	path, ok = ExtensionPath(py310, "numpy")
	if !ok || path != "/usr/lib64/python3.10/site-packages/numpy/core/_multiarray_umath.cpython-310-x86_64-linux-gnu.so" {
		t.Errorf("numpy path = %q ok=%v", path, ok)
	}
	if _, ok := ExtensionPath(py310, "not_a_package"); ok {
		t.Error("unknown package should not resolve")
	}
}

func TestMapAndExtractRoundTrip(t *testing.T) {
	imports := []string{"heapq", "struct", "numpy", "mpi4py", "sha512", "blake2"}
	regions := MapRegions(py310, imports, 0x7f0000000000)
	got := ExtractImports(regions)
	want := append([]string(nil), imports...)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExtractImports = %q, want %q", got, want)
	}
}

func TestExtractIgnoresNonPython(t *testing.T) {
	regions := MapRegions(py310, []string{"math"}, 0x7f0000000000)
	regions = append(regions, MapRegions(Interpreter{}, nil, 0)...)
	got := ExtractImports(regions)
	if !reflect.DeepEqual(got, []string{"math"}) {
		t.Errorf("got %q", got)
	}
}

func TestGenerateScriptDeterministic(t *testing.T) {
	s1 := GenerateScript("/scratch/u/ana.py", 7, []string{"numpy", "heapq"})
	s2 := GenerateScript("/scratch/u/ana.py", 7, []string{"numpy", "heapq"})
	if !bytes.Equal(s1.Content, s2.Content) {
		t.Error("script generation not deterministic")
	}
	if !bytes.Contains(s1.Content, []byte("import numpy\n")) {
		t.Error("imports missing from script body")
	}
}

func TestDistinctScriptsGetDistinctFuzzyHashes(t *testing.T) {
	a := GenerateScript("/scratch/u/a.py", 1, []string{"numpy"})
	b := GenerateScript("/scratch/u/b.py", 2, []string{"numpy"})
	ha, err := ssdeep.Hash(a.Content)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := ssdeep.Hash(b.Content)
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Error("distinct scripts hashed identically")
	}
}

func TestIsInterpreterPath(t *testing.T) {
	yes := []string{"/usr/bin/python3.10", "/usr/bin/python3", "/usr/bin/python", "/appl/conda/bin/python3.11"}
	no := []string{"/usr/bin/bash", "/usr/bin/pythonista", "/home/u/python-helper.sh", "/usr/bin/python-config"}
	for _, p := range yes {
		if !IsInterpreterPath(p) {
			t.Errorf("IsInterpreterPath(%q) = false", p)
		}
	}
	for _, p := range no {
		if IsInterpreterPath(p) {
			t.Errorf("IsInterpreterPath(%q) = true", p)
		}
	}
}

func TestKnownPackagesSortedAndComplete(t *testing.T) {
	pkgs := KnownPackages()
	if len(pkgs) < 30 {
		t.Errorf("only %d known packages", len(pkgs))
	}
	if !sort.StringsAreSorted(pkgs) {
		t.Error("not sorted")
	}
	// All of Figure 3's packages must be representable.
	for _, p := range []string{"heapq", "struct", "math", "posixsubprocess", "mpi4py", "numpy", "pandas", "scipy", "zoneinfo", "sha3"} {
		found := false
		for _, k := range pkgs {
			if k == p {
				found = true
			}
		}
		if !found {
			t.Errorf("package %q missing from catalogue", p)
		}
	}
}

func TestPackageFromPathEdgeCases(t *testing.T) {
	cases := []struct {
		path string
		want string
		ok   bool
	}{
		{"/usr/lib64/python3.10/lib-dynload/_heapq.cpython-310-x86_64-linux-gnu.so", "heapq", true},
		{"/usr/lib64/python3.10/site-packages/numpy/core/x.so", "numpy", true},
		{"/lib64/libc.so.6", "", false},
		{"/usr/lib64/python3.10/lib-dynload/noext", "", false},
	}
	for _, c := range cases {
		got, ok := packageFromPath(c.path)
		if got != c.want || ok != c.ok {
			t.Errorf("packageFromPath(%q) = %q,%v want %q,%v", c.path, got, ok, c.want, c.ok)
		}
	}
}
