package core

import (
	"path/filepath"
	"strings"
	"testing"

	"siren/internal/campaign"
	"siren/internal/sirendb"
	"siren/internal/toolchain"
)

func TestPipelineChannelEndToEnd(t *testing.T) {
	p, err := NewPipeline(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res, err := p.RunCampaign(campaign.Config{Scale: 0.001, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsRun == 0 {
		t.Fatal("no jobs ran")
	}
	data, stats, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Processes == 0 {
		t.Fatal("no processes consolidated")
	}
	if len(data.Users()) != 12 {
		t.Errorf("users = %d, want 12", len(data.Users()))
	}
	// Analyze is idempotent after drain.
	if _, _, err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	// RunCampaign after drain fails cleanly.
	if _, err := p.RunCampaign(campaign.Config{Scale: 0.001}); err == nil {
		t.Error("campaign after drain should fail")
	}
}

func TestPipelineUDPEndToEnd(t *testing.T) {
	p, err := NewPipeline(Options{UDPAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.RunCampaign(campaign.Config{Scale: 0.001, Seed: 3, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	data, _, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// Loopback UDP may drop a little under burst, but the bulk must arrive.
	if got := p.Receiver().Stats().Received.Load(); got == 0 {
		t.Fatal("nothing received over UDP")
	}
	if len(data.Users()) < 10 {
		t.Errorf("users = %d", len(data.Users()))
	}
}

func TestPipelinePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siren.wal")
	p, err := NewPipeline(Options{DBPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunCampaign(campaign.Config{Scale: 0.001, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	db, err := sirendb.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Count() == 0 {
		t.Error("WAL replay yielded nothing")
	}
}

func TestPipelineLossInjection(t *testing.T) {
	p, err := NewPipeline(Options{LossRate: 0.01, LossSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.RunCampaign(campaign.Config{Scale: 0.005, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	_, stats, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ProcessesWithMissing == 0 {
		t.Error("1% loss should produce processes with missing fields")
	}
	// The pipeline survives loss: the bulk of the data is intact.
	if stats.ProcessesWithMissing*5 > stats.Processes {
		t.Errorf("too many incomplete processes: %d/%d", stats.ProcessesWithMissing, stats.Processes)
	}
}

func TestScanBinaryFacade(t *testing.T) {
	art, err := toolchain.Compile(
		toolchain.Source{Name: "x", Version: "1"},
		toolchain.BuildOptions{Compilers: []toolchain.Compiler{toolchain.GCCSUSE}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ScanBinary(art.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rep.Compilers[0], "GCC:") || rep.FileH == "" {
		t.Errorf("report = %+v", rep)
	}
}
