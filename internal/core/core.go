// Package core is SIREN's public facade: it wires the collection transport,
// receiver, database, post-processing, and analysis layers into one
// Pipeline, and exposes the campaign runner and real-binary scanning.
//
// Typical embedded use (in-process channel transport):
//
//	p, _ := core.NewPipeline(core.Options{})
//	res, _ := p.RunCampaign(campaign.Config{Scale: 0.02, Seed: 1})
//	data, stats, _ := p.Analyze()
//	rows := data.DeriveLabels() // Table 5
//	p.Close()
//
// Distributed use mirrors the paper's deployment: run a UDP receiver
// (cmd/siren-receiver), point collectors at it, analyse the WAL-backed
// database afterwards (cmd/siren-analyze).
package core

import (
	"fmt"
	"time"

	"siren/internal/analysis"
	"siren/internal/campaign"
	"siren/internal/collector"
	"siren/internal/membership"
	"siren/internal/obs"
	"siren/internal/postprocess"
	"siren/internal/receiver"
	"siren/internal/sirendb"
	"siren/internal/wire"
)

// Options configure a Pipeline.
type Options struct {
	// DBPath is the WAL file backing the message store ("" = in-memory).
	DBPath string
	// UDPAddr, when set, receives datagrams over a real UDP socket bound to
	// this address (e.g. "127.0.0.1:0"); otherwise an in-process channel
	// transport is used.
	UDPAddr string
	// ChannelDepth is the transport/receiver buffer depth (default 1<<18).
	ChannelDepth int
	// Readers is the number of UDP reader goroutines and Writers the number
	// of hash-partitioned writer shards of the receiver (0 = receiver
	// defaults; see receiver.Options).
	Readers int
	Writers int
	// LossRate injects random datagram loss (0..1) on the sender side, for
	// loss-tolerance experiments. Seeded by LossSeed.
	LossRate float64
	LossSeed int64
	// SendRetries retries failed transport sends (ENOBUFS bursts, picked-up
	// ECONNREFUSED) with jittered backoff instead of dropping the datagram
	// on the first error, and surfaces what remains in SendStats. Applied
	// inside any loss injection so LossRate still measures end-loss.
	SendRetries int
	// Metrics, when non-nil, instruments the whole pipeline into one
	// registry: the store's WAL/seal histograms, the receiver's stage
	// latencies and queue gauges, and the retrying sender's delivery
	// counters (see internal/obs). Nil runs uninstrumented.
	Metrics *obs.Registry
}

// Pipeline owns the receiver side of a SIREN deployment plus the transport
// collectors send into.
type Pipeline struct {
	db        *sirendb.DB
	rcv       *receiver.Receiver
	transport wire.Transport
	chanTr    *wire.ChanTransport        // nil in UDP mode
	retryTr   *membership.RetryTransport // nil unless SendRetries > 0
	closed    bool
}

// NewPipeline builds a pipeline per opts.
func NewPipeline(opts Options) (*Pipeline, error) {
	depth := opts.ChannelDepth
	if depth <= 0 {
		depth = 1 << 18
	}
	// Size the store's shards 1:1 with the receiver's writer shards so
	// batches route writer→store shard directly (receiver.ShardedStore).
	db, err := sirendb.OpenOptions(opts.DBPath, sirendb.Options{
		Shards:  receiver.Options{Writers: opts.Writers}.ResolvedWriters(),
		Metrics: opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	p := &Pipeline{db: db}
	p.rcv = receiver.New(db, receiver.Options{Depth: depth, Readers: opts.Readers, Writers: opts.Writers, Metrics: opts.Metrics})

	if opts.UDPAddr != "" {
		addr, err := p.rcv.ListenUDP(opts.UDPAddr)
		if err != nil {
			db.Close()
			return nil, err
		}
		tr, err := wire.DialUDP(addr)
		if err != nil {
			p.rcv.Close()
			db.Close()
			return nil, err
		}
		p.transport = tr
	} else {
		ch := wire.NewChanTransport(depth)
		p.chanTr = ch
		p.rcv.AttachChannel(ch.C())
		p.transport = ch
	}

	if opts.SendRetries > 0 {
		p.retryTr = &membership.RetryTransport{
			T:       p.transport,
			Retries: opts.SendRetries,
			Backoff: membership.Backoff{Base: 5 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: 0.2},
		}
		p.retryTr.InstrumentWith(opts.Metrics)
		p.transport = p.retryTr
	}
	if opts.LossRate > 0 {
		// Loss wraps retry: injected drops model network loss past the
		// sender, which no send-side retry can see or repair.
		p.transport = wire.NewLossyTransport(p.transport, opts.LossRate, opts.LossSeed)
	}
	return p, nil
}

// SendStats reports the retrying sender's delivery counters; the zero value
// when SendRetries is off.
func (p *Pipeline) SendStats() membership.SendStats {
	if p.retryTr == nil {
		return membership.SendStats{}
	}
	return p.retryTr.Stats()
}

// Transport returns the sender-side transport (hand it to collectors).
func (p *Pipeline) Transport() wire.Transport { return p.transport }

// DB exposes the message store.
func (p *Pipeline) DB() *sirendb.DB { return p.db }

// Receiver exposes receiver statistics.
func (p *Pipeline) Receiver() *receiver.Receiver { return p.rcv }

// RunCampaign executes the simulated deployment campaign through this
// pipeline's transport.
func (p *Pipeline) RunCampaign(cfg campaign.Config) (*campaign.Result, error) {
	if p.closed {
		return nil, fmt.Errorf("core: pipeline is closed")
	}
	cfg.Transport = p.transport
	return campaign.Run(cfg)
}

// Drain stops accepting new messages and waits until everything sent so far
// is stored; the pipeline cannot send afterwards.
func (p *Pipeline) Drain() error {
	if p.closed {
		return nil
	}
	p.closed = true
	var err error
	if p.chanTr != nil {
		err = p.chanTr.Close()
	} else {
		err = p.transport.Close()
	}
	if cerr := p.rcv.Close(); err == nil {
		err = cerr
	}
	return err
}

// Analyze drains the pipeline (if needed), consolidates all messages via
// the streaming, shard-parallel read path (snapshot cursors end to end —
// the store is never materialised as one message slice), and returns the
// analysis dataset plus post-processing statistics.
func (p *Pipeline) Analyze() (*analysis.Dataset, postprocess.Stats, error) {
	if err := p.Drain(); err != nil {
		return nil, postprocess.Stats{}, err
	}
	data, stats := analysis.ConsolidateDataset(p.db.Snapshot(), postprocess.StreamOptions{})
	return data, stats, nil
}

// Close drains and releases everything, syncing the WAL.
func (p *Pipeline) Close() error {
	err := p.Drain()
	if cerr := p.db.Close(); err == nil {
		err = cerr
	}
	return err
}

// ScanBinary re-exports the collector's static analysis of an ELF image for
// real-host use (see cmd/siren-scan).
func ScanBinary(img []byte) (*collector.BinaryReport, error) {
	return collector.ScanBinary(img)
}
