package report

import (
	"strings"
	"testing"

	"siren/internal/analysis"
)

func TestTableAlignment(t *testing.T) {
	var sb strings.Builder
	Table(&sb, "Title", []string{"col", "n"}, [][]string{{"a", "1"}, {"longer", "22"}})
	out := sb.String()
	if !strings.Contains(out, "Title") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Fatalf("lines = %q", lines)
	}
	if !strings.Contains(lines[1], "col") || !strings.Contains(lines[2], "---") {
		t.Errorf("header/separator wrong: %q", lines)
	}
	// Columns align: "n" column starts at the same offset in every row.
	idx := strings.Index(lines[1], "n")
	for _, l := range lines[3:] {
		if len(l) <= idx {
			t.Errorf("row too short: %q", l)
		}
	}
}

func TestMatrixRendering(t *testing.T) {
	m := &analysis.Matrix{
		Rows: []string{"icon", "gzip"},
		Cols: []string{"siren", "pthread"},
		Bits: map[string]map[string]bool{
			"icon": {"siren": true, "pthread": true},
			"gzip": {"siren": true},
		},
	}
	var sb strings.Builder
	Matrix(&sb, "Fig", m)
	out := sb.String()
	if !strings.Contains(out, "c00 = siren") || !strings.Contains(out, "icon") {
		t.Errorf("matrix output:\n%s", out)
	}
	// gzip row: 1 for siren, 0 for pthread.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "gzip") {
			if !strings.Contains(line, "1") || !strings.Contains(line, "0") {
				t.Errorf("gzip row = %q", line)
			}
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	var sb strings.Builder
	CSV(&sb, []string{"a", "b"}, [][]string{{`x,y`, `q"r`}})
	want := "a,b\n\"x,y\",\"q\"\"r\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestHelpers(t *testing.T) {
	if Itoa(42) != "42" || F1(1.25) != "1.2" && F1(1.25) != "1.3" {
		t.Error("helpers wrong")
	}
}
