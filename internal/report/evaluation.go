package report

import (
	"fmt"
	"io"

	"siren/internal/analysis"
	"siren/internal/postprocess"
	"siren/internal/ssdeep"
)

// WriteEvaluation renders every table and figure of the paper's evaluation
// section (§4) from a consolidated dataset — the output of
// cmd/siren-campaign and cmd/siren-analyze.
func WriteEvaluation(w io.Writer, data *analysis.Dataset, stats postprocess.Stats) {
	fmt.Fprintf(w, "== Dataset ==\n")
	fmt.Fprintf(w, "  messages=%d records=%d processes=%d jobs=%d\n",
		stats.Messages, stats.Records, stats.Processes, stats.Jobs)
	fmt.Fprintf(w, "  processes with missing fields: %d (%.4f%% of jobs affected: %d)\n\n",
		stats.ProcessesWithMissing,
		100*float64(stats.JobsWithMissing)/nonZero(stats.Jobs), stats.JobsWithMissing)

	// Table 2.
	var rows [][]string
	for _, s := range data.UserStats() {
		rows = append(rows, []string{s.User, Itoa(s.Jobs), Itoa(s.SystemProcs), Itoa(s.UserProcs), Itoa(s.PythonProcs)})
	}
	Table(w, "Table 2: users, jobs, and processes",
		[]string{"user", "jobs", "system procs", "user procs", "python procs"}, rows)
	fmt.Fprintln(w)

	// Table 3.
	rows = nil
	for _, e := range data.TopSystemExecutables(10) {
		rows = append(rows, []string{e.Path, Itoa(e.UniqueUsers), Itoa(e.Jobs), Itoa(e.Processes), Itoa(e.UniqueObjectsH)})
	}
	Table(w, fmt.Sprintf("Table 3: top 10 system-directory executables (of %d total)", data.SystemExecutableCount()),
		[]string{"executable", "users", "jobs", "procs", "uniq OBJECTS_H"}, rows)
	fmt.Fprintln(w)

	// Table 4.
	rows = nil
	for _, s := range data.DeviatingLibraries("/usr/bin/bash") {
		rows = append(rows, []string{"/usr/bin/bash", Itoa(s.Processes), s.LibraryVariant("libtinfo"), s.LibraryVariant("libm")})
	}
	Table(w, "Table 4: deviating shared objects of /usr/bin/bash",
		[]string{"executable", "procs", "libtinfo path", "libm path"}, rows)
	fmt.Fprintln(w)

	// Table 5.
	rows = nil
	for _, l := range data.DeriveLabels() {
		rows = append(rows, []string{l.Label, Itoa(l.UniqueUsers), Itoa(l.Jobs), Itoa(l.Processes), Itoa(l.UniqueFileH)})
	}
	Table(w, "Table 5: derived labels for user applications",
		[]string{"label", "users", "jobs", "procs", "uniq FILE_H"}, rows)
	fmt.Fprintln(w)

	// Table 6.
	rows = nil
	for _, c := range data.CompilerTable() {
		rows = append(rows, []string{c.Compilers, Itoa(c.UniqueUsers), Itoa(c.Jobs), Itoa(c.Processes), Itoa(c.UniqueFileH)})
	}
	Table(w, "Table 6: compiler information of user applications",
		[]string{"compilers", "users", "jobs", "procs", "uniq FILE_H"}, rows)
	fmt.Fprintln(w)

	// Table 7.
	if unknown, ok := data.FindUnknown(); ok {
		rows = nil
		for _, r := range data.SimilaritySearch(unknown, 10, ssdeep.BackendWeighted) {
			rows = append(rows, []string{r.Label, F1(r.Avg), Itoa(r.ModulesS), Itoa(r.CompilersS),
				Itoa(r.ObjectsS), Itoa(r.FileS), Itoa(r.StringsS), Itoa(r.SymbolsS)})
		}
		Table(w, fmt.Sprintf("Table 7: similarity search for %s", unknown.Exe),
			[]string{"label", "avg", "MO_H", "CO_H", "OB_H", "FI_H", "ST_H", "SY_H"}, rows)
		fmt.Fprintln(w)
	}

	// Table 8.
	rows = nil
	for _, s := range data.PythonInterpreters() {
		rows = append(rows, []string{s.Interpreter, Itoa(s.UniqueUsers), Itoa(s.Jobs), Itoa(s.Processes), Itoa(s.UniqueScriptH)})
	}
	Table(w, "Table 8: Python interpreters",
		[]string{"interpreter", "users", "jobs", "procs", "uniq SCRIPT_H"}, rows)
	fmt.Fprintln(w)

	// Figure 2.
	rows = nil
	for _, s := range data.DerivedLibraries() {
		rows = append(rows, []string{s.Tag, Itoa(s.UniqueUsers), Itoa(s.Jobs), Itoa(s.Processes), Itoa(s.UniqueExecutables)})
	}
	Table(w, "Figure 2: derived+filtered shared objects in user applications",
		[]string{"library tag", "users", "jobs", "procs", "uniq exes"}, rows)
	fmt.Fprintln(w)

	// Figure 3.
	rows = nil
	for _, s := range data.PythonPackages() {
		rows = append(rows, []string{s.Package, Itoa(s.UniqueUsers), Itoa(s.Jobs), Itoa(s.Processes), Itoa(s.UniqueScripts)})
	}
	Table(w, "Figure 3: imported Python packages",
		[]string{"package", "users", "jobs", "procs", "uniq scripts"}, rows)
	fmt.Fprintln(w)

	Matrix(w, "Figure 4: compiler identification by software label", data.CompilerMatrix())
	fmt.Fprintln(w)
	Matrix(w, "Figure 5: loaded shared-object usage by software label", data.LibraryMatrix())
}

func nonZero(n int) float64 {
	if n == 0 {
		return 1
	}
	return float64(n)
}
