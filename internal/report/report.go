// Package report renders analysis results as aligned ASCII tables and CSV
// series — the presentation layer behind the siren-campaign and
// siren-analyze tools and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"strings"

	"siren/internal/analysis"
)

// Table writes an aligned ASCII table.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Matrix renders a binary usage matrix (Figures 4 and 5) with one row per
// label and one 0/1 column per entry.
func Matrix(w io.Writer, title string, m *analysis.Matrix) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	labelW := len("label")
	for _, r := range m.Rows {
		if len(r) > labelW {
			labelW = len(r)
		}
	}
	fmt.Fprintf(w, "  %s", pad("label", labelW))
	for i := range m.Cols {
		fmt.Fprintf(w, " c%02d", i)
	}
	fmt.Fprintln(w)
	for i, c := range m.Cols {
		fmt.Fprintf(w, "  %s c%02d = %s\n", strings.Repeat(" ", labelW), i, c)
	}
	for _, r := range m.Rows {
		fmt.Fprintf(w, "  %s", pad(r, labelW))
		for _, c := range m.Cols {
			v := 0
			if m.Used(r, c) {
				v = 1
			}
			fmt.Fprintf(w, "   %d", v)
		}
		fmt.Fprintln(w)
	}
}

// CSV writes rows as comma-separated values with a header.
func CSV(w io.Writer, headers []string, rows [][]string) {
	fmt.Fprintln(w, strings.Join(headers, ","))
	for _, row := range rows {
		quoted := make([]string, len(row))
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			quoted[i] = c
		}
		fmt.Fprintln(w, strings.Join(quoted, ","))
	}
}

// Itoa is a tiny helper for building rows.
func Itoa(n int) string { return fmt.Sprintf("%d", n) }

// F1 formats a float with one decimal.
func F1(f float64) string { return fmt.Sprintf("%.1f", f) }
