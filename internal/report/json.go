// Machine-readable report shape — the one source of truth shared by
// cmd/siren-analyze -json and the serving tier's /api/v1/report endpoint.
// Both marshal exactly these structs, so an offline batch report and an
// online query against the same records are field-for-field comparable.
package report

import (
	"siren/internal/analysis"
	"siren/internal/postprocess"
	"siren/internal/ssdeep"
)

// JSONDatasetStats mirrors the consolidation Stats header of the report.
type JSONDatasetStats struct {
	Messages             int `json:"messages"`
	Records              int `json:"records"`
	Processes            int `json:"processes"`
	ProcessesWithMissing int `json:"processes_with_missing"`
	Jobs                 int `json:"jobs"`
	JobsWithMissing      int `json:"jobs_with_missing"`
}

// JSONUserStat is one Table 2 row.
type JSONUserStat struct {
	User        string `json:"user"`
	Jobs        int    `json:"jobs"`
	SystemProcs int    `json:"system_procs"`
	UserProcs   int    `json:"user_procs"`
	PythonProcs int    `json:"python_procs"`
	TotalProcs  int    `json:"total_procs"`
}

// JSONExeStat is one Table 3 row.
type JSONExeStat struct {
	Path           string `json:"path"`
	UniqueUsers    int    `json:"unique_users"`
	Jobs           int    `json:"jobs"`
	Processes      int    `json:"processes"`
	UniqueObjectsH int    `json:"unique_objects_h"`
}

// JSONLabelStat is one Table 5 row.
type JSONLabelStat struct {
	Label       string `json:"label"`
	UniqueUsers int    `json:"unique_users"`
	Jobs        int    `json:"jobs"`
	Processes   int    `json:"processes"`
	UniqueFileH int    `json:"unique_file_h"`
}

// JSONCompilerStat is one Table 6 row.
type JSONCompilerStat struct {
	Compilers   string `json:"compilers"`
	UniqueUsers int    `json:"unique_users"`
	Jobs        int    `json:"jobs"`
	Processes   int    `json:"processes"`
	UniqueFileH int    `json:"unique_file_h"`
}

// JSONSimilarityRow is one similarity ranking row — Table 7 offline, the
// identify response online. Scores are the six per-characteristic fuzzy-hash
// similarities (0–100) and their average.
type JSONSimilarityRow struct {
	Label      string  `json:"label"`
	Exe        string  `json:"exe"`
	Avg        float64 `json:"avg"`
	ModulesS   int     `json:"modules_s"`
	CompilersS int     `json:"compilers_s"`
	ObjectsS   int     `json:"objects_s"`
	FileS      int     `json:"file_s"`
	StringsS   int     `json:"strings_s"`
	SymbolsS   int     `json:"symbols_s"`
}

// JSONSimilaritySearch is the Table 7 block: the unknown baseline and its
// ranking against every known fingerprint.
type JSONSimilaritySearch struct {
	BaselineExe string              `json:"baseline_exe"`
	Rows        []JSONSimilarityRow `json:"rows"`
}

// JSONInterpreterStat is one Table 8 row.
type JSONInterpreterStat struct {
	Interpreter   string `json:"interpreter"`
	UniqueUsers   int    `json:"unique_users"`
	Jobs          int    `json:"jobs"`
	Processes     int    `json:"processes"`
	UniqueScriptH int    `json:"unique_script_h"`
}

// JSONLibraryTagStat is one Figure 2 bar group.
type JSONLibraryTagStat struct {
	Tag               string `json:"tag"`
	UniqueUsers       int    `json:"unique_users"`
	Jobs              int    `json:"jobs"`
	Processes         int    `json:"processes"`
	UniqueExecutables int    `json:"unique_executables"`
}

// JSONPackageStat is one Figure 3 bar group.
type JSONPackageStat struct {
	Package       string `json:"package"`
	UniqueUsers   int    `json:"unique_users"`
	Jobs          int    `json:"jobs"`
	Processes     int    `json:"processes"`
	UniqueScripts int    `json:"unique_scripts"`
}

// JSONReport is the full machine-readable evaluation: every table and bar
// figure WriteEvaluation renders as text (the binary usage matrices of
// Figures 4/5 are presentation-only and not included).
type JSONReport struct {
	Dataset            JSONDatasetStats      `json:"dataset"`
	Users              []JSONUserStat        `json:"users"`
	SystemExecutables  []JSONExeStat         `json:"system_executables"`
	SystemExecutableN  int                   `json:"system_executable_count"`
	Labels             []JSONLabelStat       `json:"labels"`
	Compilers          []JSONCompilerStat    `json:"compilers"`
	Similarity         *JSONSimilaritySearch `json:"similarity,omitempty"`
	PythonInterpreters []JSONInterpreterStat `json:"python_interpreters"`
	DerivedLibraries   []JSONLibraryTagStat  `json:"derived_libraries"`
	PythonPackages     []JSONPackageStat     `json:"python_packages"`
}

// JSONSimilarityRows converts analysis ranking rows to their wire shape.
func JSONSimilarityRows(rows []analysis.SimilarityRow) []JSONSimilarityRow {
	out := make([]JSONSimilarityRow, len(rows))
	for i, r := range rows {
		out[i] = JSONSimilarityRow{
			Label: r.Label, Exe: r.Exe, Avg: r.Avg,
			ModulesS: r.ModulesS, CompilersS: r.CompilersS, ObjectsS: r.ObjectsS,
			FileS: r.FileS, StringsS: r.StringsS, SymbolsS: r.SymbolsS,
		}
	}
	return out
}

// BuildJSON assembles the machine-readable report from a consolidated
// dataset — the same group-bys WriteEvaluation renders, in the same order.
// The similarity block mirrors the text report: present only when the
// dataset contains an UNKNOWN baseline, ranked top 10.
func BuildJSON(data *analysis.Dataset, stats postprocess.Stats) *JSONReport {
	rep := &JSONReport{
		Dataset: JSONDatasetStats{
			Messages:             stats.Messages,
			Records:              stats.Records,
			Processes:            stats.Processes,
			ProcessesWithMissing: stats.ProcessesWithMissing,
			Jobs:                 stats.Jobs,
			JobsWithMissing:      stats.JobsWithMissing,
		},
		SystemExecutableN: data.SystemExecutableCount(),
	}
	for _, s := range data.UserStats() {
		rep.Users = append(rep.Users, JSONUserStat{User: s.User, Jobs: s.Jobs,
			SystemProcs: s.SystemProcs, UserProcs: s.UserProcs, PythonProcs: s.PythonProcs,
			TotalProcs: s.TotalProcs})
	}
	for _, e := range data.TopSystemExecutables(10) {
		rep.SystemExecutables = append(rep.SystemExecutables, JSONExeStat{Path: e.Path,
			UniqueUsers: e.UniqueUsers, Jobs: e.Jobs, Processes: e.Processes,
			UniqueObjectsH: e.UniqueObjectsH})
	}
	for _, l := range data.DeriveLabels() {
		rep.Labels = append(rep.Labels, JSONLabelStat{Label: l.Label, UniqueUsers: l.UniqueUsers,
			Jobs: l.Jobs, Processes: l.Processes, UniqueFileH: l.UniqueFileH})
	}
	for _, c := range data.CompilerTable() {
		rep.Compilers = append(rep.Compilers, JSONCompilerStat{Compilers: c.Compilers,
			UniqueUsers: c.UniqueUsers, Jobs: c.Jobs, Processes: c.Processes,
			UniqueFileH: c.UniqueFileH})
	}
	if unknown, ok := data.FindUnknown(); ok {
		rep.Similarity = &JSONSimilaritySearch{
			BaselineExe: unknown.Exe,
			Rows:        JSONSimilarityRows(data.SimilaritySearch(unknown, 10, ssdeep.BackendWeighted)),
		}
	}
	for _, s := range data.PythonInterpreters() {
		rep.PythonInterpreters = append(rep.PythonInterpreters, JSONInterpreterStat{
			Interpreter: s.Interpreter, UniqueUsers: s.UniqueUsers, Jobs: s.Jobs,
			Processes: s.Processes, UniqueScriptH: s.UniqueScriptH})
	}
	for _, s := range data.DerivedLibraries() {
		rep.DerivedLibraries = append(rep.DerivedLibraries, JSONLibraryTagStat{Tag: s.Tag,
			UniqueUsers: s.UniqueUsers, Jobs: s.Jobs, Processes: s.Processes,
			UniqueExecutables: s.UniqueExecutables})
	}
	for _, s := range data.PythonPackages() {
		rep.PythonPackages = append(rep.PythonPackages, JSONPackageStat{Package: s.Package,
			UniqueUsers: s.UniqueUsers, Jobs: s.Jobs, Processes: s.Processes,
			UniqueScripts: s.UniqueScripts})
	}
	return rep
}
