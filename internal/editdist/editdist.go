// Package editdist implements string edit distances used by the SIREN
// fuzzy-hash comparison layer.
//
// Three families are provided:
//
//   - Levenshtein: insertions, deletions, substitutions, unit cost.
//   - Damerau–Levenshtein (optimal string alignment, OSA): Levenshtein plus
//     transposition of two adjacent characters, unit cost. This is the
//     distance the SIREN paper names for SSDeep digest comparison.
//   - Weighted: insert/delete cost 1, substitution cost 2 — the distance used
//     by the reference ssdeep implementation (a substitution is modelled as a
//     delete followed by an insert).
//
// All functions operate on byte strings because SSDeep digests are ASCII
// (base64 alphabet); multi-byte runes never occur in digests.
//
// The distance kernels run once per characteristic per scored candidate on
// the identify path, so they avoid heap work for digest-sized inputs:
// rolling DP rows live on the stack whenever the inner string is shorter
// than stackRow (spamsum signatures are at most 64 bytes), and the n-gram
// gate packs grams into stack arrays instead of building a map.
package editdist

// stackRow bounds the inner DP dimension served from the stack. Spamsum
// signatures are ≤64 bytes; anything longer falls back to the heap.
const stackRow = 72

// Levenshtein returns the classic edit distance between a and b: the minimum
// number of single-byte insertions, deletions, or substitutions required to
// transform a into b.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	// Keep the shorter string in the inner dimension to bound memory.
	if len(a) < len(b) {
		a, b = b, a
	}
	var prevBuf, curBuf [stackRow]int
	prev, cur := row(&prevBuf, len(b)+1), row(&curBuf, len(b)+1)
	for j := 0; j <= len(b); j++ {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// row serves a length-n work row from the caller's stack buffer when it
// fits, from the heap otherwise.
func row(buf *[stackRow]int, n int) []int {
	if n <= stackRow {
		return buf[:n]
	}
	return make([]int, n)
}

// DamerauLevenshtein returns the optimal-string-alignment variant of the
// Damerau–Levenshtein distance between a and b: the minimum number of
// insertions, deletions, substitutions, or transpositions of two adjacent
// bytes, where no substring is edited more than once.
func DamerauLevenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	// Three rolling rows: i-2, i-1, i.
	var buf2, buf1, buf0 [stackRow]int
	row2, row1, row0 := row(&buf2, len(b)+1), row(&buf1, len(b)+1), row(&buf0, len(b)+1)
	for j := 0; j <= len(b); j++ {
		row1[j] = j
	}
	for i := 1; i <= len(a); i++ {
		row0[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			d := min3(row1[j]+1, row0[j-1]+1, row1[j-1]+cost)
			if i > 1 && j > 1 && ca == b[j-2] && a[i-2] == b[j-1] {
				if t := row2[j-2] + 1; t < d {
					d = t
				}
			}
			row0[j] = d
		}
		row2, row1, row0 = row1, row0, row2
	}
	return row1[len(b)]
}

// Weighted returns the edit distance with insert and delete cost 1 and
// substitution cost 2, matching the reference ssdeep edit_distn weights.
// With these weights a substitution never beats the equivalent
// delete-then-insert, so the distance equals len(a)+len(b)-2*LCS(a,b).
func Weighted(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	var prevBuf, curBuf [stackRow]int
	prev, cur := row(&prevBuf, len(b)+1), row(&curBuf, len(b)+1)
	for j := 0; j <= len(b); j++ {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 2
			if ca == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// LongestCommonSubstring returns the length of the longest contiguous
// substring common to a and b.
func LongestCommonSubstring(a, b string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	var prevBuf, curBuf [stackRow]int
	prev, cur := row(&prevBuf, len(b)+1), row(&curBuf, len(b)+1)
	best := 0
	for i := 1; i <= len(a); i++ {
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			if ca == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// HasCommonSubstring reports whether a and b share a contiguous substring of
// at least n bytes. It is the gate the ssdeep comparison applies (n = 7,
// the rolling-hash window) before computing an edit distance, to suppress
// coincidental low-distance matches between short digests.
//
// For digest-sized inputs with n ≤ 8 (the ssdeep gate is n = 7) the grams
// pack into uint64s on the stack and the probe is a linear scan — no
// allocation, and for ≤64-byte signatures the quadratic scan is cheaper
// than hashing. Longer inputs fall back to a map, O(len(a)+len(b))
// expected time.
func HasCommonSubstring(a, b string, n int) bool {
	if n <= 0 {
		return true
	}
	if len(a) < n || len(b) < n {
		return false
	}
	if len(b) < len(a) {
		a, b = b, a // index the smaller side
	}
	if n <= 8 && len(a)-n+1 <= stackRow {
		var gramBuf [stackRow]uint64
		mask := ^uint64(0) >> (64 - 8*uint(n))
		var g uint64
		for i := 0; i < len(a); i++ {
			g = g<<8 | uint64(a[i])
			if i >= n-1 {
				gramBuf[i-(n-1)] = g & mask
			}
		}
		grams := gramBuf[:len(a)-n+1]
		g = 0
		for i := 0; i < len(b); i++ {
			g = g<<8 | uint64(b[i])
			if i < n-1 {
				continue
			}
			probe := g & mask
			for _, have := range grams {
				if have == probe {
					return true
				}
			}
		}
		return false
	}
	grams := make(map[string]struct{}, len(a)-n+1)
	for i := 0; i+n <= len(a); i++ {
		grams[a[i:i+n]] = struct{}{}
	}
	for i := 0; i+n <= len(b); i++ {
		if _, ok := grams[b[i:i+n]]; ok {
			return true
		}
	}
	return false
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
