package editdist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"intention", "execution", 5},
		{"a", "b", 1},
		{"ab", "ba", 2}, // plain Levenshtein counts a transposition as 2
		{"gumbo", "gambol", 2},
		{"saturday", "sunday", 3},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"ab", "ba", 1}, // single transposition
		{"abcd", "acbd", 1},
		{"ca", "abc", 3}, // OSA cannot reuse edited substrings
		{"kitten", "sitting", 3},
		{"abcdef", "abcdfe", 1},
		{"banana", "banaan", 1},
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("DamerauLevenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestWeightedKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "ab", 2},
		{"abc", "abc", 0},
		{"a", "b", 2},       // substitution costs 2
		{"ab", "ba", 2},     // delete+insert
		{"abc", "axc", 2},   // one substitution
		{"abcd", "bcde", 2}, // drop 'a', add 'e'
	}
	for _, c := range cases {
		if got := Weighted(c.a, c.b); got != c.want {
			t.Errorf("Weighted(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestWeightedEqualsLCSFormula(t *testing.T) {
	// With ins=del=1, sub=2, distance == len(a)+len(b)-2*LCSubsequence(a,b).
	lcs := func(a, b string) int {
		prev := make([]int, len(b)+1)
		cur := make([]int, len(b)+1)
		for i := 1; i <= len(a); i++ {
			for j := 1; j <= len(b); j++ {
				if a[i-1] == b[j-1] {
					cur[j] = prev[j-1] + 1
				} else if prev[j] >= cur[j-1] {
					cur[j] = prev[j]
				} else {
					cur[j] = cur[j-1]
				}
			}
			prev, cur = cur, prev
			for k := range cur {
				cur[k] = 0
			}
		}
		return prev[len(b)]
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := randomDigest(rng, rng.Intn(40))
		b := randomDigest(rng, rng.Intn(40))
		want := len(a) + len(b) - 2*lcs(a, b)
		if got := Weighted(a, b); got != want {
			t.Fatalf("Weighted(%q,%q) = %d, want %d (LCS formula)", a, b, got, want)
		}
	}
}

func randomDigest(rng *rand.Rand, n int) string {
	const alpha = "ABCDEFab01+/"
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alpha[rng.Intn(len(alpha))])
	}
	return sb.String()
}

// Metric laws over short random strings.

func TestMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dists := map[string]func(a, b string) int{
		"levenshtein": Levenshtein,
		"damerau":     DamerauLevenshtein,
		"weighted":    Weighted,
	}
	for name, d := range dists {
		for i := 0; i < 400; i++ {
			a := randomDigest(rng, rng.Intn(24))
			b := randomDigest(rng, rng.Intn(24))
			c := randomDigest(rng, rng.Intn(24))
			if d(a, a) != 0 {
				t.Fatalf("%s: d(a,a) != 0 for %q", name, a)
			}
			if d(a, b) != d(b, a) {
				t.Fatalf("%s: not symmetric for %q,%q", name, a, b)
			}
			if a != b && d(a, b) <= 0 {
				t.Fatalf("%s: d(a,b) <= 0 for distinct %q,%q", name, a, b)
			}
			if d(a, c) > d(a, b)+d(b, c) {
				t.Fatalf("%s: triangle inequality violated for %q,%q,%q", name, a, b, c)
			}
		}
	}
}

func TestDamerauNeverExceedsLevenshtein(t *testing.T) {
	f := func(a, b []byte) bool {
		sa, sb := clampASCII(a), clampASCII(b)
		return DamerauLevenshtein(sa, sb) <= Levenshtein(sa, sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinBounds(t *testing.T) {
	f := func(a, b []byte) bool {
		sa, sb := clampASCII(a), clampASCII(b)
		d := Levenshtein(sa, sb)
		lo := len(sa) - len(sb)
		if lo < 0 {
			lo = -lo
		}
		hi := len(sa)
		if len(sb) > hi {
			hi = len(sb)
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func clampASCII(b []byte) string {
	if len(b) > 32 {
		b = b[:32]
	}
	out := make([]byte, len(b))
	for i, c := range b {
		out[i] = 'A' + c%26
	}
	return string(out)
}

func TestLongestCommonSubstring(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 0},
		{"abc", "abc", 3},
		{"xabcy", "zabcw", 3},
		{"abcdef", "zcdefq", 4},
		{"aaaa", "aa", 2},
		{"abc", "def", 0},
	}
	for _, c := range cases {
		if got := LongestCommonSubstring(c.a, c.b); got != c.want {
			t.Errorf("LongestCommonSubstring(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHasCommonSubstring(t *testing.T) {
	if !HasCommonSubstring("abcdefgh", "xxabcdefgxx", 7) {
		t.Error("expected common 7-substring")
	}
	if HasCommonSubstring("abcdefg", "abcdefX", 7) {
		t.Error("unexpected common 7-substring")
	}
	if !HasCommonSubstring("", "", 0) {
		t.Error("n=0 must always match")
	}
	if HasCommonSubstring("short", "short", 7) {
		// strings shorter than n can never share an n-substring
		t.Error("short strings cannot share a 7-substring")
	}
}

func TestHasCommonSubstringAgreesWithLCS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		a := randomDigest(rng, rng.Intn(30))
		b := randomDigest(rng, rng.Intn(30))
		for _, n := range []int{1, 3, 7} {
			want := LongestCommonSubstring(a, b) >= n
			if got := HasCommonSubstring(a, b, n); got != want {
				t.Fatalf("HasCommonSubstring(%q,%q,%d) = %v, want %v", a, b, n, got, want)
			}
		}
	}
}

func BenchmarkLevenshtein64(b *testing.B) {
	s1 := strings.Repeat("abcdefgh", 8)
	s2 := strings.Repeat("abcdefgi", 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Levenshtein(s1, s2)
	}
}

func BenchmarkDamerauLevenshtein64(b *testing.B) {
	s1 := strings.Repeat("abcdefgh", 8)
	s2 := strings.Repeat("abcdefgi", 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DamerauLevenshtein(s1, s2)
	}
}

func BenchmarkWeighted64(b *testing.B) {
	s1 := strings.Repeat("abcdefgh", 8)
	s2 := strings.Repeat("abcdefgi", 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Weighted(s1, s2)
	}
}

// TestHasCommonSubstringPackedVsMap drives both gate implementations — the
// packed stack path (n ≤ 8, small indexed side) and the map fallback (longer
// inputs or wider windows) — across the boundary between them, against the
// LCS oracle.
func TestHasCommonSubstringPackedVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lengths := []int{0, 6, 7, 8, 64, stackRow + 6, stackRow + 7, stackRow + 8, 200}
	for i := 0; i < 60; i++ {
		for _, la := range lengths {
			a := randomDigest(rng, la)
			b := randomDigest(rng, rng.Intn(200))
			if rng.Intn(2) == 0 && len(a) >= 10 {
				// Plant a shared window so the positive path triggers on
				// long inputs too.
				k := rng.Intn(len(a) - 9)
				b += a[k : k+9]
			}
			for _, n := range []int{7, 8, 9} {
				want := LongestCommonSubstring(a, b) >= n
				if got := HasCommonSubstring(a, b, n); got != want {
					t.Fatalf("HasCommonSubstring(%q,%q,%d) = %v, want %v", a, b, n, got, want)
				}
			}
		}
	}
}
