package lintkit

import (
	"path/filepath"
	"regexp"
	"testing"
)

// The golden-fixture harness: each rule has a module tree under
// testdata/<rule>/ whose files carry `// want "regexp"` comments on the
// lines where the rule must fire. The tree is loaded under the synthetic
// module path "fix" (so fixture packages like fix/sirendb scope exactly
// like the real internal/sirendb), the rule runs, and the diagnostic set
// is diffed exactly against the wants — unexpected findings and missing
// findings both fail, so every fixture is simultaneously a positive and a
// negative test.

var wantRe = regexp.MustCompile(`// want "(.*)"`)

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func loadFixture(t *testing.T, dir string) *Module {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Load(root, "fix")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return mod
}

func collectWants(t *testing.T, mod *Module) []want {
	t.Helper()
	var wants []want
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := mod.Fset.Position(c.Pos())
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runFixture loads testdata/<dir>, runs rules, and diffs diagnostics
// against want comments exactly.
func runFixture(t *testing.T, dir string, rules []Rule) Result {
	t.Helper()
	mod := loadFixture(t, dir)
	res := Run(mod, rules)
	wants := collectWants(t, mod)

	for _, d := range res.Diagnostics {
		found := false
		for i := range wants {
			w := &wants[i]
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
	return res
}

func ruleByName(t *testing.T, name string) []Rule {
	t.Helper()
	for _, r := range AllRules() {
		if r.Name() == name {
			return []Rule{r}
		}
	}
	t.Fatalf("no rule named %q", name)
	return nil
}

func TestWalltimeFixtures(t *testing.T) { runFixture(t, "walltime", ruleByName(t, "walltime")) }
func TestNoDefaultMuxFixtures(t *testing.T) {
	runFixture(t, "nodefaultmux", ruleByName(t, "nodefaultmux"))
}
func TestErrSinkFixtures(t *testing.T)  { runFixture(t, "errsink", ruleByName(t, "errsink")) }
func TestGoroLeakFixtures(t *testing.T) { runFixture(t, "goroleak", ruleByName(t, "goroleak")) }
func TestSnapshotMutFixtures(t *testing.T) {
	runFixture(t, "snapshotmut", ruleByName(t, "snapshotmut"))
}
func TestMutexScopeFixtures(t *testing.T) { runFixture(t, "mutexscope", ruleByName(t, "mutexscope")) }

// TestSuppressionFixtures drives //lint:ignore end to end through a rule:
// a correctly named directive (lead or trailing form) silences the finding
// and lands it in Result.Suppressed; a wrong rule name silences nothing.
func TestSuppressionFixtures(t *testing.T) {
	res := runFixture(t, "suppress", ruleByName(t, "walltime"))
	if len(res.Suppressed) != 2 {
		t.Errorf("suppressed = %d findings, want 2 (lead + trailing directive)", len(res.Suppressed))
	}
	for _, d := range res.Suppressed {
		if d.Rule != "walltime" {
			t.Errorf("suppressed finding has rule %q, want walltime", d.Rule)
		}
	}
}

// TestRuleMetadata pins the registry: at least the six contract rules, each
// with a non-empty name and doc, names unique.
func TestRuleMetadata(t *testing.T) {
	rules := AllRules()
	if len(rules) < 6 {
		t.Fatalf("AllRules() = %d rules, want >= 6", len(rules))
	}
	seen := map[string]bool{}
	for _, r := range rules {
		if r.Name() == "" || r.Doc() == "" {
			t.Errorf("rule %T has empty name or doc", r)
		}
		if seen[r.Name()] {
			t.Errorf("duplicate rule name %q", r.Name())
		}
		seen[r.Name()] = true
	}
	for _, name := range []string{"mutexscope", "snapshotmut", "nodefaultmux", "errsink", "goroleak", "walltime"} {
		if !seen[name] {
			t.Errorf("missing contract rule %q", name)
		}
	}
}

// TestDiagnosticString pins the human-readable finding format the CLI
// prints.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "walltime", Message: "no clocks"}
	d.Pos.Filename = "a/b.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "a/b.go:3:7: no clocks [walltime]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestRepoIsClean is the acceptance gate in test form: the real module must
// produce zero unsuppressed diagnostics. Deleting any invariant-preserving
// fix from this PR turns this red (and `make sirenlint` with it).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; run without -short")
	}
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading repo module: %v", err)
	}
	res := Run(mod, AllRules())
	for _, d := range res.Diagnostics {
		t.Errorf("repo finding: %s", d)
	}
	if len(res.Suppressed) == 0 {
		t.Log("note: no suppressed findings (expected at least the compaction fsync exemptions)")
	}
}
