// //lint:ignore directive handling.
//
// A directive names the rules it silences and must say why:
//
//	//lint:ignore mutexscope freeze-the-world compaction holds every lock by design
//	fsyncDir(dir)
//
// It covers findings on its own line (trailing-comment form) and on the
// line immediately below (lead-comment form). Several rules are silenced
// at once with a comma-separated list. A directive with a wrong rule name
// silences nothing, and one with no reason is itself a finding (pseudo-rule
// "ignore") — the engine refuses undocumented suppressions.
package lintkit

import (
	"go/ast"
	"strings"
)

const ignorePrefix = "//lint:ignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	file  string
	line  int
	rules map[string]bool
}

// collectDirectives scans every file comment in the module, returning the
// valid directives plus "ignore" diagnostics for malformed ones.
func collectDirectives(mod *Module) ([]directive, []Diagnostic) {
	var dirs []directive
	var bad []Diagnostic
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, diag, ok := parseDirective(mod, c)
					if !ok {
						continue
					}
					if diag != nil {
						bad = append(bad, *diag)
						continue
					}
					dirs = append(dirs, d)
				}
			}
		}
	}
	return dirs, bad
}

// parseDirective parses one comment. ok is false when the comment is not a
// //lint:ignore directive at all; diag is non-nil when it is one but is
// malformed.
func parseDirective(mod *Module, c *ast.Comment) (directive, *Diagnostic, bool) {
	if !strings.HasPrefix(c.Text, ignorePrefix) {
		return directive{}, nil, false
	}
	rest := c.Text[len(ignorePrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return directive{}, nil, false // e.g. //lint:ignored — not ours
	}
	pos := mod.Fset.Position(c.Pos())
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return directive{}, &Diagnostic{
			Rule:    "ignore",
			Pos:     pos,
			Message: "malformed //lint:ignore directive: need a rule name and a reason",
		}, true
	}
	rules := make(map[string]bool)
	for _, r := range strings.Split(fields[0], ",") {
		if r != "" {
			rules[r] = true
		}
	}
	return directive{file: pos.Filename, line: pos.Line, rules: rules}, nil, true
}

// suppressed reports whether some directive covers d: same file, the
// directive's own line or the one above, and a matching rule name.
func suppressed(dirs []directive, d Diagnostic) bool {
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename {
			continue
		}
		if d.Pos.Line != dir.line && d.Pos.Line != dir.line+1 {
			continue
		}
		if dir.rules[d.Rule] {
			return true
		}
	}
	return false
}
