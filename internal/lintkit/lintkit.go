// Package lintkit is SIREN's project-invariant static analyzer: a small
// rule engine over go/parser + go/types that machine-checks the contracts
// DESIGN.md states in prose — the group-commit lock discipline, snapshot
// immutability, serving-tier coexistence, durability error handling,
// goroutine drain-on-close, and analysis-path determinism.
//
// Rules are intra-procedural and deliberately conservative: each encodes
// one invariant the repository already documents, tuned so a clean tree
// stays clean without ceremony. A finding a human judges intentional is
// silenced in place with
//
//	//lint:ignore <rule> <reason>
//
// on (or immediately above) the offending line; the rule name must match
// and the reason is mandatory, so suppressions stay auditable. The engine
// is wired into `make lint` and CI through cmd/sirenlint (DESIGN.md §10).
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Rule)
}

// Pass hands one type-checked package to a rule.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package

	rule  string
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.rule,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// Rule is one project invariant.
type Rule interface {
	// Name is the identifier //lint:ignore directives and -rules selections
	// use.
	Name() string
	// Doc is a one-line description of the invariant.
	Doc() string
	// Run analyzes one package and reports findings through the pass.
	Run(p *Pass)
}

// AllRules returns every registered rule, in stable order.
func AllRules() []Rule {
	return []Rule{
		errSink{},
		goroLeak{},
		mutexScope{},
		noDefaultMux{},
		snapshotMut{},
		wallTime{},
	}
}

// Result is one engine run: what fired, and what a directive silenced.
type Result struct {
	Diagnostics []Diagnostic // unsuppressed findings, position-sorted
	Suppressed  []Diagnostic // findings silenced by a valid //lint:ignore
}

// Run applies rules to every package of mod and filters the findings
// through the module's //lint:ignore directives. Malformed directives (no
// reason, unparseable) surface as findings of the pseudo-rule "ignore" —
// a suppression that does not say why does not suppress.
func Run(mod *Module, rules []Rule) Result {
	var diags []Diagnostic
	for _, pkg := range mod.Pkgs {
		for _, r := range rules {
			p := &Pass{Fset: mod.Fset, Pkg: pkg, rule: r.Name(), diags: &diags}
			r.Run(p)
		}
	}

	dirs, bad := collectDirectives(mod)
	diags = append(diags, bad...)

	var res Result
	for _, d := range diags {
		if suppressed(dirs, d) {
			res.Suppressed = append(res.Suppressed, d)
		} else {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	sortDiags(res.Diagnostics)
	sortDiags(res.Suppressed)
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// pathElems reports whether the package import path's last element is one
// of names — how rules scope themselves to the subsystems whose contracts
// they encode (and how fixtures under synthetic module paths still match).
func pathElems(pkg *Package, names ...string) bool {
	path := pkg.ImportPath
	last := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		last = path[i+1:]
	}
	for _, n := range names {
		if last == n {
			return true
		}
	}
	return false
}

// isMainPkg reports whether pkg is a command (package main).
func isMainPkg(pkg *Package) bool { return pkg.Types.Name() == "main" }

// isExample reports whether pkg lives under an examples/ tree — documentation
// code held to documentation standards, not production invariants.
func isExample(pkg *Package) bool {
	return strings.Contains(pkg.ImportPath, "examples/") || strings.HasPrefix(pkg.ImportPath, "examples")
}

// funcIn reports whether obj is the named function or method of the named
// package (matched by package-path suffix so fixtures under synthetic module
// paths behave like the real tree).
func funcIn(obj types.Object, pkgPath, name string) bool {
	f, ok := obj.(*types.Func)
	if !ok || f.Name() != name || f.Pkg() == nil {
		return false
	}
	p := f.Pkg().Path()
	return p == pkgPath || strings.HasSuffix(p, "/"+pkgPath)
}

// namedOrPtrTo unwraps pointers and returns the named type behind t, or nil.
func namedOrPtrTo(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// typeIs reports whether t (or what it points to) is the named type
// pkgElem.name, with pkgElem matched as an import-path element.
func typeIs(t types.Type, pkgElem, name string) bool {
	n := namedOrPtrTo(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Name() != name {
		return false
	}
	p := n.Obj().Pkg().Path()
	return p == pkgElem || strings.HasSuffix(p, "/"+pkgElem)
}
