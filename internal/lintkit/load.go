// Module loading: the whole repository parsed and type-checked with nothing
// but the standard library.
//
// The loader walks the module tree, parses every buildable non-test file,
// topologically sorts the packages along their intra-module import edges,
// and type-checks them in order. Imports outside the module (the standard
// library) resolve through go/importer's "source" importer, which
// type-checks GOROOT packages from source — no export data, no go/packages,
// no x/tools, so the module keeps its zero-dependency contract while rules
// still see full types.Info.
//
// Test files are deliberately excluded: the invariants the rules encode
// (lock discipline, durability error paths, snapshot immutability) bind
// production code; tests routinely and legitimately violate them (bare
// Closes on fixtures, wall-clock deadlines, fire-and-forget goroutines).
package lintkit

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Module is the loaded analysis unit: every buildable package of one Go
// module, type-checked, in topological (dependency-first) order.
type Module struct {
	Root string // absolute filesystem root
	Path string // module path from go.mod ("" for fixture trees)
	Fset *token.FileSet
	Pkgs []*Package
}

// skipDirs are directory names the go tool itself never descends into.
var skipDirs = map[string]bool{"testdata": true, "vendor": true}

// LoadModule loads the module rooted at dir (its go.mod names the module
// path) — the entry point cmd/sirenlint uses.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lintkit: %s is not a module root: %w", dir, err)
	}
	m := regexp.MustCompile(`(?m)^module\s+(\S+)`).FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lintkit: no module line in %s/go.mod", dir)
	}
	return Load(abs, string(m[1]))
}

// Load loads every package under root, deriving import paths by joining
// modPath with each package's directory relative to root. Fixture trees use
// a synthetic modPath (the rule tests use "fix") so rules that scope by
// import-path element see stable paths.
func Load(root, modPath string) (*Module, error) {
	mod := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}

	type rawPkg struct {
		importPath string
		dir        string
		files      []*ast.File
		imports    map[string]bool
	}
	var raws []*rawPkg
	byPath := make(map[string]*rawPkg)

	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (skipDirs[name] || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := parseDir(mod.Fset, path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = filepath.ToSlash(rel)
			if modPath != "" {
				importPath = modPath + "/" + importPath
			}
		}
		rp := &rawPkg{importPath: importPath, dir: path, files: files, imports: make(map[string]bool)}
		for _, f := range files {
			for _, imp := range f.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				rp.imports[p] = true
			}
		}
		raws = append(raws, rp)
		byPath[importPath] = rp
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(raws, func(i, j int) bool { return raws[i].importPath < raws[j].importPath })

	// Topological order along intra-module edges (imports outside the module
	// resolve through the source importer and impose no ordering here).
	order := make([]*rawPkg, 0, len(raws))
	state := make(map[*rawPkg]int) // 0 unvisited, 1 in progress, 2 done
	var visit func(rp *rawPkg) error
	visit = func(rp *rawPkg) error {
		switch state[rp] {
		case 1:
			return fmt.Errorf("lintkit: import cycle through %s", rp.importPath)
		case 2:
			return nil
		}
		state[rp] = 1
		deps := make([]string, 0, len(rp.imports))
		for p := range rp.imports {
			deps = append(deps, p)
		}
		sort.Strings(deps)
		for _, p := range deps {
			if dep, ok := byPath[p]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[rp] = 2
		order = append(order, rp)
		return nil
	}
	for _, rp := range raws {
		if err := visit(rp); err != nil {
			return nil, err
		}
	}

	imp := &chainImporter{
		std:  importer.ForCompiler(mod.Fset, "source", nil),
		pkgs: make(map[string]*types.Package),
	}
	for _, rp := range order {
		pkg, info, err := check(mod.Fset, rp.importPath, rp.files, imp)
		if err != nil {
			return nil, fmt.Errorf("lintkit: type-checking %s: %w", rp.importPath, err)
		}
		imp.pkgs[rp.importPath] = pkg
		mod.Pkgs = append(mod.Pkgs, &Package{
			ImportPath: rp.importPath,
			Dir:        rp.dir,
			Files:      rp.files,
			Types:      pkg,
			Info:       info,
		})
	}
	return mod, nil
}

func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// chainImporter resolves module-internal imports from the already-checked
// set and everything else (the standard library) from GOROOT source.
type chainImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.pkgs[path]; ok {
		return p, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return c.std.Import(path)
}

// parseDir parses the buildable non-test Go files of one directory,
// returning nil when the directory holds no such files. Files are filtered
// the way `go build` filters them: _test.go files, files whose names start
// with "." or "_", files excluded by a GOOS/GOARCH filename suffix, and
// files whose //go:build (or // +build) constraint evaluates false for the
// running platform are all skipped.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !suffixMatches(name) {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lintkit: %w", err)
		}
		if !constraintsMatch(f) {
			continue
		}
		// A directory can legally hold one package (plus its external test
		// package, which we skip). Anything else is a layout error worth
		// surfacing rather than mis-typechecking.
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("lintkit: %s holds two packages: %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	return files, nil
}

// knownOS / knownArch mirror the go tool's implicit filename-constraint
// vocabulary (a trailing _GOOS, _GOARCH, or _GOOS_GOARCH element).
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true, "linux": true,
	"netbsd": true, "openbsd": true, "plan9": true, "solaris": true,
	"wasip1": true, "windows": true,
}
var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true, "loong64": true,
	"mips": true, "mips64": true, "mips64le": true, "mipsle": true,
	"ppc64": true, "ppc64le": true, "riscv64": true, "s390x": true,
	"wasm": true,
}

// unixOS is the set of GOOS values the "unix" build tag covers.
var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// suffixMatches applies the implicit filename constraints to the running
// platform (e.g. fdatasync_linux.go is skipped everywhere but linux).
func suffixMatches(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) == 1 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] == runtime.GOOS
		}
		return true
	}
	if knownOS[last] {
		return last == runtime.GOOS
	}
	return true
}

// constraintsMatch evaluates a file's //go:build line for the running
// platform. Tags: GOOS, GOARCH, "unix" on unix-like systems, and every
// go1.N release tag; "cgo" and experiment tags are off (nothing in a
// zero-dependency module needs them).
func constraintsMatch(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints live above the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			ok := expr.Eval(func(tag string) bool {
				switch {
				case tag == runtime.GOOS || tag == runtime.GOARCH:
					return true
				case tag == "unix":
					return unixOS[runtime.GOOS]
				case strings.HasPrefix(tag, "go1."):
					return true // the running toolchain is current
				}
				return false
			})
			if !ok {
				return false
			}
		}
	}
	return true
}
