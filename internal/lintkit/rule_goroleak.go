// Rule goroleak: library goroutines carry a visible join.
//
// Drain-on-close (DESIGN.md §4) means every goroutine a library package
// starts is accounted for: Close/Shutdown can wait for it, tests under
// -race see it exit, and nothing keeps writing after the store is sealed.
// The rule flags a `go` statement in a library package unless the join
// mechanism is visible right there — the goroutine body touches a
// sync.WaitGroup, a channel, or a context; the launched method's receiver
// struct carries one; the launch passes one in as an argument; or the
// launching function itself waits. This is a heuristic, not an escape
// analysis: it accepts anything that plausibly joins and flags only
// fire-and-forget launches with no lifecycle hook in sight.
package lintkit

import (
	"go/ast"
	"go/types"
)

type goroLeak struct{}

func (goroLeak) Name() string { return "goroleak" }
func (goroLeak) Doc() string {
	return "library goroutines must have a visible join (WaitGroup, channel, or context)"
}

func (goroLeak) Run(p *Pass) {
	if isMainPkg(p.Pkg) || isExample(p.Pkg) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			launcherWaits := containsWait(p, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if launcherWaits || joined(p, g) {
					return true
				}
				p.Reportf(g.Pos(),
					"goroutine started without a visible join: thread a sync.WaitGroup, done channel, or context so Close can drain it")
				return true
			})
		}
	}
}

// containsWait reports whether body calls a sync Wait (WaitGroup or Cond) —
// a launcher that waits in-line has its join.
func containsWait(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if funcIn(p.ObjectOf(sel.Sel), "sync", "Wait") {
			found = true
		}
		return !found
	})
	return found
}

// joined reports whether the go statement itself exhibits a join mechanism.
func joined(p *Pass, g *ast.GoStmt) bool {
	// go func() { ... }(): the body referencing a WaitGroup, channel, or
	// context is the join (wg.Done, sends/closes, ctx.Done selects).
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if referencesJoinType(p, lit.Body) {
			return true
		}
	}
	// go s.loop(): the receiver struct carrying the lifecycle state
	// (WaitGroup, done channel, context field) is the join.
	if sel, ok := g.Call.Fun.(*ast.SelectorExpr); ok {
		if n := namedOrPtrTo(p.TypeOf(sel.X)); n != nil {
			if st, ok := n.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if joinType(st.Field(i).Type()) {
						return true
					}
				}
			}
		}
	}
	// go worker(ch, ctx): passing the mechanism in counts too.
	for _, arg := range g.Call.Args {
		if joinType(p.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// referencesJoinType reports whether any identifier in body denotes a
// value of a join-capable type.
func referencesJoinType(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.ObjectOf(id); obj != nil && joinType(obj.Type()) {
			found = true
		}
		return !found
	})
	return found
}

// joinType reports whether t is a type that plausibly joins a goroutine:
// a channel, a sync.WaitGroup, or a context.Context.
func joinType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return typeIs(t, "sync", "WaitGroup") || typeIs(t, "context", "Context")
}
