// Rule walltime: no wall-clock reads in the deterministic analysis tier.
//
// The identify equivalence oracles (DESIGN.md §9) compare indexed against
// exhaustive results and replay recorded campaigns byte-for-byte; both
// proofs assume analysis, editdist, and ssdeep are pure functions of their
// inputs. A time.Now/Since/Until call in those packages makes results (or
// tie-breaks, or pruning thresholds) depend on when the code ran, which
// silently voids the oracles. Timing instrumentation belongs in callers or
// benchmarks, not in the kernels.
package lintkit

import "go/ast"

type wallTime struct{}

func (wallTime) Name() string { return "walltime" }
func (wallTime) Doc() string {
	return "forbid time.Now/Since/Until in the deterministic analysis/editdist/ssdeep packages"
}

func (wallTime) Run(p *Pass) {
	if !pathElems(p.Pkg, "analysis", "editdist", "ssdeep") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.ObjectOf(sel.Sel)
			for _, name := range []string{"Now", "Since", "Until"} {
				if funcIn(obj, "time", name) {
					p.Reportf(sel.Pos(),
						"time.%s in deterministic package %s: analysis results must not depend on the wall clock",
						name, p.Pkg.Types.Name())
				}
			}
			return true
		})
	}
}
