// Rule nodefaultmux: library packages keep their hands off process-global
// HTTP and expvar state.
//
// The serving tier's coexistence contract (DESIGN.md §8, PR 5) is that
// internal/server builds its own *http.ServeMux and its own unregistered
// expvar.Map, so a host process — siren-receiver with -serve-addr, an
// embedding test, a future replica binary — can mount it wherever it
// wants and run two of them side by side. Registering on
// http.DefaultServeMux or through expvar.Publish/New* from a library
// package breaks that: second registration panics, and the global mux
// becomes load-bearing behind the host's back. Only package main may make
// process-global decisions.
package lintkit

import (
	"go/ast"
	"go/types"
)

type noDefaultMux struct{}

func (noDefaultMux) Name() string { return "nodefaultmux" }
func (noDefaultMux) Doc() string {
	return "forbid http.DefaultServeMux, http.Handle/HandleFunc, and global expvar registration outside package main"
}

func (noDefaultMux) Run(p *Pass) {
	if isMainPkg(p.Pkg) || isExample(p.Pkg) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.ObjectOf(sel.Sel)
			if v, ok := obj.(*types.Var); ok && v.Name() == "DefaultServeMux" &&
				v.Pkg() != nil && v.Pkg().Path() == "net/http" {
				p.Reportf(sel.Pos(),
					"http.DefaultServeMux in library package %s: serve on a locally built mux so hosts control mounting",
					p.Pkg.Types.Name())
				return true
			}
			// Only the package-level functions are global registration;
			// (*ServeMux).Handle on a locally built mux is exactly what the
			// contract asks for, so require a nil receiver.
			if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil && fn.Pkg() != nil {
				name, pkg := fn.Name(), fn.Pkg().Path()
				switch {
				case pkg == "net/http" && (name == "Handle" || name == "HandleFunc"):
					p.Reportf(sel.Pos(),
						"http.%s registers on the global DefaultServeMux from library package %s: use a local *http.ServeMux",
						name, p.Pkg.Types.Name())
				case pkg == "expvar" && (name == "Publish" || name == "NewInt" ||
					name == "NewFloat" || name == "NewMap" || name == "NewString"):
					p.Reportf(sel.Pos(),
						"expvar.%s registers a process-global metric from library package %s: keep an unregistered expvar.Map and let the host publish it",
						name, p.Pkg.Types.Name())
				}
			}
			return true
		})
	}
}
