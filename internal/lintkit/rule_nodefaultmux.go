// Rule nodefaultmux: library packages keep their hands off process-global
// HTTP and expvar state.
//
// The serving tier's coexistence contract (DESIGN.md §8, PR 5) is that
// internal/server builds its own *http.ServeMux and its own unregistered
// expvar.Map, so a host process — siren-receiver with -serve-addr, an
// embedding test, a future replica binary — can mount it wherever it
// wants and run two of them side by side. Registering on
// http.DefaultServeMux or through expvar.Publish/New* from a library
// package breaks that: second registration panics, and the global mux
// becomes load-bearing behind the host's back. Only package main may make
// process-global decisions.
package lintkit

import (
	"go/ast"
	"go/types"
)

type noDefaultMux struct{}

func (noDefaultMux) Name() string { return "nodefaultmux" }
func (noDefaultMux) Doc() string {
	return "forbid http.DefaultServeMux, http.Handle/HandleFunc, global expvar registration outside package main, and blank net/http/pprof imports anywhere"
}

func (noDefaultMux) Run(p *Pass) {
	// The blank pprof import is forbidden even in package main: its only
	// effect is init-time registration on http.DefaultServeMux, which every
	// siren binary deliberately never serves (each owns a dedicated mux).
	// A main that wants profiling imports the package normally and mounts
	// pprof.Index/Cmdline/Profile/Symbol/Trace on its own mux, so the
	// handlers are visible, gated by a flag, and on the listener the
	// operator chose.
	if !isExample(p.Pkg) {
		for _, f := range p.Pkg.Files {
			for _, imp := range f.Imports {
				if imp.Name != nil && imp.Name.Name == "_" && imp.Path.Value == `"net/http/pprof"` {
					p.Reportf(imp.Pos(),
						"blank net/http/pprof import in package %s registers profiling on the global DefaultServeMux: import it normally and mount its handler funcs on a local mux",
						p.Pkg.Types.Name())
				}
			}
		}
	}
	if isMainPkg(p.Pkg) || isExample(p.Pkg) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.ObjectOf(sel.Sel)
			if v, ok := obj.(*types.Var); ok && v.Name() == "DefaultServeMux" &&
				v.Pkg() != nil && v.Pkg().Path() == "net/http" {
				p.Reportf(sel.Pos(),
					"http.DefaultServeMux in library package %s: serve on a locally built mux so hosts control mounting",
					p.Pkg.Types.Name())
				return true
			}
			// Only the package-level functions are global registration;
			// (*ServeMux).Handle on a locally built mux is exactly what the
			// contract asks for, so require a nil receiver.
			if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil && fn.Pkg() != nil {
				name, pkg := fn.Name(), fn.Pkg().Path()
				switch {
				case pkg == "net/http" && (name == "Handle" || name == "HandleFunc"):
					p.Reportf(sel.Pos(),
						"http.%s registers on the global DefaultServeMux from library package %s: use a local *http.ServeMux",
						name, p.Pkg.Types.Name())
				case pkg == "expvar" && (name == "Publish" || name == "NewInt" ||
					name == "NewFloat" || name == "NewMap" || name == "NewString"):
					p.Reportf(sel.Pos(),
						"expvar.%s registers a process-global metric from library package %s: keep an unregistered expvar.Map and let the host publish it",
						name, p.Pkg.Types.Name())
				}
			}
			return true
		})
	}
}
