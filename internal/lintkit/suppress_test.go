package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// modFromSource builds a minimal Module (no type info — directive handling
// is purely syntactic) from one source file.
func modFromSource(t *testing.T, src string) *Module {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Module{Fset: fset, Pkgs: []*Package{{ImportPath: "p", Files: []*ast.File{f}}}}
}

func TestDirectiveParsing(t *testing.T) {
	src := `package p

func f() {
	//lint:ignore walltime a documented reason
	_ = 1
	//lint:ignore walltime,errsink two rules one reason
	_ = 2
	//lint:ignore walltime
	_ = 3
	//lint:ignored walltime not our directive at all
	_ = 4
}
`
	mod := modFromSource(t, src)
	dirs, bad := collectDirectives(mod)

	if len(dirs) != 2 {
		t.Fatalf("valid directives = %d, want 2", len(dirs))
	}
	if !dirs[0].rules["walltime"] || len(dirs[0].rules) != 1 {
		t.Errorf("first directive rules = %v, want {walltime}", dirs[0].rules)
	}
	if !dirs[1].rules["walltime"] || !dirs[1].rules["errsink"] || len(dirs[1].rules) != 2 {
		t.Errorf("second directive rules = %v, want {walltime, errsink}", dirs[1].rules)
	}

	// The reason-less directive is itself a finding; the //lint:ignored
	// comment is not a directive and produces nothing.
	if len(bad) != 1 {
		t.Fatalf("malformed directives = %d, want 1 (the reason-less one)", len(bad))
	}
	if bad[0].Rule != "ignore" || !strings.Contains(bad[0].Message, "rule name and a reason") {
		t.Errorf("malformed diagnostic = %v", bad[0])
	}
	if bad[0].Pos.Line != 8 {
		t.Errorf("malformed diagnostic at line %d, want 8", bad[0].Pos.Line)
	}
}

func TestSuppressionMatching(t *testing.T) {
	dir := directive{file: "a.go", line: 10, rules: map[string]bool{"walltime": true}}
	dirs := []directive{dir}

	mk := func(file string, line int, rule string) Diagnostic {
		d := Diagnostic{Rule: rule}
		d.Pos.Filename = file
		d.Pos.Line = line
		return d
	}

	cases := []struct {
		name string
		d    Diagnostic
		want bool
	}{
		{"own line", mk("a.go", 10, "walltime"), true},
		{"next line", mk("a.go", 11, "walltime"), true},
		{"two lines down", mk("a.go", 12, "walltime"), false},
		{"line above", mk("a.go", 9, "walltime"), false},
		{"wrong rule", mk("a.go", 11, "errsink"), false},
		{"wrong file", mk("b.go", 11, "walltime"), false},
	}
	for _, c := range cases {
		if got := suppressed(dirs, c.d); got != c.want {
			t.Errorf("%s: suppressed = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestMalformedDirectiveSurfacesInRun proves a reason-less directive both
// fails to suppress and surfaces as an unsuppressed "ignore" finding
// through the full engine path.
func TestMalformedDirectiveSurfacesInRun(t *testing.T) {
	mod := loadFixture(t, "ignorebad")
	res := Run(mod, ruleByName(t, "walltime"))

	var sawIgnore, sawWalltime bool
	for _, d := range res.Diagnostics {
		switch d.Rule {
		case "ignore":
			sawIgnore = true
		case "walltime":
			sawWalltime = true
		}
	}
	if !sawIgnore {
		t.Error("reason-less directive did not surface as an ignore finding")
	}
	if !sawWalltime {
		t.Error("reason-less directive wrongly suppressed the walltime finding")
	}
	if len(res.Suppressed) != 0 {
		t.Errorf("suppressed = %d findings, want 0", len(res.Suppressed))
	}
}
