// Rule errsink: durability errors don't vanish.
//
// The no-acked-row-lost guarantee (DESIGN.md §3) is only as strong as the
// weakest error path: a Close that silently fails on a WAL segment, a Sync
// whose error is dropped in a shutdown sequence, an fdatasync return code
// thrown away during compaction or while sealing a run file. In the
// durability packages (sirendb, its runfmt run-file layer, receiver,
// catalog) and in every command, a discarded error from a
// Close/Sync/Flush/fdatasync-class call is a finding. Check it, join it
// into the function's error return, or — for cleanup on a path that is
// already failing — assign it to _ so the discard is visible and
// deliberate.
package lintkit

import (
	"go/ast"
	"go/types"
)

type errSink struct{}

func (errSink) Name() string { return "errsink" }
func (errSink) Doc() string {
	return "unchecked error from Close/Sync/Flush/fdatasync-class calls in durability paths"
}

// errSinkNames are the durability-flavored calls whose error return must
// not be silently dropped.
var errSinkNames = map[string]bool{
	"Close": true, "Sync": true, "Flush": true,
	"fdatasync": true, "fsyncDir": true, "Fdatasync": true,
}

func (errSink) Run(p *Pass) {
	if !pathElems(p.Pkg, "sirendb", "runfmt", "receiver", "catalog") && !isMainPkg(p.Pkg) {
		return
	}
	if isExample(p.Pkg) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			how := ""
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
				how = "discarded"
			case *ast.DeferStmt:
				call = s.Call
				how = "discarded by defer"
			case *ast.GoStmt:
				call = s.Call
				how = "discarded by go"
			}
			if call == nil {
				return true
			}
			if name, ok := errReturningSink(p, call); ok {
				p.Reportf(call.Pos(),
					"error from %s %s: check it, join it into the returned error, or assign it to _ explicitly",
					name, how)
			}
			return true
		})
	}
}

// errReturningSink reports whether call is a Close/Sync/Flush/fdatasync-class
// call with an error among its results.
func errReturningSink(p *Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	if !errSinkNames[id.Name] {
		return "", false
	}
	fn, ok := p.ObjectOf(id).(*types.Func)
	if !ok {
		return "", false
	}
	res := fn.Type().(*types.Signature).Results()
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			return fn.Name(), true
		}
	}
	return "", false
}
