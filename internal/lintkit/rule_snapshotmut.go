// Rule snapshotmut: snapshots are forever-immutable.
//
// The lock-free read path (DESIGN.md §5, PR 3/4) works because a
// sirendb.Snapshot / MergedSnapshot / postprocess.SnapshotView hands every
// caller the same underlying arrays: accessors return shared slices and
// maps, concurrent scanners iterate them with no lock, and the catalog's
// incremental refresh assumes rows it saw once never change. Writing
// through an accessor result — v[i] = x, in-place sort, delete on a
// returned map, even a self-append that can overwrite shared capacity —
// corrupts data under every other reader. Callers who need a mutable view
// copy first.
//
// The analysis is intra-procedural taint: variables initialized (directly
// or via aliasing) from a snapshot accessor returning a slice or map are
// tainted, and element writes, in-place sorts, deletes, and self-appends
// on tainted values are findings.
package lintkit

import (
	"go/ast"
	"go/token"
	"go/types"
)

type snapshotMut struct{}

func (snapshotMut) Name() string { return "snapshotmut" }
func (snapshotMut) Doc() string {
	return "no writes to slices/maps obtained from Snapshot/SnapshotView accessors"
}

func (snapshotMut) Run(p *Pass) {
	if isExample(p.Pkg) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSnapshotWrites(p, fd.Body)
		}
	}
}

// snapshotAccessor reports whether call is a method on one of the snapshot
// types whose result is a (shared) slice or map, returning a description.
func snapshotAccessor(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	recv := p.TypeOf(sel.X)
	switch {
	case typeIs(recv, "sirendb", "Snapshot"),
		typeIs(recv, "sirendb", "MergedSnapshot"),
		typeIs(recv, "postprocess", "SnapshotView"):
	default:
		return "", false
	}
	if t := p.TypeOf(call); t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			return "snapshot accessor " + sel.Sel.Name, true
		}
	}
	return "", false
}

// checkSnapshotWrites runs the taint pass over one function body, in source
// order: accessor results (and their aliases) become tainted, and writes
// through tainted values are reported.
func checkSnapshotWrites(p *Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]string)

	// taintRoot resolves e to a taint description if it is (or aliases) an
	// accessor result: either a direct accessor call expression or an
	// identifier previously marked tainted.
	taintRoot := func(e ast.Expr) (string, bool) {
		e = rootExpr(e)
		if call, ok := e.(*ast.CallExpr); ok {
			return snapshotAccessor(p, call)
		}
		if id, ok := e.(*ast.Ident); ok {
			if src, ok := tainted[p.ObjectOf(id)]; ok {
				return src, true
			}
		}
		return "", false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Writes: v[i] = x (or v[i].F = x) where v is tainted, and the
			// capacity-stealing self-append v = append(v, ...).
			for i, lhs := range n.Lhs {
				if idx := innermostIndex(lhs); idx != nil {
					if src, ok := taintRoot(idx.X); ok {
						p.Reportf(lhs.Pos(),
							"element write through %s result: snapshot data is shared and immutable — copy before modifying", src)
					}
				}
				if i < len(n.Rhs) {
					checkSelfAppend(p, taintRoot, lhs, n.Rhs[i])
				}
			}
			// Taint propagation: v := snap.Jobs(), w := v.
			if n.Tok == token.DEFINE || n.Tok == token.ASSIGN {
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if src, ok := taintRoot(n.Rhs[i]); ok && !isAppendCall(n.Rhs[i]) {
						if obj := p.ObjectOf(id); obj != nil {
							tainted[obj] = src
						}
					}
				}
			}
		case *ast.CallExpr:
			checkMutatingCall(p, taintRoot, n)
		}
		return true
	})
}

// rootExpr unwraps index, selector, slice, and paren layers to the base
// expression: snap.Jobs()[3].Field → snap.Jobs().
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}

// innermostIndex finds the index expression in an lvalue chain, if any:
// v[i] = x and v[i].F = x both write through v's backing array.
func innermostIndex(e ast.Expr) *ast.IndexExpr {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// checkSelfAppend flags v = append(v, ...) on tainted v: when the shared
// slice has spare capacity the append writes into the snapshot's backing
// array that other readers are scanning.
func checkSelfAppend(p *Pass, taintRoot func(ast.Expr) (string, bool), lhs, rhs ast.Expr) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isAppendCall(call) || len(call.Args) == 0 {
		return
	}
	lhsID, ok := lhs.(*ast.Ident)
	if !ok {
		return
	}
	argID, ok := rootExpr(call.Args[0]).(*ast.Ident)
	if !ok || p.ObjectOf(argID) == nil || p.ObjectOf(argID) != p.ObjectOf(lhsID) {
		return
	}
	if src, ok := taintRoot(call.Args[0]); ok {
		p.Reportf(rhs.Pos(),
			"self-append on %s result can write into the snapshot's shared backing array — copy first", src)
	}
}

// checkMutatingCall flags in-place mutation calls on tainted values:
// delete(m, k) and the sort package's in-place sorts.
func checkMutatingCall(p *Pass, taintRoot func(ast.Expr) (string, bool), call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
		if src, ok := taintRoot(call.Args[0]); ok {
			p.Reportf(call.Pos(), "delete on %s result mutates the shared snapshot map — copy first", src)
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
		return
	}
	switch fn.Name() {
	case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
		if src, ok := taintRoot(call.Args[0]); ok {
			p.Reportf(call.Pos(), "sort.%s mutates %s result in place — sort a copy", fn.Name(), src)
		}
	}
}
