// Rule mutexscope: nothing blocking runs under a store or shard mutex.
//
// The group-commit discipline (DESIGN.md §3, PR 1/2) is precise about what
// a shard mutex may cover: index updates and the in-order WAL append into
// the page cache — both microsecond work. The expensive, blocking work —
// fdatasync, directory fsync, network I/O, sleeping, waiting on other
// goroutines, channel operations — happens outside the mutex, or every
// writer on the shard stalls behind one flush. The rule walks each
// function tracking which mutexes may be held (sync.Mutex / sync.RWMutex
// Lock/RLock by canonical receiver expression) and reports blocking
// operations encountered while the held set is non-empty.
//
// Deliberate exceptions are part of the design and handled structurally:
// mutexes named syncMu exist precisely to serialize fdatasync outside `mu`
// and are exempt; `go` statements start with an empty held set (a new
// goroutine does not inherit the launcher's locks); and the rare
// freeze-the-world path (compaction) documents itself with
// //lint:ignore mutexscope.
//
// The walk is a structural may-held analysis, not a CFG: a mutex counts as
// held past a merge point when any fall-through arm kept it, arms that end
// in return/break/continue/panic do not fall through and are excluded, a
// loop body that leaves a mutex locked (the lock-all-shards-with-deferred-
// unlock pattern) leaves it held after the loop, and `defer mu.Unlock()`
// keeps the mutex held for the remainder of the function — which is
// exactly the semantics at run time.
package lintkit

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

type mutexScope struct{}

func (mutexScope) Name() string { return "mutexscope" }
func (mutexScope) Doc() string {
	return "no blocking operations (fsync, net, sleep, channel ops, waits) while a mutex is held"
}

func (mutexScope) Run(p *Pass) {
	if isMainPkg(p.Pkg) || isExample(p.Pkg) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &mutexWalker{p: p}
			w.stmts(fd.Body.List, held{})
		}
	}
}

// held maps canonical mutex expressions ("s.mu", "sh.store.mu") to the
// position of the Lock call that acquired them.
type held map[string]token.Pos

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// union merges may-held sets: after a merge point a mutex counts as held
// when any fall-through arm kept it.
func union(a, b held) held {
	out := a.clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

type mutexWalker struct{ p *Pass }

// stmts walks a statement list with the held set at entry. It returns the
// held set at fall-through and whether the list terminates (ends in
// return/branch/panic), in which case it does not fall through at all.
func (w *mutexWalker) stmts(list []ast.Stmt, h held) (held, bool) {
	for _, s := range list {
		var term bool
		h, term = w.stmt(s, h)
		if term {
			// Anything after a terminating statement is unreachable.
			return h, true
		}
	}
	return h, false
}

func (w *mutexWalker) stmt(s ast.Stmt, h held) (held, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, locks, ok := w.lockOp(s.X); ok {
			if key == "" {
				return h, false // exempt (syncMu) or untrackable receiver
			}
			h = h.clone()
			if locks {
				h[key] = s.Pos()
			} else {
				delete(h, key)
			}
			return h, false
		}
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := w.p.ObjectOf(id).(*types.Builtin); isBuiltin {
					w.exprs(h, call.Args...)
					return h, true
				}
			}
		}
		w.exprs(h, s.X)

	case *ast.AssignStmt:
		w.exprs(h, s.Rhs...)
		w.exprs(h, s.Lhs...)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(h, vs.Values...)
				}
			}
		}

	case *ast.ReturnStmt:
		w.exprs(h, s.Results...)
		return h, true

	case *ast.BranchStmt:
		// break/continue/goto leave this straight-line path; fallthrough
		// continues into the next clause, which is walked independently.
		return h, s.Tok != token.FALLTHROUGH

	case *ast.IncDecStmt:
		w.exprs(h, s.X)

	case *ast.SendStmt:
		if len(h) > 0 {
			w.report(s.Pos(), "channel send", h)
		}
		w.exprs(h, s.Chan, s.Value)

	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return: the mutex stays held for
		// every remaining statement, so the held set is unchanged. Other
		// deferred calls run after this walk's knowledge ends; only their
		// argument expressions are evaluated here and now.
		if _, _, ok := w.lockOp(s.Call); !ok {
			w.exprs(h, s.Call.Args...)
		}

	case *ast.GoStmt:
		// A new goroutine holds none of the launcher's locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List, held{})
		}
		w.exprs(h, s.Call.Args...)

	case *ast.BlockStmt:
		return w.stmts(s.List, h)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, h)

	case *ast.IfStmt:
		if s.Init != nil {
			h, _ = w.stmt(s.Init, h)
		}
		w.exprs(h, s.Cond)
		bodyExit, bodyTerm := w.stmts(s.Body.List, h.clone())
		elseExit, elseTerm := h.clone(), false
		if s.Else != nil {
			elseExit, elseTerm = w.stmt(s.Else, elseExit)
		}
		switch {
		case bodyTerm && elseTerm:
			return h, true
		case bodyTerm:
			return elseExit, false
		case elseTerm:
			return bodyExit, false
		}
		return union(bodyExit, elseExit), false

	case *ast.ForStmt:
		if s.Init != nil {
			h, _ = w.stmt(s.Init, h)
		}
		w.exprs(h, s.Cond)
		bodyExit, bodyTerm := w.stmts(s.Body.List, h.clone())
		if s.Post != nil {
			bodyExit, _ = w.stmt(s.Post, bodyExit)
		}
		if bodyTerm {
			return h, false
		}
		// A lock the body leaves held (deferred unlock) is held after the
		// loop too.
		return union(h, bodyExit), false

	case *ast.RangeStmt:
		if len(h) > 0 {
			if t := w.p.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.report(s.Pos(), "range over channel", h)
				}
			}
		}
		w.exprs(h, s.X)
		bodyExit, bodyTerm := w.stmts(s.Body.List, h.clone())
		if bodyTerm {
			return h, false
		}
		return union(h, bodyExit), false

	case *ast.SwitchStmt:
		if s.Init != nil {
			h, _ = w.stmt(s.Init, h)
		}
		w.exprs(h, s.Tag)
		return w.clauses(s.Body, h)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			h, _ = w.stmt(s.Init, h)
		}
		return w.clauses(s.Body, h)

	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(h) > 0 {
			w.report(s.Pos(), "select without default", h)
		}
		exit := held{}
		fellThrough := false
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			// With a default clause the comm ops are non-blocking by
			// construction; without one the select itself was reported.
			// Either way only the clause bodies need walking.
			clauseExit, clauseTerm := w.stmts(cc.Body, h.clone())
			if !clauseTerm {
				exit = union(exit, clauseExit)
				fellThrough = true
			}
		}
		if !fellThrough {
			if len(s.Body.List) > 0 {
				return h, true // every clause terminates
			}
			return h, false
		}
		return exit, false

	default:
		// EmptyStmt and friends: no expressions, no lock effect.
	}
	return h, false
}

// clauses walks switch/type-switch case bodies. The exit unions every
// fall-through clause plus the no-case-matched path when there is no
// default clause.
func (w *mutexWalker) clauses(body *ast.BlockStmt, h held) (held, bool) {
	exit := held{}
	hasDefault := false
	fellThrough := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		w.exprs(h, cc.List...)
		clauseExit, clauseTerm := w.stmts(cc.Body, h.clone())
		if !clauseTerm {
			exit = union(exit, clauseExit)
			fellThrough = true
		}
	}
	if !hasDefault {
		exit = union(exit, h)
		fellThrough = true
	}
	if !fellThrough && len(body.List) > 0 {
		return h, true
	}
	return exit, false
}

// exprs scans expressions for blocking operations under the current held
// set. Function literals encountered as call arguments are walked with the
// same held set (they may run synchronously under the lock); their bodies
// are excluded from the flat scan.
func (w *mutexWalker) exprs(h held, es ...ast.Expr) {
	var lits []*ast.FuncLit
	for _, e := range es {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				lits = append(lits, n)
				return false
			case *ast.CallExpr:
				if len(h) > 0 {
					if desc := w.blockingCall(n); desc != "" {
						w.report(n.Pos(), desc, h)
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && len(h) > 0 {
					w.report(n.Pos(), "channel receive", h)
				}
			}
			return true
		})
	}
	for _, lit := range lits {
		w.stmts(lit.Body.List, h.clone())
	}
}

func (w *mutexWalker) report(pos token.Pos, what string, h held) {
	key := ""
	for k := range h {
		if key == "" || k < key {
			key = k
		}
	}
	lockPos := w.p.Fset.Position(h[key])
	w.p.Reportf(pos, "%s while %s is held (locked at line %d): blocking work must not run under a store/shard mutex",
		what, key, lockPos.Line)
}

// lockOp recognizes direct Lock/RLock/Unlock/RUnlock calls on sync mutexes
// (including promoted embedded ones). It returns ok=true for any such call;
// key is "" when the mutex is exempt (named syncMu — it exists to serialize
// flushes outside mu) or the receiver is not a stable ident/selector chain.
func (w *mutexWalker) lockOp(e ast.Expr) (key string, locks, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	fn, isFn := w.p.ObjectOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	key = renderExpr(sel.X)
	if key == "syncMu" || strings.HasSuffix(key, ".syncMu") {
		key = ""
	}
	return key, locks, true
}

// blockingCall classifies a call as blocking-under-lock, returning a
// description or "".
func (w *mutexWalker) blockingCall(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := w.p.ObjectOf(fun).(*types.Func); ok {
			if fn.Name() == "fdatasync" || fn.Name() == "fsyncDir" {
				return fn.Name()
			}
		}
	case *ast.SelectorExpr:
		fn, ok := w.p.ObjectOf(fun.Sel).(*types.Func)
		if !ok {
			return ""
		}
		name := fn.Name()
		pkg := ""
		if fn.Pkg() != nil {
			pkg = fn.Pkg().Path()
		}
		sig := fn.Type().(*types.Signature)
		isMethod := sig.Recv() != nil
		switch {
		case name == "fdatasync" || name == "fsyncDir":
			return name
		case pkg == "time" && name == "Sleep":
			return "time.Sleep"
		case pkg == "log" && !isMethod:
			return "log." + name
		case pkg == "sync" && name == "Wait":
			return renderExpr(fun.X) + ".Wait"
		case isMethod && name == "Sync":
			return "Sync (durability flush)"
		case pkg == "net" && !isMethod &&
			(name == "Dial" || name == "DialTimeout" || name == "Listen" || name == "ListenPacket" || name == "ListenUDP" || name == "ListenTCP"):
			return "net." + name
		case pkg == "net" && isMethod &&
			(name == "Read" || name == "Write" || name == "Accept" || name == "ReadFrom" || name == "WriteTo" ||
				name == "ReadFromUDP" || name == "WriteToUDP" || name == "ReadMsgUDP" || name == "WriteMsgUDP"):
			return "network I/O (" + name + ")"
		case pkg == "net/http" &&
			(name == "Do" || name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
			return "http." + name
		}
	}
	return ""
}

// renderExpr canonicalizes an ident/selector chain ("s.mu", "sh.store.mu");
// anything else renders as "" and is not tracked.
func renderExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := renderExpr(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return renderExpr(e.X)
	}
	return ""
}
