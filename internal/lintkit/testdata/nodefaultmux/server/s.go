// Fixture: nodefaultmux fires on process-global HTTP/expvar registration
// from a library package and accepts the local-mux / unregistered-map
// pattern the serving tier actually uses.
package server

import (
	"expvar"
	"net/http"

	_ "net/http/pprof" // want "blank net/http/pprof import in package server"
)

var hits = new(expvar.Map) // ok: unregistered map, host decides whether to publish

func Register(h http.Handler) {
	http.Handle("/jobs", h)                                                   // want "http.Handle registers on the global DefaultServeMux"
	http.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {}) // want "http.HandleFunc registers on the global DefaultServeMux"
	_ = http.DefaultServeMux                                                  // want "http.DefaultServeMux in library package server"
}

func Metrics() {
	_ = expvar.NewMap("siren")   // want "expvar.NewMap registers a process-global metric"
	expvar.Publish("rows", hits) // want "expvar.Publish registers a process-global metric"
}

// Local registration is the contract: the host mounts this mux wherever it
// wants, and two servers can coexist in one process.
func Mux(h http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/jobs", h)                                                   // ok: local mux method
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {}) // ok: local mux method
	hits.Add("mux", 1)
	// expvar.Func is a type conversion, not a registration.
	var f expvar.Var = expvar.Func(func() any { return 1 }) // ok
	_ = f
	return mux
}
