// Fixture: package main may make process-global decisions — that is the
// whole point of the rule's scoping.
package main

import (
	"expvar"
	"net/http"
)

func main() {
	http.Handle("/debug", http.NotFoundHandler())                             // ok: main owns the process
	http.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {}) // ok
	_ = expvar.NewMap("siren")                                                // ok
	_ = http.DefaultServeMux                                                  // ok
}
