// Fixture: package main may make process-global decisions — that is the
// whole point of the rule's scoping. The one exception is the blank
// net/http/pprof import: it fires even here, because its only effect is
// registering on a DefaultServeMux no siren binary serves.
package main

import (
	"expvar"
	"net/http"
	"net/http/pprof"

	_ "net/http/pprof" // want "blank net/http/pprof import in package main"
)

func main() {
	http.Handle("/debug", http.NotFoundHandler())                             // ok: main owns the process
	http.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {}) // ok
	_ = expvar.NewMap("siren")                                                // ok
	_ = http.DefaultServeMux                                                  // ok

	// The sanctioned pattern: a normal import mounted handler by handler on
	// a locally built mux.
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index) // ok: explicit handler on a local mux
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	_ = mux
}
