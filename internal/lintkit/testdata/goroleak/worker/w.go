// Fixture: goroleak flags fire-and-forget goroutines in library packages
// and accepts every visible join shape the repo uses.
package worker

import (
	"context"
	"sync"
)

func compute() {}

func bad() {
	go func() { // want "goroutine started without a visible join"
		compute()
	}()
}

type plain struct{ n int }

func (p *plain) loop() { compute() }

func badMethod(p *plain) {
	go p.loop() // want "goroutine started without a visible join"
}

func goodWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // ok: body references the WaitGroup
		defer wg.Done()
		compute()
	}()
	wg.Wait()
}

func goodChannelBody(done chan struct{}) {
	go func() { // ok: body signals on a channel
		compute()
		close(done)
	}()
}

func goodContextBody(ctx context.Context) {
	go func() { // ok: body watches the context
		<-ctx.Done()
	}()
}

type server struct {
	done chan struct{}
}

func (s *server) loop() { <-s.done }

func (s *server) Start() {
	go s.loop() // ok: receiver struct carries the done channel
}

func drain(ch chan int) {
	for range ch {
	}
}

func goodArg(ch chan int) {
	go drain(ch) // ok: the join mechanism is passed in
}
