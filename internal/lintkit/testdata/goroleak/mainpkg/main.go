// Fixture: package main may start process-lifetime goroutines; the drain
// discipline binds libraries.
package main

func work() {}

func main() {
	go work() // ok: main owns the process lifetime
	select {}
}
