// Fixture: //lint:ignore semantics, driven through the walltime rule.
package analysis

import "time"

func stamps() int64 {
	// Lead-comment form: the directive on the line above suppresses.
	//lint:ignore walltime ingestion metadata timestamp, not an analysis result
	a := time.Now().Unix()

	b := time.Now().Unix() //lint:ignore walltime trailing-comment form covers its own line

	// A directive naming some other rule suppresses nothing here.
	//lint:ignore errsink wrong rule for this finding
	c := time.Now().Unix() // want "time.Now in deterministic package analysis"

	d := time.Now().Unix() // want "time.Now in deterministic package analysis"

	return a + b + c + d
}
